// Multi-section ablation: the first workload the Net IR makes a constructor
// call instead of a subsystem — a width-tapered 6 mm global route (wide at
// the driver, narrowing toward the receiver) described as three uniform
// sections.
//
// For each taper ratio the route keeps the same total length and far-end
// width; only the near/mid widths scale.  The two-ramp model runs on the
// multi-section driving-point moments (exact per-section Telegrapher cascade)
// while the reference simulates the compiled three-ladder deck, so the table
// tracks how the single-Z0 two-ramp assumption degrades as the route turns
// non-uniform.  Cases run in parallel through sim::run_sweep.
#include <cstdio>

#include <array>
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "sim/sweep.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

constexpr double total_length_mm = 6.0;
constexpr double far_width_um = 0.8;
constexpr int n_sections = 3;

// Near section is `taper` times the far width; intermediate sections step
// geometrically so adjacent sections see the same width ratio.
net::Net tapered_route(const tech::WireModel& wires, double taper) {
  std::array<tech::WireGeometry, n_sections> route;
  for (int k = 0; k < n_sections; ++k) {
    const double exponent =
        static_cast<double>(n_sections - 1 - k) / (n_sections - 1);
    const double width_um = far_width_um * std::pow(taper, exponent);
    route[static_cast<std::size_t>(k)] = {total_length_mm / n_sections * mm,
                                          width_um * um};
  }
  return tech::route_net(wires, route, 20 * ff);
}

}  // namespace

int main() {
  std::printf("== Multi-section ablation: width-tapered %.0f mm route, "
              "%dx sections, 100X driver ==\n",
              total_length_mm, n_sections);
  bench::warm_library({100.0});

  const std::vector<double> tapers = {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  const tech::WireModel wires;

  std::vector<api::Request> cases;
  for (double taper : tapers) {
    api::Request r;
    char label[32];
    std::snprintf(label, sizeof label, "taper %.2f", taper);
    r.label = label;
    r.cell_size = 100.0;
    r.input_slew = 100 * ps;
    r.net = tapered_route(wires, taper);
    r.reference = true;
    cases.push_back(std::move(r));
  }

  std::printf("# simulating %zu taper points on %u threads\n", cases.size(),
              sim::sweep_worker_count(cases.size(), 0));
  std::fflush(stdout);
  const std::vector<api::Response> results =
      bench::unwrap(bench::engine().run_batch(cases, bench::sweep_fidelity()));

  std::printf("\n%-7s %-6s %-6s | %19s | %19s | %19s\n", "taper", "Z0", "tf",
              "-- near delay  --", "--  near slew  --", "--  far delay  --");
  std::printf("%-7s %-6s %-6s | %9s %9s | %9s %9s | %9s %9s\n", "", "ohm", "ps",
              "sim [ps]", "model", "sim [ps]", "model", "sim [ps]", "model");

  std::vector<double> delay_errs, slew_errs, far_delay_errs;
  for (std::size_t k = 0; k < results.size(); ++k) {
    const api::Response& r = results[k];
    const net::NetMetrics m = cases[k].net.metrics();
    delay_errs.push_back(core::pct_error(r.model_near.delay, r.ref_near.delay));
    slew_errs.push_back(core::pct_error(r.model_near.slew, r.ref_near.slew));
    far_delay_errs.push_back(core::pct_error(r.model_far.delay, r.ref_far.delay));
    std::printf("%-7.2f %-6.1f %-6.1f | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f\n",
                tapers[k], m.z0, m.time_of_flight / ps, r.ref_near.delay / ps,
                r.model_near.delay / ps, r.ref_near.slew / ps, r.model_near.slew / ps,
                r.ref_far.delay / ps, r.model_far.delay / ps);
  }

  std::printf("\nsummary over the taper sweep (avg |error|): near delay %.1f %%, "
              "near slew %.1f %%, far delay %.1f %%\n",
              util::mean_abs(delay_errs), util::mean_abs(slew_errs),
              util::mean_abs(far_delay_errs));

  std::vector<bench::BenchMetric> accuracy =
      bench::error_metrics("two_ramp", delay_errs, slew_errs);
  accuracy.push_back({"mean_abs_far_delay_error_two_ramp",
                      util::mean_abs(far_delay_errs), "%"});
  bench::update_accuracy_json("multisection", accuracy);
  std::printf("accuracy metrics written to BENCH_accuracy.json (multisection.*)\n");
  return 0;
}
