// Ablation A1: how should the plateau between the two ramps be absorbed?
//
// Sec. 4.2 offers two treatments — an explicit flat step of duration
// 2*tf - Tr1, or Eq 8's stretched second ramp — and argues the stretched
// ramp wins "for most cases" because real plateaus smear out.  This bench
// quantifies that claim (plus a no-correction baseline) over the Table-1
// inductive cases, at both the near and far end.
#include <cstdio>

#include <vector>

#include "bench_common.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

struct Row {
  double length_mm, width_um, size, slew_ps;
};

const std::vector<Row> rows = {
    {3, 0.8, 75, 50},   {3, 1.2, 75, 50},   {3, 1.6, 75, 50},  {4, 0.8, 75, 50},
    {4, 1.2, 75, 50},   {4, 1.6, 75, 50},   {5, 1.2, 100, 100}, {5, 1.6, 100, 100},
    {5, 2.0, 100, 100}, {5, 2.5, 100, 100}, {6, 1.6, 100, 100}, {6, 2.5, 100, 100},
};

struct Stats {
  std::vector<double> near_delay, near_slew, far_delay, far_slew;
};

}  // namespace

int main() {
  std::printf("== Ablation A1: plateau handling (Eq 8 vs flat step vs none) ==\n");
  bench::warm_library({75.0, 100.0});

  const struct {
    const char* name;
    core::PlateauHandling mode;
  } modes[] = {
      {"none (ignore plateau)", core::PlateauHandling::none},
      {"flat step", core::PlateauHandling::flat_step},
      {"Eq 8 stretched ramp", core::PlateauHandling::modified_second_ramp},
  };

  for (const auto& mode : modes) {
    std::vector<api::Request> requests;
    for (const Row& row : rows) {
      api::Request r;
      char label[64];
      std::snprintf(label, sizeof label, "%s %g/%g", mode.name, row.length_mm,
                    row.width_um);
      r.label = label;
      r.cell_size = row.size;
      r.input_slew = row.slew_ps * ps;
      r.net = tech::line_net(*tech::find_paper_wire_case(row.length_mm, row.width_um), 20 * ff);
      r.reference = true;
      r.model.selection = core::ModelSelection::force_two_ramp;
      r.model.plateau = mode.mode;
      requests.push_back(std::move(r));
    }
    Stats s;
    for (const api::Response& r :
         bench::unwrap(bench::engine().run_batch(requests, bench::sweep_fidelity()))) {
      s.near_delay.push_back(core::pct_error(r.model_near.delay, r.ref_near.delay));
      s.near_slew.push_back(core::pct_error(r.model_near.slew, r.ref_near.slew));
      s.far_delay.push_back(core::pct_error(r.model_far.delay, r.ref_far.delay));
      s.far_slew.push_back(core::pct_error(r.model_far.slew, r.ref_far.slew));
    }
    std::printf("\n%-24s  avg|err|: near delay %5.1f %%  near slew %5.1f %%  "
                "far delay %5.1f %%  far slew %5.1f %%\n",
                mode.name, util::mean_abs(s.near_delay), util::mean_abs(s.near_slew),
                util::mean_abs(s.far_delay), util::mean_abs(s.far_slew));
  }

  std::printf("\nexpected: ignoring the plateau under-predicts the tail (large slew\n"
              "error); Eq 8 performs at least as well as the flat step, matching the\n"
              "paper's observation that smeared plateaus are the common case.\n");
  return 0;
}
