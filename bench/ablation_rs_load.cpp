// Ablation A4: extracting the driver resistance at the total capacitance vs
// at the converged Ceff1.  Sec. 5: "the resistance value and more
// importantly, the voltage breakpoint, do not change significantly by using
// total capacitance instead of the effective capacitance", which is why the
// paper's flow avoids the extra iteration loop.
#include <cstdio>

#include <vector>

#include "bench_common.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

struct Row {
  double length_mm, width_um, size, slew_ps;
};

const std::vector<Row> rows = {
    {3, 0.8, 75, 50},   {3, 1.6, 75, 50},   {4, 1.2, 75, 50},   {5, 1.2, 100, 100},
    {5, 1.6, 100, 100}, {5, 2.5, 100, 100}, {6, 1.6, 100, 100}, {6, 3.0, 100, 100},
};

}  // namespace

int main() {
  std::printf("== Ablation A4: Rs extracted at Ctotal vs at converged Ceff1 ==\n");
  bench::warm_library({75.0, 100.0});

  std::printf("\n%-22s %10s %8s | %10s %8s | %12s %12s\n", "case", "Rs(Ctot)",
              "f(Ctot)", "Rs(Ceff1)", "f(Ceff1)", "d-err shift", "s-err shift");

  // One batch: for each row, the Ctotal extraction followed by the Ceff1
  // re-extraction ablation of the same case.
  std::vector<api::Request> requests;
  for (const Row& row : rows) {
    api::Request r;
    char label[64];
    std::snprintf(label, sizeof label, "%g/%g %gX %gps", row.length_mm, row.width_um,
                  row.size, row.slew_ps);
    r.label = label;
    r.cell_size = row.size;
    r.input_slew = row.slew_ps * ps;
    r.net = tech::line_net(*tech::find_paper_wire_case(row.length_mm, row.width_um), 20 * ff);
    r.reference = true;
    r.far_end = false;
    r.model.selection = core::ModelSelection::force_two_ramp;

    r.model.rs_at_total_cap = true;
    requests.push_back(r);
    r.model.rs_at_total_cap = false;
    requests.push_back(std::move(r));
  }
  const std::vector<api::Response> results =
      bench::unwrap(bench::engine().run_batch(requests, bench::sweep_fidelity()));

  std::vector<double> delay_shift, slew_shift, f_shift;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Row& row = rows[k];
    const api::Response& r_tot = results[2 * k];
    const api::Response& r_eff = results[2 * k + 1];

    const double d_tot = core::pct_error(r_tot.model_near.delay, r_tot.ref_near.delay);
    const double d_eff = core::pct_error(r_eff.model_near.delay, r_eff.ref_near.delay);
    const double s_tot = core::pct_error(r_tot.model_near.slew, r_tot.ref_near.slew);
    const double s_eff = core::pct_error(r_eff.model_near.slew, r_eff.ref_near.slew);
    delay_shift.push_back(d_eff - d_tot);
    slew_shift.push_back(s_eff - s_tot);
    f_shift.push_back(r_eff.model.f - r_tot.model.f);

    char label[64];
    std::snprintf(label, sizeof label, "%g/%g %gX %gps", row.length_mm, row.width_um,
                  row.size, row.slew_ps);
    std::printf("%-22s %7.1f oh %8.3f | %7.1f oh %8.3f | %11.1f%% %11.1f%%\n", label,
                r_tot.model.rs, r_tot.model.f, r_eff.model.rs, r_eff.model.f,
                d_eff - d_tot, s_eff - s_tot);
  }

  std::printf("\navg |breakpoint shift| %.3f, avg |delay-error shift| %.1f %%, "
              "avg |slew-error shift| %.1f %%\n",
              util::mean_abs(f_shift), util::mean_abs(delay_shift),
              util::mean_abs(slew_shift));
  std::printf("paper's claim holds when the accuracy shift is small compared with the\n"
              "model's own error band, making the cheaper Ctotal extraction safe.\n");
  return 0;
}
