// Ablation A2: how finely must the line be discretized before the lumped
// "HSPICE" reference converges?  Validates the simulator substitution in
// DESIGN.md: pi-section ladders converge to the distributed line, and the
// fidelity used by the benches (120+ segments) is comfortably converged.
#include <cstdio>

#include "bench_common.h"
#include "tech/testbench.h"
#include "tech/wire.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  std::printf("== Ablation A2: ladder discretization convergence ==\n");
  const tech::WireParasitics wire = *tech::find_paper_wire_case(5.0, 1.6);
  const double vdd = bench::technology().vdd;
  std::printf("case: 5 mm x 1.6 um line, 100X driver, 100 ps input slew\n\n");
  std::printf("%10s %14s %14s %14s %14s\n", "segments", "near delay", "near slew",
              "far delay", "far slew");

  double ref_nd = 0.0, ref_ns = 0.0, ref_fd = 0.0, ref_fs = 0.0;
  for (std::size_t segments : {5, 10, 20, 40, 80, 160, 320}) {
    tech::DeckOptions deck;
    deck.segments = segments;
    deck.dt = 0.25 * ps;
    deck.t_stop = 1.2 * ns;
    const auto sim = tech::simulate_driver_line(bench::technology(),
                                                tech::Inverter{100.0}, 100 * ps, wire,
                                                deck);
    const auto near = wave::measure_rising_edge(sim.near_end, 0.0, vdd);
    const auto far = wave::measure_rising_edge(sim.far_end, 0.0, vdd);
    const double nd = (near.t50 - sim.input_time_50) / ps;
    const double ns = near.transition_10_90() / ps;
    const double fd = (far.t50 - sim.input_time_50) / ps;
    const double fs = far.transition_10_90() / ps;
    std::printf("%10zu %11.2f ps %11.2f ps %11.2f ps %11.2f ps\n", segments, nd, ns,
                fd, fs);
    ref_nd = nd;
    ref_ns = ns;
    ref_fd = fd;
    ref_fs = fs;
  }
  std::printf("\nconverged reference (320 segments): near %.2f / %.2f ps, "
              "far %.2f / %.2f ps\n",
              ref_nd, ref_ns, ref_fd, ref_fs);
  std::printf("the bench fidelity (120 segments) sits well inside the converged "
              "regime.\n");
  return 0;
}
