// Ablation A5: the ref-[11] exponential tail on one-ramp (RC-like) outputs.
//
// Sec. 5: "if there is significant resistive shielding, then the gate
// resistor model [11] can be used to model the exponential tail of the
// transition."  Weak drivers on long lines are exactly that case; the tail
// should cut the one-ramp slew error while leaving the 50 % delay untouched.
#include <cstdio>

#include <vector>

#include "bench_common.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  std::printf("== Ablation A5: one-ramp exponential tail (gate resistor model) ==\n");
  bench::warm_library({25.0, 50.0});

  struct Row {
    double length_mm, width_um, size;
  };
  const std::vector<Row> rows = {
      {4, 1.6, 25}, {5, 1.6, 25}, {6, 1.6, 25}, {7, 1.6, 25},
      {5, 1.2, 50}, {6, 1.2, 50}, {7, 1.6, 50},
  };

  std::printf("\n%-18s | %10s | %22s | %22s\n", "case (all 100 ps)", "ref slew",
              "plain ramp slew (err)", "ramp + tail slew (err)");

  // One batch: for each row, the plain one-ramp followed by the ramp+tail
  // variant of the same case.
  std::vector<api::Request> requests;
  for (const Row& row : rows) {
    api::Request r;
    char label[64];
    std::snprintf(label, sizeof label, "%g/%g %gX", row.length_mm, row.width_um,
                  row.size);
    r.label = label;
    r.cell_size = row.size;
    r.input_slew = 100 * ps;
    r.net = tech::line_net(*tech::find_paper_wire_case(row.length_mm, row.width_um), 20 * ff);
    r.reference = true;
    r.far_end = false;
    r.model.selection = core::ModelSelection::force_one_ramp;

    r.model.shielding_tail = false;
    requests.push_back(r);
    r.model.shielding_tail = true;
    requests.push_back(std::move(r));
  }
  const std::vector<api::Response> results =
      bench::unwrap(bench::engine().run_batch(requests, bench::sweep_fidelity()));

  std::vector<double> plain_errs, tail_errs;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Row& row = rows[k];
    const api::Response& plain = results[2 * k];
    const api::Response& tail = results[2 * k + 1];

    const double e_plain = core::pct_error(plain.model_near.slew, plain.ref_near.slew);
    const double e_tail = core::pct_error(tail.model_near.slew, tail.ref_near.slew);
    plain_errs.push_back(e_plain);
    tail_errs.push_back(e_tail);

    char label[64];
    std::snprintf(label, sizeof label, "%g/%g %gX", row.length_mm, row.width_um,
                  row.size);
    std::printf("%-18s | %7.1f ps | %10.1f ps (%s) | %10.1f ps (%s)  tau=%.0f ps\n",
                label, plain.ref_near.slew / ps, plain.model_near.slew / ps,
                bench::pct(e_plain).c_str(), tail.model_near.slew / ps,
                bench::pct(e_tail).c_str(), tail.model.tail_tau / ps);
  }

  std::printf("\navg |slew error|: plain ramp %.1f %%, with tail %.1f %%\n",
              util::mean_abs(plain_errs), util::mean_abs(tail_errs));
  std::printf("the 50 %% delay anchor is untouched by construction; only the tail of\n"
              "the transition (and hence the slew) changes.\n");
  return 0;
}
