// Ablation A5: the ref-[11] exponential tail on one-ramp (RC-like) outputs.
//
// Sec. 5: "if there is significant resistive shielding, then the gate
// resistor model [11] can be used to model the exponential tail of the
// transition."  Weak drivers on long lines are exactly that case; the tail
// should cut the one-ramp slew error while leaving the 50 % delay untouched.
#include <cstdio>

#include <vector>

#include "bench_common.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  std::printf("== Ablation A5: one-ramp exponential tail (gate resistor model) ==\n");
  bench::warm_library({25.0, 50.0});

  struct Row {
    double length_mm, width_um, size;
  };
  const std::vector<Row> rows = {
      {4, 1.6, 25}, {5, 1.6, 25}, {6, 1.6, 25}, {7, 1.6, 25},
      {5, 1.2, 50}, {6, 1.2, 50}, {7, 1.6, 50},
  };

  std::printf("\n%-18s | %10s | %22s | %22s\n", "case (all 100 ps)", "ref slew",
              "plain ramp slew (err)", "ramp + tail slew (err)");

  std::vector<double> plain_errs, tail_errs;
  for (const Row& row : rows) {
    core::ExperimentCase c;
    c.driver_size = row.size;
    c.input_slew = 100 * ps;
    c.net = tech::line_net(*tech::find_paper_wire_case(row.length_mm, row.width_um), 20 * ff);

    core::ExperimentOptions opt = bench::sweep_fidelity();
    opt.include_far_end = false;
    opt.include_one_ramp = false;
    opt.model.selection = core::ModelSelection::force_one_ramp;

    opt.model.shielding_tail = false;
    const auto plain = core::run_experiment(bench::technology(), bench::library(), c, opt);
    opt.model.shielding_tail = true;
    const auto tail = core::run_experiment(bench::technology(), bench::library(), c, opt);

    const double e_plain = core::pct_error(plain.model_near.slew, plain.ref_near.slew);
    const double e_tail = core::pct_error(tail.model_near.slew, tail.ref_near.slew);
    plain_errs.push_back(e_plain);
    tail_errs.push_back(e_tail);

    char label[64];
    std::snprintf(label, sizeof label, "%g/%g %gX", row.length_mm, row.width_um,
                  row.size);
    std::printf("%-18s | %7.1f ps | %10.1f ps (%s) | %10.1f ps (%s)  tau=%.0f ps\n",
                label, plain.ref_near.slew / ps, plain.model_near.slew / ps,
                bench::pct(e_plain).c_str(), tail.model_near.slew / ps,
                bench::pct(e_tail).c_str(), tail.model.tail_tau / ps);
  }

  std::printf("\navg |slew error|: plain ramp %.1f %%, with tail %.1f %%\n",
              util::mean_abs(plain_errs), util::mean_abs(tail_errs));
  std::printf("the 50 %% delay anchor is untouched by construction; only the tail of\n"
              "the transition (and hence the slew) changes.\n");
  return 0;
}
