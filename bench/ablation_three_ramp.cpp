// Ablation A3: does a third ramp (modeling the second reflection) buy
// anything?  Sec. 3 argues no: "modeling this waveform with three or more
// pieces ... adds to the computational cost and does not achieve noticeably
// better delay and slew accuracy at the far end of the line."
#include <cstdio>

#include <vector>

#include "bench_common.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

struct Row {
  double length_mm, width_um, size, slew_ps;
};

const std::vector<Row> rows = {
    {3, 0.8, 75, 50},   {3, 1.2, 75, 50},   {4, 0.8, 75, 50},   {4, 1.2, 75, 50},
    {5, 1.2, 100, 100}, {5, 1.6, 100, 100}, {6, 1.6, 100, 100}, {6, 2.0, 100, 100},
};

}  // namespace

int main() {
  std::printf("== Ablation A3: two ramps vs the three-ramp extension ==\n");
  bench::warm_library({75.0, 100.0});

  for (bool three : {false, true}) {
    std::vector<api::Request> requests;
    for (const Row& row : rows) {
      api::Request r;
      char label[64];
      std::snprintf(label, sizeof label, "%s %g/%g", three ? "3ramp" : "2ramp",
                    row.length_mm, row.width_um);
      r.label = label;
      r.cell_size = row.size;
      r.input_slew = row.slew_ps * ps;
      r.net = tech::line_net(*tech::find_paper_wire_case(row.length_mm, row.width_um), 20 * ff);
      r.reference = true;
      r.model.selection = core::ModelSelection::force_two_ramp;
      r.model.three_ramp_extension = three;
      requests.push_back(std::move(r));
    }
    std::vector<double> near_delay, near_slew, far_delay, far_slew;
    std::size_t promoted = 0;
    for (const api::Response& r :
         bench::unwrap(bench::engine().run_batch(requests, bench::sweep_fidelity()))) {
      if (r.model.kind == core::ModelKind::three_ramp) ++promoted;
      near_delay.push_back(core::pct_error(r.model_near.delay, r.ref_near.delay));
      near_slew.push_back(core::pct_error(r.model_near.slew, r.ref_near.slew));
      far_delay.push_back(core::pct_error(r.model_far.delay, r.ref_far.delay));
      far_slew.push_back(core::pct_error(r.model_far.slew, r.ref_far.slew));
    }
    std::printf("\n%-12s (3-ramp used on %zu/%zu cases)\n",
                three ? "three ramps" : "two ramps", promoted, rows.size());
    std::printf("  avg|err|: near delay %5.1f %%  near slew %5.1f %%  far delay %5.1f %%"
                "  far slew %5.1f %%\n",
                util::mean_abs(near_delay), util::mean_abs(near_slew),
                util::mean_abs(far_delay), util::mean_abs(far_slew));
  }

  std::printf("\nexpected (paper Sec. 3): the third ramp changes far-end accuracy only\n"
              "marginally — with Rs < Z0 the second reflected step already lands near\n"
              "the rail, so the extra piece models almost nothing.\n");
  return 0;
}
