#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include <exception>
#include <fstream>
#include <span>
#include <utility>

#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace rlceff::bench {

namespace {
constexpr const char* cache_path = "rlceff_cells.lib";
}

api::Engine& engine() {
  static api::Engine eng{tech::Technology::cmos180()};
  static const bool loaded = [] {
    try {
      eng.load_library(cache_path);
    } catch (const Error&) {
      // Corrupt cache: fall through and re-characterize on demand.
    }
    return true;
  }();
  (void)loaded;
  return eng;
}

const tech::Technology& technology() { return engine().technology(); }

charlib::CellLibrary& library() { return engine().library(); }

void warm_library(const std::vector<double>& sizes) {
  api::Engine& eng = engine();
  std::vector<double> missing;
  for (double size : sizes) {
    if (eng.library().find(size) == nullptr) missing.push_back(size);
  }
  if (missing.empty()) return;
  for (double size : missing) {
    std::printf("# characterizing %gX driver (cached in %s)...\n", size, cache_path);
  }
  std::fflush(stdout);
  eng.warm_cache(std::span<const double>(missing));
  eng.save_library(cache_path);
}

api::BatchOptions full_fidelity() {
  api::BatchOptions opt;
  opt.deck.segments = 120;
  opt.deck.dt = 0.25 * units::ps;
  return opt;
}

api::BatchOptions sweep_fidelity() {
  api::BatchOptions opt;
  opt.deck.segments = 80;
  opt.deck.dt = 0.5 * units::ps;
  return opt;
}

std::vector<api::Response> unwrap(std::vector<api::Outcome<api::Response>> outcomes) {
  std::vector<api::Response> responses;
  responses.reserve(outcomes.size());
  for (api::Outcome<api::Response>& outcome : outcomes) {
    if (!outcome.ok()) {
      const api::ErrorInfo& e = outcome.error();
      std::fprintf(stderr, "bench: scenario '%s' failed [%s]: %s\n",
                   e.scenario.c_str(), api::to_string(e.code), e.message.c_str());
      std::exit(1);
    }
    responses.push_back(std::move(outcome).value());
  }
  return responses;
}

std::string pct(double fraction_error_percent) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", fraction_error_percent);
  return buf;
}

bool list_metrics_requested(int argc, char** argv) {
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--list-metrics") return true;
  }
  return false;
}

void list_metrics(const std::string& section,
                  const std::vector<std::string>& names) {
  const std::string prefix = section.empty() ? "" : section + ".";
  for (const std::string& name : names) {
    std::printf("%s%s\n", prefix.c_str(), name.c_str());
  }
}

namespace {

// Metric names are identifier-like and units are plain ASCII, so escaping
// only needs to cover the JSON string specials.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_bench_json(const std::string& path, const std::string& bench_name,
                      const std::vector<BenchMetric>& metrics) {
  // A NaN/inf value would serialize as a token parse_metric_line cannot
  // round-trip, so the metric would evaporate on the next merge.  A bench
  // that computed garbage must fail its CI step, not ship a hole in the
  // trajectory file.
  for (const BenchMetric& m : metrics) {
    if (!std::isfinite(m.value)) {
      std::fprintf(stderr,
                   "write_bench_json: metric '%s' in %s is not finite (%g)\n",
                   m.name.c_str(), path.c_str(), m.value);
      std::exit(1);
    }
  }
  std::ofstream out(path);
  ensure(out.good(), "write_bench_json: cannot open output file");
  out << "{\n  \"bench\": \"" << json_escape(bench_name) << "\",\n  \"metrics\": [";
  for (std::size_t k = 0; k < metrics.size(); ++k) {
    char value[64];
    std::snprintf(value, sizeof value, "%.6g", metrics[k].value);
    out << (k == 0 ? "" : ",") << "\n    {\"name\": \"" << json_escape(metrics[k].name)
        << "\", \"value\": " << value << ", \"unit\": \""
        << json_escape(metrics[k].unit) << "\"}";
  }
  out << "\n  ]\n}\n";
  ensure(out.good(), "write_bench_json: write failed");
}

namespace {

// Parses one "    {"name": "...", "value": ..., "unit": "..."}" line as
// emitted by write_bench_json.  Tolerant: returns false on anything else.
bool parse_metric_line(const std::string& line, BenchMetric& out) {
  auto field = [&line](const char* key) -> std::string {
    const std::string tag = std::string("\"") + key + "\": ";
    const std::size_t at = line.find(tag);
    if (at == std::string::npos) return {};
    std::size_t begin = at + tag.size();
    if (begin < line.size() && line[begin] == '"') {
      ++begin;
      const std::size_t end = line.find('"', begin);
      if (end == std::string::npos) return {};
      return line.substr(begin, end - begin);
    }
    std::size_t end = begin;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    return line.substr(begin, end - begin);
  };
  out.name = field("name");
  const std::string value = field("value");
  out.unit = field("unit");
  if (out.name.empty() || value.empty()) return false;
  try {
    out.value = std::stod(value);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

void update_bench_json(const std::string& path, const std::string& bench_name,
                       const std::string& section,
                       const std::vector<BenchMetric>& metrics) {
  const std::string prefix = section + ".";
  std::vector<BenchMetric> merged;
  {
    std::ifstream in(path);
    std::string line;
    while (in.good() && std::getline(in, line)) {
      BenchMetric m;
      if (parse_metric_line(line, m)) {
        if (m.name.rfind(prefix, 0) != 0) merged.push_back(std::move(m));
      } else if (line.find("\"name\"") != std::string::npos) {
        // A metric-looking line we cannot round-trip would be lost by the
        // rewrite below.  Benches feed a perf trajectory that CI gates on;
        // a dropped metric is corrupted history, not a warning.
        std::fprintf(stderr, "update_bench_json: unparseable metric line in "
                             "%s would be dropped by the merge: %s\n",
                     path.c_str(), line.c_str());
        std::exit(1);
      }
    }
  }
  for (const BenchMetric& m : metrics) {
    merged.push_back({prefix + m.name, m.value, m.unit});
  }
  // Write-then-rename so a reader never sees a half-written file.  (The
  // read-modify-write itself is not locked: run the sharing benches
  // sequentially, as CI does, or concurrent writers can drop each other's
  // sections.)
  const std::string tmp = path + ".tmp";
  write_bench_json(tmp, bench_name, merged);
  ensure(std::rename(tmp.c_str(), path.c_str()) == 0,
         "update_bench_json: rename failed");
}

void update_accuracy_json(const std::string& section,
                          const std::vector<BenchMetric>& metrics,
                          const std::string& path) {
  update_bench_json(path, "accuracy", section, metrics);
}

std::vector<BenchMetric> error_metrics(const std::string& column,
                                       const std::vector<double>& delay_errs_pct,
                                       const std::vector<double>& slew_errs_pct) {
  return {
      {"cases_" + column, static_cast<double>(delay_errs_pct.size()), "count"},
      {"mean_abs_delay_error_" + column, util::mean_abs(delay_errs_pct), "%"},
      {"max_abs_delay_error_" + column, util::max_abs(delay_errs_pct), "%"},
      {"mean_abs_slew_error_" + column, util::mean_abs(slew_errs_pct), "%"},
      {"max_abs_slew_error_" + column, util::max_abs(slew_errs_pct), "%"},
  };
}

std::vector<BenchMetric> two_model_error_metrics(
    const std::vector<double>& two_ramp_delay, const std::vector<double>& two_ramp_slew,
    const std::vector<double>& one_ramp_delay,
    const std::vector<double>& one_ramp_slew) {
  std::vector<BenchMetric> out = error_metrics("two_ramp", two_ramp_delay, two_ramp_slew);
  for (BenchMetric& m : error_metrics("one_ramp", one_ramp_delay, one_ramp_slew)) {
    out.push_back(std::move(m));
  }
  return out;
}

void ascii_plot(const std::vector<const wave::Waveform*>& series,
                const std::vector<char>& glyphs, double t0, double t1, double v_max,
                int width, int height) {
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    for (int x = 0; x < width; ++x) {
      const double t = t0 + (t1 - t0) * x / (width - 1);
      const double v = series[s]->value_at(t);
      int y = static_cast<int>((v / v_max) * (height - 1) + 0.5);
      if (y < 0) y = 0;
      if (y >= height) y = height - 1;
      canvas[static_cast<std::size_t>(height - 1 - y)][static_cast<std::size_t>(x)] =
          glyphs[s];
    }
  }
  std::printf("  %.2f V\n", v_max);
  for (const std::string& row : canvas) std::printf("  |%s\n", row.c_str());
  std::printf("  +%s\n", std::string(static_cast<std::size_t>(width), '-').c_str());
  std::printf("  %.0f ps%*s%.0f ps\n", t0 / units::ps, width - 6, "",
              t1 / units::ps);
}

void print_series(const std::vector<const wave::Waveform*>& series,
                  const std::vector<std::string>& names, double t0, double t1,
                  std::size_t rows) {
  std::printf("  %10s", "t [ps]");
  for (const std::string& n : names) std::printf("  %12s", n.c_str());
  std::printf("\n");
  for (std::size_t r = 0; r < rows; ++r) {
    const double t = t0 + (t1 - t0) * static_cast<double>(r) /
                              static_cast<double>(rows - 1);
    std::printf("  %10.1f", t / units::ps);
    for (const wave::Waveform* w : series) std::printf("  %12.4f", w->value_at(t));
    std::printf("\n");
  }
}

}  // namespace rlceff::bench
