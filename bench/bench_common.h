// Shared infrastructure for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper.  They all
// go through one shared api::Engine: it owns the 0.18 um technology and a
// cell library characterized once and cached on disk as ./rlceff_cells.lib,
// so consecutive bench runs skip the ~400 characterization simulations.
// Benches describe their scenarios as api::Request batches and hand them to
// Engine::run_batch; unwrap() converts the outcomes back to plain responses,
// aborting loudly if any bench scenario failed.
#ifndef RLCEFF_BENCH_BENCH_COMMON_H
#define RLCEFF_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "util/units.h"
#include "waveform/waveform.h"

namespace rlceff::bench {

// The shared facade all bench binaries call into.  Its library is loaded
// from (and persisted to, by warm_library) ./rlceff_cells.lib.
api::Engine& engine();

const tech::Technology& technology();

// Disk-cached cell library shared by all bench binaries.
charlib::CellLibrary& library();
// Characterizes (or loads) the given sizes up front and persists the cache.
void warm_library(const std::vector<double>& sizes);

// Full fidelity: what the paper-facing tables use.
api::BatchOptions full_fidelity();
// Sweep fidelity: slightly coarser, for the 165-case Fig-7 scatter.
api::BatchOptions sweep_fidelity();

// Unwraps a batch, terminating the bench with a message naming the failing
// scenario and its error code when a slot failed (paper-reproduction
// scenarios are all expected to succeed).
std::vector<api::Response> unwrap(std::vector<api::Outcome<api::Response>> outcomes);

// "+4.4%"-style formatting.
std::string pct(double fraction_error_percent);

// --list-metrics support for the BENCH_perf.json key-set smoke: every perf
// bench declares the metric names it emits so CI can detect drift between
// the benches and the checked-in trajectory file without running the
// workloads.  list_metrics_requested() scans argv; list_metrics() prints one
// fully-prefixed name per line (empty section = unprefixed overwrite names).
bool list_metrics_requested(int argc, char** argv);
void list_metrics(const std::string& section,
                  const std::vector<std::string>& names);

// One machine-readable performance number (e.g. ns/step of the transient
// engine).  Benches emit these as BENCH_*.json files so the perf trajectory
// can be tracked across commits.
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

// Writes {"bench": <name>, "metrics": [{"name", "value", "unit"}...]} to
// `path`; throws Error when the file cannot be written.  Exits nonzero on a
// non-finite metric value — a NaN would not survive the next merge, and a
// perf gate must never read a file with silently missing numbers.
void write_bench_json(const std::string& path, const std::string& bench_name,
                      const std::vector<BenchMetric>& metrics);

// Section-merging variant of write_bench_json: each metric is stored as
// "<section>.<name>"; re-running a bench replaces its own section and leaves
// every other metric — prefixed by another section or written unprefixed by
// an overwriting bench — untouched, so a trajectory file shared by several
// binaries survives partial reruns.  Exits nonzero when an existing metric
// line cannot be round-tripped (the merge would otherwise drop it).
void update_bench_json(const std::string& path, const std::string& bench_name,
                       const std::string& section,
                       const std::vector<BenchMetric>& metrics);

// Accumulates accuracy metrics from several bench binaries into one
// BENCH_accuracy.json (update_bench_json with bench name "accuracy").
void update_accuracy_json(const std::string& section,
                          const std::vector<BenchMetric>& metrics,
                          const std::string& path = "BENCH_accuracy.json");

// Mean/max |error| rows for one model column (delay + slew), ready for
// update_accuracy_json.
std::vector<BenchMetric> error_metrics(const std::string& column,
                                       const std::vector<double>& delay_errs_pct,
                                       const std::vector<double>& slew_errs_pct);

// The paired two-ramp + one-ramp columns the paper-facing benches report.
std::vector<BenchMetric> two_model_error_metrics(
    const std::vector<double>& two_ramp_delay, const std::vector<double>& two_ramp_slew,
    const std::vector<double>& one_ramp_delay, const std::vector<double>& one_ramp_slew);

// ASCII chart of one or more waveforms over [t0, t1] (voltages 0..v_max).
// Series are drawn with the given glyphs; later series overwrite earlier.
void ascii_plot(const std::vector<const wave::Waveform*>& series,
                const std::vector<char>& glyphs, double t0, double t1, double v_max,
                int width = 78, int height = 20);

// Tabulated sample dump (time in ps, one column per series).
void print_series(const std::vector<const wave::Waveform*>& series,
                  const std::vector<std::string>& names, double t0, double t1,
                  std::size_t rows);

}  // namespace rlceff::bench

#endif  // RLCEFF_BENCH_BENCH_COMMON_H
