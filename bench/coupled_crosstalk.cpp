// Coupled crosstalk bench: a two-net aggressor/victim pair swept across
// coupling strength.
//
// Two identical 3 mm / 1.2 um lines run side by side; the aggressor switches
// against the victim (2x Miller).  For each coupling fraction alpha the
// distributed coupling cap is alpha times the victim's ground capacitance.
// The full coupled system (two drivers, node-aligned coupling caps — this
// sweep is purely capacitive, no K elements, matching what the Miller model
// can represent) is simulated as the reference while the paper's Ceff flow
// runs on the Miller-decoupled victim, so the sweep tracks how far the
// decoupled single-net model can carry into the crosstalk regime.  The far-end 50 %
// delay is the scored column (that is where the pushout lands); the bench
// exits non-zero when the model drifts beyond 10 % of the coupled
// simulation anywhere in the sweep, making it a CI acceptance gate.
#include <cstdio>
#include <cstring>

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/sweep.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

constexpr double length_mm = 3.0;
constexpr double width_um = 1.2;
constexpr double driver_size = 75.0;
constexpr double cc_fraction_min = 0.02;
constexpr double cc_fraction_max = 0.40;
constexpr std::size_t n_points = 21;

api::Request coupled_case(const tech::WireParasitics& wire, double cc_fraction) {
  net::CoupledGroup group;
  group.add_net(tech::line_net(wire, 20 * ff), "victim");
  group.add_net(tech::line_net(wire, 20 * ff), "aggr");
  group.couple_capacitance({0, 0}, {1, 0}, cc_fraction * wire.capacitance);

  api::Request r;
  char label[32];
  std::snprintf(label, sizeof label, "cc %.2f", cc_fraction);
  r.label = label;
  r.cell_size = driver_size;
  r.input_slew = 100 * ps;
  r.group = std::move(group);
  r.victim = 0;
  r.aggressors = {{1, driver_size, 100 * ps, core::AggressorSwitching::opposite}};
  r.reference = true;
  r.far_end = true;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t points = smoke ? 5 : n_points;

  std::printf("== Coupled crosstalk: %zu-point coupling sweep, %.0f mm pair, "
              "opposite-switching aggressor (2x Miller) ==\n",
              points, length_mm);
  bench::warm_library({driver_size});

  const tech::WireModel wires;
  const tech::WireParasitics wire =
      wires.extract({length_mm * mm, width_um * um});

  std::vector<double> fractions;
  std::vector<api::Request> cases;
  for (std::size_t k = 0; k < points; ++k) {
    const double alpha =
        cc_fraction_min + (cc_fraction_max - cc_fraction_min) *
                              static_cast<double>(k) /
                              static_cast<double>(points - 1);
    fractions.push_back(alpha);
    cases.push_back(coupled_case(wire, alpha));
  }

  std::printf("# simulating %zu coupled systems on %u threads\n", cases.size(),
              sim::sweep_worker_count(cases.size(), 0));
  std::fflush(stdout);
  const std::vector<api::Response> results =
      bench::unwrap(bench::engine().run_batch(cases, bench::sweep_fidelity()));

  std::printf("\n%-8s | %20s | %10s | %10s | %9s\n", "cc/C",
              "--  far delay  --", "pushout", "model push", "noise");
  std::printf("%-8s | %10s %9s | %10s | %10s | %9s\n", "", "sim [ps]", "model",
              "sim [ps]", "[ps]", "[mV]");

  std::vector<double> far_delay_errs;
  double max_noise_mv = 0.0;
  double max_pushout_ps = 0.0;
  for (std::size_t k = 0; k < results.size(); ++k) {
    const api::Response& r = results[k];
    const double err = core::pct_error(r.model_far.delay, r.ref_far.delay);
    far_delay_errs.push_back(err);
    max_noise_mv = std::max(max_noise_mv, r.peak_noise / 1e-3);
    max_pushout_ps = std::max(max_pushout_ps, r.delay_pushout / ps);
    std::printf("%-8.3f | %10.2f %9.2f | %10.2f | %10.2f | %9.1f   (%s)\n",
                fractions[k], r.ref_far.delay / ps, r.model_far.delay / ps,
                r.delay_pushout / ps, r.delay_pushout_model / ps,
                r.peak_noise / 1e-3, bench::pct(err).c_str());
  }

  const double mean_err = util::mean_abs(far_delay_errs);
  const double max_err = util::max_abs(far_delay_errs);
  std::printf("\nMiller-decoupled model vs coupled simulation, far-end delay: "
              "mean |err| %.2f%%, max |err| %.2f%%\n",
              mean_err, max_err);
  std::printf("worst-case pushout %.2f ps, worst-case quiet-victim noise "
              "%.1f mV\n",
              max_pushout_ps, max_noise_mv);

  bench::update_accuracy_json(
      smoke ? "coupled_crosstalk_smoke" : "coupled_crosstalk",
      {{"points", static_cast<double>(points), "count"},
       {"mean_abs_far_delay_error_miller", mean_err, "%"},
       {"max_abs_far_delay_error_miller", max_err, "%"},
       {"max_pushout", max_pushout_ps, "ps"},
       {"max_quiet_victim_noise", max_noise_mv, "mV"}});
  std::printf("# accuracy trajectory appended to BENCH_accuracy.json\n");

  if (max_err > 10.0) {
    std::fprintf(stderr,
                 "FAIL: Miller-decoupled far-end delay drifted %.2f%% from the "
                 "coupled simulation (budget 10%%)\n",
                 max_err);
    return 1;
  }
  return 0;
}
