// Figure 1 reproduction: driver output waveform of a 5 mm RLC line driven by
// a 75X inverter (R = 72.44 ohm, L = 5.14 nH, C = 1.10 pF).
//
// The paper's figure shows the transmission-line signature at the driving
// point: an initial ramp (A-B), a plateau while the wave is in flight (B-C),
// and a second rise when the far-end reflection returns (C-D) at roughly
// 2*tf after launch.  This bench simulates the same deck and reports the
// instants and levels of those features next to the theory values.
#include <cstdio>

#include "bench_common.h"
#include "tech/testbench.h"
#include "tech/wire.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  std::printf("== Figure 1: driver output of a 5 mm x 1.6 um line, 75X inverter ==\n");
  const tech::WireParasitics wire = *tech::find_paper_wire_case(5.0, 1.6);
  std::printf("line: R=%.2f ohm  L=%.2f nH  C=%.2f pF  Z0=%.1f ohm  tf=%.1f ps\n",
              wire.resistance, wire.inductance / nh, wire.capacitance / pf, wire.z0(),
              wire.time_of_flight() / ps);

  tech::DeckOptions deck;
  deck.segments = 160;
  deck.dt = 0.25 * ps;
  deck.t_stop = 0.6e-9;
  const tech::LineSimResult sim = tech::simulate_driver_line(
      bench::technology(), tech::Inverter{75.0}, 100 * ps, wire, deck);

  std::printf("\ndriver output waveform ('*' near end, '.' far end):\n");
  bench::ascii_plot({&sim.near_end, &sim.far_end}, {'*', '.'}, 0.0, 500 * ps, 2.1);

  // Feature extraction: launch, plateau level, reflection return.
  const double vdd = bench::technology().vdd;
  const double t_launch = sim.near_end.first_crossing(0.1 * vdd, true).value_or(0.0);
  const double tf = wire.time_of_flight();
  const double v_plateau = sim.near_end.value_at(t_launch + 1.6 * tf);
  const double v_before = sim.near_end.value_at(t_launch + 2.0 * tf);
  const double v_after = sim.near_end.value_at(t_launch + 3.0 * tf);

  std::printf("\nfeature                     simulated        theory\n");
  std::printf("plateau level (B-C)         %.2f V           ~f*Vdd (Eq 1)\n", v_plateau);
  std::printf("plateau fraction of Vdd     %.2f             0.5-0.7 for 75X\n",
              v_plateau / vdd);
  std::printf("reflection kink             rise %.2f -> %.2f V across 2tf=%.0f ps\n",
              v_before, v_after, 2.0 * tf / ps);
  std::printf("far end starts moving at    %.0f ps           launch + tf = %.0f ps\n",
              sim.far_end.first_crossing(0.1 * vdd, true).value_or(0.0) / ps,
              (t_launch + tf) / ps);

  std::printf("\nsampled series:\n");
  bench::print_series({&sim.near_end, &sim.far_end}, {"near [V]", "far [V]"}, 0.0,
                      500 * ps, 26);
  return 0;
}
