// Figure 3 reproduction: why one effective capacitance cannot model an
// inductive driving-point waveform.
//
// Case: 7 mm x 1.6 um line (R = 101.3 ohm, L = 7.1 nH, C = 1.54 pF), 75X
// driver, 100 ps input slew.  Two single-Ceff variants are computed exactly
// as in Sec. 4: equating charge up to the 50 % point (f = 0.5) and over the
// whole transition (f = 1).  The driver is then re-simulated with each plain
// capacitor; the 50 % variant tracks the delay but badly misses the tail,
// the 100 % variant averages both away.
#include <cstdio>

#include "bench_common.h"
#include "core/ceff.h"
#include "core/charge.h"
#include "moments/admittance.h"
#include "tech/testbench.h"
#include "tech/wire.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  std::printf("== Figure 3: single-Ceff approximations vs actual driver output ==\n");
  const tech::WireParasitics wire = *tech::find_paper_wire_case(7.0, 1.6);
  const double size = 75.0;
  const double slew = 100 * ps;
  const double c_far = 20 * ff;
  std::printf("line: R=%.1f ohm L=%.1f nH C=%.2f pF, driver %gX, input slew %.0f ps\n",
              wire.resistance, wire.inductance / nh, wire.capacitance / pf, size,
              slew / ps);

  bench::warm_library({size});
  const charlib::CharacterizedDriver& driver = *bench::library().find(size);

  const util::Series y_series = moments::distributed_line_admittance(
      wire.resistance, wire.inductance, wire.capacitance, c_far);
  const core::ChargeModel load{moments::RationalAdmittance(y_series)};
  const auto transition = [&](double c) { return driver.output_transition(slew, c); };

  // "Charge till 50 %": the Eq 4/5 window with f = 0.5.
  const core::CeffIteration half = core::iterate_ceff1(load, 0.5, transition);
  // "Charge till 100 %": the single Ceff of Sec. 5 (f = 1).
  const core::CeffIteration full = core::iterate_ceff_single(load, transition);
  const double c_total = wire.capacitance + c_far;
  std::printf("\nCeff(till 50%%) = %.3f pF   Ceff(till 100%%) = %.3f pF   Ctotal = %.3f pF\n",
              half.ceff / pf, full.ceff / pf, c_total / pf);

  // Reference: driver into the real line; approximations: driver into Ceff.
  tech::DeckOptions deck;
  deck.segments = 160;
  deck.dt = 0.25 * ps;
  deck.t_stop = 1.2e-9;
  const tech::LineSimResult actual = tech::simulate_driver_line(
      bench::technology(), tech::Inverter{size}, slew, wire, deck);
  const wave::Waveform w_half = tech::simulate_driver_cap_load(
      bench::technology(), tech::Inverter{size}, slew, half.ceff, deck);
  const wave::Waveform w_full = tech::simulate_driver_cap_load(
      bench::technology(), tech::Inverter{size}, slew, full.ceff, deck);

  std::printf("\n'*' actual RLC load, '5' Ceff(till 50%%), '1' Ceff(till 100%%):\n");
  bench::ascii_plot({&actual.near_end, &w_half, &w_full}, {'*', '5', '1'}, 0.0,
                    700 * ps, 2.1);

  const double vdd = bench::technology().vdd;
  const auto m_act = wave::measure_rising_edge(actual.near_end, 0.0, vdd);
  const auto m_half = wave::measure_rising_edge(w_half, 0.0, vdd);
  const auto m_full = wave::measure_rising_edge(w_full, 0.0, vdd);
  const double t0 = actual.input_time_50;

  std::printf("\nwaveform              delay [ps]      slew 10-90 [ps]\n");
  std::printf("actual RLC load       %8.1f        %8.1f\n", (m_act.t50 - t0) / ps,
              m_act.transition_10_90() / ps);
  std::printf("Ceff till 50%%         %8.1f (%s)  %8.1f (%s)\n",
              (m_half.t50 - t0) / ps,
              bench::pct(100.0 * ((m_half.t50 - t0) / (m_act.t50 - t0) - 1.0)).c_str(),
              m_half.transition_10_90() / ps,
              bench::pct(100.0 * (m_half.transition_10_90() / m_act.transition_10_90() - 1.0))
                  .c_str());
  std::printf("Ceff till 100%%        %8.1f (%s)  %8.1f (%s)\n",
              (m_full.t50 - t0) / ps,
              bench::pct(100.0 * ((m_full.t50 - t0) / (m_act.t50 - t0) - 1.0)).c_str(),
              m_full.transition_10_90() / ps,
              bench::pct(100.0 * (m_full.transition_10_90() / m_act.transition_10_90() - 1.0))
                  .c_str());
  std::printf(
      "\npaper's conclusion: neither single capacitance captures both delay and\n"
      "slew of an inductive waveform -> two effective capacitances (Sec. 4).\n");
  return 0;
}
