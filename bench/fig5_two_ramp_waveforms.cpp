// Figure 5 reproduction: two-ramp model vs "HSPICE" driver output for the
// paper's two showcased cases:
//   left:  3 mm x 1.2 um line (R=56.3, L=3.2n, C=597f), 75X, slew 75 ps
//   right: 5 mm x 1.6 um line (R=72.4, L=5.1n, C=1.1p), 100X, slew 100 ps
#include <cstdio>

#include "bench_common.h"
#include "tech/wire.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

void run_case(const char* title, double length_mm, double width_um, double size,
              double slew) {
  const tech::WireParasitics wire = *tech::find_paper_wire_case(length_mm, width_um);
  api::Request c;
  c.label = title;
  c.cell_size = size;
  c.input_slew = slew;
  c.net = tech::line_net(wire, 20 * ff);
  c.reference = true;
  c.far_end = false;
  c.keep_waveforms = true;
  const api::Response r =
      bench::engine().model(c, bench::full_fidelity()).value();

  std::printf("\n-- %s --\n", title);
  std::printf("line R=%.1f ohm L=%.2f nH C=%.0f fF, driver %gX, input slew %.0f ps\n",
              wire.resistance, wire.inductance / nh, wire.capacitance / ff, size,
              slew / ps);
  std::printf("model: %s, f=%.2f (Rs=%.1f ohm, Z0=%.1f ohm), Ceff1=%.0f fF (Tr1=%.0f ps),"
              " Ceff2=%.0f fF (Tr2'=%.0f ps)\n",
              r.model.kind == core::ModelKind::two_ramp ? "two-ramp" : "one-ramp",
              r.model.f, r.model.rs, r.model.z0, r.model.ceff1.ceff / ff,
              r.model.ceff1.ramp_time / ps, r.model.ceff2.ceff / ff,
              r.model.tr2_new / ps);

  // The model lives in net time (t = 0 at input 50 %); shift to deck time.
  const wave::Waveform model_wave =
      r.model.waveform.to_waveform(600 * ps).shifted(r.input_time_50);
  std::printf("\n'*' HSPICE(sim), 'o' two-ramp model:\n");
  bench::ascii_plot({&r.ref_near_wave, &model_wave}, {'*', 'o'}, 0.0, 400 * ps, 2.1);

  std::printf("\n              HSPICE       2-ramp model\n");
  std::printf("delay [ps]    %8.2f     %8.2f  (%s)\n", r.ref_near.delay / ps,
              r.model_near.delay / ps,
              bench::pct(core::pct_error(r.model_near.delay, r.ref_near.delay)).c_str());
  std::printf("slew  [ps]    %8.2f     %8.2f  (%s)\n", r.ref_near.slew / ps,
              r.model_near.slew / ps,
              bench::pct(core::pct_error(r.model_near.slew, r.ref_near.slew)).c_str());
}

}  // namespace

int main() {
  std::printf("== Figure 5: two-ramp driver output response vs HSPICE ==\n");
  bench::warm_library({75.0, 100.0});
  run_case("left: 3 mm / 1.2 um, 75X, 75 ps", 3.0, 1.2, 75.0, 75 * ps);
  run_case("right: 5 mm / 1.6 um, 100X, 100 ps", 5.0, 1.6, 100.0, 100 * ps);
  std::printf(
      "\npaper: 'although the two-ramp model cannot capture all inductive\n"
      "behavior (such as oscillations after the breakpoint), the overall\n"
      "shape, including the breakpoint and key delay points, matches well'.\n");
  return 0;
}
