// Figure 6 reproduction.
//   Left: a weak 25X driver on a 4 mm x 1.6 um line fails the inductance
//   criteria (Rs >> Z0) and a single-Ceff ramp models the whole transition.
//   Right: near- and far-end responses for a 4 mm x 0.8 um line driven at
//   75X — the two-ramp model replayed through the line reproduces the far
//   end ("thus validating the two-ramp assumption at the near end").
#include <cstdio>

#include "bench_common.h"
#include "tech/wire.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  std::printf("== Figure 6: one-ramp case and far-end validation ==\n");
  bench::warm_library({25.0, 75.0});

  {
    std::printf("\n-- left: 4 mm / 1.6 um, 25X driver, slew 100 ps (RC-like) --\n");
    api::Request c;
    c.label = "fig6 left 4/1.6 25X";
    c.cell_size = 25.0;
    c.input_slew = 100 * ps;
    c.net = tech::line_net(*tech::find_paper_wire_case(4.0, 1.6), 20 * ff);
    c.reference = true;
    c.far_end = false;
    c.keep_waveforms = true;
    const api::Response r = bench::engine().model(c, bench::full_fidelity()).value();

    std::printf("criteria: load_small=%d line_low_loss=%d driver_fast=%d "
                "ramp_beats_flight=%d -> %s (Rs=%.0f ohm vs Z0=%.0f ohm)\n",
                r.model.criteria.load_small, r.model.criteria.line_low_loss,
                r.model.criteria.driver_fast, r.model.criteria.ramp_beats_flight,
                r.model.criteria.significant() ? "two-ramp" : "single Ceff",
                r.model.rs, r.model.z0);
    const wave::Waveform model_wave =
        r.model.waveform.to_waveform(1.2 * ns).shifted(r.input_time_50);
    std::printf("'*' HSPICE, 'o' 1-ramp model:\n");
    bench::ascii_plot({&r.ref_near_wave, &model_wave}, {'*', 'o'}, 0.0, 1000 * ps, 2.1);
    std::printf("delay: HSPICE %.1f ps, model %.1f ps (%s); slew: %.1f vs %.1f ps (%s)\n",
                r.ref_near.delay / ps, r.model_near.delay / ps,
                bench::pct(core::pct_error(r.model_near.delay, r.ref_near.delay)).c_str(),
                r.ref_near.slew / ps, r.model_near.slew / ps,
                bench::pct(core::pct_error(r.model_near.slew, r.ref_near.slew)).c_str());
  }

  {
    std::printf("\n-- right: 4 mm / 0.8 um, 75X driver, slew 50 ps (near + far end) --\n");
    api::Request c;
    c.label = "fig6 right 4/0.8 75X";
    c.cell_size = 75.0;
    c.input_slew = 50 * ps;
    c.net = tech::line_net(*tech::find_paper_wire_case(4.0, 0.8), 20 * ff);
    c.reference = true;
    c.keep_waveforms = true;
    const api::Response r = bench::engine().model(c, bench::full_fidelity()).value();

    std::printf("model kind: %s, f=%.2f\n",
                r.model.kind == core::ModelKind::two_ramp ? "two-ramp" : "one-ramp",
                r.model.f);
    const wave::Waveform model_near =
        r.model.waveform.to_waveform(1.0 * ns).shifted(r.input_time_50);
    std::printf("'*' HSPICE near, 'o' model near, '.' HSPICE far, ':' model far:\n");
    bench::ascii_plot({&r.ref_near_wave, &model_near, &r.ref_far_wave, &r.model_far_wave},
                      {'*', 'o', '.', ':'}, 0.0, 400 * ps, 2.2);

    std::printf("\n            HSPICE          model\n");
    std::printf("near delay  %8.2f ps    %8.2f ps (%s)\n", r.ref_near.delay / ps,
                r.model_near.delay / ps,
                bench::pct(core::pct_error(r.model_near.delay, r.ref_near.delay)).c_str());
    std::printf("near slew   %8.2f ps    %8.2f ps (%s)\n", r.ref_near.slew / ps,
                r.model_near.slew / ps,
                bench::pct(core::pct_error(r.model_near.slew, r.ref_near.slew)).c_str());
    std::printf("far  delay  %8.2f ps    %8.2f ps (%s)\n", r.ref_far.delay / ps,
                r.model_far.delay / ps,
                bench::pct(core::pct_error(r.model_far.delay, r.ref_far.delay)).c_str());
    std::printf("far  slew   %8.2f ps    %8.2f ps (%s)\n", r.ref_far.slew / ps,
                r.model_far.slew / ps,
                bench::pct(core::pct_error(r.model_far.slew, r.ref_far.slew)).c_str());
    std::printf("(paper footnote 2: the modeled far end shows extra overshoot from the\n"
                " ramp approximation at the near end)\n");
  }
  return 0;
}
