// Figure 7 reproduction: two-ramp model delay and slew vs "HSPICE" over the
// full inductive sweep.
//
// Sweep (paper Sec. 6): lengths 1-7 mm, widths 0.8-3.5 um, drivers 25X-125X,
// input slews 50-200 ps, parasitics from the fitted wire model.  Cases are
// screened with the Eq-9 criteria exactly as the flow prescribes; only the
// inductively-significant ones are simulated and plotted (the paper found
// 165 such cases).  Reported alongside the paper's headline statistics:
// average delay error 6 %, average slew error 11.1 %; delay 48 % < 5 % and
// 83 % < 10 %; slew 31 % < 5 % and 61 % < 10 %.
#include <cstdio>

#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/sweep.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

// ASCII scatter of (x, y) pairs with the y = x diagonal.
void ascii_scatter(const std::vector<std::pair<double, double>>& pts, double lo,
                   double hi, const char* axis_label) {
  constexpr int w = 61;
  constexpr int h = 25;
  std::vector<std::string> canvas(h, std::string(w, ' '));
  auto to_x = [&](double v) {
    return static_cast<int>((v - lo) / (hi - lo) * (w - 1) + 0.5);
  };
  for (int x = 0; x < w; ++x) {
    const int y = static_cast<int>(static_cast<double>(x) / (w - 1) * (h - 1) + 0.5);
    canvas[static_cast<std::size_t>(h - 1 - y)][static_cast<std::size_t>(x)] = '.';
  }
  for (const auto& [rx, ry] : pts) {
    const int x = to_x(rx);
    const int y = static_cast<int>((ry - lo) / (hi - lo) * (h - 1) + 0.5);
    if (x < 0 || x >= w || y < 0 || y >= h) continue;
    canvas[static_cast<std::size_t>(h - 1 - y)][static_cast<std::size_t>(x)] = 'x';
  }
  std::printf("  model %s ^ (diagonal = perfect match)\n", axis_label);
  for (const auto& row : canvas) std::printf("  |%s\n", row.c_str());
  std::printf("  +%s> HSPICE %s, %.0f..%.0f ps\n", std::string(w, '-').c_str(),
              axis_label, lo / ps, hi / ps);
}

}  // namespace

int main() {
  std::printf("== Figure 7: two-ramp model vs HSPICE over the inductive sweep ==\n");
  const std::vector<double> sizes = {25, 50, 75, 100, 125};
  bench::warm_library(sizes);

  const std::vector<double> lengths_mm = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<double> widths_um = {0.8, 1.2, 1.6, 2.0, 2.5, 3.0, 3.5};
  const std::vector<double> slews_ps = {50, 100, 150, 200};
  const tech::WireModel wires;

  const api::BatchOptions opt = bench::sweep_fidelity();

  // Phase 1: cheap screening with the model flow only (no simulation) —
  // model-only requests through the Engine batch path.
  std::vector<api::Request> screen;
  std::vector<bool> paper_region;  // the paper's "long, wide, fast" subset
  for (double l : lengths_mm) {
    for (double w : widths_um) {
      for (double size : sizes) {
        for (double slew : slews_ps) {
          api::Request r;
          char label[64];
          std::snprintf(label, sizeof label, "%gmm/%gum %gX %gps", l, w, size, slew);
          r.label = label;
          r.cell_size = size;
          r.input_slew = slew * ps;
          r.net = tech::line_net(wires.extract({l * mm, w * um}), 20 * ff);
          // The historical sweep uses the last Ceff iterate even when the
          // fixed point stalls (a handful of borderline cases); keep that
          // semantics so the Fig-7 statistics stay comparable across PRs.
          r.require_convergence = false;
          screen.push_back(std::move(r));
          paper_region.push_back(l >= 3.0 && w >= 1.6 && size >= 75.0);
        }
      }
    }
  }
  const std::vector<api::Response> screened =
      bench::unwrap(bench::engine().run_batch(screen, opt));

  // Phase 2: simulate the inductively-significant cases.  Same requests,
  // now with the transient reference; the one-ramp baseline column costs no
  // extra simulation (model only) and feeds the BENCH_accuracy.json
  // trajectory.
  std::vector<api::Request> inductive;
  std::vector<bool> inductive_region;
  for (std::size_t k = 0; k < screen.size(); ++k) {
    if (screened[k].model.kind == core::ModelKind::one_ramp) continue;
    api::Request r = std::move(screen[k]);
    r.reference = true;
    r.far_end = false;
    r.one_ramp_baseline = true;
    inductive.push_back(std::move(r));
    inductive_region.push_back(paper_region[k]);
  }
  std::printf("screened %zu sweep points -> %zu inductively significant cases "
              "(paper: 165)\n",
              screen.size(), inductive.size());

  std::printf("# simulating %zu cases on %u threads\n", inductive.size(),
              sim::sweep_worker_count(inductive.size(), 0));
  std::fflush(stdout);
  const std::vector<api::Response> metrics =
      bench::unwrap(bench::engine().run_batch(inductive, opt));

  std::vector<std::pair<double, double>> delay_pts, slew_pts;
  std::vector<double> delay_errs, slew_errs;
  std::vector<double> one_delay_errs, one_slew_errs;
  std::vector<double> delay_errs_core, slew_errs_core;  // paper's sub-region
  for (std::size_t k = 0; k < inductive.size(); ++k) {
    const api::Response& m = metrics[k];
    delay_pts.emplace_back(m.ref_near.delay, m.model_near.delay);
    slew_pts.emplace_back(m.ref_near.slew, m.model_near.slew);
    delay_errs.push_back(core::pct_error(m.model_near.delay, m.ref_near.delay));
    slew_errs.push_back(core::pct_error(m.model_near.slew, m.ref_near.slew));
    one_delay_errs.push_back(core::pct_error(m.one_near.delay, m.ref_near.delay));
    one_slew_errs.push_back(core::pct_error(m.one_near.slew, m.ref_near.slew));
    if (inductive_region[k]) {
      delay_errs_core.push_back(delay_errs.back());
      slew_errs_core.push_back(slew_errs.back());
    }
  }

  bench::update_accuracy_json(
      "fig7", bench::two_model_error_metrics(delay_errs, slew_errs, one_delay_errs,
                                             one_slew_errs));
  std::printf("# accuracy metrics written to BENCH_accuracy.json (fig7.*)\n");

  std::printf("\ndelay scatter:\n");
  ascii_scatter(delay_pts, 0.0, 100 * ps, "delay");
  std::printf("\nslew scatter:\n");
  ascii_scatter(slew_pts, 0.0, 350 * ps, "slew");

  std::printf("\nstatistic                       measured    paper\n");
  std::printf("inductive cases                 %8zu      165\n", delay_errs.size());
  std::printf("avg |delay error|               %7.1f %%    6.0 %%\n",
              util::mean_abs(delay_errs));
  std::printf("avg |slew error|                %7.1f %%   11.1 %%\n",
              util::mean_abs(slew_errs));
  std::printf("delay cases under 5 %% error     %7.0f %%     48 %%\n",
              100.0 * util::fraction_below(delay_errs, 5.0));
  std::printf("delay cases under 10 %% error    %7.0f %%     83 %%\n",
              100.0 * util::fraction_below(delay_errs, 10.0));
  std::printf("slew cases under 5 %% error      %7.0f %%     31 %%\n",
              100.0 * util::fraction_below(slew_errs, 5.0));
  std::printf("slew cases under 10 %% error     %7.0f %%     61 %%\n",
              100.0 * util::fraction_below(slew_errs, 10.0));

  // Our Eq-9 screen admits more borderline cases than the paper's 165 (their
  // exact sweep grid and Rs extraction differ); restricting to the region
  // the paper highlights as inductive (>= 3 mm, >= 1.6 um, >= 75X) gives the
  // closest comparison.
  std::printf("\nrestricted to the paper's 'long, wide, fast' region:\n");
  std::printf("cases                           %8zu\n", delay_errs_core.size());
  std::printf("avg |delay error|               %7.1f %%    6.0 %%\n",
              util::mean_abs(delay_errs_core));
  std::printf("avg |slew error|                %7.1f %%   11.1 %%\n",
              util::mean_abs(slew_errs_core));
  std::printf("delay cases under 10 %% error    %7.0f %%     83 %%\n",
              100.0 * util::fraction_below(delay_errs_core, 10.0));
  std::printf("slew cases under 10 %% error     %7.0f %%     61 %%\n",
              100.0 * util::fraction_below(slew_errs_core, 10.0));
  return 0;
}
