// Large-topology scaling benchmark for the solver-selection layer: the
// workloads the dense path cannot serve.
//
//   * A 10k-sink clock tree (fanout-10 root, balanced binary subtrees,
//     ~41k MNA unknowns).  The dense Jacobian alone would be ~13 GB, so this
//     deck is only feasible on the sparse backend; we record its ns/step to
//     pin the sparse path's scaling on the record.
//   * A 64-net coupled bus (capacitive + inductive coupling between
//     neighbors, ~1.2k unknowns).  Small enough that the dense and banded
//     backends still run, so this is where the sparse-vs-dense speedup claim
//     is measured head to head: the deck is linear (source-driven), every
//     backend factors once, and the per-step cost is one substitution —
//     O(n^2) dense versus O(nnz(LU)) sparse.
//
// Also audits the automatic selection heuristic over a small portfolio of
// decks (tree, bus, long single line, tiny pi load, all-to-all short bus)
// and records how many picked each backend.  Results merge into BENCH_perf.json under the
// "large_topology." section (perf_model_vs_spice owns the unprefixed
// metrics; CI runs it first, then this bench — see update_bench_json).
//
// --smoke trims the tree depth and the horizons for CI; the bus keeps its
// full 64 nets so the speedup metric stays representative.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "circuit/builders.h"
#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "net/coupled.h"
#include "net/net.h"
#include "sim/transient.h"
#include "util/units.h"
#include "waveform/pwl.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

// ------------------------------------------------------------- workloads ---

// A balanced binary clock subtree with `levels` branch levels; leaves carry a
// sink load.  Wire numbers are per-segment H-tree-ish values: short stubs
// with a few ohms and femtofarads each.
net::Branch clock_subtree(int levels) {
  net::Branch b;
  net::Section s;
  s.resistance = 10.0 * ohm;
  s.inductance = 0.02 * nh;
  s.capacitance = 5.0 * ff;
  b.sections.push_back(s);
  if (levels <= 1) {
    b.c_load = 3.0 * ff;
    return b;
  }
  b.children.push_back(clock_subtree(levels - 1));
  b.children.push_back(clock_subtree(levels - 1));
  return b;
}

// Fanout-10 trunk feeding ten balanced binary subtrees: levels = 11 gives
// 10 * 2^10 = 10240 sinks.
net::Net clock_tree(int levels) {
  net::Branch root;
  net::Section trunk;
  trunk.resistance = 5.0 * ohm;
  trunk.inductance = 0.05 * nh;
  trunk.capacitance = 20.0 * ff;
  root.sections.push_back(trunk);
  for (int k = 0; k < 10; ++k) root.children.push_back(clock_subtree(levels));
  return net::Net(root);
}

// 64 parallel bus lines, every adjacent pair coupled capacitively and
// inductively over the full overlap.
net::CoupledGroup bus_group(std::size_t nets) {
  net::CoupledGroup group;
  for (std::size_t k = 0; k < nets; ++k) {
    group.add_net(net::Net::uniform_line(200.0 * ohm, 2.0 * nh, 300.0 * ff, 20.0 * ff),
                  "bus" + std::to_string(k));
  }
  for (std::size_t k = 0; k + 1 < nets; ++k) {
    group.couple_capacitance({k, 0}, {k + 1, 0}, 100.0 * ff);
    group.couple_inductance({k, 0}, {k + 1, 0}, 0.25);
  }
  return group;
}

struct Deck {
  ckt::Netlist netlist;
  std::vector<ckt::NodeId> probes;
};

Deck tree_deck(int levels) {
  Deck deck;
  const ckt::NodeId src = deck.netlist.node("src");
  deck.netlist.add_vsource(src, ckt::ground,
                           wave::Pwl({{10.0 * ps, 0.0}, {110.0 * ps, 1.8}}));
  const ckt::NetDeckNodes nodes =
      ckt::append_net(deck.netlist, src, clock_tree(levels), 1);
  // Probe only the root and one representative sink: recording all ~10k leaf
  // waveforms would cost more memory than the sparse factorization itself.
  deck.probes = {nodes.near_end, nodes.leaves.front()};
  return deck;
}

Deck bus_deck(std::size_t nets, std::size_t segments) {
  Deck deck;
  std::vector<ckt::NodeId> from;
  for (std::size_t k = 0; k < nets; ++k) {
    const ckt::NodeId src = deck.netlist.node("src" + std::to_string(k));
    // Staggered, alternating edges so neighboring aggressors genuinely fight.
    const double t0 = 10.0 * ps + static_cast<double>(k % 4) * 5.0 * ps;
    const double t1 = t0 + 60.0 * ps;
    const wave::Pwl edge = (k % 2 == 0) ? wave::Pwl({{t0, 0.0}, {t1, 1.8}})
                                        : wave::Pwl({{t0, 1.8}, {t1, 0.0}});
    deck.netlist.add_vsource(src, ckt::ground, edge);
    from.push_back(src);
  }
  const ckt::CoupledDeckNodes nodes =
      ckt::append_coupled_group(deck.netlist, from, bus_group(nets), segments);
  deck.probes = {nodes.nets.front().leaves.front(),
                 nodes.nets[nets / 2].leaves.front()};
  return deck;
}

// ---------------------------------------------------------------- timing ---

struct Timing {
  std::size_t steps = 0;
  double ns_per_step = 0.0;
  double steps_per_s = 0.0;
};

Timing time_deck(const Deck& deck, sim::SolverKind solver, double t_stop, double dt,
                 int reps) {
  sim::TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = dt;
  opt.solver = solver;

  Timing timing;
  timing.steps = static_cast<std::size_t>(t_stop / dt);

  using clock = std::chrono::steady_clock;
  double best_s = 1e300;
  (void)sim::simulate(deck.netlist, opt, deck.probes);  // warm-up
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = clock::now();
    const sim::TransientResult res = sim::simulate(deck.netlist, opt, deck.probes);
    const auto t1 = clock::now();
    if (res.at(deck.probes.front()).size() == 0) std::exit(1);  // keep `res` live
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  timing.ns_per_step = best_s * 1e9 / static_cast<double>(timing.steps);
  timing.steps_per_s = static_cast<double>(timing.steps) / best_s;
  return timing;
}

std::size_t unknowns_of(const Deck& deck) {
  return ckt::MnaStructure(deck.netlist).unknown_count();
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::list_metrics_requested(argc, argv)) {
    // Keep in sync with the update_bench_json call below (the key-set smoke
    // diffs this list against the checked-in BENCH_perf.json).
    bench::list_metrics(
        "large_topology",
        {"tree_sinks", "tree_unknowns", "tree_steps", "tree_sparse_ns_per_step",
         "tree_sparse_steps_per_s", "bus_nets", "bus_unknowns", "bus_steps",
         "bus_dense_ns_per_step", "bus_banded_ns_per_step",
         "bus_sparse_ns_per_step", "bus_sparse_vs_dense_speedup",
         "selected_dense", "selected_banded", "selected_sparse"});
    return 0;
  }
  bool smoke = false;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) smoke = true;
  }

  // ---- selection audit (always on the full-size topologies: selected_solver
  // only inspects the netlist structure, so this is cheap even in smoke).
  std::size_t picked_dense = 0, picked_banded = 0, picked_sparse = 0;
  auto audit = [&](const char* name, const ckt::Netlist& nl) {
    const sim::SolverKind kind = sim::selected_solver(nl);
    if (kind == sim::SolverKind::dense) ++picked_dense;
    if (kind == sim::SolverKind::banded) ++picked_banded;
    if (kind == sim::SolverKind::sparse) ++picked_sparse;
    std::printf("  auto(%-12s n=%6zu) -> %s\n", name,
                ckt::MnaStructure(nl).unknown_count(), sim::to_string(kind));
  };
  std::printf("== automatic solver selection ==\n");
  {
    const Deck tree = tree_deck(11);
    const Deck bus = bus_deck(64, 8);
    ckt::Netlist line;
    const ckt::NodeId src = line.node("src");
    line.add_vsource(src, ckt::ground, wave::Pwl({{10.0 * ps, 0.0}, {110.0 * ps, 1.8}}));
    ckt::append_rlc_ladder(line, src, 200.0 * ohm, 2.0 * nh, 300.0 * ff, 120);
    ckt::Netlist tiny;
    const ckt::NodeId tsrc = tiny.node("src");
    tiny.add_vsource(tsrc, ckt::ground, wave::Pwl({{10.0 * ps, 0.0}, {110.0 * ps, 1.8}}));
    ckt::append_pi_load(tiny, tsrc, 10.0 * ff, 100.0 * ohm, 20.0 * ff);
    // A short all-to-all coupled bus: wide band after RCM but too small for
    // the sparse path to pay off, so the heuristic keeps it dense.
    ckt::Netlist crossbar;
    {
      net::CoupledGroup g;
      for (std::size_t k = 0; k < 12; ++k) {
        g.add_net(net::Net::uniform_line(40.0 * ohm, 0.8 * nh, 150.0 * ff, 10.0 * ff),
                  "bit" + std::to_string(k));
      }
      for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = i + 1; j < 12; ++j) {
          g.couple_capacitance({i, 0}, {j, 0}, 8.0 * ff);
        }
      }
      std::vector<ckt::NodeId> from;
      for (std::size_t k = 0; k < 12; ++k) {
        const ckt::NodeId s = crossbar.node("out" + std::to_string(k));
        crossbar.add_vsource(s, ckt::ground, wave::Pwl({{10.0 * ps, 0.0}, {110.0 * ps, 1.8}}));
        from.push_back(s);
      }
      ckt::append_coupled_group(crossbar, from, g, 2);
    }
    audit("clock_tree", tree.netlist);
    audit("coupled_bus", bus.netlist);
    audit("long_line", line);
    audit("pi_load", tiny);
    audit("crossbar", crossbar);
  }

  // ---- workload A: the 10k-sink clock tree, sparse only (a dense Jacobian
  // at this size would be ~13 GB).
  const int tree_levels = smoke ? 7 : 11;
  const double tree_t_stop = smoke ? 0.5 * ns : 1.0 * ns;
  const int tree_reps = smoke ? 2 : 3;
  const Deck tree = tree_deck(tree_levels);
  const std::size_t tree_sinks = 10u * (1u << (tree_levels - 1));
  const std::size_t tree_unknowns = unknowns_of(tree);
  std::printf("== clock tree: %zu sinks, %zu unknowns ==\n", tree_sinks, tree_unknowns);
  const Timing tree_sparse =
      time_deck(tree, sim::SolverKind::sparse, tree_t_stop, 1.0 * ps, tree_reps);
  std::printf("  sparse: %10.1f ns/step  %10.0f steps/s  (%zu steps)\n",
              tree_sparse.ns_per_step, tree_sparse.steps_per_s, tree_sparse.steps);

  // ---- workload B: the 64-net coupled bus, all three backends head to head.
  const double bus_t_stop = smoke ? 0.3 * ns : 1.0 * ns;
  const int bus_reps = smoke ? 2 : 3;
  const Deck bus = bus_deck(64, 8);
  const std::size_t bus_unknowns = unknowns_of(bus);
  std::printf("== coupled bus: 64 nets, %zu unknowns ==\n", bus_unknowns);
  const Timing bus_dense =
      time_deck(bus, sim::SolverKind::dense, bus_t_stop, 0.5 * ps, bus_reps);
  const Timing bus_banded =
      time_deck(bus, sim::SolverKind::banded, bus_t_stop, 0.5 * ps, bus_reps);
  const Timing bus_sparse =
      time_deck(bus, sim::SolverKind::sparse, bus_t_stop, 0.5 * ps, bus_reps);
  const double speedup = bus_dense.ns_per_step / bus_sparse.ns_per_step;
  std::printf("  dense:  %10.1f ns/step  %10.0f steps/s  (%zu steps)\n",
              bus_dense.ns_per_step, bus_dense.steps_per_s, bus_dense.steps);
  std::printf("  banded: %10.1f ns/step  %10.0f steps/s\n", bus_banded.ns_per_step,
              bus_banded.steps_per_s);
  std::printf("  sparse: %10.1f ns/step  %10.0f steps/s\n", bus_sparse.ns_per_step,
              bus_sparse.steps_per_s);
  std::printf("  sparse vs dense: %.2fx\n", speedup);

  bench::update_bench_json(
      "BENCH_perf.json", "perf", "large_topology",
      {{"tree_sinks", static_cast<double>(tree_sinks), "count"},
       {"tree_unknowns", static_cast<double>(tree_unknowns), "count"},
       {"tree_steps", static_cast<double>(tree_sparse.steps), "count"},
       {"tree_sparse_ns_per_step", tree_sparse.ns_per_step, "ns/step"},
       {"tree_sparse_steps_per_s", tree_sparse.steps_per_s, "steps/s"},
       {"bus_nets", 64.0, "count"},
       {"bus_unknowns", static_cast<double>(bus_unknowns), "count"},
       {"bus_steps", static_cast<double>(bus_dense.steps), "count"},
       {"bus_dense_ns_per_step", bus_dense.ns_per_step, "ns/step"},
       {"bus_banded_ns_per_step", bus_banded.ns_per_step, "ns/step"},
       {"bus_sparse_ns_per_step", bus_sparse.ns_per_step, "ns/step"},
       {"bus_sparse_vs_dense_speedup", speedup, "x"},
       {"selected_dense", static_cast<double>(picked_dense), "count"},
       {"selected_banded", static_cast<double>(picked_banded), "count"},
       {"selected_sparse", static_cast<double>(picked_sparse), "count"}});
  std::printf("(merged into BENCH_perf.json under \"large_topology.\")\n");
  return 0;
}
