// Lint-overhead benchmark: what admission screening costs next to the work
// it gates.
//
// The Engine's lint screen must be cheap enough to leave on for every batch:
// the acceptance bar is that structurally screening the Fig-7 sweep grid
// (7 lengths x 7 widths x 4 slews, the same 196-request batch
// perf_model_vs_spice measures as engine_batch_nets_per_s) costs under 1% of
// evaluating that batch model-only.  This bench times three things over the
// identical request set:
//   * screen  — the structural core the admission gate runs (connectivity +
//     physicality tree walk; conditioning/model passes off),
//   * deep    — the full advisory pass (conditioning + Eq 9 model checks,
//     driver context filled the way the Engine fills it),
//   * model   — Engine::run_batch model-only, the work being gated.
// Results merge into BENCH_perf.json as the "lint." section (CI asserts the
// screen fraction stays under 1e-2).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "lint/lint.h"
#include "tech/wire.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

std::vector<api::Request> fig7_grid() {
  const tech::WireModel wires;
  std::vector<api::Request> requests;
  for (double l : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}) {
    for (double w : {0.8, 1.2, 1.6, 2.0, 2.5, 3.0, 3.5}) {
      for (double slew : {50.0, 100.0, 150.0, 200.0}) {
        api::Request r;
        r.cell_size = 100.0;
        r.input_slew = slew * ps;
        r.net = tech::line_net(wires.extract({l * mm, w * um}), 20 * ff);
        // Same last-iterate semantics as perf_model_vs_spice: a few
        // borderline grid points stall the Ceff2 fixed point, and a timing
        // denominator over a batch with failed slots would be meaningless.
        r.require_convergence = false;
        requests.push_back(std::move(r));
      }
    }
  }
  return requests;
}

// Best-of-reps wall time of one full lint pass over the batch.  The
// structural walk is nanoseconds per net, so the pass is repeated enough to
// sit well above clock granularity.
double time_lint_pass(const std::vector<api::Request>& requests,
                      const lint::Options& options, int reps) {
  using clock = std::chrono::steady_clock;
  double best_s = 1e300;
  std::size_t findings = 0;  // consumed so the walk cannot be optimized away
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = clock::now();
    for (const api::Request& r : requests) {
      findings += lint::lint_net(r.net, options).diagnostics.size();
    }
    best_s = std::min(
        best_s, std::chrono::duration<double>(clock::now() - t0).count());
  }
  if (findings == static_cast<std::size_t>(-1)) std::printf("unreachable\n");
  return best_s;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::list_metrics_requested(argc, argv)) {
    // Keep in sync with the update_bench_json call below (the key-set smoke
    // diffs this list against the checked-in BENCH_perf.json).
    bench::list_metrics("lint",
                        {"grid_nets", "screen_ns_per_net", "screen_total_us",
                         "deep_ns_per_net", "model_batch_s",
                         "screen_overhead_fraction"});
    return 0;
  }
  const std::vector<api::Request> requests = fig7_grid();
  const double n = static_cast<double>(requests.size());

  // The admission screen's exact configuration: structural core only.
  const lint::Options screen = api::LintOptions::structural_only();
  const double screen_s = time_lint_pass(requests, screen, 25);

  // The full advisory pass, driver context filled the way the Engine fills
  // it (static Rs estimate + input slew as the Tr1 proxy).
  api::Engine engine{tech::Technology::cmos180()};
  lint::Options deep;
  deep.driver_resistance =
      lint::estimate_driver_resistance(engine.technology(), 100.0);
  deep.input_slew = 100 * ps;
  const double deep_s = time_lint_pass(requests, deep, 5);

  // The gated work: the same grid, model-only, through run_batch (small
  // on-the-fly characterization grid, identical to perf_model_vs_spice).
  api::BatchOptions opt;
  opt.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  opt.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};
  engine.warm_cache({100.0}, opt.grid);
  using clock = std::chrono::steady_clock;
  double model_s = 1e300;
  (void)engine.run_batch(requests, opt);  // warm-up
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    const auto results = engine.run_batch(requests, opt);
    model_s = std::min(
        model_s, std::chrono::duration<double>(clock::now() - t0).count());
    for (const auto& outcome : results) {
      if (!outcome.ok()) {
        std::fprintf(stderr, "lint_overhead: unexpected failure [%s]: %s\n",
                     api::to_string(outcome.error().code),
                     outcome.error().message.c_str());
        return 1;
      }
    }
  }

  const double overhead = screen_s / model_s;
  std::printf("== lint overhead (Fig-7 grid, %zu nets) ==\n", requests.size());
  std::printf("  admission screen (structural): %8.1f us total  %7.0f ns/net\n",
              1e6 * screen_s, 1e9 * screen_s / n);
  std::printf("  deep pass (conditioning+Eq9):  %8.1f us total  %7.0f ns/net\n",
              1e6 * deep_s, 1e9 * deep_s / n);
  std::printf("  model-only batch:              %8.1f ms total\n", 1e3 * model_s);
  std::printf("  screen / model-batch overhead: %.4f%%  (bar: < 1%%)\n",
              1e2 * overhead);

  bench::update_bench_json(
      "BENCH_perf.json", "perf", "lint",
      {{"grid_nets", n, "count"},
       {"screen_ns_per_net", 1e9 * screen_s / n, "ns/net"},
       {"screen_total_us", 1e6 * screen_s, "us"},
       {"deep_ns_per_net", 1e9 * deep_s / n, "ns/net"},
       {"model_batch_s", model_s, "s"},
       {"screen_overhead_fraction", overhead, ""}});
  std::printf("(merged into BENCH_perf.json under \"lint.\")\n");
  return overhead < 0.01 ? 0 : 1;
}
