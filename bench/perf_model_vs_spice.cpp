// Performance benchmark backing the paper's "computationally efficient"
// claim: the full library-compatible modeling flow (moments -> Eq-3 fit ->
// breakpoint -> Ceff1/Ceff2 iterations -> two-ramp assembly) versus the
// transient simulation it replaces.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "circuit/builders.h"
#include "circuit/mna.h"
#include "core/ceff.h"
#include "core/charge.h"
#include "core/driver_model.h"
#include "moments/admittance.h"
#include "moments/awe.h"
#include "sim/transient.h"
#include "tech/testbench.h"
#include "tech/wire.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

const tech::WireParasitics& wire() {
  static const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  return w;
}

// ------------------------------------------------------------------------
// Factor-once transient engine numbers (BENCH_perf.json).
//
// The linear RLC line is the paper's "HSPICE" reference deck with the driver
// replaced by an ideal ramp: a purely linear circuit, so the cached engine
// factors its companion matrix once per run while the naive engine rebuilds
// and refactors it on every step (the pre-refactor behavior).

struct TransientTiming {
  double ns_per_step = 0.0;
  double steps_per_s = 0.0;
  std::size_t steps = 0;
  std::size_t unknowns = 0;
};

TransientTiming time_linear_line(sim::AssemblyMode mode) {
  ckt::Netlist nl;
  const ckt::NodeId src = nl.node("src");
  nl.add_vsource(src, ckt::ground, wave::Pwl({{10 * ps, 0.0}, {110 * ps, 1.8}}));
  const ckt::LadderNodes line = ckt::append_rlc_ladder(
      nl, src, wire().resistance, wire().inductance, wire().capacitance, 120);
  nl.add_capacitor(line.far_end, ckt::ground, 20 * ff);

  sim::TransientOptions opt;
  opt.t_stop = 1.0 * ns;
  opt.dt = 0.25 * ps;
  opt.assembly = mode;
  const std::array<ckt::NodeId, 1> probes{line.far_end};

  TransientTiming timing;
  timing.steps = static_cast<std::size_t>(opt.t_stop / opt.dt);
  timing.unknowns = ckt::MnaStructure(nl).unknown_count();

  using clock = std::chrono::steady_clock;
  double best_s = 1e300;
  (void)sim::simulate(nl, opt, probes);  // warm-up
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = clock::now();
    const auto res = sim::simulate(nl, opt, probes);
    const auto t1 = clock::now();
    benchmark::DoNotOptimize(res.at(line.far_end).size());
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  timing.ns_per_step = best_s * 1e9 / static_cast<double>(timing.steps);
  timing.steps_per_s = static_cast<double>(timing.steps) / best_s;
  return timing;
}

// Engine batch throughput: the Fig-7 sweep grid (7 lengths x 7 widths x 4
// slews, one driver) evaluated model-only through api::Engine::run_batch —
// the "library-based static timing engine" workload the facade serves.  A
// small on-the-fly characterization grid keeps this CI-friendly.
struct BatchTiming {
  std::size_t nets = 0;
  double nets_per_s = 0.0;
};

BatchTiming time_engine_batch() {
  api::Engine engine{tech::Technology::cmos180()};
  api::BatchOptions opt;
  // Pinned to one worker: engine_batch_nets_per_s is a trajectory metric, and
  // letting the pool width float with the runner's core count made the series
  // drift machine-to-machine.  Throughput here is per-core by definition.
  opt.n_threads = 1;
  opt.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  opt.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};
  engine.warm_cache({100.0}, opt.grid);

  const tech::WireModel wires;
  std::vector<api::Request> requests;
  for (double l : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}) {
    for (double w : {0.8, 1.2, 1.6, 2.0, 2.5, 3.0, 3.5}) {
      for (double slew : {50.0, 100.0, 150.0, 200.0}) {
        api::Request r;
        r.cell_size = 100.0;
        r.input_slew = slew * ps;
        r.net = tech::line_net(wires.extract({l * mm, w * um}), 20 * ff);
        // Same last-iterate semantics as fig7_scatter: a few borderline grid
        // points stall the Ceff2 fixed point, and a throughput number over a
        // batch with failed slots would be meaningless.
        r.require_convergence = false;
        requests.push_back(std::move(r));
      }
    }
  }

  using clock = std::chrono::steady_clock;
  double best_s = 1e300;
  (void)engine.run_batch(requests, opt);  // warm-up
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    const auto results = engine.run_batch(requests, opt);
    const auto t1 = clock::now();
    for (const auto& outcome : results) {
      if (!outcome.ok()) {
        std::fprintf(stderr, "engine batch: unexpected failure [%s]: %s\n",
                     api::to_string(outcome.error().code),
                     outcome.error().message.c_str());
        std::exit(1);
      }
    }
    benchmark::DoNotOptimize(results.size());
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return {requests.size(), static_cast<double>(requests.size()) / best_s};
}

void emit_perf_json() {
  const TransientTiming cached = time_linear_line(sim::AssemblyMode::cached);
  const TransientTiming naive = time_linear_line(sim::AssemblyMode::naive);
  const double speedup = naive.ns_per_step / cached.ns_per_step;
  const BatchTiming batch = time_engine_batch();

  // Bench name "perf": BENCH_perf.json is shared with large_topology, which
  // merges its section into whatever this overwrite leaves behind (CI runs
  // this binary first, so these unprefixed metrics define the file).
  bench::write_bench_json(
      "BENCH_perf.json", "perf",
      {{"linear_line_unknowns", static_cast<double>(cached.unknowns), "count"},
       {"linear_line_steps", static_cast<double>(cached.steps), "count"},
       {"linear_line_cached_ns_per_step", cached.ns_per_step, "ns/step"},
       {"linear_line_cached_steps_per_s", cached.steps_per_s, "steps/s"},
       {"linear_line_naive_ns_per_step", naive.ns_per_step, "ns/step"},
       {"linear_line_naive_steps_per_s", naive.steps_per_s, "steps/s"},
       {"linear_line_factor_once_speedup", speedup, "x"},
       {"engine_batch_nets", static_cast<double>(batch.nets), "count"},
       {"engine_batch_nets_per_s", batch.nets_per_s, "nets/s"}});

  std::printf("== factor-once transient engine (120-segment RLC line, %zu unknowns, "
              "%zu steps) ==\n",
              cached.unknowns, cached.steps);
  std::printf("  cached (factor once):      %8.1f ns/step  %10.0f steps/s\n",
              cached.ns_per_step, cached.steps_per_s);
  std::printf("  naive (refactor per step): %8.1f ns/step  %10.0f steps/s\n",
              naive.ns_per_step, naive.steps_per_s);
  std::printf("  speedup: %.2fx\n", speedup);
  std::printf("== api::Engine model-only batch (Fig-7 grid) ==\n");
  std::printf("  %zu nets: %.0f nets/s  (written to BENCH_perf.json)\n\n",
              batch.nets, batch.nets_per_s);
  std::fflush(stdout);
}

void bm_moment_fit(benchmark::State& state) {
  for (auto _ : state) {
    const util::Series y = moments::distributed_line_admittance(
        wire().resistance, wire().inductance, wire().capacitance, 20 * ff);
    benchmark::DoNotOptimize(moments::RationalAdmittance(y));
  }
}
BENCHMARK(bm_moment_fit);

void bm_ceff_iterations(benchmark::State& state) {
  const util::Series y = moments::distributed_line_admittance(
      wire().resistance, wire().inductance, wire().capacitance, 20 * ff);
  const core::ChargeModel load{moments::RationalAdmittance(y)};
  const charlib::CharacterizedDriver& driver = *bench::library().find(100.0);
  const auto transition = [&](double c) { return driver.output_transition(100 * ps, c); };
  for (auto _ : state) {
    const auto it1 = core::iterate_ceff1(load, 0.65, transition);
    const auto it2 = core::iterate_ceff2(load, 0.65, it1.ramp_time, transition);
    benchmark::DoNotOptimize(it2.ceff);
  }
}
BENCHMARK(bm_ceff_iterations);

void bm_full_model_flow(benchmark::State& state) {
  const charlib::CharacterizedDriver& driver = *bench::library().find(100.0);
  for (auto _ : state) {
    const auto model = core::model_driver_output(driver, 100 * ps, wire(), 20 * ff);
    benchmark::DoNotOptimize(model.t50);
  }
}
BENCHMARK(bm_full_model_flow);

void bm_awe_far_end(benchmark::State& state) {
  const charlib::CharacterizedDriver& driver = *bench::library().find(100.0);
  const auto model = core::model_driver_output(driver, 100 * ps, wire(), 20 * ff);
  const util::Series h = moments::distributed_transfer(
      wire().resistance, wire().inductance, wire().capacitance, 20 * ff);
  const moments::AweModel awe = moments::AweModel::make(h, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(awe.response(model.waveform, 1 * ns, 5 * ps));
  }
}
BENCHMARK(bm_awe_far_end);

void bm_reference_transient(benchmark::State& state) {
  tech::DeckOptions deck;
  deck.segments = 120;
  deck.dt = 0.25 * ps;
  deck.t_stop = 1.0 * ns;
  for (auto _ : state) {
    const auto sim = tech::simulate_driver_line(bench::technology(),
                                                tech::Inverter{100.0}, 100 * ps,
                                                wire(), deck);
    benchmark::DoNotOptimize(sim.near_end.size());
  }
}
BENCHMARK(bm_reference_transient)->Unit(benchmark::kMillisecond);

void bm_far_end_replay_sim(benchmark::State& state) {
  const charlib::CharacterizedDriver& driver = *bench::library().find(100.0);
  const auto model = core::model_driver_output(driver, 100 * ps, wire(), 20 * ff);
  tech::DeckOptions deck;
  deck.segments = 120;
  deck.dt = 0.25 * ps;
  deck.t_stop = 1.0 * ns;
  for (auto _ : state) {
    const auto sim = tech::simulate_source_line(model.waveform, wire(), deck);
    benchmark::DoNotOptimize(sim.far_end.size());
  }
}
BENCHMARK(bm_far_end_replay_sim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (bench::list_metrics_requested(argc, argv)) {
    // Keep in sync with emit_perf_json (the key-set smoke diffs this list
    // against the checked-in BENCH_perf.json).
    bench::list_metrics(
        "", {"linear_line_unknowns", "linear_line_steps",
             "linear_line_cached_ns_per_step", "linear_line_cached_steps_per_s",
             "linear_line_naive_ns_per_step", "linear_line_naive_steps_per_s",
             "linear_line_factor_once_speedup", "engine_batch_nets",
             "engine_batch_nets_per_s"});
    return 0;
  }
  emit_perf_json();
  // --perf-json-only: stop after the engine numbers (used by CI, which does
  // not want to characterize a library).
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--perf-json-only") == 0) return 0;
  }
  bench::warm_library({100.0});
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
