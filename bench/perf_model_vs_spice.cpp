// Performance benchmark backing the paper's "computationally efficient"
// claim: the full library-compatible modeling flow (moments -> Eq-3 fit ->
// breakpoint -> Ceff1/Ceff2 iterations -> two-ramp assembly) versus the
// transient simulation it replaces.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/ceff.h"
#include "core/charge.h"
#include "core/driver_model.h"
#include "moments/admittance.h"
#include "moments/awe.h"
#include "tech/testbench.h"
#include "tech/wire.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

const tech::WireParasitics& wire() {
  static const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  return w;
}

void bm_moment_fit(benchmark::State& state) {
  for (auto _ : state) {
    const util::Series y = moments::distributed_line_admittance(
        wire().resistance, wire().inductance, wire().capacitance, 20 * ff);
    benchmark::DoNotOptimize(moments::RationalAdmittance(y));
  }
}
BENCHMARK(bm_moment_fit);

void bm_ceff_iterations(benchmark::State& state) {
  const util::Series y = moments::distributed_line_admittance(
      wire().resistance, wire().inductance, wire().capacitance, 20 * ff);
  const core::ChargeModel load{moments::RationalAdmittance(y)};
  const charlib::CharacterizedDriver& driver = *bench::library().find(100.0);
  const auto transition = [&](double c) { return driver.output_transition(100 * ps, c); };
  for (auto _ : state) {
    const auto it1 = core::iterate_ceff1(load, 0.65, transition);
    const auto it2 = core::iterate_ceff2(load, 0.65, it1.ramp_time, transition);
    benchmark::DoNotOptimize(it2.ceff);
  }
}
BENCHMARK(bm_ceff_iterations);

void bm_full_model_flow(benchmark::State& state) {
  const charlib::CharacterizedDriver& driver = *bench::library().find(100.0);
  for (auto _ : state) {
    const auto model = core::model_driver_output(driver, 100 * ps, wire(), 20 * ff);
    benchmark::DoNotOptimize(model.t50);
  }
}
BENCHMARK(bm_full_model_flow);

void bm_awe_far_end(benchmark::State& state) {
  const charlib::CharacterizedDriver& driver = *bench::library().find(100.0);
  const auto model = core::model_driver_output(driver, 100 * ps, wire(), 20 * ff);
  const util::Series h = moments::distributed_transfer(
      wire().resistance, wire().inductance, wire().capacitance, 20 * ff);
  const moments::AweModel awe = moments::AweModel::make(h, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(awe.response(model.waveform, 1 * ns, 5 * ps));
  }
}
BENCHMARK(bm_awe_far_end);

void bm_reference_transient(benchmark::State& state) {
  tech::DeckOptions deck;
  deck.segments = 120;
  deck.dt = 0.25 * ps;
  deck.t_stop = 1.0 * ns;
  for (auto _ : state) {
    const auto sim = tech::simulate_driver_line(bench::technology(),
                                                tech::Inverter{100.0}, 100 * ps,
                                                wire(), deck);
    benchmark::DoNotOptimize(sim.near_end.size());
  }
}
BENCHMARK(bm_reference_transient)->Unit(benchmark::kMillisecond);

void bm_far_end_replay_sim(benchmark::State& state) {
  const charlib::CharacterizedDriver& driver = *bench::library().find(100.0);
  const auto model = core::model_driver_output(driver, 100 * ps, wire(), 20 * ff);
  tech::DeckOptions deck;
  deck.segments = 120;
  deck.dt = 0.25 * ps;
  deck.t_stop = 1.0 * ns;
  for (auto _ : state) {
    const auto sim = tech::simulate_source_line(model.waveform, wire(), deck);
    benchmark::DoNotOptimize(sim.far_end.size());
  }
}
BENCHMARK(bm_far_end_replay_sim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::warm_library({100.0});
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
