// Randomized-fleet throughput + tier-cascade trajectory: the property
// harness's generator feeding the production batch path.
//
// Where BENCH_perf.json's engine_batch_nets_per_s measures the Fig-7 grid
// (one topology, swept parameters), this bench measures what a timing
// service actually sees: a mixed batch of generated uniform lines, tapered
// routes, branched trees, and coupled groups (testkit::random_request) run
// through api::Engine::run_batch.  Slots that fail to converge are counted,
// not hidden — the number of clean slots is part of the trajectory.
//
// Four passes, all pinned to one worker so the numbers are per-core and do
// not drift with the runner's thread count:
//
//   1. balanced   — TierPolicy::balanced end to end: per-tier hit rates,
//                   escalation counts, latency percentiles, fleet nets/s;
//   2. tier A     — the slots the router actually served analytically,
//                   tiled to a large batch and re-run force_analytical: the
//                   closed-form throughput claim (>1M nets/s);
//   3. tier B     — the whole fleet force_ceff: the legacy model-only speed;
//   4. tier C     — a small force_reference sample at reduced deck fidelity:
//                   transient nets/s, and the reference numbers behind the
//                   envelope-violation count the CI gate consumes.
//
// --calibrate widens pass 4 to every net and prints the observed worst-case
// relative/absolute errors per (tier, coupled) class — the numbers the
// checked-in envelopes in src/tier/envelope.cpp are set from (observed
// worst case plus margin).
//
// Usage: randomized_fleet [--nets N] [--seed S] [--calibrate]
//        [--envelope-sample K]
// Writes the "fleet." and "tier." sections of BENCH_perf.json, plus the
// deprecated stand-alone alias BENCH_random_fleet.json (same metrics, old
// unprefixed names) for consumers that still read the old file.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "testkit/generate.h"
#include "testkit/rng.h"
#include "tier/envelope.h"
#include "tier/tier.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

// Best-of-`reps` wall time for one run_batch call (after one warm-up).
double time_batch(const std::vector<api::Request>& requests,
                  const api::BatchOptions& options, int reps) {
  (void)bench::engine().run_batch(requests, options);
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = clock_type::now();
    const auto results = bench::engine().run_batch(requests, options);
    best = std::min(best, seconds_since(t0));
    if (results.size() != requests.size()) std::abort();
  }
  return best;
}

// Worst observed error of one (tier, coupled) class, for --calibrate.
struct ErrorEnvelope {
  std::size_t count = 0;
  double delay_rel = 0.0, delay_abs = 0.0;
  double slew_rel = 0.0, slew_abs = 0.0;
  double noise_short = 0.0;  // worst (simulated peak - closed-form bound)
  void fold(double value, double reference, double& rel, double& abs) {
    abs = std::max(abs, std::abs(value - reference));
    if (reference != 0.0)
      rel = std::max(rel, std::abs(value - reference) / std::abs(reference));
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (bench::list_metrics_requested(argc, argv)) {
    // Keep in sync with fleet_metrics/tier_metrics below (the key-set smoke
    // diffs this list against the checked-in BENCH_perf.json).
    bench::list_metrics("fleet",
                        {"nets", "coupled_nets", "ok_fraction", "nets_per_s",
                         "slot_p50_us", "slot_p95_us", "slot_p99_us",
                         "degraded_fraction"});
    bench::list_metrics("tier",
                        {"a_hit_rate", "b_hit_rate", "c_hit_rate",
                         "escalations_per_net", "a_nets_per_s", "b_nets_per_s",
                         "c_nets_per_s", "envelope_checked",
                         "envelope_violations"});
    return 0;
  }
  std::size_t n_nets = 256;
  std::uint64_t seed = 0x20030603ull;
  std::size_t envelope_sample = 48;
  bool calibrate = false;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--nets") == 0 && k + 1 < argc) {
      n_nets = static_cast<std::size_t>(std::atoll(argv[++k]));
    } else if (std::strcmp(argv[k], "--seed") == 0 && k + 1 < argc) {
      seed = std::strtoull(argv[++k], nullptr, 0);
    } else if (std::strcmp(argv[k], "--envelope-sample") == 0 && k + 1 < argc) {
      envelope_sample = static_cast<std::size_t>(std::atoll(argv[++k]));
    } else if (std::strcmp(argv[k], "--calibrate") == 0) {
      calibrate = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--nets N] [--seed S] [--calibrate] "
                   "[--envelope-sample K]\n",
                   argv[0]);
      return 1;
    }
  }

  // The generator draws cell sizes from a fixed six-size menu; warming them
  // up front keeps the timed regions pure model evaluation.
  bench::warm_library({25.0, 50.0, 75.0, 100.0, 150.0, 200.0});

  // One worker: every number below is per-core throughput by definition
  // (the batch pool scales embarrassingly; core count is not the claim).
  api::BatchOptions options;
  options.n_threads = 1;
  // Tier C / envelope fidelity: coarse enough that the reference sample
  // stays CI-friendly, fine enough that the envelope check is meaningful.
  options.deck.segments = 24;
  options.deck.dt = 1 * ps;

  std::vector<api::Request> requests;
  requests.reserve(n_nets);
  for (std::size_t k = 0; k < n_nets; ++k) {
    testkit::Rng rng(testkit::mix_seed(seed, 0xF1EE7, k));
    api::Request request = testkit::random_request(rng);
    request.label += "-" + std::to_string(k);
    request.degrade.enabled = true;
    requests.push_back(std::move(request));
  }

  // ---- Pass 1: the balanced cascade end to end -------------------------
  std::vector<api::Request> balanced = requests;
  for (api::Request& r : balanced) r.tier = tier::TierPolicy::balanced;

  const auto t0 = clock_type::now();
  const std::vector<api::Outcome<api::Response>> fleet =
      bench::engine().run_batch(balanced, options);
  const double fleet_s = seconds_since(t0);

  std::size_t ok = 0, coupled = 0, degraded = 0, escalations = 0;
  std::size_t served_a = 0, served_b = 0, served_c = 0;
  std::vector<std::size_t> a_slots;
  std::vector<double> slot_s;
  slot_s.reserve(fleet.size());
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    if (requests[k].coupled()) ++coupled;
    if (!fleet[k].ok()) {
      slot_s.push_back(fleet[k].error().elapsed_s);
      continue;
    }
    const api::Response& r = fleet[k].value();
    ++ok;
    if (r.degraded) ++degraded;
    escalations += r.tier_escalations;
    slot_s.push_back(r.elapsed_s);
    switch (r.tier) {
      case tier::Tier::analytical: ++served_a; a_slots.push_back(k); break;
      case tier::Tier::ceff: ++served_b; break;
      case tier::Tier::reference: ++served_c; break;
    }
  }
  const double fleet_nets_per_s = static_cast<double>(n_nets) / fleet_s;
  const double denom = ok ? static_cast<double>(ok) : 1.0;
  const double a_hit = static_cast<double>(served_a) / denom;
  const double b_hit = static_cast<double>(served_b) / denom;
  const double c_hit = static_cast<double>(served_c) / denom;

  // Nearest-rank percentiles over the per-slot wall times the API stamps on
  // every outcome (success or failure alike).
  std::sort(slot_s.begin(), slot_s.end());
  const auto pct = [&slot_s](double p) {
    if (slot_s.empty()) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(slot_s.size() - 1);
    return slot_s[static_cast<std::size_t>(rank + 0.5)];
  };
  const double p50 = pct(50.0), p95 = pct(95.0), p99 = pct(99.0);
  const double degraded_fraction =
      static_cast<double>(degraded) / static_cast<double>(n_nets);

  // ---- Pass 2: Tier-A throughput on the slots the router admitted ------
  // Tiling the admitted subset to a few thousand slots keeps the timed
  // region long enough to resolve microsecond-per-net costs.
  double a_nets_per_s = 0.0;
  if (!a_slots.empty()) {
    std::vector<api::Request> tiled;
    const std::size_t target = std::max<std::size_t>(4096, a_slots.size());
    tiled.reserve(target);
    while (tiled.size() < target) {
      for (std::size_t slot : a_slots) {
        if (tiled.size() >= target) break;
        api::Request r = requests[slot];
        r.tier = tier::TierPolicy::force_analytical;
        tiled.push_back(std::move(r));
      }
    }
    a_nets_per_s = static_cast<double>(tiled.size()) / time_batch(tiled, options, 3);
  }

  // ---- Pass 3: Tier-B throughput over the whole fleet ------------------
  std::vector<api::Request> forced_b = requests;
  for (api::Request& r : forced_b) r.tier = tier::TierPolicy::force_ceff;
  const double b_nets_per_s =
      static_cast<double>(forced_b.size()) / time_batch(forced_b, options, 3);

  // ---- Pass 4: Tier-C sample + envelope audit --------------------------
  // The reference pass serves two jobs: transient nets/s on a sample, and
  // the per-slot error measurements behind tier.envelope_violations (the CI
  // gate) or the --calibrate report.  Escalated-to-C balanced slots compare
  // C against C and are skipped, as in the property oracle.
  std::vector<std::size_t> audit;
  for (std::size_t k = 0; k < fleet.size() && audit.size() < (calibrate ? n_nets : envelope_sample); ++k) {
    if (!fleet[k].ok()) continue;
    if (fleet[k].value().tier == tier::Tier::reference) continue;
    audit.push_back(k);
  }
  std::vector<api::Request> ref_requests;
  ref_requests.reserve(audit.size());
  for (std::size_t slot : audit) {
    api::Request r = requests[slot];
    r.tier = tier::TierPolicy::force_reference;
    r.noise = r.coupled();
    ref_requests.push_back(std::move(r));
  }
  const auto t1 = clock_type::now();
  const std::vector<api::Outcome<api::Response>> refs =
      bench::engine().run_batch(ref_requests, options);
  const double ref_s = seconds_since(t1);
  const double c_nets_per_s =
      refs.empty() ? 0.0 : static_cast<double>(refs.size()) / ref_s;

  std::size_t envelope_checked = 0, envelope_violations = 0;
  ErrorEnvelope observed[2][2];  // [tier a=0 / b=1][single=0 / coupled=1]
  for (std::size_t j = 0; j < audit.size(); ++j) {
    if (!refs[j].ok()) continue;  // reference taxonomy is the testkit's job
    const api::Response& r = fleet[audit[j]].value();
    const api::Response& c = refs[j].value();
    if (!c.has_reference) continue;  // nothing simulated to audit against
    const bool is_coupled = requests[audit[j]].coupled();
    const tier::Envelope env = tier::envelope(r.tier, is_coupled);
    const double noise = r.has_noise_bound ? r.noise_bound : -1.0;
    const double ref_noise =
        (is_coupled && c.has_reference) ? c.peak_noise : -1.0;
    ++envelope_checked;
    const tier::EnvelopeCheck check =
        tier::check_envelope(env, r.model_near.delay, r.model_near.slew,
                             c.ref_near.delay, c.ref_near.slew, noise, ref_noise);
    if (!check.ok()) {
      ++envelope_violations;
      std::fprintf(stderr,
                   "envelope violation [%s, tier %s%s]: delay %g vs %g, "
                   "slew %g vs %g%s\n",
                   requests[audit[j]].label.c_str(), tier::to_string(r.tier),
                   is_coupled ? ", coupled" : "", r.model_near.delay,
                   c.ref_near.delay, r.model_near.slew, c.ref_near.slew,
                   check.noise_ok ? "" : " (noise bound understated)");
    }
    ErrorEnvelope& worst =
        observed[r.tier == tier::Tier::analytical ? 0 : 1][is_coupled ? 1 : 0];
    ++worst.count;
    worst.fold(r.model_near.delay, c.ref_near.delay, worst.delay_rel,
               worst.delay_abs);
    worst.fold(r.model_near.slew, c.ref_near.slew, worst.slew_rel,
               worst.slew_abs);
    if (noise >= 0.0 && ref_noise >= 0.0)
      worst.noise_short = std::max(worst.noise_short, ref_noise - noise);
  }

  // ---- Report ----------------------------------------------------------
  std::printf("randomized fleet: %zu nets (%zu coupled), %zu ok, %.2f ms total, "
              "%.0f nets/s (balanced cascade, 1 worker, warm cache)\n",
              n_nets, coupled, ok, 1e3 * fleet_s, fleet_nets_per_s);
  std::printf("  tiers served: A %zu (%.0f%%), B %zu (%.0f%%), C %zu (%.0f%%); "
              "%zu escalations\n",
              served_a, 1e2 * a_hit, served_b, 1e2 * b_hit, served_c,
              1e2 * c_hit, escalations);
  std::printf("  per-slot latency: p50 %.1f us, p95 %.1f us, p99 %.1f us; "
              "degraded %.1f%% (%zu slots)\n",
              1e6 * p50, 1e6 * p95, 1e6 * p99, 1e2 * degraded_fraction, degraded);
  std::printf("  forced-tier throughput: A %.0f nets/s (tiled x%zu), "
              "B %.0f nets/s, C %.0f nets/s (%zu-net sample)\n",
              a_nets_per_s, a_slots.empty() ? 0 : std::max<std::size_t>(4096, a_slots.size()),
              b_nets_per_s, c_nets_per_s, refs.size());
  std::printf("  envelope audit: %zu checked, %zu violations\n",
              envelope_checked, envelope_violations);

  if (calibrate) {
    std::printf("\n== envelope calibration (worst observed vs Tier C, %zu nets, "
                "seed 0x%llx) ==\n",
                n_nets, static_cast<unsigned long long>(seed));
    const char* tier_name[2] = {"analytical (A)", "ceff (B)"};
    const char* class_name[2] = {"single", "coupled"};
    for (int t = 0; t < 2; ++t) {
      for (int c = 0; c < 2; ++c) {
        const ErrorEnvelope& w = observed[t][c];
        std::printf("  %-14s %-7s  n=%-4zu delay rel %.3f abs %.2f ps | "
                    "slew rel %.3f abs %.2f ps | noise short %.3f V\n",
                    tier_name[t], class_name[c], w.count, w.delay_rel,
                    1e12 * w.delay_abs, w.slew_rel, 1e12 * w.slew_abs,
                    w.noise_short);
      }
    }
    std::printf("  (set src/tier/envelope.cpp to these plus margin)\n");
  }

  const std::vector<bench::BenchMetric> fleet_metrics = {
      {"nets", static_cast<double>(n_nets), "nets"},
      {"coupled_nets", static_cast<double>(coupled), "nets"},
      {"ok_fraction", static_cast<double>(ok) / static_cast<double>(n_nets), ""},
      {"nets_per_s", fleet_nets_per_s, "nets/s"},
      {"slot_p50_us", 1e6 * p50, "us"},
      {"slot_p95_us", 1e6 * p95, "us"},
      {"slot_p99_us", 1e6 * p99, "us"},
      {"degraded_fraction", degraded_fraction, ""}};
  const std::vector<bench::BenchMetric> tier_metrics = {
      {"a_hit_rate", a_hit, ""},
      {"b_hit_rate", b_hit, ""},
      {"c_hit_rate", c_hit, ""},
      {"escalations_per_net", static_cast<double>(escalations) / denom, ""},
      {"a_nets_per_s", a_nets_per_s, "nets/s"},
      {"b_nets_per_s", b_nets_per_s, "nets/s"},
      {"c_nets_per_s", c_nets_per_s, "nets/s"},
      {"envelope_checked", static_cast<double>(envelope_checked), "nets"},
      {"envelope_violations", static_cast<double>(envelope_violations), "nets"}};
  bench::update_bench_json("BENCH_perf.json", "perf", "fleet", fleet_metrics);
  bench::update_bench_json("BENCH_perf.json", "perf", "tier", tier_metrics);

  // Deprecated alias: the pre-tiering consumers read these exact names from
  // this exact file.  Same numbers, frozen schema; new metrics only land in
  // BENCH_perf.json.
  bench::write_bench_json(
      "BENCH_random_fleet.json", "randomized_fleet",
      {{"fleet_nets", static_cast<double>(n_nets), "nets"},
       {"fleet_coupled_nets", static_cast<double>(coupled), "nets"},
       {"fleet_ok_fraction", static_cast<double>(ok) / static_cast<double>(n_nets), ""},
       {"fleet_nets_per_s", fleet_nets_per_s, "nets/s"},
       {"fleet_slot_p50_us", 1e6 * p50, "us"},
       {"fleet_slot_p95_us", 1e6 * p95, "us"},
       {"fleet_slot_p99_us", 1e6 * p99, "us"},
       {"fleet_degraded_fraction", degraded_fraction, ""}});
  return 0;
}
