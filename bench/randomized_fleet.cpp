// Randomized-fleet throughput: the property harness's generator feeding the
// production batch path.
//
// Where BENCH_perf.json's engine_batch_nets_per_s measures the Fig-7 grid
// (one topology, swept parameters), this bench measures what a timing
// service actually sees: a mixed batch of generated uniform lines, tapered
// routes, branched trees, and coupled groups (testkit::random_request) run
// model-only through api::Engine::run_batch.  Slots that fail to converge
// are counted, not hidden — the number of clean slots is part of the
// trajectory.
//
// Fleet requests run with the retry-and-degrade policy enabled, the way a
// deadline-bound timing service would issue them, so the bench also reports
// the tail of the per-slot latency distribution (p50/p95/p99 over
// Response::elapsed_s) and the fraction of slots answered from a degraded
// ladder tier.
//
// Usage: randomized_fleet [--nets N] [--seed S]   (defaults: 256 nets,
// the property harness's base seed).  Writes BENCH_random_fleet.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "testkit/generate.h"
#include "testkit/rng.h"

using namespace rlceff;
using namespace rlceff::units;

int main(int argc, char** argv) {
  std::size_t n_nets = 256;
  std::uint64_t seed = 0x20030603ull;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--nets") == 0 && k + 1 < argc) {
      n_nets = static_cast<std::size_t>(std::atoll(argv[++k]));
    } else if (std::strcmp(argv[k], "--seed") == 0 && k + 1 < argc) {
      seed = std::strtoull(argv[++k], nullptr, 0);
    } else {
      std::fprintf(stderr, "usage: %s [--nets N] [--seed S]\n", argv[0]);
      return 1;
    }
  }

  // The generator draws cell sizes from a fixed six-size menu; warming them
  // up front keeps the timed region pure model evaluation.
  bench::warm_library({25.0, 50.0, 75.0, 100.0, 150.0, 200.0});

  std::vector<api::Request> requests;
  requests.reserve(n_nets);
  for (std::size_t k = 0; k < n_nets; ++k) {
    testkit::Rng rng(testkit::mix_seed(seed, 0xF1EE7, k));
    api::Request request = testkit::random_request(rng);
    request.label += "-" + std::to_string(k);
    request.degrade.enabled = true;
    requests.push_back(std::move(request));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<api::Outcome<api::Response>> results =
      bench::engine().run_batch(requests);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::size_t ok = 0;
  std::size_t coupled = 0;
  std::size_t degraded = 0;
  std::vector<double> slot_s;
  slot_s.reserve(results.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    if (results[k].ok()) {
      ++ok;
      if (results[k].value().degraded) ++degraded;
      slot_s.push_back(results[k].value().elapsed_s);
    } else {
      slot_s.push_back(results[k].error().elapsed_s);
    }
    if (requests[k].coupled()) ++coupled;
  }
  const double nets_per_s = static_cast<double>(n_nets) / elapsed;

  // Nearest-rank percentiles over the per-slot wall times the API stamps on
  // every outcome (success or failure alike).
  std::sort(slot_s.begin(), slot_s.end());
  const auto pct = [&slot_s](double p) {
    if (slot_s.empty()) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(slot_s.size() - 1);
    return slot_s[static_cast<std::size_t>(rank + 0.5)];
  };
  const double p50 = pct(50.0), p95 = pct(95.0), p99 = pct(99.0);
  const double degraded_fraction =
      static_cast<double>(degraded) / static_cast<double>(n_nets);

  std::printf("randomized fleet: %zu nets (%zu coupled), %zu ok, %.2f ms total, "
              "%.0f nets/s (model-only, warm cache)\n",
              n_nets, coupled, ok, 1e3 * elapsed, nets_per_s);
  std::printf("  per-slot latency: p50 %.1f us, p95 %.1f us, p99 %.1f us; "
              "degraded %.1f%% (%zu slots)\n",
              1e6 * p50, 1e6 * p95, 1e6 * p99, 1e2 * degraded_fraction,
              degraded);

  bench::write_bench_json(
      "BENCH_random_fleet.json", "randomized_fleet",
      {{"fleet_nets", static_cast<double>(n_nets), "nets"},
       {"fleet_coupled_nets", static_cast<double>(coupled), "nets"},
       {"fleet_ok_fraction", static_cast<double>(ok) / static_cast<double>(n_nets), ""},
       {"fleet_nets_per_s", nets_per_s, "nets/s"},
       {"fleet_slot_p50_us", 1e6 * p50, "us"},
       {"fleet_slot_p95_us", 1e6 * p95, "us"},
       {"fleet_slot_p99_us", 1e6 * p99, "us"},
       {"fleet_degraded_fraction", degraded_fraction, ""}});
  return 0;
}
