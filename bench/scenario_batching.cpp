// Shared-factorization scenario batching: the Fig-7-style sweep grid (4
// wire/load topologies x 49 input slews = 196 scenarios) evaluated through
// api::Engine::run_batch as model-only far-end replays, batched vs per-slot.
//
// With batching on, the engine groups the 49 equal-topology replays of each
// wire case, factors the companion matrix once per group, and advances all
// lanes per step as one blocked multi-RHS solve; with batching off every
// slot runs its own scalar replay.  Both paths must produce bitwise-
// identical far-end waveforms — the bench verifies that on every slot and
// fails loudly on the first mismatch, so the speedup number can never be
// bought with accuracy.
//
// Pinned to one worker for the same reason as engine_batch_nets_per_s: the
// speedup is an algorithmic claim (shared factorization + blocked
// substitution), not a core-count one.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

std::uint64_t dbits(double x) { return std::bit_cast<std::uint64_t>(x); }

struct GridSpec {
  double length_mm;
  double width_um;
  double load;
};

std::vector<api::Request> fig7_replay_grid() {
  // Four distinct (wire, load) topologies; within each, 49 slews share the
  // exact companion matrix, so the engine forms 4 groups of 49 lanes.
  const GridSpec specs[] = {{3.0, 1.6, 20 * ff},
                            {4.0, 1.6, 20 * ff},
                            {5.0, 1.6, 20 * ff},
                            {5.0, 1.2, 50 * ff}};
  std::vector<api::Request> requests;
  requests.reserve(196);
  for (const GridSpec& spec : specs) {
    const tech::WireParasitics wire =
        *tech::find_paper_wire_case(spec.length_mm, spec.width_um);
    for (int k = 0; k < 49; ++k) {
      api::Request r;
      r.label = "fig7-" + std::to_string(spec.length_mm) + "mm-" +
                std::to_string(k);
      r.cell_size = 100.0;
      r.input_slew = (20.0 + 5.0 * k) * ps;
      r.net = tech::line_net(wire, spec.load);
      r.far_end_replay = true;
      r.keep_waveforms = true;  // full-waveform bitwise audit below
      // Same last-iterate semantics as fig7_scatter: a stalled Ceff2 fixed
      // point on a borderline grid point must not fail the throughput run.
      r.require_convergence = false;
      requests.push_back(std::move(r));
    }
  }
  return requests;
}

double time_batch(api::Engine& engine, const std::vector<api::Request>& requests,
                  const api::BatchOptions& opt,
                  std::vector<api::Response>& out) {
  using clock = std::chrono::steady_clock;
  double best_s = 1e300;
  (void)engine.run_batch(requests, opt);  // warm-up
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    auto results = engine.run_batch(requests, opt);
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    out = bench::unwrap(std::move(results));
    best_s = std::min(best_s, s);
  }
  return best_s;
}

// Counts slots whose far-end answer differs in any bit between the two runs.
std::size_t bitwise_mismatches(const std::vector<api::Response>& batched,
                               const std::vector<api::Response>& per_slot) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < batched.size(); ++i) {
    const api::Response& a = batched[i];
    const api::Response& b = per_slot[i];
    bool same = a.has_model_far && b.has_model_far &&
                dbits(a.model_far.delay) == dbits(b.model_far.delay) &&
                dbits(a.model_far.slew) == dbits(b.model_far.slew) &&
                a.model_far_wave.size() == b.model_far_wave.size();
    if (same) {
      for (std::size_t k = 0; k < a.model_far_wave.size(); ++k) {
        if (dbits(a.model_far_wave.time(k)) != dbits(b.model_far_wave.time(k)) ||
            dbits(a.model_far_wave.value(k)) != dbits(b.model_far_wave.value(k))) {
          same = false;
          break;
        }
      }
    }
    if (!same) {
      std::fprintf(stderr,
                   "scenario_batching: slot %zu not bitwise identical "
                   "(batched delay %.17g vs per-slot %.17g)\n",
                   i, a.model_far.delay, b.model_far.delay);
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::list_metrics_requested(argc, argv)) {
    // Keep in sync with the update_bench_json call below (the key-set smoke
    // diffs this list against the checked-in BENCH_perf.json).
    bench::list_metrics("scenario_batching",
                        {"grid_scenarios", "grid_topologies", "per_slot_s",
                         "batched_s", "fig7_grid_speedup",
                         "bitwise_mismatches"});
    return 0;
  }

  bench::warm_library({100.0});
  api::Engine& engine = bench::engine();
  const std::vector<api::Request> requests = fig7_replay_grid();

  api::BatchOptions opt = bench::sweep_fidelity();
  opt.n_threads = 1;

  std::vector<api::Response> batched, per_slot;
  opt.batch_scenarios = true;
  const double batched_s = time_batch(engine, requests, opt, batched);
  opt.batch_scenarios = false;
  const double per_slot_s = time_batch(engine, requests, opt, per_slot);

  const std::size_t mismatches = bitwise_mismatches(batched, per_slot);
  const double speedup = per_slot_s / batched_s;

  std::printf("== scenario batching (Fig-7 grid, %zu scenarios, 4 groups) ==\n",
              requests.size());
  std::printf("  per-slot replays:             %8.3f s\n", per_slot_s);
  std::printf("  shared-factorization batched: %8.3f s\n", batched_s);
  std::printf("  speedup: %.2fx   bitwise mismatches: %zu\n", speedup, mismatches);

  bench::update_bench_json(
      "BENCH_perf.json", "perf", "scenario_batching",
      {{"grid_scenarios", static_cast<double>(requests.size()), "count"},
       {"grid_topologies", 4.0, "count"},
       {"per_slot_s", per_slot_s, "s"},
       {"batched_s", batched_s, "s"},
       {"fig7_grid_speedup", speedup, "x"},
       {"bitwise_mismatches", static_cast<double>(mismatches), "count"}});
  std::printf("(merged into BENCH_perf.json under \"scenario_batching.\")\n");
  return mismatches == 0 ? 0 : 1;
}
