// Table 1 reproduction: HSPICE vs two-ramp vs one-ramp delay and slew for the
// fifteen printed inductively-significant cases.
//
// Absolute numbers come from our simulator and calibrated technology, so they
// differ from the paper's testbed; the structure the table must reproduce is
//   * two-ramp delay errors of a few percent,
//   * one-ramp delay errors that are large, positive, and grow with width,
//   * one-ramp slew errors that are large and negative (missed tail).
#include <cstdio>
#include <cstring>

#include <cmath>
#include <vector>

#include "bench_common.h"
#include "tech/wire.h"
#include "util/stats.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

struct PaperRow {
  double length_mm, width_um, size, slew_ps;
  // Printed reference values (for side-by-side comparison).
  double p_delay, p_d2_err, p_d1_err, p_slew, p_s2_err, p_s1_err;
};

const std::vector<PaperRow> rows = {
    {3, 0.8, 75, 50, 25.01, -3.2, 65.1, 124.1, 4.6, -50.4},
    {3, 1.2, 75, 50, 26.44, -3.1, 112.9, 128.9, 9.4, -28.7},
    {3, 1.6, 75, 50, 32.15, -6.9, 105.5, 135.4, 9.8, -17.2},
    {4, 0.8, 75, 50, 25.02, 2.7, 56.2, 157.3, 3.6, -63.5},
    {4, 1.2, 75, 50, 26.51, 4.4, 122.9, 164.4, 8.8, -40.6},
    {4, 1.6, 75, 50, 32.69, -7.6, 129.1, 175.0, 12.0, -25.3},
    {5, 1.2, 100, 100, 36.43, -2.2, 27.3, 192.8, -9.9, -68.8},
    {5, 1.6, 100, 100, 39.56, -4.7, 33.9, 200.3, 1.85, -64.1},
    {5, 2.0, 100, 100, 42.53, -7.1, 48.3, 207.6, 9.0, -56.2},
    {5, 2.5, 100, 100, 45.26, -6.3, 72.7, 212.2, 9.2, -42.9},
    {6, 1.2, 100, 100, 36.44, 1.5, 27.6, 222.7, -8.5, -73.0},
    {6, 1.6, 100, 100, 39.58, -0.7, 32.3, 232.0, 1.5, -69.5},
    {6, 2.0, 100, 100, 42.55, -2.7, 42.8, 240.9, 5.7, -64.1},
    {6, 2.5, 100, 100, 45.29, 1.3, 65.9, 246.3, 12.4, -53.6},
    {6, 3.0, 100, 100, 49.41, -3.2, 105.2, 261.7, 14.2, -35.6},
};

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI mode — coarse deck and a small on-the-fly characterization
  // grid so the bench (and its BENCH_accuracy.json) finishes in seconds.
  bool smoke = false;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) smoke = true;
  }

  std::printf("== Table 1: HSPICE, one-ramp, and two-ramp model comparison ==%s\n",
              smoke ? " (smoke fidelity)" : "");

  api::BatchOptions opt = bench::full_fidelity();
  // Smoke mode keeps its reduced-grid characterizations out of the shared
  // on-disk cache by running through its own Engine.
  api::Engine smoke_engine{tech::Technology::cmos180()};
  if (smoke) {
    opt = bench::sweep_fidelity();
    opt.deck.segments = 40;
    opt.deck.dt = 1e-12;
    opt.grid.input_slews = {50e-12, 100e-12, 200e-12};
    opt.grid.loads = {50e-15, 200e-15, 500e-15, 1e-12, 1.8e-12, 3e-12, 5e-12};
  } else {
    bench::warm_library({75.0, 100.0});
  }
  api::Engine& engine = smoke ? smoke_engine : bench::engine();

  std::vector<api::Request> requests;
  for (const PaperRow& row : rows) {
    api::Request r;
    char label[64];
    std::snprintf(label, sizeof label, "%g/%g %gX %gps", row.length_mm, row.width_um,
                  row.size, row.slew_ps);
    r.label = label;
    r.cell_size = row.size;
    r.input_slew = row.slew_ps * ps;
    r.net = tech::line_net(*tech::find_paper_wire_case(row.length_mm, row.width_um),
                           20 * ff);
    r.reference = true;
    r.far_end = false;
    r.one_ramp_baseline = true;
    // Table 1 compares both models at the driving point regardless of the
    // screen (all rows are inductive cases anyway).
    r.model.selection = core::ModelSelection::force_two_ramp;
    requests.push_back(std::move(r));
  }
  const std::vector<api::Response> results =
      bench::unwrap(engine.run_batch(requests, opt));

  std::printf(
      "\n%-8s %-5s %-5s | %27s | %27s\n"
      "%-8s %-5s %-5s | %9s %8s %8s | %9s %8s %8s\n",
      "len/wid", "drv", "slew", "------- delay [ps] -------",
      "-------- slew [ps] --------", "mm/um", "", "ps", "HSPICE", "2ramp", "1ramp",
      "HSPICE", "2ramp", "1ramp");

  std::vector<double> d2_errs, d1_errs, s2_errs, s1_errs;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const PaperRow& row = rows[k];
    const api::Response& r = results[k];

    const double d2 = core::pct_error(r.model_near.delay, r.ref_near.delay);
    const double d1 = core::pct_error(r.one_near.delay, r.ref_near.delay);
    const double s2 = core::pct_error(r.model_near.slew, r.ref_near.slew);
    const double s1 = core::pct_error(r.one_near.slew, r.ref_near.slew);
    d2_errs.push_back(d2);
    d1_errs.push_back(d1);
    s2_errs.push_back(s2);
    s1_errs.push_back(s1);

    std::printf("%g/%-6g %-5g %-5g | %9.2f %8s %8s | %9.1f %8s %8s\n", row.length_mm,
                row.width_um, row.size, row.slew_ps, r.ref_near.delay / ps,
                bench::pct(d2).c_str(), bench::pct(d1).c_str(), r.ref_near.slew / ps,
                bench::pct(s2).c_str(), bench::pct(s1).c_str());
  }

  std::printf("\npaper's printed values for the same cases:\n");
  for (const PaperRow& row : rows) {
    std::printf("%g/%-6g %-5g %-5g | %9.2f %8s %8s | %9.1f %8s %8s\n", row.length_mm,
                row.width_um, row.size, row.slew_ps, row.p_delay,
                bench::pct(row.p_d2_err).c_str(), bench::pct(row.p_d1_err).c_str(),
                row.p_slew, bench::pct(row.p_s2_err).c_str(),
                bench::pct(row.p_s1_err).c_str());
  }

  auto avg_abs = [](const std::vector<double>& v) { return util::mean_abs(v); };
  std::printf("\nsummary (avg |error|)        measured      paper\n");
  std::printf("two-ramp delay               %6.1f %%      4.3 %%\n", avg_abs(d2_errs));
  std::printf("one-ramp delay               %6.1f %%     69.9 %%\n", avg_abs(d1_errs));
  std::printf("two-ramp slew                %6.1f %%      8.0 %%\n", avg_abs(s2_errs));
  std::printf("one-ramp slew                %6.1f %%     50.2 %%\n", avg_abs(s1_errs));

  // Smoke numbers go to their own section so reduced-fidelity runs never
  // alias the paper-facing table1.* trajectory.
  const std::string section = smoke ? "table1_smoke" : "table1";
  bench::update_accuracy_json(
      section, bench::two_model_error_metrics(d2_errs, s2_errs, d1_errs, s1_errs));
  std::printf("accuracy metrics written to BENCH_accuracy.json (%s.*)\n",
              section.c_str());
  return 0;
}
