// Bus timing: the workload the paper's introduction motivates — timing a
// wide global bus whose lanes have different lengths and widths, where some
// lanes behave like RC wires and others like transmission lines.
//
// A static timing engine cannot afford a SPICE run per net; this example
// times a 16-lane bus entirely from the library model (moments + Ceff
// iterations + two-ramp waveforms), flags which lanes needed the two-ramp
// treatment, and checks arrival times against a clock budget.  A spot check
// against the transient simulator verifies the flow on the slowest lane.
#include <cstdio>

#include <string>
#include <vector>

#include "charlib/library.h"
#include "core/experiment.h"
#include "moments/awe.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

struct Lane {
  std::string name;
  double length_mm;
  double width_um;
  double driver_size;
};

}  // namespace

int main() {
  const tech::Technology technology = tech::Technology::cmos180();
  const tech::WireModel wires;
  charlib::CellLibrary library;

  // 16 lanes snaking across the die: lengths vary with routing detours, the
  // shorter lanes use narrower wire and weaker drivers.
  std::vector<Lane> lanes;
  for (int bit = 0; bit < 16; ++bit) {
    Lane lane;
    lane.name = "bus[" + std::to_string(bit) + "]";
    lane.length_mm = 2.0 + 0.35 * bit;             // 2.0 .. 7.25 mm
    lane.width_um = bit < 8 ? 1.2 : 2.0;           // wider wire for long lanes
    lane.driver_size = bit < 4 ? 50.0 : (bit < 10 ? 75.0 : 100.0);
    lanes.push_back(lane);
  }

  charlib::CharacterizationGrid grid;
  grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};

  const double input_slew = 100 * ps;
  const double c_receiver = tech::Inverter{10.0}.input_capacitance(technology);
  const double clock_budget = 320 * ps;  // arrival budget at the receivers

  std::printf("16-lane global bus, input slew %.0f ps, receiver cap %.1f fF, "
              "budget %.0f ps\n\n",
              input_slew / ps, c_receiver / ff, clock_budget / ps);
  std::printf("%-9s %6s %6s %6s | %-9s %9s %10s %10s | %8s %6s\n", "lane", "len",
              "wid", "drv", "model", "f", "gate [ps]", "wire [ps]", "arr [ps]",
              "slack");

  double worst_slack = 1e9;
  std::string worst_lane;
  for (const Lane& lane : lanes) {
    const tech::WireParasitics wire =
        wires.extract({lane.length_mm * mm, lane.width_um * um});
    const charlib::CharacterizedDriver& driver =
        library.ensure_driver(technology, lane.driver_size, grid);
    const core::DriverOutputModel model =
        core::model_driver_output(driver, input_slew, wire, c_receiver);

    // Wire delay from the reduced-order far-end transfer (AWE): evaluate the
    // modeled near-end waveform through it — no circuit simulation at all.
    const util::Series h = moments::distributed_transfer(
        wire.resistance, wire.inductance, wire.capacitance, c_receiver);
    const moments::AweModel awe = moments::AweModel::make(h, 3);
    const wave::Waveform far =
        awe.response(model.waveform, model.waveform.end_time() + 2 * ns, 2 * ps);
    const auto far_t50 = far.first_crossing(0.5 * technology.vdd, true);
    const double arrival = far_t50.value_or(1e9);
    const double slack = clock_budget - arrival;
    if (slack < worst_slack) {
      worst_slack = slack;
      worst_lane = lane.name;
    }

    std::printf("%-9s %4.2fmm %5.1fum %5.0fX | %-9s %9.2f %10.1f %10.1f | %8.1f %+6.1f\n",
                lane.name.c_str(), lane.length_mm, lane.width_um, lane.driver_size,
                model.kind == core::ModelKind::two_ramp ? "two-ramp" : "one-ramp",
                model.f, model.t50 / ps, (arrival - model.t50) / ps, arrival / ps,
                slack / ps);
  }
  std::printf("\nworst slack: %+.1f ps on %s\n", worst_slack / ps, worst_lane.c_str());

  // Spot-check the slowest lane against the transient simulator.
  const Lane& check = lanes.back();
  core::ExperimentCase c;
  c.driver_size = check.driver_size;
  c.input_slew = input_slew;
  c.net = tech::line_net(wires.extract({check.length_mm * mm, check.width_um * um}),
                         c_receiver);
  core::ExperimentOptions opt;
  opt.grid = grid;
  const core::ExperimentResult r = core::run_experiment(technology, library, c, opt);
  std::printf("\nspot check (%s) against transient simulation:\n", check.name.c_str());
  std::printf("far-end delay: model %.1f ps vs simulated %.1f ps (%+.1f%%)\n",
              r.model_far.delay / ps, r.ref_far.delay / ps,
              core::pct_error(r.model_far.delay, r.ref_far.delay));
  return 0;
}
