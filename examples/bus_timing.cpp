// Bus timing: the workload the paper's introduction motivates — timing a
// wide global bus whose lanes have different lengths and widths, where some
// lanes behave like RC wires and others like transmission lines.
//
// A static timing engine cannot afford a SPICE run per net; this example
// times a 16-lane bus entirely from the library model by handing the lanes
// to api::Engine::run_batch as model-only requests (moments + Ceff
// iterations + two-ramp waveforms), flags which lanes needed the two-ramp
// treatment, and checks arrival times against a clock budget.  A spot check
// against the transient simulator (one reference-mode request) verifies the
// flow on the slowest lane.
#include <cstdio>

#include <string>
#include <vector>

#include "api/engine.h"
#include "moments/awe.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

struct Lane {
  std::string name;
  double length_mm;
  double width_um;
  double driver_size;
};

}  // namespace

int main() {
  api::Engine engine{tech::Technology::cmos180()};
  const tech::WireModel wires;

  // 16 lanes snaking across the die: lengths vary with routing detours, the
  // shorter lanes use narrower wire and weaker drivers.
  std::vector<Lane> lanes;
  for (int bit = 0; bit < 16; ++bit) {
    Lane lane;
    lane.name = "bus[" + std::to_string(bit) + "]";
    lane.length_mm = 2.0 + 0.35 * bit;             // 2.0 .. 7.25 mm
    lane.width_um = bit < 8 ? 1.2 : 2.0;           // wider wire for long lanes
    lane.driver_size = bit < 4 ? 50.0 : (bit < 10 ? 75.0 : 100.0);
    lanes.push_back(lane);
  }

  api::BatchOptions options;
  options.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  options.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};

  const double input_slew = 100 * ps;
  const double c_receiver =
      tech::Inverter{10.0}.input_capacitance(engine.technology());
  const double clock_budget = 320 * ps;  // arrival budget at the receivers

  // The whole bus as one model-only batch: the engine characterizes the
  // three distinct driver sizes once, then fans the lanes out in parallel.
  std::vector<api::Request> requests;
  for (const Lane& lane : lanes) {
    api::Request r;
    r.label = lane.name;
    r.cell_size = lane.driver_size;
    r.input_slew = input_slew;
    r.net = tech::line_net(wires.extract({lane.length_mm * mm, lane.width_um * um}),
                           c_receiver);
    requests.push_back(std::move(r));
  }
  const std::vector<api::Outcome<api::Response>> outcomes =
      engine.run_batch(requests, options);

  std::printf("16-lane global bus, input slew %.0f ps, receiver cap %.1f fF, "
              "budget %.0f ps\n\n",
              input_slew / ps, c_receiver / ff, clock_budget / ps);
  std::printf("%-9s %6s %6s %6s | %-9s %9s %10s %10s | %8s %6s\n", "lane", "len",
              "wid", "drv", "model", "f", "gate [ps]", "wire [ps]", "arr [ps]",
              "slack");

  double worst_slack = 1e9;
  std::string worst_lane;
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    const Lane& lane = lanes[k];
    if (!outcomes[k].ok()) {
      std::printf("%-9s FAILED [%s]: %s\n", lane.name.c_str(),
                  api::to_string(outcomes[k].error().code),
                  outcomes[k].error().message.c_str());
      continue;
    }
    const core::DriverOutputModel& model = outcomes[k].value().model;
    const tech::WireParasitics wire =
        wires.extract({lane.length_mm * mm, lane.width_um * um});

    // Wire delay from the reduced-order far-end transfer (AWE): evaluate the
    // modeled near-end waveform through it — no circuit simulation at all.
    const util::Series h = moments::distributed_transfer(
        wire.resistance, wire.inductance, wire.capacitance, c_receiver);
    const moments::AweModel awe = moments::AweModel::make(h, 3);
    const wave::Waveform far =
        awe.response(model.waveform, model.waveform.end_time() + 2 * ns, 2 * ps);
    const auto far_t50 =
        far.first_crossing(0.5 * engine.technology().vdd, true);
    const double arrival = far_t50.value_or(1e9);
    const double slack = clock_budget - arrival;
    if (slack < worst_slack) {
      worst_slack = slack;
      worst_lane = lane.name;
    }

    std::printf("%-9s %4.2fmm %5.1fum %5.0fX | %-9s %9.2f %10.1f %10.1f | %8.1f %+6.1f\n",
                lane.name.c_str(), lane.length_mm, lane.width_um, lane.driver_size,
                model.kind == core::ModelKind::two_ramp ? "two-ramp" : "one-ramp",
                model.f, model.t50 / ps, (arrival - model.t50) / ps, arrival / ps,
                slack / ps);
  }
  std::printf("\nworst slack: %+.1f ps on %s\n", worst_slack / ps, worst_lane.c_str());

  // Spot-check the slowest lane against the transient simulator: the same
  // request, now with the reference flag.
  const Lane& check = lanes.back();
  api::Request c = requests.back();
  c.label = check.name + " (reference)";
  c.reference = true;
  const api::Response r = engine.model(c, options).value();
  std::printf("\nspot check (%s) against transient simulation:\n", check.name.c_str());
  std::printf("far-end delay: model %.1f ps vs simulated %.1f ps (%+.1f%%)\n",
              r.model_far.delay / ps, r.ref_far.delay / ps,
              core::pct_error(r.model_far.delay, r.ref_far.delay));
  return 0;
}
