// Library characterization walkthrough: build the NLDM-style tables for one
// driver with the built-in simulator, inspect them, extract the Thevenin
// resistance, and round-trip the library through its text format.
//
// Usage: characterize_driver [size] [output.lib]
#include <cstdio>
#include <cstdlib>

#include "charlib/library.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

int main(int argc, char** argv) {
  const double size = argc > 1 ? std::atof(argv[1]) : 75.0;
  const char* out_path = argc > 2 ? argv[2] : nullptr;

  const tech::Technology technology = tech::Technology::cmos180();
  std::printf("characterizing a %gX inverter (NMOS %.2f um / PMOS %.2f um) ...\n", size,
              tech::Inverter{size}.nmos_width(technology) / um,
              tech::Inverter{size}.pmos_width(technology) / um);

  const charlib::CharacterizedDriver driver =
      charlib::characterize_driver(technology, tech::Inverter{size});

  const auto& slews = driver.delay_table().row_axis();
  const auto& loads = driver.delay_table().col_axis();

  std::printf("\ndelay table [ps] (rows: input slew, cols: load):\n%10s", "");
  for (double c : loads) std::printf("%9.2fp", c / pf);
  std::printf("\n");
  for (std::size_t i = 0; i < slews.size(); ++i) {
    std::printf("%8.0fps", slews[i] / ps);
    for (std::size_t j = 0; j < loads.size(); ++j) {
      std::printf("%10.1f", driver.delay_table().at(i, j) / ps);
    }
    std::printf("\n");
  }

  std::printf("\noutput transition table [ps]:\n%10s", "");
  for (double c : loads) std::printf("%9.2fp", c / pf);
  std::printf("\n");
  for (std::size_t i = 0; i < slews.size(); ++i) {
    std::printf("%8.0fps", slews[i] / ps);
    for (std::size_t j = 0; j < loads.size(); ++j) {
      std::printf("%10.1f", driver.transition_table().at(i, j) / ps);
    }
    std::printf("\n");
  }

  std::printf("\nThevenin resistance (50-90%% exponential fit, ref [3]):\n");
  for (double load : {200 * ff, 700 * ff, 1.4 * pf, 2.8 * pf}) {
    std::printf("  load %5.2f pF: Rs = %.1f ohm\n", load / pf,
                driver.driver_resistance(100 * ps, load));
  }
  std::printf("  (rule of thumb: ~3.7 kohm / drive strength = %.1f ohm)\n",
              3.7e3 / size);

  charlib::CellLibrary library;
  library.add(driver);
  if (out_path != nullptr) {
    library.save_file(out_path);
    std::printf("\nsaved library to %s\n", out_path);
    charlib::CellLibrary loaded;
    loaded.load_file(out_path);
    std::printf("round trip ok: %zu cell(s), delay(100ps, 1pF) = %.2f ps\n",
                loaded.size(), loaded.find(size)->delay(100 * ps, 1 * pf) / ps);
  }
  return 0;
}
