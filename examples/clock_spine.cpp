// Clock spine: the two-ramp flow on a branched RLC net.
//
// A clock spine drives two symmetric arms from a 2 mm trunk; each arm ends
// in a bank of receiver gates.  The load is no longer a uniform line — but
// with the Net IR it is still one description: a trunk branch fanning out
// into two arm branches with lumped bank loads and named probes.  The same
// net drives the moment engine (Ceff flow) and the discretized simulation
// deck.
#include <cstdio>

#include "api/engine.h"
#include "tech/testbench.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  api::Engine engine{tech::Technology::cmos180()};
  const tech::Technology& technology = engine.technology();
  const tech::WireModel wires;

  // The net: 2 mm x 2.0 um trunk, two 2.5 mm x 1.2 um arms, each arm loaded
  // by eight 10X receivers.
  const tech::WireParasitics trunk_w = wires.extract({2 * mm, 2.0 * um});
  const tech::WireParasitics arm_w = wires.extract({2.5 * mm, 1.2 * um});
  const double bank_cap = 8.0 * tech::Inverter{10.0}.input_capacitance(technology);

  net::Branch arm;
  arm.sections.push_back({arm_w.resistance, arm_w.inductance, arm_w.capacitance,
                          net::SectionKind::distributed});
  arm.c_load = bank_cap;
  net::Branch left = arm;
  left.probe = "left_bank";
  net::Branch right = arm;
  right.probe = "right_bank";

  net::Branch trunk;
  trunk.sections.push_back({trunk_w.resistance, trunk_w.inductance,
                            trunk_w.capacitance, net::SectionKind::distributed});
  trunk.children = {left, right};
  const net::Net spine{trunk};

  const net::NetMetrics metrics = spine.metrics();
  std::printf("clock spine: trunk 2 mm + two 2.5 mm arms, %.0f fF per leaf bank\n",
              bank_cap / ff);
  std::printf("dominant path: Z0=%.1f ohm, tf=%.1f ps, R=%.1f ohm; total C=%.2f pF\n\n",
              metrics.z0, metrics.time_of_flight / ps, metrics.path_resistance,
              metrics.total_capacitance() / pf);

  api::BatchOptions options;
  options.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  options.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};

  api::Request request;
  request.label = "clock spine";
  request.cell_size = 125.0;
  request.input_slew = 100 * ps;
  request.net = spine;
  const core::DriverOutputModel model = engine.model(request, options).value().model;
  std::printf("model: %s, f=%.2f, Ceff1=%.0f fF (Tr1=%.0f ps), Ceff2=%.0f fF, "
              "gate delay %.1f ps\n",
              model.kind == core::ModelKind::two_ramp ? "two-ramp" : "one-ramp",
              model.f, model.ceff1.ceff / ff, model.ceff1.ramp_time / ps,
              model.ceff2.ceff / ff, model.t50 / ps);

  // Validate against the simulator: drive the discretized net.
  tech::DeckOptions deck;
  deck.dt = 0.5 * ps;
  deck.t_stop = 2 * ns;
  deck.segments = 40;
  const tech::NetSimResult sim =
      tech::simulate_driver_net(technology, tech::Inverter{125.0}, 100 * ps, spine,
                                deck);
  const auto near = wave::measure_rising_edge(sim.near_end, 0.0, technology.vdd);
  const auto leaf = wave::measure_rising_edge(sim.probe("left_bank"), 0.0,
                                              technology.vdd);

  std::printf("\nsimulated: gate delay %.1f ps (model %+.1f%%), leaf arrival %.1f ps, "
              "leaf slew %.1f ps\n",
              (near.t50 - sim.input_time_50) / ps,
              100.0 * (model.t50 / (near.t50 - sim.input_time_50) - 1.0),
              (leaf.t50 - sim.input_time_50) / ps, leaf.transition_10_90() / ps);

  // Replay the modeled waveform through the net for the sink arrival.
  std::vector<std::pair<double, double>> pts = model.waveform.points();
  for (auto& [t, v] : pts) t += sim.input_time_50;
  const tech::NetSimResult replay =
      tech::simulate_source_net(wave::Pwl(std::move(pts)), spine, deck);
  const auto leaf_m = wave::measure_rising_edge(replay.probe("left_bank"), 0.0,
                                                technology.vdd);
  std::printf("modeled sink arrival via replay: %.1f ps (%+.1f%% vs simulation)\n",
              (leaf_m.t50 - sim.input_time_50) / ps,
              100.0 * ((leaf_m.t50 - sim.input_time_50) /
                           (leaf.t50 - sim.input_time_50) - 1.0));
  return 0;
}
