// Inductance screening map: for which (length, width) geometries does a
// given driver need RLC (two-ramp) treatment?
//
// This exercises the paper's Eq-9 criteria — including its novel
// output-referred "Tr1 < 2 tf" screen — across the design plane, the way a
// physical-design team would decide where the RC flow is safe.
#include <cstdio>

#include <vector>

#include "api/engine.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  api::Engine engine{tech::Technology::cmos180()};
  const tech::WireModel wires;

  api::BatchOptions options;
  options.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  options.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};

  const double input_slew = 100 * ps;
  const double c_receiver = 20 * ff;
  const std::vector<double> lengths_mm = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> widths_um = {0.8, 1.2, 1.6, 2.0, 2.5, 3.0, 3.5};

  for (double size : {25.0, 75.0, 125.0}) {
    // The whole (length, width) map as one model-only batch.
    std::vector<api::Request> map;
    for (double l : lengths_mm) {
      for (double w : widths_um) {
        api::Request r;
        char label[48];
        std::snprintf(label, sizeof label, "%gX %gmm/%gum", size, l, w);
        r.label = label;
        r.cell_size = size;
        r.input_slew = input_slew;
        r.net = tech::line_net(wires.extract({l * mm, w * um}), c_receiver);
        // The map only reads the Eq-9 classification; accept the last Ceff
        // iterate on the handful of borderline cases that stall.
        r.require_convergence = false;
        map.push_back(std::move(r));
      }
    }
    const std::vector<api::Outcome<api::Response>> screened =
        engine.run_batch(map, options);

    std::printf("\n%gX driver, input slew %.0f ps -- '##' = two-ramp (inductance "
                "significant), '..' = one ramp\n",
                size, input_slew / ps);
    std::printf("        ");
    for (double w : widths_um) std::printf("%5.1f", w);
    std::printf("  (width, um)\n");

    std::size_t k = 0;
    for (double l : lengths_mm) {
      std::printf("  %3.0f mm ", l);
      for ([[maybe_unused]] double w : widths_um) {
        const core::DriverOutputModel& model = screened[k++].value().model;
        std::printf("%5s", model.kind == core::ModelKind::one_ramp ? ".." : "##");
      }
      std::printf("\n");
    }

    // Explain one representative cell of the map.
    api::Request probe;
    probe.label = "representative 5mm/1.6um";
    probe.cell_size = size;
    probe.input_slew = input_slew;
    probe.net = tech::line_net(wires.extract({5 * mm, 1.6 * um}), c_receiver);
    probe.require_convergence = false;
    const core::DriverOutputModel model = engine.model(probe, options).value().model;
    std::printf("  e.g. 5 mm / 1.6 um: Rs=%.0f ohm vs Z0=%.0f ohm, Tr1=%.0f ps vs "
                "2tf=%.0f ps -> %s\n",
                model.rs, model.z0, model.ceff1.ramp_time / ps,
                2.0 * model.tf / ps,
                model.criteria.significant() ? "two-ramp" : "one-ramp");
  }

  std::printf("\nreading: inductance matters for long, wide lines with strong drivers\n"
              "(paper Sec. 6: >= 3 mm, >= 1.6 um, >= 75X in this technology);\n"
              "weak 25X drivers never trip the screen because Rs >> Z0.\n");
  return 0;
}
