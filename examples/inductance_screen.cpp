// Inductance screening map: for which (length, width) geometries does a
// given driver need RLC (two-ramp) treatment?
//
// This exercises the paper's Eq-9 criteria — including its novel
// output-referred "Tr1 < 2 tf" screen — across the design plane, the way a
// physical-design team would decide where the RC flow is safe.
#include <cstdio>

#include <vector>

#include "charlib/library.h"
#include "core/driver_model.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  const tech::Technology technology = tech::Technology::cmos180();
  const tech::WireModel wires;
  charlib::CellLibrary library;

  charlib::CharacterizationGrid grid;
  grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};

  const double input_slew = 100 * ps;
  const double c_receiver = 20 * ff;
  const std::vector<double> lengths_mm = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> widths_um = {0.8, 1.2, 1.6, 2.0, 2.5, 3.0, 3.5};

  for (double size : {25.0, 75.0, 125.0}) {
    const charlib::CharacterizedDriver& driver =
        library.ensure_driver(technology, size, grid);

    std::printf("\n%gX driver, input slew %.0f ps -- '##' = two-ramp (inductance "
                "significant), '..' = one ramp\n",
                size, input_slew / ps);
    std::printf("        ");
    for (double w : widths_um) std::printf("%5.1f", w);
    std::printf("  (width, um)\n");

    for (double l : lengths_mm) {
      std::printf("  %3.0f mm ", l);
      for (double w : widths_um) {
        const tech::WireParasitics wire = wires.extract({l * mm, w * um});
        const core::DriverOutputModel model =
            core::model_driver_output(driver, input_slew, wire, c_receiver);
        std::printf("%5s", model.kind == core::ModelKind::one_ramp ? ".." : "##");
      }
      std::printf("\n");
    }

    // Explain one representative cell of the map.
    const tech::WireParasitics wire = wires.extract({5 * mm, 1.6 * um});
    const core::DriverOutputModel model =
        core::model_driver_output(driver, input_slew, wire, c_receiver);
    std::printf("  e.g. 5 mm / 1.6 um: Rs=%.0f ohm vs Z0=%.0f ohm, Tr1=%.0f ps vs "
                "2tf=%.0f ps -> %s\n",
                model.rs, model.z0, model.ceff1.ramp_time / ps,
                2.0 * model.tf / ps,
                model.criteria.significant() ? "two-ramp" : "one-ramp");
  }

  std::printf("\nreading: inductance matters for long, wide lines with strong drivers\n"
              "(paper Sec. 6: >= 3 mm, >= 1.6 um, >= 75X in this technology);\n"
              "weak 25X drivers never trip the screen because Rs >> Z0.\n");
  return 0;
}
