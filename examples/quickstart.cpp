// Quickstart: describe an interconnect as a net::Net, hand it to api::Engine
// as a Request, and read the two-ramp effective-capacitance model plus a
// transient-simulation cross-check out of the Response.
//
// Build & run (from the repository root):
//   cmake -B build -G Ninja && cmake --build build
//   ./build/example_quickstart
#include <cstdio>

#include "api/engine.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  // 1. The engine owns the technology and the cell cache.  Interconnect: a
  //    5 mm x 1.6 um global wire with a 20 fF receiver, described once as a
  //    net::Net — the IR every layer (deck compiler, moment engine,
  //    experiment harness) consumes.  WireModel plays the role of a field
  //    solver; swap uniform_line for Net::multi_section or Net::from_tree
  //    and nothing downstream changes.
  api::Engine engine{tech::Technology::cmos180()};
  const tech::WireModel wires;
  const tech::WireParasitics wire = wires.extract({5 * mm, 1.6 * um});
  const net::Net line = tech::line_net(wire, 20 * ff);
  const net::NetMetrics metrics = line.metrics();
  std::printf("net: R=%.1f ohm  L=%.2f nH  C=%.2f pF  (Z0=%.1f ohm, tf=%.1f ps)\n",
              metrics.path_resistance, wire.inductance / nh,
              metrics.total_capacitance() / pf, metrics.z0,
              metrics.time_of_flight / ps);

  // 2. One request: a 100X driver, 100 ps input slew, this net.  The
  //    reference flag also runs the transient simulator so we can judge the
  //    model; production callers leave it off and get the model alone.  The
  //    engine characterizes the 100X cell on first use (in production flows
  //    warm_cache/load_library skip this).
  api::Request request;
  request.label = "quickstart 5mm/1.6um";
  request.cell_size = 100.0;
  request.input_slew = 100 * ps;
  request.net = line;
  request.reference = true;

  api::BatchOptions options;
  options.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  options.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};

  // 3. Run it.  Failures come back as a structured Outcome, not an
  //    exception; value() unwraps (and would throw a labeled Error if the
  //    scenario had failed).
  const api::Outcome<api::Response> outcome = engine.model(request, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "scenario '%s' failed [%s]: %s\n",
                 outcome.error().scenario.c_str(), api::to_string(outcome.error().code),
                 outcome.error().message.c_str());
    return 1;
  }
  const api::Response& r = outcome.value();

  // 4. Inspect the model.
  const core::DriverOutputModel& m = r.model;
  const double vdd = engine.technology().vdd;
  std::printf("\ninductance significant: %s (Rs=%.1f ohm vs Z0=%.1f ohm)\n",
              m.criteria.significant() ? "yes -> two-ramp model" : "no -> one ramp",
              m.rs, m.z0);
  std::printf("breakpoint f = %.2f  (first ramp ends at %.2f V)\n", m.f, m.f * vdd);
  std::printf("Ceff1 = %.0f fF (Tr1 = %.0f ps)   Ceff2 = %.0f fF (Tr2' = %.0f ps)\n",
              m.ceff1.ceff / ff, m.ceff1.ramp_time / ps, m.ceff2.ceff / ff,
              m.tr2_new / ps);
  std::printf("total line capacitance %.0f fF -- note Ceff1 << Ctotal << Ceff2\n",
              m.admittance.total_capacitance() / ff);

  // 5. Model accuracy against the simulator.
  std::printf("\n              simulated     model\n");
  std::printf("gate delay    %6.1f ps   %6.1f ps  (%+.1f%%)\n", r.ref_near.delay / ps,
              r.model_near.delay / ps,
              core::pct_error(r.model_near.delay, r.ref_near.delay));
  std::printf("output slew   %6.1f ps   %6.1f ps  (%+.1f%%)\n", r.ref_near.slew / ps,
              r.model_near.slew / ps,
              core::pct_error(r.model_near.slew, r.ref_near.slew));
  std::printf("far-end delay %6.1f ps   %6.1f ps  (%+.1f%%)\n", r.ref_far.delay / ps,
              r.model_far.delay / ps,
              core::pct_error(r.model_far.delay, r.ref_far.delay));
  return 0;
}
