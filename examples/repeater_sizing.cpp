// Repeater sizing with the fast model: pick the smallest driver that meets a
// far-end delay target on a long RLC line.
//
// This is the optimization loop that motivates "computationally efficient"
// driver models: every candidate size needs a delay estimate, and a SPICE
// run per candidate is far too slow inside a sizing sweep.  The two-ramp
// flow plus the AWE far-end transfer evaluates each candidate in
// microseconds; a single transient simulation at the end validates the
// chosen size.
#include <cstdio>

#include <optional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "moments/awe.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

int main() {
  api::Engine engine{tech::Technology::cmos180()};
  const tech::Technology& technology = engine.technology();
  const tech::WireModel wires;

  api::BatchOptions options;
  options.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  options.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};

  // The net: a 6 mm x 2.0 um line to a 10X receiver; 100 ps input slew.
  const tech::WireParasitics wire = wires.extract({6 * mm, 2.0 * um});
  const double c_receiver = tech::Inverter{10.0}.input_capacitance(technology);
  const double input_slew = 100 * ps;
  const double target = 180 * ps;  // far-end 50 % arrival target

  std::printf("net: 6 mm x 2.0 um (R=%.0f ohm, L=%.1f nH, C=%.2f pF), target %.0f ps\n\n",
              wire.resistance, wire.inductance / nh, wire.capacitance / pf,
              target / ps);
  std::printf("%6s %9s %9s %12s %12s %8s\n", "size", "model", "f", "gate [ps]",
              "arrival [ps]", "meets?");

  const util::Series h = moments::distributed_transfer(
      wire.resistance, wire.inductance, wire.capacitance, c_receiver);
  const moments::AweModel awe = moments::AweModel::make(h, 3);

  std::optional<double> chosen;
  for (double size : {25.0, 40.0, 60.0, 80.0, 100.0, 125.0}) {
    api::Request candidate;
    candidate.label = "candidate " + std::to_string(static_cast<int>(size)) + "X";
    candidate.cell_size = size;
    candidate.input_slew = input_slew;
    candidate.net = tech::line_net(wire, c_receiver);
    const core::DriverOutputModel model =
        engine.model(candidate, options).value().model;
    const wave::Waveform far =
        awe.response(model.waveform, model.waveform.end_time() + 2 * ns, 2 * ps);
    const double arrival =
        far.first_crossing(0.5 * technology.vdd, true).value_or(1e9);
    const bool meets = arrival <= target;
    if (meets && !chosen.has_value()) chosen = size;
    std::printf("%5.0fX %9s %9.2f %12.1f %12.1f %8s\n", size,
                model.kind == core::ModelKind::two_ramp ? "two-ramp" : "one-ramp",
                model.f, model.t50 / ps, arrival / ps, meets ? "yes" : "no");
  }

  if (!chosen.has_value()) {
    std::printf("\nno candidate meets the %.0f ps target; widen the wire or add a "
                "repeater stage.\n", target / ps);
    return 0;
  }
  std::printf("\nchosen driver: %.0fX -- validating with a transient simulation...\n",
              *chosen);

  api::Request c;
  c.label = "validation";
  c.cell_size = *chosen;
  c.input_slew = input_slew;
  c.net = tech::line_net(wire, c_receiver);
  c.reference = true;
  const api::Response r = engine.model(c, options).value();
  std::printf("simulated far-end arrival: %.1f ps (model promised %.1f ps, %+.1f%%); "
              "target %s\n",
              r.ref_far.delay / ps, r.model_far.delay / ps,
              core::pct_error(r.model_far.delay, r.ref_far.delay),
              r.ref_far.delay <= target ? "met" : "MISSED");
  return 0;
}
