#include "api/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/coupled_experiment.h"
#include "core/experiment.h"
#include "sim/scenario_block.h"
#include "sim/sweep.h"
#include "tier/analytical.h"
#include "tier/router.h"
#include "waveform/waveform.h"

namespace rlceff::api {

// One deferred far-end replay: everything needed to compile and run the
// replay transient after its slot's model already answered.  The job owns a
// copy of the net (the request span is the caller's; tiered inner requests
// are stack temporaries) and shares ownership of the slot's ExecTracker so a
// budget armed at slot start keeps charging the deferred work.
struct ReplayJob {
  std::size_t slot = 0;
  std::string label;
  net::Net net;
  wave::Pwl source;             // modeled PWL in absolute deck time
  tech::DeckOptions deck;       // t_stop sized; sim.solver set; budget unset
  std::size_t dominant_leaf = 0;
  double input_time_50 = 0.0;
  bool keep_waveforms = false;
  std::shared_ptr<util::ExecTracker> tracker;
};

struct ReplayCollector {
  std::mutex mutex;
  std::vector<ReplayJob> jobs;

  void add(ReplayJob job) {
    const std::lock_guard<std::mutex> lock(mutex);
    jobs.push_back(std::move(job));
  }
  // Hands the slot's tracker to its job once the slot's primary attempt
  // committed to the deferred answer.
  void attach_tracker(std::size_t slot, std::shared_ptr<util::ExecTracker> tracker) {
    const std::lock_guard<std::mutex> lock(mutex);
    for (ReplayJob& job : jobs) {
      if (job.slot == slot) job.tracker = std::move(tracker);
    }
  }
  // Drops a slot's job when the slot failed after enqueueing (e.g. a later
  // convergence check): a failed slot must not be patched.
  void discard(std::size_t slot) {
    const std::lock_guard<std::mutex> lock(mutex);
    std::erase_if(jobs, [slot](const ReplayJob& job) { return job.slot == slot; });
  }
};

namespace {

void validate(const Request& r) {
  auto reject = [&](const std::string& why) {
    throw InvalidRequestError("api::Engine: request '" + r.label + "': " + why);
  };
  if (!(r.cell_size > 0.0)) reject("cell size must be positive");
  if (!(r.input_slew > 0.0)) reject("input slew must be positive");
  if (r.coupled()) {
    if (!r.net.empty()) reject("both net and coupled group set");
    if (r.victim >= r.group.size()) {
      reject("victim index " + std::to_string(r.victim) + " out of range (group has " +
             std::to_string(r.group.size()) + " nets)");
    }
    std::vector<bool> seen(r.group.size(), false);
    for (const Aggressor& a : r.aggressors) {
      if (a.net >= r.group.size()) {
        reject("aggressor net index " + std::to_string(a.net) + " out of range");
      }
      if (a.net == r.victim) reject("the victim cannot be its own aggressor");
      if (seen[a.net]) {
        reject("duplicate aggressor for net '" + r.group.label_at(a.net) + "'");
      }
      seen[a.net] = true;
      if (!(a.cell_size > 0.0)) reject("aggressor cell size must be positive");
      if (!(a.input_slew > 0.0)) reject("aggressor input slew must be positive");
    }
  } else {
    if (!r.aggressors.empty()) reject("aggressors without a coupled group");
    if (r.net.empty()) reject("net is empty");
  }
  if (!r.reference && r.one_ramp_baseline) {
    reject("one_ramp_baseline needs the reference simulation");
  }
  if (!r.reference && !r.far_end_replay && r.keep_waveforms) {
    reject("keep_waveforms needs the reference simulation or far_end_replay");
  }
  if (r.far_end_replay) {
    if (r.coupled()) reject("far_end_replay is a single-net replay");
    if (r.reference) {
      reject("far_end_replay is redundant with the reference simulation "
             "(which already replays the far end)");
    }
    if (r.tier != tier::TierPolicy::reference) {
      reject("far_end_replay is incompatible with a tier policy");
    }
  }
  if (r.coupled() && r.one_ramp_baseline) {
    reject("the one-ramp baseline is a single-net comparison column");
  }
  if (r.tier != tier::TierPolicy::reference && r.reference) {
    reject("the reference flag is incompatible with a tier policy; use "
           "TierPolicy::force_reference to pin Tier C");
  }
}

// Runs the request's static-diagnostics pass (Request::lint).  The Eq 9
// driver context defaults from the request itself: a static Thevenin Rs from
// the cell size and the input slew standing in for the converged first-ramp
// time.
lint::Report run_lint(const Request& request, const tech::Technology& technology) {
  lint::Options checks = request.lint.checks;
  if (!(checks.driver_resistance > 0.0)) {
    checks.driver_resistance =
        lint::estimate_driver_resistance(technology, request.cell_size);
  }
  if (!(checks.input_slew > 0.0)) checks.input_slew = request.input_slew;
  if (checks.tier_policy == tier::TierPolicy::reference) {
    checks.tier_policy = request.tier;
  }
  return request.coupled() ? lint::lint_group(request.group, checks)
                           : lint::lint_net(request.net, checks);
}

// Maps a coupled api::Request onto the core experiment case: the aggressor
// list (indexed by group net, victim slot ignored) defaults every unnamed
// net to a quiet neighbor.
core::CoupledExperimentCase coupled_case(const Request& r) {
  core::CoupledExperimentCase scenario;
  scenario.label = r.label;
  scenario.group = r.group;
  scenario.victim = r.victim;
  scenario.driver_size = r.cell_size;
  scenario.input_slew = r.input_slew;
  core::AggressorDrive unnamed;  // core defaults, held quiet
  unnamed.switching = core::AggressorSwitching::quiet;
  scenario.aggressors.assign(r.group.size(), unnamed);
  for (const Aggressor& a : r.aggressors) {
    scenario.aggressors[a.net] = {a.cell_size, a.input_slew, a.switching};
  }
  return scenario;
}

// The Ceff iterations report non-convergence via their converged flags; the
// service boundary promotes that to a failure so a silently-unconverged
// model cannot masquerade as a timing number.
void check_convergence(const Request& request, const core::DriverOutputModel& m) {
  if (!request.require_convergence) return;
  auto require = [&](const core::CeffIteration& it, const char* which) {
    if (!it.converged) {
      throw ConvergenceError("api::Engine: request '" + request.label + "': " +
                             which + " iteration did not converge within " +
                             std::to_string(it.iterations) + " iterations");
    }
  };
  require(m.ceff1, "Ceff1");
  if (m.kind != core::ModelKind::one_ramp) require(m.ceff2, "Ceff2");
  if (m.kind == core::ModelKind::three_ramp) require(m.ceff3, "Ceff3");
}

// Measures the modeled PWL alone (no deck): the emitted waveform always ends
// on the rail, so extending it by one step covers every crossing.
core::EdgeMetrics measure_model(const core::DriverOutputModel& m, double vdd) {
  const wave::Waveform w = m.waveform.to_waveform(m.waveform.end_time() + 1e-12);
  const wave::EdgeTiming e = wave::measure_rising_edge(w, 0.0, vdd);
  return {e.t50, e.transition_10_90()};
}

// The replay deck a model-only far_end_replay slot runs: the modeled PWL
// shifted into absolute deck time (the model's t = 0 is the input 50 %
// crossing, analytically t_start + slew/2 for a saturated ramp input), a
// horizon auto-sized exactly like the reference harness, and the
// dominant-path leaf to measure.
struct ReplayPlan {
  wave::Pwl source;
  tech::DeckOptions deck;
  std::size_t dominant_leaf = 0;
  double input_time_50 = 0.0;
};

ReplayPlan plan_far_end_replay(const Request& request, const BatchOptions& options,
                               const core::DriverOutputModel& model) {
  const net::NetMetrics metrics = request.net.metrics();
  ReplayPlan plan;
  plan.input_time_50 = options.deck.t_start + 0.5 * request.input_slew;
  plan.deck = options.deck;
  plan.deck.t_stop = options.deck.t_start + request.input_slew +
                     std::max(1e-9, core::settle_time(request.cell_size, metrics));
  plan.deck.sim.budget = nullptr;
  plan.deck.sim.solver = request.solver;
  plan.dominant_leaf = metrics.dominant_leaf;
  std::vector<std::pair<double, double>> pts = model.waveform.points();
  for (auto& [t, v] : pts) t += plan.input_time_50;
  plan.source = wave::Pwl(std::move(pts));
  return plan;
}

// The per-slot replay path (no collector, degrade enabled, or wall-clock
// limited): identical construction and measurement to the batched path, so
// BatchOptions::batch_scenarios on/off is a bitwise no-op on the numbers.
void run_replay_inline(const tech::Technology& technology, const Request& request,
                       const ReplayPlan& plan, util::ExecTracker* budget,
                       Response& response) {
  tech::DeckOptions deck = plan.deck;
  deck.sim.budget = budget;
  const tech::NetSimResult replay =
      tech::simulate_source_net(plan.source, request.net, deck);
  const wave::Waveform& far = replay.leaves.at(plan.dominant_leaf);
  response.model_far =
      core::measure_edge(far, technology.vdd, plan.input_time_50);
  response.has_model_far = true;
  response.input_time_50 = plan.input_time_50;
  response.has_solver = true;
  response.solver = replay.solver;
  if (request.keep_waveforms) response.model_far_wave = far;
}

}  // namespace

Engine::Engine(tech::Technology technology) : technology_(technology) {}

Response Engine::model_or_throw(const Request& request, const BatchOptions& options,
                                util::ExecTracker* budget, std::size_t slot,
                                bool run_hook, ReplayCollector* collector) {
  validate(request);

  // Admission screen: reject statically-broken work before any
  // characterization lookup or solve.  lint_rejected is deliberately not on
  // the degradable-code list — a screened-out request is wrong input, and
  // retrying or degrading it would just re-lint the same net.
  std::vector<lint::Diagnostic> diagnostics;
  if (request.lint.screen || request.lint.report) {
    lint::Report report = run_lint(request, technology_);
    if (request.lint.screen && !report.diagnostics.empty() &&
        report.worst() >= request.lint.fail_at) {
      std::size_t gating = 0;
      std::string first;
      for (const lint::Diagnostic& d : report.diagnostics) {
        if (d.severity < request.lint.fail_at) continue;
        if (gating++ == 0) first = lint::format(d);
      }
      throw LintRejectedError(
          "api::Engine: request '" + request.label + "': rejected by the lint "
          "screen (" + std::to_string(gating) + " finding(s) at or above " +
          lint::to_string(request.lint.fail_at) + "): " + first,
          std::move(report.diagnostics));
    }
    if (request.lint.report) diagnostics = std::move(report.diagnostics);
  }

  if (budget) budget->check("api::Engine slot");
  if (run_hook && options.debug_slot_fault) {
    util::ExecTracker unbudgeted;
    options.debug_slot_fault(slot, budget ? *budget : unbudgeted);
  }

  // Multi-fidelity cascade: a non-default tier policy routes the slot from
  // here, after the preamble (validation, lint screen, budget check, fault
  // hook) every tier shares.  The inner attempts recurse into this function
  // with the policy cleared.  (No elapsed stamp here: run_slot times the
  // whole attempt ladder and overwrites elapsed_s on every path.)
  if (request.tier != tier::TierPolicy::reference) {
    Response response = tiered_response(request, options, budget, slot);
    response.diagnostics = std::move(diagnostics);
    return response;
  }

  // Thread the armed budget into every layer this slot touches: the Ceff
  // fixed points (via the model options) and the transient step/Newton loops
  // (via the deck's TransientOptions).
  core::DriverModelOptions model_opt = request.model;
  model_opt.iteration.budget = budget;
  tech::DeckOptions deck = options.deck;
  deck.sim.budget = budget;
  deck.sim.solver = request.solver;

  Response response;
  response.label = request.label;
  response.diagnostics = std::move(diagnostics);

  if (request.coupled()) {
    response.has_coupling = true;
    if (request.reference) {
      core::CoupledExperimentOptions opt;
      opt.deck = deck;
      opt.grid = options.grid;
      opt.model = model_opt;
      opt.include_far_end = request.far_end;
      opt.include_noise = request.noise;
      opt.keep_waveforms = request.keep_waveforms;

      core::CoupledExperimentResult r = core::run_coupled_experiment(
          technology_, library_, coupled_case(request), opt);
      // The pushout estimate leans on the quiet-baseline model too; a
      // non-converged baseline must fail the slot like the primary model.
      check_convergence(request, r.model_base);
      response.model = std::move(r.model);
      response.model_near = r.model_near;
      response.has_reference = true;
      response.ref_near = r.ref_near;
      response.ref_far = r.ref_far;
      response.model_far = r.model_far;
      response.has_model_far = request.far_end;
      response.base_near = r.base_near;
      response.base_far = r.base_far;
      response.delay_pushout = r.delay_pushout;
      response.delay_pushout_model = r.delay_pushout_model;
      response.peak_noise = r.peak_noise;
      response.input_time_50 = r.input_time_50;
      response.has_solver = true;
      response.solver = r.solver;
      response.ref_near_wave = std::move(r.ref_near_wave);
      response.ref_far_wave = std::move(r.ref_far_wave);
    } else {
      // Model-only coupled path: the paper's flow on the Miller-decoupled
      // victim plus the quiet-environment model for the pushout estimate.
      // (No core case is built here — the factors come straight from the
      // aggressor list, nets without an entry staying quiet at 1x.)
      const charlib::CharacterizedDriver& driver =
          library_.ensure_driver(technology_, request.cell_size, options.grid);
      std::vector<double> factors(request.group.size(), 1.0);
      for (const Aggressor& a : request.aggressors) {
        factors[a.net] = core::miller_factor(a.switching);
      }
      response.model = core::model_driver_output(
          driver, request.input_slew,
          request.group.decoupled_net(request.victim, factors), model_opt);
      response.model_near = measure_model(response.model, technology_.vdd);
      // With all-quiet aggressors the Miller net is the quiet net: the
      // pushout is exactly zero, no second Ceff run needed.
      const bool all_quiet = std::all_of(factors.begin(), factors.end(),
                                         [](double f) { return f == 1.0; });
      if (!all_quiet) {
        const core::DriverOutputModel base = core::model_driver_output(
            driver, request.input_slew,
            request.group.decoupled_net(request.victim), model_opt);
        check_convergence(request, base);
        response.delay_pushout_model =
            response.model_near.delay - measure_model(base, technology_.vdd).delay;
      }
    }
    check_convergence(request, response.model);
    return response;
  }

  if (request.reference) {
    core::ExperimentCase scenario;
    scenario.label = request.label;
    scenario.driver_size = request.cell_size;
    scenario.input_slew = request.input_slew;
    scenario.net = request.net;

    core::ExperimentOptions opt;
    opt.deck = deck;
    opt.grid = options.grid;
    opt.model = model_opt;
    opt.include_far_end = request.far_end;
    opt.include_one_ramp = request.one_ramp_baseline;
    opt.keep_waveforms = request.keep_waveforms;

    core::ExperimentResult r =
        core::run_experiment(technology_, library_, scenario, opt);
    response.model = std::move(r.model);
    response.model_near = r.model_near;
    response.has_reference = true;
    response.ref_near = r.ref_near;
    response.ref_far = r.ref_far;
    response.model_far = r.model_far;
    response.has_model_far = request.far_end;
    response.one_near = r.one_near;
    response.one_ramp = std::move(r.one_ramp);
    response.ref_near_wave = std::move(r.ref_near_wave);
    response.ref_far_wave = std::move(r.ref_far_wave);
    response.model_far_wave = std::move(r.model_far_wave);
    response.input_time_50 = r.input_time_50;
    response.has_solver = true;
    response.solver = r.solver;
  } else {
    const charlib::CharacterizedDriver& driver =
        library_.ensure_driver(technology_, request.cell_size, options.grid);
    response.model = core::model_driver_output(driver, request.input_slew,
                                               request.net, model_opt);
    response.model_near = measure_model(response.model, technology_.vdd);
    if (request.far_end_replay) {
      // Fail a non-converged model *before* planning or enqueueing its
      // replay, so a slot that fails here leaves nothing behind to patch.
      check_convergence(request, response.model);
      ReplayPlan plan = plan_far_end_replay(request, options, response.model);
      // Slots with a wall-clock limit or an enabled degrade policy never
      // defer: the deadline/ladder semantics are tied to the slot's own
      // attempt sequence, and deferral would move work past both.
      const bool defer = collector != nullptr && !request.degrade.enabled &&
                         request.budget.wall_limit_s <= 0.0;
      if (defer) {
        ReplayJob job;
        job.slot = slot;
        job.label = request.label;
        job.net = request.net;
        job.source = std::move(plan.source);
        job.deck = plan.deck;
        job.dominant_leaf = plan.dominant_leaf;
        job.input_time_50 = plan.input_time_50;
        job.keep_waveforms = request.keep_waveforms;
        collector->add(std::move(job));
        response.input_time_50 = plan.input_time_50;
      } else {
        run_replay_inline(technology_, request, plan, budget, response);
      }
    }
  }

  check_convergence(request, response.model);
  return response;
}

Response Engine::moments_only_response(const Request& request,
                                       const BatchOptions& options) {
  const charlib::CharacterizedDriver& driver =
      library_.ensure_driver(technology_, request.cell_size, options.grid);
  Response response;
  response.label = request.label;
  if (request.coupled()) {
    response.has_coupling = true;
    std::vector<double> factors(request.group.size(), 1.0);
    for (const Aggressor& a : request.aggressors) {
      factors[a.net] = core::miller_factor(a.switching);
    }
    response.model = core::estimate_driver_output_moments_only(
        driver, request.input_slew,
        request.group.decoupled_net(request.victim, factors));
    response.model_near = measure_model(response.model, technology_.vdd);
    const bool all_quiet = std::all_of(factors.begin(), factors.end(),
                                       [](double f) { return f == 1.0; });
    if (!all_quiet) {
      const core::DriverOutputModel base = core::estimate_driver_output_moments_only(
          driver, request.input_slew, request.group.decoupled_net(request.victim));
      response.delay_pushout_model =
          response.model_near.delay - measure_model(base, technology_.vdd).delay;
    }
  } else {
    response.model = core::estimate_driver_output_moments_only(
        driver, request.input_slew, request.net);
    response.model_near = measure_model(response.model, technology_.vdd);
  }
  return response;
}

Response Engine::analytical_response(const Request& request,
                                     const BatchOptions& options,
                                     tier::AnalyticalEstimate* estimate_out) {
  const charlib::CharacterizedDriver& driver =
      library_.ensure_driver(technology_, request.cell_size, options.grid);
  Response response;
  response.label = request.label;
  response.fidelity = Fidelity::analytical;
  response.tier = tier::Tier::analytical;
  if (request.coupled()) {
    response.has_coupling = true;
    std::vector<double> factors(request.group.size(), 1.0);
    for (const Aggressor& a : request.aggressors) {
      factors[a.net] = core::miller_factor(a.switching);
    }
    tier::AnalyticalEstimate estimate = tier::analytical_estimate(
        driver, request.input_slew,
        request.group.decoupled_net(request.victim, factors));
    response.model_near = {estimate.delay, estimate.slew_10_90};
    const bool all_quiet = std::all_of(factors.begin(), factors.end(),
                                       [](double f) { return f == 1.0; });
    if (!all_quiet) {
      const tier::AnalyticalEstimate base = tier::analytical_estimate(
          driver, request.input_slew, request.group.decoupled_net(request.victim));
      response.delay_pushout_model = estimate.delay - base.delay;
    }
    response.has_noise_bound = true;
    response.noise_bound =
        tier::noise_bound(request.group, request.victim, technology_.vdd);
    response.model = std::move(estimate.model);
    if (estimate_out) *estimate_out = std::move(estimate);
  } else {
    tier::AnalyticalEstimate estimate =
        tier::analytical_estimate(driver, request.input_slew, request.net);
    response.model_near = {estimate.delay, estimate.slew_10_90};
    // Move, not copy: the waveform's points are the only allocation in the
    // model and the admission screen only reads the scalar fields.
    response.model = std::move(estimate.model);
    if (estimate_out) *estimate_out = std::move(estimate);
  }
  return response;
}

Response Engine::tiered_response(const Request& request, const BatchOptions& options,
                                 util::ExecTracker* budget, std::size_t slot) {
  using tier::Tier;
  using tier::TierPolicy;
  const TierPolicy policy = request.tier;
  std::size_t escalations = 0;

  // One tier of the legacy ladder, served by recursing into model_or_throw
  // with the policy cleared (the preamble — validation, lint, budget check,
  // fault hook — already ran on the outer request).
  auto serve = [&](bool reference_flag, Tier t, Fidelity f) {
    Request inner = request;
    inner.tier = TierPolicy::reference;
    inner.reference = reference_flag;
    inner.lint = LintOptions{};
    Response r = model_or_throw(inner, options, budget, slot, false);
    r.fidelity = f;
    r.tier = t;
    r.tier_escalations = escalations;
    return r;
  };

  if (policy == TierPolicy::force_ceff) {
    return serve(false, Tier::ceff, Fidelity::ceff_model);
  }
  if (policy == TierPolicy::force_reference) {
    return serve(true, Tier::reference, Fidelity::reference);
  }

  // Tier A candidacy: the cheap topology screen first (coupled groups), the
  // estimate-based screen once the estimate exists.  Forced Tier A skips
  // admission entirely — that is what calibration wants.
  tier::Admission admission;
  if (request.coupled()) {
    admission = tier::admit_group_analytical(request.group, request.victim);
  }
  if (policy == TierPolicy::force_analytical) {
    tier::AnalyticalEstimate estimate;
    Response a = analytical_response(request, options, &estimate);
    a.tier_escalations = escalations;
    return a;
  }
  if (admission.ok) {
    // A closed form that throws (degenerate fit, stalled table fixed point)
    // is just another refusal: the denser tiers own that net.  Budget and
    // cancellation faults are not — they abort the slot like anywhere else.
    try {
      tier::AnalyticalEstimate estimate;
      Response a = analytical_response(request, options, &estimate);
      admission = tier::admit_analytical(estimate);
      if (admission.ok) {
        a.tier_escalations = escalations;
        return a;
      }
    } catch (const DeadlineError&) {
      throw;
    } catch (const BudgetError&) {
      throw;
    } catch (const Error&) {
      admission = {false, "estimate_failed"};
    }
  }

  // Escalation A -> B; under balanced, a Tier B fixed point that cannot
  // agree with itself escalates once more to the transient reference.
  ++escalations;
  if (policy == TierPolicy::fastest) {
    return serve(false, Tier::ceff, Fidelity::ceff_model);
  }
  try {
    return serve(false, Tier::ceff, Fidelity::ceff_model);
  } catch (const ConvergenceError&) {
    ++escalations;
    return serve(true, Tier::reference, Fidelity::reference);
  }
}

Outcome<Response> Engine::run_slot(const Request& request, const BatchOptions& options,
                                   std::size_t slot, ReplayCollector* collector) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::vector<Attempt> attempts;
  const Fidelity primary =
      request.reference ? Fidelity::reference : Fidelity::ceff_model;

  auto finish = [&](Response r, Fidelity fidelity, bool degraded) {
    // Tiered slots stamp fidelity + tier inside tiered_response; the policy
    // only overrides them when a degraded fallback actually answered.
    if (request.tier == tier::TierPolicy::reference || degraded) {
      r.fidelity = fidelity;
      r.tier = fidelity == Fidelity::reference ? tier::Tier::reference
                                               : tier::Tier::ceff;
    }
    r.degraded = degraded;
    r.attempts = std::move(attempts);
    r.elapsed_s = elapsed();
    return Outcome<Response>(std::move(r));
  };
  auto fail = [&](std::exception_ptr e) {
    ErrorInfo info = describe_failure(std::move(e), request.label);
    info.elapsed_s = elapsed();
    return Outcome<Response>(std::move(info));
  };

  // Heap-owned tracker: a deferred replay charges this slot's budget after
  // run_slot returns, so the collector shares ownership with the job.
  const auto owned_tracker = std::make_shared<util::ExecTracker>(request.budget);
  util::ExecTracker& tracker = *owned_tracker;
  std::exception_ptr first_error;
  try {
    Response r = model_or_throw(request, options, &tracker, slot, true, collector);
    if (collector) collector->attach_tracker(slot, owned_tracker);
    return finish(std::move(r), primary, false);
  } catch (...) {
    first_error = std::current_exception();
    // A slot that enqueued a replay and then failed must not be patched.
    if (collector) collector->discard(slot);
  }
  const ErrorInfo first = describe_failure(first_error, request.label);

  // Cancellation aborts outright — degrading a cancelled slot spends more
  // work on an answer nobody is waiting for.
  if (!request.degrade.enabled || request.budget.cancel.cancel_requested()) {
    return fail(first_error);
  }
  attempts.push_back({primary, first.code, first.message});

  // Damped retry, same fidelity: a converged retry is an exact answer.
  if (first.code == ErrorCode::convergence_failure &&
      request.degrade.retry_damping > 0.0) {
    Request damped = request;
    damped.model.iteration.damping = request.degrade.retry_damping;
    try {
      return finish(model_or_throw(damped, options, &tracker, slot, false),
                    primary, false);
    } catch (...) {
      const ErrorInfo info = describe_failure(std::current_exception(), request.label);
      attempts.push_back(
          {primary, info.code, std::string("damped retry: ") + info.message});
    }
  }

  const ErrorCode last = attempts.back().code;
  const bool degradable = last == ErrorCode::deadline_exceeded ||
                          last == ErrorCode::resource_exhausted ||
                          last == ErrorCode::convergence_failure;
  if (!degradable) return fail(first_error);

  // Ladder tier 2: a reference request falls back to the table-driven Ceff
  // model.  The exhausted wall budget is deliberately not re-armed: the
  // fallback is iteration-capped table math with bounded cost, and raising
  // the same DeadlineError again would make degradation unreachable.
  if (request.reference) {
    Request ceff_only = request;
    ceff_only.reference = false;
    ceff_only.one_ramp_baseline = false;
    ceff_only.keep_waveforms = false;
    try {
      return finish(model_or_throw(ceff_only, options, nullptr, slot, false),
                    Fidelity::ceff_model, true);
    } catch (...) {
      const ErrorInfo info = describe_failure(std::current_exception(), request.label);
      attempts.push_back({Fidelity::ceff_model, info.code, info.message});
    }
  }

  // Ladder floor: the moments-only estimate (cell table at Ctotal) — no
  // iteration, cannot fail to converge.
  if (request.degrade.moments_floor) {
    try {
      return finish(moments_only_response(request, options), Fidelity::moments_only,
                    true);
    } catch (...) {
      // Fall through to report the original failure; the floor itself only
      // throws for requests broken enough that degradation is meaningless.
    }
  }
  return fail(first_error);
}

Outcome<Response> Engine::model(const Request& request, const BatchOptions& options) {
  return run_slot(request, options, 0);
}

std::vector<Outcome<Response>> Engine::run_batch(std::span<const Request> requests,
                                                 const BatchOptions& options) {
  // Pre-characterize the batch's distinct cell sizes once, so the fan-out
  // below hits a warm, read-mostly library.  A size whose characterization
  // failed is remembered and its error re-raised directly for every slot
  // using that size — without this, each such slot would re-run the full
  // characterization grid just to hit the same exception again.
  std::vector<double> sizes;
  for (const Request& r : requests) {
    if (r.cell_size <= 0.0) continue;
    const bool seen = std::any_of(sizes.begin(), sizes.end(), [&](double s) {
      return std::abs(s - r.cell_size) < 1e-9;
    });
    if (!seen) sizes.push_back(r.cell_size);
  }
  const std::vector<double> missing = collect_missing(sizes);
  const std::vector<std::exception_ptr> errors = sim::run_indexed_sweep_collect(
      missing.size(),
      [&](std::size_t i) {
        library_.ensure_driver(technology_, missing[i], options.grid);
      },
      options.n_threads);
  auto characterization_failure = [&](double size) -> std::exception_ptr {
    for (std::size_t i = 0; i < missing.size(); ++i) {
      if (errors[i] && std::abs(missing[i] - size) < 1e-9) return errors[i];
    }
    return nullptr;
  };

  // Fan the slots out with the full per-slot policy (budget arming, retry,
  // degradation).  The workers write straight into the pre-sized results
  // vector — an Outcome<Response> is ~1 KB, and routing it through a second
  // staging container costs a full copy round per slot at Tier A rates.
  // run_slot never throws for per-scenario failures; the collect is
  // belt-and-braces against anything escaping the policy itself.
  std::vector<Outcome<Response>> results(requests.size(),
                                         Outcome<Response>(ErrorInfo{}));
  ReplayCollector collector;
  ReplayCollector* collect = options.batch_scenarios ? &collector : nullptr;
  const std::vector<std::exception_ptr> escapes = sim::run_indexed_sweep_collect(
      requests.size(),
      [&](std::size_t i) {
        const Request& r = requests[i];
        if (std::exception_ptr e = characterization_failure(r.cell_size)) {
          results[i] = Outcome<Response>(describe_failure(e, r.label));
          return;
        }
        results[i] = run_slot(r, options, i, collect);
      },
      options.n_threads);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (escapes[i]) {
      results[i] = Outcome<Response>(describe_failure(escapes[i], requests[i].label));
    }
  }
  // Deferred far_end_replay transients: group equal-topology decks and run
  // each group as one shared-factorization multi-RHS block, then patch the
  // affected slots.  (No-op when nothing deferred.)
  if (collect) finalize_deferred(collector, options, results);
  return results;
}

void Engine::finalize_deferred(ReplayCollector& collector, const BatchOptions& options,
                               std::vector<Outcome<Response>>& results) {
  std::vector<ReplayJob>& jobs = collector.jobs;  // workers are done: no lock
  // Belt-and-braces: never patch a slot that is no longer a success (e.g. a
  // sweep escape overwrote it after the job was enqueued).
  std::erase_if(jobs, [&](const ReplayJob& j) { return !results[j.slot].ok(); });
  if (jobs.empty()) return;

  // Compile every deck up front (in parallel — netlist building is cheap but
  // hundreds of thousand-node ladders add up).  A compile failure fails just
  // its own slot.
  std::vector<tech::SourceNetDeck> decks(jobs.size());
  std::vector<sim::TransientOptions> sim_opts(jobs.size());
  const std::vector<std::exception_ptr> compile_errors =
      sim::run_indexed_sweep_collect(
          jobs.size(),
          [&](std::size_t i) {
            decks[i] = tech::compile_source_net(jobs[i].source, jobs[i].net,
                                                jobs[i].deck);
            sim_opts[i] = tech::sim_options(jobs[i].deck);
            sim_opts[i].budget = nullptr;  // per-lane trackers instead
          },
          options.n_threads);

  // Group by structural hash, confirmed by the exhaustive bit-compare —
  // near-identical decks (one ULP, one extra edge) never share a matrix.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (compile_errors[i]) {
      results[jobs[i].slot] =
          Outcome<Response>(describe_failure(compile_errors[i], jobs[i].label));
      continue;
    }
    const std::uint64_t hash =
        sim::scenario_group_hash(decks[i].netlist, sim_opts[i]);
    bool placed = false;
    for (std::vector<std::size_t>& group : groups) {
      const std::size_t head = group.front();
      if (sim::scenario_group_hash(decks[head].netlist, sim_opts[head]) != hash) {
        continue;
      }
      if (!sim::scenario_group_equal(decks[head].netlist, decks[i].netlist)) continue;
      if (!sim::scenario_options_equal(sim_opts[head], sim_opts[i])) continue;
      if (decks[head].probes != decks[i].probes) continue;
      group.push_back(i);
      placed = true;
      break;
    }
    if (!placed) groups.push_back({i});
  }

  // Equal-topology groups run as blocks; groups run in parallel across the
  // sweep pool (they touch disjoint slots).  A failure of the *shared*
  // machinery falls back to per-lane scalar replays, so a group-level fault
  // can never fail a scenario that would have succeeded alone.
  const auto run_group = [&](std::size_t g) {
    const std::vector<std::size_t>& members = groups[g];
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t head = members.front();
    const sim::TransientOptions& so = sim_opts[head];

    std::vector<sim::BlockOutcome> outcomes;
    if (members.size() > 1) {
      std::vector<sim::BlockScenario> lanes;
      lanes.reserve(members.size());
      for (std::size_t i : members) {
        lanes.push_back(
            {&decks[i].netlist, jobs[i].deck.t_stop, jobs[i].tracker.get()});
      }
      try {
        outcomes = sim::simulate_block(lanes, so, decks[head].probes);
      } catch (...) {
        outcomes.clear();
      }
    }
    if (outcomes.empty()) {
      // Singleton group, or the shared path refused/failed: scalar per lane.
      for (std::size_t i : members) {
        sim::BlockOutcome o;
        try {
          sim::TransientOptions lane_opt = so;
          lane_opt.t_stop = jobs[i].deck.t_stop;
          lane_opt.budget = jobs[i].tracker.get();
          o.result = sim::simulate(decks[i].netlist, lane_opt, decks[i].probes);
        } catch (...) {
          o.error = std::current_exception();
        }
        outcomes.push_back(std::move(o));
      }
    }

    const sim::SolverKind solver = sim::selected_solver(decks[head].netlist, so);
    const double elapsed_share =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::size_t i = members[k];
      const ReplayJob& job = jobs[i];
      if (!outcomes[k].result.has_value()) {
        ErrorInfo info = describe_failure(outcomes[k].error, job.label);
        info.elapsed_s = results[job.slot].value().elapsed_s + elapsed_share;
        results[job.slot] = Outcome<Response>(std::move(info));
        continue;
      }
      // Exactly what run_replay_inline measures, from the blocked result.
      Response& response = results[job.slot].value();
      const wave::Waveform& far =
          outcomes[k].result->at(decks[i].nodes.leaves.at(job.dominant_leaf));
      response.model_far =
          core::measure_edge(far, technology_.vdd, job.input_time_50);
      response.has_model_far = true;
      response.has_solver = true;
      response.solver = solver;
      if (job.keep_waveforms) response.model_far_wave = far;
      response.elapsed_s += elapsed_share;
    }
  };
  const std::vector<std::exception_ptr> group_escapes =
      sim::run_indexed_sweep_collect(groups.size(), run_group, options.n_threads);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!group_escapes[g]) continue;
    for (std::size_t i : groups[g]) {
      results[jobs[i].slot] =
          Outcome<Response>(describe_failure(group_escapes[g], jobs[i].label));
    }
  }
}

std::vector<double> Engine::collect_missing(std::span<const double> sizes) const {
  std::vector<double> missing;
  for (double size : sizes) {
    if (library_.find(size) != nullptr) continue;
    const bool seen = std::any_of(missing.begin(), missing.end(), [&](double s) {
      return std::abs(s - size) < 1e-9;
    });
    if (!seen) missing.push_back(size);
  }
  return missing;
}

void Engine::warm_cache(std::span<const double> cell_sizes,
                        const charlib::CharacterizationGrid& grid,
                        unsigned n_threads) {
  const std::vector<double> missing = collect_missing(cell_sizes);
  sim::run_indexed_sweep(
      missing.size(),
      [&](std::size_t i) { library_.ensure_driver(technology_, missing[i], grid); },
      n_threads);
}

void Engine::warm_cache(std::initializer_list<double> cell_sizes,
                        const charlib::CharacterizationGrid& grid,
                        unsigned n_threads) {
  warm_cache(std::span<const double>(cell_sizes.begin(), cell_sizes.size()), grid,
             n_threads);
}

bool Engine::load_library(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return false;
  library_.load(in);
  return true;
}

void Engine::save_library(const std::string& path) const {
  library_.save_file(path);
}

}  // namespace rlceff::api
