// api::Engine — the batch-first, failure-isolating facade over the stack,
// and the one supported way into the library.
//
// The Engine owns a tech::Technology and a thread-safe charlib::CellLibrary
// and exposes the paper's flow as a service: Request in, Outcome<Response>
// out.  model() evaluates one net; run_batch() pre-characterizes the batch's
// distinct cell sizes once, then fans the scenarios out across the sweep
// pool with per-slot exception capture, so a non-convergent Ceff iteration
// (or an invalid net) marks one slot failed instead of aborting the batch.
//
// The boundary contract: everything below the Engine throws (util/error.h);
// everything above it branches on Outcome.  model()/run_batch() never throw
// for per-scenario failures.  run_batch() itself only throws for batch-level
// breakage (e.g. the characterization grid itself is unusable — and even
// then the error is re-raised per affected slot, see engine.cpp).
#ifndef RLCEFF_API_ENGINE_H
#define RLCEFF_API_ENGINE_H

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "api/outcome.h"
#include "api/request.h"
#include "charlib/library.h"
#include "tech/technology.h"

namespace rlceff::tier {
struct AnalyticalEstimate;
}

namespace rlceff::api {

// Deferred-replay staging area for one run_batch call (defined in
// engine.cpp): far_end_replay slots enqueue their compiled replay here
// instead of simulating inline; finalize_deferred() then groups
// equal-topology jobs and runs each group as one shared-factorization
// multi-RHS block (sim/scenario_block.h).
struct ReplayCollector;

class Engine {
public:
  explicit Engine(tech::Technology technology = tech::Technology::cmos180());

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const tech::Technology& technology() const { return technology_; }

  // The engine's cell cache.  Thread-safe; driver references obtained from
  // it stay valid for the engine's lifetime.
  charlib::CellLibrary& library() { return library_; }
  const charlib::CellLibrary& library() const { return library_; }

  // Evaluates one request.  Per-scenario failures come back as failed
  // Outcomes, never as exceptions.
  Outcome<Response> model(const Request& request, const BatchOptions& options = {});

  // Evaluates a batch; results[i] always corresponds to requests[i].
  std::vector<Outcome<Response>> run_batch(std::span<const Request> requests,
                                           const BatchOptions& options = {});

  // Characterizes any missing cell sizes up front (different sizes in
  // parallel) so later model()/run_batch() calls are pure table lookups.
  void warm_cache(std::span<const double> cell_sizes,
                  const charlib::CharacterizationGrid& grid =
                      charlib::CharacterizationGrid::standard(),
                  unsigned n_threads = 0);
  void warm_cache(std::initializer_list<double> cell_sizes,
                  const charlib::CharacterizationGrid& grid =
                      charlib::CharacterizationGrid::standard(),
                  unsigned n_threads = 0);

  // Cache persistence: merge a saved library into this engine (returns
  // false when the file does not exist) / write the current cache out, so
  // repeated invocations skip re-characterization.
  bool load_library(const std::string& path);
  void save_library(const std::string& path) const;

private:
  // One attempt at the request as written.  `budget` (nullable) is threaded
  // into every solver loop; `run_hook` gates the test-only fault hook so
  // retry/fallback attempts skip it.  `collector` (nullable) lets a
  // far_end_replay slot defer its replay transient for group batching;
  // without one the replay runs inline (same results, bitwise).
  Response model_or_throw(const Request& request, const BatchOptions& options,
                          util::ExecTracker* budget, std::size_t slot,
                          bool run_hook, ReplayCollector* collector = nullptr);
  // The full per-slot policy: arm the budget, attempt, then retry-and-
  // degrade per Request::degrade.  Never throws for per-scenario failures.
  Outcome<Response> run_slot(const Request& request, const BatchOptions& options,
                             std::size_t slot,
                             ReplayCollector* collector = nullptr);
  // Runs the collector's deferred replays as shared-factorization blocks
  // (one factor per equal-topology group and step size) and patches the
  // affected slots of `results` — model_far and friends on success, a failed
  // Outcome for lanes whose replay faulted.  Group machinery failures fall
  // back to per-lane scalar replays before failing anything.
  void finalize_deferred(ReplayCollector& collector, const BatchOptions& options,
                         std::vector<Outcome<Response>>& results);
  // The moments_only floor tier (core::estimate_driver_output_moments_only
  // on the request's — possibly Miller-decoupled — net).
  Response moments_only_response(const Request& request, const BatchOptions& options);
  // The multi-fidelity cascade (Request::tier != TierPolicy::reference):
  // routes the slot to Tier A/B/C per tier/router.h, escalating on admission
  // failure (and, under balanced, on a Tier B convergence failure).  Called
  // from model_or_throw after validation/lint/budget arming so every tier
  // shares the same preamble.
  Response tiered_response(const Request& request, const BatchOptions& options,
                           util::ExecTracker* budget, std::size_t slot);
  // Tier A: the closed-form analytical screen (tier/analytical.h) —
  // table lookups only, no fixed point, no transient.  `estimate_out`
  // (nullable) receives the raw estimate so the router can score admission
  // without recomputing it.  Its model.waveform is moved into the returned
  // Response (left empty in the estimate); every scalar admission input
  // (criteria, ceff1/ceff2, kind, shielding) stays valid.
  Response analytical_response(const Request& request, const BatchOptions& options,
                               tier::AnalyticalEstimate* estimate_out = nullptr);
  // Distinct cell sizes from `sizes` not yet in the library.
  std::vector<double> collect_missing(std::span<const double> sizes) const;

  tech::Technology technology_;
  charlib::CellLibrary library_;
};

}  // namespace rlceff::api

#endif  // RLCEFF_API_ENGINE_H
