#include "api/outcome.h"

#include "util/budget.h"

namespace rlceff::api {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::invalid_request: return "invalid_request";
    case ErrorCode::convergence_failure: return "convergence_failure";
    case ErrorCode::singular_system: return "singular_system";
    case ErrorCode::model_error: return "model_error";
    case ErrorCode::internal_error: return "internal_error";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
    case ErrorCode::resource_exhausted: return "resource_exhausted";
    case ErrorCode::lint_rejected: return "lint_rejected";
  }
  return "internal_error";
}

ErrorInfo describe_failure(std::exception_ptr error, std::string scenario) {
  ErrorInfo info;
  info.scenario = std::move(scenario);
  if (!error) {
    info.message = "scenario failed without an exception";
    return info;
  }
  try {
    std::rethrow_exception(std::move(error));
  } catch (const InvalidRequestError& e) {
    info.code = ErrorCode::invalid_request;
    info.message = e.what();
  } catch (const LintRejectedError& e) {
    info.code = ErrorCode::lint_rejected;
    info.message = e.what();
  } catch (const DeadlineError& e) {
    // CancelledError derives from DeadlineError: both are "ran out of time".
    info.code = ErrorCode::deadline_exceeded;
    info.message = e.what();
  } catch (const BudgetError& e) {
    info.code = ErrorCode::resource_exhausted;
    info.message = e.what();
  } catch (const ConvergenceError& e) {
    info.code = ErrorCode::convergence_failure;
    info.message = e.what();
  } catch (const SingularMatrixError& e) {
    info.code = ErrorCode::singular_system;
    info.message = e.what();
  } catch (const Error& e) {
    info.code = ErrorCode::model_error;
    info.message = e.what();
  } catch (const std::exception& e) {
    info.code = ErrorCode::internal_error;
    info.message = e.what();
  } catch (...) {
    info.code = ErrorCode::internal_error;
    info.message = "non-standard exception";
  }
  return info;
}

}  // namespace rlceff::api
