// Status-or-value results for the service-facing api::Engine.
//
// The core library reports failures by throwing (util/error.h); a batch
// facade cannot let one bad scenario unwind N-1 good ones, so the Engine
// catches at the slot boundary and returns Outcome<T>: either a value, or a
// structured ErrorInfo carrying a stable error code, the offending
// scenario's label, and the exception message.  Callers branch on ok() and
// never need the library's exception taxonomy; callers that *want*
// exceptions call value(), which rethrows a labeled Error for failed slots.
#ifndef RLCEFF_API_OUTCOME_H
#define RLCEFF_API_OUTCOME_H

#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lint/diagnostic.h"
#include "util/error.h"

namespace rlceff::api {

// Stable failure classification, mapped from the library's exception types.
enum class ErrorCode {
  invalid_request,      // rejected before reaching the core flow (bad net/slew/size)
  convergence_failure,  // a Ceff fixed point, Newton loop, or AWE fit diverged
  singular_system,      // an MNA or moment-fit system was (numerically) singular
  model_error,          // any other failure the library raised on purpose
  internal_error,       // a non-rlceff exception escaped a scenario
  deadline_exceeded,    // wall-clock budget expired or the slot was cancelled
                        // (DeadlineError / CancelledError, util/budget.h)
  resource_exhausted,   // a step/iteration budget ran out (BudgetError)
  lint_rejected,        // the admission screen (Request::lint.screen) found
                        // diagnostics at or above the configured severity;
                        // the slot never reached a solver.  Never degradable.
};

const char* to_string(ErrorCode code);

struct ErrorInfo {
  ErrorCode code = ErrorCode::internal_error;
  std::string scenario;  // Request::label of the failing slot
  std::string message;   // human-readable cause (the exception's what())
  double elapsed_s = 0.0;  // wall time the slot spent before failing (set by
                           // the Engine; deadline slots prove promptness here)
};

// Raised by the Engine for requests it rejects up front; maps to
// ErrorCode::invalid_request (every other Error maps by its concrete type).
class InvalidRequestError : public Error {
public:
  explicit InvalidRequestError(const std::string& what) : Error(what) {}
};

// Raised by the Engine's admission screen; maps to ErrorCode::lint_rejected
// and carries the full diagnostic list so callers can render every finding,
// not just the first.
class LintRejectedError : public Error {
public:
  LintRejectedError(const std::string& what, std::vector<lint::Diagnostic> diagnostics)
      : Error(what), diagnostics_(std::move(diagnostics)) {}
  const std::vector<lint::Diagnostic>& diagnostics() const { return diagnostics_; }

private:
  std::vector<lint::Diagnostic> diagnostics_;
};

// Classifies a captured exception onto the ErrorCode taxonomy.
ErrorInfo describe_failure(std::exception_ptr error, std::string scenario);

template <class T>
class Outcome {
public:
  Outcome(T value) : value_(std::move(value)) {}
  Outcome(ErrorInfo error) : error_(std::move(error)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  // Unwraps the value; throws a labeled Error on failed outcomes so an
  // accidental unwrap is loud instead of reading garbage.
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  T&& value() && {
    require_ok();
    return std::move(*value_);
  }

  // Only meaningful on failed outcomes.
  const ErrorInfo& error() const {
    ensure(!ok(), "Outcome: error() called on a successful outcome");
    return error_;
  }

private:
  void require_ok() const {
    if (!ok()) {
      throw Error(std::string("Outcome: value() on failed scenario '") +
                  error_.scenario + "' [" + to_string(error_.code) +
                  "]: " + error_.message);
    }
  }

  std::optional<T> value_;
  ErrorInfo error_;
};

}  // namespace rlceff::api

#endif  // RLCEFF_API_OUTCOME_H
