// Plain data transfer objects for the api::Engine facade.
//
// A Request is everything a timing engine knows about one net: which cell
// drives it, the input slew, the interconnect (a net::Net), and the paper
// flow's controls.  A Response packages the DriverOutputModel, the measured
// edge metrics, and timing diagnostics.  BatchOptions carries the knobs that
// are properties of a *run* rather than of a net: reference-simulation
// fidelity, the characterization grid, and the sweep pool width.
#ifndef RLCEFF_API_REQUEST_H
#define RLCEFF_API_REQUEST_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "api/outcome.h"
#include "charlib/characterize.h"
#include "lint/lint.h"
#include "core/coupled_experiment.h"
#include "core/driver_model.h"
#include "core/experiment.h"
#include "net/coupled.h"
#include "net/net.h"
#include "tech/testbench.h"
#include "tier/tier.h"
#include "util/budget.h"

namespace rlceff::api {

// How the numbers in a Response were produced — the engine's fidelity
// ladder, highest first.  On deadline/budget exhaustion (with
// DegradePolicy::enabled) a slot falls down this ladder and the Response is
// stamped with the tier that actually answered.
enum class Fidelity {
  reference,     // full transient reference simulation + paper-flow model
  ceff_model,    // the paper's Ceff one/two-ramp model (table-driven)
  moments_only,  // degraded floor: cell table at Ctotal (first moment m1);
                 // see core::estimate_driver_output_moments_only's envelope
  analytical,    // Tier A: closed-form shielded-Ceff table estimate
                 // (tier/analytical.h); only produced by tiered requests
};

inline const char* to_string(Fidelity f) {
  switch (f) {
    case Fidelity::reference: return "reference";
    case Fidelity::ceff_model: return "ceff_model";
    case Fidelity::moments_only: return "moments_only";
    case Fidelity::analytical: return "analytical";
  }
  return "ceff_model";
}

// One abandoned attempt in a slot's trail: which ladder tier was tried and
// why it was given up.
struct Attempt {
  Fidelity fidelity = Fidelity::ceff_model;
  ErrorCode code = ErrorCode::internal_error;
  std::string message;
};

// What the Engine may do when a slot fails, instead of surfacing the error.
// Default-off: failures stay failed Outcomes (bitwise-identical behavior to
// a policy-free engine).  With `enabled`:
//   1. a convergence_failure is retried once with the damped fixed point
//      (damping = retry_damping); a converged retry is a full-fidelity,
//      non-degraded answer (the attempt trail records the first try);
//   2. deadline/budget exhaustion — or a retry that still fails — walks the
//      fidelity ladder (reference -> ceff_model -> moments_only), returning
//      the first tier that completes, flagged Response::degraded.  The
//      fallback tiers are iteration-capped table math (no transient), so
//      they add bounded work after an expired deadline.
// Cancelled slots never retry or degrade: nobody is waiting for the answer.
struct DegradePolicy {
  bool enabled = false;
  double retry_damping = 0.5;  // convergence retry damping; <= 0 skips retry
  bool moments_floor = true;   // allow the moments_only floor tier
};

// Static-diagnostics controls for one request (src/lint/): the admission
// screen a production timing service runs before spending a single solve.
//   screen — lint the request's net/group up front; findings at or above
//     fail_at reject the slot with ErrorCode::lint_rejected *before* any
//     characterization lookup or transient, preserving per-slot isolation
//     (the rejection is never retried or degraded — the input is wrong, not
//     the execution).  The default checks are the structural core only
//     (connectivity + physicality, a branch-tree walk costing nanoseconds),
//     which is what keeps screening a batch under 1% of its model-only cost.
//   report — attach every finding to Response::diagnostics on success (and
//     run the deeper passes the checks request), for callers that want the
//     advisory output without the gate.
// The engine fills the Eq 9 driver context of `checks` from the request
// (estimated Rs from the cell size, the input slew as the Tr1 proxy) unless
// the caller already set it.
struct LintOptions {
  // The structural core alone (conditioning/model passes off): the default
  // `checks`, and what keeps screening a batch under 1% of its runtime.
  static lint::Options structural_only() {
    lint::Options checks;
    checks.conditioning = false;
    checks.model = false;
    return checks;
  }

  bool screen = false;
  bool report = false;
  lint::Severity fail_at = lint::Severity::error;
  lint::Options checks = structural_only();
};

// One aggressor in a coupled request: which group net it drives, how hard,
// and which way it switches relative to the victim's rising edge.  Group
// nets without an Aggressor entry are quiet (1x Miller, held low).
struct Aggressor {
  std::size_t net = 0;  // index into Request::group
  double cell_size = 75.0;
  double input_slew = 100e-12;
  core::AggressorSwitching switching = core::AggressorSwitching::opposite;
};

// One net-modeling job.  The default is the production shape: model-only,
// i.e. what a library-based static timing engine computes without any SPICE
// run.  The reference flags opt into the validation harness.
struct Request {
  std::string label;               // carried into diagnostics and failures
  double cell_size = 75.0;         // driver drive strength ("75" = 75X)
  double input_slew = 100e-12;     // full-swing input ramp time [s]
  net::Net net;                    // the interconnect the driver drives
  core::DriverModelOptions model;  // paper flow controls (Eq 1-9)

  // Coupled-net request: when `group` is non-empty, `net` must stay empty
  // and the engine models the victim net of the group instead — Ceff on the
  // Miller-decoupled equivalent, and (in reference mode) the full coupled
  // simulation with delay pushout and quiet-victim peak noise.
  net::CoupledGroup group;
  std::size_t victim = 0;            // index of the victim net in `group`
  std::vector<Aggressor> aggressors; // the switching neighbors
  bool noise = true;                 // coupled reference mode: also run the
                                     // quiet-victim noise simulation
  bool coupled() const { return !group.empty(); }

  bool reference = false;          // also run the transient reference sim
  bool far_end = true;             // replay the model at the far end (reference mode)
  bool one_ramp_baseline = false;  // also evaluate the one-ramp column (reference mode)
  bool keep_waveforms = false;     // retain sampled waveforms (reference/replay mode)

  // Model-only far-end replay: after the Ceff model converges, replay the
  // modeled PWL through the net and measure the dominant-path leaf
  // (Response::model_far / has_model_far) — the Fig-6 sink response without
  // the reference driver simulation.  This is the scenario-batching target:
  // in run_batch (BatchOptions::batch_scenarios) equal-topology replays are
  // grouped and advanced as one shared-factorization block, with waveforms
  // bitwise-identical to the per-slot path.  Incompatible with `reference`
  // (which already replays the far end), coupled groups, and non-default
  // tier policies.  keep_waveforms is honored (model_far_wave).
  bool far_end_replay = false;

  // Treat a non-converged Ceff fixed point in the primary model as a
  // per-slot convergence_failure instead of silently returning the last
  // iterate (the CeffIteration::converged flags stay inspectable either way).
  bool require_convergence = true;

  // Linear-solver backend for the reference transient (sim::SolverKind).
  // `automatic` lets the engine pick from the deck's size and sparsity; the
  // explicit kinds force a backend (validation and benchmarking).
  sim::SolverKind solver = sim::SolverKind::automatic;

  // Cooperative execution budget for this slot (util/budget.h): wall-clock
  // deadline, transient step budget, iteration sub-budgets, cancellation.
  // Default: unlimited.  The engine arms it at slot start and threads it
  // through every step/iteration loop; exhaustion surfaces as
  // deadline_exceeded / resource_exhausted.  Note: cold cell
  // characterization is not under the slot budget (run_batch/warm_cache
  // pre-characterize outside the slots); the modeling loops are.
  util::ExecBudget budget;

  // Retry-and-degrade policy (see DegradePolicy above).  Default-off.
  DegradePolicy degrade;

  // Static-diagnostics admission screen / report (see LintOptions above).
  // Default-off: requests run exactly as they did before lint existed.
  LintOptions lint;

  // Multi-fidelity cascade policy (src/tier/).  The default,
  // TierPolicy::reference, bypasses the cascade: the request behaves exactly
  // as it did before tiering existed (the `reference` flag decides between
  // the transient harness and the model-only Ceff flow, bitwise-identical —
  // enforced by the TierIdentity property family).  `balanced` and `fastest`
  // route to the cheapest admissible tier (tier/router.h) and ignore the
  // `reference` flag; the forced policies pin one tier for testing and
  // calibration.  A non-default policy is incompatible with reference=true
  // (use force_reference to ask for Tier C explicitly).
  tier::TierPolicy tier = tier::TierPolicy::reference;
};

struct Response {
  std::string label;

  core::DriverOutputModel model;  // full paper-flow diagnostics + waveform
  core::EdgeMetrics model_near;   // delay/slew measured on the modeled PWL

  // Reference-backed fields; only meaningful when has_reference is set.
  bool has_reference = false;
  core::EdgeMetrics ref_near;    // simulated driver output
  core::EdgeMetrics ref_far;     // simulated dominant-path leaf
  core::EdgeMetrics model_far;   // modeled PWL replayed through the net
  core::EdgeMetrics one_near;    // one-ramp baseline at the driver output
  core::DriverOutputModel one_ramp;

  // model_far is meaningful: set on reference slots that replayed the far
  // end (reference && far_end) and on model-only far_end_replay slots.
  bool has_model_far = false;

  // Coupled-request fields; only meaningful when has_coupling is set.
  bool has_coupling = false;
  double delay_pushout_model = 0.0;  // Miller-model near-end pushout vs 1x [s]
  // Reference-backed coupled fields (has_reference also set):
  double delay_pushout = 0.0;        // simulated far-end pushout vs 1x [s]
  double peak_noise = 0.0;           // quiet-victim far-end noise bump [V]
  core::EdgeMetrics base_near;       // simulated quiet-environment baseline
  core::EdgeMetrics base_far;

  // Populated when keep_waveforms is set; times are absolute deck time.
  wave::Waveform ref_near_wave;
  wave::Waveform ref_far_wave;
  wave::Waveform model_far_wave;
  double input_time_50 = 0.0;

  // Which linear-solver backend factored the reference deck.  Only
  // meaningful when has_solver is set (reference-backed slots); model-only
  // slots never run a transient, so they report no solver.
  bool has_solver = false;
  sim::SolverKind solver = sim::SolverKind::automatic;

  // Static diagnostics collected by the lint pass (Request::lint.report);
  // empty when reporting was not requested.
  std::vector<lint::Diagnostic> diagnostics;

  double elapsed_s = 0.0;  // wall time spent on this slot

  // Provenance: which ladder tier produced the numbers, whether that is a
  // degraded (lower-fidelity) answer, and the abandoned attempts (in order)
  // that forced it there.  Exact answers have degraded == false and an
  // attempt trail only when a damped retry rescued a convergence failure.
  Fidelity fidelity = Fidelity::ceff_model;
  bool degraded = false;
  std::vector<Attempt> attempts;

  // Cascade provenance (Request::tier != TierPolicy::reference): the tier
  // that served the slot and how many escalations the router took to get
  // there (0 = first choice held).  Non-tiered requests report the legacy
  // mapping (reference flag ? Tier::reference : Tier::ceff, 0 escalations).
  tier::Tier tier = tier::Tier::ceff;
  std::size_t tier_escalations = 0;

  // Tier A coupled slots: the closed-form charge-sharing upper bound on the
  // quiet-victim crosstalk peak (tier::noise_bound).  Unlike peak_noise this
  // needs no transient; has_noise_bound marks it meaningful.
  bool has_noise_bound = false;
  double noise_bound = 0.0;
};

struct BatchOptions {
  // Reference-simulation fidelity (t_stop is auto-sized per scenario).
  tech::DeckOptions deck;
  // Grid used when a request's cell has to be characterized.
  charlib::CharacterizationGrid grid = charlib::CharacterizationGrid::standard();
  // Sweep pool width for run_batch (0 = one worker per hardware thread).
  unsigned n_threads = 0;
  // Shared-factorization scenario batching (sim/scenario_block.h): run_batch
  // defers far_end_replay transients, groups slots whose compiled decks are
  // scenario_group_equal (same topology and element values at full bit
  // precision — a one-ULP difference never aliases), and advances each group
  // as one blocked multi-RHS solve.  Waveforms and measurements are
  // bitwise-identical to the per-slot path (`off`), just faster; per-slot
  // isolation is preserved (a faulted lane never perturbs its group-mates).
  // Slots with a wall-clock limit or an enabled degrade policy never defer.
  bool batch_scenarios = true;
  // Test-only fault hook (testkit/faults.h chaos harness): when set, invoked
  // at the start of every slot's *primary* attempt — after validation,
  // inside the armed budget — with the slot's batch index and its
  // ExecTracker.  May throw library errors or sleep in chunks (checkpointing
  // the tracker) to emulate faulty workers.  Fallback/retry attempts skip
  // the hook: faults inject at slot entry.  Never set outside tests.
  std::function<void(std::size_t slot, util::ExecTracker& budget)> debug_slot_fault;
};

}  // namespace rlceff::api

#endif  // RLCEFF_API_REQUEST_H
