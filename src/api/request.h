// Plain data transfer objects for the api::Engine facade.
//
// A Request is everything a timing engine knows about one net: which cell
// drives it, the input slew, the interconnect (a net::Net), and the paper
// flow's controls.  A Response packages the DriverOutputModel, the measured
// edge metrics, and timing diagnostics.  BatchOptions carries the knobs that
// are properties of a *run* rather than of a net: reference-simulation
// fidelity, the characterization grid, and the sweep pool width.
#ifndef RLCEFF_API_REQUEST_H
#define RLCEFF_API_REQUEST_H

#include <string>
#include <vector>

#include "charlib/characterize.h"
#include "core/coupled_experiment.h"
#include "core/driver_model.h"
#include "core/experiment.h"
#include "net/coupled.h"
#include "net/net.h"
#include "tech/testbench.h"

namespace rlceff::api {

// One aggressor in a coupled request: which group net it drives, how hard,
// and which way it switches relative to the victim's rising edge.  Group
// nets without an Aggressor entry are quiet (1x Miller, held low).
struct Aggressor {
  std::size_t net = 0;  // index into Request::group
  double cell_size = 75.0;
  double input_slew = 100e-12;
  core::AggressorSwitching switching = core::AggressorSwitching::opposite;
};

// One net-modeling job.  The default is the production shape: model-only,
// i.e. what a library-based static timing engine computes without any SPICE
// run.  The reference flags opt into the validation harness.
struct Request {
  std::string label;               // carried into diagnostics and failures
  double cell_size = 75.0;         // driver drive strength ("75" = 75X)
  double input_slew = 100e-12;     // full-swing input ramp time [s]
  net::Net net;                    // the interconnect the driver drives
  core::DriverModelOptions model;  // paper flow controls (Eq 1-9)

  // Coupled-net request: when `group` is non-empty, `net` must stay empty
  // and the engine models the victim net of the group instead — Ceff on the
  // Miller-decoupled equivalent, and (in reference mode) the full coupled
  // simulation with delay pushout and quiet-victim peak noise.
  net::CoupledGroup group;
  std::size_t victim = 0;            // index of the victim net in `group`
  std::vector<Aggressor> aggressors; // the switching neighbors
  bool noise = true;                 // coupled reference mode: also run the
                                     // quiet-victim noise simulation
  bool coupled() const { return !group.empty(); }

  bool reference = false;          // also run the transient reference sim
  bool far_end = true;             // replay the model at the far end (reference mode)
  bool one_ramp_baseline = false;  // also evaluate the one-ramp column (reference mode)
  bool keep_waveforms = false;     // retain sampled waveforms (reference mode)

  // Treat a non-converged Ceff fixed point in the primary model as a
  // per-slot convergence_failure instead of silently returning the last
  // iterate (the CeffIteration::converged flags stay inspectable either way).
  bool require_convergence = true;
};

struct Response {
  std::string label;

  core::DriverOutputModel model;  // full paper-flow diagnostics + waveform
  core::EdgeMetrics model_near;   // delay/slew measured on the modeled PWL

  // Reference-backed fields; only meaningful when has_reference is set.
  bool has_reference = false;
  core::EdgeMetrics ref_near;    // simulated driver output
  core::EdgeMetrics ref_far;     // simulated dominant-path leaf
  core::EdgeMetrics model_far;   // modeled PWL replayed through the net
  core::EdgeMetrics one_near;    // one-ramp baseline at the driver output
  core::DriverOutputModel one_ramp;

  // Coupled-request fields; only meaningful when has_coupling is set.
  bool has_coupling = false;
  double delay_pushout_model = 0.0;  // Miller-model near-end pushout vs 1x [s]
  // Reference-backed coupled fields (has_reference also set):
  double delay_pushout = 0.0;        // simulated far-end pushout vs 1x [s]
  double peak_noise = 0.0;           // quiet-victim far-end noise bump [V]
  core::EdgeMetrics base_near;       // simulated quiet-environment baseline
  core::EdgeMetrics base_far;

  // Populated when keep_waveforms is set; times are absolute deck time.
  wave::Waveform ref_near_wave;
  wave::Waveform ref_far_wave;
  wave::Waveform model_far_wave;
  double input_time_50 = 0.0;

  double elapsed_s = 0.0;  // wall time spent on this slot
};

struct BatchOptions {
  // Reference-simulation fidelity (t_stop is auto-sized per scenario).
  tech::DeckOptions deck;
  // Grid used when a request's cell has to be characterized.
  charlib::CharacterizationGrid grid = charlib::CharacterizationGrid::standard();
  // Sweep pool width for run_batch (0 = one worker per hardware thread).
  unsigned n_threads = 0;
};

}  // namespace rlceff::api

#endif  // RLCEFF_API_REQUEST_H
