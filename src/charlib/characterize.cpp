#include "charlib/characterize.h"

#include <cmath>

#include "sim/sweep.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::charlib {

using units::ff;
using units::pf;
using units::ps;

CharacterizationGrid CharacterizationGrid::standard() {
  CharacterizationGrid g;
  g.input_slews = {25 * ps, 50 * ps, 75 * ps, 100 * ps, 150 * ps, 200 * ps, 300 * ps};
  g.loads = {30 * ff, 100 * ff, 200 * ff, 400 * ff, 700 * ff,
             1.0 * pf, 1.4 * pf, 2.0 * pf, 2.8 * pf, 4.0 * pf, 5.5 * pf};
  return g;
}

CharacterizedDriver::CharacterizedDriver(tech::Inverter cell, double vdd, Table2D delay,
                                         Table2D transition, Table2D resistance)
    : cell_(cell),
      vdd_(vdd),
      delay_(std::move(delay)),
      transition_(std::move(transition)),
      resistance_(std::move(resistance)) {}

double CharacterizedDriver::delay(double input_slew, double c_load) const {
  return delay_.lookup(input_slew, c_load);
}

double CharacterizedDriver::output_transition(double input_slew, double c_load) const {
  return transition_.lookup(input_slew, c_load);
}

double CharacterizedDriver::driver_resistance(double input_slew, double c_load) const {
  return resistance_.lookup(input_slew, c_load);
}

CharacterizedDriver characterize_driver(const tech::Technology& technology,
                                        const tech::Inverter& cell,
                                        const CharacterizationGrid& grid) {
  ensure(!grid.input_slews.empty() && !grid.loads.empty(),
         "characterize_driver: empty grid");

  const std::size_t n_slew = grid.input_slews.size();
  const std::size_t n_load = grid.loads.size();
  std::vector<double> delay_vals(n_slew * n_load);
  std::vector<double> tran_vals(n_slew * n_load);
  std::vector<double> rs_vals(n_slew * n_load);

  // Rough RC estimate used only to size the simulation horizon.
  const double rs_estimate = 3.7e3 / cell.size;

  // Every grid point is an independent deck; run them on the sweep pool.
  sim::run_indexed_sweep(
      n_slew * n_load,
      [&](std::size_t k) {
        const double slew = grid.input_slews[k / n_load];
        const double c_load = grid.loads[k % n_load];

        tech::DeckOptions deck;
        deck.t_start = 10 * ps;
        const double settle =
            6.0 * rs_estimate * (c_load + cell.output_capacitance(technology));
        deck.t_stop = deck.t_start + slew + std::max(300 * ps, settle);
        deck.dt = 0.25 * ps;

        double input_t50 = 0.0;
        const wave::Waveform out = tech::simulate_driver_cap_load(
            technology, cell, slew, c_load, deck, &input_t50);
        const wave::EdgeTiming edge =
            wave::measure_rising_edge(out, 0.0, technology.vdd);

        delay_vals[k] = edge.t50 - input_t50;
        tran_vals[k] = edge.ramp_transition();
        // Thevenin fit of ref [3]: v(t) = Vdd * (1 - exp(-t / Rs C)) between
        // the 50 % and 90 % crossings gives t90 - t50 = Rs C ln 5.
        rs_vals[k] = (edge.t90 - edge.t50) / (c_load * std::log(5.0));
      },
      grid.n_threads);

  Table2D delay(grid.input_slews, grid.loads, std::move(delay_vals));
  Table2D transition(grid.input_slews, grid.loads, std::move(tran_vals));
  Table2D resistance(grid.input_slews, grid.loads, std::move(rs_vals));
  return CharacterizedDriver(cell, technology.vdd, std::move(delay), std::move(transition),
                             std::move(resistance));
}

}  // namespace rlceff::charlib
