// Library characterization (the pre-characterized cell tables of Sec. 1).
//
// For each driver cell, a grid of transient simulations against pure
// capacitive loads produces the two NLDM-style tables static timing uses —
// 50 % delay and output transition time versus (input slew, load cap) — plus
// the Thevenin output resistance extracted with the method of Dartu, Menezes
// and Pileggi (ref [3]) that Eq 1 needs: fit an exponential between the 50 %
// and 90 % crossings, Rs = (t90 - t50) / (C * ln 5).
//
// Conventions: "slew"/"transition" are full-swing saturated-ramp equivalents,
// (t90 - t10) / 0.8; delay is measured from the input ramp's 50 % crossing to
// the output's 50 % crossing; the characterized edge is the rising output.
#ifndef RLCEFF_CHARLIB_CHARACTERIZE_H
#define RLCEFF_CHARLIB_CHARACTERIZE_H

#include <vector>

#include "charlib/table.h"
#include "tech/inverter.h"
#include "tech/technology.h"
#include "tech/testbench.h"

namespace rlceff::charlib {

struct CharacterizationGrid {
  std::vector<double> input_slews;  // full-swing input ramp times [s]
  std::vector<double> loads;        // load capacitances [F]
  // Worker threads for the grid's independent simulations (0 = one per
  // hardware thread); results are identical for every thread count.
  unsigned n_threads = 0;

  // Covers the paper's sweeps: slews 25-300 ps, loads 30 fF - 2.6 pF.
  static CharacterizationGrid standard();
};

// The characterized view of one driver cell.
class CharacterizedDriver {
public:
  CharacterizedDriver() = default;
  CharacterizedDriver(tech::Inverter cell, double vdd, Table2D delay,
                      Table2D transition, Table2D resistance);

  const tech::Inverter& cell() const { return cell_; }
  double vdd() const { return vdd_; }

  // 50 % propagation delay for a capacitive load [s].
  double delay(double input_slew, double c_load) const;
  // Ramp-equivalent output transition time for a capacitive load [s].
  double output_transition(double input_slew, double c_load) const;
  // Thevenin output resistance at a capacitive load [ohm].
  double driver_resistance(double input_slew, double c_load) const;

  const Table2D& delay_table() const { return delay_; }
  const Table2D& transition_table() const { return transition_; }
  const Table2D& resistance_table() const { return resistance_; }

private:
  tech::Inverter cell_;
  double vdd_ = 0.0;
  Table2D delay_;
  Table2D transition_;
  Table2D resistance_;
};

// Runs the characterization grid with the simulator.
CharacterizedDriver characterize_driver(const tech::Technology& technology,
                                        const tech::Inverter& cell,
                                        const CharacterizationGrid& grid =
                                            CharacterizationGrid::standard());

}  // namespace rlceff::charlib

#endif  // RLCEFF_CHARLIB_CHARACTERIZE_H
