#include "charlib/library.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "util/error.h"

namespace rlceff::charlib {

namespace {

void write_values(std::ostream& out, std::span<const double> values) {
  out << values.size();
  for (double v : values) out << ' ' << v;
  out << '\n';
}

std::vector<double> read_values(std::istream& in, const char* what) {
  std::size_t n = 0;
  ensure(static_cast<bool>(in >> n), std::string("CellLibrary: bad count for ") + what);
  std::vector<double> v(n);
  for (double& x : v) {
    ensure(static_cast<bool>(in >> x), std::string("CellLibrary: bad value in ") + what);
  }
  return v;
}

void expect_token(std::istream& in, const std::string& want) {
  std::string got;
  ensure(static_cast<bool>(in >> got) && got == want,
         "CellLibrary: expected token '" + want + "', got '" + got + "'");
}

}  // namespace

std::size_t CellLibrary::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return drivers_.size();
}

std::vector<double> CellLibrary::cell_sizes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> sizes;
  sizes.reserve(drivers_.size());
  for (const CharacterizedDriver& d : drivers_) sizes.push_back(d.cell().size);
  return sizes;
}

void CellLibrary::add(CharacterizedDriver driver) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ensure(find_locked(driver.cell().size) == nullptr,
         "CellLibrary: duplicate driver size");
  drivers_.push_back(std::move(driver));
}

const CharacterizedDriver* CellLibrary::find_locked(double cell_size) const {
  for (const CharacterizedDriver& d : drivers_) {
    if (std::abs(d.cell().size - cell_size) < 1e-9) return &d;
  }
  return nullptr;
}

const CharacterizedDriver* CellLibrary::find(double cell_size) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(cell_size);
}

const CharacterizedDriver& CellLibrary::ensure_driver(const tech::Technology& technology,
                                                      double cell_size,
                                                      const CharacterizationGrid& grid) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const CharacterizedDriver* d = find_locked(cell_size)) return *d;
  }
  // Characterize outside the lock so different sizes run in parallel.  Two
  // threads racing on the same size both characterize; the loser's copy is
  // discarded below, so the returned reference is unique and stable.
  CharacterizedDriver fresh =
      characterize_driver(technology, tech::Inverter{cell_size}, grid);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const CharacterizedDriver* d = find_locked(cell_size)) return *d;
  drivers_.push_back(std::move(fresh));
  return drivers_.back();
}

void CellLibrary::save(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << std::setprecision(17);
  out << "rlceff_cell_library 1\n";
  out << "cells " << drivers_.size() << '\n';
  for (const CharacterizedDriver& d : drivers_) {
    out << "cell " << d.cell().size << ' ' << d.vdd() << '\n';
    out << "slew_axis ";
    write_values(out, d.delay_table().row_axis());
    out << "load_axis ";
    write_values(out, d.delay_table().col_axis());
    out << "delay ";
    write_values(out, d.delay_table().values());
    out << "transition ";
    write_values(out, d.transition_table().values());
    out << "resistance ";
    write_values(out, d.resistance_table().values());
  }
}

void CellLibrary::save_file(const std::string& path) const {
  std::ofstream out(path);
  ensure(out.good(), "CellLibrary: cannot open file for writing: " + path);
  save(out);
  ensure(out.good(), "CellLibrary: write failed: " + path);
}

void CellLibrary::load(std::istream& in) {
  expect_token(in, "rlceff_cell_library");
  int version = 0;
  ensure(static_cast<bool>(in >> version) && version == 1,
         "CellLibrary: unsupported version");
  expect_token(in, "cells");
  std::size_t count = 0;
  ensure(static_cast<bool>(in >> count), "CellLibrary: bad cell count");

  for (std::size_t k = 0; k < count; ++k) {
    expect_token(in, "cell");
    double size = 0.0;
    double vdd = 0.0;
    ensure(static_cast<bool>(in >> size >> vdd), "CellLibrary: bad cell header");
    expect_token(in, "slew_axis");
    std::vector<double> slews = read_values(in, "slew_axis");
    expect_token(in, "load_axis");
    std::vector<double> loads = read_values(in, "load_axis");
    expect_token(in, "delay");
    std::vector<double> delay = read_values(in, "delay");
    expect_token(in, "transition");
    std::vector<double> transition = read_values(in, "transition");
    expect_token(in, "resistance");
    std::vector<double> resistance = read_values(in, "resistance");

    CharacterizedDriver driver(tech::Inverter{size}, vdd,
                               Table2D(slews, loads, std::move(delay)),
                               Table2D(slews, loads, std::move(transition)),
                               Table2D(slews, loads, std::move(resistance)));
    const std::lock_guard<std::mutex> lock(mutex_);
    if (find_locked(size) == nullptr) drivers_.push_back(std::move(driver));
  }
}

void CellLibrary::load_file(const std::string& path) {
  std::ifstream in(path);
  ensure(in.good(), "CellLibrary: cannot open file: " + path);
  load(in);
}

}  // namespace rlceff::charlib
