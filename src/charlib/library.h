// Cell library: a collection of characterized drivers with caching and a
// plain-text serialization (a miniature .lib).
//
// Characterizing a driver costs a few dozen transient runs, so experiment
// harnesses keep one CellLibrary and call ensure_driver(), which
// characterizes on first use and reuses the tables afterwards.
//
// The library is safe to share across sweep workers: all access is guarded
// by an internal mutex, and drivers live in stable storage (a deque that is
// never erased from), so references handed out by ensure_driver()/find()
// stay valid for the library's whole lifetime no matter how many cells are
// added afterwards.  ensure_driver() characterizes outside the lock, so
// concurrent requests for *different* sizes proceed in parallel; a race on
// the *same* size may characterize it twice, but only the first result is
// kept and every caller gets the same reference.
#ifndef RLCEFF_CHARLIB_LIBRARY_H
#define RLCEFF_CHARLIB_LIBRARY_H

#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "charlib/characterize.h"

namespace rlceff::charlib {

class CellLibrary {
public:
  CellLibrary() = default;
  // Deliberately pinned in place: moving or copying the library would
  // invalidate the driver references ensure_driver() handed out.
  CellLibrary(const CellLibrary&) = delete;
  CellLibrary& operator=(const CellLibrary&) = delete;

  std::size_t size() const;
  // Snapshot of the characterized drive strengths, in insertion order.
  std::vector<double> cell_sizes() const;

  void add(CharacterizedDriver driver);

  // Finds a characterized driver by drive strength (exact within 1e-9).
  const CharacterizedDriver* find(double cell_size) const;

  // Returns the driver, characterizing and caching it when missing.
  const CharacterizedDriver& ensure_driver(
      const tech::Technology& technology, double cell_size,
      const CharacterizationGrid& grid = CharacterizationGrid::standard());

  // Plain-text serialization.  load() merges the stream's cells into this
  // library; sizes that are already characterized are skipped, so merging a
  // stale cache into a warm library is a no-op for the overlap.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  void load(std::istream& in);
  void load_file(const std::string& path);

private:
  const CharacterizedDriver* find_locked(double cell_size) const;

  mutable std::mutex mutex_;
  std::deque<CharacterizedDriver> drivers_;
};

}  // namespace rlceff::charlib

#endif  // RLCEFF_CHARLIB_LIBRARY_H
