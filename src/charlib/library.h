// Cell library: a collection of characterized drivers with caching and a
// plain-text serialization (a miniature .lib).
//
// Characterizing a driver costs a few dozen transient runs, so experiment
// harnesses keep one CellLibrary and call ensure_driver(), which
// characterizes on first use and reuses the tables afterwards.
#ifndef RLCEFF_CHARLIB_LIBRARY_H
#define RLCEFF_CHARLIB_LIBRARY_H

#include <iosfwd>
#include <string>
#include <vector>

#include "charlib/characterize.h"

namespace rlceff::charlib {

class CellLibrary {
public:
  std::size_t size() const { return drivers_.size(); }
  const std::vector<CharacterizedDriver>& drivers() const { return drivers_; }

  void add(CharacterizedDriver driver);

  // Finds a characterized driver by drive strength (exact within 1e-9).
  const CharacterizedDriver* find(double cell_size) const;

  // Returns the driver, characterizing and caching it when missing.
  const CharacterizedDriver& ensure_driver(
      const tech::Technology& technology, double cell_size,
      const CharacterizationGrid& grid = CharacterizationGrid::standard());

  // Plain-text serialization.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static CellLibrary load(std::istream& in);
  static CellLibrary load_file(const std::string& path);

private:
  std::vector<CharacterizedDriver> drivers_;
};

}  // namespace rlceff::charlib

#endif  // RLCEFF_CHARLIB_LIBRARY_H
