#include "charlib/table.h"

#include <algorithm>

#include "util/error.h"

namespace rlceff::charlib {

namespace {

// Index of the cell whose [axis[i], axis[i+1]] segment is used for
// interpolation at x (clamped to the edge segments for extrapolation).
std::size_t segment_index(std::span<const double> axis, double x) {
  if (axis.size() == 1) return 0;
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - axis.begin());
  hi = std::clamp<std::size_t>(hi, 1, axis.size() - 1);
  return hi - 1;
}

double weight(std::span<const double> axis, std::size_t seg, double x) {
  if (axis.size() == 1) return 0.0;
  return (x - axis[seg]) / (axis[seg + 1] - axis[seg]);
}

}  // namespace

Table2D::Table2D(std::vector<double> row_axis, std::vector<double> col_axis,
                 std::vector<double> values)
    : rows_(std::move(row_axis)), cols_(std::move(col_axis)), vals_(std::move(values)) {
  ensure(!rows_.empty() && !cols_.empty(), "Table2D: empty axis");
  ensure(vals_.size() == rows_.size() * cols_.size(), "Table2D: value count mismatch");
  ensure(std::is_sorted(rows_.begin(), rows_.end()), "Table2D: row axis must be sorted");
  ensure(std::is_sorted(cols_.begin(), cols_.end()), "Table2D: col axis must be sorted");
}

double Table2D::at(std::size_t r, std::size_t c) const {
  ensure(r < rows_.size() && c < cols_.size(), "Table2D: index out of range");
  return vals_[r * cols_.size() + c];
}

double Table2D::lookup(double row_value, double col_value) const {
  ensure(!vals_.empty(), "Table2D: empty table");
  const std::size_t r = segment_index(rows_, row_value);
  const std::size_t c = segment_index(cols_, col_value);
  const double wr = weight(rows_, r, row_value);
  const double wc = weight(cols_, c, col_value);

  const std::size_t r1 = rows_.size() == 1 ? r : r + 1;
  const std::size_t c1 = cols_.size() == 1 ? c : c + 1;
  const double v00 = at(r, c);
  const double v01 = at(r, c1);
  const double v10 = at(r1, c);
  const double v11 = at(r1, c1);
  return v00 * (1.0 - wr) * (1.0 - wc) + v01 * (1.0 - wr) * wc + v10 * wr * (1.0 - wc) +
         v11 * wr * wc;
}

}  // namespace rlceff::charlib
