// Two-dimensional lookup table with bilinear interpolation.
//
// The same structure a .lib NLDM table uses: values indexed by input slew
// (rows) and output load capacitance (columns).  Lookups outside the grid
// extrapolate linearly from the edge cells, matching common STA behaviour.
#ifndef RLCEFF_CHARLIB_TABLE_H
#define RLCEFF_CHARLIB_TABLE_H

#include <span>
#include <vector>

namespace rlceff::charlib {

class Table2D {
public:
  Table2D() = default;
  // rows = slew axis, cols = load axis; values in row-major order.
  Table2D(std::vector<double> row_axis, std::vector<double> col_axis,
          std::vector<double> values);

  std::span<const double> row_axis() const { return rows_; }
  std::span<const double> col_axis() const { return cols_; }
  std::span<const double> values() const { return vals_; }

  double at(std::size_t r, std::size_t c) const;

  // Bilinear interpolation (linear extrapolation outside the grid).
  double lookup(double row_value, double col_value) const;

private:
  std::vector<double> rows_;
  std::vector<double> cols_;
  std::vector<double> vals_;
};

}  // namespace rlceff::charlib

#endif  // RLCEFF_CHARLIB_TABLE_H
