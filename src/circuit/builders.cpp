#include "circuit/builders.h"

#include <cmath>

#include "util/error.h"

namespace rlceff::ckt {

LadderNodes append_rlc_ladder(Netlist& netlist, NodeId from, double r_total,
                              double l_total, double c_total, std::size_t segments) {
  ensure(segments > 0, "append_rlc_ladder: need at least one segment");
  ensure(r_total > 0.0 && l_total >= 0.0 && c_total > 0.0,
         "append_rlc_ladder: non-physical parasitics");

  const double n = static_cast<double>(segments);
  const double r_seg = r_total / n;
  const double l_seg = l_total / n;
  const double c_seg = c_total / n;

  LadderNodes out;
  out.near_end = from;
  netlist.add_capacitor(from, ground, 0.5 * c_seg);
  out.taps.reserve(segments + 1);
  out.taps.push_back(from);

  NodeId prev = from;
  for (std::size_t k = 0; k < segments; ++k) {
    NodeId next = netlist.add_node();
    if (l_seg > 0.0) {
      // Series R then L within the segment needs one more internal node.
      const NodeId mid = netlist.add_node();
      netlist.add_resistor(prev, mid, r_seg);
      netlist.add_inductor(mid, next, l_seg);
      out.internal.push_back(mid);
    } else {
      netlist.add_resistor(prev, next, r_seg);
    }
    // Interior nodes receive C/N (half from each adjacent segment); the far
    // end receives the final half-segment below.
    const double shunt = (k + 1 == segments) ? 0.5 * c_seg : c_seg;
    netlist.add_capacitor(next, ground, shunt);
    out.taps.push_back(next);
    if (k + 1 < segments) out.internal.push_back(next);
    prev = next;
  }
  out.far_end = prev;
  return out;
}

NodeId append_pi_load(Netlist& netlist, NodeId from, double c_near, double r,
                      double c_far) {
  netlist.add_capacitor(from, ground, c_near);
  const NodeId far = netlist.add_node();
  netlist.add_resistor(from, far, r);
  netlist.add_capacitor(far, ground, c_far);
  return far;
}

namespace {

void compile_branch(Netlist& netlist, NodeId from, const net::Branch& branch,
                    std::size_t segments, NetDeckNodes& out) {
  NodeId far = from;
  for (const net::Section& section : branch.sections) {
    SectionDeckNodes deck;
    const std::size_t first_inductor = netlist.inductors().size();
    if (section.resistance > 0.0 && section.capacitance > 0.0) {
      LadderNodes ladder =
          append_rlc_ladder(netlist, far, section.resistance, section.inductance,
                            section.capacitance, segments);
      far = ladder.far_end;
      deck.taps = std::move(ladder.taps);
      deck.tap_weights.assign(deck.taps.size(), 1.0 / static_cast<double>(segments));
      deck.tap_weights.front() *= 0.5;
      deck.tap_weights.back() *= 0.5;
      for (std::size_t k = first_inductor; k < netlist.inductors().size(); ++k) {
        deck.inductors.push_back(k);
      }
      out.sections.push_back(std::move(deck));
      continue;
    }
    // Degenerate lumped sections (validation keeps these out of distributed
    // routes): stamp whatever series impedance is present as single lumps so
    // the deck matches what moments::net_admittance models, then the shunt.
    if (section.resistance > 0.0 && section.inductance > 0.0) {
      const NodeId mid = netlist.add_node();
      const NodeId next = netlist.add_node();
      netlist.add_resistor(far, mid, section.resistance);
      netlist.add_inductor(mid, next, section.inductance);
      far = next;
    } else if (section.resistance > 0.0) {
      const NodeId next = netlist.add_node();
      netlist.add_resistor(far, next, section.resistance);
      far = next;
    } else if (section.inductance > 0.0) {
      const NodeId next = netlist.add_node();
      netlist.add_inductor(far, next, section.inductance);
      far = next;
    }
    if (section.capacitance > 0.0) {
      netlist.add_capacitor(far, ground, section.capacitance);
    }
    deck.taps.push_back(far);
    deck.tap_weights.push_back(1.0);
    for (std::size_t k = first_inductor; k < netlist.inductors().size(); ++k) {
      deck.inductors.push_back(k);
    }
    out.sections.push_back(std::move(deck));
  }
  if (branch.c_load > 0.0) netlist.add_capacitor(far, ground, branch.c_load);
  if (!branch.probe.empty()) out.probes.emplace_back(branch.probe, far);
  if (branch.children.empty()) {
    out.leaves.push_back(far);
    return;
  }
  for (const net::Branch& child : branch.children) {
    compile_branch(netlist, far, child, segments, out);
  }
}

}  // namespace

NetDeckNodes append_net(Netlist& netlist, NodeId from, const net::Net& net,
                        std::size_t segments_per_section) {
  ensure(segments_per_section > 0, "append_net: need at least one segment");
  NetDeckNodes out;
  out.near_end = from;
  compile_branch(netlist, from, net.root(), segments_per_section, out);
  return out;
}

CoupledDeckNodes append_coupled_group(Netlist& netlist, std::span<const NodeId> from,
                                      const net::CoupledGroup& group,
                                      std::size_t segments_per_section) {
  ensure(!group.empty(), "append_coupled_group: empty group");
  ensure(from.size() == group.size(),
         "append_coupled_group: need one driving node per net");

  CoupledDeckNodes out;
  out.nets.reserve(group.size());
  for (std::size_t k = 0; k < group.size(); ++k) {
    out.nets.push_back(
        append_net(netlist, from[k], group.net_at(k), segments_per_section));
  }

  auto section_of = [&](const net::SectionRef& r) -> const SectionDeckNodes& {
    return out.nets[r.net].sections[r.section];
  };

  for (const net::CouplingCap& cc : group.coupling_caps()) {
    const SectionDeckNodes& a = section_of(cc.a);
    const SectionDeckNodes& b = section_of(cc.b);
    // Group validation restricts coupling to distributed sections, which all
    // discretize with the same segment count, so the ladders align tap for
    // tap.
    ensure(a.taps.size() == b.taps.size(),
           "append_coupled_group: coupled sections discretized differently");
    for (std::size_t k = 0; k < a.taps.size(); ++k) {
      netlist.add_capacitor(a.taps[k], b.taps[k], cc.capacitance * a.tap_weights[k]);
    }
  }

  for (const net::MutualCoupling& mc : group.mutual_couplings()) {
    const SectionDeckNodes& a = section_of(mc.a);
    const SectionDeckNodes& b = section_of(mc.b);
    ensure(a.inductors.size() == b.inductors.size() && !a.inductors.empty(),
           "append_coupled_group: mutually coupled sections discretized differently");
    for (std::size_t k = 0; k < a.inductors.size(); ++k) {
      const double la = netlist.inductors()[a.inductors[k]].inductance;
      const double lb = netlist.inductors()[b.inductors[k]].inductance;
      netlist.add_mutual_inductor(a.inductors[k], b.inductors[k],
                                  mc.k * std::sqrt(la * lb));
    }
  }
  return out;
}

}  // namespace rlceff::ckt
