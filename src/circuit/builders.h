// Deck-building helpers for the interconnect structures used throughout the
// reproduction: uniform RLC transmission-line ladders (the "HSPICE" view of a
// wire) and lumped pi loads.
#ifndef RLCEFF_CIRCUIT_BUILDERS_H
#define RLCEFF_CIRCUIT_BUILDERS_H

#include <cstddef>
#include <vector>

#include "circuit/netlist.h"

namespace rlceff::ckt {

struct LadderNodes {
  NodeId near_end = ground;
  NodeId far_end = ground;
  std::vector<NodeId> internal;  // intermediate nodes, near to far
};

// Appends an N-segment lumped approximation of a uniform RLC line with total
// series resistance/inductance (r_total, l_total) and total shunt capacitance
// c_total between `from` and a new far-end node.
//
// Segments are pi-sections: each contributes series (R/N, L/N) with C/(2N)
// shunt at both of its ends, so interior nodes carry C/N and the two end
// nodes C/(2N).  Pi-sections converge to the distributed line's driving-point
// admittance from the capacitive side, which is the polarity the effective
// capacitance theory expects.
LadderNodes append_rlc_ladder(Netlist& netlist, NodeId from, double r_total,
                              double l_total, double c_total, std::size_t segments);

// Appends an RC pi load (c_near at `from`, series r, c_far at a new node).
NodeId append_pi_load(Netlist& netlist, NodeId from, double c_near, double r,
                      double c_far);

}  // namespace rlceff::ckt

#endif  // RLCEFF_CIRCUIT_BUILDERS_H
