// Deck-building helpers for the interconnect structures used throughout the
// reproduction: uniform RLC transmission-line ladders (the "HSPICE" view of a
// wire), lumped pi loads, and the net::Net deck compiler.
#ifndef RLCEFF_CIRCUIT_BUILDERS_H
#define RLCEFF_CIRCUIT_BUILDERS_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include <span>

#include "circuit/netlist.h"
#include "net/coupled.h"
#include "net/net.h"

namespace rlceff::ckt {

struct LadderNodes {
  NodeId near_end = ground;
  NodeId far_end = ground;
  std::vector<NodeId> internal;  // intermediate nodes, near to far
  std::vector<NodeId> taps;      // shunt-capacitor nodes, near to far (N + 1)
};

// Appends an N-segment lumped approximation of a uniform RLC line with total
// series resistance/inductance (r_total, l_total) and total shunt capacitance
// c_total between `from` and a new far-end node.
//
// Segments are pi-sections: each contributes series (R/N, L/N) with C/(2N)
// shunt at both of its ends, so interior nodes carry C/N and the two end
// nodes C/(2N).  Pi-sections converge to the distributed line's driving-point
// admittance from the capacitive side, which is the polarity the effective
// capacitance theory expects.
LadderNodes append_rlc_ladder(Netlist& netlist, NodeId from, double r_total,
                              double l_total, double c_total, std::size_t segments);

// Appends an RC pi load (c_near at `from`, series r, c_far at a new node).
NodeId append_pi_load(Netlist& netlist, NodeId from, double c_near, double r,
                      double c_far);

// Where one compiled net::Section landed in the deck: the nodes carrying its
// shunt capacitance (with the pi weighting of each node) and the netlist
// indices of its series inductors, both near to far.  Coupling elements
// attach to these.
struct SectionDeckNodes {
  std::vector<NodeId> taps;             // shunt nodes
  std::vector<double> tap_weights;      // fraction of the section C per tap
  std::vector<std::size_t> inductors;   // indices into Netlist::inductors()
};

struct NetDeckNodes {
  NodeId near_end = ground;
  std::vector<NodeId> leaves;                          // depth-first leaf far ends
  std::vector<std::pair<std::string, NodeId>> probes;  // named probe nodes
  std::vector<SectionDeckNodes> sections;              // depth-first section order
};

// Compiles a net::Net into a simulation deck hanging off `from`: every
// section becomes an N-segment pi ladder (lumped capacitance-only sections
// become a single shunt), lumped loads become far-end capacitors, and branch
// points fan the deck out.  This is the one deck compiler behind both the
// uniform-line and tree testbenches.
NetDeckNodes append_net(Netlist& netlist, NodeId from, const net::Net& net,
                        std::size_t segments_per_section);

struct CoupledDeckNodes {
  std::vector<NetDeckNodes> nets;  // one entry per group net, in group order
};

// Compiles a net::CoupledGroup into one deck: each member net hangs off its
// entry in `from` exactly as append_net would compile it alone, then the
// group's coupling elements are stamped between the aligned pi ladders —
// every coupling capacitor is distributed across the two sections' tap nodes
// with the section's own 1/2-1-...-1-1/2 weighting, and every mutual
// coupling becomes one Netlist mutual inductor per aligned segment with
// M_seg = k * sqrt(La_seg * Lb_seg).  A group of one net therefore produces
// a deck identical to append_net's.
CoupledDeckNodes append_coupled_group(Netlist& netlist, std::span<const NodeId> from,
                                      const net::CoupledGroup& group,
                                      std::size_t segments_per_section);

}  // namespace rlceff::ckt

#endif  // RLCEFF_CIRCUIT_BUILDERS_H
