#include "circuit/mna.h"

#include "util/error.h"

namespace rlceff::ckt {

MnaStructure::MnaStructure(const Netlist& netlist) {
  const std::size_t n_nodes = netlist.node_count();
  const std::size_t n_v = netlist.vsources().size();
  const std::size_t n_l = netlist.inductors().size();
  unknown_count_ = (n_nodes - 1) + n_v + n_l;
  ensure(unknown_count_ > 0, "MnaStructure: circuit has no unknowns");

  // Natural (pre-permutation) indices.
  auto natural_node = [](NodeId n) { return static_cast<std::size_t>(n - 1); };
  const std::size_t v_base = n_nodes - 1;
  const std::size_t l_base = v_base + n_v;

  // Coupling graph of the Jacobian: every device couples all its unknowns.
  util::SparsityGraph graph(unknown_count_);
  auto couple_nodes = [&](NodeId a, NodeId b) {
    if (a != ground && b != ground) graph.add_edge(natural_node(a), natural_node(b));
  };
  auto couple_node_branch = [&](NodeId a, std::size_t branch) {
    if (a != ground) graph.add_edge(natural_node(a), branch);
  };

  for (const Resistor& r : netlist.resistors()) couple_nodes(r.a, r.b);
  for (const Capacitor& c : netlist.capacitors()) couple_nodes(c.a, c.b);
  for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
    const Inductor& l = netlist.inductors()[k];
    couple_node_branch(l.a, l_base + k);
    couple_node_branch(l.b, l_base + k);
    couple_nodes(l.a, l.b);
  }
  // A mutual inductance couples the two inductor branch equations directly.
  for (const MutualInductor& m : netlist.mutual_inductors()) {
    graph.add_edge(l_base + m.la, l_base + m.lb);
  }
  for (std::size_t k = 0; k < netlist.vsources().size(); ++k) {
    const VSource& v = netlist.vsources()[k];
    couple_node_branch(v.pos, v_base + k);
    couple_node_branch(v.neg, v_base + k);
  }
  for (const Mosfet& m : netlist.mosfets()) {
    couple_nodes(m.drain, m.source);
    couple_nodes(m.drain, m.gate);
    couple_nodes(m.source, m.gate);
  }

  const std::vector<std::size_t> perm = util::reverse_cuthill_mckee(graph);
  bandwidth_ = util::bandwidth(graph, perm);

  // Keep the permuted coupling edges: they (plus all diagonals) are the
  // fixed pattern of the sparse image.
  for (std::size_t v = 0; v < unknown_count_; ++v) {
    for (std::size_t w : graph.neighbors(v)) {
      if (v < w) {
        const std::size_t a = perm[v];
        const std::size_t b = perm[w];
        edges_.emplace_back(a < b ? a : b, a < b ? b : a);
      }
    }
  }
  pattern_nonzeros_ = unknown_count_ + 2 * edges_.size();

  node_to_index_.assign(n_nodes, 0);
  for (NodeId n = 1; n < n_nodes; ++n) node_to_index_[n] = perm[natural_node(n)];
  vsource_to_index_.resize(n_v);
  for (std::size_t k = 0; k < n_v; ++k) vsource_to_index_[k] = perm[v_base + k];
  inductor_to_index_.resize(n_l);
  for (std::size_t k = 0; k < n_l; ++k) inductor_to_index_[k] = perm[l_base + k];
}

std::vector<std::pair<std::size_t, std::size_t>> MnaStructure::sparse_pattern() const {
  std::vector<std::pair<std::size_t, std::size_t>> positions;
  positions.reserve(pattern_nonzeros_);
  for (std::size_t k = 0; k < unknown_count_; ++k) positions.emplace_back(k, k);
  for (const auto& [a, b] : edges_) {
    positions.emplace_back(a, b);
    positions.emplace_back(b, a);
  }
  return positions;
}

std::size_t MnaStructure::node_index(NodeId n) const {
  ensure(n != ground, "MnaStructure: ground has no unknown");
  ensure(n < node_to_index_.size(), "MnaStructure: node out of range");
  return node_to_index_[n];
}

std::size_t MnaStructure::vsource_index(std::size_t k) const {
  ensure(k < vsource_to_index_.size(), "MnaStructure: vsource out of range");
  return vsource_to_index_[k];
}

std::size_t MnaStructure::inductor_index(std::size_t k) const {
  ensure(k < inductor_to_index_.size(), "MnaStructure: inductor out of range");
  return inductor_to_index_[k];
}

}  // namespace rlceff::ckt
