// Modified nodal analysis structure.
//
// Maps a Netlist onto an unknown vector [node voltages (ground excluded),
// voltage-source branch currents, inductor branch currents], computes the
// coupling (sparsity) graph of the MNA Jacobian, and derives a reverse
// Cuthill-McKee permutation so discretized lines factor as narrow bands.
#ifndef RLCEFF_CIRCUIT_MNA_H
#define RLCEFF_CIRCUIT_MNA_H

#include <cstddef>
#include <vector>

#include "circuit/netlist.h"
#include "util/ordering.h"

namespace rlceff::ckt {

class MnaStructure {
public:
  explicit MnaStructure(const Netlist& netlist);

  std::size_t unknown_count() const { return unknown_count_; }
  std::size_t bandwidth() const { return bandwidth_; }

  // Unknown index of a node voltage; node must not be ground.
  std::size_t node_index(NodeId n) const;
  // True when the node has an unknown (i.e. is not ground).
  static bool has_unknown(NodeId n) { return n != ground; }

  std::size_t vsource_index(std::size_t k) const;
  std::size_t inductor_index(std::size_t k) const;

private:
  std::size_t unknown_count_ = 0;
  std::size_t bandwidth_ = 0;
  std::vector<std::size_t> node_to_index_;      // [node] -> permuted unknown
  std::vector<std::size_t> vsource_to_index_;   // [vsource k] -> permuted unknown
  std::vector<std::size_t> inductor_to_index_;  // [inductor k] -> permuted unknown
};

}  // namespace rlceff::ckt

#endif  // RLCEFF_CIRCUIT_MNA_H
