// Modified nodal analysis structure.
//
// Maps a Netlist onto an unknown vector [node voltages (ground excluded),
// voltage-source branch currents, inductor branch currents], computes the
// coupling (sparsity) graph of the MNA Jacobian, and derives a reverse
// Cuthill-McKee permutation so discretized lines factor as narrow bands.
#ifndef RLCEFF_CIRCUIT_MNA_H
#define RLCEFF_CIRCUIT_MNA_H

#include <cstddef>
#include <utility>
#include <vector>

#include "circuit/netlist.h"
#include "util/ordering.h"

namespace rlceff::ckt {

class MnaStructure {
public:
  explicit MnaStructure(const Netlist& netlist);

  std::size_t unknown_count() const { return unknown_count_; }
  std::size_t bandwidth() const { return bandwidth_; }

  // Stored entries of the Jacobian (permuted unknown indices).
  std::size_t pattern_nonzeros() const { return pattern_nonzeros_; }

  // Every (row, col) position any stamp can touch, in permuted indices: all
  // diagonals plus both orientations of every coupling edge.  This is the
  // fixed pattern of the sparse MNA image; it is derived from the device
  // list, not from an assembly dry run, so DC assembly (which skips
  // capacitor and mutual-inductor stamps) and transient assembly share one
  // image.
  std::vector<std::pair<std::size_t, std::size_t>> sparse_pattern() const;

  // Unknown index of a node voltage; node must not be ground.
  std::size_t node_index(NodeId n) const;
  // True when the node has an unknown (i.e. is not ground).
  static bool has_unknown(NodeId n) { return n != ground; }

  std::size_t vsource_index(std::size_t k) const;
  std::size_t inductor_index(std::size_t k) const;

private:
  std::size_t unknown_count_ = 0;
  std::size_t bandwidth_ = 0;
  std::size_t pattern_nonzeros_ = 0;
  std::vector<std::size_t> node_to_index_;      // [node] -> permuted unknown
  std::vector<std::size_t> vsource_to_index_;   // [vsource k] -> permuted unknown
  std::vector<std::size_t> inductor_to_index_;  // [inductor k] -> permuted unknown
  std::vector<std::pair<std::size_t, std::size_t>> edges_;  // permuted, a < b
};

}  // namespace rlceff::ckt

#endif  // RLCEFF_CIRCUIT_MNA_H
