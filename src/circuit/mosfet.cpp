#include "circuit/mosfet.h"

#include <cmath>

namespace rlceff::ckt {

namespace {

// Forward evaluation assuming vds >= 0.
MosfetEval eval_forward(const MosfetParams& p, double width, double vgs, double vds) {
  MosfetEval e;
  const double vgt = vgs - p.vth;
  if (vgt <= 0.0) return e;  // off; gmin in the stamps keeps Newton regular

  const double idsat = width * p.k_sat * std::pow(vgt, p.alpha);
  const double didsat_dvgt = p.alpha * idsat / vgt;
  const double vdsat = p.kv * std::pow(vgt, 0.5 * p.alpha);
  const double dvdsat_dvgt = 0.5 * p.alpha * vdsat / vgt;
  const double clm = 1.0 + p.lambda * vds;

  if (vds >= vdsat) {
    e.id = idsat * clm;
    e.gm = didsat_dvgt * clm;
    e.gds = idsat * p.lambda;
    return e;
  }

  // Triode: quadratic interpolation that is C1-continuous at vds = vdsat.
  const double u = vds / vdsat;
  const double shape = u * (2.0 - u);
  const double du_dvgt = -u * dvdsat_dvgt / vdsat;
  e.id = idsat * shape * clm;
  e.gds = idsat * ((2.0 - 2.0 * u) / vdsat * clm + shape * p.lambda);
  e.gm = (didsat_dvgt * shape + idsat * (2.0 - 2.0 * u) * du_dvgt) * clm;
  return e;
}

}  // namespace

MosfetEval eval_nmos(const MosfetParams& p, double width, double vgs, double vds) {
  if (vds >= 0.0) return eval_forward(p, width, vgs, vds);
  // Drain and source exchange roles: evaluate with the true source (terminal
  // "d") as reference and map the derivatives back.
  const MosfetEval r = eval_forward(p, width, vgs - vds, -vds);
  MosfetEval e;
  e.id = -r.id;
  e.gm = -r.gm;
  e.gds = r.gm + r.gds;
  return e;
}

MosfetEval eval_pmos(const MosfetParams& p, double width, double vgs, double vds) {
  // A P device is an N device with every polarity reversed.
  const MosfetEval r = eval_nmos(p, width, -vgs, -vds);
  MosfetEval e;
  e.id = -r.id;
  e.gm = r.gm;
  e.gds = r.gds;
  return e;
}

}  // namespace rlceff::ckt
