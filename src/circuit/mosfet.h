// Alpha-power-law MOSFET model (Sakurai-Newton).
//
// The simulator needs a driver model that reproduces the regime the paper
// studies: deep-submicron inverters whose output resistance is comparable to
// the line's characteristic impedance, with velocity-saturated drain current
// Id ~ (Vgs - Vth)^alpha.  The alpha-power law captures exactly that with a
// handful of parameters and analytic derivatives for Newton-Raphson.
//
// Conventions: eval() returns the drain-to-source channel current of an
// N-type device and its derivatives.  Negative Vds is handled by the
// source/drain symmetry swap; P-type devices are evaluated by polarity
// reversal.  Current is proportional to drawn gate width.
#ifndef RLCEFF_CIRCUIT_MOSFET_H
#define RLCEFF_CIRCUIT_MOSFET_H

namespace rlceff::ckt {

struct MosfetParams {
  double vth = 0.45;        // threshold voltage [V]
  double alpha = 1.3;       // velocity-saturation index (1 = fully saturated, 2 = long channel)
  double k_sat = 0.4e3;     // saturation transconductance [A / (m * V^alpha)]
  double kv = 0.8;          // Vdsat = kv * (Vgs - Vth)^(alpha/2) [V^(1-alpha/2)]
  double lambda = 0.05;     // channel-length modulation [1/V]
};

struct MosfetEval {
  double id = 0.0;    // channel current, drain -> source [A]
  double gm = 0.0;    // d id / d vgs [S]
  double gds = 0.0;   // d id / d vds [S]
};

// N-type evaluation for arbitrary vds (symmetry swap applied internally).
MosfetEval eval_nmos(const MosfetParams& p, double width, double vgs, double vds);

// P-type evaluation: params hold |Vth| etc.; voltages are the physical
// vgs = Vg - Vs and vds = Vd - Vs of the P device (both normally negative
// when conducting).  Returned id is the physical drain->source current
// (normally negative: current flows source -> drain).
MosfetEval eval_pmos(const MosfetParams& p, double width, double vgs, double vds);

}  // namespace rlceff::ckt

#endif  // RLCEFF_CIRCUIT_MOSFET_H
