#include "circuit/netlist.h"

#include <cmath>

#include "lint/diagnostic.h"
#include "util/error.h"

namespace rlceff::ckt {

Netlist::Netlist() {
  names_["0"] = ground;
  names_["gnd"] = ground;
}

NodeId Netlist::node(const std::string& name) {
  const auto it = names_.find(name);
  if (it != names_.end()) return it->second;
  const NodeId id = node_count_++;
  names_.emplace(name, id);
  return id;
}

NodeId Netlist::add_node() { return node_count_++; }

NodeId Netlist::check(NodeId n) const {
  ensure(n < node_count_, "Netlist: node id out of range");
  return n;
}

void Netlist::add_resistor(NodeId a, NodeId b, double resistance) {
  lint::ensure_diag(resistance > 0.0, lint::Code::nonpositive_resistance, "",
                    "Netlist: resistance must be positive");
  resistors_.push_back({check(a), check(b), resistance});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double capacitance) {
  lint::ensure_diag(capacitance >= 0.0, lint::Code::nonpositive_capacitance, "",
                    "Netlist: capacitance must be non-negative");
  if (capacitance == 0.0) return;
  capacitors_.push_back({check(a), check(b), capacitance});
}

void Netlist::add_inductor(NodeId a, NodeId b, double inductance) {
  lint::ensure_diag(inductance > 0.0, lint::Code::negative_inductance, "",
                    "Netlist: inductance must be positive");
  inductors_.push_back({check(a), check(b), inductance});
}

void Netlist::add_mutual_inductor(std::size_t la, std::size_t lb, double mutual) {
  ensure(la < inductors_.size() && lb < inductors_.size(),
         "Netlist: mutual inductor references an unknown inductor");
  ensure(la != lb, "Netlist: mutual inductor must couple two distinct inductors");
  const double limit =
      std::sqrt(inductors_[la].inductance * inductors_[lb].inductance);
  lint::ensure_diag(std::isfinite(mutual) && mutual != 0.0 && std::abs(mutual) < limit,
                    lint::Code::mutual_overcoupled, "",
                    "Netlist: mutual inductance must satisfy 0 < |M| < sqrt(La*Lb)");
  // K elements on the same inductor pair sum; the aggregate must stay under
  // the passivity limit too.
  double total = std::abs(mutual);
  for (const MutualInductor& m : mutuals_) {
    if ((m.la == la && m.lb == lb) || (m.la == lb && m.lb == la)) {
      total += std::abs(m.mutual);
    }
  }
  lint::ensure_diag(total < limit, lint::Code::mutual_overcoupled, "",
                    "Netlist: mutual inductance on this inductor pair accumulates "
                    "past sqrt(La*Lb) (non-passive)");
  mutuals_.push_back({la, lb, mutual});
}

std::size_t Netlist::add_vsource(NodeId pos, NodeId neg, wave::Pwl voltage) {
  ensure(!voltage.empty(), "Netlist: voltage source needs a waveform");
  vsources_.push_back({check(pos), check(neg), std::move(voltage)});
  return vsources_.size() - 1;
}

void Netlist::add_mosfet(NodeId drain, NodeId gate, NodeId source,
                         const MosfetParams& params, double width, bool is_pmos) {
  ensure(width > 0.0, "Netlist: MOSFET width must be positive");
  mosfets_.push_back({check(drain), check(gate), check(source), params, width, is_pmos});
}

void Netlist::set_vsource_waveform(std::size_t index, wave::Pwl voltage) {
  ensure(index < vsources_.size(), "Netlist: vsource index out of range");
  ensure(!voltage.empty(), "Netlist: voltage source needs a waveform");
  vsources_[index].voltage = std::move(voltage);
}

double Netlist::total_capacitance() const {
  double total = 0.0;
  for (const Capacitor& c : capacitors_) total += c.capacitance;
  return total;
}

}  // namespace rlceff::ckt
