#include "circuit/netlist.h"

#include "util/error.h"

namespace rlceff::ckt {

Netlist::Netlist() {
  names_["0"] = ground;
  names_["gnd"] = ground;
}

NodeId Netlist::node(const std::string& name) {
  const auto it = names_.find(name);
  if (it != names_.end()) return it->second;
  const NodeId id = node_count_++;
  names_.emplace(name, id);
  return id;
}

NodeId Netlist::add_node() { return node_count_++; }

NodeId Netlist::check(NodeId n) const {
  ensure(n < node_count_, "Netlist: node id out of range");
  return n;
}

void Netlist::add_resistor(NodeId a, NodeId b, double resistance) {
  ensure(resistance > 0.0, "Netlist: resistance must be positive");
  resistors_.push_back({check(a), check(b), resistance});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double capacitance) {
  ensure(capacitance >= 0.0, "Netlist: capacitance must be non-negative");
  if (capacitance == 0.0) return;
  capacitors_.push_back({check(a), check(b), capacitance});
}

void Netlist::add_inductor(NodeId a, NodeId b, double inductance) {
  ensure(inductance > 0.0, "Netlist: inductance must be positive");
  inductors_.push_back({check(a), check(b), inductance});
}

std::size_t Netlist::add_vsource(NodeId pos, NodeId neg, wave::Pwl voltage) {
  ensure(!voltage.empty(), "Netlist: voltage source needs a waveform");
  vsources_.push_back({check(pos), check(neg), std::move(voltage)});
  return vsources_.size() - 1;
}

void Netlist::add_mosfet(NodeId drain, NodeId gate, NodeId source,
                         const MosfetParams& params, double width, bool is_pmos) {
  ensure(width > 0.0, "Netlist: MOSFET width must be positive");
  mosfets_.push_back({check(drain), check(gate), check(source), params, width, is_pmos});
}

void Netlist::set_vsource_waveform(std::size_t index, wave::Pwl voltage) {
  ensure(index < vsources_.size(), "Netlist: vsource index out of range");
  ensure(!voltage.empty(), "Netlist: voltage source needs a waveform");
  vsources_[index].voltage = std::move(voltage);
}

double Netlist::total_capacitance() const {
  double total = 0.0;
  for (const Capacitor& c : capacitors_) total += c.capacitance;
  return total;
}

}  // namespace rlceff::ckt
