// Circuit netlist.
//
// A flat netlist of the device types the reproduction needs: R, L, C,
// piecewise-linear voltage sources, and alpha-power MOSFETs.  Node 0 is
// ground.  Deck-building helpers for RLC ladders and pi loads live in
// builders.h; the inverter driver cell is composed by rlceff::tech.
#ifndef RLCEFF_CIRCUIT_NETLIST_H
#define RLCEFF_CIRCUIT_NETLIST_H

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/mosfet.h"
#include "waveform/pwl.h"

namespace rlceff::ckt {

using NodeId = std::size_t;
inline constexpr NodeId ground = 0;

struct Resistor {
  NodeId a;
  NodeId b;
  double resistance;
};

struct Capacitor {
  NodeId a;  // positive plate
  NodeId b;
  double capacitance;
};

struct Inductor {
  NodeId a;  // current is measured flowing a -> b
  NodeId b;
  double inductance;
};

struct VSource {
  NodeId pos;
  NodeId neg;
  wave::Pwl voltage;  // evaluated at simulation time
};

// Mutual inductance (a SPICE K element) between two existing inductors,
// identified by their indices in inductors().  The mutual adds M * di/dt of
// each branch to the other branch's voltage; passivity requires
// |M| < sqrt(La * Lb).
struct MutualInductor {
  std::size_t la;  // index into inductors()
  std::size_t lb;
  double mutual;   // M [H]
};

struct Mosfet {
  NodeId drain;
  NodeId gate;
  NodeId source;
  MosfetParams params;
  double width;   // drawn gate width [m]
  bool is_pmos;
};

class Netlist {
public:
  Netlist();

  // Creates (or returns) the node with the given name.  "0" and "gnd" map to
  // ground.
  NodeId node(const std::string& name);
  // Creates an anonymous node.
  NodeId add_node();

  std::size_t node_count() const { return node_count_; }

  void add_resistor(NodeId a, NodeId b, double resistance);
  void add_capacitor(NodeId a, NodeId b, double capacitance);
  void add_inductor(NodeId a, NodeId b, double inductance);
  void add_mutual_inductor(std::size_t la, std::size_t lb, double mutual);
  std::size_t add_vsource(NodeId pos, NodeId neg, wave::Pwl voltage);
  void add_mosfet(NodeId drain, NodeId gate, NodeId source, const MosfetParams& params,
                  double width, bool is_pmos);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<MutualInductor>& mutual_inductors() const { return mutuals_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }

  // Replaces the waveform of an existing voltage source (used to re-drive a
  // characterized deck with a new stimulus).
  void set_vsource_waveform(std::size_t index, wave::Pwl voltage);

  // Sum of all capacitance with at least one terminal not at ground is not
  // meaningful; this is the plain sum of capacitor values, which for loads
  // referenced to ground equals the total load capacitance.
  double total_capacitance() const;

private:
  NodeId check(NodeId n) const;

  std::size_t node_count_ = 1;  // ground pre-exists
  std::unordered_map<std::string, NodeId> names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<MutualInductor> mutuals_;
  std::vector<VSource> vsources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace rlceff::ckt

#endif  // RLCEFF_CIRCUIT_NETLIST_H
