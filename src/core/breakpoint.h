// Voltage breakpoint (Eq 1 of the paper).
//
// At the driving point a transmission line initially looks like its
// characteristic impedance, so the driver and line form a voltage divider:
// the first ramp tops out at f * Vdd with f = Z0 / (Z0 + Rs).  The first
// ramp of the two-ramp model ends at this fraction; the second ramp carries
// the transition from f * Vdd to Vdd after the far-end reflection returns.
#ifndef RLCEFF_CORE_BREAKPOINT_H
#define RLCEFF_CORE_BREAKPOINT_H

#include "util/error.h"

namespace rlceff::core {

// f = Z0 / (Z0 + Rs); always in (0, 1) for positive arguments.
inline double breakpoint_fraction(double z0, double rs) {
  ensure(z0 > 0.0 && rs > 0.0, "breakpoint_fraction: impedances must be positive");
  return z0 / (z0 + rs);
}

}  // namespace rlceff::core

#endif  // RLCEFF_CORE_BREAKPOINT_H
