#include "core/ceff.h"

#include <cmath>

#include "util/error.h"
#include "util/integrate.h"
#include "util/solve.h"

namespace rlceff::core {

namespace {

// Validity checks shared by the window-based definitions.
void check_window(double f, double tr1) {
  ensure(f > 0.0 && f <= 1.0, "ceff: breakpoint fraction must be in (0, 1]");
  ensure(tr1 > 0.0, "ceff: ramp time must be positive");
}

// Time-domain current of the extended ramp v(t) = v0 + slope * t into the
// rational load, evaluated by central-differencing the closed-form charge.
double current_at(const ChargeModel& load, double slope, double v0, double t) {
  const double dt = std::max(t, 1e-12) * 1e-6;
  // Keep the stencil inside (0, inf): charge is identically zero for t < 0,
  // so a stencil straddling the origin would halve the current there.
  const double tc = std::max(t, dt);
  const double qp = load.ramp_charge(slope, tc + dt) + load.step_charge(v0, tc + dt);
  const double qm = load.ramp_charge(slope, tc - dt) + load.step_charge(v0, tc - dt);
  return (qp - qm) / (2.0 * dt);
}

}  // namespace

double ceff_first_ramp(const ChargeModel& load, double f, double tr1) {
  check_window(f, tr1);
  // Unit supply: slope 1/tr1, swing f.
  return load.window_charge(1.0 / tr1, 0.0, 0.0, f * tr1) / f;
}

double ceff_second_ramp(const ChargeModel& load, double f, double tr1, double tr2) {
  check_window(f, tr1);
  ensure(f < 1.0, "ceff_second_ramp: breakpoint must be below 1");
  ensure(tr2 > 0.0, "ceff_second_ramp: tr2 must be positive");
  const double k = 1.0 - tr1 / tr2;
  const double t_begin = f * tr1;
  const double t_end = t_begin + (1.0 - f) * tr2;
  return load.window_charge(1.0 / tr2, k * f, t_begin, t_end) / (1.0 - f);
}

double ceff_single(const ChargeModel& load, double tr) {
  return ceff_first_ramp(load, 1.0, tr);
}

double ceff_first_ramp_eq4(const moments::RationalAdmittance& y, double f, double tr1) {
  check_window(f, tr1);
  ensure(y.pole_count() == 2 && !y.complex_poles(),
         "ceff_first_ramp_eq4: requires two real poles");
  const auto ps = y.poles();
  const double s1 = ps[0].real();
  const double s2 = ps[1].real();
  const double t = f * tr1;
  auto term = [&](double si, double sj) {
    const double n = y.a1() + y.a2() * si + y.a3() * si * si;
    return n / (tr1 * f * y.b2() * si * si * (si - sj)) * (std::exp(si * t) - 1.0);
  };
  return y.a1() + term(s1, s2) + term(s2, s1);
}

double ceff_second_ramp_eq6(const moments::RationalAdmittance& y, double f, double tr1,
                            double tr2) {
  check_window(f, tr1);
  ensure(f < 1.0 && tr2 > 0.0, "ceff_second_ramp_eq6: bad window");
  ensure(y.pole_count() == 2 && !y.complex_poles(),
         "ceff_second_ramp_eq6: requires two real poles");
  const auto ps = y.poles();
  const double s1 = ps[0].real();
  const double s2 = ps[1].real();
  const double k = 1.0 - tr1 / tr2;
  auto coeff = [&](double si, double sj) {
    const double n = y.a1() + y.a2() * si + y.a3() * si * si;
    return n * (1.0 + k * f * si * tr2) /
           ((1.0 - f) * y.b2() * si * si * (si - sj) * tr2);
  };
  auto term = [&](double si, double sj) {
    return coeff(si, sj) * std::exp(si * f * tr1) *
           (std::exp(si * (1.0 - f) * tr2) - 1.0);
  };
  return y.a1() + term(s1, s2) + term(s2, s1);
}

double ceff_first_ramp_numeric(const ChargeModel& load, double f, double tr1) {
  check_window(f, tr1);
  const double q = util::integrate(
      [&](double t) { return current_at(load, 1.0 / tr1, 0.0, t); }, 0.0, f * tr1);
  return q / f;
}

double ceff_second_ramp_numeric(const ChargeModel& load, double f, double tr1,
                                double tr2) {
  check_window(f, tr1);
  ensure(f < 1.0 && tr2 > 0.0, "ceff_second_ramp_numeric: bad window");
  const double k = 1.0 - tr1 / tr2;
  const double t_begin = f * tr1;
  const double t_end = t_begin + (1.0 - f) * tr2;
  const double q = util::integrate(
      [&](double t) { return current_at(load, 1.0 / tr2, k * f, t); }, t_begin, t_end);
  return q / (1.0 - f);
}

namespace {

CeffIteration run_iteration(const ChargeModel& load, const TransitionFn& transition,
                            const std::function<double(double tr)>& ceff_of_tr,
                            const CeffIterationOptions& options) {
  const double c_total = load.admittance().total_capacitance();
  double last_tr = transition(c_total);

  util::FixedPointOptions fp;
  fp.rel_tol = options.rel_tol;
  fp.max_iter = util::capped_iterations(
      options.max_iter, options.budget ? options.budget->spec().max_ceff_iter : 0);
  fp.damping = options.damping;
  fp.budget = options.budget;
  // Keep the table lookup in a sane range.  Note the upper bound is far
  // above the total capacitance: the *second* ramp's effective capacitance
  // routinely exceeds Ctotal because its window also absorbs charge the
  // initial-step window did not deliver.
  fp.lower = 1e-4 * c_total;
  fp.upper = 20.0 * c_total;

  const util::FixedPointResult r = util::fixed_point(
      [&](double c) {
        last_tr = transition(c);
        ensure(last_tr > 0.0, "ceff iteration: table returned non-positive ramp time");
        return ceff_of_tr(last_tr);
      },
      c_total, fp);
  if (!r.converged && fp.max_iter < options.max_iter) {
    throw BudgetError("ceff iteration: budget of " + std::to_string(fp.max_iter) +
                      " iterations exhausted");
  }

  CeffIteration out;
  out.ceff = r.x;
  out.ramp_time = transition(r.x);
  out.iterations = r.iterations;
  out.converged = r.converged;
  return out;
}

}  // namespace

CeffIteration iterate_ceff1(const ChargeModel& load, double f,
                            const TransitionFn& transition,
                            const CeffIterationOptions& options) {
  return run_iteration(load, transition,
                       [&](double tr) { return ceff_first_ramp(load, f, tr); }, options);
}

CeffIteration iterate_ceff2(const ChargeModel& load, double f, double tr1,
                            const TransitionFn& transition,
                            const CeffIterationOptions& options) {
  return run_iteration(
      load, transition,
      [&](double tr) { return ceff_second_ramp(load, f, tr1, tr); }, options);
}

CeffIteration iterate_ceff_single(const ChargeModel& load,
                                  const TransitionFn& transition,
                                  const CeffIterationOptions& options) {
  return run_iteration(load, transition,
                       [&](double tr) { return ceff_single(load, tr); }, options);
}

}  // namespace rlceff::core
