// Effective capacitance computations (Sec. 4 of the paper).
//
// Each effective capacitance equates the charge a lone capacitor would take
// over a transition window with the charge the 5-moment RLC admittance takes
// over the same window:
//
//   Ceff1: window [0, f*Tr1] of the first ramp (Eq 4 / Eq 5),
//   Ceff2: window [f*Tr1, f*Tr1 + (1-f)*Tr2] of the second ramp (Eq 6 / Eq 7),
//   Ceff (single, Sec. 5): the first-ramp equation with f = 1.
//
// ceff_first_ramp / ceff_second_ramp use the unified residue implementation
// (ChargeModel), which covers real poles, complex poles, and degenerate
// lower-order fits in one code path.  ceff_first_ramp_eq4 and
// ceff_second_ramp_eq6 are the paper's printed real-pole closed forms,
// retained verbatim for cross-validation; tests prove all paths agree and
// also match adaptive numerical quadrature of the time-domain current.
//
// The iterate_* helpers run the Sec. 4 fixed-point loop against a cell
// table: Ceff -> (table) ramp time Tr -> Ceff ... starting from the total
// capacitance.
#ifndef RLCEFF_CORE_CEFF_H
#define RLCEFF_CORE_CEFF_H

#include <functional>

#include "core/charge.h"
#include "moments/rational.h"
#include "util/budget.h"

namespace rlceff::core {

// Eq 4/5: Ceff of the first ramp (voltage breakpoint fraction f in (0, 1]).
double ceff_first_ramp(const ChargeModel& load, double f, double tr1);

// Eq 6/7: Ceff of the second ramp.
double ceff_second_ramp(const ChargeModel& load, double f, double tr1, double tr2);

// Sec. 5: single effective capacitance over the whole transition (f = 1).
double ceff_single(const ChargeModel& load, double tr);

// The paper's Eq 4 closed form; requires two real poles.
double ceff_first_ramp_eq4(const moments::RationalAdmittance& y, double f, double tr1);

// The paper's Eq 6 closed form; requires two real poles.
double ceff_second_ramp_eq6(const moments::RationalAdmittance& y, double f,
                            double tr1, double tr2);

// Quadrature references (adaptive Simpson on the closed-form current).
double ceff_first_ramp_numeric(const ChargeModel& load, double f, double tr1);
double ceff_second_ramp_numeric(const ChargeModel& load, double f, double tr1,
                                double tr2);

// Result of a Ceff <-> cell-table fixed-point iteration.
struct CeffIteration {
  double ceff = 0.0;       // converged effective capacitance [F]
  double ramp_time = 0.0;  // table ramp time at ceff [s]
  int iterations = 0;
  bool converged = false;
};

// Iteration ceiling precedence (see util/budget.h): the fixed point runs at
// most capped_iterations(max_iter, budget->spec().max_ceff_iter,
// budget->spec().max_solver_iter) iterations, checkpointing the budget each
// iteration.  A budget-clipped loop that has not converged raises
// BudgetError; hitting the plain max_iter keeps returning converged = false
// for the service boundary (api::Engine::check_convergence) to judge.
struct CeffIterationOptions {
  double rel_tol = 1e-6;
  int max_iter = util::iter_defaults::ceff;
  double damping = 1.0;
  util::ExecTracker* budget = nullptr;  // optional cooperative budget
};

// Maps a load capacitance to the driver's ramp-equivalent output transition
// (a cell-table lookup bound to one input slew).
using TransitionFn = std::function<double(double c_load)>;

// Sec. 4.1: iterate Ceff1 from Ceff = Ctotal.
CeffIteration iterate_ceff1(const ChargeModel& load, double f,
                            const TransitionFn& transition,
                            const CeffIterationOptions& options = {});

// Sec. 4.2: iterate Ceff2 (tr1 fixed from the Ceff1 iteration).
CeffIteration iterate_ceff2(const ChargeModel& load, double f, double tr1,
                            const TransitionFn& transition,
                            const CeffIterationOptions& options = {});

// Sec. 5: iterate the single Ceff (f = 1).
CeffIteration iterate_ceff_single(const ChargeModel& load,
                                  const TransitionFn& transition,
                                  const CeffIterationOptions& options = {});

}  // namespace rlceff::core

#endif  // RLCEFF_CORE_CEFF_H
