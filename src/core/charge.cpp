#include "core/charge.h"

#include <cmath>

#include "util/error.h"

namespace rlceff::core {

using util::Complex;

ChargeModel::ChargeModel(const moments::RationalAdmittance& admittance)
    : y_(admittance) {
  n_poles_ = y_.pole_count();
  const auto ps = y_.poles();
  const double a1 = y_.a1();
  const double a2 = y_.a2();
  const double a3 = y_.a3();
  const double b1 = y_.b1();
  const double b2 = y_.b2();
  ramp_const_ = a2 - a1 * b1;

  for (int i = 0; i < n_poles_; ++i) {
    const Complex s = ps[static_cast<std::size_t>(i)];
    ensure(s.real() < 0.0, "ChargeModel: admittance has an unstable pole");
    const Complex n_at_s = a1 + s * (a2 + s * a3);
    const Complex d_prime = b1 + 2.0 * b2 * s;
    poles_[static_cast<std::size_t>(i)] = s;
    ramp_residues_[static_cast<std::size_t>(i)] = n_at_s / (s * s * d_prime);
    step_residues_[static_cast<std::size_t>(i)] = n_at_s / (s * d_prime);
  }
}

double ChargeModel::ramp_charge(double slope, double t) const {
  if (t <= 0.0) return 0.0;
  Complex acc = 0.0;
  for (int i = 0; i < n_poles_; ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    acc += ramp_residues_[k] * std::exp(poles_[k] * t);
  }
  // With poles, sum_i R_i = -(a2 - a1 b1) so q(0+) = 0; the same constant
  // degenerates to a2 for pole-free fits (b1 = 0).
  return slope * (y_.a1() * t + ramp_const_ + acc.real());
}

double ChargeModel::step_charge(double v0, double t) const {
  if (t <= 0.0 || v0 == 0.0) return 0.0;
  Complex acc = 0.0;
  for (int i = 0; i < n_poles_; ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    acc += step_residues_[k] * std::exp(poles_[k] * t);
  }
  return v0 * (y_.a1() + acc.real());
}

double ChargeModel::window_charge(double slope, double v0, double t_begin,
                                  double t_end) const {
  ensure(t_end >= t_begin, "ChargeModel: window must be ordered");
  const double q_end = ramp_charge(slope, t_end) + step_charge(v0, t_end);
  const double q_begin = ramp_charge(slope, t_begin) + step_charge(v0, t_begin);
  return q_end - q_begin;
}

}  // namespace rlceff::core
