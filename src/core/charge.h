// Charge transfer into a rational driving-point admittance.
//
// The effective-capacitance conditions of Sec. 4 all have the form
//   Ceff * (swing) = integral of i(t) over a transition window,
// where i(t) is the current delivered into Y(s) by an extended ramp
// v(t) = v0 + slope * t.  With Y(s) = s N(s) / D(s), N = a1 + a2 s + a3 s^2,
// D = 1 + b1 s + b2 s^2, the charge q(t) = L^-1[ V(s) Y(s) / s ] has a closed
// form by partial fractions over the poles of D:
//
//   ramp:  q_r(t) = slope * ( a1 t + (a2 - a1 b1) + sum_i R_i e^{s_i t} ),
//          R_i = N(s_i) / (s_i^2 D'(s_i))
//   step:  q_s(t) = v0 * ( a1 + sum_i r_i e^{s_i t} ),
//          r_i = N(s_i) / (s_i D'(s_i))
//
// One complex-arithmetic implementation covers the paper's real-pole (Eq 4/6)
// and complex-pole (Eq 5/7) branches: conjugate pole pairs produce conjugate
// residues, so the sum is real.  Degenerate fits with one or zero poles
// (pure-C or RC-dominated loads) fall out of the same formulas.
#ifndef RLCEFF_CORE_CHARGE_H
#define RLCEFF_CORE_CHARGE_H

#include <array>

#include "moments/rational.h"
#include "util/poly.h"

namespace rlceff::core {

class ChargeModel {
public:
  explicit ChargeModel(const moments::RationalAdmittance& admittance);

  const moments::RationalAdmittance& admittance() const { return y_; }

  // Charge delivered over (0, t] by v(t) = slope * t applied at t = 0.
  double ramp_charge(double slope, double t) const;

  // Charge delivered over (0+, t] by a step to v0 at t = 0.  The impulsive
  // charge a3/b2 * v0 at t = 0 itself is included (it is the limit of the
  // fast charging path); windows starting at t > 0 difference it away.
  double step_charge(double v0, double t) const;

  // Charge delivered over (t_begin, t_end] by the extended ramp
  // v(t) = v0 + slope * t.
  double window_charge(double slope, double v0, double t_begin, double t_end) const;

private:
  moments::RationalAdmittance y_;
  int n_poles_ = 0;
  std::array<util::Complex, 2> poles_{};
  std::array<util::Complex, 2> ramp_residues_{};
  std::array<util::Complex, 2> step_residues_{};
  double ramp_const_ = 0.0;  // a2 - a1 b1
};

}  // namespace rlceff::core

#endif  // RLCEFF_CORE_CHARGE_H
