#include "core/coupled_experiment.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/error.h"

namespace rlceff::core {

namespace {

EdgeMetrics measure_model_pwl(const DriverOutputModel& m, double vdd,
                              double horizon) {
  const wave::Waveform w = m.waveform.to_waveform(m.waveform.end_time() + horizon);
  return measure_edge(w, vdd, 0.0);
}

// Per-net settle horizon, the single-net auto_t_stop formula (the shared
// core::settle_time heuristic) with the net's attached coupling capacitance
// added to the charge it must move.  The whole coupled deck shares the
// longest net's horizon.
double auto_t_stop(const CoupledExperimentCase& c, const CoupledExperimentOptions& o) {
  double t_stop = 0.0;
  for (std::size_t k = 0; k < c.group.size(); ++k) {
    const net::NetMetrics metrics = c.group.net_at(k).metrics();
    double driver_size = c.driver_size;
    double slew = c.input_slew;
    if (k != c.victim) {
      const AggressorDrive aggressor =
          k < c.aggressors.size() ? c.aggressors[k] : AggressorDrive{};
      driver_size = aggressor.driver_size;
      slew = aggressor.input_slew;
    }
    const double settle = settle_time(driver_size, metrics,
                                      c.group.coupling_capacitance_at(k));
    t_stop = std::max(t_stop, o.deck.t_start + slew + std::max(1e-9, settle));
  }
  return t_stop;
}

tech::DriveEdge edge_for(AggressorSwitching switching) {
  switch (switching) {
    case AggressorSwitching::same_direction:
      return tech::DriveEdge::rise;
    case AggressorSwitching::opposite:
      return tech::DriveEdge::fall;
    case AggressorSwitching::quiet:
      break;
  }
  return tech::DriveEdge::hold_low;
}

std::vector<tech::NetDrive> build_drives(const CoupledExperimentCase& c,
                                         bool victim_switches) {
  std::vector<tech::NetDrive> drives(c.group.size());
  for (std::size_t k = 0; k < c.group.size(); ++k) {
    tech::NetDrive& d = drives[k];
    if (k == c.victim) {
      d.cell = tech::Inverter{c.driver_size};
      d.input_slew = c.input_slew;
      d.edge = victim_switches ? tech::DriveEdge::rise : tech::DriveEdge::hold_low;
      continue;
    }
    const AggressorDrive aggressor =
        k < c.aggressors.size() ? c.aggressors[k] : AggressorDrive{};
    d.cell = tech::Inverter{aggressor.driver_size};
    d.input_slew = aggressor.input_slew;
    d.edge = edge_for(aggressor.switching);
  }
  return drives;
}

}  // namespace

double miller_factor(AggressorSwitching switching) {
  switch (switching) {
    case AggressorSwitching::same_direction:
      return 0.0;
    case AggressorSwitching::quiet:
      return 1.0;
    case AggressorSwitching::opposite:
      break;
  }
  return 2.0;
}

std::vector<double> miller_factors(const CoupledExperimentCase& scenario) {
  std::vector<double> factors(scenario.group.size(), 1.0);
  for (std::size_t k = 0; k < scenario.group.size(); ++k) {
    if (k == scenario.victim || k >= scenario.aggressors.size()) continue;
    factors[k] = miller_factor(scenario.aggressors[k].switching);
  }
  return factors;
}

CoupledExperimentResult run_coupled_experiment(const tech::Technology& technology,
                                               charlib::CellLibrary& library,
                                               const CoupledExperimentCase& scenario,
                                               const CoupledExperimentOptions& options) {
  ensure(!scenario.group.empty(), "run_coupled_experiment: empty group");
  ensure(scenario.victim < scenario.group.size(),
         "run_coupled_experiment: victim index out of range");

  CoupledExperimentResult out;
  out.scenario = scenario;

  const net::NetMetrics victim_metrics =
      scenario.group.net_at(scenario.victim).metrics();
  tech::DeckOptions deck = options.deck;
  deck.t_stop = auto_t_stop(scenario, options);

  // Reference: the full coupled system, every net driven.
  {
    const std::vector<tech::NetDrive> drives = build_drives(scenario, true);
    tech::CoupledSimResult ref =
        tech::simulate_coupled_group(technology, drives, scenario.group, deck);
    tech::NetSimResult& victim = ref.nets[scenario.victim];
    out.input_time_50 = victim.input_time_50;
    out.solver = victim.solver;
    const wave::Waveform& far = victim.leaves.at(victim_metrics.dominant_leaf);
    out.ref_near = measure_edge(victim.near_end, technology.vdd, victim.input_time_50);
    out.ref_far = measure_edge(far, technology.vdd, victim.input_time_50);
    if (options.keep_waveforms) {
      out.ref_near_wave = std::move(victim.near_end);
      out.ref_far_wave = victim.leaves.at(victim_metrics.dominant_leaf);
    }
  }

  // Quiet-environment baseline: the victim alone with every coupling cap
  // grounded at 1x — the delay-pushout anchor.
  const net::Net quiet_net = scenario.group.decoupled_net(scenario.victim);
  if (options.include_baseline) {
    const tech::Inverter cell{scenario.driver_size};
    const tech::NetSimResult base = tech::simulate_driver_net(
        technology, cell, scenario.input_slew, quiet_net, deck);
    const wave::Waveform& far = base.leaves.at(victim_metrics.dominant_leaf);
    out.base_near = measure_edge(base.near_end, technology.vdd, base.input_time_50);
    out.base_far = measure_edge(far, technology.vdd, base.input_time_50);
    out.delay_pushout = out.ref_far.delay - out.base_far.delay;
  }

  // Noise view: victim held quiet, aggressors switching.
  if (options.include_noise) {
    const std::vector<tech::NetDrive> drives = build_drives(scenario, false);
    tech::CoupledSimResult noisy =
        tech::simulate_coupled_group(technology, drives, scenario.group, deck);
    const wave::Waveform& far =
        noisy.nets[scenario.victim].leaves.at(victim_metrics.dominant_leaf);
    ensure(far.size() > 0, "run_coupled_experiment: empty noise waveform");
    const double rest = far.value(0);
    double peak = 0.0;
    for (std::size_t k = 0; k < far.size(); ++k) {
      peak = std::max(peak, std::abs(far.value(k) - rest));
    }
    out.peak_noise = peak;
    if (options.keep_waveforms) out.noise_wave = far;
  }

  // Miller-decoupled model (the paper's flow on the single-net equivalent).
  const std::vector<double> factors = miller_factors(scenario);
  const net::Net miller_net =
      scenario.group.decoupled_net(scenario.victim, factors);
  const charlib::CharacterizedDriver& driver =
      library.ensure_driver(technology, scenario.driver_size, options.grid);
  out.model = model_driver_output(driver, scenario.input_slew, miller_net,
                                  options.model);
  out.model_near = measure_model_pwl(out.model, technology.vdd, deck.t_stop);

  // Quiet-environment model for the pushout estimate.  When every factor is
  // 1 the Miller net *is* the quiet net: reuse the model instead of running
  // the Ceff flow a second time.
  const bool quiet_equals_miller =
      std::all_of(factors.begin(), factors.end(), [](double f) { return f == 1.0; });
  if (quiet_equals_miller) {
    out.model_base = out.model;
    out.model_base_near = out.model_near;
  } else {
    out.model_base = model_driver_output(driver, scenario.input_slew, quiet_net,
                                         options.model);
    out.model_base_near =
        measure_model_pwl(out.model_base, technology.vdd, deck.t_stop);
  }
  out.delay_pushout_model = out.model_near.delay - out.model_base_near.delay;

  if (options.include_far_end) {
    // Replay the modeled waveform through the decoupled net in deck time.
    std::vector<std::pair<double, double>> pts = out.model.waveform.points();
    for (auto& [t, v] : pts) t += out.input_time_50;
    const wave::Pwl absolute(std::move(pts));
    const tech::NetSimResult replay =
        tech::simulate_source_net(absolute, miller_net, deck);
    const wave::Waveform& far = replay.leaves.at(victim_metrics.dominant_leaf);
    out.model_far = measure_edge(far, technology.vdd, out.input_time_50);
  }

  return out;
}

}  // namespace rlceff::core
