// Coupled aggressor/victim experiment harness.
//
// One coupled case = a net::CoupledGroup, a victim net index, a driver per
// net, and a switching direction per aggressor.  The harness runs three
// views of the victim side by side:
//   * reference — the full coupled system simulated at once (every net gets
//     its inverter, coupling caps and mutual inductors stamped as-is),
//   * baseline — the victim alone in its quiet environment (all coupling
//     caps grounded at 1x), which anchors the delay-pushout measurement,
//   * model — the paper's Ceff flow run on the Miller-decoupled victim net:
//     each coupling cap is switched to ground scaled by its aggressor's
//     Miller factor (0x when the aggressor switches with the victim, 1x when
//     quiet, 2x when it switches against it).
// A fourth, optional view holds the victim quiet while the aggressors switch
// and reports the peak victim-noise bump — the classic crosstalk noise
// number the RC/RLC noise papers track.
#ifndef RLCEFF_CORE_COUPLED_EXPERIMENT_H
#define RLCEFF_CORE_COUPLED_EXPERIMENT_H

#include <string>
#include <vector>

#include "charlib/library.h"
#include "core/driver_model.h"
#include "core/experiment.h"
#include "net/coupled.h"
#include "tech/testbench.h"

namespace rlceff::core {

// Aggressor activity relative to the victim's rising output edge.
enum class AggressorSwitching {
  same_direction,  // aggressor output rises with the victim -> 0x Miller
  quiet,           // aggressor holds                        -> 1x Miller
  opposite,        // aggressor output falls                 -> 2x Miller
};

double miller_factor(AggressorSwitching switching);

// Defaults to a quiet neighbor so a scenario whose aggressor list is shorter
// than the group simulates exactly what miller_factors assumes (1x).
struct AggressorDrive {
  double driver_size = 75.0;
  double input_slew = 100e-12;
  AggressorSwitching switching = AggressorSwitching::quiet;
};

struct CoupledExperimentCase {
  std::string label;
  net::CoupledGroup group;
  std::size_t victim = 0;
  double driver_size = 75.0;    // victim driver
  double input_slew = 100e-12;  // victim input ramp
  // One entry per group net (the victim's entry is ignored).  When shorter
  // than the group, the remaining nets default to quiet 75X aggressors.
  std::vector<AggressorDrive> aggressors;
};

struct CoupledExperimentOptions {
  tech::DeckOptions deck;        // simulator fidelity (t_stop auto-sized)
  DriverModelOptions model;      // paper flow controls
  bool include_baseline = true;  // simulate the quiet-environment victim
  bool include_far_end = true;   // replay the model through the decoupled net
  bool include_noise = true;     // quiet-victim noise simulation
  bool keep_waveforms = false;   // retain sampled waveforms
  charlib::CharacterizationGrid grid = charlib::CharacterizationGrid::standard();
};

struct CoupledExperimentResult {
  CoupledExperimentCase scenario;

  EdgeMetrics ref_near;   // victim driver output in the coupled simulation
  EdgeMetrics ref_far;    // victim dominant-path leaf in the coupled simulation
  EdgeMetrics base_near;  // quiet-environment (1x) simulated baseline
  EdgeMetrics base_far;
  EdgeMetrics model_near;       // Ceff model on the Miller-decoupled net
  EdgeMetrics model_far;        // model PWL replayed through the decoupled net
  EdgeMetrics model_base_near;  // model in the quiet (1x) environment

  DriverOutputModel model;       // Miller-decoupled model diagnostics
  DriverOutputModel model_base;  // quiet (1x) environment model (equals
                                 // `model` when every Miller factor is 1)

  double delay_pushout = 0.0;        // ref_far - base_far [s] (simulated)
  double delay_pushout_model = 0.0;  // model_near - model_base_near [s]
  double peak_noise = 0.0;           // quiet-victim peak |bump| at the far end [V]
  double input_time_50 = 0.0;        // victim input 50 % crossing [s]

  // Populated when keep_waveforms is set; times are absolute deck time.
  wave::Waveform ref_near_wave;
  wave::Waveform ref_far_wave;
  wave::Waveform noise_wave;  // quiet-victim far end

  // Backend that factored the coupled reference deck (never `automatic`).
  sim::SolverKind solver = sim::SolverKind::automatic;
};

// Per-net Miller factors for a case (1.0 for the victim and for nets beyond
// the aggressor list).
std::vector<double> miller_factors(const CoupledExperimentCase& scenario);

// Runs the coupled reference, the quiet baseline, the noise view, and the
// Miller-decoupled model for one case.  The library caches driver
// characterizations across calls (only the victim's driver needs one; the
// aggressor inverters are simulated directly).
CoupledExperimentResult run_coupled_experiment(const tech::Technology& technology,
                                               charlib::CellLibrary& library,
                                               const CoupledExperimentCase& scenario,
                                               const CoupledExperimentOptions& options = {});

}  // namespace rlceff::core

#endif  // RLCEFF_CORE_COUPLED_EXPERIMENT_H
