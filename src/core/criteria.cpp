#include "core/criteria.h"

#include "util/error.h"

namespace rlceff::core {

InductanceCriteria evaluate_criteria(const tech::WireParasitics& wire, double c_load,
                                     double rs, double tr1,
                                     const CriteriaOptions& options) {
  return evaluate_criteria(wire.z0(), wire.time_of_flight(), wire.resistance,
                           wire.capacitance, c_load, rs, tr1, options);
}

InductanceCriteria evaluate_criteria(double z0, double tf, double line_resistance,
                                     double line_capacitance, double c_load, double rs,
                                     double tr1, const CriteriaOptions& options) {
  ensure(rs > 0.0 && tr1 > 0.0, "evaluate_criteria: rs and tr1 must be positive");
  ensure(c_load >= 0.0, "evaluate_criteria: negative load capacitance");
  ensure(z0 > 0.0 && tf > 0.0, "evaluate_criteria: need z0 and tf");

  InductanceCriteria c;
  c.load_small = c_load < options.load_cap_ratio_max * line_capacitance;
  c.line_low_loss = line_resistance <= 2.0 * z0;
  c.driver_fast = rs < z0;
  c.ramp_beats_flight = tr1 < 2.0 * tf;
  return c;
}

}  // namespace rlceff::core
