// Inductance-significance criteria (Eq 9 of the paper).
//
// Reconstructed from refs [4, 5]: transmission-line effects at the driving
// point matter when all four hold:
//   1. C_L << C*l        — the far-end load does not swamp the line,
//   2. R*l <= 2*Z0       — the line is not too lossy for a wave to survive
//                          the round trip,
//   3. Rs < Z0           — the driver launches an initial step above Vdd/2,
//   4. Tr1 < 2*tf        — the *driver output* initial ramp (from the Ceff1
//                          iteration) beats the round-trip flight time; the
//                          paper's new screen, replacing the input-slew test
//                          of ref [5] because inductive behaviour tracks the
//                          output transition, not the input one (ref [8]).
// When any test fails the driver output is RC-like and one effective
// capacitance suffices (Sec. 5).
#ifndef RLCEFF_CORE_CRITERIA_H
#define RLCEFF_CORE_CRITERIA_H

#include "tech/wire.h"

namespace rlceff::core {

struct CriteriaOptions {
  // "C_L << C*l" threshold: the load must stay below this fraction of the
  // line capacitance.
  double load_cap_ratio_max = 0.2;
};

struct InductanceCriteria {
  bool load_small = false;        // C_L << C*l
  bool line_low_loss = false;     // R*l <= 2*Z0
  bool driver_fast = false;       // Rs < Z0
  bool ramp_beats_flight = false; // Tr1 < 2*tf

  bool significant() const {
    return load_small && line_low_loss && driver_fast && ramp_beats_flight;
  }
};

// Evaluates Eq 9 for a uniform line with far-end load c_load, driver
// resistance rs, and the converged first-ramp time tr1.
InductanceCriteria evaluate_criteria(const tech::WireParasitics& wire, double c_load,
                                     double rs, double tr1,
                                     const CriteriaOptions& options = {});

// Explicit form for non-uniform loads (RLC trees): the caller supplies the
// characteristic impedance and flight time of the dominant path plus the
// line totals the loss/load screens compare against.
InductanceCriteria evaluate_criteria(double z0, double tf, double line_resistance,
                                     double line_capacitance, double c_load, double rs,
                                     double tr1, const CriteriaOptions& options = {});

}  // namespace rlceff::core

#endif  // RLCEFF_CORE_CRITERIA_H
