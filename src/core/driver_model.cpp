#include "core/driver_model.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/breakpoint.h"
#include "moments/admittance.h"
#include "util/error.h"
#include "util/poly.h"
#include "util/solve.h"

namespace rlceff::core {

namespace {

// Slowest natural mode of the driver-resistance-plus-load system: the most
// negative-real-part-closest-to-zero root of 1 + Rs * Y(s) = 0, i.e. of
//   a3 Rs s^3 + (b2 + a2 Rs) s^2 + (b1 + a1 Rs) s + 1 = 0.
// Returns 0 when no stable real dominant mode exists.
double dominant_tail_tau(const moments::RationalAdmittance& y, double rs) {
  const double c3 = y.a3() * rs;
  const double c2 = y.b2() + y.a2() * rs;
  const double c1 = y.b1() + y.a1() * rs;
  std::array<util::Complex, 3> roots{};
  int count = 0;
  if (c3 != 0.0) {
    roots = util::cubic_roots(c3, c2, c1, 1.0);
    count = 3;
  } else if (c2 != 0.0) {
    const auto r2 = util::quadratic_roots(c2, c1, 1.0);
    roots[0] = r2[0];
    roots[1] = r2[1];
    count = 2;
  } else if (c1 != 0.0) {
    roots[0] = util::Complex(-1.0 / c1, 0.0);
    count = 1;
  }
  double tau = 0.0;
  for (int i = 0; i < count; ++i) {
    const util::Complex s = roots[static_cast<std::size_t>(i)];
    // Dominant mode must be real and stable to act as an exponential tail.
    if (s.real() < 0.0 && std::abs(s.imag()) < 1e-6 * std::abs(s.real())) {
      tau = std::max(tau, -1.0 / s.real());
    }
  }
  return tau;
}

// Ramp followed by an exponential settle with time constant tau (the
// ref-[11] gate-resistor shape).  The switch point is where the exponential
// through the remaining swing has the same slope as the ramp,
// v_switch = 1 - tau/tr, clamped to [0.5, 0.9] so the 50 % anchor stays on
// the ramp and degenerate tails stay finite.
wave::Pwl ramp_with_tail(double tr, double tau, double vdd) {
  const double v_switch = std::clamp(1.0 - tau / tr, 0.5, 0.9);
  std::vector<std::pair<double, double>> pts;
  pts.emplace_back(0.0, 0.0);
  const double t_switch = v_switch * tr;
  pts.emplace_back(t_switch, v_switch * vdd);
  // Sample the exponential densely enough for 10-90 measurements.
  for (double x : {0.3, 0.7, 1.2, 1.8, 2.6, 3.6, 5.0}) {
    pts.emplace_back(t_switch + x * tau,
                     vdd - (1.0 - v_switch) * vdd * std::exp(-x));
  }
  pts.emplace_back(t_switch + 7.0 * tau, vdd);
  return wave::Pwl(std::move(pts));
}

// Shifts a PWL so that its 50 % (of vdd) rising crossing lands at t50.
wave::Pwl anchor_at_t50(const wave::Pwl& pwl, double vdd, double t50) {
  const wave::Waveform w = pwl.to_waveform(pwl.end_time() + 1e-12);
  const auto crossing = w.first_crossing(0.5 * vdd, true);
  ensure(crossing.has_value(), "anchor_at_t50: waveform never reaches Vdd/2");
  const double shift = t50 - *crossing;
  std::vector<std::pair<double, double>> pts = pwl.points();
  for (auto& [t, v] : pts) t += shift;
  return wave::Pwl(std::move(pts));
}

// Everything the flow needs to know about the load, with the uniform-line
// and tree front ends mapped onto one shape.
struct LoadDescription {
  util::Series admittance_series{moments::default_order};
  double z0 = 0.0;
  double tf = 0.0;
  double line_resistance = 0.0;   // loss along the dominant path (Eq 9)
  double line_capacitance = 0.0;  // line capacitance the load screen compares
  double c_load = 0.0;            // external far-end load (Eq 9)
};

DriverOutputModel run_flow(const charlib::CharacterizedDriver& driver,
                           double input_slew, const LoadDescription& net,
                           const DriverModelOptions& options) {
  ensure(input_slew > 0.0, "model_driver_output: input slew must be positive");

  DriverOutputModel m;
  m.vdd = driver.vdd();

  // Step 1: Eq-3 fit of the admittance moments.
  m.admittance = moments::RationalAdmittance(net.admittance_series);
  const ChargeModel load(m.admittance);
  const double c_total = m.admittance.total_capacitance();

  // Step 2: driver resistance and voltage breakpoint.
  m.z0 = net.z0;
  m.tf = net.tf;
  m.rs = driver.driver_resistance(input_slew, c_total);
  m.f = breakpoint_fraction(m.z0, m.rs);

  const TransitionFn transition = [&](double c) {
    return driver.output_transition(input_slew, c);
  };

  // Step 3: Ceff1 at the two-ramp breakpoint.
  m.ceff1 = iterate_ceff1(load, m.f, transition, options.iteration);

  if (!options.rs_at_total_cap) {
    // Ablation: re-extract Rs at the converged Ceff1 and redo steps 2-3.
    m.rs = driver.driver_resistance(input_slew, m.ceff1.ceff);
    m.f = breakpoint_fraction(m.z0, m.rs);
    m.ceff1 = iterate_ceff1(load, m.f, transition, options.iteration);
  }

  // Step 4: inductance criteria with the output-referred initial ramp.
  m.criteria = evaluate_criteria(m.z0, m.tf, net.line_resistance,
                                 net.line_capacitance, net.c_load, m.rs,
                                 m.ceff1.ramp_time, options.criteria);

  const bool two_ramp = options.selection == ModelSelection::force_two_ramp ||
                        (options.selection == ModelSelection::automatic &&
                         m.criteria.significant());

  if (!two_ramp) {
    // One effective capacitance over the whole transition (f = 1).
    m.kind = ModelKind::one_ramp;
    m.ceff1 = iterate_ceff_single(load, transition, options.iteration);
    m.f = 1.0;
    const double tr = m.ceff1.ramp_time;
    const double delay = driver.delay(input_slew, m.ceff1.ceff);
    m.t50 = delay;

    // Ref [11]: under resistive shielding the real edge settles with the
    // slowest natural mode of the Rs-plus-load system, which a single ramp
    // misses.  Append the gate-resistor tail unless the mode is too fast to
    // matter.
    if (options.shielding_tail &&
        m.ceff1.ceff < options.shielding_threshold * c_total) {
      const double tau = dominant_tail_tau(m.admittance, m.rs);
      if (tau > 0.1 * tr) {
        m.has_shielding_tail = true;
        m.tail_tau = tau;
        m.waveform = anchor_at_t50(ramp_with_tail(tr, tau, m.vdd), m.vdd, delay);
        return m;
      }
    }
    m.waveform = anchor_at_t50(wave::ramp(0.0, tr, 0.0, m.vdd), m.vdd, delay);
    return m;
  }

  // Step 5: second ramp.
  m.kind = ModelKind::two_ramp;
  const double tr1 = m.ceff1.ramp_time;
  m.ceff2 = iterate_ceff2(load, m.f, tr1, transition, options.iteration);
  const double tr2 = m.ceff2.ramp_time;

  // Plateau: no charge transfers while the wave is in flight (Eq 8).
  m.plateau_time = std::max(0.0, 2.0 * m.tf - tr1);
  m.tr2_new = tr2;
  double flat = 0.0;
  switch (options.plateau) {
    case PlateauHandling::modified_second_ramp:
      m.tr2_new = tr2 + m.plateau_time / (1.0 - m.f);
      break;
    case PlateauHandling::flat_step:
      flat = m.plateau_time;
      break;
    case PlateauHandling::none:
      break;
  }

  const double delay = driver.delay(input_slew, m.ceff1.ceff);
  m.t50 = delay;

  if (options.three_ramp_extension && m.f < 0.9) {
    // Second reflection: the lattice diagram with an (almost) open far end
    // puts the next near-end level at f*(2 + rho_s) * Vdd, rho_s being the
    // source reflection coefficient.  Clamp below 1: later steps merge into
    // the supply rail (the paper's point D).
    const double rho_s = (m.rs - m.z0) / (m.rs + m.z0);
    m.f2 = std::min(m.f * (2.0 + rho_s), 0.98);
    if (m.f2 > m.f + 0.02) {
      m.kind = ModelKind::three_ramp;
      const double t_begin2 = m.f * tr1 + flat;
      const double t_end2 = t_begin2 + (m.f2 - m.f) * m.tr2_new;
      const ChargeModel& q = load;
      const TransitionFn tr3_of = transition;
      // Third-ramp Ceff: window [t_end2, t_end2 + (1 - f2) * Tr3] of the
      // extended ramp through (t_end2, f2 * Vdd).
      m.ceff3 = [&] {
        CeffIterationOptions it = options.iteration;
        auto ceff_of_tr = [&](double tr3) {
          const double v0 = m.f2 - t_end2 / tr3;
          return q.window_charge(1.0 / tr3, v0, t_end2, t_end2 + (1.0 - m.f2) * tr3) /
                 (1.0 - m.f2);
        };
        util::FixedPointOptions fp;
        fp.rel_tol = it.rel_tol;
        fp.max_iter = util::capped_iterations(
            it.max_iter, it.budget ? it.budget->spec().max_ceff_iter : 0);
        fp.damping = it.damping;
        fp.lower = 1e-4 * c_total;
        fp.upper = c_total;
        fp.budget = it.budget;
        const util::FixedPointResult r = util::fixed_point(
            [&](double c) { return ceff_of_tr(tr3_of(c)); }, c_total, fp);
        if (!r.converged && fp.max_iter < it.max_iter) {
          throw BudgetError("ceff3 iteration: budget of " +
                            std::to_string(fp.max_iter) + " iterations exhausted");
        }
        CeffIteration out;
        out.ceff = r.x;
        out.ramp_time = tr3_of(r.x);
        out.iterations = r.iterations;
        out.converged = r.converged;
        return out;
      }();
      const double tr3 = m.ceff3.ramp_time;
      std::vector<std::pair<double, double>> pts;
      pts.emplace_back(0.0, 0.0);
      pts.emplace_back(m.f * tr1, m.f * m.vdd);
      if (flat > 0.0) pts.emplace_back(m.f * tr1 + flat, m.f * m.vdd);
      pts.emplace_back(t_end2, m.f2 * m.vdd);
      pts.emplace_back(t_end2 + (1.0 - m.f2) * tr3, m.vdd);
      m.waveform = anchor_at_t50(wave::Pwl(std::move(pts)), m.vdd, delay);
      return m;
    }
  }

  const wave::Pwl shape = (flat > 0.0)
                              ? wave::three_piece(0.0, m.f, tr1, flat, m.tr2_new, m.vdd)
                              : wave::two_ramp(0.0, m.f, tr1, m.tr2_new, m.vdd);
  m.waveform = anchor_at_t50(shape, m.vdd, delay);
  return m;
}

}  // namespace

DriverOutputModel model_driver_output(const charlib::CharacterizedDriver& driver,
                                      double input_slew, const net::Net& net,
                                      const DriverModelOptions& options) {
  const net::NetMetrics metrics = net.metrics();
  LoadDescription load;
  load.admittance_series = moments::net_admittance(net);
  load.z0 = metrics.z0;
  load.tf = metrics.time_of_flight;
  load.line_resistance = metrics.path_resistance;
  load.line_capacitance = metrics.wire_capacitance;
  load.c_load = metrics.path_load;
  return run_flow(driver, input_slew, load, options);
}

DriverOutputModel model_driver_output(const charlib::CharacterizedDriver& driver,
                                      double input_slew,
                                      const tech::WireParasitics& wire,
                                      double c_load_far,
                                      const DriverModelOptions& options) {
  ensure(c_load_far >= 0.0, "model_driver_output: negative far-end load");
  return model_driver_output(
      driver, input_slew,
      net::Net::uniform_line(wire.resistance, wire.inductance, wire.capacitance,
                             c_load_far),
      options);
}

DriverOutputModel model_driver_output(const charlib::CharacterizedDriver& driver,
                                      double input_slew,
                                      const moments::RlcBranch& tree,
                                      const DriverModelOptions& options) {
  return model_driver_output(driver, input_slew, net::Net::from_tree(tree), options);
}

DriverOutputModel estimate_driver_output_moments_only(
    const charlib::CharacterizedDriver& driver, double input_slew,
    const net::Net& net) {
  ensure(input_slew > 0.0, "estimate_driver_output: input slew must be positive");
  ensure(!net.empty(), "estimate_driver_output: net is empty");

  DriverOutputModel m;
  m.vdd = driver.vdd();
  m.kind = ModelKind::one_ramp;
  m.f = 1.0;

  const double c_total = net.total_capacitance();
  ensure(c_total > 0.0, "estimate_driver_output: net has no capacitance");
  m.rs = driver.driver_resistance(input_slew, c_total);

  m.ceff1.ceff = c_total;
  m.ceff1.ramp_time = driver.output_transition(input_slew, c_total);
  m.ceff1.iterations = 0;
  m.ceff1.converged = true;

  m.t50 = driver.delay(input_slew, c_total);
  m.waveform = anchor_at_t50(wave::ramp(0.0, m.ceff1.ramp_time, 0.0, m.vdd),
                             m.vdd, m.t50);
  return m;
}

}  // namespace rlceff::core
