// The paper's driver output modeling flow (Sec. 5).
//
// Given a pre-characterized driver, an input slew, and the RLC line it
// drives:
//   1. expand the driving-point admittance moments and fit Eq 3,
//   2. extract the driver's Thevenin resistance at the total capacitance and
//      compute the voltage breakpoint f = Z0/(Z0+Rs)  (Eq 1),
//   3. iterate Ceff1 (Eq 4/5) against the cell table to get Tr1,
//   4. evaluate the inductance criteria (Eq 9),
//   5. if significant: iterate Ceff2 (Eq 6/7) for Tr2, stretch it for the
//      plateau (Eq 8), and emit the two-ramp waveform (Eq 2);
//      otherwise: iterate a single Ceff with f = 1 and emit one ramp.
//
// The emitted waveform lives in net time: t = 0 is the input's 50 %
// crossing, and the waveform's own 50 % crossing sits at the cell table's
// delay for load Ceff1 — i.e. the model is exactly what a library-based
// static timing engine can compute without any SPICE run.
#ifndef RLCEFF_CORE_DRIVER_MODEL_H
#define RLCEFF_CORE_DRIVER_MODEL_H

#include "charlib/characterize.h"
#include "core/ceff.h"
#include "core/criteria.h"
#include "moments/admittance.h"
#include "moments/rational.h"
#include "net/net.h"
#include "tech/wire.h"
#include "waveform/pwl.h"

namespace rlceff::core {

// How the plateau between the two ramps is absorbed (Sec. 4.2).
enum class PlateauHandling {
  modified_second_ramp,  // Eq 8: stretch Tr2 by the plateau (paper's default)
  flat_step,             // explicit flat piece between the ramps
  none,                  // ignore the plateau (ablation baseline)
};

enum class ModelSelection {
  automatic,       // Eq 9 decides (paper flow)
  force_one_ramp,  // baseline used in Table 1 / Fig 7 comparisons
  force_two_ramp,
};

struct DriverModelOptions {
  PlateauHandling plateau = PlateauHandling::modified_second_ramp;
  ModelSelection selection = ModelSelection::automatic;
  CriteriaOptions criteria;
  CeffIterationOptions iteration;
  // Sec. 5: Rs is extracted at the total capacitance; the ablation flips
  // this to re-extract at the converged Ceff1.
  bool rs_at_total_cap = true;
  // Ablation A3: add a third ramp modeling the second reflection.
  bool three_ramp_extension = false;
  // Sec. 5 / ref [11]: append an exponential tail (the "gate resistor"
  // model) to one-ramp outputs whenever the slowest natural mode of the
  // Rs-plus-load system is slower than the table edge.  shielding_threshold
  // optionally restricts the tail to loads whose single Ceff shows real
  // shielding (Ceff < threshold * Ctotal); 1.0 leaves only the mode test.
  bool shielding_tail = true;
  double shielding_threshold = 1.0;
};

enum class ModelKind { one_ramp, two_ramp, three_ramp };

struct DriverOutputModel {
  ModelKind kind = ModelKind::one_ramp;
  double vdd = 0.0;

  // Line/driver quantities feeding the model.
  double rs = 0.0;  // Thevenin driver resistance [ohm]
  double z0 = 0.0;
  double tf = 0.0;  // time of flight [s]
  double f = 0.0;   // breakpoint fraction (Eq 1); 1 for one-ramp models
  moments::RationalAdmittance admittance{0.0, 0.0, 0.0, 0.0, 0.0};

  CeffIteration ceff1;  // two-ramp: first ramp; one-ramp: the single Ceff
  CeffIteration ceff2;  // two-ramp only
  CeffIteration ceff3;  // three-ramp extension only
  double f2 = 0.0;            // second breakpoint (three-ramp extension)
  double plateau_time = 0.0;  // 2*tf - Tr1, clamped at 0 [s]
  double tr2_new = 0.0;       // Eq 8 stretched second ramp [s]

  InductanceCriteria criteria;

  // One-ramp models only: the ref-[11] exponential tail, when applied.
  bool has_shielding_tail = false;
  double tail_tau = 0.0;  // time constant of the slowest natural mode [s]

  // Modeled driver output, anchored so t = 0 is the input 50 % crossing.
  wave::Pwl waveform;
  double t50 = 0.0;  // the waveform's 50 % crossing (the modeled gate delay)
};

// Runs the full flow for any net::Net (uniform lines, multi-section routes,
// branched trees).  The breakpoint, plateau and criteria use the dominant
// root-to-leaf path (net::Net::metrics); the admittance moments use the whole
// net (moments::net_admittance).
DriverOutputModel model_driver_output(const charlib::CharacterizedDriver& driver,
                                      double input_slew, const net::Net& net,
                                      const DriverModelOptions& options = {});

// Uniform line with a far-end load: adapter over the net::Net flow.
DriverOutputModel model_driver_output(const charlib::CharacterizedDriver& driver,
                                      double input_slew,
                                      const tech::WireParasitics& wire,
                                      double c_load_far,
                                      const DriverModelOptions& options = {});

// RLC tree (receiver capacitances folded into the leaf branches): adapter
// over the net::Net flow via net::Net::from_tree.
DriverOutputModel model_driver_output(const charlib::CharacterizedDriver& driver,
                                      double input_slew,
                                      const moments::RlcBranch& net,
                                      const DriverModelOptions& options = {});

// Degraded floor of the api::Engine fidelity ladder: no moment fit, no
// fixed point, no transient — just the cell table evaluated at the net's
// total capacitance (the first admittance moment m1).  A few table lookups,
// deterministic, cannot fail to converge.  Documented envelope: Ceff <=
// Ctotal and the tables are monotone in load, so the estimate's delay and
// transition upper-bound the converged Ceff model's; concretely the result
// satisfies kind == one_ramp, ceff1 == {Ctotal, transition(Ctotal), 0,
// converged}, and t50 == driver.delay(input_slew, Ctotal) exactly.
DriverOutputModel estimate_driver_output_moments_only(
    const charlib::CharacterizedDriver& driver, double input_slew,
    const net::Net& net);

}  // namespace rlceff::core

#endif  // RLCEFF_CORE_DRIVER_MODEL_H
