#include "core/experiment.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace rlceff::core {

namespace {

// Sizes the horizon so even the slowest (weak driver, long line) case fully
// completes its 90 % crossing with margin.
double auto_t_stop(const ExperimentCase& c, const net::NetMetrics& metrics,
                   const tech::DeckOptions& deck) {
  return deck.t_start + c.input_slew +
         std::max(1e-9, settle_time(c.driver_size, metrics));
}

}  // namespace

double settle_time(double driver_size, const net::NetMetrics& metrics,
                   double extra_cap) {
  const double rs_estimate = 3.7e3 / driver_size;
  const double c_total =
      metrics.wire_capacitance + metrics.load_capacitance + extra_cap;
  return 6.0 * (rs_estimate + metrics.path_resistance) * c_total +
         4.0 * metrics.time_of_flight;
}

double pct_error(double model, double reference) {
  return 100.0 * util::relative_error(model, reference);
}

EdgeMetrics measure_edge(const wave::Waveform& w, double vdd, double t_reference) {
  const wave::EdgeTiming e = wave::measure_rising_edge(w, 0.0, vdd);
  return {e.t50 - t_reference, e.transition_10_90()};
}

ExperimentResult run_experiment(const tech::Technology& technology,
                                charlib::CellLibrary& library,
                                const ExperimentCase& scenario,
                                const ExperimentOptions& options) {
  ExperimentResult out;
  out.scenario = scenario;

  const net::NetMetrics metrics = scenario.net.metrics();
  tech::DeckOptions deck = options.deck;
  deck.t_stop = auto_t_stop(scenario, metrics, options.deck);

  // Reference ("HSPICE") run; the "far end" is the dominant-path leaf.
  const tech::Inverter cell{scenario.driver_size};
  tech::NetSimResult ref = tech::simulate_driver_net(
      technology, cell, scenario.input_slew, scenario.net, deck);
  const wave::Waveform& ref_far = ref.leaves.at(metrics.dominant_leaf);
  out.input_time_50 = ref.input_time_50;
  out.solver = ref.solver;
  out.ref_near = measure_edge(ref.near_end, technology.vdd, ref.input_time_50);
  out.ref_far = measure_edge(ref_far, technology.vdd, ref.input_time_50);

  // Library model (the paper's flow).
  const charlib::CharacterizedDriver& driver =
      library.ensure_driver(technology, scenario.driver_size, options.grid);
  out.model =
      model_driver_output(driver, scenario.input_slew, scenario.net, options.model);
  {
    const wave::Waveform w = out.model.waveform.to_waveform(
        out.model.waveform.end_time() + deck.t_stop);
    out.model_near = measure_edge(w, technology.vdd, 0.0);
  }

  if (options.include_far_end) {
    // Replay the modeled waveform through the net in absolute deck time.
    std::vector<std::pair<double, double>> pts = out.model.waveform.points();
    for (auto& [t, v] : pts) t += ref.input_time_50;
    // The source must start at 0 V from t = 0 for the DC operating point.
    if (pts.front().first > 0.0 && pts.front().second == 0.0) {
      // anchored waveforms always begin at 0 V; nothing to do
    }
    wave::Pwl absolute(std::move(pts));
    if (options.defer_far_end) {
      out.replay_deferred = true;
      out.replay_source = std::move(absolute);
      out.replay_t_stop = deck.t_stop;
      out.replay_dominant_leaf = metrics.dominant_leaf;
    } else {
      tech::NetSimResult replay =
          tech::simulate_source_net(absolute, scenario.net, deck);
      const wave::Waveform& replay_far = replay.leaves.at(metrics.dominant_leaf);
      out.model_far = measure_edge(replay_far, technology.vdd, ref.input_time_50);
      if (options.keep_waveforms) out.model_far_wave = replay_far;
    }
  }

  if (options.include_one_ramp) {
    DriverModelOptions one = options.model;
    one.selection = ModelSelection::force_one_ramp;
    // The paper's Table-1/Fig-7 baseline is a *pure* single ramp; keep the
    // ref-[11] tail out of the comparison column.
    one.shielding_tail = false;
    out.one_ramp =
        model_driver_output(driver, scenario.input_slew, scenario.net, one);
    const wave::Waveform w = out.one_ramp.waveform.to_waveform(
        out.one_ramp.waveform.end_time() + deck.t_stop);
    out.one_near = measure_edge(w, technology.vdd, 0.0);
  }

  if (options.keep_waveforms) {
    out.ref_near_wave = ref.near_end;
    out.ref_far_wave = ref_far;
  }
  return out;
}

}  // namespace rlceff::core
