// Shared experiment harness: one paper test case = one driver + interconnect
// configuration, simulated ("HSPICE" column) and modeled (two-ramp and
// one-ramp columns), with uniformly measured delay/slew.
//
// The interconnect is a net::Net, so the same harness sweeps uniform lines,
// multi-section (tapered) routes and branched trees.  The "far end" columns
// are measured at the dominant-path leaf (net::NetMetrics::dominant_leaf).
//
// All delays are 50 %-to-50 % from the input edge; slew is the raw 10-90 %
// transition at the probe.  The same measurement code runs on simulated and
// modeled waveforms, so model-vs-reference errors are apples to apples.
#ifndef RLCEFF_CORE_EXPERIMENT_H
#define RLCEFF_CORE_EXPERIMENT_H

#include <string>

#include "charlib/library.h"
#include "core/driver_model.h"
#include "net/net.h"
#include "tech/testbench.h"

namespace rlceff::core {

struct ExperimentCase {
  std::string label;
  double driver_size = 75.0;
  double input_slew = 100e-12;
  net::Net net;  // the interconnect the driver drives (see tech::line_net)
};

struct EdgeMetrics {
  double delay = 0.0;  // input 50 % -> probe 50 % [s]
  double slew = 0.0;   // probe 10 % -> 90 % [s]
};

// The one edge-measurement convention (rising edge, delay vs t_reference,
// raw 10-90 % slew) shared by the single-net and coupled harnesses.
EdgeMetrics measure_edge(const wave::Waveform& w, double vdd, double t_reference);

struct ExperimentOptions {
  tech::DeckOptions deck;          // simulator fidelity (t_stop auto-sized)
  DriverModelOptions model;        // paper flow controls
  bool include_one_ramp = true;    // also run the 1-ramp baseline
  bool include_far_end = true;     // replay the model at the far end
  bool keep_waveforms = false;     // retain sampled waveforms (figure benches)
  // Prepare the far-end replay instead of running it: the result carries the
  // absolute-time source and deck horizon (replay_* fields) so a batching
  // caller can group equal-topology replays and run them as one
  // shared-factorization block (api::Engine::run_batch).  Only meaningful
  // with include_far_end; model_far / model_far_wave stay unset.
  bool defer_far_end = false;
  // Grid used when a driver has to be characterized (tests shrink this).
  charlib::CharacterizationGrid grid = charlib::CharacterizationGrid::standard();
};

struct ExperimentResult {
  ExperimentCase scenario;

  EdgeMetrics ref_near;   // simulated driver output
  EdgeMetrics ref_far;    // simulated far end
  EdgeMetrics model_near; // measured on the modeled PWL
  EdgeMetrics model_far;  // modeled PWL replayed through the line
  EdgeMetrics one_near;   // one-ramp baseline at the driver output

  DriverOutputModel model;
  DriverOutputModel one_ramp;

  // Populated when keep_waveforms is set; times are absolute deck time.
  wave::Waveform ref_near_wave;
  wave::Waveform ref_far_wave;
  wave::Waveform model_far_wave;
  double input_time_50 = 0.0;

  // Backend that factored the reference deck (never `automatic`).
  sim::SolverKind solver = sim::SolverKind::automatic;

  // Deferred far-end replay (ExperimentOptions::defer_far_end): everything a
  // batching caller needs to run the replay later — the modeled waveform in
  // absolute deck time, the auto-sized horizon, and which leaf to measure.
  bool replay_deferred = false;
  wave::Pwl replay_source;
  double replay_t_stop = 0.0;
  std::size_t replay_dominant_leaf = 0;
};

// Runs the reference simulation and both models for one case.  The library
// caches driver characterizations across calls.
ExperimentResult run_experiment(const tech::Technology& technology,
                                charlib::CellLibrary& library,
                                const ExperimentCase& scenario,
                                const ExperimentOptions& options = {});

// Relative error helper used in the paper's tables: (model - ref) / ref.
double pct_error(double model, double reference);

// Settle-horizon heuristic shared by the single-net and coupled harnesses:
// six time constants of the estimated driver resistance plus the dominant
// path into the net's total charge, plus four times of flight.  extra_cap is
// charge beyond the net's own (e.g. attached coupling capacitance).
double settle_time(double driver_size, const net::NetMetrics& metrics,
                   double extra_cap = 0.0);

}  // namespace rlceff::core

#endif  // RLCEFF_CORE_EXPERIMENT_H
