#include "lint/diagnostic.h"

#include <array>

namespace rlceff::lint {

namespace {

struct CodeInfo {
  Code code;
  const char* name;
  const char* family;
  Severity severity;
};

constexpr std::array<CodeInfo, code_count> kCodeTable = {{
    {Code::empty_net, "empty_net", "connectivity", Severity::error},
    {Code::empty_branch, "empty_branch", "connectivity", Severity::error},
    {Code::zero_section, "zero_section", "connectivity", Severity::error},
    {Code::duplicate_probe, "duplicate_probe", "connectivity", Severity::error},
    {Code::probe_missing, "probe_missing", "connectivity", Severity::error},
    {Code::floating_node, "floating_node", "connectivity", Severity::warn},
    {Code::unreachable_node, "unreachable_node", "connectivity", Severity::error},
    {Code::nonfinite_value, "nonfinite_value", "physicality", Severity::error},
    {Code::nonpositive_resistance, "nonpositive_resistance", "physicality",
     Severity::error},
    {Code::nonpositive_capacitance, "nonpositive_capacitance", "physicality",
     Severity::error},
    {Code::negative_inductance, "negative_inductance", "physicality",
     Severity::error},
    {Code::negative_load, "negative_load", "physicality", Severity::error},
    {Code::no_capacitance, "no_capacitance", "physicality", Severity::error},
    {Code::mutual_overcoupled, "mutual_overcoupled", "physicality",
     Severity::error},
    {Code::mutual_near_limit, "mutual_near_limit", "physicality", Severity::warn},
    {Code::coupling_dominates_ground, "coupling_dominates_ground", "physicality",
     Severity::warn},
    {Code::solver_advisory, "solver_advisory", "conditioning", Severity::info},
    {Code::extreme_stiffness, "extreme_stiffness", "conditioning", Severity::warn},
    {Code::extreme_dynamic_range, "extreme_dynamic_range", "conditioning",
     Severity::warn},
    {Code::inductance_screened, "inductance_screened", "model", Severity::info},
    {Code::inductance_significant, "inductance_significant", "model",
     Severity::info},
    {Code::moment_mismatch, "moment_mismatch", "model", Severity::error},
    {Code::miller_unsafe, "miller_unsafe", "model", Severity::warn},
    {Code::convergence_risk, "convergence_risk", "model", Severity::info},
    {Code::invalid_input, "invalid_input", "input", Severity::error},
    {Code::tier_advisory, "tier_advisory", "tier", Severity::info},
    {Code::tier_pinned_mismatch, "tier_pinned_mismatch", "tier", Severity::warn},
}};

const CodeInfo& info(Code code) {
  const auto index = static_cast<std::size_t>(code);
  return kCodeTable[index < kCodeTable.size() ? index : kCodeTable.size() - 1];
}

}  // namespace

const char* to_string(Code code) { return info(code).name; }

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::info: return "info";
    case Severity::warn: return "warn";
    case Severity::error: return "error";
  }
  return "error";
}

const char* family(Code code) { return info(code).family; }

Severity default_severity(Code code) { return info(code).severity; }

std::span<const Code> all_codes() {
  static const std::array<Code, code_count> codes = [] {
    std::array<Code, code_count> out{};
    for (std::size_t k = 0; k < kCodeTable.size(); ++k) out[k] = kCodeTable[k].code;
    return out;
  }();
  return codes;
}

std::string format(const Diagnostic& diagnostic) {
  std::string out = to_string(diagnostic.severity);
  out += " [";
  out += family(diagnostic.code);
  out += ".";
  out += to_string(diagnostic.code);
  out += "]";
  // Path and message concatenate into the prose the pre-lint validation
  // errors used ("branch 'root/0' is empty (...)"), keeping every message
  // grep stable across the throw and report modes.
  if (!diagnostic.path.empty()) {
    out += " ";
    out += diagnostic.path;
  }
  out += " ";
  out += diagnostic.message;
  if (!diagnostic.hint.empty()) {
    out += " (fix: ";
    out += diagnostic.hint;
    out += ")";
  }
  return out;
}

Diagnostic make_diagnostic(Code code, std::string path, std::string message,
                           std::string hint) {
  Diagnostic d;
  d.code = code;
  d.severity = default_severity(code);
  d.path = std::move(path);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

DiagnosticError::DiagnosticError(Diagnostic diagnostic)
    : Error(format(diagnostic)), diagnostic_(std::move(diagnostic)) {}

}  // namespace rlceff::lint
