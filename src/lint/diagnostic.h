// Structured static diagnostics.
//
// A lint::Diagnostic is one finding about a net, coupled group, netlist, or
// parsed deck: a stable machine code, a severity, the element path (the same
// "section K of branch 'root/1'" naming the construction-time validation
// errors use), a human message, and an actionable fix hint.  The taxonomy is
// shared between the two reporting modes:
//   * throw-on-construct — net::Net / net::CoupledGroup / ckt validation
//     raises DiagnosticError carrying the first error-severity Diagnostic,
//   * lint-report — lint::lint_net / lint_group / lint_netlist collect every
//     finding into a lint::Report without throwing (and without simulating).
// Codes are append-only: tools and CI greps key on the spelled enum name
// (to_string), so renaming or reordering an existing code is a breaking
// change.
#ifndef RLCEFF_LINT_DIAGNOSTIC_H
#define RLCEFF_LINT_DIAGNOSTIC_H

#include <cstddef>
#include <span>
#include <string>

#include "util/error.h"

namespace rlceff::lint {

enum class Severity {
  info,   // advisory: solver choice, regime classification
  warn,   // suspicious but simulatable: near-limit coupling, stiffness
  error,  // would throw at construction or produce meaningless results
};

// Stable diagnostic codes, grouped by check family (family()).
enum class Code {
  // connectivity — the topology itself is broken
  empty_net,          // no sections and no branches at all
  empty_branch,       // a branch with no sections, children, or load
  zero_section,       // lumped section with R = L = C = 0
  duplicate_probe,    // two branches claim the same probe name
  probe_missing,      // a required probe target does not exist
  floating_node,      // netlist node with no conductive path to ground
  unreachable_node,   // netlist node no element connects to at all
  // physicality — element values outside the passive/physical range
  nonfinite_value,         // NaN/Inf parasitics
  nonpositive_resistance,  // distributed R <= 0 (or lumped R < 0)
  nonpositive_capacitance, // distributed/coupling C <= 0 (or lumped C < 0)
  negative_inductance,     // L < 0
  negative_load,           // receiver load < 0 or non-finite
  no_capacitance,          // net carries no charge storage anywhere
  mutual_overcoupled,      // |M| >= sqrt(La*Lb): k accumulates to >= 1
  mutual_near_limit,       // k within the configured margin of 1
  coupling_dominates_ground,  // coupling C dwarfs a section's ground C
  // conditioning — the compiled system will be expensive or fragile
  solver_advisory,        // predicted unknowns/bandwidth/nnz + backend choice
  extreme_stiffness,      // RC time constants spread past the warn ratio
  extreme_dynamic_range,  // element values spread past pivot-threshold comfort
  // model — the paper's Ceff regime assumptions
  inductance_screened,     // Eq 9: all criteria hold, RC modeling suffices
  inductance_significant,  // Eq 9: some criterion fails, RLC model required
  moment_mismatch,         // driving-point m1 disagrees with total capacitance
  miller_unsafe,           // coupling too large for Miller decoupling
  convergence_risk,        // an Eq 9 ratio sits within margin of its boundary
  // input — rejected before the taxonomy could classify it (deck/geometry
  // construction failures outside the structured checks)
  invalid_input,
  // tier — multi-fidelity cascade routing predictions (src/tier/)
  tier_advisory,         // predicted routed tier under the requested policy
  tier_pinned_mismatch,  // a forced tier the topology's screen would refuse
};

inline constexpr std::size_t code_count =
    static_cast<std::size_t>(Code::tier_pinned_mismatch) + 1;

// The spelled enum name ("nonpositive_resistance"); stable across releases.
const char* to_string(Code code);
const char* to_string(Severity severity);
// Check family: "connectivity", "physicality", "conditioning", "model",
// "input", "tier".
const char* family(Code code);
// The severity a code carries unless a check explicitly overrides it.
Severity default_severity(Code code);
// Every code, in enum order (test iteration / doc table generation).
std::span<const Code> all_codes();

struct Diagnostic {
  Code code = Code::invalid_input;
  Severity severity = Severity::error;
  std::string path;     // element path, "" when the finding is net-global
  std::string message;  // human-readable, keeps the construction-error naming
  std::string hint;     // actionable fix, "" when none applies
};

// "error [physicality.nonpositive_resistance] section 0 of branch 'root':
//  ... (fix: ...)"
std::string format(const Diagnostic& diagnostic);

// Construction helper: severity defaults from the code.
Diagnostic make_diagnostic(Code code, std::string path, std::string message,
                           std::string hint = "");

// The throw-on-construct face of the taxonomy: carries the Diagnostic that
// a validating constructor refused.  Derives from Error so every existing
// catch site (Engine per-slot isolation, CLI build loop, oracles matching
// message substrings) keeps working unchanged.
class DiagnosticError : public Error {
public:
  explicit DiagnosticError(Diagnostic diagnostic);
  const Diagnostic& diagnostic() const { return diagnostic_; }
  Code code() const { return diagnostic_.code; }

private:
  Diagnostic diagnostic_;
};

// ensure()-style check that raises DiagnosticError instead of plain Error.
inline void ensure_diag(bool cond, Code code, const std::string& path,
                        const std::string& message, const std::string& hint = "") {
  if (!cond) throw DiagnosticError(make_diagnostic(code, path, message, hint));
}

}  // namespace rlceff::lint

#endif  // RLCEFF_LINT_DIAGNOSTIC_H
