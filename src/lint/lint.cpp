#include "lint/lint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <utility>

#include "circuit/builders.h"
#include "circuit/mna.h"
#include "circuit/mosfet.h"
#include "circuit/netlist.h"
#include "moments/admittance.h"
#include "sim/transient.h"
#include "tech/technology.h"
#include "tier/router.h"

namespace rlceff::lint {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

// --------------------------------------------------------------- report ---

void collect_probes(const net::Branch& branch, std::set<std::string>& names) {
  if (!branch.probe.empty()) names.insert(branch.probe);
  for (const net::Branch& child : branch.children) collect_probes(child, names);
}

void check_probes(const net::Branch& root, const Options& options,
                  std::vector<Diagnostic>& out) {
  if (options.require_probes.empty()) return;
  std::set<std::string> names;
  collect_probes(root, names);
  for (const std::string& wanted : options.require_probes) {
    if (!names.count(wanted)) {
      out.push_back(make_diagnostic(
          Code::probe_missing, "probe '" + wanted + "'",
          "no branch carries this probe name",
          "name a branch far end '" + wanted + "' or drop it from the request"));
    }
  }
}

void collect_sections(const net::Branch& branch, std::vector<net::Section>& out) {
  out.insert(out.end(), branch.sections.begin(), branch.sections.end());
  for (const net::Branch& child : branch.children) collect_sections(child, out);
}

void collect_loads(const net::Branch& branch, std::vector<double>& out) {
  if (branch.c_load > 0.0) out.push_back(branch.c_load);
  for (const net::Branch& child : branch.children) collect_loads(child, out);
}

// ---------------------------------------------------------- conditioning ---

// max/min ratio over the positive values of one element quantity.
double value_range(const std::vector<double>& values) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (double v : values) {
    if (v <= 0.0) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi > 0.0 && std::isfinite(lo) ? hi / lo : 1.0;
}

void check_value_spread(const std::vector<net::Section>& sections,
                        const std::vector<double>& loads, const Options& options,
                        std::vector<Diagnostic>& out) {
  // Stiffness: the spread of per-section RC time constants bounds the spread
  // of eigenvalues a fixed-step integrator must straddle.
  std::vector<double> taus;
  for (const net::Section& s : sections) {
    if (s.resistance > 0.0 && s.capacitance > 0.0) {
      taus.push_back(s.resistance * s.capacitance);
    }
  }
  const double stiffness = value_range(taus);
  if (stiffness > options.stiffness_warn) {
    out.push_back(make_diagnostic(
        Code::extreme_stiffness, "",
        "section RC time constants span a " + fmt(stiffness) +
            "x ratio (warn threshold " + fmt(options.stiffness_warn) + "x)",
        "a fixed step resolving the fastest section crawls through the "
        "slowest; consider splitting the net or relaxing the step"));
  }
  // Dynamic range per unit: a wide spread within one element kind is what
  // pushes LU pivots toward the threshold, not the ohm-vs-farad scale gap
  // (the MNA scaling absorbs that).
  std::vector<double> rs, ls, cs;
  for (const net::Section& s : sections) {
    rs.push_back(s.resistance);
    ls.push_back(s.inductance);
    cs.push_back(s.capacitance);
  }
  cs.insert(cs.end(), loads.begin(), loads.end());
  const double spread =
      std::max({value_range(rs), value_range(ls), value_range(cs)});
  if (spread > options.dynamic_range_warn) {
    out.push_back(make_diagnostic(
        Code::extreme_dynamic_range, "",
        "element values span a " + fmt(spread) + "x ratio (warn threshold " +
            fmt(options.dynamic_range_warn) + "x)",
        "values this far apart risk pivot-threshold trouble in the LU; check "
        "the extraction for unit mistakes"));
  }
}

void advisory_for(const ckt::Netlist& netlist, std::vector<Diagnostic>& out) {
  const ckt::MnaStructure structure(netlist);
  if (structure.unknown_count() == 0) return;
  const sim::SolverKind kind = sim::selected_solver(netlist);
  out.push_back(make_diagnostic(
      Code::solver_advisory, "",
      "predicted deck: " + std::to_string(structure.unknown_count()) +
          " unknowns, RCM half-bandwidth " + std::to_string(structure.bandwidth()) +
          ", " + std::to_string(structure.pattern_nonzeros()) +
          " pattern nonzeros -> " + sim::to_string(kind) + " solver"));
}

void check_net_conditioning(const net::Net& net, const Options& options,
                            std::vector<Diagnostic>& out) {
  ckt::Netlist netlist;
  const ckt::NodeId in = netlist.node("in");
  (void)ckt::append_net(netlist, in, net, options.segments);
  advisory_for(netlist, out);
}

// ----------------------------------------------------------------- model ---

struct RegimeRatio {
  const char* name;
  double ratio;  // boundary sits at 1
};

void check_net_model(const net::Net& net, const Options& options,
                     std::vector<Diagnostic>& out) {
  // m1 == Ctotal: the first driving-point moment of any RLC load is its total
  // capacitance; disagreement means the moment expansion and the topology
  // walk see different nets (an extraction/IR bug, never a regime matter).
  const util::Series admittance = moments::net_admittance(net, 3);
  const double m1 = admittance[1];
  const double ctotal = net.total_capacitance();
  if (std::abs(m1 - ctotal) > options.moment_rel_tol * std::max(ctotal, 1e-21)) {
    out.push_back(make_diagnostic(
        Code::moment_mismatch, "",
        "driving-point moment m1 = " + fmt(m1) + " F disagrees with the total "
            "capacitance " + fmt(ctotal) + " F",
        "the moment expansion and the branch walk disagree about this net; "
        "re-extract it"));
  }

  net::NetMetrics metrics;
  try {
    metrics = net.metrics();
  } catch (const Error&) {
    // No root-to-leaf path carries both L and C: the net is RC by
    // construction and the paper's single-Ceff flow applies directly.
    out.push_back(make_diagnostic(
        Code::inductance_screened, "",
        "no root-to-leaf path carries both inductance and capacitance; the "
        "net is RC and one effective capacitance suffices"));
    return;
  }

  if (!(options.driver_resistance > 0.0 && options.input_slew > 0.0)) return;

  const double rs = options.driver_resistance;
  const double tr1 = options.input_slew;  // static proxy for the first ramp
  const core::InductanceCriteria criteria = core::evaluate_criteria(
      metrics.z0, metrics.time_of_flight, metrics.path_resistance,
      metrics.wire_capacitance, metrics.path_load, rs, tr1, options.criteria);

  if (criteria.significant()) {
    out.push_back(make_diagnostic(
        Code::inductance_significant, "",
        "all four Eq 9 screens hold (load small, line low-loss, driver fast, "
        "ramp beats flight); transmission-line effects matter and the "
        "two-ramp RLC model applies"));
  } else {
    std::string failed;
    if (!criteria.load_small) failed += " load-dominated;";
    if (!criteria.line_low_loss) failed += " line too lossy;";
    if (!criteria.driver_fast) failed += " driver too weak;";
    if (!criteria.ramp_beats_flight) failed += " ramp slower than flight;";
    failed.pop_back();
    out.push_back(make_diagnostic(
        Code::inductance_screened, "",
        "Eq 9 screens out inductance (" + failed.substr(1) +
            "); RC modeling with one effective capacitance suffices"));
  }

  // Convergence risk: a net sitting within margin of a regime boundary can
  // flip between the one-ramp and two-ramp models across Ceff iterations —
  // the pattern behind slow fixed-point convergence.
  const RegimeRatio ratios[] = {
      {"load/line-capacitance",
       metrics.wire_capacitance > 0.0
           ? metrics.path_load /
                 (options.criteria.load_cap_ratio_max * metrics.wire_capacitance)
           : 0.0},
      {"loss/2Z0", metrics.path_resistance / (2.0 * metrics.z0)},
      {"Rs/Z0", rs / metrics.z0},
      {"Tr1/2tf", tr1 / (2.0 * metrics.time_of_flight)},
  };
  std::string risky;
  for (const RegimeRatio& r : ratios) {
    if (std::abs(r.ratio - 1.0) <= options.regime_margin) {
      risky += std::string(risky.empty() ? "" : ", ") + r.name + " = " +
               fmt(r.ratio);
    }
  }
  if (!risky.empty()) {
    out.push_back(make_diagnostic(
        Code::convergence_risk, "",
        "within " + fmt(100.0 * options.regime_margin) +
            "% of an Eq 9 regime boundary (" + risky +
            "); the Ceff fixed point may converge slowly",
        "expect extra iterations or pin the model with force_one_ramp/"
        "force_two_ramp"));
  }
}

// ------------------------------------------------------------------ tier ---

// Predicts the tier the multi-fidelity cascade would route this net to under
// the caller's policy — the static (table-free) version of the router's
// screen, with the input slew standing in for the driver output transition.
// A forced tier the screen would refuse is a warning: the pin will be
// honored, but the calibrated envelope for that tier no longer covers the
// result.
void check_net_tier(const net::Net& net, const Options& options,
                    std::vector<Diagnostic>& out) {
  using tier::TierPolicy;
  if (options.tier_policy == TierPolicy::reference) return;
  const tier::Admission admission = tier::admit_analytical_static(
      net, options.driver_resistance, options.input_slew);
  const tier::Tier predicted = tier::route(options.tier_policy, admission, false);
  std::string message = std::string("policy ") + tier::to_string(options.tier_policy) +
                        " routes this net to tier " + tier::tier_letter(predicted) +
                        " (" + tier::to_string(predicted) + ")";
  if (!admission.ok) {
    message += std::string("; the tier A screen refuses it: ") + admission.reason;
  }
  out.push_back(make_diagnostic(Code::tier_advisory, "", std::move(message)));
  if (!admission.ok && options.tier_policy == TierPolicy::force_analytical) {
    out.push_back(make_diagnostic(
        Code::tier_pinned_mismatch, "",
        std::string("the request pins tier A (force_analytical) but the static "
                    "screen disqualifies this topology: ") +
            admission.reason,
        "let TierPolicy::balanced escalate, or pin tier B (force_ceff)"));
  }
}

bool has_error(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(), [](const Diagnostic& d) {
    return d.severity == Severity::error;
  });
}

}  // namespace

bool Report::has(Code code) const { return find(code) != nullptr; }

const Diagnostic* Report::find(Code code) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::size_t Report::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

Severity Report::worst() const {
  Severity w = Severity::info;
  for (const Diagnostic& d : diagnostics) w = std::max(w, d.severity);
  return w;
}

Report lint_branch(const net::Branch& root, const Options& options) {
  Report report;
  check_branch_tree(root, report.diagnostics);
  check_probes(root, options, report.diagnostics);
  return report;
}

Report lint_net(const net::Net& net, const Options& options) {
  Report report;
  if (net.empty()) {
    report.diagnostics.push_back(
        make_diagnostic(Code::empty_net, "", "empty net (no sections and no branches)",
                        "a net needs at least one wire section"));
    return report;
  }
  check_branch_tree(net.root(), report.diagnostics);
  check_probes(net.root(), options, report.diagnostics);
  if (has_error(report.diagnostics)) return report;

  if (options.conditioning) {
    std::vector<net::Section> sections;
    std::vector<double> loads;
    collect_sections(net.root(), sections);
    collect_loads(net.root(), loads);
    check_value_spread(sections, loads, options, report.diagnostics);
    check_net_conditioning(net, options, report.diagnostics);
  }
  if (options.model) {
    check_net_model(net, options, report.diagnostics);
    check_net_tier(net, options, report.diagnostics);
  }
  return report;
}

Report lint_group(const net::CoupledGroup& group, const Options& options) {
  Report report;
  if (group.empty()) {
    report.diagnostics.push_back(make_diagnostic(
        Code::empty_net, "", "empty coupled group (no nets)",
        "add at least one net before linting or simulating the group"));
    return report;
  }

  // Member nets first, with a "net 'label'" path prefix; the group-level
  // conditioning pass below replaces the per-net one.
  Options member = options;
  member.require_probes.clear();
  member.conditioning = false;
  for (std::size_t k = 0; k < group.size(); ++k) {
    Report sub = lint_net(group.net_at(k), member);
    for (Diagnostic& d : sub.diagnostics) {
      const std::string prefix = "net '" + group.label_at(k) + "'";
      d.path = d.path.empty() ? prefix : prefix + ", " + d.path;
      report.diagnostics.push_back(std::move(d));
    }
  }

  // Probe targets may live on any member.
  if (!options.require_probes.empty()) {
    std::set<std::string> names;
    for (std::size_t k = 0; k < group.size(); ++k) {
      collect_probes(group.net_at(k).root(), names);
    }
    for (const std::string& wanted : options.require_probes) {
      if (!names.count(wanted)) {
        report.diagnostics.push_back(make_diagnostic(
            Code::probe_missing, "probe '" + wanted + "'",
            "no net in the group carries this probe name",
            "name a branch far end '" + wanted + "' or drop it from the request"));
      }
    }
  }

  // Coupling physicality: accumulated k per section pair must stay clear of
  // the |M| = sqrt(La*Lb) passivity wall, not just below it.
  auto pair_name = [&](const net::SectionRef& a, const net::SectionRef& b) {
    return "mutual inductance between '" + group.label_at(a.net) + "' section " +
           std::to_string(a.section) + " and '" + group.label_at(b.net) +
           "' section " + std::to_string(b.section);
  };
  using PairKey = std::pair<std::pair<std::size_t, std::size_t>,
                            std::pair<std::size_t, std::size_t>>;
  std::map<PairKey, double> total_k;
  std::map<PairKey, std::pair<net::SectionRef, net::SectionRef>> pair_refs;
  for (const net::MutualCoupling& m : group.mutual_couplings()) {
    std::pair<std::size_t, std::size_t> ka{m.a.net, m.a.section};
    std::pair<std::size_t, std::size_t> kb{m.b.net, m.b.section};
    const PairKey key = ka < kb ? PairKey{ka, kb} : PairKey{kb, ka};
    total_k[key] += m.k;
    pair_refs.emplace(key, std::make_pair(m.a, m.b));
  }
  for (const auto& [key, total] : total_k) {
    const auto& [a, b] = pair_refs.at(key);
    if (total >= 1.0) {
      report.diagnostics.push_back(make_diagnostic(
          Code::mutual_overcoupled, pair_name(a, b),
          "accumulates to coupling coefficient " + fmt(total) +
              " >= 1 (non-passive)",
          "|M| must stay below sqrt(La*Lb); reduce k or split the span"));
    } else if (total > 1.0 - options.mutual_margin) {
      report.diagnostics.push_back(make_diagnostic(
          Code::mutual_near_limit, pair_name(a, b),
          "accumulates to coupling coefficient " + fmt(total) + ", within " +
              fmt(options.mutual_margin) + " of the passivity limit 1",
          "near-singular inductance matrices condition poorly; re-check the "
          "extracted k"));
    }
  }

  // Coupling caps vs the ground capacitance of the section they load.
  std::vector<std::vector<double>> section_caps(group.size());
  std::vector<std::vector<double>> coupling_on(group.size());
  for (std::size_t k = 0; k < group.size(); ++k) {
    std::vector<net::Section> sections;
    collect_sections(group.net_at(k).root(), sections);
    section_caps[k].reserve(sections.size());
    for (const net::Section& s : sections) section_caps[k].push_back(s.capacitance);
    coupling_on[k].assign(sections.size(), 0.0);
  }
  for (const net::CouplingCap& cc : group.coupling_caps()) {
    for (const net::SectionRef& r : {cc.a, cc.b}) {
      if (r.net < coupling_on.size() && r.section < coupling_on[r.net].size()) {
        coupling_on[r.net][r.section] += cc.capacitance;
      }
    }
  }
  for (std::size_t n = 0; n < group.size(); ++n) {
    for (std::size_t s = 0; s < coupling_on[n].size(); ++s) {
      const double ground = section_caps[n][s];
      const double coupled = coupling_on[n][s];
      if (ground > 0.0 && coupled > options.coupling_ratio_warn * ground) {
        report.diagnostics.push_back(make_diagnostic(
            Code::coupling_dominates_ground,
            "'" + group.label_at(n) + "' section " + std::to_string(s),
            "carries " + fmt(coupled) + " F of coupling capacitance against " +
                fmt(ground) + " F to ground",
            "crosstalk will dominate this span's response; expect strong "
            "aggressor sensitivity"));
      }
    }
  }

  if (has_error(report.diagnostics)) return report;

  // Miller applicability: the decoupled single-net model replaces coupling
  // caps with Miller-scaled grounded caps, which tracks the coupled system
  // only while coupling stays a modest share of the victim's total load.
  if (options.model) {
    for (std::size_t k = 0; k < group.size(); ++k) {
      const double coupling = group.coupling_capacitance_at(k);
      const double total = group.net_at(k).total_capacitance();
      if (total > 0.0 && coupling > options.miller_coupling_ratio * total) {
        report.diagnostics.push_back(make_diagnostic(
            Code::miller_unsafe, "net '" + group.label_at(k) + "'",
            "coupling capacitance " + fmt(coupling) + " F exceeds " +
                fmt(options.miller_coupling_ratio) + "x of its " + fmt(total) +
                " F total; Miller decoupling loses accuracy here",
            "validate this victim against the full coupled simulation "
            "(reference mode) before trusting the decoupled model"));
      }
    }
  }

  if (options.conditioning) {
    std::vector<net::Section> all_sections;
    std::vector<double> all_loads;
    for (std::size_t k = 0; k < group.size(); ++k) {
      collect_sections(group.net_at(k).root(), all_sections);
      collect_loads(group.net_at(k).root(), all_loads);
    }
    check_value_spread(all_sections, all_loads, options, report.diagnostics);

    ckt::Netlist netlist;
    std::vector<ckt::NodeId> from;
    from.reserve(group.size());
    for (std::size_t k = 0; k < group.size(); ++k) {
      from.push_back(netlist.node("in_" + group.label_at(k)));
    }
    (void)ckt::append_coupled_group(netlist, from, group, options.segments);
    advisory_for(netlist, report.diagnostics);
  }
  return report;
}

Report lint_netlist(const ckt::Netlist& netlist, const Options& options) {
  Report report;
  const std::size_t n = netlist.node_count();

  // Union-find over two views of the element graph: every element (is the
  // node attached to anything at all?) and the DC-conductive subset (does a
  // bias current have a path to ground, or does only gmin hold the node?).
  struct UnionFind {
    std::vector<std::size_t> parent;
    explicit UnionFind(std::size_t n) : parent(n) {
      std::iota(parent.begin(), parent.end(), std::size_t{0});
    }
    std::size_t find(std::size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    }
    void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
  };
  UnionFind all(n), conductive(n);
  std::vector<std::size_t> degree(n, 0);
  auto attach = [&](ckt::NodeId a, ckt::NodeId b, bool conducts) {
    ++degree[a];
    ++degree[b];
    all.unite(a, b);
    if (conducts) conductive.unite(a, b);
  };
  for (const auto& r : netlist.resistors()) attach(r.a, r.b, true);
  for (const auto& l : netlist.inductors()) attach(l.a, l.b, true);
  for (const auto& c : netlist.capacitors()) attach(c.a, c.b, false);
  for (const auto& v : netlist.vsources()) attach(v.pos, v.neg, true);
  for (const auto& m : netlist.mosfets()) {
    attach(m.drain, m.source, true);  // the channel conducts
    attach(m.gate, m.drain, false);   // the gate only couples capacitively
  }

  const std::size_t ground_all = all.find(ckt::ground);
  const std::size_t ground_conductive = conductive.find(ckt::ground);
  for (std::size_t node = 1; node < n; ++node) {
    const std::string where = "node " + std::to_string(node);
    if (degree[node] == 0) {
      report.diagnostics.push_back(make_diagnostic(
          Code::unreachable_node, where, "has no elements attached",
          "remove the node or wire it into the deck"));
    } else if (all.find(node) != ground_all) {
      report.diagnostics.push_back(make_diagnostic(
          Code::unreachable_node, where,
          "is disconnected from ground (isolated subcircuit)",
          "every subcircuit needs a reference connection"));
    } else if (conductive.find(node) != ground_conductive) {
      report.diagnostics.push_back(make_diagnostic(
          Code::floating_node, where,
          "has no DC path to ground (capacitive-only node)",
          "its operating point rests on gmin; add a leakage path if this is "
          "not intended"));
    }
  }

  if (options.conditioning) {
    std::vector<double> rs, ls, cs;
    for (const auto& r : netlist.resistors()) rs.push_back(r.resistance);
    for (const auto& l : netlist.inductors()) ls.push_back(l.inductance);
    for (const auto& c : netlist.capacitors()) cs.push_back(c.capacitance);
    const double spread =
        std::max({value_range(rs), value_range(ls), value_range(cs)});
    if (spread > options.dynamic_range_warn) {
      report.diagnostics.push_back(make_diagnostic(
          Code::extreme_dynamic_range, "",
          "element values span a " + fmt(spread) + "x ratio (warn threshold " +
              fmt(options.dynamic_range_warn) + "x)",
          "values this far apart risk pivot-threshold trouble in the LU; "
          "check the extraction for unit mistakes"));
    }
    advisory_for(netlist, report.diagnostics);
  }
  return report;
}

double estimate_driver_resistance(const tech::Technology& technology,
                                  double cell_size) {
  if (!(cell_size > 0.0)) return 0.0;
  const double width = cell_size * technology.w_unit;
  const double idsat =
      ckt::eval_nmos(technology.nmos, width, technology.vdd, technology.vdd).id;
  return idsat > 0.0 ? technology.vdd / (2.0 * idsat) : 0.0;
}

}  // namespace rlceff::lint
