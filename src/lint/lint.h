// Static analysis over nets, coupled groups, and netlists — every check the
// stack can run before (instead of) a single transient solve.
//
// Four check families (see diagnostic.h for the code taxonomy):
//   * connectivity / physicality — the structural core (structural.h): a
//     pure branch-tree walk costing nanoseconds per net.  This is the only
//     part the Engine admission screen runs, which is what keeps screening a
//     batch under 1% of its model-only runtime.
//   * conditioning — opt-in: compiles the net into a pattern-only deck and
//     reports the unknown count, RCM half-bandwidth, pattern nonzeros, and
//     the solver-selection heuristic's verdict (sim::selected_solver), plus
//     RC-stiffness and element-dynamic-range screens.
//   * model — opt-in: the paper's Eq 9 inductance-screening criteria from
//     NetMetrics (with a static driver-resistance / input-slew proxy for the
//     Rs / Tr1 terms), the m1 == Ctotal driving-point-moment consistency
//     check, Miller-decoupling applicability, and convergence-risk flags for
//     nets sitting within margin of a regime boundary.
// lint_* functions never simulate and never throw on findings — a broken
// net yields error diagnostics, not exceptions.
#ifndef RLCEFF_LINT_LINT_H
#define RLCEFF_LINT_LINT_H

#include <string>
#include <vector>

#include "core/criteria.h"
#include "lint/diagnostic.h"
#include "lint/structural.h"
#include "net/coupled.h"
#include "net/net.h"
#include "tier/tier.h"

namespace rlceff::ckt {
class Netlist;
}
namespace rlceff::tech {
struct Technology;
}

namespace rlceff::lint {

struct Options {
  // Pass selection.  The structural (connectivity + physicality) core is
  // always on; these enable the deeper passes that compile decks / expand
  // moments and therefore cost microseconds instead of nanoseconds.
  bool conditioning = true;
  bool model = true;

  // Probe names the caller will read waveforms from; absent ones are
  // probe_missing errors.
  std::vector<std::string> require_probes;

  // physicality thresholds
  double mutual_margin = 0.05;       // warn when accumulated k > 1 - margin
  double coupling_ratio_warn = 1.0;  // warn when a section's attached coupling
                                     // C exceeds this multiple of its ground C

  // conditioning
  std::size_t segments = 120;        // discretization of the advisory deck
                                     // (tech::DeckOptions default)
  double stiffness_warn = 1e8;       // max/min section RC time-constant ratio
  double dynamic_range_warn = 1e9;   // max/min per-unit element-value ratio

  // model
  double moment_rel_tol = 1e-6;        // m1 vs Ctotal relative tolerance
  double miller_coupling_ratio = 0.5;  // coupling / total cap bound for Miller
  core::CriteriaOptions criteria;      // Eq 9 thresholds
  double regime_margin = 0.10;         // convergence-risk band around Eq 9
                                       // boundaries (relative)

  // Driver context for the Eq 9 screen.  Zero skips the screen (the lint
  // pass has no driver to reason about).  The Engine and CLI fill these from
  // the request: rs from estimate_driver_resistance, tr1 from the input slew
  // — a static proxy for the converged first-ramp time the dynamic flow
  // iterates to (documented admission-time approximation).
  double driver_resistance = 0.0;  // Thevenin estimate [ohm]
  double input_slew = 0.0;         // Tr1 proxy [s]

  // Tier routing prediction (model pass, needs the driver context above):
  // emits tier_advisory with the tier the static screen
  // (tier::admit_analytical_static) predicts the cascade would route this
  // net to under `tier_policy`, and tier_pinned_mismatch when a forced
  // policy pins a tier the screen would refuse.  The default policy
  // (reference) skips the prediction — no cascade, nothing to predict.
  tier::TierPolicy tier_policy = tier::TierPolicy::reference;
};

struct Report {
  std::vector<Diagnostic> diagnostics;

  bool has(Code code) const;
  const Diagnostic* find(Code code) const;
  std::size_t count(Severity severity) const;
  // No error-severity findings (warn/info may be present).
  bool clean() const { return count(Severity::error) == 0; }
  // info when empty.
  Severity worst() const;
};

// Lints a raw branch tree (structural core only; the tree may be one
// net::Net would refuse to construct — this is what the mutation oracles
// lint).
Report lint_branch(const net::Branch& root, const Options& options = {});

// Full per-net analysis.  The deeper passes run only when the structural
// core found no errors (metrics/moments on a broken net are meaningless).
Report lint_net(const net::Net& net, const Options& options = {});

// Group analysis: every member net is linted (paths gain a "net 'label'"
// prefix), then the coupling elements are screened (accumulated k vs 1,
// coupling-vs-ground capacitance, Miller applicability) and the coupled
// deck's conditioning is predicted.
Report lint_group(const net::CoupledGroup& group, const Options& options = {});

// Compiled-deck analysis: node connectivity (unreachable / DC-floating
// nodes) and conditioning of an arbitrary ckt::Netlist.
Report lint_netlist(const ckt::Netlist& netlist, const Options& options = {});

// Static Thevenin resistance of a size-X inverter driver: vdd / (2 Idsat)
// with Idsat from the alpha-power NMOS at vgs = vds = vdd.  The admission
// screen's stand-in for the dynamically extracted Rs.
double estimate_driver_resistance(const tech::Technology& technology,
                                  double cell_size);

}  // namespace rlceff::lint

#endif  // RLCEFF_LINT_LINT_H
