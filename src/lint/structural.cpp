#include "lint/structural.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace rlceff::lint {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

// Branch paths in diagnostics read "root", "root/1", "root/1/0", ...
std::string child_path(const std::string& parent, std::size_t index) {
  return parent + "/" + std::to_string(index);
}

std::string section_path(const std::string& branch_path, std::size_t index) {
  return "section " + std::to_string(index) + " of branch '" + branch_path + "'";
}

void check_section(const net::Section& s, const std::string& branch_path,
                   std::size_t index, std::vector<Diagnostic>& out) {
  const std::string where = section_path(branch_path, index);
  if (!(std::isfinite(s.resistance) && std::isfinite(s.inductance) &&
        std::isfinite(s.capacitance))) {
    out.push_back(make_diagnostic(Code::nonfinite_value, where,
                                  "has non-finite parasitics",
                                  "replace NaN/Inf parasitics with measured values"));
    return;  // value comparisons below are meaningless on NaN
  }
  if (s.inductance < 0.0) {
    out.push_back(make_diagnostic(
        Code::negative_inductance, where,
        "has negative inductance (" + fmt(s.inductance) + " H)",
        "inductance must be >= 0; drop the L term for an RC section"));
  }
  if (s.kind == net::SectionKind::distributed) {
    // Distributed sections are real wire: they must carry loss and charge
    // (this is what ckt::append_rlc_ladder requires to discretize them).
    if (s.resistance <= 0.0) {
      out.push_back(make_diagnostic(
          Code::nonpositive_resistance, where,
          "has zero/negative resistance (" + fmt(s.resistance) + " ohm)",
          "distributed wire needs R > 0; use a lumped section for ideal spans"));
    }
    if (s.capacitance <= 0.0) {
      out.push_back(make_diagnostic(
          Code::nonpositive_capacitance, where,
          "has zero/negative capacitance (" + fmt(s.capacitance) + " F)",
          "distributed wire needs C > 0; use a lumped section for ideal spans"));
    }
  } else {
    if (s.resistance < 0.0) {
      out.push_back(make_diagnostic(
          Code::nonpositive_resistance, where,
          "has negative resistance (" + fmt(s.resistance) + " ohm)",
          "resistance must be >= 0"));
    }
    if (s.capacitance < 0.0) {
      out.push_back(make_diagnostic(
          Code::nonpositive_capacitance, where,
          "has negative capacitance (" + fmt(s.capacitance) + " F)",
          "capacitance must be >= 0"));
    }
    if (s.resistance == 0.0 && s.inductance == 0.0 && s.capacitance == 0.0) {
      out.push_back(make_diagnostic(
          Code::zero_section, where, "is a zero-length segment (R = L = C = 0)",
          "remove the section or give it parasitics"));
    }
  }
}

// Probe names seen so far, as pointers into the tree.  Nets carry a handful
// of probes at most, so a linear scan beats hashing, and the inline buffer
// keeps the clean path (the admission screen's hot loop) free of heap
// allocations entirely — overflow to the vector only past eight probes.
struct ProbeNames {
  std::array<const std::string*, 8> inline_names{};
  std::size_t inline_count = 0;
  std::vector<const std::string*> overflow;

  // True when `probe` was already recorded; records it otherwise.
  bool seen(const std::string& probe) {
    for (std::size_t k = 0; k < inline_count; ++k) {
      if (*inline_names[k] == probe) return true;
    }
    for (const std::string* p : overflow) {
      if (*p == probe) return true;
    }
    if (inline_count < inline_names.size()) {
      inline_names[inline_count++] = &probe;
    } else {
      overflow.push_back(&probe);
    }
    return false;
  }
};

void check_branch(const net::Branch& branch, const std::string& path,
                  ProbeNames& probe_names,
                  std::vector<Diagnostic>& out) {
  // A branch contributing no wire, no fan-out, and no load would compile to
  // a phantom leaf at its parent junction.
  if (branch.sections.empty() && branch.children.empty() && !(branch.c_load > 0.0)) {
    out.push_back(make_diagnostic(
        Code::empty_branch, "branch '" + path + "'",
        "is empty (no sections, children, or load)",
        "remove the dangling branch or give it sections/children/a load"));
  }
  for (std::size_t k = 0; k < branch.sections.size(); ++k) {
    check_section(branch.sections[k], path, k, out);
  }
  if (!(std::isfinite(branch.c_load) && branch.c_load >= 0.0)) {
    out.push_back(make_diagnostic(
        Code::negative_load, "branch '" + path + "'",
        "has a negative/non-finite load (" + fmt(branch.c_load) + " F)",
        "receiver loads must be finite and >= 0"));
  }
  if (!branch.probe.empty() && probe_names.seen(branch.probe)) {
    out.push_back(make_diagnostic(
        Code::duplicate_probe, "branch '" + path + "'",
        "duplicate probe name '" + branch.probe + "'",
        "probe names address waveforms and must be unique per net"));
  }
  for (std::size_t k = 0; k < branch.children.size(); ++k) {
    check_branch(branch.children[k], child_path(path, k), probe_names, out);
  }
}

double branch_capacitance(const net::Branch& branch) {
  double c = branch.c_load;
  for (const net::Section& s : branch.sections) c += s.capacitance;
  for (const net::Branch& child : branch.children) c += branch_capacitance(child);
  return c;
}

}  // namespace

void check_branch_tree(const net::Branch& root, std::vector<Diagnostic>& out) {
  if (root.sections.empty() && root.children.empty()) {
    out.push_back(make_diagnostic(Code::empty_net, "",
                                  "empty net (no sections and no branches)",
                                  "a net needs at least one wire section"));
    return;
  }
  ProbeNames probe_names;
  check_branch(root, "root", probe_names, out);
  if (!(branch_capacitance(root) > 0.0)) {
    out.push_back(make_diagnostic(Code::no_capacitance, "",
                                  "net has no capacitance",
                                  "add section capacitance or a receiver load"));
  }
}

void validate_branch_tree(const net::Branch& root) {
  std::vector<Diagnostic> findings;
  check_branch_tree(root, findings);
  for (Diagnostic& d : findings) {
    if (d.severity == Severity::error) throw DiagnosticError(std::move(d));
  }
}

}  // namespace rlceff::lint
