// Structural (connectivity + physicality) checks over a net::Branch tree.
//
// This is the throw-free core both faces of the taxonomy share:
//   * net::Net's constructor calls validate_branch_tree(), which raises
//     DiagnosticError on the first error-severity finding — same walk order,
//     same element naming, same message wording as the pre-lint validation,
//   * lint::lint_net() calls check_branch_tree(), which collects every
//     finding so a report can show all defects at once.
// Working on the raw Branch tree (pre-construction) is deliberate: the
// testkit mutation oracles corrupt a tree and must be able to lint it even
// though net::Net would refuse to construct it.
#ifndef RLCEFF_LINT_STRUCTURAL_H
#define RLCEFF_LINT_STRUCTURAL_H

#include <vector>

#include "lint/diagnostic.h"
#include "net/net.h"

namespace rlceff::lint {

// Appends one Diagnostic per defect, in the constructor's walk order (root
// first, sections near-to-far, then children depth-first).  Emits only
// error-severity findings; never throws.
void check_branch_tree(const net::Branch& root, std::vector<Diagnostic>& out);

// Throws DiagnosticError carrying the first finding check_branch_tree would
// report; returns normally on a clean tree.  This is net::Net's validator.
void validate_branch_tree(const net::Branch& root);

}  // namespace rlceff::lint

#endif  // RLCEFF_LINT_STRUCTURAL_H
