#include "moments/admittance.h"

#include <cmath>

#include "net/net.h"
#include "util/error.h"

namespace rlceff::moments {

using util::Series;

namespace {

// Transforms a load admittance through a series impedance z = r + s*l:
// Y' = Y / (1 + z Y).
Series through_series_impedance(const Series& y, double r, double l) {
  const std::size_t n = y.size();
  const Series z({r, l}, n);  // r + l*s
  return y / (Series::constant(1.0, n) + z * y);
}

}  // namespace

Series ladder_admittance(double r_total, double l_total, double c_total, double c_far,
                         std::size_t segments, std::size_t order) {
  ensure(segments > 0, "ladder_admittance: need at least one segment");
  ensure(order >= 2, "ladder_admittance: order too small");
  const double n = static_cast<double>(segments);
  const double r_seg = r_total / n;
  const double l_seg = l_total / n;
  const double c_seg = c_total / n;

  // Far-end node: half segment cap plus the external load.
  Series y({0.0, c_far + 0.5 * c_seg}, order);  // (c_far + c/2N) * s
  for (std::size_t k = 0; k < segments; ++k) {
    y = through_series_impedance(y, r_seg, l_seg);
    const double shunt = (k + 1 == segments) ? 0.5 * c_seg : c_seg;
    y += Series({0.0, shunt}, order);
  }
  return y;
}

Series distributed_section_admittance(double r_total, double l_total, double c_total,
                                      const Series& load, std::size_t order) {
  ensure(order >= 2, "distributed_section_admittance: order too small");
  ensure(c_total > 0.0, "distributed_section_admittance: need line capacitance");
  ensure(load.size() == order, "distributed_section_admittance: load order mismatch");

  // u = x^2 = s * C * (R + s L); every factor below is analytic in s:
  //   cosh(x)      = sum u^k / (2k)!
  //   Y0 sinh(x)   = s C * sinhc(u),  sinhc(u) = sum u^k / (2k+1)!
  //   Z0 sinh(x)   = (R + s L) * sinhc(u)
  const Series u({0.0, c_total * r_total, c_total * l_total}, order);

  std::vector<double> cosh_coeffs(order, 0.0);
  std::vector<double> sinhc_coeffs(order, 0.0);
  double fact = 1.0;  // (2k)! running value
  for (std::size_t k = 0; k < order; ++k) {
    if (k > 0) fact *= static_cast<double>(2 * k - 1) * static_cast<double>(2 * k);
    cosh_coeffs[k] = 1.0 / fact;
    sinhc_coeffs[k] = 1.0 / (fact * static_cast<double>(2 * k + 1));
  }
  const Series cosh_x = Series::compose(cosh_coeffs, u);
  const Series sinhc_u = Series::compose(sinhc_coeffs, u);

  const Series s_c({0.0, c_total}, order);        // s * C
  const Series r_plus_sl({r_total, l_total}, order);
  const Series y0_sinh = s_c * sinhc_u;
  const Series z0_sinh = r_plus_sl * sinhc_u;

  return (y0_sinh + cosh_x * load) / (cosh_x + z0_sinh * load);
}

Series distributed_line_admittance(double r_total, double l_total, double c_total,
                                   double c_far, std::size_t order) {
  return distributed_section_admittance(r_total, l_total, c_total,
                                        Series({0.0, c_far}, order), order);
}

Series tree_admittance(const RlcBranch& root, std::size_t order) {
  ensure(order >= 2, "tree_admittance: order too small");
  Series y({0.0, root.capacitance}, order);
  for (const RlcBranch& child : root.children) y += tree_admittance(child, order);
  return through_series_impedance(y, root.resistance, root.inductance);
}

namespace {

// Looking into a branch: load plus children at the far end, then back through
// the route's sections.  Lumped sections are one step of the tree recursion;
// distributed sections cascade the exact uniform-line expansion.
Series branch_admittance(const net::Branch& branch, std::size_t order) {
  Series y({0.0, branch.c_load}, order);
  for (const net::Branch& child : branch.children) {
    y += branch_admittance(child, order);
  }
  for (auto it = branch.sections.rbegin(); it != branch.sections.rend(); ++it) {
    if (it->kind == net::SectionKind::lumped) {
      y += Series({0.0, it->capacitance}, order);
      y = through_series_impedance(y, it->resistance, it->inductance);
    } else {
      y = distributed_section_admittance(it->resistance, it->inductance,
                                         it->capacitance, y, order);
    }
  }
  return y;
}

}  // namespace

Series net_admittance(const net::Net& net, std::size_t order) {
  ensure(order >= 2, "net_admittance: order too small");
  return branch_admittance(net.root(), order);
}

namespace {

struct PathAccumulator {
  double r = 0.0;
  double l = 0.0;
  double c = 0.0;
};

void walk_paths(const RlcBranch& branch, PathAccumulator path, TreePathMetrics& out) {
  path.r += branch.resistance;
  path.l += branch.inductance;
  path.c += branch.capacitance;
  out.total_capacitance += branch.capacitance;
  if (branch.children.empty()) {
    if (path.l <= 0.0 || path.c <= 0.0) return;
    const double tf = std::sqrt(path.l * path.c);
    if (tf > out.time_of_flight) {
      out.time_of_flight = tf;
      out.z0 = std::sqrt(path.l / path.c);
      out.path_resistance = path.r;
    }
    return;
  }
  for (const RlcBranch& child : branch.children) walk_paths(child, path, out);
}

}  // namespace

TreePathMetrics tree_metrics(const RlcBranch& root) {
  TreePathMetrics out;
  walk_paths(root, {}, out);
  ensure(out.total_capacitance > 0.0, "tree_metrics: tree has no capacitance");
  ensure(out.time_of_flight > 0.0,
         "tree_metrics: no root-to-leaf path with both L and C");
  return out;
}

}  // namespace rlceff::moments
