#include "moments/admittance.h"

#include <cmath>

#include "net/net.h"
#include "util/error.h"

namespace rlceff::moments {

using util::Series;

namespace {

// Transforms a load admittance through a series impedance z = r + s*l:
// Y' = Y / (1 + z Y).
Series through_series_impedance(const Series& y, double r, double l) {
  const std::size_t n = y.size();
  const Series z({r, l}, n);  // r + l*s
  return y / (Series::constant(1.0, n) + z * y);
}

}  // namespace

Series ladder_admittance(double r_total, double l_total, double c_total, double c_far,
                         std::size_t segments, std::size_t order) {
  ensure(segments > 0, "ladder_admittance: need at least one segment");
  ensure(order >= 2, "ladder_admittance: order too small");
  const double n = static_cast<double>(segments);
  const double r_seg = r_total / n;
  const double l_seg = l_total / n;
  const double c_seg = c_total / n;

  // Far-end node: half segment cap plus the external load.
  Series y({0.0, c_far + 0.5 * c_seg}, order);  // (c_far + c/2N) * s
  for (std::size_t k = 0; k < segments; ++k) {
    y = through_series_impedance(y, r_seg, l_seg);
    const double shunt = (k + 1 == segments) ? 0.5 * c_seg : c_seg;
    y += Series({0.0, shunt}, order);
  }
  return y;
}

Series distributed_section_admittance(double r_total, double l_total, double c_total,
                                      const Series& load, std::size_t order) {
  ensure(order >= 2, "distributed_section_admittance: order too small");
  ensure(c_total > 0.0, "distributed_section_admittance: need line capacitance");
  ensure(load.size() == order, "distributed_section_admittance: load order mismatch");

  // u = x^2 = s * C * (R + s L); every factor below is analytic in s:
  //   cosh(x)      = sum u^k / (2k)!
  //   Y0 sinh(x)   = s C * sinhc(u),  sinhc(u) = sum u^k / (2k+1)!
  //   Z0 sinh(x)   = (R + s L) * sinhc(u)
  const Series u({0.0, c_total * r_total, c_total * l_total}, order);

  std::vector<double> cosh_coeffs(order, 0.0);
  std::vector<double> sinhc_coeffs(order, 0.0);
  double fact = 1.0;  // (2k)! running value
  for (std::size_t k = 0; k < order; ++k) {
    if (k > 0) fact *= static_cast<double>(2 * k - 1) * static_cast<double>(2 * k);
    cosh_coeffs[k] = 1.0 / fact;
    sinhc_coeffs[k] = 1.0 / (fact * static_cast<double>(2 * k + 1));
  }
  const Series cosh_x = Series::compose(cosh_coeffs, u);
  const Series sinhc_u = Series::compose(sinhc_coeffs, u);

  const Series s_c({0.0, c_total}, order);        // s * C
  const Series r_plus_sl({r_total, l_total}, order);
  const Series y0_sinh = s_c * sinhc_u;
  const Series z0_sinh = r_plus_sl * sinhc_u;

  return (y0_sinh + cosh_x * load) / (cosh_x + z0_sinh * load);
}

Series distributed_line_admittance(double r_total, double l_total, double c_total,
                                   double c_far, std::size_t order) {
  return distributed_section_admittance(r_total, l_total, c_total,
                                        Series({0.0, c_far}, order), order);
}

Series tree_admittance(const RlcBranch& root, std::size_t order) {
  ensure(order >= 2, "tree_admittance: order too small");
  Series y({0.0, root.capacitance}, order);
  for (const RlcBranch& child : root.children) y += tree_admittance(child, order);
  return through_series_impedance(y, root.resistance, root.inductance);
}

namespace {

// Looking into a branch: load plus children at the far end, then back through
// the route's sections.  Lumped sections are one step of the tree recursion;
// distributed sections cascade the exact uniform-line expansion.
Series branch_admittance(const net::Branch& branch, std::size_t order) {
  Series y({0.0, branch.c_load}, order);
  for (const net::Branch& child : branch.children) {
    y += branch_admittance(child, order);
  }
  for (auto it = branch.sections.rbegin(); it != branch.sections.rend(); ++it) {
    if (it->kind == net::SectionKind::lumped) {
      y += Series({0.0, it->capacitance}, order);
      y = through_series_impedance(y, it->resistance, it->inductance);
    } else {
      y = distributed_section_admittance(it->resistance, it->inductance,
                                         it->capacitance, y, order);
    }
  }
  return y;
}

}  // namespace

Series net_admittance(const net::Net& net, std::size_t order) {
  ensure(order >= 2, "net_admittance: order too small");
  return branch_admittance(net.root(), order);
}

namespace {

// -m2 = sum over resistances of R_e * C_downstream(e)^2 (the shared-path
// form of the double sum C_i C_j R_ij), accumulated post-order.  A lumped
// section's C hangs at the far end of its R; a distributed section spreads
// both along its length, so with downstream load C_d its exact contribution
// is the integral R * (C_d^2 + C_d*C + C^2/3).  Returns the capacitance at
// or below the branch; exact vs net_admittance's m2 for RC nets (inductance
// first enters at m3) — verified in the tier unit tests.
double walk_shield(const net::Branch& branch, double& m2_sum) {
  double below = branch.c_load;
  for (const net::Branch& child : branch.children) {
    below += walk_shield(child, m2_sum);
  }
  for (auto it = branch.sections.rbegin(); it != branch.sections.rend(); ++it) {
    if (it->kind == net::SectionKind::lumped) {
      below += it->capacitance;
      m2_sum += it->resistance * below * below;
    } else {
      m2_sum += it->resistance *
                (below * below + below * it->capacitance +
                 it->capacitance * it->capacitance / 3.0);
      below += it->capacitance;
    }
  }
  return below;
}

}  // namespace

double shield_tau(const net::Net& net) {
  double m2_sum = 0.0;
  const double c_total = walk_shield(net.root(), m2_sum);
  return c_total > 0.0 ? m2_sum / c_total : 0.0;
}

namespace {

// The shield_pi walk needs the capacitance at or below every branch before
// prefix voltages can flow down, so pass 1 stores subtree totals in
// traversal order and pass 2 consumes them through a cursor.
double collect_subtree_caps(const net::Branch& branch, std::vector<double>& caps) {
  const std::size_t slot = caps.size();
  caps.push_back(0.0);
  double total = branch.c_load;
  for (const net::Section& s : branch.sections) total += s.capacitance;
  for (const net::Branch& child : branch.children) {
    total += collect_subtree_caps(child, caps);
  }
  caps[slot] = total;
  return total;
}

// Exact first three RC moments of the driving-point admittance, as one tree
// walk.  With V = 1 at the root and node voltage expansions
// v_i = 1 + s*a_i + s^2*b_i + ..., the admittance is
//
//   Y(s) = s*y1 + s^2*y2 + s^3*y3 + ...,   y1 = sum C_i,
//   y2 = sum_i C_i a_i = -sum_e R_e Cdown(e)^2,
//   y3 = sum_i C_i b_i = -sum_e R_e Cdown(e) Adown(e),
//
// where Adown(e) = sum of C_j a_j over the capacitance below edge e.  The
// walk computes prefix a forward (root to leaves; needs only Cdown, from
// pass 1), then folds Adown backward; distributed sections use the closed
// polynomial integrals of a(x), Cdown(x) over the section length.
struct PiWalker {
  const std::vector<double>& caps;
  std::size_t cursor = 0;
  double y2_neg = 0.0;  // -y2 = sum R Cdown^2  (>= 0)
  double y3 = 0.0;      // -sum R Cdown Adown   (>= 0)

  // Enters `branch` with root-path prefix a0; returns sum C_j a_j over the
  // branch's subtree.
  double walk(const net::Branch& branch, double a0) {
    const double subtree = caps[cursor++];

    // Forward sweep: prefix a at each section entry.  A lumped section's C
    // hangs at the far end of its R; a distributed section's exact far-end
    // prefix drop is R*(E + C/2) for downstream load E.
    const std::size_t n = branch.sections.size();
    std::vector<double> a_entry(n);
    double below = subtree;
    double a = a0;
    for (std::size_t k = 0; k < n; ++k) {
      const net::Section& s = branch.sections[k];
      a_entry[k] = a;
      if (s.kind == net::SectionKind::lumped) {
        a -= s.resistance * below;
        below -= s.capacitance;
      } else {
        below -= s.capacitance;
        a -= s.resistance * (below + 0.5 * s.capacitance);
      }
    }

    // Children and the leaf load sit at the far end of the section chain.
    double a_sum = branch.c_load * a;
    for (const net::Branch& child : branch.children) a_sum += walk(child, a);

    // Backward sweep: fold Adown up through the sections.
    for (std::size_t k = n; k-- > 0;) {
      const net::Section& s = branch.sections[k];
      const double r = s.resistance;
      const double c = s.capacitance;
      if (s.kind == net::SectionKind::lumped) {
        const double cdown = below + c;
        const double a_node = a_entry[k] - r * cdown;
        a_sum += c * a_node;
        y2_neg += r * cdown * cdown;
        y3 -= r * cdown * a_sum;
        below = cdown;
      } else {
        // a(x) = a0 - P*x + Q*x^2 along the section (x in [0,1]), with
        // P = R*(E + C), Q = R*C/2; S(x) = int_x^1 C*a dx' has polynomial
        // coefficients s0..s3, and Cdown(x) = d0 + d1*x.
        const double e_load = below;
        const double p = r * (e_load + c);
        const double q = 0.5 * r * c;
        const double s0 = a_entry[k] - 0.5 * p + q / 3.0;
        const double s1 = -a_entry[k];
        const double s2 = 0.5 * p;
        const double s3 = -q / 3.0;
        const double d0 = e_load + c;
        const double d1 = -c;
        const double int_cd = e_load + 0.5 * c;  // int_0^1 Cdown dx
        const double int_cd_s =
            c * (d0 * (s0 + s1 / 2.0 + s2 / 3.0 + s3 / 4.0) +
                 d1 * (s0 / 2.0 + s1 / 3.0 + s2 / 4.0 + s3 / 5.0));
        y2_neg += r * (e_load * e_load + e_load * c + c * c / 3.0);
        y3 -= r * (a_sum * int_cd + int_cd_s);
        a_sum += c * s0;  // the section's own capacitance, at prefix a(x)
        below = e_load + c;
      }
    }
    return a_sum;
  }
};

}  // namespace

PiLoad shield_pi(const net::Net& net) {
  std::vector<double> caps;
  const double c_total = collect_subtree_caps(net.root(), caps);

  PiWalker walker{caps};
  (void)walker.walk(net.root(), 0.0);

  PiLoad pi;
  pi.c_total = c_total;
  pi.tau = c_total > 0.0 ? walker.y2_neg / c_total : 0.0;
  if (walker.y2_neg <= 0.0 || walker.y3 <= 0.0) {
    // Resistance-free (or numerically degenerate) tree: no shielding.
    pi.c_near = c_total;
    return pi;
  }
  const double c_far = walker.y2_neg * walker.y2_neg / walker.y3;
  if (c_far >= c_total) {
    // Moment pattern outside the pi template; collapse to the single-pole
    // model, which is always realizable.
    pi.c_near = 0.0;
    pi.c_far = c_total;
    pi.r = pi.tau > 0.0 && c_total > 0.0 ? pi.tau / c_total : 0.0;
    return pi;
  }
  pi.c_far = c_far;
  pi.c_near = c_total - c_far;
  pi.r = walker.y3 * walker.y3 /
         (walker.y2_neg * walker.y2_neg * walker.y2_neg);
  return pi;
}

namespace {

// Flattened tree for the fast moment sweeps: node 0 is the driving point
// (no edge), every other node hangs off parent[m] < m through a series
// (r[m], l[m]) with shunt c[m] at its far end.
struct FlatNet {
  std::vector<int> parent;
  std::vector<double> r, l, c;

  int add(int parent_node, double res, double ind, double cap) {
    const int node = static_cast<int>(parent.size());
    parent.push_back(parent_node);
    r.push_back(res);
    l.push_back(ind);
    c.push_back(cap);
    return node;
  }
};

void flatten_branch(const net::Branch& branch, int entry, FlatNet& flat,
                    std::size_t ladder_segments) {
  int node = entry;
  for (const net::Section& s : branch.sections) {
    if (s.kind == net::SectionKind::lumped) {
      node = flat.add(node, s.resistance, s.inductance, s.capacitance);
    } else {
      // Half end caps (pi segments): keeps the lumped moments within
      // O(1/n^2) of the exact distributed integrals.
      const double n = static_cast<double>(ladder_segments);
      flat.c[node] += 0.5 * s.capacitance / n;
      for (std::size_t k = 0; k < ladder_segments; ++k) {
        const double shunt =
            (k + 1 == ladder_segments ? 0.5 : 1.0) * s.capacitance / n;
        node = flat.add(node, s.resistance / n, s.inductance / n, shunt);
      }
    }
  }
  flat.c[node] += branch.c_load;
  for (const net::Branch& child : branch.children) {
    flatten_branch(child, node, flat, ladder_segments);
  }
}

}  // namespace

util::Series fast_net_admittance(const net::Net& net, std::size_t ladder_segments) {
  ensure(ladder_segments > 0, "fast_net_admittance: need at least one segment");
  // Scratch reused across calls: this runs once per Tier-A slot and fresh
  // vector allocations would dominate the sweeps themselves.
  thread_local FlatNet flat;
  thread_local std::vector<double> v_prev, v_cur, i_prev, i_cur;
  flat.parent.clear();
  flat.r.clear();
  flat.l.clear();
  flat.c.clear();
  flat.add(-1, 0.0, 0.0, 0.0);  // driving point
  flatten_branch(net.root(), 0, flat, ladder_segments);
  const std::size_t n = flat.parent.size();

  // Voltage expansion v_i(s) = sum_k v^k_i s^k with v^0 = 1 everywhere and
  // v^k = 0 at the source; edge currents I^k_e = sum_{j below e} C_j
  // v^{k-1}_j; the drop through (r + s l) couples order k to the stored
  // order-(k-1) currents.  y_k = I^k at the driving point.
  constexpr std::size_t order = 5;
  v_prev.assign(n, 1.0);
  v_cur.assign(n, 0.0);
  i_prev.assign(n, 0.0);
  i_cur.assign(n, 0.0);
  double y[order + 1] = {};
  for (std::size_t k = 1; k <= order; ++k) {
    for (std::size_t m = 0; m < n; ++m) i_cur[m] = flat.c[m] * v_prev[m];
    for (std::size_t m = n; m-- > 1;) i_cur[flat.parent[m]] += i_cur[m];
    y[k] = i_cur[0];
    v_cur[0] = 0.0;
    for (std::size_t m = 1; m < n; ++m) {
      v_cur[m] = v_cur[flat.parent[m]] - flat.r[m] * i_cur[m] -
                 flat.l[m] * i_prev[m];
    }
    std::swap(v_prev, v_cur);
    std::swap(i_prev, i_cur);
  }
  return util::Series({0.0, y[1], y[2], y[3], y[4], y[5]}, order + 1);
}

namespace {

struct PathAccumulator {
  double r = 0.0;
  double l = 0.0;
  double c = 0.0;
};

void walk_paths(const RlcBranch& branch, PathAccumulator path, TreePathMetrics& out) {
  path.r += branch.resistance;
  path.l += branch.inductance;
  path.c += branch.capacitance;
  out.total_capacitance += branch.capacitance;
  if (branch.children.empty()) {
    if (path.l <= 0.0 || path.c <= 0.0) return;
    const double tf = std::sqrt(path.l * path.c);
    if (tf > out.time_of_flight) {
      out.time_of_flight = tf;
      out.z0 = std::sqrt(path.l / path.c);
      out.path_resistance = path.r;
    }
    return;
  }
  for (const RlcBranch& child : branch.children) walk_paths(child, path, out);
}

}  // namespace

TreePathMetrics tree_metrics(const RlcBranch& root) {
  TreePathMetrics out;
  walk_paths(root, {}, out);
  ensure(out.total_capacitance > 0.0, "tree_metrics: tree has no capacitance");
  ensure(out.time_of_flight > 0.0,
         "tree_metrics: no root-to-leaf path with both L and C");
  return out;
}

}  // namespace rlceff::moments
