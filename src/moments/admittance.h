// Driving-point admittance moments of RLC loads.
//
// The k-th moment of Y(s) is the k-th coefficient of its Taylor expansion
// about s = 0.  For loads with no DC path to ground, Y(s) = m1 s + m2 s^2 +
// ..., and m1 equals the total capacitance.  Three load descriptions are
// supported:
//   * discretized ladders mirroring ckt::append_rlc_ladder exactly,
//   * general RLC trees (for nets with branches),
//   * the exact distributed (Telegrapher's) uniform line via the analytic
//     expansion of its ABCD parameters — the ladder moments converge to
//     these as the segment count grows (validated in tests).
#ifndef RLCEFF_MOMENTS_ADMITTANCE_H
#define RLCEFF_MOMENTS_ADMITTANCE_H

#include <cstddef>
#include <vector>

#include "util/series.h"

namespace rlceff::net {
class Net;
}

namespace rlceff::moments {

inline constexpr std::size_t default_order = 8;

// Admittance series of an N-segment pi-section ladder (same topology as
// ckt::append_rlc_ladder) with far-end load c_far.
util::Series ladder_admittance(double r_total, double l_total, double c_total,
                               double c_far, std::size_t segments,
                               std::size_t order = default_order);

// Admittance series of the exact distributed uniform RLC line with far-end
// load c_far:  Y_in = (Y0 sinh(x) + cosh(x) Y_L) / (cosh(x) + Z0 sinh(x) Y_L)
// expanded via u = x^2 = s * C * (R + s L).
util::Series distributed_line_admittance(double r_total, double l_total,
                                         double c_total, double c_far,
                                         std::size_t order = default_order);

// Same expansion terminated by an arbitrary load admittance series (the
// cascade step for multi-section routes and net::Net branches).  `load` must
// have the same truncation order.
util::Series distributed_section_admittance(double r_total, double l_total,
                                            double c_total, const util::Series& load,
                                            std::size_t order = default_order);

// Driving-point admittance series of a net::Net: lumped sections run the
// RLC-tree recursion below, distributed sections cascade the exact
// uniform-line expansion, branch points sum their children.
util::Series net_admittance(const net::Net& net, std::size_t order = default_order);

// Single-pole shield constant of the driving-point admittance: -m2/m1, the
// time constant tau of the one-pole match Y(s) = s*Ctotal / (1 + s*tau).
// Computed by a closed-form O(sections) walk — no series cascade: -m2 is
// the sum over resistances of R_e * C_downstream(e)^2 (distributed sections
// use the exact integral form).  Exact vs net_admittance's m2 for RC nets
// (inductance first enters at m3), which is what the Tier-A closed-form
// screen (tier/analytical.h) needs.  Returns 0 for resistance-free nets.
double shield_tau(const net::Net& net);

// O'Brien/Savarino-style pi reduction of the driving-point admittance: the
// exact first three RC moments y1, y2, y3 (inductance first enters the
// fourth) mapped onto c_near + r -> c_far, the smallest load template that
// separates the unshielded near capacitance from the resistively shielded
// tail.  Computed by two closed-form O(sections) tree walks (distributed
// sections use exact polynomial integrals) — no series cascade — so the
// Tier-A screen can afford it per slot.  Degenerate moment patterns
// (resistance-free nets, or y2^2/y3 >= y1) collapse to a lone capacitor or
// the single-pole model; c_near + c_far == y1 == Ctotal always holds.
struct PiLoad {
  double c_total = 0.0;  // y1 [F]
  double c_near = 0.0;   // unshielded capacitance at the driving point [F]
  double c_far = 0.0;    // capacitance behind the shielding resistance [F]
  double r = 0.0;        // shielding resistance [ohm]
  double tau = 0.0;      // single-pole constant -y2/y1 (shield_tau) [s]
};
PiLoad shield_pi(const net::Net& net);

// First five driving-point admittance moments (a Series with coefficients
// s^0..s^5, s^0 == 0) via a flattened lumped-ladder walk: the tree is
// flattened once into parent/r/l/c arrays (each distributed section becomes
// a `ladder_segments`-step ladder with half end caps, exact to O(1/n^2) in
// the moments), then each moment order is two linear array sweeps — no
// Series arithmetic, no recursion, no per-section allocation.  This is the
// Tier-A screen's input to the Eq 3 rational fit: ~20x cheaper than
// net_admittance and within ~2 % of it on the moments that matter.
util::Series fast_net_admittance(const net::Net& net, std::size_t ladder_segments = 4);

// An RLC tree branch: series (r, l) from the parent, shunt c at the far end
// of the branch, then children hanging off that node.
struct RlcBranch {
  double resistance = 0.0;
  double inductance = 0.0;
  double capacitance = 0.0;
  std::vector<RlcBranch> children;
};

// Admittance series looking into `root` (its series impedance included).
util::Series tree_admittance(const RlcBranch& root, std::size_t order = default_order);

// Transmission-line view of a tree used by the two-ramp flow: the dominant
// root-to-leaf path (the one with the largest flight time) supplies the
// characteristic impedance, time of flight, and loss resistance that Eq 1,
// Eq 8 and Eq 9 need.  For a chain describing a uniform line these reduce to
// the uniform-line values.
struct TreePathMetrics {
  double z0 = 0.0;                // sqrt(L_path / C_path) of the dominant path
  double time_of_flight = 0.0;    // max over paths of sqrt(L_path * C_path)
  double path_resistance = 0.0;   // series R along the dominant path
  double total_capacitance = 0.0; // every capacitor in the tree
};

TreePathMetrics tree_metrics(const RlcBranch& root);

}  // namespace rlceff::moments

#endif  // RLCEFF_MOMENTS_ADMITTANCE_H
