// Driving-point admittance moments of RLC loads.
//
// The k-th moment of Y(s) is the k-th coefficient of its Taylor expansion
// about s = 0.  For loads with no DC path to ground, Y(s) = m1 s + m2 s^2 +
// ..., and m1 equals the total capacitance.  Three load descriptions are
// supported:
//   * discretized ladders mirroring ckt::append_rlc_ladder exactly,
//   * general RLC trees (for nets with branches),
//   * the exact distributed (Telegrapher's) uniform line via the analytic
//     expansion of its ABCD parameters — the ladder moments converge to
//     these as the segment count grows (validated in tests).
#ifndef RLCEFF_MOMENTS_ADMITTANCE_H
#define RLCEFF_MOMENTS_ADMITTANCE_H

#include <cstddef>
#include <vector>

#include "util/series.h"

namespace rlceff::net {
class Net;
}

namespace rlceff::moments {

inline constexpr std::size_t default_order = 8;

// Admittance series of an N-segment pi-section ladder (same topology as
// ckt::append_rlc_ladder) with far-end load c_far.
util::Series ladder_admittance(double r_total, double l_total, double c_total,
                               double c_far, std::size_t segments,
                               std::size_t order = default_order);

// Admittance series of the exact distributed uniform RLC line with far-end
// load c_far:  Y_in = (Y0 sinh(x) + cosh(x) Y_L) / (cosh(x) + Z0 sinh(x) Y_L)
// expanded via u = x^2 = s * C * (R + s L).
util::Series distributed_line_admittance(double r_total, double l_total,
                                         double c_total, double c_far,
                                         std::size_t order = default_order);

// Same expansion terminated by an arbitrary load admittance series (the
// cascade step for multi-section routes and net::Net branches).  `load` must
// have the same truncation order.
util::Series distributed_section_admittance(double r_total, double l_total,
                                            double c_total, const util::Series& load,
                                            std::size_t order = default_order);

// Driving-point admittance series of a net::Net: lumped sections run the
// RLC-tree recursion below, distributed sections cascade the exact
// uniform-line expansion, branch points sum their children.
util::Series net_admittance(const net::Net& net, std::size_t order = default_order);

// An RLC tree branch: series (r, l) from the parent, shunt c at the far end
// of the branch, then children hanging off that node.
struct RlcBranch {
  double resistance = 0.0;
  double inductance = 0.0;
  double capacitance = 0.0;
  std::vector<RlcBranch> children;
};

// Admittance series looking into `root` (its series impedance included).
util::Series tree_admittance(const RlcBranch& root, std::size_t order = default_order);

// Transmission-line view of a tree used by the two-ramp flow: the dominant
// root-to-leaf path (the one with the largest flight time) supplies the
// characteristic impedance, time of flight, and loss resistance that Eq 1,
// Eq 8 and Eq 9 need.  For a chain describing a uniform line these reduce to
// the uniform-line values.
struct TreePathMetrics {
  double z0 = 0.0;                // sqrt(L_path / C_path) of the dominant path
  double time_of_flight = 0.0;    // max over paths of sqrt(L_path * C_path)
  double path_resistance = 0.0;   // series R along the dominant path
  double total_capacitance = 0.0; // every capacitor in the tree
};

TreePathMetrics tree_metrics(const RlcBranch& root);

}  // namespace rlceff::moments

#endif  // RLCEFF_MOMENTS_ADMITTANCE_H
