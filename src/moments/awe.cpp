#include "moments/awe.h"

#include <cmath>

#include "util/error.h"
#include "util/linalg.h"

namespace rlceff::moments {

using util::Complex;
using util::Series;

Series ladder_transfer(double r_total, double l_total, double c_total, double c_far,
                       std::size_t segments, std::size_t order) {
  ensure(segments > 0, "ladder_transfer: need at least one segment");
  const double n = static_cast<double>(segments);
  const double r_seg = r_total / n;
  const double l_seg = l_total / n;
  const double c_seg = c_total / n;

  // Propagate (V, I) from the far end (V = 1) toward the source.
  Series v = Series::constant(1.0, order);
  Series i({0.0, c_far + 0.5 * c_seg}, order);  // far-end shunt current
  const Series z({r_seg, l_seg}, order);
  for (std::size_t k = 0; k < segments; ++k) {
    v += z * i;
    const double shunt = (k + 1 == segments) ? 0.5 * c_seg : c_seg;
    i += Series({0.0, shunt}, order) * v;
  }
  return Series::constant(1.0, order) / v;
}

Series distributed_transfer(double r_total, double l_total, double c_total,
                            double c_far, std::size_t order) {
  // V_near = cosh(x) V_far + Z0 sinh(x) I_far with I_far = s c_far V_far, so
  // H = 1 / (cosh(x) + (R + sL) sinhc(u) * s c_far), u = s C (R + sL).
  const Series u({0.0, c_total * r_total, c_total * l_total}, order);
  std::vector<double> cosh_coeffs(order, 0.0);
  std::vector<double> sinhc_coeffs(order, 0.0);
  double fact = 1.0;
  for (std::size_t k = 0; k < order; ++k) {
    if (k > 0) fact *= static_cast<double>(2 * k - 1) * static_cast<double>(2 * k);
    cosh_coeffs[k] = 1.0 / fact;
    sinhc_coeffs[k] = 1.0 / (fact * static_cast<double>(2 * k + 1));
  }
  const Series cosh_x = Series::compose(cosh_coeffs, u);
  const Series sinhc_u = Series::compose(sinhc_coeffs, u);
  const Series z0_sinh = Series({r_total, l_total}, order) * sinhc_u;
  const Series y_load({0.0, c_far}, order);
  return Series::constant(1.0, order) / (cosh_x + z0_sinh * y_load);
}

AweModel AweModel::make(const util::Series& transfer, std::size_t max_poles) {
  ensure(max_poles >= 1 && max_poles <= 3, "AweModel: supports 1 to 3 poles");
  ensure(transfer.size() >= 2 * max_poles, "AweModel: not enough moments");

  for (std::size_t q = max_poles; q >= 1; --q) {
    // Denominator from the Hankel system:
    //   sum_{j=1..q} h[k-j] * b_j = -h[k],  k = q .. 2q-1   (h[-1] := 0)
    util::DenseMatrix a(q, q);
    std::vector<double> rhs(q, 0.0);
    auto h = [&](int idx) { return idx < 0 ? 0.0 : transfer[static_cast<std::size_t>(idx)]; };
    for (std::size_t row = 0; row < q; ++row) {
      const int k = static_cast<int>(q + row);
      for (std::size_t j = 1; j <= q; ++j) a(row, j - 1) = h(k - static_cast<int>(j));
      rhs[row] = -h(k);
    }

    std::vector<double> b;
    try {
      b = util::solve_dense(a, rhs);
    } catch (const SingularMatrixError&) {
      continue;  // try a lower order
    }

    // Poles: roots of Q(s) = 1 + b1 s + ... + bq s^q.
    std::vector<Complex> poles;
    if (q == 1) {
      poles = {Complex(-1.0 / b[0], 0.0)};
    } else if (q == 2) {
      const auto r = util::quadratic_roots(b[1], b[0], 1.0);
      poles = {r[0], r[1]};
    } else {
      const auto r = util::cubic_roots(b[2], b[1], b[0], 1.0);
      poles = {r[0], r[1], r[2]};
    }

    bool stable = true;
    for (const Complex& p : poles) {
      if (p.real() >= 0.0) stable = false;
    }
    if (!stable) continue;

    // Numerator coefficients p_k = sum_{j=0..k} b_j h[k-j] (b_0 = 1).
    std::vector<double> num(q, 0.0);
    for (std::size_t k = 0; k < q; ++k) {
      num[k] = h(static_cast<int>(k));
      for (std::size_t j = 1; j <= k; ++j) num[k] += b[j - 1] * h(static_cast<int>(k - j));
    }

    // Residues k_i = P(p_i) / Q'(p_i).
    AweModel model;
    model.poles_ = poles;
    model.residues_.resize(poles.size());
    for (std::size_t i = 0; i < poles.size(); ++i) {
      const Complex p = poles[i];
      Complex pnum = 0.0;
      for (std::size_t k = num.size(); k-- > 0;) pnum = pnum * p + num[k];
      Complex dq = 0.0;
      for (std::size_t j = q; j >= 1; --j) {
        dq = dq * p + static_cast<double>(j) * b[j - 1];
      }
      model.residues_[i] = pnum / dq;
    }
    model.dc_gain_ = transfer[0];
    return model;
  }
  throw ConvergenceError("AweModel: no stable reduced model found");
}

double AweModel::unit_ramp_response(double t) const {
  if (t <= 0.0) return 0.0;
  // L^-1[H(s)/s^2] = dc_gain * t + sum_i k_i (e^{p_i t} - 1) / p_i^2.
  Complex acc = 0.0;
  for (std::size_t i = 0; i < poles_.size(); ++i) {
    const Complex p = poles_[i];
    acc += residues_[i] * (std::exp(p * t) - 1.0) / (p * p);
  }
  return dc_gain_ * t + acc.real();
}

wave::Waveform AweModel::response(const wave::Pwl& input, double t_end, double dt) const {
  ensure(t_end > 0.0 && dt > 0.0, "AweModel: bad response range");
  // A continuous PWL is a superposition of slope changes:
  //   v_in(t) = v0 + sum_j ds_j * max(0, t - t_j).
  const auto& pts = input.points();
  ensure(!pts.empty(), "AweModel: empty input");
  std::vector<std::pair<double, double>> kinks;  // (time, slope change)
  double prev_slope = 0.0;
  for (std::size_t k = 0; k + 1 < pts.size(); ++k) {
    const double slope = (pts[k + 1].second - pts[k].second) / (pts[k + 1].first - pts[k].first);
    kinks.emplace_back(pts[k].first, slope - prev_slope);
    prev_slope = slope;
  }
  if (!pts.empty()) kinks.emplace_back(pts.back().first, -prev_slope);
  const double v0 = pts.front().second;

  wave::Waveform out;
  const auto steps = static_cast<std::size_t>(std::ceil(t_end / dt));
  for (std::size_t s = 0; s <= steps; ++s) {
    const double t = std::min(static_cast<double>(s) * dt, t_end);
    double v = v0 * dc_gain_;
    for (const auto& [tk, ds] : kinks) v += ds * unit_ramp_response(t - tk);
    out.append(t, v);
    if (t >= t_end) break;
  }
  return out;
}

}  // namespace rlceff::moments
