// Asymptotic waveform evaluation (ref [10]) for far-end responses.
//
// The voltage transfer H(s) = V_far / V_near of a line driven by an ideal
// source is expanded in moments (transfer_* functions) and reduced to a
// q-pole Pade model.  The reduced model evaluates the far-end response to
// any piecewise-linear near-end waveform in closed form — the fast
// alternative to replaying the modeled driver waveform through the
// transient simulator.  RLC lines driven by stiff sources have poles close
// to the imaginary axis, so make() walks the order down until the model is
// stable and callers can fall back to simulation if even q = 1 fails.
#ifndef RLCEFF_MOMENTS_AWE_H
#define RLCEFF_MOMENTS_AWE_H

#include <cstddef>
#include <vector>

#include "moments/admittance.h"
#include "util/poly.h"
#include "util/series.h"
#include "waveform/pwl.h"
#include "waveform/waveform.h"

namespace rlceff::moments {

// Moments of V_far / V_near for the discretized ladder (matches
// ckt::append_rlc_ladder) and for the exact distributed line.
util::Series ladder_transfer(double r_total, double l_total, double c_total,
                             double c_far, std::size_t segments,
                             std::size_t order = default_order);
util::Series distributed_transfer(double r_total, double l_total, double c_total,
                                  double c_far, std::size_t order = default_order);

class AweModel {
public:
  // Reduces a transfer-moment series to at most max_poles poles, walking the
  // order down until all poles are strictly stable.  Throws ConvergenceError
  // when even a single-pole model is unstable.
  static AweModel make(const util::Series& transfer, std::size_t max_poles = 3);

  std::size_t pole_count() const { return poles_.size(); }
  const std::vector<util::Complex>& poles() const { return poles_; }
  const std::vector<util::Complex>& residues() const { return residues_; }
  double dc_gain() const { return dc_gain_; }

  // Response of the reduced system to a unit ramp starting at t = 0 with
  // slope 1 (the building block for any PWL input).
  double unit_ramp_response(double t) const;

  // Response to a piecewise-linear input, sampled on [0, t_end] with step dt.
  wave::Waveform response(const wave::Pwl& input, double t_end, double dt) const;

private:
  AweModel() = default;

  std::vector<util::Complex> poles_;
  std::vector<util::Complex> residues_;
  double dc_gain_ = 0.0;
};

}  // namespace rlceff::moments

#endif  // RLCEFF_MOMENTS_AWE_H
