#include "moments/pimodel.h"

#include <cmath>

#include "util/error.h"

namespace rlceff::moments {

PiModel synthesize_pi(const util::Series& admittance) {
  ensure(admittance.size() >= 4, "synthesize_pi: need moments m1..m3");
  const double m1 = admittance[1];
  const double m2 = admittance[2];
  const double m3 = admittance[3];
  ensure(m1 > 0.0, "synthesize_pi: total capacitance must be positive");

  PiModel pi;
  if (m2 == 0.0 || m3 == 0.0) {
    // Pure capacitive load.
    pi.c_near = m1;
    return pi;
  }
  pi.c_far = m2 * m2 / m3;
  pi.resistance = -m3 * m3 / (m2 * m2 * m2);
  pi.c_near = m1 - pi.c_far;
  return pi;
}

}  // namespace rlceff::moments
