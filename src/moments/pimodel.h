// O'Brien-Savarino pi model (ref [9]) — the classical RC reduction the paper
// contrasts against.
//
// Matching the first three admittance moments of an RC load to
//   Y(s) = s C_near + s C_far / (1 + s R C_far)
// gives C_far = m2^2 / m3, R = -m3^2 / m2^3, C_near = m1 - C_far.  With
// inductance present the synthesis can fail (negative elements) — the
// observation, due to Kashyap and Krauter (ref [6]), that motivates working
// with the admittance moments directly as this library's core does.
#ifndef RLCEFF_MOMENTS_PIMODEL_H
#define RLCEFF_MOMENTS_PIMODEL_H

#include "util/series.h"

namespace rlceff::moments {

struct PiModel {
  double c_near = 0.0;  // capacitance at the driving point [F]
  double resistance = 0.0;
  double c_far = 0.0;

  // True when all three elements are non-negative (synthesizable).
  bool realizable() const { return c_near >= 0.0 && resistance >= 0.0 && c_far >= 0.0; }
};

// Synthesizes the pi model from the first three moments of an admittance
// series.  Always returns the matched element values; callers must check
// realizable() — RLC loads routinely produce a negative c_near.
PiModel synthesize_pi(const util::Series& admittance);

}  // namespace rlceff::moments

#endif  // RLCEFF_MOMENTS_PIMODEL_H
