#include "moments/rational.h"

#include <cmath>

#include "util/error.h"

namespace rlceff::moments {

namespace {

// Relative threshold below which the Pade normal system is treated as
// singular and the fit degrades gracefully to fewer poles.
constexpr double degeneracy_rel = 1e-12;

}  // namespace

RationalAdmittance::RationalAdmittance(const util::Series& series) {
  ensure(series.size() >= 6, "RationalAdmittance: need moments m1..m5 (order >= 6)");
  const double m1 = series[1];
  const double m2 = series[2];
  const double m3 = series[3];
  const double m4 = series[4];
  const double m5 = series[5];
  ensure(std::abs(series[0]) <= 1e-9 * std::max(1.0, std::abs(m1)),
         "RationalAdmittance: load must have no DC path (m0 == 0)");
  ensure(m1 > 0.0, "RationalAdmittance: first moment (total capacitance) must be positive");

  // Pade conditions: m4 + b1 m3 + b2 m2 = 0 and m5 + b1 m4 + b2 m3 = 0.
  const double det = m3 * m3 - m2 * m4;
  const double scale = std::abs(m3 * m3) + std::abs(m2 * m4);
  if (std::abs(det) > degeneracy_rel * std::max(scale, 1e-300)) {
    b1_ = (m2 * m5 - m3 * m4) / det;
    b2_ = (m4 * m4 - m3 * m5) / det;
  } else if (m2 != 0.0 && m3 / m2 < 0.0) {
    // The two-pole system is singular (e.g. an exact series-RC load, whose
    // moments are a geometric sequence).  Fit the one-pole Pade instead:
    // m3 + b1 m2 = 0 with a stable pole at -1/b1.
    b1_ = -m3 / m2;
    b2_ = 0.0;
  } else {
    // Pure capacitor (or no usable higher moments): polynomial fit.
    b1_ = 0.0;
    b2_ = 0.0;
  }
  a1_ = m1;
  a2_ = m2 + b1_ * m1;
  a3_ = m3 + b1_ * m2 + b2_ * m1;
}

RationalAdmittance::RationalAdmittance(double a1, double a2, double a3, double b1,
                                       double b2)
    : a1_(a1), a2_(a2), a3_(a3), b1_(b1), b2_(b2) {}

int RationalAdmittance::pole_count() const {
  if (b2_ != 0.0) return 2;
  return b1_ != 0.0 ? 1 : 0;
}

std::array<util::Complex, 2> RationalAdmittance::poles() const {
  if (b2_ != 0.0) return util::quadratic_roots(b2_, b1_, 1.0);
  if (b1_ != 0.0) return {util::Complex(-1.0 / b1_, 0.0), util::Complex(0.0, 0.0)};
  return {util::Complex(0.0, 0.0), util::Complex(0.0, 0.0)};
}

bool RationalAdmittance::complex_poles() const {
  return b2_ != 0.0 && b1_ * b1_ < 4.0 * b2_;
}

util::Complex RationalAdmittance::evaluate(util::Complex s) const {
  const util::Complex num = s * (a1_ + s * (a2_ + s * a3_));
  const util::Complex den = 1.0 + s * (b1_ + s * b2_);
  return num / den;
}

util::Series RationalAdmittance::to_series(std::size_t order) const {
  const util::Series num({0.0, a1_, a2_, a3_}, order);
  const util::Series den({1.0, b1_, b2_}, order);
  return num / den;
}

}  // namespace rlceff::moments
