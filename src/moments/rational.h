// Five-moment rational driving-point admittance (the paper's Eq 3):
//
//   Y(s) = (a1 s + a2 s^2 + a3 s^3) / (1 + b1 s + b2 s^2)
//
// The coefficients are the [3/2] Pade approximant of the admittance series:
// matching the first five moments m1..m5 gives two linear equations for
// (b1, b2) and explicit expressions for (a1, a2, a3).  a1 always equals the
// total load capacitance.  The poles (roots of b2 s^2 + b1 s + 1) may be real
// or a complex-conjugate pair — the paper's Eq 4/5 vs Eq 6/7 distinction.
#ifndef RLCEFF_MOMENTS_RATIONAL_H
#define RLCEFF_MOMENTS_RATIONAL_H

#include <array>

#include "util/poly.h"
#include "util/series.h"

namespace rlceff::moments {

class RationalAdmittance {
public:
  // Fits to the first five moments of the admittance series (series[0] must
  // be ~0: the load has no DC path).  Degenerate loads (e.g. a pure
  // capacitor, where the Pade system is singular) reduce to lower order
  // automatically: b1 = b2 = 0 and Y(s) = a1 s (+ a2 s^2 + a3 s^3).
  explicit RationalAdmittance(const util::Series& series);

  // Direct construction from coefficients (used by tests).
  RationalAdmittance(double a1, double a2, double a3, double b1, double b2);

  double a1() const { return a1_; }
  double a2() const { return a2_; }
  double a3() const { return a3_; }
  double b1() const { return b1_; }
  double b2() const { return b2_; }

  // Total capacitance of the load (first admittance moment).
  double total_capacitance() const { return a1_; }

  // Number of finite poles (0, 1, or 2).
  int pole_count() const;
  // The finite poles; valid entries are [0, pole_count()).  A physical load
  // has poles in the open left half plane.
  std::array<util::Complex, 2> poles() const;
  // True when pole_count() == 2 and the pair is complex (paper Eq 5/7 case).
  bool complex_poles() const;

  // Y evaluated at a complex frequency (rational form).
  util::Complex evaluate(util::Complex s) const;

  // Taylor re-expansion, for verifying the moment match.
  util::Series to_series(std::size_t order) const;

private:
  double a1_ = 0.0;
  double a2_ = 0.0;
  double a3_ = 0.0;
  double b1_ = 0.0;
  double b2_ = 0.0;
};

}  // namespace rlceff::moments

#endif  // RLCEFF_MOMENTS_RATIONAL_H
