#include "net/coupled.h"

#include <cmath>
#include <cstdio>

#include "lint/diagnostic.h"
#include "util/error.h"

namespace rlceff::net {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::size_t count_sections(const Branch& branch) {
  std::size_t n = branch.sections.size();
  for (const Branch& child : branch.children) n += count_sections(child);
  return n;
}

// Walks the branch tree in the deck compiler's depth-first order and hands
// the section with the given index to `fn`; returns false when the index is
// out of range.
template <class BranchT, class Fn>
bool with_section(BranchT& branch, std::size_t& cursor, std::size_t target, Fn&& fn) {
  if (target < cursor + branch.sections.size()) {
    fn(branch.sections[target - cursor]);
    return true;
  }
  cursor += branch.sections.size();
  for (auto& child : branch.children) {
    if (with_section(child, cursor, target, fn)) return true;
  }
  return false;
}

}  // namespace

CoupledGroup CoupledGroup::single(Net net, std::string label) {
  CoupledGroup group;
  group.add_net(std::move(net), std::move(label));
  return group;
}

std::size_t CoupledGroup::add_net(Net net, std::string label) {
  lint::ensure_diag(!net.empty(), lint::Code::empty_net, "",
                    "cannot add an empty net to a coupled group",
                    "construct the member net before adding it");
  auto taken = [&](const std::string& candidate) {
    for (const std::string& existing : labels_) {
      if (existing == candidate) return true;
    }
    return false;
  };
  if (label.empty()) {
    // Auto-labels must not collide with names the caller already claimed
    // (e.g. an explicit "net1" followed by an unlabeled net): advance until
    // free instead of raising a duplicate error the caller never wrote.
    std::size_t k = nets_.size();
    do {
      label = "net" + std::to_string(k++);
    } while (taken(label));
  } else {
    ensure(!taken(label), "net::CoupledGroup: duplicate net label '" + label + "'");
  }
  nets_.push_back(std::move(net));
  labels_.push_back(std::move(label));
  return nets_.size() - 1;
}

std::string CoupledGroup::describe(const SectionRef& r) const {
  const std::string label =
      r.net < labels_.size() ? labels_[r.net] : "#" + std::to_string(r.net);
  return "'" + label + "' section " + std::to_string(r.section);
}

void CoupledGroup::validate_pair(const char* what, const SectionRef& a,
                                 const SectionRef& b) const {
  const std::string where = std::string("net::CoupledGroup: ") + what + " between " +
                            describe(a) + " and " + describe(b);
  ensure(a.net < nets_.size() && b.net < nets_.size(),
         where + ": net index out of range (group holds " +
             std::to_string(nets_.size()) + " nets)");
  ensure(a.net != b.net, where + ": both ends on the same net");
  for (const SectionRef& r : {a, b}) {
    const std::size_t sections = section_count(r.net);
    ensure(r.section < sections,
           where + ": " + describe(r) + " is out of range ('" + labels_[r.net] +
               "' has " + std::to_string(sections) + " sections)");
    std::size_t cursor = 0;
    with_section(nets_[r.net].root(), cursor, r.section, [&](const Section& s) {
      ensure(s.kind == SectionKind::distributed,
             where + ": " + describe(r) +
                 " is a lumped section (coupling needs a distributed span)");
    });
  }
}

void CoupledGroup::couple_capacitance(SectionRef a, SectionRef b, double capacitance) {
  validate_pair("coupling cap", a, b);
  lint::ensure_diag(std::isfinite(capacitance) && capacitance > 0.0,
                    lint::Code::nonpositive_capacitance,
                    "coupling cap between " + describe(a) + " and " + describe(b),
                    "has non-physical capacitance (" + fmt(capacitance) + " F)",
                    "coupling capacitance must be finite and > 0");
  coupling_caps_.push_back({a, b, capacitance});
}

void CoupledGroup::couple_inductance(SectionRef a, SectionRef b, double k) {
  validate_pair("mutual inductance", a, b);
  lint::ensure_diag(std::isfinite(k) && k > 0.0 && k < 1.0,
                    lint::Code::mutual_overcoupled,
                    "mutual inductance between " + describe(a) + " and " + describe(b),
                    "has coupling coefficient " + fmt(k) + " outside (0, 1)",
                    "k = M / sqrt(La*Lb) must stay strictly inside (0, 1)");
  for (const SectionRef& r : {a, b}) {
    std::size_t cursor = 0;
    with_section(nets_[r.net].root(), cursor, r.section, [&](const Section& s) {
      ensure(s.inductance > 0.0,
             "net::CoupledGroup: mutual inductance between " + describe(a) +
                 " and " + describe(b) + ": " + describe(r) +
                 " carries no inductance");
    });
  }
  // Couplings on the same section pair add up; the summed coefficient must
  // stay passive, not just each contribution.
  double total = k;
  for (const MutualCoupling& m : mutuals_) {
    const bool same = (m.a.net == a.net && m.a.section == a.section &&
                       m.b.net == b.net && m.b.section == b.section) ||
                      (m.a.net == b.net && m.a.section == b.section &&
                       m.b.net == a.net && m.b.section == a.section);
    if (same) total += m.k;
  }
  lint::ensure_diag(total < 1.0, lint::Code::mutual_overcoupled,
                    "mutual inductance between " + describe(a) + " and " + describe(b),
                    "accumulates to coupling coefficient " + fmt(total) +
                        " >= 1 (non-passive)",
                    "|M| must stay below sqrt(La*Lb); reduce k or split the span");
  mutuals_.push_back({a, b, k});
}

const Net& CoupledGroup::net_at(std::size_t index) const {
  ensure(index < nets_.size(), "net::CoupledGroup: net index out of range");
  return nets_[index];
}

const std::string& CoupledGroup::label_at(std::size_t index) const {
  ensure(index < labels_.size(), "net::CoupledGroup: net index out of range");
  return labels_[index];
}

std::size_t CoupledGroup::index_of(const std::string& label) const {
  for (std::size_t k = 0; k < labels_.size(); ++k) {
    if (labels_[k] == label) return k;
  }
  throw Error("net::CoupledGroup: no net labeled '" + label + "'");
}

std::size_t CoupledGroup::section_count(std::size_t index) const {
  return count_sections(net_at(index).root());
}

double CoupledGroup::coupling_capacitance_at(std::size_t index) const {
  (void)net_at(index);
  double total = 0.0;
  for (const CouplingCap& cc : coupling_caps_) {
    if (cc.a.net == index || cc.b.net == index) total += cc.capacitance;
  }
  return total;
}

Net CoupledGroup::decoupled_net(std::size_t victim,
                                std::span<const double> miller_by_net) const {
  ensure(victim < nets_.size(), "net::CoupledGroup::decoupled_net: victim out of range");
  ensure(miller_by_net.size() == nets_.size(),
         "net::CoupledGroup::decoupled_net: need one Miller factor per net");
  for (std::size_t k = 0; k < miller_by_net.size(); ++k) {
    ensure(std::isfinite(miller_by_net[k]) && miller_by_net[k] >= 0.0,
           "net::CoupledGroup::decoupled_net: Miller factor for '" + labels_[k] +
               "' is non-physical (" + fmt(miller_by_net[k]) + ")");
  }

  Branch root = nets_[victim].root();
  for (const CouplingCap& cc : coupling_caps_) {
    const bool a_side = cc.a.net == victim;
    if (!a_side && cc.b.net != victim) continue;
    const SectionRef& mine = a_side ? cc.a : cc.b;
    const SectionRef& theirs = a_side ? cc.b : cc.a;
    const double grounded = miller_by_net[theirs.net] * cc.capacitance;
    if (grounded == 0.0) continue;
    std::size_t cursor = 0;
    with_section(root, cursor, mine.section,
                 [&](Section& s) { s.capacitance += grounded; });
  }
  return Net(std::move(root));
}

Net CoupledGroup::decoupled_net(std::size_t victim) const {
  const std::vector<double> quiet(nets_.size(), 1.0);
  return decoupled_net(victim, quiet);
}

}  // namespace rlceff::net
