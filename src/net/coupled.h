// Coupled-net intermediate representation.
//
// A net::CoupledGroup generalizes the single-net IR to N nets plus the
// coupling elements between them: distributed coupling capacitance over an
// overlapping span of two sections, and mutual inductance between parallel
// sections.  Like net::Net it is the one description every layer consumes:
//   * ckt::append_coupled_group compiles it into one simulation deck of
//     aligned pi ladders with node-to-node coupling capacitors and
//     per-segment mutual inductors (K elements),
//   * core::run_coupled_experiment simulates the full coupled system as the
//     reference and runs the paper's Ceff flow per victim on the
//     Miller-decoupled equivalent net (decoupled_net),
//   * api::Engine accepts coupled requests with aggressor descriptors.
//
// Sections are addressed by their depth-first index within a net (the order
// ckt::append_net compiles them, root branch first).  Every coupling element
// is validated at construction time and errors name the offending pair of
// nets/sections.  A group holding a single net and no coupling elements is
// guaranteed to compile to the exact deck ckt::append_net produces for that
// net alone, so the single-net flow is the degenerate case, not a parallel
// code path.
#ifndef RLCEFF_NET_COUPLED_H
#define RLCEFF_NET_COUPLED_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "net/net.h"

namespace rlceff::net {

// Addresses one section of one net in the group: `net` indexes the group's
// nets in insertion order, `section` is the depth-first section index within
// that net (the compile order of ckt::append_net).
struct SectionRef {
  std::size_t net = 0;
  std::size_t section = 0;
};

// Total coupling capacitance distributed uniformly over the overlap of two
// (distributed) sections [F].  The deck compiler spreads it across the
// aligned ladder taps with the same 1/2-1-...-1-1/2 pi weighting the section
// ground capacitance uses.
struct CouplingCap {
  SectionRef a;
  SectionRef b;
  double capacitance = 0.0;
};

// Inductive coupling coefficient k = M / sqrt(La * Lb) between two parallel
// (distributed) sections, 0 < k < 1.  The deck compiler stamps one mutual
// inductor per aligned ladder segment.
struct MutualCoupling {
  SectionRef a;
  SectionRef b;
  double k = 0.0;
};

class CoupledGroup {
public:
  // An empty group; invalid for simulation/modeling until nets are added.
  CoupledGroup() = default;

  // The degenerate one-net group (compiles to the exact append_net deck).
  static CoupledGroup single(Net net, std::string label = "");

  // Adds a net and returns its index.  Labels must be unique; an empty label
  // becomes "net<k>".
  std::size_t add_net(Net net, std::string label = "");

  // Adds a coupling capacitor / mutual inductance between two sections of
  // two *different* nets.  Validates immediately; errors name the offending
  // pair (labels and section indices).  Both endpoints must be distributed
  // sections (coupling is a property of overlapping routed spans);
  // couple_inductance additionally requires both sections to carry
  // inductance.
  void couple_capacitance(SectionRef a, SectionRef b, double capacitance);
  void couple_inductance(SectionRef a, SectionRef b, double k);

  bool empty() const { return nets_.empty(); }
  std::size_t size() const { return nets_.size(); }

  const Net& net_at(std::size_t index) const;
  const std::string& label_at(std::size_t index) const;
  // Index of the net with this label; throws when absent.
  std::size_t index_of(const std::string& label) const;

  const std::vector<CouplingCap>& coupling_caps() const { return coupling_caps_; }
  const std::vector<MutualCoupling>& mutual_couplings() const { return mutuals_; }

  // Depth-first section count of one member net.
  std::size_t section_count(std::size_t index) const;

  // Total coupling capacitance attached to one member net [F].
  double coupling_capacitance_at(std::size_t index) const;

  // The victim net with every attached coupling capacitor switched to ground
  // scaled by the far net's Miller factor (0x: aggressor switching with the
  // victim, 1x: quiet, 2x: switching against it): the single-net equivalent
  // the paper's Ceff flow runs on.  `miller_by_net` holds one factor per
  // group net (the victim's own entry is ignored).  Mutual inductance is
  // dropped — the decoupled model keeps only the capacitive crosstalk, which
  // dominates the delay shift in the on-chip regime.  With no coupling
  // elements this returns the victim net unchanged.
  Net decoupled_net(std::size_t victim, std::span<const double> miller_by_net) const;
  // Quiet environment: every Miller factor 1 (grounded coupling caps).
  Net decoupled_net(std::size_t victim) const;

private:
  std::string describe(const SectionRef& r) const;
  void validate_pair(const char* what, const SectionRef& a, const SectionRef& b) const;

  std::vector<Net> nets_;
  std::vector<std::string> labels_;
  std::vector<CouplingCap> coupling_caps_;
  std::vector<MutualCoupling> mutuals_;
};

}  // namespace rlceff::net

#endif  // RLCEFF_NET_COUPLED_H
