#include "net/net.h"

#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "moments/admittance.h"
#include "util/error.h"

namespace rlceff::net {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

// Branch paths in error messages read "root", "root/1", "root/1/0", ...
std::string child_path(const std::string& parent, std::size_t index) {
  return parent + "/" + std::to_string(index);
}

void validate_section(const Section& s, const std::string& branch_path,
                      std::size_t index) {
  const std::string where =
      "net::Net: section " + std::to_string(index) + " of branch '" + branch_path + "'";
  ensure(std::isfinite(s.resistance) && std::isfinite(s.inductance) &&
             std::isfinite(s.capacitance),
         where + " has non-finite parasitics");
  ensure(s.inductance >= 0.0,
         where + " has negative inductance (" + fmt(s.inductance) + " H)");
  if (s.kind == SectionKind::distributed) {
    // Distributed sections are real wire: they must carry loss and charge
    // (this is what ckt::append_rlc_ladder requires to discretize them).
    ensure(s.resistance > 0.0,
           where + " has zero/negative resistance (" + fmt(s.resistance) + " ohm)");
    ensure(s.capacitance > 0.0,
           where + " has zero/negative capacitance (" + fmt(s.capacitance) + " F)");
  } else {
    ensure(s.resistance >= 0.0,
           where + " has negative resistance (" + fmt(s.resistance) + " ohm)");
    ensure(s.capacitance >= 0.0,
           where + " has negative capacitance (" + fmt(s.capacitance) + " F)");
    ensure(s.resistance > 0.0 || s.inductance > 0.0 || s.capacitance > 0.0,
           where + " is a zero-length segment (R = L = C = 0)");
  }
}

void validate_branch(const Branch& branch, const std::string& path,
                     std::unordered_set<std::string>& probe_names) {
  // A branch contributing no wire, no fan-out, and no load would compile to
  // a phantom leaf at its parent junction.
  ensure(!branch.sections.empty() || !branch.children.empty() || branch.c_load > 0.0,
         "net::Net: branch '" + path + "' is empty (no sections, children, or load)");
  for (std::size_t k = 0; k < branch.sections.size(); ++k) {
    validate_section(branch.sections[k], path, k);
  }
  ensure(std::isfinite(branch.c_load) && branch.c_load >= 0.0,
         "net::Net: branch '" + path + "' has a negative/non-finite load (" +
             fmt(branch.c_load) + " F)");
  if (!branch.probe.empty()) {
    ensure(probe_names.insert(branch.probe).second,
           "net::Net: duplicate probe name '" + branch.probe + "' at branch '" + path +
               "'");
  }
  for (std::size_t k = 0; k < branch.children.size(); ++k) {
    validate_branch(branch.children[k], child_path(path, k), probe_names);
  }
}

double branch_capacitance(const Branch& branch) {
  double c = branch.c_load;
  for (const Section& s : branch.sections) c += s.capacitance;
  for (const Branch& child : branch.children) c += branch_capacitance(child);
  return c;
}

std::size_t count_leaves(const Branch& branch) {
  if (branch.children.empty()) return 1;
  std::size_t n = 0;
  for (const Branch& child : branch.children) n += count_leaves(child);
  return n;
}

struct PathState {
  double r = 0.0;
  double l = 0.0;
  double c = 0.0;
};

void walk_metrics(const Branch& branch, PathState path, std::size_t& leaf_counter,
                  NetMetrics& out) {
  for (const Section& s : branch.sections) {
    path.r += s.resistance;
    path.l += s.inductance;
    path.c += s.capacitance;
    out.wire_capacitance += s.capacitance;
  }
  out.load_capacitance += branch.c_load;
  if (branch.children.empty()) {
    const std::size_t leaf = leaf_counter++;
    if (path.l <= 0.0 || path.c <= 0.0) return;
    const double tf = std::sqrt(path.l * path.c);
    if (tf > out.time_of_flight) {
      out.time_of_flight = tf;
      out.z0 = std::sqrt(path.l / path.c);
      out.path_resistance = path.r;
      out.path_load = branch.c_load;
      out.dominant_leaf = leaf;
    }
    return;
  }
  for (const Branch& child : branch.children) {
    walk_metrics(child, path, leaf_counter, out);
  }
}

Branch branch_from_tree(const moments::RlcBranch& tree) {
  Branch out;
  // An all-zero branch is a pure structural junction: no section to stamp.
  if (tree.resistance != 0.0 || tree.inductance != 0.0 || tree.capacitance != 0.0) {
    out.sections.push_back(
        {tree.resistance, tree.inductance, tree.capacitance, SectionKind::lumped});
  }
  out.children.reserve(tree.children.size());
  for (const moments::RlcBranch& child : tree.children) {
    out.children.push_back(branch_from_tree(child));
  }
  return out;
}

}  // namespace

Net::Net(Branch root) : root_(std::move(root)) {
  ensure(!root_.sections.empty() || !root_.children.empty(),
         "net::Net: empty net (no sections and no branches)");
  std::unordered_set<std::string> probe_names;
  validate_branch(root_, "root", probe_names);
  ensure(branch_capacitance(root_) > 0.0, "net::Net: net has no capacitance");
}

Net Net::uniform_line(double resistance, double inductance, double capacitance,
                      double c_load_far, std::string probe) {
  Branch root;
  root.sections.push_back(
      {resistance, inductance, capacitance, SectionKind::distributed});
  root.c_load = c_load_far;
  root.probe = std::move(probe);
  return Net(std::move(root));
}

Net Net::multi_section(std::vector<Section> sections, double c_load_far,
                       std::string probe) {
  ensure(!sections.empty(), "net::Net::multi_section: empty section list");
  Branch root;
  root.sections = std::move(sections);
  root.c_load = c_load_far;
  root.probe = std::move(probe);
  return Net(std::move(root));
}

Net Net::from_tree(const moments::RlcBranch& root) {
  return Net(branch_from_tree(root));
}

const Branch& Net::root() const {
  ensure(!empty(), "net::Net: accessing an empty (default-constructed) net");
  return root_;
}

std::size_t Net::leaf_count() const { return count_leaves(root()); }

double Net::total_capacitance() const { return branch_capacitance(root()); }

NetMetrics Net::metrics() const {
  NetMetrics out;
  std::size_t leaf_counter = 0;
  walk_metrics(root(), {}, leaf_counter, out);
  ensure(out.total_capacitance() > 0.0, "net::Net::metrics: net has no capacitance");
  ensure(out.time_of_flight > 0.0,
         "net::Net::metrics: no root-to-leaf path with both L and C");
  return out;
}

}  // namespace rlceff::net
