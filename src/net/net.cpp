#include "net/net.h"

#include <cmath>

#include "lint/structural.h"
#include "moments/admittance.h"
#include "util/error.h"

namespace rlceff::net {

namespace {

double branch_capacitance(const Branch& branch) {
  double c = branch.c_load;
  for (const Section& s : branch.sections) c += s.capacitance;
  for (const Branch& child : branch.children) c += branch_capacitance(child);
  return c;
}

std::size_t count_leaves(const Branch& branch) {
  if (branch.children.empty()) return 1;
  std::size_t n = 0;
  for (const Branch& child : branch.children) n += count_leaves(child);
  return n;
}

struct PathState {
  double r = 0.0;
  double l = 0.0;
  double c = 0.0;
};

void walk_metrics(const Branch& branch, PathState path, std::size_t& leaf_counter,
                  NetMetrics& out) {
  for (const Section& s : branch.sections) {
    path.r += s.resistance;
    path.l += s.inductance;
    path.c += s.capacitance;
    out.wire_capacitance += s.capacitance;
  }
  out.load_capacitance += branch.c_load;
  if (branch.children.empty()) {
    const std::size_t leaf = leaf_counter++;
    if (path.l <= 0.0 || path.c <= 0.0) return;
    const double tf = std::sqrt(path.l * path.c);
    if (tf > out.time_of_flight) {
      out.time_of_flight = tf;
      out.z0 = std::sqrt(path.l / path.c);
      out.path_resistance = path.r;
      out.path_load = branch.c_load;
      out.dominant_leaf = leaf;
    }
    return;
  }
  for (const Branch& child : branch.children) {
    walk_metrics(child, path, leaf_counter, out);
  }
}

Branch branch_from_tree(const moments::RlcBranch& tree) {
  Branch out;
  // An all-zero branch is a pure structural junction: no section to stamp.
  if (tree.resistance != 0.0 || tree.inductance != 0.0 || tree.capacitance != 0.0) {
    out.sections.push_back(
        {tree.resistance, tree.inductance, tree.capacitance, SectionKind::lumped});
  }
  out.children.reserve(tree.children.size());
  for (const moments::RlcBranch& child : tree.children) {
    out.children.push_back(branch_from_tree(child));
  }
  return out;
}

}  // namespace

Net::Net(Branch root) : root_(std::move(root)) {
  // One validator for both reporting modes: the same structural checks
  // lint::lint_net collects into a report raise DiagnosticError here (first
  // error-severity finding, same walk order the pre-lint validation used).
  lint::validate_branch_tree(root_);
}

Net Net::uniform_line(double resistance, double inductance, double capacitance,
                      double c_load_far, std::string probe) {
  Branch root;
  root.sections.push_back(
      {resistance, inductance, capacitance, SectionKind::distributed});
  root.c_load = c_load_far;
  root.probe = std::move(probe);
  return Net(std::move(root));
}

Net Net::multi_section(std::vector<Section> sections, double c_load_far,
                       std::string probe) {
  ensure(!sections.empty(), "net::Net::multi_section: empty section list");
  Branch root;
  root.sections = std::move(sections);
  root.c_load = c_load_far;
  root.probe = std::move(probe);
  return Net(std::move(root));
}

Net Net::from_tree(const moments::RlcBranch& root) {
  return Net(branch_from_tree(root));
}

const Branch& Net::root() const {
  ensure(!empty(), "net::Net: accessing an empty (default-constructed) net");
  return root_;
}

std::size_t Net::leaf_count() const { return count_leaves(root()); }

double Net::total_capacitance() const { return branch_capacitance(root()); }

NetMetrics Net::metrics() const {
  NetMetrics out;
  std::size_t leaf_counter = 0;
  walk_metrics(root(), {}, leaf_counter, out);
  ensure(out.total_capacitance() > 0.0, "net::Net::metrics: net has no capacitance");
  ensure(out.time_of_flight > 0.0,
         "net::Net::metrics: no root-to-leaf path with both L and C");
  return out;
}

namespace {

// Fallback dominant-path pick for pure-RC nets: the root-to-leaf route with
// the largest Elmore weight R_path * (C_path/2 + C_leaf).  Strict > with a
// negative initial best keeps the first (depth-first) leaf on ties, matching
// walk_metrics' deterministic leaf order.
void walk_relaxed(const Branch& branch, PathState path, std::size_t& leaf_counter,
                  double& best, NetMetrics& out) {
  for (const Section& s : branch.sections) {
    path.r += s.resistance;
    path.c += s.capacitance;
  }
  if (branch.children.empty()) {
    const std::size_t leaf = leaf_counter++;
    const double weight = path.r * (0.5 * path.c + branch.c_load);
    if (weight > best) {
      best = weight;
      out.path_resistance = path.r;
      out.path_load = branch.c_load;
      out.dominant_leaf = leaf;
    }
    return;
  }
  for (const Branch& child : branch.children) {
    walk_relaxed(child, path, leaf_counter, best, out);
  }
}

}  // namespace

NetMetrics Net::metrics_relaxed() const {
  NetMetrics out;
  std::size_t leaf_counter = 0;
  walk_metrics(root(), {}, leaf_counter, out);
  ensure(out.total_capacitance() > 0.0, "net::Net::metrics: net has no capacitance");
  if (out.time_of_flight > 0.0) return out;  // identical to metrics()
  leaf_counter = 0;
  double best = -1.0;
  walk_relaxed(root(), {}, leaf_counter, best, out);
  return out;
}

}  // namespace rlceff::net
