// Interconnect intermediate representation (IR).
//
// A net::Net is the one description of an interconnect that every layer of
// the flow consumes:
//   * ckt::append_net compiles it into a discretized simulation deck,
//   * moments::net_admittance expands its driving-point admittance series,
//   * core::model_driver_output runs the paper's Ceff flow on it,
//   * core::run_experiment simulates and models it side by side.
//
// The shape is a tree of branches.  Each branch is a route of uniform wire
// sections (near to far), ends in an optional lumped load (a receiver), may
// carry a named probe at its far end, and fans out into child branches.  A
// uniform line, a width-tapered multi-section route, and a branched clock
// tree are all the same type — new topologies are constructor calls, not new
// subsystems.
//
// Sections come in two flavors that only differ above the deck level:
//   * distributed — an ideal uniform RLC line; moments use the exact
//     Telegrapher's expansion (what the paper's uniform-line flow does),
//   * lumped — one series (R, L) element with the shunt C at its far end;
//     moments use the RLC-tree recursion (what the tree flow does).
// Both are discretized into the same pi-section ladders when compiled into a
// deck, so the simulated reference is identical either way.
#ifndef RLCEFF_NET_NET_H
#define RLCEFF_NET_NET_H

#include <cstddef>
#include <string>
#include <vector>

namespace rlceff::moments {
struct RlcBranch;
}

namespace rlceff::net {

enum class SectionKind {
  distributed,  // exact uniform-line moments (paper Sec. 3)
  lumped,       // single-lump tree moments (paper Sec. 3 tree extension)
};

// One uniform stretch of wire: total series resistance/inductance and total
// shunt capacitance.
struct Section {
  double resistance = 0.0;   // [ohm]
  double inductance = 0.0;   // [H]
  double capacitance = 0.0;  // [F]
  SectionKind kind = SectionKind::distributed;
};

struct Branch {
  std::vector<Section> sections;  // route from the parent junction, near to far
  double c_load = 0.0;            // lumped (receiver) load at the far end [F]
  std::string probe;              // optional name for the far-end node
  std::vector<Branch> children;   // sub-branches hanging off the far end
};

// Transmission-line view of a net: the dominant root-to-leaf path (largest
// time of flight) supplies the characteristic impedance, flight time, and
// loss resistance that Eq 1, Eq 8 and Eq 9 consume.  For a uniform line these
// reduce to the WireParasitics values.
struct NetMetrics {
  double z0 = 0.0;                // sqrt(L_path / C_path) of the dominant path
  double time_of_flight = 0.0;    // max over leaves of sqrt(L_path * C_path)
  double path_resistance = 0.0;   // series R along the dominant path
  double wire_capacitance = 0.0;  // every section capacitance in the net
  double load_capacitance = 0.0;  // every lumped load in the net
  double path_load = 0.0;         // lumped load at the dominant leaf
  std::size_t dominant_leaf = 0;  // depth-first leaf index of the dominant path

  double total_capacitance() const { return wire_capacitance + load_capacitance; }
};

class Net {
public:
  // An empty net; invalid for simulation/modeling until assigned.  Exists so
  // scenario structs can default-construct; every accessor that needs a
  // topology throws on an empty net.
  Net() = default;

  // Validates and adopts an explicit branch tree (heterogeneous topologies).
  explicit Net(Branch root);

  // A uniform distributed line with a far-end receiver load.
  static Net uniform_line(double resistance, double inductance, double capacitance,
                          double c_load_far, std::string probe = "far");

  // A route of uniform sections in series, near to far (non-uniform
  // width/length routes, e.g. a width-tapered global wire), terminated by a
  // receiver load.
  static Net multi_section(std::vector<Section> sections, double c_load_far,
                           std::string probe = "far");

  // Adopts a moments::RlcBranch tree: each branch becomes one lumped section
  // (receiver loads stay folded into the leaf capacitances, as the tree flow
  // prescribes).
  static Net from_tree(const moments::RlcBranch& root);

  bool empty() const { return root_.sections.empty() && root_.children.empty(); }
  const Branch& root() const;  // throws on an empty net

  std::size_t leaf_count() const;
  double total_capacitance() const;

  // Dominant-path metrics; throws when the net has no capacitance or no
  // root-to-leaf path carrying both inductance and capacitance.
  NetMetrics metrics() const;

  // metrics() with the L-C-path requirement relaxed: a net with no
  // inductance anywhere (pure RC — exactly the nets the Tier-A closed-form
  // screen wants most) reports z0 == time_of_flight == 0 and takes the
  // dominant path as the largest-Elmore-weight root-to-leaf route instead of
  // the largest-flight-time one.  Still throws when the net has no
  // capacitance at all.
  NetMetrics metrics_relaxed() const;

private:
  Branch root_;
};

}  // namespace rlceff::net

#endif  // RLCEFF_NET_NET_H
