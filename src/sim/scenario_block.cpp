#include "sim/scenario_block.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>

#include "circuit/mna.h"
#include "sim/solver_backend.h"
#include "util/error.h"

namespace rlceff::sim {

namespace {

using ckt::ground;
using ckt::MnaStructure;
using ckt::Netlist;
using ckt::NodeId;

constexpr std::size_t npos = static_cast<std::size_t>(-1);

// --------------------------------------------------------------- grouping ---

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

bool same_bits(double a, double b) { return bits(a) == bits(b); }

// FNV-1a over 64-bit words, bytewise.  Collisions are harmless (the
// exhaustive confirms decide), so this only needs to spread well enough
// that unrelated topologies rarely share a bucket.
struct Fnv64 {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void mix(double v) { mix(bits(v)); }
};

}  // namespace

std::uint64_t scenario_group_hash(const Netlist& netlist,
                                  const TransientOptions& options) {
  Fnv64 f;
  f.mix(static_cast<std::uint64_t>(netlist.node_count()));
  f.mix(static_cast<std::uint64_t>(netlist.resistors().size()));
  for (const ckt::Resistor& r : netlist.resistors()) {
    f.mix(static_cast<std::uint64_t>(r.a));
    f.mix(static_cast<std::uint64_t>(r.b));
    f.mix(r.resistance);
  }
  f.mix(static_cast<std::uint64_t>(netlist.capacitors().size()));
  for (const ckt::Capacitor& c : netlist.capacitors()) {
    f.mix(static_cast<std::uint64_t>(c.a));
    f.mix(static_cast<std::uint64_t>(c.b));
    f.mix(c.capacitance);
  }
  f.mix(static_cast<std::uint64_t>(netlist.inductors().size()));
  for (const ckt::Inductor& l : netlist.inductors()) {
    f.mix(static_cast<std::uint64_t>(l.a));
    f.mix(static_cast<std::uint64_t>(l.b));
    f.mix(l.inductance);
  }
  f.mix(static_cast<std::uint64_t>(netlist.mutual_inductors().size()));
  for (const ckt::MutualInductor& m : netlist.mutual_inductors()) {
    f.mix(static_cast<std::uint64_t>(m.la));
    f.mix(static_cast<std::uint64_t>(m.lb));
    f.mix(m.mutual);
  }
  // Source incidence shapes the matrix; the waveform only shapes the RHS.
  f.mix(static_cast<std::uint64_t>(netlist.vsources().size()));
  for (const ckt::VSource& v : netlist.vsources()) {
    f.mix(static_cast<std::uint64_t>(v.pos));
    f.mix(static_cast<std::uint64_t>(v.neg));
  }
  f.mix(static_cast<std::uint64_t>(netlist.mosfets().size()));

  f.mix(options.dt);
  f.mix(options.gmin);
  f.mix(static_cast<std::uint64_t>(options.integrator));
  f.mix(options.v_abstol);
  f.mix(options.i_abstol);
  f.mix(options.rel_tol);
  f.mix(static_cast<std::uint64_t>(options.max_newton));
  f.mix(options.newton_damping_v);
  f.mix(static_cast<std::uint64_t>(options.assembly));
  f.mix(static_cast<std::uint64_t>(options.solver));
  f.mix(static_cast<std::uint64_t>(options.force_dense));
  f.mix(options.debug_cached_stamp_skew);
  f.mix(static_cast<std::uint64_t>(options.debug_cached_stamp_nan));
  return f.h;
}

bool scenario_group_equal(const Netlist& a, const Netlist& b) {
  // Nonlinear stamps depend on the per-lane Newton iterate: never shared.
  if (!a.mosfets().empty() || !b.mosfets().empty()) return false;
  if (a.node_count() != b.node_count()) return false;
  if (a.resistors().size() != b.resistors().size() ||
      a.capacitors().size() != b.capacitors().size() ||
      a.inductors().size() != b.inductors().size() ||
      a.mutual_inductors().size() != b.mutual_inductors().size() ||
      a.vsources().size() != b.vsources().size()) {
    return false;
  }
  for (std::size_t k = 0; k < a.resistors().size(); ++k) {
    const ckt::Resistor& ra = a.resistors()[k];
    const ckt::Resistor& rb = b.resistors()[k];
    if (ra.a != rb.a || ra.b != rb.b || !same_bits(ra.resistance, rb.resistance)) {
      return false;
    }
  }
  for (std::size_t k = 0; k < a.capacitors().size(); ++k) {
    const ckt::Capacitor& ca = a.capacitors()[k];
    const ckt::Capacitor& cb = b.capacitors()[k];
    if (ca.a != cb.a || ca.b != cb.b || !same_bits(ca.capacitance, cb.capacitance)) {
      return false;
    }
  }
  for (std::size_t k = 0; k < a.inductors().size(); ++k) {
    const ckt::Inductor& la = a.inductors()[k];
    const ckt::Inductor& lb = b.inductors()[k];
    if (la.a != lb.a || la.b != lb.b || !same_bits(la.inductance, lb.inductance)) {
      return false;
    }
  }
  for (std::size_t k = 0; k < a.mutual_inductors().size(); ++k) {
    const ckt::MutualInductor& ma = a.mutual_inductors()[k];
    const ckt::MutualInductor& mb = b.mutual_inductors()[k];
    if (ma.la != mb.la || ma.lb != mb.lb || !same_bits(ma.mutual, mb.mutual)) {
      return false;
    }
  }
  for (std::size_t k = 0; k < a.vsources().size(); ++k) {
    const ckt::VSource& va = a.vsources()[k];
    const ckt::VSource& vb = b.vsources()[k];
    if (va.pos != vb.pos || va.neg != vb.neg) return false;
  }
  return true;
}

bool scenario_options_equal(const TransientOptions& a, const TransientOptions& b) {
  return same_bits(a.dt, b.dt) && same_bits(a.gmin, b.gmin) &&
         a.integrator == b.integrator && same_bits(a.v_abstol, b.v_abstol) &&
         same_bits(a.i_abstol, b.i_abstol) && same_bits(a.rel_tol, b.rel_tol) &&
         a.max_newton == b.max_newton &&
         same_bits(a.newton_damping_v, b.newton_damping_v) &&
         a.assembly == b.assembly && a.solver == b.solver &&
         a.force_dense == b.force_dense &&
         same_bits(a.debug_cached_stamp_skew, b.debug_cached_stamp_skew) &&
         a.debug_cached_stamp_nan == b.debug_cached_stamp_nan;
}

// ----------------------------------------------------------- block engine ---

namespace {

// Lockstep engine over k lanes.  All per-lane data is SoA with a fixed
// stride W (the initial lane count): value of unknown/device i for lane j
// lives at [i * W + j].  Active lanes occupy columns 0..A-1; lanes retire
// from the tail (scenarios are sorted by descending t_stop, so the shortest
// runs sit at the end) and faulted lanes are removed by a stable left shift
// of the columns behind them (rare, O(n * k)), which preserves the
// descending order the tail scan relies on.
class BlockEngine {
public:
  BlockEngine(std::span<const BlockScenario> scenarios,
              const TransientOptions& options, std::span<const NodeId> probes,
              std::span<BlockOutcome> out)
      : opt_(options),
        nl0_(*scenarios[0].netlist),
        structure_(nl0_),
        m_(structure_.unknown_count()),
        solver_(detail::make_solver(structure_, options)),
        probes_(probes.begin(), probes.end()),
        out_(out) {
    // Resolve unknown indices once, exactly like the scalar engine.
    node_pos_.resize(nl0_.node_count(), npos);
    for (NodeId n = 1; n < nl0_.node_count(); ++n) {
      node_pos_[n] = structure_.node_index(n);
    }
    cap_pos_.reserve(nl0_.capacitors().size());
    for (const ckt::Capacitor& c : nl0_.capacitors()) {
      cap_pos_.push_back({c.a == ground ? npos : node_pos_[c.a],
                          c.b == ground ? npos : node_pos_[c.b]});
    }
    ind_pos_.resize(nl0_.inductors().size());
    ind_nodes_.reserve(nl0_.inductors().size());
    for (std::size_t k = 0; k < nl0_.inductors().size(); ++k) {
      ind_pos_[k] = structure_.inductor_index(k);
      const ckt::Inductor& l = nl0_.inductors()[k];
      ind_nodes_.push_back({l.a == ground ? npos : node_pos_[l.a],
                            l.b == ground ? npos : node_pos_[l.b]});
    }
    vsrc_pos_.resize(nl0_.vsources().size());
    for (std::size_t k = 0; k < nl0_.vsources().size(); ++k) {
      vsrc_pos_[k] = structure_.vsource_index(k);
    }
    probe_pos_.reserve(probes_.size());
    for (NodeId p : probes_) {
      probe_pos_.push_back(p == ground ? npos : node_pos_[p]);
    }

    // Longest-running lanes first, stable so equal t_stops keep input order.
    std::vector<std::size_t> order(scenarios.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scenarios[a].t_stop > scenarios[b].t_stop;
    });
    for (std::size_t slot : order) {
      const BlockScenario& s = scenarios[slot];
      if (!(s.t_stop > 0.0)) {
        // The scalar engine's precondition, confined to this lane.
        try {
          ensure(false, "simulate: bad time range");
        } catch (...) {
          out_[slot].error = std::current_exception();
        }
        continue;
      }
      lane_slot_.push_back(slot);
      lane_net_.push_back(s.netlist);
      lane_tstop_.push_back(s.t_stop);
      lane_budget_.push_back(s.budget);
      results_.emplace_back(probes_,
                            static_cast<std::size_t>(s.t_stop / opt_.dt) + 2);
    }

    w_ = lane_slot_.size();
    xb_.assign(m_ * w_, 0.0);
    rhsb_.assign(m_ * w_, 0.0);
    cap_v_.assign(nl0_.capacitors().size() * w_, 0.0);
    cap_i_.assign(nl0_.capacitors().size() * w_, 0.0);
    ind_i_.assign(nl0_.inductors().size() * w_, 0.0);
    ind_v_.assign(nl0_.inductors().size() * w_, 0.0);
    probe_vals_.assign(probes_.size(), 0.0);
    lane_rhs_.assign(m_, 0.0);
  }

  void run() {
    std::size_t a = w_;
    if (a == 0) return;

    // Shared DC factor + one blocked solve seeds every lane's operating
    // point (sources at t = 0, capacitors open, inductors shorted).
    refactor(0.0);
    assemble_rhs_block(0.0, 0.0, a);
    solver_->solve_block(rhsb_, a, w_);
    std::swap(xb_, rhsb_);
    seed_state(a);
    record_active(0.0, a);

    const double dt = opt_.dt;
    double t = 0.0;
    std::int64_t step = 0;
    while (a > 0) {
      // Tail scan: finished lanes retire; lanes within one step of their
      // horizon take their shortened final step on the tail solver.
      while (a > 0) {
        const std::size_t j = a - 1;
        if (t >= lane_tstop_[j] - 1e-21) {
          finalize(j);
          --a;
          pop_lane();
          continue;
        }
        if (lane_tstop_[j] - t < dt) {
          partial_step(j, t, step);
          --a;
          pop_lane();
          continue;
        }
        break;
      }
      if (a == 0) break;

      // Per-lane step accounting, with failures confined to the lane.
      for (std::size_t j = 0; j < a;) {
        if (lane_budget_[j]) {
          try {
            lane_budget_[j]->charge_transient_steps(1, "transient");
          } catch (...) {
            out_[lane_slot_[j]].error = std::current_exception();
            remove_lane(j, a);
            --a;
            continue;
          }
        }
        ++j;
      }
      if (a == 0) break;

      if (factored_h_ != dt) refactor(dt);
      const double t_next = t + dt;
      assemble_rhs_block(t_next, dt, a);
      solver_->solve_block(rhsb_, a, w_);
      std::swap(xb_, rhsb_);

      ++step;
      if ((step & 63) == 0) {
        for (std::size_t j = 0; j < a;) {
          if (!lane_finite(j)) {
            fail_nonfinite(j);
            remove_lane(j, a);
            --a;
          } else {
            ++j;
          }
        }
        if (a == 0) break;
      }

      advance_state(dt, a);
      t = t_next;
      record_active(t, a);
    }
  }

private:
  struct Pair {
    std::size_t a;
    std::size_t b;
  };

  void refactor(double h) {
    solver_->clear();
    detail::assemble_static_stamps(*solver_, nl0_, structure_, h, opt_.gmin, opt_,
                                   /*cached_path=*/true);
    solver_->factor();
    factored_h_ = h;
  }

  // Blocked RHS assembly.  Device-outer, lane-inner: each lane's column
  // receives exactly the scalar assemble_rhs operation sequence (same
  // expression shapes, same order), so lane values are bitwise-identical to
  // a per-slot run.
  void assemble_rhs_block(double t, double h, std::size_t a) {
    std::fill(rhsb_.begin(), rhsb_.end(), 0.0);
    const bool dc = h <= 0.0;
    const bool trap = opt_.integrator == Integrator::trapezoidal;

    if (!dc) {
      for (std::size_t k = 0; k < nl0_.capacitors().size(); ++k) {
        const double geq = (trap ? 2.0 : 1.0) * nl0_.capacitors()[k].capacitance / h;
        const auto [pa, pb] = cap_pos_[k];
        const double* sv = &cap_v_[k * w_];
        const double* si = &cap_i_[k * w_];
        for (std::size_t j = 0; j < a; ++j) {
          const double ieq = geq * sv[j] + (trap ? si[j] : 0.0);
          if (pb != npos) rhsb_[pb * w_ + j] -= ieq;
          if (pa != npos) rhsb_[pa * w_ + j] += ieq;
        }
      }
    }

    for (std::size_t k = 0; k < nl0_.inductors().size(); ++k) {
      const double req = dc ? 0.0 : (trap ? 2.0 : 1.0) * nl0_.inductors()[k].inductance / h;
      const double* sv = &ind_v_[k * w_];
      const double* si = &ind_i_[k * w_];
      double* row = &rhsb_[ind_pos_[k] * w_];
      for (std::size_t j = 0; j < a; ++j) {
        row[j] = dc ? 0.0 : (trap ? -sv[j] - req * si[j] : -req * si[j]);
      }
    }

    if (!dc) {
      for (const ckt::MutualInductor& m : nl0_.mutual_inductors()) {
        const double req = (trap ? 2.0 : 1.0) * m.mutual / h;
        double* rowa = &rhsb_[ind_pos_[m.la] * w_];
        double* rowb = &rhsb_[ind_pos_[m.lb] * w_];
        const double* ia = &ind_i_[m.la * w_];
        const double* ib = &ind_i_[m.lb * w_];
        for (std::size_t j = 0; j < a; ++j) rowa[j] -= req * ib[j];
        for (std::size_t j = 0; j < a; ++j) rowb[j] -= req * ia[j];
      }
    }

    // The only lane-divergent input: each lane evaluates its own source
    // waveforms (the matrix never sees them).
    for (std::size_t k = 0; k < nl0_.vsources().size(); ++k) {
      double* row = &rhsb_[vsrc_pos_[k] * w_];
      for (std::size_t j = 0; j < a; ++j) {
        row[j] = lane_net_[j]->vsources()[k].voltage.value_at(t);
      }
    }
  }

  // Single-lane RHS for the shortened final step, same scalar sequence.
  void assemble_rhs_lane(double t, double h, std::size_t j) {
    std::fill(lane_rhs_.begin(), lane_rhs_.end(), 0.0);
    const bool dc = h <= 0.0;
    const bool trap = opt_.integrator == Integrator::trapezoidal;

    if (!dc) {
      for (std::size_t k = 0; k < nl0_.capacitors().size(); ++k) {
        const double geq = (trap ? 2.0 : 1.0) * nl0_.capacitors()[k].capacitance / h;
        const double ieq =
            geq * cap_v_[k * w_ + j] + (trap ? cap_i_[k * w_ + j] : 0.0);
        const auto [pa, pb] = cap_pos_[k];
        if (pb != npos) lane_rhs_[pb] -= ieq;
        if (pa != npos) lane_rhs_[pa] += ieq;
      }
    }
    for (std::size_t k = 0; k < nl0_.inductors().size(); ++k) {
      const double req = dc ? 0.0 : (trap ? 2.0 : 1.0) * nl0_.inductors()[k].inductance / h;
      lane_rhs_[ind_pos_[k]] =
          dc ? 0.0
             : (trap ? -ind_v_[k * w_ + j] - req * ind_i_[k * w_ + j]
                     : -req * ind_i_[k * w_ + j]);
    }
    if (!dc) {
      for (const ckt::MutualInductor& m : nl0_.mutual_inductors()) {
        const double req = (trap ? 2.0 : 1.0) * m.mutual / h;
        lane_rhs_[ind_pos_[m.la]] -= req * ind_i_[m.lb * w_ + j];
        lane_rhs_[ind_pos_[m.lb]] -= req * ind_i_[m.la * w_ + j];
      }
    }
    for (std::size_t k = 0; k < nl0_.vsources().size(); ++k) {
      lane_rhs_[vsrc_pos_[k]] = lane_net_[j]->vsources()[k].voltage.value_at(t);
    }
  }

  void seed_state(std::size_t a) {
    for (std::size_t k = 0; k < nl0_.capacitors().size(); ++k) {
      const auto [pa, pb] = cap_pos_[k];
      double* sv = &cap_v_[k * w_];
      for (std::size_t j = 0; j < a; ++j) {
        const double va = pa == npos ? 0.0 : xb_[pa * w_ + j];
        const double vb = pb == npos ? 0.0 : xb_[pb * w_ + j];
        sv[j] = va - vb;
      }
    }
    for (std::size_t k = 0; k < nl0_.inductors().size(); ++k) {
      double* si = &ind_i_[k * w_];
      const double* row = &xb_[ind_pos_[k] * w_];
      for (std::size_t j = 0; j < a; ++j) si[j] = row[j];
    }
  }

  void advance_state(double h, std::size_t a) {
    const bool trap = opt_.integrator == Integrator::trapezoidal;
    for (std::size_t k = 0; k < nl0_.capacitors().size(); ++k) {
      const double geq = (trap ? 2.0 : 1.0) * nl0_.capacitors()[k].capacitance / h;
      const auto [pa, pb] = cap_pos_[k];
      double* sv = &cap_v_[k * w_];
      double* si = &cap_i_[k * w_];
      for (std::size_t j = 0; j < a; ++j) {
        const double va = pa == npos ? 0.0 : xb_[pa * w_ + j];
        const double vb = pb == npos ? 0.0 : xb_[pb * w_ + j];
        const double v_new = va - vb;
        const double i_new =
            trap ? geq * (v_new - sv[j]) - si[j] : geq * (v_new - sv[j]);
        sv[j] = v_new;
        si[j] = i_new;
      }
    }
    for (std::size_t k = 0; k < nl0_.inductors().size(); ++k) {
      const auto [pa, pb] = ind_nodes_[k];
      double* si = &ind_i_[k * w_];
      double* sv = &ind_v_[k * w_];
      const double* row = &xb_[ind_pos_[k] * w_];
      for (std::size_t j = 0; j < a; ++j) {
        si[j] = row[j];
        const double va = pa == npos ? 0.0 : xb_[pa * w_ + j];
        const double vb = pb == npos ? 0.0 : xb_[pb * w_ + j];
        sv[j] = va - vb;
      }
    }
  }

  void record_active(double t, std::size_t a) {
    for (std::size_t j = 0; j < a; ++j) {
      for (std::size_t p = 0; p < probe_pos_.size(); ++p) {
        probe_vals_[p] = probe_pos_[p] == npos ? 0.0 : xb_[probe_pos_[p] * w_ + j];
      }
      results_[j].record_probe_values(t, probe_vals_);
    }
  }

  bool lane_finite(std::size_t j) const {
    for (std::size_t i = 0; i < m_; ++i) {
      if (!std::isfinite(xb_[i * w_ + j])) return false;
    }
    return true;
  }

  void fail_nonfinite(std::size_t j) {
    out_[lane_slot_[j]].error = std::make_exception_ptr(SingularMatrixError(
        "transient: non-finite solution (singular or NaN-stamped system)"));
  }

  // Lane finished with a full step on the previous iteration: the scalar
  // loop would exit and run its final finiteness guard over the solution.
  void finalize(std::size_t j) {
    if (!lane_finite(j)) {
      fail_nonfinite(j);
      return;
    }
    out_[lane_slot_[j]].result = std::move(results_[j]);
  }

  // Shortened final step (h = t_stop - t < dt), run on a dedicated tail
  // solver: identical stamps + identical factorization algorithm produce
  // the factor the scalar engine's in-place refactor would, so the lane's
  // last sample is bitwise-identical too.
  void partial_step(std::size_t j, double t, std::int64_t step) {
    try {
      if (lane_budget_[j]) lane_budget_[j]->charge_transient_steps(1, "transient");
      const double h = lane_tstop_[j] - t;
      const double t_next = t + h;
      if (!tail_) tail_ = detail::make_solver(structure_, opt_);
      tail_->clear();
      detail::assemble_static_stamps(*tail_, nl0_, structure_, h, opt_.gmin, opt_,
                                     /*cached_path=*/true);
      tail_->factor();
      assemble_rhs_lane(t_next, h, j);
      tail_->solve_into(lane_rhs_);
      const bool finite = [&] {
        for (double v : lane_rhs_) {
          if (!std::isfinite(v)) return false;
        }
        return true;
      }();
      // Periodic guard at this lane's step count, then the final guard —
      // both collapse to the same verdict on the final solution.
      if (((step + 1) & 63) == 0 && !finite) {
        fail_nonfinite(j);
        return;
      }
      for (std::size_t p = 0; p < probe_pos_.size(); ++p) {
        probe_vals_[p] =
            probe_pos_[p] == npos ? 0.0 : lane_rhs_[probe_pos_[p]];
      }
      results_[j].record_probe_values(t_next, probe_vals_);
      if (!finite) {
        fail_nonfinite(j);
        return;
      }
      out_[lane_slot_[j]].result = std::move(results_[j]);
    } catch (...) {
      out_[lane_slot_[j]].error = std::current_exception();
    }
  }

  void pop_lane() {
    lane_slot_.pop_back();
    lane_net_.pop_back();
    lane_tstop_.pop_back();
    lane_budget_.pop_back();
    results_.pop_back();
  }

  // Stable removal of a faulted mid-array lane: shift the columns behind it
  // left so the descending-t_stop order (and every lane's column index)
  // stays consistent.  Rare, so the O(n * k) copy is irrelevant.
  void remove_lane(std::size_t j, std::size_t a) {
    auto shift = [&](std::vector<double>& arr, std::size_t rows) {
      for (std::size_t i = 0; i < rows; ++i) {
        double* row = &arr[i * w_];
        for (std::size_t c = j; c + 1 < a; ++c) row[c] = row[c + 1];
      }
    };
    shift(xb_, m_);
    shift(cap_v_, nl0_.capacitors().size());
    shift(cap_i_, nl0_.capacitors().size());
    shift(ind_i_, nl0_.inductors().size());
    shift(ind_v_, nl0_.inductors().size());
    lane_slot_.erase(lane_slot_.begin() + static_cast<std::ptrdiff_t>(j));
    lane_net_.erase(lane_net_.begin() + static_cast<std::ptrdiff_t>(j));
    lane_tstop_.erase(lane_tstop_.begin() + static_cast<std::ptrdiff_t>(j));
    lane_budget_.erase(lane_budget_.begin() + static_cast<std::ptrdiff_t>(j));
    results_.erase(results_.begin() + static_cast<std::ptrdiff_t>(j));
  }

  const TransientOptions& opt_;
  const Netlist& nl0_;
  MnaStructure structure_;
  std::size_t m_;
  std::unique_ptr<detail::LinearSolver> solver_;
  std::unique_ptr<detail::LinearSolver> tail_;
  std::vector<NodeId> probes_;
  std::span<BlockOutcome> out_;

  std::vector<std::size_t> node_pos_;
  std::vector<Pair> cap_pos_;
  std::vector<std::size_t> ind_pos_;
  std::vector<Pair> ind_nodes_;
  std::vector<std::size_t> vsrc_pos_;
  std::vector<std::size_t> probe_pos_;

  // Active-lane bookkeeping, sorted by descending t_stop.
  std::vector<std::size_t> lane_slot_;
  std::vector<const Netlist*> lane_net_;
  std::vector<double> lane_tstop_;
  std::vector<util::ExecTracker*> lane_budget_;
  std::vector<TransientResult> results_;

  // SoA blocks with fixed stride w_ (lane j of row i at [i * w_ + j]).
  std::size_t w_ = 0;
  std::vector<double> xb_;
  std::vector<double> rhsb_;
  std::vector<double> cap_v_;
  std::vector<double> cap_i_;
  std::vector<double> ind_i_;
  std::vector<double> ind_v_;
  std::vector<double> probe_vals_;
  std::vector<double> lane_rhs_;

  double factored_h_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace

std::vector<BlockOutcome> simulate_block(std::span<const BlockScenario> scenarios,
                                         const TransientOptions& options,
                                         std::span<const NodeId> probes) {
  std::vector<BlockOutcome> out(scenarios.size());
  if (scenarios.empty()) return out;
  ensure(options.dt > 0.0, "simulate_block: bad time step");
  ensure(options.budget == nullptr,
         "simulate_block: shared budget not supported (use per-lane budgets)");
  ensure(options.assembly == AssemblyMode::cached,
         "simulate_block: cached assembly only");
  const Netlist& nl0 = *scenarios[0].netlist;
  ensure(nl0.mosfets().empty(), "simulate_block: linear netlists only");
  for (const BlockScenario& s : scenarios) {
    ensure(s.netlist != nullptr, "simulate_block: null netlist");
    ensure(scenario_group_equal(nl0, *s.netlist),
           "simulate_block: scenarios must be group-equal");
  }
  BlockEngine engine(scenarios, options, probes, out);
  engine.run();
  return out;
}

}  // namespace rlceff::sim
