// Shared-factorization multi-RHS scenario batching.
//
// A characterization sweep runs the same linear replay deck hundreds of
// times with only the source waveform (slew) and stop time changing: the
// MNA matrix — a function of topology, element values, and the step size —
// is identical across those runs, so per-slot simulation refactors the same
// matrix and re-walks the same substitution sweeps once per scenario.
// simulate_block() instead factors the static image once per (group, step
// size) and advances all scenarios in lockstep, one blocked n x k solve per
// time step, with SoA state/waveform storage so the per-step inner loops
// run contiguously across lanes and vectorize.
//
// Bitwise contract: each lane of a block executes exactly the operation
// sequence of sim::simulate() on that scenario alone — same stamp order,
// same factorization (of the same matrix), same per-lane solve sequence
// (util's solve_block replicates even the value-dependent skips per lane),
// same time accumulation and record points.  Batched waveforms are
// therefore bitwise-identical to per-slot waveforms, not merely close; the
// equivalence and property suites assert that across all three backends.
//
// Grouping safety: callers decide which scenarios may share a factorization
// with scenario_group_hash() (a cheap bucket key) confirmed by
// scenario_group_equal() + scenario_options_equal() (exhaustive bit-level
// compares).  Two recipes differing by one ULP in a single element value or
// by one topology edge hash differently *and* fail the confirm, so
// near-identical scenarios can never alias into one matrix.
//
// Isolation: each lane may carry its own ExecTracker.  A lane that faults
// (budget exhausted, non-finite solution) is retired with its error
// captured in its BlockOutcome; the remaining lanes continue unperturbed
// and still produce bitwise-identical results — a faulted scenario never
// poisons its group-mates.
#ifndef RLCEFF_SIM_SCENARIO_BLOCK_H
#define RLCEFF_SIM_SCENARIO_BLOCK_H

#include <cstdint>
#include <exception>
#include <optional>
#include <span>
#include <vector>

#include "circuit/netlist.h"
#include "sim/transient.h"
#include "util/budget.h"

namespace rlceff::sim {

// One scenario lane of a block.  The netlist must be scenario_group_equal
// to every other lane's netlist (same topology and element values; only the
// voltage-source *waveforms* may differ).  The optional tracker is charged
// one transient step per accepted step, exactly like TransientOptions::
// budget in the scalar engine, but failures are confined to this lane.
struct BlockScenario {
  const ckt::Netlist* netlist = nullptr;
  double t_stop = 0.0;
  util::ExecTracker* budget = nullptr;
};

// Per-lane outcome: exactly one of `result` / `error` is set.  The error is
// whatever the scalar engine would have thrown for that scenario alone
// (BudgetError, DeadlineError, SingularMatrixError, ...).
struct BlockOutcome {
  std::optional<TransientResult> result;
  std::exception_ptr error;
};

// Bucket key for grouping: hashes the netlist topology and element values
// (every double at full bit precision) and the matrix-shaping simulation
// options (dt, gmin, integrator, solver, assembly, debug hooks — not
// t_stop, not the budget) — everything the factored matrix depends on,
// nothing the RHS alone depends on (source waveforms are excluded).
std::uint64_t scenario_group_hash(const ckt::Netlist& netlist,
                                  const TransientOptions& options);

// Exhaustive confirm behind the hash: true iff the two netlists produce
// bit-identical MNA matrices at every step size — same node count, same
// device lists with bit-equal values (so a one-ULP perturbation never
// aliases), same source incidence (waveforms ignored).  Netlists with
// MOSFETs never group (nonlinear stamps depend on the per-lane solution).
bool scenario_group_equal(const ckt::Netlist& a, const ckt::Netlist& b);

// Option-side confirm: true iff every matrix- or sequence-shaping field
// matches bitwise (t_stop and budget excluded — those are per-lane).
bool scenario_options_equal(const TransientOptions& a, const TransientOptions& b);

// Runs every scenario from its DC operating point to its own t_stop with
// one shared factorization per step size, recording `probes` (shared by the
// group; node ids are identical across group-equal netlists).
//
// Requirements (ensure-checked): at least dt > 0, cached assembly, no
// shared options.budget (use per-lane trackers), linear netlists, and every
// lane scenario_group_equal to the first.  A failure of the *shared*
// machinery (e.g. a singular group matrix) throws out of this function;
// per-lane failures come back in the lane's BlockOutcome.
std::vector<BlockOutcome> simulate_block(std::span<const BlockScenario> scenarios,
                                         const TransientOptions& options,
                                         std::span<const ckt::NodeId> probes);

}  // namespace rlceff::sim

#endif  // RLCEFF_SIM_SCENARIO_BLOCK_H
