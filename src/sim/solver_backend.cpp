#include "sim/solver_backend.h"

#include <algorithm>
#include <limits>

namespace rlceff::sim::detail {

namespace {

using ckt::ground;
using ckt::NodeId;

// Banded-vs-others predicate: RCM kept the band narrow enough that the
// banded LU's O(n * bw^2) factor / O(n * bw) solve wins outright.  The
// absolute cap keeps big decks whose *relative* band happens to be narrow
// (a bushy clock tree can RCM to bw ~ n / 15) off the band path, where the
// O(n * bw) storage alone would run to gigabytes; those fall through to the
// sparse/dense choice below.
bool bandwidth_is_narrow(std::size_t n, std::size_t bw) {
  return bw <= std::min<std::size_t>(512, std::max<std::size_t>(8, n / 4));
}

// Sparse-vs-dense predicate for wide-bandwidth systems: per step the
// factor-once paths cost one substitution sweep — O(L+U nonzeros) sparse
// (a small multiple of the pattern for fill-reduced circuit matrices)
// versus O(n^2) dense — so sparse wins once the system is large enough
// that the estimated fill-bloated pattern is well under the dense triangle.
// Small systems stay dense: flat arrays beat index chasing there.
bool sparse_is_cheaper(std::size_t n, std::size_t nnz) {
  return n >= 128 && 8 * nnz < n * n / 2;
}

void stamp_conductance(LinearSolver& solver, const ckt::MnaStructure& structure,
                       NodeId a, NodeId b, double g) {
  if (a != ground) {
    const std::size_t ia = structure.node_index(a);
    solver.add(ia, ia, g);
    if (b != ground) solver.add(ia, structure.node_index(b), -g);
  }
  if (b != ground) {
    const std::size_t ib = structure.node_index(b);
    solver.add(ib, ib, g);
    if (a != ground) solver.add(ib, structure.node_index(a), -g);
  }
}

}  // namespace

SolverKind resolve_solver_kind(std::size_t n, std::size_t bw, std::size_t nnz,
                               const TransientOptions& options) {
  if (options.solver != SolverKind::automatic) return options.solver;
  if (options.force_dense) return SolverKind::dense;  // deprecated spelling
  if (bandwidth_is_narrow(n, bw)) return SolverKind::banded;
  if (sparse_is_cheaper(n, nnz)) return SolverKind::sparse;
  return SolverKind::dense;
}

std::unique_ptr<LinearSolver> make_solver(const ckt::MnaStructure& structure,
                                          const TransientOptions& options) {
  const std::size_t n = structure.unknown_count();
  switch (resolve_solver_kind(n, structure.bandwidth(), structure.pattern_nonzeros(),
                              options)) {
    case SolverKind::banded:
      return std::make_unique<BandedSolver>(n, structure.bandwidth());
    case SolverKind::sparse:
      return std::make_unique<SparseSolver>(structure, options.budget);
    default:
      return std::make_unique<DenseSolver>(n);
  }
}

void assemble_static_stamps(LinearSolver& solver, const ckt::Netlist& nl,
                            const ckt::MnaStructure& structure, double h,
                            double gmin, const TransientOptions& opt,
                            bool cached_path) {
  const bool dc = h <= 0.0;
  const bool trap = opt.integrator == Integrator::trapezoidal;

  for (NodeId n = 1; n < nl.node_count(); ++n) {
    solver.add(structure.node_index(n), structure.node_index(n), gmin);
  }

  for (const ckt::Resistor& r : nl.resistors()) {
    stamp_conductance(solver, structure, r.a, r.b, 1.0 / r.resistance);
  }

  if (!dc) {
    // Property-harness fault injection: skew the cached-path capacitor
    // stamps so the cached-vs-naive oracle must fire (see
    // TransientOptions).  skew == 0 leaves the stamps bit-identical.
    const double skew = cached_path ? 1.0 + opt.debug_cached_stamp_skew : 1.0;
    bool first_cap = true;
    for (const ckt::Capacitor& c : nl.capacitors()) {
      double g = skew * (trap ? 2.0 : 1.0) * c.capacitance / h;
      if (first_cap && cached_path && opt.debug_cached_stamp_nan) {
        g = std::numeric_limits<double>::quiet_NaN();
      }
      first_cap = false;
      stamp_conductance(solver, structure, c.a, c.b, g);
    }
  }

  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const ckt::Inductor& l = nl.inductors()[k];
    const std::size_t j = structure.inductor_index(k);
    const double req = dc ? 0.0 : (trap ? 2.0 : 1.0) * l.inductance / h;
    // Branch equation: (va - vb) - req * i = e_n.
    if (l.a != ground) {
      solver.add(j, structure.node_index(l.a), 1.0);
      solver.add(structure.node_index(l.a), j, 1.0);
    }
    if (l.b != ground) {
      solver.add(j, structure.node_index(l.b), -1.0);
      solver.add(structure.node_index(l.b), j, -1.0);
    }
    solver.add(j, j, -req);
  }

  // Mutual inductance couples the two branch equations: the companion term
  // M * di_other/dt adds -req_m * i_other to each row, symmetrically.  In
  // DC both inductors are shorts and the mutual contributes nothing.
  if (!dc) {
    for (const ckt::MutualInductor& m : nl.mutual_inductors()) {
      const double req = (trap ? 2.0 : 1.0) * m.mutual / h;
      const std::size_t ja = structure.inductor_index(m.la);
      const std::size_t jb = structure.inductor_index(m.lb);
      solver.add(ja, jb, -req);
      solver.add(jb, ja, -req);
    }
  }

  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const ckt::VSource& v = nl.vsources()[k];
    const std::size_t j = structure.vsource_index(k);
    if (v.pos != ground) {
      solver.add(j, structure.node_index(v.pos), 1.0);
      solver.add(structure.node_index(v.pos), j, 1.0);
    }
    if (v.neg != ground) {
      solver.add(j, structure.node_index(v.neg), -1.0);
      solver.add(structure.node_index(v.neg), j, -1.0);
    }
  }
}

}  // namespace rlceff::sim::detail
