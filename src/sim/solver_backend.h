// Internal solver backends shared by the scalar transient engine
// (sim/transient.cpp) and the blocked scenario engine (sim/scenario_block.cpp).
//
// This is the factor-once contract in one place: a LinearSolver assembles a
// "working" matrix, snapshots/restores it at memcpy cost, factors it in
// place, and then runs allocation-free substitution sweeps — either one RHS
// at a time (solve_into) or a whole n x k scenario block (solve_block, each
// lane bitwise-identical to a single-RHS solve).  Keeping both engines on
// the same backend classes and the same static-stamp sequence is what makes
// "batched waveforms bitwise-identical to the per-slot path" a structural
// property instead of a numerical accident.
//
// Not installed API: everything here lives in sim::detail and may change
// freely; callers outside src/sim use sim/transient.h and
// sim/scenario_block.h.
#ifndef RLCEFF_SIM_SOLVER_BACKEND_H
#define RLCEFF_SIM_SOLVER_BACKEND_H

#include <cstddef>
#include <memory>
#include <optional>
#include <span>

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "sim/transient.h"
#include "util/linalg.h"
#include "util/sparse.h"

namespace rlceff::sim::detail {

// Uniform interface over the banded, dense, and sparse factorizations.
//
// The engine assembles into a "working" matrix.  save_static()/load_static()
// snapshot and restore the working values (a memcpy, never an allocation),
// so the linear-device stamps survive across Newton iterations and time
// steps.  factor() destroys the working values in place; solve_into() then
// runs the substitution sweeps on a caller-owned buffer with zero heap
// traffic.  solve_block() does the same for `lanes` right-hand sides stored
// as an n x stride row-major block, with every lane's operation sequence
// identical to solve_into on that lane alone.
class LinearSolver {
public:
  virtual ~LinearSolver() = default;
  virtual void clear() = 0;
  virtual void add(std::size_t r, std::size_t c, double v) = 0;
  virtual void save_static() = 0;
  virtual void load_static() = 0;
  virtual void factor() = 0;
  // x holds the rhs on entry and the solution on exit.
  virtual void solve_into(std::span<double> x) = 0;
  // Blocked multi-RHS variant; lane s of unknown i lives at x[i * stride + s].
  virtual void solve_block(std::span<double> x, std::size_t lanes,
                           std::size_t stride) = 0;
};

class BandedSolver final : public LinearSolver {
public:
  BandedSolver(std::size_t n, std::size_t bw) : n_(n), bw_(bw), a_(n, bw, bw) {}
  void clear() override { a_.set_zero(); }
  void add(std::size_t r, std::size_t c, double v) override { a_.add(r, c, v); }
  void save_static() override {
    // Lazy: only the nonlinear cached path pays for the second matrix.
    if (!static_image_) static_image_.emplace(n_, bw_, bw_);
    static_image_->copy_values_from(a_);
  }
  void load_static() override { a_.copy_values_from(*static_image_); }
  void factor() override { a_.factor(); }
  void solve_into(std::span<double> x) override { a_.solve_into(x); }
  void solve_block(std::span<double> x, std::size_t lanes,
                   std::size_t stride) override {
    a_.solve_block(x, lanes, stride);
  }

private:
  std::size_t n_;
  std::size_t bw_;
  util::BandedMatrix a_;
  std::optional<util::BandedMatrix> static_image_;
};

class DenseSolver final : public LinearSolver {
public:
  explicit DenseSolver(std::size_t n) : a_(n, n) {}
  void clear() override { a_.set_zero(); }
  void add(std::size_t r, std::size_t c, double v) override { a_(r, c) += v; }
  void save_static() override { static_image_ = a_; }
  void load_static() override { a_ = static_image_; }
  void factor() override { util::lu_factor_into(a_, f_); }
  void solve_into(std::span<double> x) override { util::lu_solve_into(f_, x); }
  void solve_block(std::span<double> x, std::size_t lanes,
                   std::size_t stride) override {
    util::lu_solve_block(f_, x, lanes, stride);
  }

private:
  util::DenseMatrix a_;
  util::DenseMatrix static_image_;
  util::LuFactors f_;
};

// The compressed-sparse backend: the MNA image is a CSC matrix over the
// fixed pattern MnaStructure derives from the device list, and the
// factorization is the fill-reducing sparse LU from util/sparse.h.  The
// static image is a second values array restored by memcpy, so the cached
// assembly contract (identical stamp sequence into identical storage) holds
// bitwise just like the dense/banded backends.  The budget tracker is
// threaded into factor/solve so one large factorization honors deadlines and
// cancellation from the inside (null in the blocked engine, whose budgets
// are per scenario lane).
class SparseSolver final : public LinearSolver {
public:
  SparseSolver(const ckt::MnaStructure& structure, util::ExecTracker* budget)
      : a_(structure.unknown_count(), structure.sparse_pattern()), budget_(budget) {
    lu_.analyze(a_);
  }
  void clear() override { a_.set_zero(); }
  void add(std::size_t r, std::size_t c, double v) override { a_.add(r, c, v); }
  void save_static() override {
    if (!static_image_) {
      static_image_.emplace(a_);
    } else {
      static_image_->copy_values_from(a_);
    }
  }
  void load_static() override { a_.copy_values_from(*static_image_); }
  void factor() override { lu_.factor(a_, budget_); }
  void solve_into(std::span<double> x) override { lu_.solve_into(x, budget_); }
  void solve_block(std::span<double> x, std::size_t lanes,
                   std::size_t stride) override {
    lu_.solve_block(x, lanes, stride);
  }

private:
  util::SparseMatrix a_;
  std::optional<util::SparseMatrix> static_image_;
  util::SparseLu lu_;
  util::ExecTracker* budget_;
};

// The selection heuristic behind SolverKind::automatic (see
// sim::selected_solver for the contract).
SolverKind resolve_solver_kind(std::size_t n, std::size_t bw, std::size_t nnz,
                               const TransientOptions& options);

std::unique_ptr<LinearSolver> make_solver(const ckt::MnaStructure& structure,
                                          const TransientOptions& options);

// Stamps every matrix entry that depends only on (h, gmin): gmin loading,
// resistors, companion conductances, and the branch incidence rows of
// inductors and voltage sources.  h <= 0 selects DC (capacitors open,
// inductors shorted).  `cached_path` gates the property-harness fault hooks
// (TransientOptions::debug_cached_stamp_*), which poison only the cached
// assembly path.  The stamp sequence is the bitwise contract shared by the
// scalar and blocked engines — change it in lockstep with assemble_rhs in
// both.
void assemble_static_stamps(LinearSolver& solver, const ckt::Netlist& nl,
                            const ckt::MnaStructure& structure, double h,
                            double gmin, const TransientOptions& opt,
                            bool cached_path);

}  // namespace rlceff::sim::detail

#endif  // RLCEFF_SIM_SOLVER_BACKEND_H
