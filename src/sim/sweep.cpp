#include "sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace rlceff::sim {

unsigned sweep_worker_count(std::size_t n_tasks, unsigned n_threads) {
  if (n_tasks == 0) return 0;
  if (n_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n_threads = hw != 0 ? hw : 1;
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(n_threads, n_tasks));
}

std::vector<std::exception_ptr> run_indexed_sweep_collect(
    std::size_t n_tasks, const std::function<void(std::size_t)>& task,
    unsigned n_threads) {
  std::vector<std::exception_ptr> errors(n_tasks);
  const unsigned workers = sweep_worker_count(n_tasks, n_threads);
  if (workers == 0) return errors;

  // Work-stealing over an atomic cursor; each slot of `errors` is written by
  // exactly one worker (the one that claimed index i), so no lock is needed.
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_tasks) return;
      try {
        task(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  if (workers == 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (std::thread& worker : pool) worker.join();
  }
  return errors;
}

void run_indexed_sweep(std::size_t n_tasks,
                       const std::function<void(std::size_t)>& task,
                       unsigned n_threads) {
  // Every index is attempted even after a failure, and walking the slots in
  // order makes the rethrown (lowest-index) exception independent of
  // scheduling.
  for (std::exception_ptr& error :
       run_indexed_sweep_collect(n_tasks, task, n_threads)) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace rlceff::sim
