#include "sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace rlceff::sim {

unsigned sweep_worker_count(std::size_t n_tasks, unsigned n_threads) {
  if (n_tasks == 0) return 0;
  if (n_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n_threads = hw != 0 ? hw : 1;
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(n_threads, n_tasks));
}

void run_indexed_sweep(std::size_t n_tasks,
                       const std::function<void(std::size_t)>& task,
                       unsigned n_threads) {
  const unsigned workers = sweep_worker_count(n_tasks, n_threads);
  if (workers == 0) return;

  std::atomic<std::size_t> next{0};
  std::mutex failure_mutex;
  std::size_t failed_index = n_tasks;
  std::exception_ptr failure;

  // Work-stealing over an atomic cursor; every index is attempted even after
  // a failure so the rethrown (lowest-index) exception does not depend on
  // scheduling.
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_tasks) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (i < failed_index) {
          failed_index = i;
          failure = std::current_exception();
        }
      }
    }
  };

  if (workers == 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (std::thread& worker : pool) worker.join();
  }

  if (failure) std::rethrow_exception(failure);
}

}  // namespace rlceff::sim
