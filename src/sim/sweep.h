// Parallel scenario sweep runner.
//
// Characterization and reproduction workloads are batches of fully
// independent transient/modeling scenarios: a library grid is ~80 decks, the
// Fig-7 sweep is hundreds of experiment cases.  run_sweep() executes such a
// batch on a small thread pool with deterministic semantics: results[i]
// always corresponds to scenarios[i] regardless of thread count or
// scheduling, every task is attempted even when earlier ones fail, and the
// exception of the lowest failing index is the one rethrown.
//
// run_sweep_collect() is the failure-isolating variant the api::Engine batch
// path uses: instead of rethrowing, every slot carries either its result or
// the exception that task raised, so one bad scenario cannot abort the rest
// of the batch.
#ifndef RLCEFF_SIM_SWEEP_H
#define RLCEFF_SIM_SWEEP_H

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace rlceff::sim {

// Number of workers actually used for a batch: `n_threads` (0 selects the
// hardware concurrency) clamped to the task count.
unsigned sweep_worker_count(std::size_t n_tasks, unsigned n_threads);

// Runs task(0) ... task(n_tasks - 1) across `n_threads` workers and blocks
// until every one of them was attempted.  Returns one slot per task: null
// for tasks that completed, the captured exception for tasks that threw.
// Tasks must not touch shared mutable state (or only thread-safe state, such
// as charlib::CellLibrary).
std::vector<std::exception_ptr> run_indexed_sweep_collect(
    std::size_t n_tasks, const std::function<void(std::size_t)>& task,
    unsigned n_threads = 0);

// Like run_indexed_sweep_collect, but rethrows the exception of the lowest
// failing index (after attempting every task).
void run_indexed_sweep(std::size_t n_tasks,
                       const std::function<void(std::size_t)>& task,
                       unsigned n_threads = 0);

// One slot of run_sweep_collect: either the task's result or the exception
// it raised.  Exactly one of the two is set.
template <class Result>
struct SweepSlot {
  std::optional<Result> result;
  std::exception_ptr error;

  bool ok() const { return result.has_value(); }
};

// Maps `fn` over `scenarios` in parallel with per-slot failure isolation:
// slots[i] holds fn(scenarios[i])'s result, or the exception it threw.
template <class Scenario, class Fn>
auto run_sweep_collect(std::span<const Scenario> scenarios, Fn&& fn,
                       unsigned n_threads = 0)
    -> std::vector<SweepSlot<std::decay_t<std::invoke_result_t<Fn&, const Scenario&>>>> {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Scenario&>>;
  std::vector<SweepSlot<Result>> slots(scenarios.size());
  std::vector<std::exception_ptr> errors = run_indexed_sweep_collect(
      scenarios.size(),
      [&](std::size_t i) { slots[i].result.emplace(fn(scenarios[i])); },
      n_threads);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].error = std::move(errors[i]);
  }
  return slots;
}

template <class Scenario, class Fn>
auto run_sweep_collect(const std::vector<Scenario>& scenarios, Fn&& fn,
                       unsigned n_threads = 0) {
  return run_sweep_collect(std::span<const Scenario>(scenarios),
                           std::forward<Fn>(fn), n_threads);
}

// Maps `fn` over `scenarios` in parallel; results come back in input order.
template <class Scenario, class Fn>
auto run_sweep(const std::vector<Scenario>& scenarios, Fn&& fn,
               unsigned n_threads = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const Scenario&>>> {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Scenario&>>;
  std::vector<std::optional<Result>> slots(scenarios.size());
  run_indexed_sweep(
      scenarios.size(),
      [&](std::size_t i) { slots[i].emplace(fn(scenarios[i])); },
      n_threads);
  std::vector<Result> results;
  results.reserve(slots.size());
  for (std::optional<Result>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace rlceff::sim

#endif  // RLCEFF_SIM_SWEEP_H
