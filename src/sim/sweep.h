// Parallel scenario sweep runner.
//
// Characterization and reproduction workloads are batches of fully
// independent transient/modeling scenarios: a library grid is ~80 decks, the
// Fig-7 sweep is hundreds of experiment cases.  run_sweep() executes such a
// batch on a small thread pool with deterministic semantics: results[i]
// always corresponds to scenarios[i] regardless of thread count or
// scheduling, every task is attempted even when earlier ones fail, and the
// exception of the lowest failing index is the one rethrown.
#ifndef RLCEFF_SIM_SWEEP_H
#define RLCEFF_SIM_SWEEP_H

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace rlceff::sim {

// Number of workers actually used for a batch: `n_threads` (0 selects the
// hardware concurrency) clamped to the task count.
unsigned sweep_worker_count(std::size_t n_tasks, unsigned n_threads);

// Runs task(0) ... task(n_tasks - 1) across `n_threads` workers and blocks
// until all of them finished.  Tasks must not touch shared mutable state.
void run_indexed_sweep(std::size_t n_tasks,
                       const std::function<void(std::size_t)>& task,
                       unsigned n_threads = 0);

// Maps `fn` over `scenarios` in parallel; results come back in input order.
template <class Scenario, class Fn>
auto run_sweep(const std::vector<Scenario>& scenarios, Fn&& fn,
               unsigned n_threads = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const Scenario&>>> {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Scenario&>>;
  std::vector<std::optional<Result>> slots(scenarios.size());
  run_indexed_sweep(
      scenarios.size(),
      [&](std::size_t i) { slots[i].emplace(fn(scenarios[i])); },
      n_threads);
  std::vector<Result> results;
  results.reserve(slots.size());
  for (std::optional<Result>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace rlceff::sim

#endif  // RLCEFF_SIM_SWEEP_H
