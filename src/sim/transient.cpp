#include "sim/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "circuit/mna.h"
#include "util/error.h"
#include "util/linalg.h"
#include "util/sparse.h"

namespace rlceff::sim {

namespace {

using ckt::ground;
using ckt::MnaStructure;
using ckt::Netlist;
using ckt::NodeId;

// Uniform interface over the banded and dense factorizations.
//
// The engine assembles into a "working" matrix.  save_static()/load_static()
// snapshot and restore the working values (a memcpy, never an allocation),
// so the linear-device stamps survive across Newton iterations and time
// steps.  factor() destroys the working values in place; solve_into() then
// runs the substitution sweeps on a caller-owned buffer with zero heap
// traffic.
class LinearSolver {
public:
  virtual ~LinearSolver() = default;
  virtual void clear() = 0;
  virtual void add(std::size_t r, std::size_t c, double v) = 0;
  virtual void save_static() = 0;
  virtual void load_static() = 0;
  virtual void factor() = 0;
  // x holds the rhs on entry and the solution on exit.
  virtual void solve_into(std::span<double> x) = 0;
};

class BandedSolver final : public LinearSolver {
public:
  BandedSolver(std::size_t n, std::size_t bw) : n_(n), bw_(bw), a_(n, bw, bw) {}
  void clear() override { a_.set_zero(); }
  void add(std::size_t r, std::size_t c, double v) override { a_.add(r, c, v); }
  void save_static() override {
    // Lazy: only the nonlinear cached path pays for the second matrix.
    if (!static_image_) static_image_.emplace(n_, bw_, bw_);
    static_image_->copy_values_from(a_);
  }
  void load_static() override { a_.copy_values_from(*static_image_); }
  void factor() override { a_.factor(); }
  void solve_into(std::span<double> x) override { a_.solve_into(x); }

private:
  std::size_t n_;
  std::size_t bw_;
  util::BandedMatrix a_;
  std::optional<util::BandedMatrix> static_image_;
};

class DenseSolver final : public LinearSolver {
public:
  explicit DenseSolver(std::size_t n) : a_(n, n) {}
  void clear() override { a_.set_zero(); }
  void add(std::size_t r, std::size_t c, double v) override { a_(r, c) += v; }
  void save_static() override { static_image_ = a_; }
  void load_static() override { a_ = static_image_; }
  void factor() override { util::lu_factor_into(a_, f_); }
  void solve_into(std::span<double> x) override { util::lu_solve_into(f_, x); }

private:
  util::DenseMatrix a_;
  util::DenseMatrix static_image_;
  util::LuFactors f_;
};

// The compressed-sparse backend: the MNA image is a CSC matrix over the
// fixed pattern MnaStructure derives from the device list, and the
// factorization is the fill-reducing sparse LU from util/sparse.h.  The
// static image is a second values array restored by memcpy, so the cached
// assembly contract (identical stamp sequence into identical storage) holds
// bitwise just like the dense/banded backends.  The budget tracker is
// threaded into factor/solve so one large factorization honors deadlines and
// cancellation from the inside.
class SparseSolver final : public LinearSolver {
public:
  SparseSolver(const MnaStructure& structure, util::ExecTracker* budget)
      : a_(structure.unknown_count(), structure.sparse_pattern()), budget_(budget) {
    lu_.analyze(a_);
  }
  void clear() override { a_.set_zero(); }
  void add(std::size_t r, std::size_t c, double v) override { a_.add(r, c, v); }
  void save_static() override {
    if (!static_image_) {
      static_image_.emplace(a_);
    } else {
      static_image_->copy_values_from(a_);
    }
  }
  void load_static() override { a_.copy_values_from(*static_image_); }
  void factor() override { lu_.factor(a_, budget_); }
  void solve_into(std::span<double> x) override { lu_.solve_into(x, budget_); }

private:
  util::SparseMatrix a_;
  std::optional<util::SparseMatrix> static_image_;
  util::SparseLu lu_;
  util::ExecTracker* budget_;
};

// Banded-vs-others predicate: RCM kept the band narrow enough that the
// banded LU's O(n * bw^2) factor / O(n * bw) solve wins outright.  The
// absolute cap keeps big decks whose *relative* band happens to be narrow
// (a bushy clock tree can RCM to bw ~ n / 15) off the band path, where the
// O(n * bw) storage alone would run to gigabytes; those fall through to the
// sparse/dense choice below.
bool bandwidth_is_narrow(std::size_t n, std::size_t bw) {
  return bw <= std::min<std::size_t>(512, std::max<std::size_t>(8, n / 4));
}

// Sparse-vs-dense predicate for wide-bandwidth systems: per step the
// factor-once paths cost one substitution sweep — O(L+U nonzeros) sparse
// (a small multiple of the pattern for fill-reduced circuit matrices)
// versus O(n^2) dense — so sparse wins once the system is large enough
// that the estimated fill-bloated pattern is well under the dense triangle.
// Small systems stay dense: flat arrays beat index chasing there.
bool sparse_is_cheaper(std::size_t n, std::size_t nnz) {
  return n >= 128 && 8 * nnz < n * n / 2;
}

SolverKind resolve_solver_kind(std::size_t n, std::size_t bw, std::size_t nnz,
                               const TransientOptions& options) {
  if (options.solver != SolverKind::automatic) return options.solver;
  if (options.force_dense) return SolverKind::dense;  // deprecated spelling
  if (bandwidth_is_narrow(n, bw)) return SolverKind::banded;
  if (sparse_is_cheaper(n, nnz)) return SolverKind::sparse;
  return SolverKind::dense;
}

std::unique_ptr<LinearSolver> make_solver(const MnaStructure& structure,
                                          const TransientOptions& options) {
  const std::size_t n = structure.unknown_count();
  switch (resolve_solver_kind(n, structure.bandwidth(), structure.pattern_nonzeros(),
                              options)) {
    case SolverKind::banded:
      return std::make_unique<BandedSolver>(n, structure.bandwidth());
    case SolverKind::sparse:
      return std::make_unique<SparseSolver>(structure, options.budget);
    default:
      return std::make_unique<DenseSolver>(n);
  }
}

// Dynamic state carried between time steps.
struct CapacitorState {
  double v = 0.0;  // voltage across the device at the last accepted step
  double i = 0.0;  // current through the device at the last accepted step
};

struct InductorState {
  double i = 0.0;  // branch current at the last accepted step
  double v = 0.0;  // branch voltage at the last accepted step
};

struct DynamicState {
  std::vector<CapacitorState> caps;
  std::vector<InductorState> inds;
};

class Engine {
public:
  Engine(const Netlist& netlist, const TransientOptions& options)
      : nl_(netlist),
        opt_(options),
        structure_(netlist),
        m_(structure_.unknown_count()),
        linear_(netlist.mosfets().empty()),
        cached_(options.assembly == AssemblyMode::cached),
        solver_(make_solver(structure_, options)),
        rhs_(m_, 0.0),
        x_(m_, 0.0),
        x_new_(m_, 0.0) {
    // Resolve every unknown index once so the per-step loops are pure array
    // indexing (node_index() revalidates its arguments on every call).
    node_pos_.resize(nl_.node_count(), npos);
    for (NodeId n = 1; n < nl_.node_count(); ++n) {
      node_pos_[n] = structure_.node_index(n);
    }
    cap_pos_.reserve(nl_.capacitors().size());
    for (const ckt::Capacitor& c : nl_.capacitors()) {
      cap_pos_.push_back({c.a == ground ? npos : node_pos_[c.a],
                          c.b == ground ? npos : node_pos_[c.b]});
    }
    ind_pos_.resize(nl_.inductors().size());
    for (std::size_t k = 0; k < nl_.inductors().size(); ++k) {
      ind_pos_[k] = structure_.inductor_index(k);
    }
    vsrc_pos_.resize(nl_.vsources().size());
    for (std::size_t k = 0; k < nl_.vsources().size(); ++k) {
      vsrc_pos_[k] = structure_.vsource_index(k);
    }
    mos_pos_.reserve(nl_.mosfets().size());
    for (const ckt::Mosfet& mos : nl_.mosfets()) {
      mos_pos_.push_back({mos.drain == ground ? npos : node_pos_[mos.drain],
                          mos.gate == ground ? npos : node_pos_[mos.gate],
                          mos.source == ground ? npos : node_pos_[mos.source]});
    }
  }

  const MnaStructure& structure() const { return structure_; }

  std::span<const double> solution() const { return x_; }

  double voltage(NodeId n) const { return n == ground ? 0.0 : x_[node_pos_[n]]; }

  double inductor_current(std::size_t k) const { return x_[ind_pos_[k]]; }

  // Copies the node-voltage part of the solution into `out` (indexed by
  // NodeId, ground stays 0); used by the recording loop without re-resolving
  // unknown indices.
  void node_voltages_into(std::span<double> out) const {
    for (NodeId n = 1; n < nl_.node_count(); ++n) out[n] = x_[node_pos_[n]];
  }

  // Solves one (DC or companion-model) nonlinear system at time `t` with
  // step `h` (h <= 0 selects DC: capacitors open, inductors shorted) and
  // leaves the solution in x_ (also the initial Newton guess).
  void newton(double t, double h, const DynamicState& state, double gmin) {
    if (linear_ && cached_) {
      // Factor-once fast path: the companion matrix depends only on (h, gmin),
      // so a whole fixed-step run is one factorization plus a substitution
      // sweep per step.  Nothing in here allocates.
      ensure_factored(h, gmin);
      assemble_rhs(t, h, state);
      solver_->solve_into(rhs_);
      std::swap(x_, rhs_);
      return;
    }

    if (cached_) ensure_static(h, gmin);
    const int max_newton = util::capped_iterations(
        opt_.max_newton, opt_.budget ? opt_.budget->spec().max_newton_iter : 0);
    for (int iter = 0; iter < max_newton; ++iter) {
      if (opt_.budget) opt_.budget->check("transient newton");
      if (cached_) {
        // Restore the linear stamps by memcpy; only the MOSFET entries and
        // the RHS are re-stamped below.
        solver_->load_static();
      } else {
        solver_->clear();
        assemble_static_stamps(h, gmin);
      }
      assemble_rhs(t, h, state);
      stamp_mosfets();
      solver_->factor();
      std::copy(rhs_.begin(), rhs_.end(), x_new_.begin());
      solver_->solve_into(x_new_);
      if (linear_) {
        std::swap(x_, x_new_);
        return;
      }

      double max_dv = 0.0;
      for (std::size_t k = 0; k < m_; ++k) {
        max_dv = std::max(max_dv, std::abs(x_new_[k] - x_[k]));
      }
      if (max_dv < opt_.v_abstol + opt_.rel_tol * 1.0) {
        std::swap(x_, x_new_);
        return;
      }

      // Damped update keeps the MOSFET linearization inside its trust region.
      const double scale = std::min(1.0, opt_.newton_damping_v / max_dv);
      for (std::size_t k = 0; k < m_; ++k) x_[k] += scale * (x_new_[k] - x_[k]);
    }
    if (max_newton < opt_.max_newton) {
      throw BudgetError("transient: Newton iteration budget of " +
                        std::to_string(max_newton) + " exhausted");
    }
    throw ConvergenceError("transient: Newton failed to converge");
  }

  // Non-finite solution guard: a NaN/Inf stamp (or a numerically destroyed
  // factorization) propagates through the whole solution vector; surface it
  // as a singular-system failure instead of letting NaN waveforms escape the
  // linear fast path, which has no convergence check of its own.
  bool solution_finite() const {
    for (double v : x_) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  }

private:
  // Re-assembles (and for linear circuits factors) the static matrix only
  // when the step size or gmin changed: once for DC, once for the regular
  // step, and once more for a shortened final step.
  void ensure_factored(double h, double gmin) {
    if (factored_valid_ && h == static_h_ && gmin == static_gmin_) return;
    solver_->clear();
    assemble_static_stamps(h, gmin);
    solver_->factor();
    factored_valid_ = true;
    static_valid_ = false;
    static_h_ = h;
    static_gmin_ = gmin;
  }

  void ensure_static(double h, double gmin) {
    if (static_valid_ && h == static_h_ && gmin == static_gmin_) return;
    solver_->clear();
    assemble_static_stamps(h, gmin);
    solver_->save_static();
    static_valid_ = true;
    factored_valid_ = false;
    static_h_ = h;
    static_gmin_ = gmin;
  }

  void stamp_conductance(NodeId a, NodeId b, double g) {
    if (a != ground) {
      const std::size_t ia = structure_.node_index(a);
      solver_->add(ia, ia, g);
      if (b != ground) solver_->add(ia, structure_.node_index(b), -g);
    }
    if (b != ground) {
      const std::size_t ib = structure_.node_index(b);
      solver_->add(ib, ib, g);
      if (a != ground) solver_->add(ib, structure_.node_index(a), -g);
    }
  }

  // Matrix entries that depend only on (h, gmin): gmin loading, resistors,
  // companion conductances, and the branch incidence rows of inductors and
  // voltage sources.
  void assemble_static_stamps(double h, double gmin) {
    const bool dc = h <= 0.0;
    const bool trap = opt_.integrator == Integrator::trapezoidal;

    for (NodeId n = 1; n < nl_.node_count(); ++n) {
      solver_->add(structure_.node_index(n), structure_.node_index(n), gmin);
    }

    for (const ckt::Resistor& r : nl_.resistors()) {
      stamp_conductance(r.a, r.b, 1.0 / r.resistance);
    }

    if (!dc) {
      // Property-harness fault injection: skew the cached-path capacitor
      // stamps so the cached-vs-naive oracle must fire (see
      // TransientOptions).  skew == 0 leaves the stamps bit-identical.
      const double skew = cached_ ? 1.0 + opt_.debug_cached_stamp_skew : 1.0;
      bool first_cap = true;
      for (const ckt::Capacitor& c : nl_.capacitors()) {
        double g = skew * (trap ? 2.0 : 1.0) * c.capacitance / h;
        if (first_cap && cached_ && opt_.debug_cached_stamp_nan) {
          g = std::numeric_limits<double>::quiet_NaN();
        }
        first_cap = false;
        stamp_conductance(c.a, c.b, g);
      }
    }

    for (std::size_t k = 0; k < nl_.inductors().size(); ++k) {
      const ckt::Inductor& l = nl_.inductors()[k];
      const std::size_t j = structure_.inductor_index(k);
      const double req = dc ? 0.0 : (trap ? 2.0 : 1.0) * l.inductance / h;
      // Branch equation: (va - vb) - req * i = e_n.
      if (l.a != ground) {
        solver_->add(j, structure_.node_index(l.a), 1.0);
        solver_->add(structure_.node_index(l.a), j, 1.0);
      }
      if (l.b != ground) {
        solver_->add(j, structure_.node_index(l.b), -1.0);
        solver_->add(structure_.node_index(l.b), j, -1.0);
      }
      solver_->add(j, j, -req);
    }

    // Mutual inductance couples the two branch equations: the companion term
    // M * di_other/dt adds -req_m * i_other to each row, symmetrically.  In
    // DC both inductors are shorts and the mutual contributes nothing.
    if (!dc) {
      for (const ckt::MutualInductor& m : nl_.mutual_inductors()) {
        const double req = (trap ? 2.0 : 1.0) * m.mutual / h;
        const std::size_t ja = structure_.inductor_index(m.la);
        const std::size_t jb = structure_.inductor_index(m.lb);
        solver_->add(ja, jb, -req);
        solver_->add(jb, ja, -req);
      }
    }

    for (std::size_t k = 0; k < nl_.vsources().size(); ++k) {
      const ckt::VSource& v = nl_.vsources()[k];
      const std::size_t j = structure_.vsource_index(k);
      if (v.pos != ground) {
        solver_->add(j, structure_.node_index(v.pos), 1.0);
        solver_->add(structure_.node_index(v.pos), j, 1.0);
      }
      if (v.neg != ground) {
        solver_->add(j, structure_.node_index(v.neg), -1.0);
        solver_->add(structure_.node_index(v.neg), j, -1.0);
      }
    }
  }

  // Right-hand side: companion currents and source values.  Changes every
  // step, never touches the matrix.
  void assemble_rhs(double t, double h, const DynamicState& state) {
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    const bool dc = h <= 0.0;
    const bool trap = opt_.integrator == Integrator::trapezoidal;

    if (!dc) {
      for (std::size_t k = 0; k < nl_.capacitors().size(); ++k) {
        const CapacitorState& s = state.caps[k];
        const double geq = (trap ? 2.0 : 1.0) * nl_.capacitors()[k].capacitance / h;
        const double ieq = geq * s.v + (trap ? s.i : 0.0);
        // Norton companion: device current = geq * v - ieq, flowing b -> a.
        const auto [ia, ib] = cap_pos_[k];
        if (ib != npos) rhs_[ib] -= ieq;
        if (ia != npos) rhs_[ia] += ieq;
      }
    }

    for (std::size_t k = 0; k < nl_.inductors().size(); ++k) {
      const InductorState& s = state.inds[k];
      const double req = dc ? 0.0 : (trap ? 2.0 : 1.0) * nl_.inductors()[k].inductance / h;
      rhs_[ind_pos_[k]] = dc ? 0.0 : (trap ? -s.v - req * s.i : -req * s.i);
    }

    if (!dc) {
      // History term of the mutual coupling, mirroring the matrix stamp.
      for (const ckt::MutualInductor& m : nl_.mutual_inductors()) {
        const double req = (trap ? 2.0 : 1.0) * m.mutual / h;
        rhs_[ind_pos_[m.la]] -= req * state.inds[m.lb].i;
        rhs_[ind_pos_[m.lb]] -= req * state.inds[m.la].i;
      }
    }

    for (std::size_t k = 0; k < nl_.vsources().size(); ++k) {
      rhs_[vsrc_pos_[k]] = nl_.vsources()[k].voltage.value_at(t);
    }
  }

  // MOSFET linearization around the current Newton iterate: the only stamps
  // that change between iterations (matrix and RHS).
  void stamp_mosfets() {
    for (std::size_t k = 0; k < nl_.mosfets().size(); ++k) {
      const ckt::Mosfet& mos = nl_.mosfets()[k];
      const auto [pd, pg, ps] = mos_pos_[k];
      const double vd = pd == npos ? 0.0 : x_[pd];
      const double vg = pg == npos ? 0.0 : x_[pg];
      const double vs = ps == npos ? 0.0 : x_[ps];
      const ckt::MosfetEval e =
          mos.is_pmos ? ckt::eval_pmos(mos.params, mos.width, vg - vs, vd - vs)
                      : ckt::eval_nmos(mos.params, mos.width, vg - vs, vd - vs);
      // Linearized channel current (drain -> source):
      //   i = ieq + gm * vgs + gds * vds.
      const double ieq = e.id - e.gm * (vg - vs) - e.gds * (vd - vs);
      if (pd != npos) {
        solver_->add(pd, pd, e.gds);
        if (pg != npos) solver_->add(pd, pg, e.gm);
        if (ps != npos) solver_->add(pd, ps, -(e.gm + e.gds));
      }
      if (ps != npos) {
        solver_->add(ps, ps, e.gm + e.gds);
        if (pg != npos) solver_->add(ps, pg, -e.gm);
        if (pd != npos) solver_->add(ps, pd, -e.gds);
      }
      // Companion current flows drain -> source.
      if (pd != npos) rhs_[pd] -= ieq;
      if (ps != npos) rhs_[ps] += ieq;
    }
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct CapPos {
    std::size_t a;
    std::size_t b;
  };

  struct MosPos {
    std::size_t drain;
    std::size_t gate;
    std::size_t source;
  };

  const Netlist& nl_;
  const TransientOptions& opt_;
  MnaStructure structure_;
  std::size_t m_;
  bool linear_;
  bool cached_;
  std::unique_ptr<LinearSolver> solver_;

  // Unknown indices resolved once at construction (npos = ground).
  std::vector<std::size_t> node_pos_;
  std::vector<CapPos> cap_pos_;
  std::vector<std::size_t> ind_pos_;
  std::vector<std::size_t> vsrc_pos_;
  std::vector<MosPos> mos_pos_;

  // Preallocated workspaces: the time-step loop never allocates.
  std::vector<double> rhs_;
  std::vector<double> x_;
  std::vector<double> x_new_;

  // Cache key of the static assembly currently held by the solver.
  double static_h_ = std::numeric_limits<double>::quiet_NaN();
  double static_gmin_ = std::numeric_limits<double>::quiet_NaN();
  bool factored_valid_ = false;  // solver holds the factored static matrix
  bool static_valid_ = false;    // solver holds an unfactored static image
};

void solve_dc(Engine& engine, const TransientOptions& options,
              const DynamicState& state) {
  try {
    engine.newton(0.0, 0.0, state, options.gmin);
  } catch (const ConvergenceError&) {
    // gmin stepping: solve a heavily damped system first and walk gmin down.
    for (double gmin = 1e-3; gmin >= options.gmin; gmin *= 1e-2) {
      engine.newton(0.0, 0.0, state, gmin);
    }
    engine.newton(0.0, 0.0, state, options.gmin);
  }
}

}  // namespace

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::automatic:
      return "auto";
    case SolverKind::dense:
      return "dense";
    case SolverKind::banded:
      return "banded";
    case SolverKind::sparse:
      return "sparse";
  }
  return "unknown";
}

SolverKind solver_kind_from_string(std::string_view name) {
  if (name == "auto") return SolverKind::automatic;
  if (name == "dense") return SolverKind::dense;
  if (name == "banded") return SolverKind::banded;
  if (name == "sparse") return SolverKind::sparse;
  throw Error("unknown solver kind '" + std::string(name) +
              "' (expected auto, dense, banded, or sparse)");
}

SolverKind selected_solver(const ckt::Netlist& netlist,
                           const TransientOptions& options) {
  const MnaStructure structure(netlist);
  return resolve_solver_kind(structure.unknown_count(), structure.bandwidth(),
                             structure.pattern_nonzeros(), options);
}

bool uses_banded_solver(const ckt::Netlist& netlist) {
  return selected_solver(netlist) == SolverKind::banded;
}

TransientResult::TransientResult(std::vector<ckt::NodeId> probes, std::size_t reserve_steps)
    : probes_(std::move(probes)), waves_(probes_.size()) {
  for (wave::Waveform& w : waves_) w.reserve(reserve_steps);
}

const wave::Waveform& TransientResult::at(ckt::NodeId node) const {
  for (std::size_t k = 0; k < probes_.size(); ++k) {
    if (probes_[k] == node) return waves_[k];
  }
  throw Error("TransientResult: node was not probed");
}

void TransientResult::record(double time, std::span<const double> node_voltages) {
  for (std::size_t k = 0; k < probes_.size(); ++k) {
    waves_[k].append(time, node_voltages[probes_[k]]);
  }
}

OperatingPoint dc_operating_point(const ckt::Netlist& netlist,
                                  const TransientOptions& options) {
  Engine engine(netlist, options);
  DynamicState state{std::vector<CapacitorState>(netlist.capacitors().size()),
                     std::vector<InductorState>(netlist.inductors().size())};
  solve_dc(engine, options, state);
  const std::span<const double> x = engine.solution();

  OperatingPoint op;
  op.node_voltage.resize(netlist.node_count(), 0.0);
  for (ckt::NodeId n = 1; n < netlist.node_count(); ++n) {
    op.node_voltage[n] = x[engine.structure().node_index(n)];
  }
  op.inductor_current.resize(netlist.inductors().size());
  for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
    op.inductor_current[k] = x[engine.structure().inductor_index(k)];
  }
  op.vsource_current.resize(netlist.vsources().size());
  for (std::size_t k = 0; k < netlist.vsources().size(); ++k) {
    op.vsource_current[k] = x[engine.structure().vsource_index(k)];
  }
  return op;
}

TransientResult simulate(const ckt::Netlist& netlist, const TransientOptions& options,
                         std::span<const ckt::NodeId> probes) {
  ensure(options.t_stop > 0.0 && options.dt > 0.0, "simulate: bad time range");
  Engine engine(netlist, options);

  DynamicState state{std::vector<CapacitorState>(netlist.capacitors().size()),
                     std::vector<InductorState>(netlist.inductors().size())};
  solve_dc(engine, options, state);

  // Seed device state from the operating point (capacitor currents and
  // inductor voltages are zero in steady state).
  for (std::size_t k = 0; k < netlist.capacitors().size(); ++k) {
    const ckt::Capacitor& c = netlist.capacitors()[k];
    state.caps[k].v = engine.voltage(c.a) - engine.voltage(c.b);
    state.caps[k].i = 0.0;
  }
  for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
    state.inds[k].i = engine.inductor_current(k);
    state.inds[k].v = 0.0;
  }

  TransientResult result(std::vector<ckt::NodeId>(probes.begin(), probes.end()),
                         static_cast<std::size_t>(options.t_stop / options.dt) + 2);
  std::vector<double> node_v(netlist.node_count(), 0.0);
  auto record = [&](double t) {
    engine.node_voltages_into(node_v);
    result.record(t, node_v);
  };
  record(0.0);

  const bool trap = options.integrator == Integrator::trapezoidal;
  double t = 0.0;
  std::int64_t step = 0;
  while (t < options.t_stop - 1e-21) {
    if (options.budget) options.budget->charge_transient_steps(1, "transient");
    const double h = std::min(options.dt, options.t_stop - t);
    const double t_next = t + h;
    engine.newton(t_next, h, state, options.gmin);
    // Periodic (cheap, amortized) non-finite guard; see solution_finite().
    if ((++step & 63) == 0 && !engine.solution_finite()) {
      throw SingularMatrixError("transient: non-finite solution (singular or "
                                "NaN-stamped system)");
    }

    // Advance companion-model state.
    for (std::size_t k = 0; k < netlist.capacitors().size(); ++k) {
      const ckt::Capacitor& c = netlist.capacitors()[k];
      CapacitorState& s = state.caps[k];
      const double v_new = engine.voltage(c.a) - engine.voltage(c.b);
      const double geq = (trap ? 2.0 : 1.0) * c.capacitance / h;
      const double i_new = trap ? geq * (v_new - s.v) - s.i : geq * (v_new - s.v);
      s.v = v_new;
      s.i = i_new;
    }
    for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
      const ckt::Inductor& l = netlist.inductors()[k];
      InductorState& s = state.inds[k];
      s.i = engine.inductor_current(k);
      s.v = engine.voltage(l.a) - engine.voltage(l.b);
    }

    t = t_next;
    record(t);
  }
  if (!engine.solution_finite()) {
    throw SingularMatrixError("transient: non-finite solution (singular or "
                              "NaN-stamped system)");
  }
  return result;
}

}  // namespace rlceff::sim
