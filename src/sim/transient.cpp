#include "sim/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "circuit/mna.h"
#include "sim/solver_backend.h"
#include "util/error.h"
#include "util/linalg.h"
#include "util/sparse.h"

namespace rlceff::sim {

namespace {

using ckt::ground;
using ckt::MnaStructure;
using ckt::Netlist;
using ckt::NodeId;
using detail::LinearSolver;
using detail::make_solver;

// Dynamic state carried between time steps.
struct CapacitorState {
  double v = 0.0;  // voltage across the device at the last accepted step
  double i = 0.0;  // current through the device at the last accepted step
};

struct InductorState {
  double i = 0.0;  // branch current at the last accepted step
  double v = 0.0;  // branch voltage at the last accepted step
};

struct DynamicState {
  std::vector<CapacitorState> caps;
  std::vector<InductorState> inds;
};

class Engine {
public:
  Engine(const Netlist& netlist, const TransientOptions& options)
      : nl_(netlist),
        opt_(options),
        structure_(netlist),
        m_(structure_.unknown_count()),
        linear_(netlist.mosfets().empty()),
        cached_(options.assembly == AssemblyMode::cached),
        solver_(make_solver(structure_, options)),
        rhs_(m_, 0.0),
        x_(m_, 0.0),
        x_new_(m_, 0.0) {
    // Resolve every unknown index once so the per-step loops are pure array
    // indexing (node_index() revalidates its arguments on every call).
    node_pos_.resize(nl_.node_count(), npos);
    for (NodeId n = 1; n < nl_.node_count(); ++n) {
      node_pos_[n] = structure_.node_index(n);
    }
    cap_pos_.reserve(nl_.capacitors().size());
    for (const ckt::Capacitor& c : nl_.capacitors()) {
      cap_pos_.push_back({c.a == ground ? npos : node_pos_[c.a],
                          c.b == ground ? npos : node_pos_[c.b]});
    }
    ind_pos_.resize(nl_.inductors().size());
    for (std::size_t k = 0; k < nl_.inductors().size(); ++k) {
      ind_pos_[k] = structure_.inductor_index(k);
    }
    vsrc_pos_.resize(nl_.vsources().size());
    for (std::size_t k = 0; k < nl_.vsources().size(); ++k) {
      vsrc_pos_[k] = structure_.vsource_index(k);
    }
    mos_pos_.reserve(nl_.mosfets().size());
    for (const ckt::Mosfet& mos : nl_.mosfets()) {
      mos_pos_.push_back({mos.drain == ground ? npos : node_pos_[mos.drain],
                          mos.gate == ground ? npos : node_pos_[mos.gate],
                          mos.source == ground ? npos : node_pos_[mos.source]});
    }
  }

  const MnaStructure& structure() const { return structure_; }

  std::span<const double> solution() const { return x_; }

  double voltage(NodeId n) const { return n == ground ? 0.0 : x_[node_pos_[n]]; }

  double inductor_current(std::size_t k) const { return x_[ind_pos_[k]]; }

  // Copies the node-voltage part of the solution into `out` (indexed by
  // NodeId, ground stays 0); used by the recording loop without re-resolving
  // unknown indices.
  void node_voltages_into(std::span<double> out) const {
    for (NodeId n = 1; n < nl_.node_count(); ++n) out[n] = x_[node_pos_[n]];
  }

  // Solves one (DC or companion-model) nonlinear system at time `t` with
  // step `h` (h <= 0 selects DC: capacitors open, inductors shorted) and
  // leaves the solution in x_ (also the initial Newton guess).
  void newton(double t, double h, const DynamicState& state, double gmin) {
    if (linear_ && cached_) {
      // Factor-once fast path: the companion matrix depends only on (h, gmin),
      // so a whole fixed-step run is one factorization plus a substitution
      // sweep per step.  Nothing in here allocates.
      ensure_factored(h, gmin);
      assemble_rhs(t, h, state);
      solver_->solve_into(rhs_);
      std::swap(x_, rhs_);
      return;
    }

    if (cached_) ensure_static(h, gmin);
    const int max_newton = util::capped_iterations(
        opt_.max_newton, opt_.budget ? opt_.budget->spec().max_newton_iter : 0);
    for (int iter = 0; iter < max_newton; ++iter) {
      if (opt_.budget) opt_.budget->check("transient newton");
      if (cached_) {
        // Restore the linear stamps by memcpy; only the MOSFET entries and
        // the RHS are re-stamped below.
        solver_->load_static();
      } else {
        solver_->clear();
        detail::assemble_static_stamps(*solver_, nl_, structure_, h, gmin, opt_,
                                       cached_);
      }
      assemble_rhs(t, h, state);
      stamp_mosfets();
      solver_->factor();
      std::copy(rhs_.begin(), rhs_.end(), x_new_.begin());
      solver_->solve_into(x_new_);
      if (linear_) {
        std::swap(x_, x_new_);
        return;
      }

      double max_dv = 0.0;
      for (std::size_t k = 0; k < m_; ++k) {
        max_dv = std::max(max_dv, std::abs(x_new_[k] - x_[k]));
      }
      if (max_dv < opt_.v_abstol + opt_.rel_tol * 1.0) {
        std::swap(x_, x_new_);
        return;
      }

      // Damped update keeps the MOSFET linearization inside its trust region.
      const double scale = std::min(1.0, opt_.newton_damping_v / max_dv);
      for (std::size_t k = 0; k < m_; ++k) x_[k] += scale * (x_new_[k] - x_[k]);
    }
    if (max_newton < opt_.max_newton) {
      throw BudgetError("transient: Newton iteration budget of " +
                        std::to_string(max_newton) + " exhausted");
    }
    throw ConvergenceError("transient: Newton failed to converge");
  }

  // Non-finite solution guard: a NaN/Inf stamp (or a numerically destroyed
  // factorization) propagates through the whole solution vector; surface it
  // as a singular-system failure instead of letting NaN waveforms escape the
  // linear fast path, which has no convergence check of its own.
  bool solution_finite() const {
    for (double v : x_) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  }

private:
  // Re-assembles (and for linear circuits factors) the static matrix only
  // when the step size or gmin changed: once for DC, once for the regular
  // step, and once more for a shortened final step.
  void ensure_factored(double h, double gmin) {
    if (factored_valid_ && h == static_h_ && gmin == static_gmin_) return;
    solver_->clear();
    detail::assemble_static_stamps(*solver_, nl_, structure_, h, gmin, opt_,
                                   cached_);
    solver_->factor();
    factored_valid_ = true;
    static_valid_ = false;
    static_h_ = h;
    static_gmin_ = gmin;
  }

  void ensure_static(double h, double gmin) {
    if (static_valid_ && h == static_h_ && gmin == static_gmin_) return;
    solver_->clear();
    detail::assemble_static_stamps(*solver_, nl_, structure_, h, gmin, opt_,
                                   cached_);
    solver_->save_static();
    static_valid_ = true;
    factored_valid_ = false;
    static_h_ = h;
    static_gmin_ = gmin;
  }

  // Right-hand side: companion currents and source values.  Changes every
  // step, never touches the matrix.
  void assemble_rhs(double t, double h, const DynamicState& state) {
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    const bool dc = h <= 0.0;
    const bool trap = opt_.integrator == Integrator::trapezoidal;

    if (!dc) {
      for (std::size_t k = 0; k < nl_.capacitors().size(); ++k) {
        const CapacitorState& s = state.caps[k];
        const double geq = (trap ? 2.0 : 1.0) * nl_.capacitors()[k].capacitance / h;
        const double ieq = geq * s.v + (trap ? s.i : 0.0);
        // Norton companion: device current = geq * v - ieq, flowing b -> a.
        const auto [ia, ib] = cap_pos_[k];
        if (ib != npos) rhs_[ib] -= ieq;
        if (ia != npos) rhs_[ia] += ieq;
      }
    }

    for (std::size_t k = 0; k < nl_.inductors().size(); ++k) {
      const InductorState& s = state.inds[k];
      const double req = dc ? 0.0 : (trap ? 2.0 : 1.0) * nl_.inductors()[k].inductance / h;
      rhs_[ind_pos_[k]] = dc ? 0.0 : (trap ? -s.v - req * s.i : -req * s.i);
    }

    if (!dc) {
      // History term of the mutual coupling, mirroring the matrix stamp.
      for (const ckt::MutualInductor& m : nl_.mutual_inductors()) {
        const double req = (trap ? 2.0 : 1.0) * m.mutual / h;
        rhs_[ind_pos_[m.la]] -= req * state.inds[m.lb].i;
        rhs_[ind_pos_[m.lb]] -= req * state.inds[m.la].i;
      }
    }

    for (std::size_t k = 0; k < nl_.vsources().size(); ++k) {
      rhs_[vsrc_pos_[k]] = nl_.vsources()[k].voltage.value_at(t);
    }
  }

  // MOSFET linearization around the current Newton iterate: the only stamps
  // that change between iterations (matrix and RHS).
  void stamp_mosfets() {
    for (std::size_t k = 0; k < nl_.mosfets().size(); ++k) {
      const ckt::Mosfet& mos = nl_.mosfets()[k];
      const auto [pd, pg, ps] = mos_pos_[k];
      const double vd = pd == npos ? 0.0 : x_[pd];
      const double vg = pg == npos ? 0.0 : x_[pg];
      const double vs = ps == npos ? 0.0 : x_[ps];
      const ckt::MosfetEval e =
          mos.is_pmos ? ckt::eval_pmos(mos.params, mos.width, vg - vs, vd - vs)
                      : ckt::eval_nmos(mos.params, mos.width, vg - vs, vd - vs);
      // Linearized channel current (drain -> source):
      //   i = ieq + gm * vgs + gds * vds.
      const double ieq = e.id - e.gm * (vg - vs) - e.gds * (vd - vs);
      if (pd != npos) {
        solver_->add(pd, pd, e.gds);
        if (pg != npos) solver_->add(pd, pg, e.gm);
        if (ps != npos) solver_->add(pd, ps, -(e.gm + e.gds));
      }
      if (ps != npos) {
        solver_->add(ps, ps, e.gm + e.gds);
        if (pg != npos) solver_->add(ps, pg, -e.gm);
        if (pd != npos) solver_->add(ps, pd, -e.gds);
      }
      // Companion current flows drain -> source.
      if (pd != npos) rhs_[pd] -= ieq;
      if (ps != npos) rhs_[ps] += ieq;
    }
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct CapPos {
    std::size_t a;
    std::size_t b;
  };

  struct MosPos {
    std::size_t drain;
    std::size_t gate;
    std::size_t source;
  };

  const Netlist& nl_;
  const TransientOptions& opt_;
  MnaStructure structure_;
  std::size_t m_;
  bool linear_;
  bool cached_;
  std::unique_ptr<LinearSolver> solver_;

  // Unknown indices resolved once at construction (npos = ground).
  std::vector<std::size_t> node_pos_;
  std::vector<CapPos> cap_pos_;
  std::vector<std::size_t> ind_pos_;
  std::vector<std::size_t> vsrc_pos_;
  std::vector<MosPos> mos_pos_;

  // Preallocated workspaces: the time-step loop never allocates.
  std::vector<double> rhs_;
  std::vector<double> x_;
  std::vector<double> x_new_;

  // Cache key of the static assembly currently held by the solver.
  double static_h_ = std::numeric_limits<double>::quiet_NaN();
  double static_gmin_ = std::numeric_limits<double>::quiet_NaN();
  bool factored_valid_ = false;  // solver holds the factored static matrix
  bool static_valid_ = false;    // solver holds an unfactored static image
};

void solve_dc(Engine& engine, const TransientOptions& options,
              const DynamicState& state) {
  try {
    engine.newton(0.0, 0.0, state, options.gmin);
  } catch (const ConvergenceError&) {
    // gmin stepping: solve a heavily damped system first and walk gmin down.
    for (double gmin = 1e-3; gmin >= options.gmin; gmin *= 1e-2) {
      engine.newton(0.0, 0.0, state, gmin);
    }
    engine.newton(0.0, 0.0, state, options.gmin);
  }
}

}  // namespace

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::automatic:
      return "auto";
    case SolverKind::dense:
      return "dense";
    case SolverKind::banded:
      return "banded";
    case SolverKind::sparse:
      return "sparse";
  }
  return "unknown";
}

SolverKind solver_kind_from_string(std::string_view name) {
  if (name == "auto") return SolverKind::automatic;
  if (name == "dense") return SolverKind::dense;
  if (name == "banded") return SolverKind::banded;
  if (name == "sparse") return SolverKind::sparse;
  throw Error("unknown solver kind '" + std::string(name) +
              "' (expected auto, dense, banded, or sparse)");
}

SolverKind selected_solver(const ckt::Netlist& netlist,
                           const TransientOptions& options) {
  const MnaStructure structure(netlist);
  return detail::resolve_solver_kind(structure.unknown_count(), structure.bandwidth(),
                                     structure.pattern_nonzeros(), options);
}

bool uses_banded_solver(const ckt::Netlist& netlist) {
  return selected_solver(netlist) == SolverKind::banded;
}

TransientResult::TransientResult(std::vector<ckt::NodeId> probes, std::size_t reserve_steps)
    : probes_(std::move(probes)), waves_(probes_.size()) {
  for (wave::Waveform& w : waves_) w.reserve(reserve_steps);
}

const wave::Waveform& TransientResult::at(ckt::NodeId node) const {
  for (std::size_t k = 0; k < probes_.size(); ++k) {
    if (probes_[k] == node) return waves_[k];
  }
  throw Error("TransientResult: node was not probed");
}

void TransientResult::record(double time, std::span<const double> node_voltages) {
  for (std::size_t k = 0; k < probes_.size(); ++k) {
    waves_[k].append(time, node_voltages[probes_[k]]);
  }
}

void TransientResult::record_probe_values(double time,
                                          std::span<const double> per_probe) {
  for (std::size_t k = 0; k < probes_.size(); ++k) {
    waves_[k].append(time, per_probe[k]);
  }
}

OperatingPoint dc_operating_point(const ckt::Netlist& netlist,
                                  const TransientOptions& options) {
  Engine engine(netlist, options);
  DynamicState state{std::vector<CapacitorState>(netlist.capacitors().size()),
                     std::vector<InductorState>(netlist.inductors().size())};
  solve_dc(engine, options, state);
  const std::span<const double> x = engine.solution();

  OperatingPoint op;
  op.node_voltage.resize(netlist.node_count(), 0.0);
  for (ckt::NodeId n = 1; n < netlist.node_count(); ++n) {
    op.node_voltage[n] = x[engine.structure().node_index(n)];
  }
  op.inductor_current.resize(netlist.inductors().size());
  for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
    op.inductor_current[k] = x[engine.structure().inductor_index(k)];
  }
  op.vsource_current.resize(netlist.vsources().size());
  for (std::size_t k = 0; k < netlist.vsources().size(); ++k) {
    op.vsource_current[k] = x[engine.structure().vsource_index(k)];
  }
  return op;
}

TransientResult simulate(const ckt::Netlist& netlist, const TransientOptions& options,
                         std::span<const ckt::NodeId> probes) {
  ensure(options.t_stop > 0.0 && options.dt > 0.0, "simulate: bad time range");
  Engine engine(netlist, options);

  DynamicState state{std::vector<CapacitorState>(netlist.capacitors().size()),
                     std::vector<InductorState>(netlist.inductors().size())};
  solve_dc(engine, options, state);

  // Seed device state from the operating point (capacitor currents and
  // inductor voltages are zero in steady state).
  for (std::size_t k = 0; k < netlist.capacitors().size(); ++k) {
    const ckt::Capacitor& c = netlist.capacitors()[k];
    state.caps[k].v = engine.voltage(c.a) - engine.voltage(c.b);
    state.caps[k].i = 0.0;
  }
  for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
    state.inds[k].i = engine.inductor_current(k);
    state.inds[k].v = 0.0;
  }

  TransientResult result(std::vector<ckt::NodeId>(probes.begin(), probes.end()),
                         static_cast<std::size_t>(options.t_stop / options.dt) + 2);
  std::vector<double> node_v(netlist.node_count(), 0.0);
  auto record = [&](double t) {
    engine.node_voltages_into(node_v);
    result.record(t, node_v);
  };
  record(0.0);

  const bool trap = options.integrator == Integrator::trapezoidal;
  double t = 0.0;
  std::int64_t step = 0;
  while (t < options.t_stop - 1e-21) {
    if (options.budget) options.budget->charge_transient_steps(1, "transient");
    const double h = std::min(options.dt, options.t_stop - t);
    const double t_next = t + h;
    engine.newton(t_next, h, state, options.gmin);
    // Periodic (cheap, amortized) non-finite guard; see solution_finite().
    if ((++step & 63) == 0 && !engine.solution_finite()) {
      throw SingularMatrixError("transient: non-finite solution (singular or "
                                "NaN-stamped system)");
    }

    // Advance companion-model state.
    for (std::size_t k = 0; k < netlist.capacitors().size(); ++k) {
      const ckt::Capacitor& c = netlist.capacitors()[k];
      CapacitorState& s = state.caps[k];
      const double v_new = engine.voltage(c.a) - engine.voltage(c.b);
      const double geq = (trap ? 2.0 : 1.0) * c.capacitance / h;
      const double i_new = trap ? geq * (v_new - s.v) - s.i : geq * (v_new - s.v);
      s.v = v_new;
      s.i = i_new;
    }
    for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
      const ckt::Inductor& l = netlist.inductors()[k];
      InductorState& s = state.inds[k];
      s.i = engine.inductor_current(k);
      s.v = engine.voltage(l.a) - engine.voltage(l.b);
    }

    t = t_next;
    record(t);
  }
  if (!engine.solution_finite()) {
    throw SingularMatrixError("transient: non-finite solution (singular or "
                              "NaN-stamped system)");
  }
  return result;
}

}  // namespace rlceff::sim
