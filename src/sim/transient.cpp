#include "sim/transient.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "circuit/mna.h"
#include "util/error.h"
#include "util/linalg.h"

namespace rlceff::sim {

namespace {

using ckt::ground;
using ckt::MnaStructure;
using ckt::Netlist;
using ckt::NodeId;

// Uniform interface over the banded and dense factorizations.
class LinearSolver {
public:
  virtual ~LinearSolver() = default;
  virtual void clear() = 0;
  virtual void add(std::size_t r, std::size_t c, double v) = 0;
  virtual std::vector<double> solve(std::span<const double> rhs) = 0;
};

class BandedSolver final : public LinearSolver {
public:
  BandedSolver(std::size_t n, std::size_t bw) : n_(n), bw_(bw), a_(n, bw, bw) {}
  void clear() override { a_.set_zero(); }
  void add(std::size_t r, std::size_t c, double v) override { a_.add(r, c, v); }
  std::vector<double> solve(std::span<const double> rhs) override {
    util::BandedMatrix work = a_;
    work.factor();
    return work.solve(rhs);
  }

private:
  std::size_t n_;
  std::size_t bw_;
  util::BandedMatrix a_;
};

class DenseSolver final : public LinearSolver {
public:
  explicit DenseSolver(std::size_t n) : a_(n, n) {}
  void clear() override { a_.set_zero(); }
  void add(std::size_t r, std::size_t c, double v) override { a_(r, c) += v; }
  std::vector<double> solve(std::span<const double> rhs) override {
    return util::solve_dense(a_, rhs);
  }

private:
  util::DenseMatrix a_;
};

std::unique_ptr<LinearSolver> make_solver(std::size_t n, std::size_t bw) {
  if (bw <= std::max<std::size_t>(8, n / 4)) return std::make_unique<BandedSolver>(n, bw);
  return std::make_unique<DenseSolver>(n);
}

// Dynamic state carried between time steps.
struct CapacitorState {
  double v = 0.0;  // voltage across the device at the last accepted step
  double i = 0.0;  // current through the device at the last accepted step
};

struct InductorState {
  double i = 0.0;  // branch current at the last accepted step
  double v = 0.0;  // branch voltage at the last accepted step
};

struct DynamicState {
  std::vector<CapacitorState> caps;
  std::vector<InductorState> inds;
};

class Engine {
public:
  Engine(const Netlist& netlist, const TransientOptions& options)
      : nl_(netlist),
        opt_(options),
        structure_(netlist),
        m_(structure_.unknown_count()),
        solver_(make_solver(m_, structure_.bandwidth())),
        rhs_(m_, 0.0) {}

  const MnaStructure& structure() const { return structure_; }

  double voltage(std::span<const double> x, NodeId n) const {
    return n == ground ? 0.0 : x[structure_.node_index(n)];
  }

  // Solves one (DC or companion-model) nonlinear system at time `t` with
  // step `h` (h <= 0 selects DC: capacitors open, inductors shorted).
  std::vector<double> newton(double t, double h, const DynamicState& state,
                             std::vector<double> x, double gmin) {
    const bool linear = nl_.mosfets().empty();
    for (int iter = 0; iter < opt_.max_newton; ++iter) {
      assemble(t, h, state, x, gmin);
      std::vector<double> x_new = solver_->solve(rhs_);
      if (linear) return x_new;

      double max_dv = 0.0;
      for (std::size_t k = 0; k < m_; ++k) max_dv = std::max(max_dv, std::abs(x_new[k] - x[k]));
      if (max_dv < opt_.v_abstol + opt_.rel_tol * 1.0) return x_new;

      // Damped update keeps the MOSFET linearization inside its trust region.
      const double scale = std::min(1.0, opt_.newton_damping_v / max_dv);
      for (std::size_t k = 0; k < m_; ++k) x[k] += scale * (x_new[k] - x[k]);
    }
    throw ConvergenceError("transient: Newton failed to converge");
  }

private:
  void stamp_conductance(NodeId a, NodeId b, double g) {
    if (a != ground) {
      const std::size_t ia = structure_.node_index(a);
      solver_->add(ia, ia, g);
      if (b != ground) solver_->add(ia, structure_.node_index(b), -g);
    }
    if (b != ground) {
      const std::size_t ib = structure_.node_index(b);
      solver_->add(ib, ib, g);
      if (a != ground) solver_->add(ib, structure_.node_index(a), -g);
    }
  }

  void stamp_current(NodeId from, NodeId to, double i) {
    // Current i flows from `from` into `to` through the device.
    if (from != ground) rhs_[structure_.node_index(from)] -= i;
    if (to != ground) rhs_[structure_.node_index(to)] += i;
  }

  void assemble(double t, double h, const DynamicState& state,
                std::span<const double> x, double gmin) {
    solver_->clear();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    const bool dc = h <= 0.0;
    const bool trap = opt_.integrator == Integrator::trapezoidal;

    for (NodeId n = 1; n < nl_.node_count(); ++n) {
      solver_->add(structure_.node_index(n), structure_.node_index(n), gmin);
    }

    for (const ckt::Resistor& r : nl_.resistors()) {
      stamp_conductance(r.a, r.b, 1.0 / r.resistance);
    }

    for (std::size_t k = 0; k < nl_.capacitors().size(); ++k) {
      if (dc) break;
      const ckt::Capacitor& c = nl_.capacitors()[k];
      const CapacitorState& s = state.caps[k];
      const double geq = (trap ? 2.0 : 1.0) * c.capacitance / h;
      const double ieq = geq * s.v + (trap ? s.i : 0.0);
      stamp_conductance(c.a, c.b, geq);
      // Norton companion: device current = geq * v - ieq.
      stamp_current(c.b, c.a, ieq);
    }

    for (std::size_t k = 0; k < nl_.inductors().size(); ++k) {
      const ckt::Inductor& l = nl_.inductors()[k];
      const InductorState& s = state.inds[k];
      const std::size_t j = structure_.inductor_index(k);
      const double req = dc ? 0.0 : (trap ? 2.0 : 1.0) * l.inductance / h;
      // Branch equation: (va - vb) - req * i = e_n.
      if (l.a != ground) {
        solver_->add(j, structure_.node_index(l.a), 1.0);
        solver_->add(structure_.node_index(l.a), j, 1.0);
      }
      if (l.b != ground) {
        solver_->add(j, structure_.node_index(l.b), -1.0);
        solver_->add(structure_.node_index(l.b), j, -1.0);
      }
      solver_->add(j, j, -req);
      rhs_[j] = dc ? 0.0 : (trap ? -s.v - req * s.i : -req * s.i);
    }

    for (std::size_t k = 0; k < nl_.vsources().size(); ++k) {
      const ckt::VSource& v = nl_.vsources()[k];
      const std::size_t j = structure_.vsource_index(k);
      if (v.pos != ground) {
        solver_->add(j, structure_.node_index(v.pos), 1.0);
        solver_->add(structure_.node_index(v.pos), j, 1.0);
      }
      if (v.neg != ground) {
        solver_->add(j, structure_.node_index(v.neg), -1.0);
        solver_->add(structure_.node_index(v.neg), j, -1.0);
      }
      rhs_[j] = v.voltage.value_at(t);
    }

    for (const ckt::Mosfet& mos : nl_.mosfets()) {
      const double vd = voltage(x, mos.drain);
      const double vg = voltage(x, mos.gate);
      const double vs = voltage(x, mos.source);
      const ckt::MosfetEval e =
          mos.is_pmos ? ckt::eval_pmos(mos.params, mos.width, vg - vs, vd - vs)
                      : ckt::eval_nmos(mos.params, mos.width, vg - vs, vd - vs);
      // Linearized channel current (drain -> source):
      //   i = ieq + gm * vgs + gds * vds.
      const double ieq = e.id - e.gm * (vg - vs) - e.gds * (vd - vs);
      if (mos.drain != ground) {
        const std::size_t id_ = structure_.node_index(mos.drain);
        solver_->add(id_, id_, e.gds);
        if (mos.gate != ground) solver_->add(id_, structure_.node_index(mos.gate), e.gm);
        if (mos.source != ground) {
          solver_->add(id_, structure_.node_index(mos.source), -(e.gm + e.gds));
        }
      }
      if (mos.source != ground) {
        const std::size_t is_ = structure_.node_index(mos.source);
        solver_->add(is_, is_, e.gm + e.gds);
        if (mos.gate != ground) solver_->add(is_, structure_.node_index(mos.gate), -e.gm);
        if (mos.drain != ground) solver_->add(is_, structure_.node_index(mos.drain), -e.gds);
      }
      stamp_current(mos.drain, mos.source, ieq);
    }
  }

  const Netlist& nl_;
  const TransientOptions& opt_;
  MnaStructure structure_;
  std::size_t m_;
  std::unique_ptr<LinearSolver> solver_;
  std::vector<double> rhs_;
};

std::vector<double> solve_dc(Engine& engine, const TransientOptions& options,
                             const DynamicState& state) {
  std::vector<double> x(engine.structure().unknown_count(), 0.0);
  try {
    return engine.newton(0.0, 0.0, state, x, options.gmin);
  } catch (const ConvergenceError&) {
    // gmin stepping: solve a heavily damped system first and walk gmin down.
    for (double gmin = 1e-3; gmin >= options.gmin; gmin *= 1e-2) {
      x = engine.newton(0.0, 0.0, state, x, gmin);
    }
    return engine.newton(0.0, 0.0, state, x, options.gmin);
  }
}

}  // namespace

TransientResult::TransientResult(std::vector<ckt::NodeId> probes, std::size_t)
    : probes_(std::move(probes)), waves_(probes_.size()) {}

const wave::Waveform& TransientResult::at(ckt::NodeId node) const {
  for (std::size_t k = 0; k < probes_.size(); ++k) {
    if (probes_[k] == node) return waves_[k];
  }
  throw Error("TransientResult: node was not probed");
}

void TransientResult::record(double time, std::span<const double> node_voltages) {
  for (std::size_t k = 0; k < probes_.size(); ++k) {
    waves_[k].append(time, node_voltages[probes_[k]]);
  }
}

OperatingPoint dc_operating_point(const ckt::Netlist& netlist,
                                  const TransientOptions& options) {
  Engine engine(netlist, options);
  DynamicState state{std::vector<CapacitorState>(netlist.capacitors().size()),
                     std::vector<InductorState>(netlist.inductors().size())};
  const std::vector<double> x = solve_dc(engine, options, state);

  OperatingPoint op;
  op.node_voltage.resize(netlist.node_count(), 0.0);
  for (ckt::NodeId n = 1; n < netlist.node_count(); ++n) {
    op.node_voltage[n] = x[engine.structure().node_index(n)];
  }
  op.inductor_current.resize(netlist.inductors().size());
  for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
    op.inductor_current[k] = x[engine.structure().inductor_index(k)];
  }
  op.vsource_current.resize(netlist.vsources().size());
  for (std::size_t k = 0; k < netlist.vsources().size(); ++k) {
    op.vsource_current[k] = x[engine.structure().vsource_index(k)];
  }
  return op;
}

TransientResult simulate(const ckt::Netlist& netlist, const TransientOptions& options,
                         std::span<const ckt::NodeId> probes) {
  ensure(options.t_stop > 0.0 && options.dt > 0.0, "simulate: bad time range");
  Engine engine(netlist, options);

  DynamicState state{std::vector<CapacitorState>(netlist.capacitors().size()),
                     std::vector<InductorState>(netlist.inductors().size())};
  std::vector<double> x = solve_dc(engine, options, state);

  // Seed device state from the operating point (capacitor currents and
  // inductor voltages are zero in steady state).
  for (std::size_t k = 0; k < netlist.capacitors().size(); ++k) {
    const ckt::Capacitor& c = netlist.capacitors()[k];
    state.caps[k].v = engine.voltage(x, c.a) - engine.voltage(x, c.b);
    state.caps[k].i = 0.0;
  }
  for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
    state.inds[k].i = x[engine.structure().inductor_index(k)];
    state.inds[k].v = 0.0;
  }

  TransientResult result(std::vector<ckt::NodeId>(probes.begin(), probes.end()),
                         static_cast<std::size_t>(options.t_stop / options.dt) + 2);
  std::vector<double> node_v(netlist.node_count(), 0.0);
  auto record = [&](double t) {
    for (ckt::NodeId n = 1; n < netlist.node_count(); ++n) {
      node_v[n] = x[engine.structure().node_index(n)];
    }
    result.record(t, node_v);
  };
  record(0.0);

  const bool trap = options.integrator == Integrator::trapezoidal;
  double t = 0.0;
  while (t < options.t_stop - 1e-21) {
    const double h = std::min(options.dt, options.t_stop - t);
    const double t_next = t + h;
    x = engine.newton(t_next, h, state, x, options.gmin);

    // Advance companion-model state.
    for (std::size_t k = 0; k < netlist.capacitors().size(); ++k) {
      const ckt::Capacitor& c = netlist.capacitors()[k];
      CapacitorState& s = state.caps[k];
      const double v_new = engine.voltage(x, c.a) - engine.voltage(x, c.b);
      const double geq = (trap ? 2.0 : 1.0) * c.capacitance / h;
      const double i_new = trap ? geq * (v_new - s.v) - s.i : geq * (v_new - s.v);
      s.v = v_new;
      s.i = i_new;
    }
    for (std::size_t k = 0; k < netlist.inductors().size(); ++k) {
      const ckt::Inductor& l = netlist.inductors()[k];
      InductorState& s = state.inds[k];
      s.i = x[engine.structure().inductor_index(k)];
      s.v = engine.voltage(x, l.a) - engine.voltage(x, l.b);
    }

    t = t_next;
    record(t);
  }
  return result;
}

}  // namespace rlceff::sim
