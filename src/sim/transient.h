// Transient circuit simulation (the reproduction's HSPICE substitute).
//
// Fixed-step MNA integration with trapezoidal (default) or backward-Euler
// companion models, Newton-Raphson for the MOSFET driver, and a DC operating
// point with gmin stepping.  The Jacobian is factored by one of three
// interchangeable backends (SolverKind): a banded LU after reverse
// Cuthill-McKee ordering (discretized lines are nearly tridiagonal), a
// compressed-sparse LU with fill-reducing ordering for large trees and wide
// coupled buses, or the dense LU for small/pathological systems — selected
// automatically per netlist (selected_solver) unless overridden.
#ifndef RLCEFF_SIM_TRANSIENT_H
#define RLCEFF_SIM_TRANSIENT_H

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/netlist.h"
#include "util/budget.h"
#include "waveform/waveform.h"

namespace rlceff::sim {

enum class Integrator { trapezoidal, backward_euler };

// The linear-solver backend behind the MNA factorization.  `automatic` (the
// default everywhere) resolves per netlist via selected_solver(): banded when
// RCM leaves a narrow band, sparse when the system is large and its
// fill-reducing LU is estimated cheaper than a dense factor, dense otherwise.
// All three backends implement the same factor-once static-image contract,
// agree to LU roundoff (~1e-10 on waveforms), and are individually
// deterministic.
enum class SolverKind { automatic, dense, banded, sparse };

const char* to_string(SolverKind kind);

// Parses "auto" / "dense" / "banded" / "sparse"; throws Error otherwise.
SolverKind solver_kind_from_string(std::string_view name);

// MNA assembly strategy.
//
// `cached` splits assembly into a static image (topology, linear device
// stamps, and companion conductances — functions of the step size only) and
// per-step dynamics (RHS sources, companion currents, MOSFET linearization).
// Linear circuits factor the static matrix once per step size and do a pure
// substitution per step; nonlinear circuits restore the static image by
// memcpy each Newton iteration and restamp only the MOSFET entries.  Both
// paths produce bitwise-identical stamp sequences to `naive`, which rebuilds
// and refactors the full Jacobian every iteration and is kept as the
// reference for equivalence tests and the factor-once speedup benchmark.
enum class AssemblyMode { cached, naive };

struct TransientOptions {
  double t_stop = 1e-9;     // simulation end time [s]
  double dt = 0.1e-12;      // fixed time step [s]
  Integrator integrator = Integrator::trapezoidal;
  double gmin = 1e-12;      // conductance to ground at every node [S]
  double v_abstol = 1e-6;   // Newton voltage convergence [V]
  double i_abstol = 1e-9;   // Newton branch-current convergence [A]
  double rel_tol = 1e-6;
  // Newton ceiling; precedence per util/budget.h: the loop runs at most
  // capped_iterations(max_newton, budget->spec().max_newton_iter) iterations
  // and raises BudgetError (instead of ConvergenceError) when the budget was
  // the binding cap.
  int max_newton = util::iter_defaults::newton;
  // Cooperative execution budget (see util/budget.h): when set, the step
  // loop charges every accepted time step against max_transient_steps and
  // every step/Newton iteration checkpoints the deadline and cancel token,
  // raising DeadlineError/BudgetError promptly instead of running the
  // horizon out.  Null (default) costs one branch per checkpoint.
  util::ExecTracker* budget = nullptr;
  double newton_damping_v = 0.6;  // max voltage change accepted per iteration [V]
  AssemblyMode assembly = AssemblyMode::cached;
  // Linear-solver override: `automatic` applies the selection heuristic (see
  // selected_solver); any other value forces that backend.
  SolverKind solver = SolverKind::automatic;
  // Deprecated: pre-SolverKind spelling of `solver = SolverKind::dense`.
  // Honored (when `solver` is automatic) so existing tests compile; use the
  // SolverKind override in new code.
  bool force_dense = false;
  // Fault-injection hooks for the property/chaos harnesses (testkit/faults.h
  // generalizes these into keyed per-slot fault plans).  Never set outside
  // tests.
  //   debug_cached_stamp_skew scales every capacitor's companion conductance
  //   by (1 + skew) in the *cached* assembly path only, so any nonzero value
  //   breaks the cached==naive contract and must be caught by the
  //   equivalence oracles.
  //   debug_cached_stamp_nan poisons the first capacitor's cached-path stamp
  //   with NaN; the chaos oracles prove the simulator surfaces this as a
  //   classified failure (the non-finite solution guard below) instead of a
  //   hang or a silently-NaN waveform.
  double debug_cached_stamp_skew = 0.0;
  bool debug_cached_stamp_nan = false;
};

// Simulation output: one sampled waveform per probed node.
class TransientResult {
public:
  TransientResult(std::vector<ckt::NodeId> probes, std::size_t reserve_steps);

  const std::vector<ckt::NodeId>& probes() const { return probes_; }
  const wave::Waveform& at(ckt::NodeId node) const;

  void record(double time, std::span<const double> node_voltages);

  // Like record(), but `per_probe` is already in probe order (one value per
  // probes() entry) instead of indexed by NodeId.  Used by the blocked
  // scenario engine, whose solution storage is lane-major rather than a full
  // node-voltage vector.
  void record_probe_values(double time, std::span<const double> per_probe);

private:
  std::vector<ckt::NodeId> probes_;
  std::vector<wave::Waveform> waves_;
};

// DC operating point: node voltages indexed by NodeId (ground included as 0)
// plus inductor branch currents in netlist order.
struct OperatingPoint {
  std::vector<double> node_voltage;
  std::vector<double> inductor_current;
  std::vector<double> vsource_current;
};

// The backend simulate() will factor this netlist with: the explicit
// override when `options.solver` is not automatic (force_dense counting as a
// dense override), otherwise the heuristic — banded while RCM keeps the band
// narrow, else sparse when the unknown count is large enough that the
// estimated sparse LU work beats the dense factor, else dense.  Never
// returns SolverKind::automatic.
SolverKind selected_solver(const ckt::Netlist& netlist,
                           const TransientOptions& options = {});

// Deprecated: pre-SolverKind spelling of
// `selected_solver(netlist) == SolverKind::banded`.
bool uses_banded_solver(const ckt::Netlist& netlist);

// Solves the DC operating point at t = 0 (sources at their t = 0 values,
// capacitors open, inductors shorted).
OperatingPoint dc_operating_point(const ckt::Netlist& netlist,
                                  const TransientOptions& options = {});

// Runs a transient from the DC operating point, recording the probed nodes.
TransientResult simulate(const ckt::Netlist& netlist, const TransientOptions& options,
                         std::span<const ckt::NodeId> probes);

}  // namespace rlceff::sim

#endif  // RLCEFF_SIM_TRANSIENT_H
