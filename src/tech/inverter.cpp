#include "tech/inverter.h"

#include "util/error.h"

namespace rlceff::tech {

double Inverter::input_capacitance(const Technology& t) const {
  const double w_total = nmos_width(t) + pmos_width(t);
  return w_total * (t.c_gate_per_width + t.c_overlap_per_width);
}

double Inverter::output_capacitance(const Technology& t) const {
  const double w_total = nmos_width(t) + pmos_width(t);
  return w_total * t.c_drain_per_width;
}

InverterInstance add_inverter(ckt::Netlist& netlist, const Technology& tech,
                              const Inverter& cell, ckt::NodeId input,
                              ckt::NodeId output) {
  ensure(cell.size > 0.0, "add_inverter: size must be positive");
  const ckt::NodeId vdd = netlist.add_node();
  const std::size_t rail = netlist.add_vsource(
      vdd, ckt::ground, wave::Pwl({{0.0, tech.vdd}}));

  netlist.add_mosfet(output, input, ckt::ground, tech.nmos, cell.nmos_width(tech),
                     /*is_pmos=*/false);
  netlist.add_mosfet(output, input, vdd, tech.pmos, cell.pmos_width(tech),
                     /*is_pmos=*/true);

  const double w_total = cell.nmos_width(tech) + cell.pmos_width(tech);
  netlist.add_capacitor(input, ckt::ground, w_total * tech.c_gate_per_width);
  netlist.add_capacitor(input, output, w_total * tech.c_overlap_per_width);
  netlist.add_capacitor(output, ckt::ground, w_total * tech.c_drain_per_width);

  return {input, output, rail};
}

}  // namespace rlceff::tech
