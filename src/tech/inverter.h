// Sized inverter driver cell.
//
// The paper's drivers are inverters whose NMOS width is `size` times the
// minimum width (0.36 um) with PMOS twice as wide (footnote 1).  This header
// provides the sizing arithmetic and the deck builder that instantiates the
// cell into a Netlist (two MOSFETs plus gate/drain/overlap parasitics).
#ifndef RLCEFF_TECH_INVERTER_H
#define RLCEFF_TECH_INVERTER_H

#include "circuit/netlist.h"
#include "tech/technology.h"

namespace rlceff::tech {

struct Inverter {
  double size = 1.0;  // drive strength in multiples of minimum (e.g. 75 for "75X")

  double nmos_width(const Technology& t) const { return size * t.w_unit; }
  double pmos_width(const Technology& t) const { return size * t.w_unit * t.pmos_ratio; }

  // Input capacitance seen by the previous stage (gate + overlap).
  double input_capacitance(const Technology& t) const;
  // Output (drain junction) capacitance contributed by the cell itself.
  double output_capacitance(const Technology& t) const;
};

// Instantiated cell terminals inside a netlist.
struct InverterInstance {
  ckt::NodeId input;
  ckt::NodeId output;
  std::size_t vdd_source;  // index of the rail source in the netlist
};

// Adds the inverter between `input` and `output` with a dedicated DC rail
// source.  Gate, overlap and drain parasitics are included.
InverterInstance add_inverter(ckt::Netlist& netlist, const Technology& tech,
                              const Inverter& cell, ckt::NodeId input,
                              ckt::NodeId output);

}  // namespace rlceff::tech

#endif  // RLCEFF_TECH_INVERTER_H
