#include "tech/technology.h"

namespace rlceff::tech {

Technology Technology::cmos180() {
  Technology t;
  // NMOS: Idsat ~ 650 uA/um at Vgs = Vds = 1.8 V, Vth ~ 0.45 V, alpha ~ 1.3.
  t.nmos.vth = 0.45;
  t.nmos.alpha = 1.3;
  t.nmos.k_sat = 440.0;   // A/(m * V^alpha) -> 650 uA/um at Vgt = 1.35 V
  t.nmos.kv = 0.8;
  t.nmos.lambda = 0.06;
  // PMOS: Idsat ~ 280 uA/um.  With the 2x width ratio a 75X pull-up delivers
  // ~15 mA, which reproduces the paper's Fig-1 plateau at ~0.58 * Vdd on a
  // 68-ohm line (f = Idsat * Z0 / Vdd); kv is set so the Thevenin resistance
  // extracted from the 50-90 % tail (~50 ohm at 75X) is consistent with that
  // plateau through Eq 1.
  t.pmos.vth = 0.45;
  t.pmos.alpha = 1.4;
  t.pmos.k_sat = 189.0;
  t.pmos.kv = 0.8;
  t.pmos.lambda = 0.06;
  return t;
}

}  // namespace rlceff::tech
