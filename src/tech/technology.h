// Technology description (the reproduction's stand-in for the paper's
// commercial 1.8 V, 0.18 um CMOS process).
//
// Device parameters are alpha-power-law MOSFETs calibrated to public 0.18 um
// characteristics.  The calibration target that actually matters for the
// paper's experiments is the driver's Thevenin output resistance: inverters
// from 25X to 125X must straddle the characteristic impedance of global
// wires (56-80 ohm), which puts weak drivers in the RC regime and strong
// drivers in the transmission-line regime, exactly as in the paper.
#ifndef RLCEFF_TECH_TECHNOLOGY_H
#define RLCEFF_TECH_TECHNOLOGY_H

#include "circuit/mosfet.h"

namespace rlceff::tech {

struct Technology {
  double vdd = 1.8;              // supply [V]
  double l_min = 0.18e-6;        // drawn channel length [m]
  double w_unit = 0.36e-6;       // "1X" NMOS width = 2 * l_min [m] (paper's footnote 1)
  double pmos_ratio = 2.0;       // PMOS width / NMOS width in an inverter

  ckt::MosfetParams nmos;
  ckt::MosfetParams pmos;

  double c_gate_per_width = 1.8e-9;     // gate input capacitance [F/m of width]
  double c_drain_per_width = 1.0e-9;    // drain junction capacitance [F/m of width]
  double c_overlap_per_width = 0.25e-9; // gate-drain overlap (Miller) [F/m of width]

  // The 0.18 um calibration used throughout the reproduction.
  static Technology cmos180();
};

}  // namespace rlceff::tech

#endif  // RLCEFF_TECH_TECHNOLOGY_H
