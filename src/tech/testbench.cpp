#include "tech/testbench.h"

#include <array>

#include "circuit/builders.h"
#include "util/error.h"

namespace rlceff::tech {

namespace {

sim::TransientOptions make_sim_options(const DeckOptions& options) {
  sim::TransientOptions s = options.sim;
  s.t_stop = options.t_stop;
  s.dt = options.dt;
  return s;
}

}  // namespace

wave::Pwl falling_input(const Technology& tech, double t_start, double input_slew) {
  ensure(input_slew > 0.0, "falling_input: slew must be positive");
  return wave::Pwl({{t_start, tech.vdd}, {t_start + input_slew, 0.0}});
}

wave::Waveform simulate_driver_cap_load(const Technology& tech, const Inverter& cell,
                                        double input_slew, double c_load,
                                        const DeckOptions& options,
                                        double* input_time_50) {
  ckt::Netlist nl;
  const ckt::NodeId in = nl.node("in");
  const ckt::NodeId out = nl.node("out");
  nl.add_vsource(in, ckt::ground, falling_input(tech, options.t_start, input_slew));
  add_inverter(nl, tech, cell, in, out);
  nl.add_capacitor(out, ckt::ground, c_load);

  if (input_time_50 != nullptr) *input_time_50 = options.t_start + 0.5 * input_slew;
  const std::array<ckt::NodeId, 1> probes{out};
  return sim::simulate(nl, make_sim_options(options), probes).at(out);
}

LineSimResult simulate_driver_line(const Technology& tech, const Inverter& cell,
                                   double input_slew, const WireParasitics& wire,
                                   const DeckOptions& options) {
  ckt::Netlist nl;
  const ckt::NodeId in = nl.node("in");
  const ckt::NodeId out = nl.node("out");
  nl.add_vsource(in, ckt::ground, falling_input(tech, options.t_start, input_slew));
  add_inverter(nl, tech, cell, in, out);
  const ckt::LadderNodes line = ckt::append_rlc_ladder(
      nl, out, wire.resistance, wire.inductance, wire.capacitance, options.segments);
  nl.add_capacitor(line.far_end, ckt::ground, options.c_load_far);

  const std::array<ckt::NodeId, 2> probes{out, line.far_end};
  sim::TransientResult res = sim::simulate(nl, make_sim_options(options), probes);
  return {res.at(out), res.at(line.far_end), options.t_start + 0.5 * input_slew};
}

namespace {

// Recursively instantiates a tree net; collects leaf nodes depth-first.
void build_tree(ckt::Netlist& nl, ckt::NodeId from, const moments::RlcBranch& branch,
                std::size_t segments, std::vector<ckt::NodeId>& leaves) {
  ckt::NodeId far = from;
  if (branch.resistance > 0.0 && branch.capacitance > 0.0) {
    far = ckt::append_rlc_ladder(nl, from, branch.resistance, branch.inductance,
                                 branch.capacitance, segments)
              .far_end;
  } else if (branch.capacitance > 0.0) {
    nl.add_capacitor(from, ckt::ground, branch.capacitance);
  }
  if (branch.children.empty()) {
    leaves.push_back(far);
    return;
  }
  for (const moments::RlcBranch& child : branch.children) {
    build_tree(nl, far, child, segments, leaves);
  }
}

TreeSimResult run_tree_deck(ckt::Netlist& nl, ckt::NodeId out,
                            const std::vector<ckt::NodeId>& leaves,
                            double input_time_50, const DeckOptions& options) {
  std::vector<ckt::NodeId> probes;
  probes.push_back(out);
  probes.insert(probes.end(), leaves.begin(), leaves.end());
  sim::TransientResult res = sim::simulate(nl, make_sim_options(options), probes);
  TreeSimResult result;
  result.near_end = res.at(out);
  for (ckt::NodeId leaf : leaves) result.leaves.push_back(res.at(leaf));
  result.input_time_50 = input_time_50;
  return result;
}

}  // namespace

TreeSimResult simulate_driver_tree(const Technology& tech, const Inverter& cell,
                                   double input_slew, const moments::RlcBranch& net,
                                   const DeckOptions& options,
                                   std::size_t segments_per_branch) {
  ckt::Netlist nl;
  const ckt::NodeId in = nl.node("in");
  const ckt::NodeId out = nl.node("out");
  nl.add_vsource(in, ckt::ground, falling_input(tech, options.t_start, input_slew));
  add_inverter(nl, tech, cell, in, out);
  std::vector<ckt::NodeId> leaves;
  build_tree(nl, out, net, segments_per_branch, leaves);
  return run_tree_deck(nl, out, leaves, options.t_start + 0.5 * input_slew, options);
}

TreeSimResult simulate_source_tree(const wave::Pwl& source,
                                   const moments::RlcBranch& net,
                                   const DeckOptions& options,
                                   std::size_t segments_per_branch) {
  ckt::Netlist nl;
  const ckt::NodeId out = nl.node("out");
  nl.add_vsource(out, ckt::ground, source);
  std::vector<ckt::NodeId> leaves;
  build_tree(nl, out, net, segments_per_branch, leaves);
  const double v_final = source.final_value();
  TreeSimResult result = run_tree_deck(nl, out, leaves, 0.0, options);
  result.input_time_50 =
      result.near_end.first_crossing(0.5 * v_final, v_final > 0.0)
          .value_or(source.start_time());
  return result;
}

LineSimResult simulate_source_line(const wave::Pwl& source, const WireParasitics& wire,
                                   const DeckOptions& options) {
  ckt::Netlist nl;
  const ckt::NodeId out = nl.node("out");
  nl.add_vsource(out, ckt::ground, source);
  const ckt::LadderNodes line = ckt::append_rlc_ladder(
      nl, out, wire.resistance, wire.inductance, wire.capacitance, options.segments);
  nl.add_capacitor(line.far_end, ckt::ground, options.c_load_far);

  const std::array<ckt::NodeId, 2> probes{out, line.far_end};
  sim::TransientResult res = sim::simulate(nl, make_sim_options(options), probes);
  // For an ideal source the "input" and near end coincide; report the source
  // 50 % crossing so far-end delays have a reference.
  const double v_final = source.final_value();
  const auto t50 = res.at(out).first_crossing(0.5 * v_final, v_final > 0.0);
  return {res.at(out), res.at(line.far_end), t50.value_or(source.start_time())};
}

}  // namespace rlceff::tech
