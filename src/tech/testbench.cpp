#include "tech/testbench.h"

#include <algorithm>
#include <array>

#include "circuit/builders.h"
#include "util/error.h"

namespace rlceff::tech {

namespace {

// Probes for one compiled net: the driving point, every leaf, and every
// named probe (deduplicated — a named leaf is probed once).
void add_net_probes(std::vector<ckt::NodeId>& probes, ckt::NodeId out,
                    const ckt::NetDeckNodes& nodes) {
  auto add_probe = [&probes](ckt::NodeId n) {
    if (std::find(probes.begin(), probes.end(), n) == probes.end()) {
      probes.push_back(n);
    }
  };
  add_probe(out);
  for (ckt::NodeId leaf : nodes.leaves) add_probe(leaf);
  for (const auto& [name, node] : nodes.probes) add_probe(node);
}

NetSimResult collect_net_result(const sim::TransientResult& res, ckt::NodeId out,
                                const ckt::NetDeckNodes& nodes,
                                double input_time_50) {
  NetSimResult result;
  result.near_end = res.at(out);
  result.leaves.reserve(nodes.leaves.size());
  for (ckt::NodeId leaf : nodes.leaves) result.leaves.push_back(res.at(leaf));
  result.probes.reserve(nodes.probes.size());
  for (const auto& [name, node] : nodes.probes) {
    result.probes.emplace_back(name, res.at(node));
  }
  result.input_time_50 = input_time_50;
  return result;
}

NetSimResult run_net_deck(ckt::Netlist& nl, ckt::NodeId out,
                          const ckt::NetDeckNodes& nodes, double input_time_50,
                          const DeckOptions& options) {
  std::vector<ckt::NodeId> probes;
  add_net_probes(probes, out, nodes);
  const sim::TransientOptions so = sim_options(options);
  const sim::TransientResult res = sim::simulate(nl, so, probes);
  NetSimResult result = collect_net_result(res, out, nodes, input_time_50);
  result.solver = sim::selected_solver(nl, so);
  return result;
}

}  // namespace

sim::TransientOptions sim_options(const DeckOptions& options) {
  sim::TransientOptions s = options.sim;
  s.t_stop = options.t_stop;
  s.dt = options.dt;
  return s;
}

SourceNetDeck compile_source_net(const wave::Pwl& source, const net::Net& net,
                                 const DeckOptions& options) {
  SourceNetDeck deck;
  deck.out = deck.netlist.node("out");
  deck.netlist.add_vsource(deck.out, ckt::ground, source);
  deck.nodes = ckt::append_net(deck.netlist, deck.out, net, options.segments);
  add_net_probes(deck.probes, deck.out, deck.nodes);
  return deck;
}

NetSimResult collect_source_result(const SourceNetDeck& deck,
                                   const sim::TransientResult& res,
                                   const wave::Pwl& source) {
  NetSimResult result = collect_net_result(res, deck.out, deck.nodes, 0.0);
  // For an ideal source the "input" and near end coincide; report the source
  // 50 % crossing so sink delays have a reference.
  const double v_final = source.final_value();
  result.input_time_50 =
      result.near_end.first_crossing(0.5 * v_final, v_final > 0.0)
          .value_or(source.start_time());
  return result;
}

const wave::Waveform& NetSimResult::probe(std::string_view name) const {
  for (const auto& [probe_name, waveform] : probes) {
    if (probe_name == name) return waveform;
  }
  throw Error("NetSimResult: no probe named '" + std::string(name) + "'");
}

wave::Pwl falling_input(const Technology& tech, double t_start, double input_slew) {
  ensure(input_slew > 0.0, "falling_input: slew must be positive");
  return wave::Pwl({{t_start, tech.vdd}, {t_start + input_slew, 0.0}});
}

wave::Waveform simulate_driver_cap_load(const Technology& tech, const Inverter& cell,
                                        double input_slew, double c_load,
                                        const DeckOptions& options,
                                        double* input_time_50) {
  ckt::Netlist nl;
  const ckt::NodeId in = nl.node("in");
  const ckt::NodeId out = nl.node("out");
  nl.add_vsource(in, ckt::ground, falling_input(tech, options.t_start, input_slew));
  add_inverter(nl, tech, cell, in, out);
  nl.add_capacitor(out, ckt::ground, c_load);

  if (input_time_50 != nullptr) *input_time_50 = options.t_start + 0.5 * input_slew;
  const std::array<ckt::NodeId, 1> probes{out};
  return sim::simulate(nl, sim_options(options), probes).at(out);
}

NetSimResult simulate_driver_net(const Technology& tech, const Inverter& cell,
                                 double input_slew, const net::Net& net,
                                 const DeckOptions& options) {
  ckt::Netlist nl;
  const ckt::NodeId in = nl.node("in");
  const ckt::NodeId out = nl.node("out");
  nl.add_vsource(in, ckt::ground, falling_input(tech, options.t_start, input_slew));
  add_inverter(nl, tech, cell, in, out);
  const ckt::NetDeckNodes nodes = ckt::append_net(nl, out, net, options.segments);
  return run_net_deck(nl, out, nodes, options.t_start + 0.5 * input_slew, options);
}

NetSimResult simulate_source_net(const wave::Pwl& source, const net::Net& net,
                                 const DeckOptions& options) {
  SourceNetDeck deck = compile_source_net(source, net, options);
  const sim::TransientOptions so = sim_options(options);
  const sim::TransientResult res = sim::simulate(deck.netlist, so, deck.probes);
  NetSimResult result = collect_source_result(deck, res, source);
  result.solver = sim::selected_solver(deck.netlist, so);
  return result;
}

CoupledSimResult simulate_coupled_group(const Technology& tech,
                                        std::span<const NetDrive> drives,
                                        const net::CoupledGroup& group,
                                        const DeckOptions& options) {
  ensure(!group.empty(), "simulate_coupled_group: empty group");
  ensure(drives.size() == group.size(),
         "simulate_coupled_group: need one drive per net");

  ckt::Netlist nl;
  std::vector<ckt::NodeId> outs(group.size());
  std::vector<double> input_t50(group.size());
  for (std::size_t k = 0; k < group.size(); ++k) {
    const NetDrive& drive = drives[k];
    const ckt::NodeId in = nl.node("in:" + group.label_at(k));
    const ckt::NodeId out = nl.node("out:" + group.label_at(k));
    wave::Pwl input;
    switch (drive.edge) {
      case DriveEdge::rise:
        input = falling_input(tech, options.t_start, drive.input_slew);
        break;
      case DriveEdge::fall:
        ensure(drive.input_slew > 0.0,
               "simulate_coupled_group: slew must be positive");
        input = wave::Pwl({{options.t_start, 0.0},
                           {options.t_start + drive.input_slew, tech.vdd}});
        break;
      case DriveEdge::hold_low:
        input = wave::Pwl({{0.0, tech.vdd}});
        break;
    }
    nl.add_vsource(in, ckt::ground, std::move(input));
    add_inverter(nl, tech, drive.cell, in, out);
    outs[k] = out;
    input_t50[k] = drive.edge == DriveEdge::hold_low
                       ? options.t_start
                       : options.t_start + 0.5 * drive.input_slew;
  }

  const ckt::CoupledDeckNodes decks =
      ckt::append_coupled_group(nl, outs, group, options.segments);

  std::vector<ckt::NodeId> probes;
  for (std::size_t k = 0; k < group.size(); ++k) {
    add_net_probes(probes, outs[k], decks.nets[k]);
  }
  const sim::TransientOptions so = sim_options(options);
  const sim::TransientResult res = sim::simulate(nl, so, probes);
  const sim::SolverKind solver = sim::selected_solver(nl, so);

  CoupledSimResult result;
  result.nets.reserve(group.size());
  for (std::size_t k = 0; k < group.size(); ++k) {
    result.nets.push_back(
        collect_net_result(res, outs[k], decks.nets[k], input_t50[k]));
    result.nets.back().solver = solver;
  }
  return result;
}

// ---- legacy adapters -----------------------------------------------------

LineSimResult simulate_driver_line(const Technology& tech, const Inverter& cell,
                                   double input_slew, const WireParasitics& wire,
                                   const DeckOptions& options) {
  NetSimResult r = simulate_driver_net(tech, cell, input_slew,
                                       line_net(wire, options.c_load_far), options);
  return {std::move(r.near_end), std::move(r.leaves.front()), r.input_time_50};
}

LineSimResult simulate_source_line(const wave::Pwl& source, const WireParasitics& wire,
                                   const DeckOptions& options) {
  NetSimResult r =
      simulate_source_net(source, line_net(wire, options.c_load_far), options);
  return {std::move(r.near_end), std::move(r.leaves.front()), r.input_time_50};
}

TreeSimResult simulate_driver_tree(const Technology& tech, const Inverter& cell,
                                   double input_slew, const moments::RlcBranch& net,
                                   const DeckOptions& options,
                                   std::size_t segments_per_branch) {
  DeckOptions o = options;
  o.segments = segments_per_branch;
  NetSimResult r =
      simulate_driver_net(tech, cell, input_slew, net::Net::from_tree(net), o);
  return {std::move(r.near_end), std::move(r.leaves), r.input_time_50};
}

TreeSimResult simulate_source_tree(const wave::Pwl& source,
                                   const moments::RlcBranch& net,
                                   const DeckOptions& options,
                                   std::size_t segments_per_branch) {
  DeckOptions o = options;
  o.segments = segments_per_branch;
  NetSimResult r = simulate_source_net(source, net::Net::from_tree(net), o);
  return {std::move(r.near_end), std::move(r.leaves), r.input_time_50};
}

}  // namespace rlceff::tech
