// Canonical simulation decks.
//
// Every experiment in the paper is one of three decks:
//   1. an inverter driving a pure capacitive load (library characterization),
//   2. an inverter driving a discretized interconnect net (the "HSPICE"
//      reference),
//   3. an ideal PWL source driving the same net (replaying a modeled driver
//      output waveform to validate the sink responses, Fig 6).
//
// Decks 2 and 3 take any net::Net — uniform lines, multi-section routes, and
// branched trees all compile through ckt::append_net.  The legacy
// WireParasitics / moments::RlcBranch entry points survive as one-line
// adapters that wrap the corresponding net into a Net first; new code should
// build a Net and call simulate_driver_net / simulate_source_net.
//
// The input stimulus is a falling saturated ramp (so the driver output
// rises), starting after a short DC hold.  All waveforms are returned in
// absolute simulation time; input_time_50() gives the reference instant
// delays are measured from.
#ifndef RLCEFF_TECH_TESTBENCH_H
#define RLCEFF_TECH_TESTBENCH_H

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "circuit/builders.h"
#include "circuit/netlist.h"
#include "moments/admittance.h"
#include "net/coupled.h"
#include "net/net.h"
#include "sim/transient.h"
#include "tech/inverter.h"
#include "tech/technology.h"
#include "tech/wire.h"
#include "waveform/pwl.h"
#include "waveform/waveform.h"

namespace rlceff::tech {

struct DeckOptions {
  double t_start = 10e-12;       // input edge begins here [s]
  double t_stop = 2e-9;          // simulation horizon [s]
  double dt = 0.25e-12;          // time step [s]
  std::size_t segments = 120;    // ladder discretization per net section
  double c_load_far = 20e-15;    // far-end load used by the legacy line decks [F]
  sim::TransientOptions sim;     // solver controls (t_stop/dt overridden)
};

// Simulation of a driver (or source) into a net::Net.
struct NetSimResult {
  wave::Waveform near_end;                                   // driver output
  std::vector<wave::Waveform> leaves;                        // depth-first leaf order
  std::vector<std::pair<std::string, wave::Waveform>> probes;  // named probes
  double input_time_50 = 0.0;  // 50 % crossing of the input stimulus
  // The backend that factored this deck (sim::selected_solver over the
  // compiled netlist — never `automatic`); reported up through
  // core::ExperimentResult and api::Response.
  sim::SolverKind solver = sim::SolverKind::automatic;

  // Named-probe lookup; throws when the net declared no such probe.
  const wave::Waveform& probe(std::string_view name) const;
};

// Falling input ramp (Vdd -> 0) with full-swing transition time input_slew.
wave::Pwl falling_input(const Technology& tech, double t_start, double input_slew);

// Deck 1: driver into a lumped capacitor.  Returns the output waveform and
// the input 50 % time via the out-parameter.
wave::Waveform simulate_driver_cap_load(const Technology& tech, const Inverter& cell,
                                        double input_slew, double c_load,
                                        const DeckOptions& options,
                                        double* input_time_50 = nullptr);

// Deck 2: driver into a discretized net::Net.
NetSimResult simulate_driver_net(const Technology& tech, const Inverter& cell,
                                 double input_slew, const net::Net& net,
                                 const DeckOptions& options);

// Deck 3: ideal source waveform into the same net.  input_time_50 is the
// source's own 50 % crossing so sink delays have a reference.
NetSimResult simulate_source_net(const wave::Pwl& source, const net::Net& net,
                                 const DeckOptions& options);

// ---- compiled source-net decks -------------------------------------------
// Deck 3 split into compile / simulate / collect so the scenario-batching
// engine can group compiled decks by topology and run them as one
// shared-factorization block while reusing exactly the code path
// simulate_source_net runs per slot (same netlist build order, same probe
// list, same measurement extraction — the bitwise-parity prerequisite).

struct SourceNetDeck {
  ckt::Netlist netlist;
  ckt::NodeId out = ckt::ground;   // driving point (source positive node)
  ckt::NetDeckNodes nodes;         // leaves + named probes of the net
  std::vector<ckt::NodeId> probes;  // deduplicated probe list for sim::simulate
};

// The TransientOptions simulate_source_net would hand sim::simulate for this
// deck (options.sim with t_stop/dt overridden by the deck fields).
sim::TransientOptions sim_options(const DeckOptions& options);

// Builds the deck netlist exactly as simulate_source_net does (source first,
// then the discretized net) without running it.
SourceNetDeck compile_source_net(const wave::Pwl& source, const net::Net& net,
                                 const DeckOptions& options);

// Extracts the NetSimResult (waveforms + the source's 50 % crossing) from a
// finished simulation of a compiled deck.  Does not fill NetSimResult::solver
// — the caller knows which backend actually ran.
NetSimResult collect_source_result(const SourceNetDeck& deck,
                                   const sim::TransientResult& res,
                                   const wave::Pwl& source);

// ---- coupled decks -------------------------------------------------------

// What one net's driver does during a coupled run.
enum class DriveEdge {
  rise,      // input falls, driver output rises (the single-net testbench edge)
  fall,      // input rises, driver output falls from Vdd
  hold_low,  // input held at Vdd, driver output stays low (quiet victim/aggressor)
};

struct NetDrive {
  Inverter cell{75.0};
  double input_slew = 100e-12;  // full-swing input ramp time [s]
  DriveEdge edge = DriveEdge::rise;
};

struct CoupledSimResult {
  std::vector<NetSimResult> nets;  // one per group net, in group order
};

// Deck 4: one inverter per net driving a compiled net::CoupledGroup — the
// coupled "HSPICE" reference.  All switching inputs share the same t_start,
// so aggressor and victim edges are aligned; each net's input_time_50 is its
// own input's 50 % crossing (held inputs report t_start).  A group of one
// net with DriveEdge::rise builds the exact deck simulate_driver_net builds.
CoupledSimResult simulate_coupled_group(const Technology& tech,
                                        std::span<const NetDrive> drives,
                                        const net::CoupledGroup& group,
                                        const DeckOptions& options);

// ---- legacy adapters -----------------------------------------------------
// Deprecated spellings of decks 2/3 for uniform lines (with
// options.c_load_far at the far end) and moments::RlcBranch trees.  Each is a
// thin wrapper over the net::Net entry points above.

struct LineSimResult {
  wave::Waveform near_end;  // driver output
  wave::Waveform far_end;
  double input_time_50 = 0.0;  // 50 % crossing of the input stimulus
};

LineSimResult simulate_driver_line(const Technology& tech, const Inverter& cell,
                                   double input_slew, const WireParasitics& wire,
                                   const DeckOptions& options);

LineSimResult simulate_source_line(const wave::Pwl& source, const WireParasitics& wire,
                                   const DeckOptions& options);

struct TreeSimResult {
  wave::Waveform near_end;
  std::vector<wave::Waveform> leaves;
  double input_time_50 = 0.0;
};

TreeSimResult simulate_driver_tree(const Technology& tech, const Inverter& cell,
                                   double input_slew, const moments::RlcBranch& net,
                                   const DeckOptions& options,
                                   std::size_t segments_per_branch = 30);

TreeSimResult simulate_source_tree(const wave::Pwl& source,
                                   const moments::RlcBranch& net,
                                   const DeckOptions& options,
                                   std::size_t segments_per_branch = 30);

}  // namespace rlceff::tech

#endif  // RLCEFF_TECH_TESTBENCH_H
