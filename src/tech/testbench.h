// Canonical simulation decks.
//
// Every experiment in the paper is one of three decks:
//   1. an inverter driving a pure capacitive load (library characterization),
//   2. an inverter driving a discretized RLC line (the "HSPICE" reference),
//   3. an ideal PWL source driving the same line (replaying a modeled driver
//      output waveform to validate the far-end response, Fig 6).
//
// The input stimulus is a falling saturated ramp (so the driver output
// rises), starting after a short DC hold.  All waveforms are returned in
// absolute simulation time; input_time_50() gives the reference instant
// delays are measured from.
#ifndef RLCEFF_TECH_TESTBENCH_H
#define RLCEFF_TECH_TESTBENCH_H

#include "moments/admittance.h"
#include "sim/transient.h"
#include "tech/inverter.h"
#include "tech/technology.h"
#include "tech/wire.h"
#include "waveform/pwl.h"
#include "waveform/waveform.h"

namespace rlceff::tech {

struct DeckOptions {
  double t_start = 10e-12;       // input edge begins here [s]
  double t_stop = 2e-9;          // simulation horizon [s]
  double dt = 0.25e-12;          // time step [s]
  std::size_t segments = 120;    // ladder discretization of the line
  double c_load_far = 20e-15;    // receiver load at the far end [F]
  sim::TransientOptions sim;     // solver controls (t_stop/dt overridden)
};

struct LineSimResult {
  wave::Waveform near_end;  // driver output
  wave::Waveform far_end;
  double input_time_50 = 0.0;  // 50 % crossing of the input stimulus
};

// Falling input ramp (Vdd -> 0) with full-swing transition time input_slew.
wave::Pwl falling_input(const Technology& tech, double t_start, double input_slew);

// Deck 1: driver into a lumped capacitor.  Returns the output waveform and
// the input 50 % time via the out-parameter.
wave::Waveform simulate_driver_cap_load(const Technology& tech, const Inverter& cell,
                                        double input_slew, double c_load,
                                        const DeckOptions& options,
                                        double* input_time_50 = nullptr);

// Deck 2: driver into an RLC ladder with a far-end receiver load.
LineSimResult simulate_driver_line(const Technology& tech, const Inverter& cell,
                                   double input_slew, const WireParasitics& wire,
                                   const DeckOptions& options);

// Deck 3: ideal source waveform into the same ladder.
LineSimResult simulate_source_line(const wave::Pwl& source, const WireParasitics& wire,
                                   const DeckOptions& options);

// Tree decks: each moments::RlcBranch becomes a discretized ladder segment;
// children hang off its far end; receiver loads belong in the leaf branches'
// capacitance.  Leaf waveforms are returned in depth-first order.
struct TreeSimResult {
  wave::Waveform near_end;
  std::vector<wave::Waveform> leaves;
  double input_time_50 = 0.0;
};

TreeSimResult simulate_driver_tree(const Technology& tech, const Inverter& cell,
                                   double input_slew, const moments::RlcBranch& net,
                                   const DeckOptions& options,
                                   std::size_t segments_per_branch = 30);

TreeSimResult simulate_source_tree(const wave::Pwl& source,
                                   const moments::RlcBranch& net,
                                   const DeckOptions& options,
                                   std::size_t segments_per_branch = 30);

}  // namespace rlceff::tech

#endif  // RLCEFF_TECH_TESTBENCH_H
