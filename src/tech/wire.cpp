#include "tech/wire.h"

#include <array>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace rlceff::tech {

namespace {

using units::ff;
using units::mm;
using units::nh;
using units::ohm;
using units::pf;
using units::um;

constexpr double r_fit_a = 20.418;   // ohm*um/mm
constexpr double r_fit_b = 1.7278;   // ohm/mm
constexpr double l_fit_a = 1.08055;  // nH/mm
constexpr double l_fit_b = 0.12312;  // nH/mm per ln(um)
constexpr double c_fit_0 = 131.5306; // fF/mm
constexpr double c_fit_1 = 56.2490;  // fF/mm/um
constexpr double c_fit_2 = -0.6039;  // fF/mm/um^2

const std::array<PaperWireCase, 16> cases = {{
    {3.0, 0.8, {81.8, 3.3 * nh, 0.52 * pf}},
    {3.0, 1.2, {56.3, 3.2 * nh, 0.59 * pf}},
    {3.0, 1.6, {43.5, 3.1 * nh, 0.66 * pf}},
    {4.0, 0.8, {108.9, 4.42 * nh, 0.704 * pf}},
    {4.0, 1.2, {75.0, 4.2 * nh, 0.80 * pf}},
    {4.0, 1.6, {58.0, 4.13 * nh, 0.884 * pf}},
    {5.0, 1.2, {93.7, 5.3 * nh, 1.0 * pf}},
    {5.0, 1.6, {72.44, 5.14 * nh, 1.10 * pf}},
    {5.0, 2.0, {59.7, 5.0 * nh, 1.22 * pf}},
    {5.0, 2.5, {49.5, 4.8 * nh, 1.31 * pf}},
    {6.0, 1.2, {112.4, 6.3 * nh, 1.19 * pf}},
    {6.0, 1.6, {86.9, 6.2 * nh, 1.33 * pf}},
    {6.0, 2.0, {71.6, 6.0 * nh, 1.46 * pf}},
    {6.0, 2.5, {59.3, 5.8 * nh, 1.58 * pf}},
    {6.0, 3.0, {51.2, 5.6 * nh, 1.80 * pf}},
    {7.0, 1.6, {101.3, 7.1 * nh, 1.54 * pf}},
}};

}  // namespace

double WireParasitics::z0() const {
  ensure(capacitance > 0.0,
         "WireParasitics::z0: zero/negative capacitance (division by zero)");
  ensure(inductance > 0.0, "WireParasitics::z0: zero/negative inductance");
  return std::sqrt(inductance / capacitance);
}

double WireParasitics::time_of_flight() const {
  ensure(capacitance > 0.0,
         "WireParasitics::time_of_flight: zero/negative capacitance");
  ensure(inductance > 0.0, "WireParasitics::time_of_flight: zero/negative inductance");
  return std::sqrt(inductance * capacitance);
}

double WireModel::resistance_per_meter(double width) const {
  ensure(width > 0.0, "WireModel: width must be positive");
  const double w_um = width / um;
  return (r_fit_a / w_um + r_fit_b) * ohm / mm;
}

double WireModel::inductance_per_meter(double width) const {
  ensure(width > 0.0, "WireModel: width must be positive");
  const double w_um = width / um;
  return (l_fit_a - l_fit_b * std::log(w_um)) * nh / mm;
}

double WireModel::capacitance_per_meter(double width) const {
  ensure(width > 0.0, "WireModel: width must be positive");
  const double w_um = width / um;
  return (c_fit_0 + c_fit_1 * w_um + c_fit_2 * w_um * w_um) * ff / mm;
}

WireParasitics WireModel::extract(const WireGeometry& geometry) const {
  ensure(geometry.length > 0.0, "WireModel: length must be positive");
  WireParasitics p;
  p.resistance = resistance_per_meter(geometry.width) * geometry.length;
  p.inductance = inductance_per_meter(geometry.width) * geometry.length;
  p.capacitance = capacitance_per_meter(geometry.width) * geometry.length;
  return p;
}

std::span<const PaperWireCase> paper_wire_cases() { return cases; }

net::Net line_net(const WireParasitics& wire, double c_load_far) {
  return net::Net::uniform_line(wire.resistance, wire.inductance, wire.capacitance,
                                c_load_far);
}

net::Net route_net(const WireModel& model, std::span<const WireGeometry> route,
                   double c_load_far) {
  ensure(!route.empty(), "route_net: empty route");
  std::vector<net::Section> sections;
  sections.reserve(route.size());
  for (const WireGeometry& geometry : route) {
    const WireParasitics p = model.extract(geometry);
    sections.push_back({p.resistance, p.inductance, p.capacitance,
                        net::SectionKind::distributed});
  }
  return net::Net::multi_section(std::move(sections), c_load_far);
}

std::optional<WireParasitics> find_paper_wire_case(double length_mm, double width_um) {
  for (const PaperWireCase& c : cases) {
    if (std::abs(c.length_mm - length_mm) < 0.05 && std::abs(c.width_um - width_um) < 0.05) {
      return c.parasitics;
    }
  }
  return std::nullopt;
}

}  // namespace rlceff::tech
