// Wire parasitics (the reproduction's stand-in for the paper's industrial
// 3-D field solver).
//
// The paper prints the extracted (R, L, C) for sixteen length/width
// combinations (Table 1 plus the figure captions).  WireModel is a set of
// closed-form per-unit-length fits to those sixteen triples:
//
//   R/l = 20.418 / w + 1.728                [ohm/mm, w in um]   (max err 0.13 %)
//   L/l = 1.0806 - 0.12312 * ln(w)          [nH/mm]             (max err 1.3 %)
//   C/l = 131.53 + 56.249 w - 0.6039 w^2    [fF/mm]             (max err 2.4 %)
//
// Benches that reproduce a specific printed case use the exact printed values
// via paper_cases(); the fitted model feeds the Fig-7 sweep, which needs
// plausible interpolation across the full (length, width) plane.
#ifndef RLCEFF_TECH_WIRE_H
#define RLCEFF_TECH_WIRE_H

#include <optional>
#include <span>
#include <vector>

#include "net/net.h"

namespace rlceff::tech {

struct WireGeometry {
  double length = 0.0;  // [m]
  double width = 0.0;   // [m]
};

struct WireParasitics {
  double resistance = 0.0;   // total series R [ohm]
  double inductance = 0.0;   // total series L [H]
  double capacitance = 0.0;  // total shunt C [F]

  // Characteristic impedance Z0 = sqrt(L/C) of the lossless equivalent.
  double z0() const;
  // Time of flight tf = sqrt(L*C).
  double time_of_flight() const;
};

class WireModel {
public:
  // Per-unit-length values for a given width [F/m, H/m, ohm/m].
  double resistance_per_meter(double width) const;
  double inductance_per_meter(double width) const;
  double capacitance_per_meter(double width) const;

  WireParasitics extract(const WireGeometry& geometry) const;
};

// One printed experimental case from the paper.
struct PaperWireCase {
  double length_mm;
  double width_um;
  WireParasitics parasitics;  // the exact printed values
};

// The sixteen (length, width, R, L, C) triples printed in the paper.
std::span<const PaperWireCase> paper_wire_cases();

// Looks up a printed case by geometry (0.05 mm / 0.05 um tolerance).
std::optional<WireParasitics> find_paper_wire_case(double length_mm, double width_um);

// The canonical "uniform line + far-end receiver" interconnect as a net::Net
// (the IR every layer consumes; see net/net.h).
net::Net line_net(const WireParasitics& wire, double c_load_far);

// A multi-section route as a net::Net: one uniform distributed section per
// geometry entry, near to far (e.g. a width-tapered global wire), terminated
// by a receiver load.
net::Net route_net(const WireModel& model, std::span<const WireGeometry> route,
                   double c_load_far);

}  // namespace rlceff::tech

#endif  // RLCEFF_TECH_WIRE_H
