#include "testkit/faults.h"

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "testkit/rng.h"

namespace rlceff::testkit {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::none: return "none";
    case FaultKind::forced_nonconv: return "forced_nonconv";
    case FaultKind::instant_deadline: return "instant_deadline";
    case FaultKind::slowdown: return "slowdown";
    case FaultKind::cancelled: return "cancelled";
    case FaultKind::step_budget: return "step_budget";
    case FaultKind::sparse_step_budget: return "sparse_step_budget";
    case FaultKind::worker_throw: return "worker_throw";
    case FaultKind::degraded_fallback: return "degraded_fallback";
  }
  return "none";
}

SlotFault FaultPlan::at(std::size_t slot) const {
  Rng rng(mix_seed(seed_, 0xFA17, slot));
  SlotFault fault;
  if (!rng.chance(fault_fraction_)) return fault;
  constexpr FaultKind kMenu[] = {
      FaultKind::forced_nonconv, FaultKind::instant_deadline,
      FaultKind::slowdown,       FaultKind::cancelled,
      FaultKind::step_budget,    FaultKind::sparse_step_budget,
      FaultKind::worker_throw,   FaultKind::degraded_fallback,
  };
  fault.kind = rng.pick(kMenu);
  if (fault.kind == FaultKind::slowdown) {
    // Deadline far above the per-chunk checkpoint spacing (so a cooperative
    // exit is guaranteed by the first post-deadline checkpoint) yet far
    // below the failsafe sleep, so a broken checkpoint is caught by the
    // promptness bound instead of hanging the harness.
    fault.deadline_s = 4e-3;
    fault.chunk_s = 0.5e-3;
    fault.max_sleep_s = 0.25;
  }
  return fault;
}

SlotFault FaultPlan::apply(std::size_t slot, api::Request& request) const {
  const SlotFault fault = at(slot);
  switch (fault.kind) {
    case FaultKind::none:
      break;
    case FaultKind::forced_nonconv:
      // A zero iteration ceiling means the fixed point returns its initial
      // guess unconverged for *every* net — deterministic, unlike a small
      // positive cap that easy instances could still satisfy.  Pin the flow
      // to the plain one-ramp path: the downstream two-ramp/tail machinery
      // evaluated at the bogus unconverged iterate can raise its own
      // (legitimate) model_error first, which is not the surface under test.
      request.model.iteration.max_iter = 0;
      request.model.selection = core::ModelSelection::force_one_ramp;
      request.model.shielding_tail = false;
      request.require_convergence = true;
      request.degrade = api::DegradePolicy{};
      break;
    case FaultKind::instant_deadline:
      // Below any clock granularity: the very first checkpoint (at slot
      // entry, before any modeling work) observes the deadline as expired.
      request.budget.wall_limit_s = 1e-12;
      request.degrade = api::DegradePolicy{};
      break;
    case FaultKind::slowdown:
      request.budget.wall_limit_s = fault.deadline_s;
      request.degrade = api::DegradePolicy{};
      break;
    case FaultKind::cancelled: {
      // Cancelled before the slot starts — and with degradation *enabled*,
      // because the contract under test is that cancellation never buys a
      // degraded answer.
      util::CancelToken token = util::CancelToken::source();
      token.request_cancel();
      request.budget.cancel = token;
      request.degrade.enabled = true;
      break;
    }
    case FaultKind::step_budget:
      // The step budget only meters transient simulation, so force the
      // reference path; any real deck runs well past this ceiling.
      request.reference = true;
      request.budget.max_transient_steps = 40;
      request.degrade = api::DegradePolicy{};
      break;
    case FaultKind::sparse_step_budget:
      // Same exhausted budget, but through the sparse backend: the budget
      // checkpoints inside SparseLu::factor/solve_into (not just the step
      // loop) must keep exhaustion prompt and structured on this path too.
      request.reference = true;
      request.solver = sim::SolverKind::sparse;
      request.budget.max_transient_steps = 40;
      request.degrade = api::DegradePolicy{};
      break;
    case FaultKind::worker_throw:
      request.degrade = api::DegradePolicy{};
      break;
    case FaultKind::degraded_fallback:
      request.budget.wall_limit_s = 1e-12;
      request.degrade.enabled = true;
      break;
  }
  return fault;
}

std::function<void(std::size_t, util::ExecTracker&)> FaultPlan::hook() const {
  const FaultPlan plan = *this;
  return [plan](std::size_t slot, util::ExecTracker& budget) {
    const SlotFault fault = plan.at(slot);
    switch (fault.kind) {
      case FaultKind::worker_throw:
        throw std::runtime_error("injected worker fault (slot " +
                                 std::to_string(slot) + ")");
      case FaultKind::slowdown: {
        // A stalling worker that still checkpoints: the tracker must eject
        // it by the first chunk boundary past the deadline.  The loop bound
        // is a failsafe, not the exit path.
        const int chunks =
            static_cast<int>(fault.max_sleep_s / fault.chunk_s + 0.5);
        for (int k = 0; k < chunks; ++k) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(fault.chunk_s));
          budget.check("injected slowdown");
        }
        break;
      }
      default:
        break;
    }
  };
}

FaultExpectation expectation(const SlotFault& fault) {
  FaultExpectation e;
  switch (fault.kind) {
    case FaultKind::none:
      break;
    case FaultKind::forced_nonconv:
      e.must_fail = true;
      e.code = api::ErrorCode::convergence_failure;
      break;
    case FaultKind::instant_deadline:
      e.must_fail = true;
      e.code = api::ErrorCode::deadline_exceeded;
      e.message_needle = "deadline";
      break;
    case FaultKind::slowdown:
      e.must_fail = true;
      e.code = api::ErrorCode::deadline_exceeded;
      e.message_needle = "deadline";
      // One checkpoint interval past the deadline, plus generous scheduler
      // slack — far below the failsafe sleep, so a non-cooperative stall is
      // a detected failure rather than a slow pass.
      e.max_elapsed_s = fault.deadline_s + fault.chunk_s + 0.15;
      break;
    case FaultKind::cancelled:
      e.must_fail = true;
      e.code = api::ErrorCode::deadline_exceeded;
      e.message_needle = "cancelled";
      break;
    case FaultKind::step_budget:
    case FaultKind::sparse_step_budget:
      e.must_fail = true;
      e.code = api::ErrorCode::resource_exhausted;
      e.message_needle = "step budget";
      break;
    case FaultKind::worker_throw:
      e.must_fail = true;
      e.code = api::ErrorCode::internal_error;
      e.message_needle = "injected worker fault";
      break;
    case FaultKind::degraded_fallback:
      e.expect_degraded = true;
      break;
  }
  return e;
}

}  // namespace rlceff::testkit
