// Deterministic per-slot fault injection for the chaos harness.
//
// This generalizes the simulator's single planted defect
// (sim::TransientOptions::debug_cached_stamp_skew) into a seeded menu of
// failure modes the hardened engine must survive: forced non-convergence,
// instant and creeping deadlines, pre-cancelled slots, exhausted step
// budgets, worker exceptions, and deadline-triggered degradation.  (The NaN
// stamp fault — sim::TransientOptions::debug_cached_stamp_nan, which must
// trip the simulator's singular/non-finite guard — is a batch-level
// simulator flag rather than a per-slot mutation, so it has its own oracle:
// check_nan_stamp_fault in testkit/oracles.h.)
//
// A FaultPlan is a pure function of (seed, slot): the same plan assigns the
// same fault to the same slot on every platform and at every thread count,
// so a chaos batch's verdict is replayable from its seed alone.  Each fault
// has two halves:
//
//   * apply()  mutates the slot's api::Request (budgets, cancellation,
//              iteration caps, degrade policy) before the batch runs;
//   * hook()   returns the api::BatchOptions::debug_slot_fault callback that
//              misbehaves *inside* the slot (sleeping past the deadline in
//              checkpointed chunks, throwing a foreign exception).
//
// expectation() states the contract each fault obliges the engine to meet —
// must-fail code, required message fragment, promptness bound, or a
// degraded-but-flagged success — which is what the chaos oracle checks.
#ifndef RLCEFF_TESTKIT_FAULTS_H
#define RLCEFF_TESTKIT_FAULTS_H

#include <cstddef>
#include <cstdint>
#include <functional>

#include "api/outcome.h"
#include "api/request.h"
#include "util/budget.h"

namespace rlceff::testkit {

enum class FaultKind {
  none,              // healthy slot: must be bitwise unaffected by neighbors
  forced_nonconv,    // Ceff iteration cap 0: a clean convergence_failure
  instant_deadline,  // wall limit below any clock granularity
  slowdown,          // hook sleeps far past a short deadline, in chunks that
                     // checkpoint the tracker: the slot must exit promptly
  cancelled,         // pre-fired CancelToken (degrade enabled: must not help)
  step_budget,       // reference run with a tiny transient step budget
  sparse_step_budget,// same exhausted step budget, forced onto the sparse
                     // solver: the checkpoints inside the sparse factor and
                     // solve loops must surface it just as cleanly
  worker_throw,      // hook throws a non-library exception inside the slot
  degraded_fallback, // instant deadline + degrade policy: flagged fallback
};

const char* to_string(FaultKind kind);

struct SlotFault {
  FaultKind kind = FaultKind::none;
  // slowdown timing: the armed wall limit, the hook's sleep quantum between
  // tracker checkpoints, and the failsafe total sleep (reached only if the
  // checkpoints stop working — long enough that the promptness bound trips).
  double deadline_s = 0.0;
  double chunk_s = 0.0;
  double max_sleep_s = 0.0;
};

// What a fault obliges the engine to produce for its slot.
struct FaultExpectation {
  bool must_fail = false;
  api::ErrorCode code = api::ErrorCode::internal_error;  // when must_fail
  const char* message_needle = "";  // required failure-message substring
  double max_elapsed_s = 0.0;       // > 0: promptness bound on the slot
  bool expect_degraded = false;     // success flagged degraded, with an
                                    // attempt trail led by deadline_exceeded
};

FaultExpectation expectation(const SlotFault& fault);

// The seeded fault assignment for one batch.  Cheap value type; copy it into
// the hook.
class FaultPlan {
public:
  explicit FaultPlan(std::uint64_t seed, double fault_fraction = 0.6)
      : seed_(seed), fault_fraction_(fault_fraction) {}

  // The fault assigned to `slot` — pure in (seed, slot).
  SlotFault at(std::size_t slot) const;

  // Applies the request-mutation half of the slot's fault and returns it.
  SlotFault apply(std::size_t slot, api::Request& request) const;

  // The in-slot half, shaped for api::BatchOptions::debug_slot_fault.
  std::function<void(std::size_t, util::ExecTracker&)> hook() const;

private:
  std::uint64_t seed_ = 0;
  double fault_fraction_ = 0.6;
};

}  // namespace rlceff::testkit

#endif  // RLCEFF_TESTKIT_FAULTS_H
