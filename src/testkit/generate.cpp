#include "testkit/generate.h"

#include <algorithm>
#include <cstdio>

#include "core/coupled_experiment.h"
#include "tech/wire.h"
#include "util/units.h"

namespace rlceff::testkit {

namespace {

using namespace rlceff::units;

// Drawing driver sizes from a fixed menu keeps the number of distinct cell
// characterizations bounded (six tables serve the whole sweep).
constexpr double kCellSizes[] = {25.0, 50.0, 75.0, 100.0, 150.0, 200.0};

// One distributed span extracted from a random (length, width) geometry —
// the realistic RLC range of the paper's plane.
net::Section random_span(Rng& rng, double length_lo_mm, double length_hi_mm) {
  const tech::WireModel wires;
  const double length = rng.uniform(length_lo_mm, length_hi_mm) * mm;
  const double width = rng.uniform(0.8, 3.2) * um;
  const tech::WireParasitics p = wires.extract({length, width});
  return {p.resistance, p.inductance, p.capacitance, net::SectionKind::distributed};
}

double random_load(Rng& rng) { return rng.log_uniform(5 * ff, 500 * ff); }

net::Branch random_tree_branch(Rng& rng, std::size_t depth, std::size_t fanout,
                               bool lumped, bool is_root) {
  net::Branch branch;
  if (lumped) {
    // Tree-flow branches: one lumped RLC segment each (what Net::from_tree
    // produces from a moments::RlcBranch).
    branch.sections.push_back({rng.log_uniform(5.0, 200.0),
                               rng.log_uniform(0.05 * nh, 2 * nh),
                               rng.log_uniform(5 * ff, 200 * ff),
                               net::SectionKind::lumped});
  } else {
    branch.sections.push_back(random_span(rng, is_root ? 1.0 : 0.3, is_root ? 4.0 : 1.2));
  }
  if (depth == 0) {
    // Leaf receivers stay small so even wide trees keep the total load
    // within the characterization grid's envelope.
    branch.c_load = rng.log_uniform(5 * ff, 100 * ff);
    return branch;
  }
  branch.children.reserve(fanout);
  for (std::size_t k = 0; k < fanout; ++k) {
    branch.children.push_back(random_tree_branch(rng, depth - 1, fanout, lumped, false));
  }
  return branch;
}

}  // namespace

NetRecipe random_net_recipe(Rng& rng) {
  NetRecipe recipe;
  switch (rng.uniform_index(3)) {
    case 0:
      recipe.topology = Topology::uniform_line;
      break;
    case 1:
      recipe.topology = Topology::multi_section;
      recipe.sections = static_cast<std::size_t>(rng.uniform_int(2, 5));
      break;
    default:
      // Depth and fanout bound each other so the largest tree stays at
      // seven branches — big enough to exercise branching, small enough
      // that the sim-backed oracles stay fast.
      recipe.topology = Topology::tree;
      recipe.depth = static_cast<std::size_t>(rng.uniform_int(1, 2));
      recipe.fanout =
          recipe.depth == 2 ? 2 : static_cast<std::size_t>(rng.uniform_int(2, 3));
      recipe.lumped = rng.chance(0.35);
      break;
  }
  recipe.seed = rng.next_u64();
  return recipe;
}

net::Net instantiate(const NetRecipe& recipe) {
  Rng rng(recipe.seed);
  switch (recipe.topology) {
    case Topology::uniform_line: {
      const net::Section s = random_span(rng, 1.0, 10.0);
      return net::Net::uniform_line(s.resistance, s.inductance, s.capacitance,
                                    random_load(rng));
    }
    case Topology::multi_section: {
      // A width-tapered route: total length split across the sections, each
      // with its own width draw.
      std::vector<net::Section> sections;
      const std::size_t n = std::max<std::size_t>(1, recipe.sections);
      sections.reserve(n);
      const double total_mm = rng.uniform(2.0, 8.0);
      for (std::size_t k = 0; k < n; ++k) {
        const double lo = 0.5 * total_mm / static_cast<double>(n);
        const double hi = 1.5 * total_mm / static_cast<double>(n);
        sections.push_back(random_span(rng, lo, hi));
      }
      return net::Net::multi_section(std::move(sections), random_load(rng));
    }
    case Topology::tree:
      break;
  }
  return net::Net(random_tree_branch(rng, recipe.depth,
                                     std::max<std::size_t>(1, recipe.fanout),
                                     recipe.lumped, true));
}

GroupRecipe random_group_recipe(Rng& rng) {
  GroupRecipe recipe;
  const std::size_t n_nets = static_cast<std::size_t>(rng.uniform_int(2, 4));
  recipe.members.reserve(n_nets);
  for (std::size_t k = 0; k < n_nets; ++k) {
    NetRecipe member;
    // Coupling attaches to distributed spans, so members are routed nets.
    if (rng.chance(0.35)) {
      member.topology = Topology::multi_section;
      member.sections = static_cast<std::size_t>(rng.uniform_int(2, 3));
    }
    member.seed = rng.next_u64();
    recipe.members.push_back(member);
  }
  recipe.coupling_caps = static_cast<std::size_t>(rng.uniform_int(1, 3));
  recipe.mutuals = static_cast<std::size_t>(rng.uniform_int(0, 2));
  recipe.seed = rng.next_u64();
  return recipe;
}

net::CoupledGroup instantiate(const GroupRecipe& recipe) {
  ensure(recipe.members.size() >= 2, "testkit: a coupled group needs >= 2 nets");
  net::CoupledGroup group;
  for (std::size_t k = 0; k < recipe.members.size(); ++k) {
    group.add_net(instantiate(recipe.members[k]), "n" + std::to_string(k));
  }

  Rng rng(recipe.seed);
  auto random_ref = [&](std::size_t excluded_net) {
    net::SectionRef ref;
    do {
      ref.net = rng.uniform_index(group.size());
    } while (ref.net == excluded_net);
    ref.section = rng.uniform_index(group.section_count(ref.net));
    return ref;
  };
  auto section_capacitance = [&](const net::SectionRef& ref) {
    // Walk the depth-first section order the SectionRef addresses.
    struct Walk {
      static const net::Section* find(const net::Branch& b, std::size_t& cursor,
                                      std::size_t target) {
        if (target < cursor + b.sections.size()) return &b.sections[target - cursor];
        cursor += b.sections.size();
        for (const net::Branch& child : b.children) {
          if (const net::Section* s = find(child, cursor, target)) return s;
        }
        return nullptr;
      }
    };
    std::size_t cursor = 0;
    const net::Section* s = Walk::find(group.net_at(ref.net).root(), cursor, ref.section);
    ensure(s != nullptr, "testkit: section ref out of range");
    return s->capacitance;
  };

  auto couple_pair = [&](const net::SectionRef& a, const net::SectionRef& b) {
    const double cc =
        rng.uniform(0.05, 0.4) * std::min(section_capacitance(a), section_capacitance(b));
    if (cc > 0.0) group.couple_capacitance(a, b, cc);
  };
  // Backbone chain: every net is coupled to its neighbor, so the group is
  // connected (what a routed bus looks like, and what keeps the CLI's
  // union-find replay grouping identical to the generated group).
  for (std::size_t k = 1; k < group.size(); ++k) {
    net::SectionRef a{k - 1, rng.uniform_index(group.section_count(k - 1))};
    net::SectionRef b{k, rng.uniform_index(group.section_count(k))};
    couple_pair(a, b);
  }
  // Extra random couplings on top of the chain.
  for (std::size_t k = 0; k < recipe.coupling_caps; ++k) {
    const net::SectionRef a = random_ref(group.size());
    couple_pair(a, random_ref(a.net));
  }

  // Mutual couplings must keep every section pair's accumulated coefficient
  // passive; the generator tracks sums instead of relying on rejection.
  std::vector<std::pair<net::SectionRef, net::SectionRef>> pairs;
  std::vector<double> sums;
  for (std::size_t k = 0; k < recipe.mutuals; ++k) {
    const net::SectionRef a = random_ref(group.size());
    const net::SectionRef b = random_ref(a.net);
    const double kk = rng.uniform(0.05, 0.45);
    double seen = 0.0;
    std::size_t slot = pairs.size();
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const auto& [pa, pb] = pairs[p];
      const bool same = (pa.net == a.net && pa.section == a.section && pb.net == b.net &&
                         pb.section == b.section) ||
                        (pa.net == b.net && pa.section == b.section && pb.net == a.net &&
                         pb.section == a.section);
      if (same) {
        seen = sums[p];
        slot = p;
        break;
      }
    }
    if (seen + kk >= 0.9) continue;  // keep well clear of the passivity bound
    group.couple_inductance(a, b, kk);
    if (slot == pairs.size()) {
      pairs.emplace_back(a, b);
      sums.push_back(kk);
    } else {
      sums[slot] += kk;
    }
  }
  return group;
}

api::Request random_request(Rng& rng, double group_fraction) {
  api::Request request;
  request.cell_size = rng.pick(kCellSizes);
  request.input_slew = rng.uniform(25 * ps, 300 * ps);
  if (rng.chance(group_fraction)) {
    GroupRecipe recipe = random_group_recipe(rng);
    request.label = "pg" + seed_hex(recipe.seed);
    request.group = instantiate(recipe);
    request.victim = rng.uniform_index(request.group.size());
    for (std::size_t k = 0; k < request.group.size(); ++k) {
      if (k == request.victim || rng.chance(0.3)) continue;  // leave some quiet
      api::Aggressor aggressor;
      aggressor.net = k;
      aggressor.cell_size = rng.pick(kCellSizes);
      aggressor.input_slew = rng.uniform(25 * ps, 300 * ps);
      const core::AggressorSwitching modes[] = {core::AggressorSwitching::same_direction,
                                                core::AggressorSwitching::quiet,
                                                core::AggressorSwitching::opposite};
      aggressor.switching = modes[rng.uniform_index(3)];
      request.aggressors.push_back(aggressor);
    }
  } else {
    NetRecipe recipe = random_net_recipe(rng);
    request.label = "pn" + seed_hex(recipe.seed);
    request.net = instantiate(recipe);
  }
  return request;
}

std::vector<NetRecipe> shrink_candidates(const NetRecipe& recipe) {
  std::vector<NetRecipe> out;
  auto with = [&](auto&& edit) {
    NetRecipe smaller = recipe;
    edit(smaller);
    out.push_back(smaller);
  };
  if (recipe.topology != Topology::uniform_line) {
    // Most aggressive first: collapse the whole topology to one span.
    with([](NetRecipe& r) {
      r.topology = Topology::uniform_line;
      r.sections = 1;
      r.depth = 0;
    });
  }
  if (recipe.topology == Topology::multi_section && recipe.sections > 1) {
    with([](NetRecipe& r) { r.sections /= 2; });
  }
  if (recipe.topology == Topology::tree && recipe.depth > 1) {
    with([](NetRecipe& r) { r.depth /= 2; });
  }
  if (recipe.topology == Topology::tree && recipe.fanout > 1) {
    with([](NetRecipe& r) { r.fanout /= 2; });
  }
  return out;
}

std::vector<GroupRecipe> shrink_candidates(const GroupRecipe& recipe) {
  std::vector<GroupRecipe> out;
  auto with = [&](auto&& edit) {
    GroupRecipe smaller = recipe;
    edit(smaller);
    out.push_back(smaller);
  };
  if (recipe.members.size() > 2) {
    with([](GroupRecipe& r) { r.members.pop_back(); });
  }
  if (recipe.coupling_caps > 1) {
    with([](GroupRecipe& r) { r.coupling_caps /= 2; });
  }
  if (recipe.mutuals > 0) {
    with([](GroupRecipe& r) { r.mutuals = 0; });
  }
  for (std::size_t k = 0; k < recipe.members.size(); ++k) {
    for (const NetRecipe& smaller : shrink_candidates(recipe.members[k])) {
      with([&](GroupRecipe& r) { r.members[k] = smaller; });
      break;  // one member shrink per knob keeps the candidate list short
    }
  }
  return out;
}

std::string describe(const NetRecipe& recipe) {
  std::string out = "net{seed=" + seed_hex(recipe.seed);
  switch (recipe.topology) {
    case Topology::uniform_line:
      out += ", uniform_line";
      break;
    case Topology::multi_section:
      out += ", multi_section, sections=" + std::to_string(recipe.sections);
      break;
    case Topology::tree:
      out += ", tree, depth=" + std::to_string(recipe.depth) +
             ", fanout=" + std::to_string(recipe.fanout);
      if (recipe.lumped) out += ", lumped";
      break;
  }
  return out + "}";
}

std::string describe(const GroupRecipe& recipe) {
  std::string out = "group{seed=" + seed_hex(recipe.seed) +
                    ", coupling_caps=" + std::to_string(recipe.coupling_caps) +
                    ", mutuals=" + std::to_string(recipe.mutuals) + ", members=[";
  for (std::size_t k = 0; k < recipe.members.size(); ++k) {
    if (k != 0) out += ", ";
    out += describe(recipe.members[k]);
  }
  return out + "]}";
}

}  // namespace rlceff::testkit
