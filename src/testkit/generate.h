// Randomized-instance generators for the property harness.
//
// Every generated instance is described by a *recipe*: the seed plus the
// explicit size knobs of the topology (section counts, tree shape, group
// width).  instantiate() is a pure function of the recipe, so a failure
// reduces to one line of text, and shrinking is recipe surgery: bisect the
// size knobs (shrink_candidates), re-instantiate with the same seed, and
// keep the smallest recipe that still fails.
//
// Parameter ranges follow the paper's experimental envelope (and the wire
// model's fitted plane): lengths 1-10 mm, widths 0.8-3.2 um, receiver loads
// 5-500 fF, drivers 25-200X, input slews 25-300 ps.  Coupling strengths stay
// within the regime the Miller-decoupled model is specified for (coupling
// cap up to ~40 % of the victim's ground capacitance, k up to 0.5).
#ifndef RLCEFF_TESTKIT_GENERATE_H
#define RLCEFF_TESTKIT_GENERATE_H

#include <cstdint>
#include <string>
#include <vector>

#include "api/request.h"
#include "net/coupled.h"
#include "net/net.h"
#include "testkit/rng.h"

namespace rlceff::testkit {

enum class Topology {
  uniform_line,   // one distributed section + receiver load
  multi_section,  // width-tapered route of `sections` distributed spans
  tree,           // branched net, distributed or lumped sections
};

struct NetRecipe {
  std::uint64_t seed = 0;
  Topology topology = Topology::uniform_line;
  std::size_t sections = 1;  // route length (multi_section)
  std::size_t depth = 0;     // branching levels below the trunk (tree)
  std::size_t fanout = 2;    // children per junction (tree)
  bool lumped = false;       // tree sections are lumped RLC (tree flow)
};

struct GroupRecipe {
  std::uint64_t seed = 0;
  std::vector<NetRecipe> members;  // >= 2 nets
  std::size_t coupling_caps = 1;
  std::size_t mutuals = 0;
};

// Draws a recipe whose knobs cover the topology space (sizes kept small
// enough that the sim-backed oracles stay fast).
NetRecipe random_net_recipe(Rng& rng);
GroupRecipe random_group_recipe(Rng& rng);

// Builds the instance a recipe describes.  Deterministic: same recipe (seed
// included) -> bitwise-identical net on every platform and thread count.
net::Net instantiate(const NetRecipe& recipe);
net::CoupledGroup instantiate(const GroupRecipe& recipe);

// Wraps a random net (or coupled group, with probability group_fraction) in
// a model-only api::Request.  The label encodes the seed, so a failed batch
// slot names its own repro.
api::Request random_request(Rng& rng, double group_fraction = 0.25);

// Smaller variants of a failing recipe, most aggressive first: bisected
// section counts, shallower trees, narrower groups.  Empty when the recipe
// is already minimal.
std::vector<NetRecipe> shrink_candidates(const NetRecipe& recipe);
std::vector<GroupRecipe> shrink_candidates(const GroupRecipe& recipe);

// One-line recipe descriptions for failure reports.
std::string describe(const NetRecipe& recipe);
std::string describe(const GroupRecipe& recipe);

}  // namespace rlceff::testkit

#endif  // RLCEFF_TESTKIT_GENERATE_H
