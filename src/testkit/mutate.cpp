#include "testkit/mutate.h"

#include <limits>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::testkit {

namespace {

using namespace rlceff::units;

// Mutable walk of a branch tree: every branch (with its path) and every
// section (with its owning branch), in the same depth-first order the
// validation walk visits them.
struct BranchSite {
  net::Branch* branch = nullptr;
  std::string path;
};

struct SectionSite {
  net::Branch* branch = nullptr;
  std::size_t index = 0;
  std::string path;  // the owning branch's path
};

void collect_sites(net::Branch& branch, const std::string& path,
                   std::vector<BranchSite>& branches,
                   std::vector<SectionSite>& sections) {
  branches.push_back({&branch, path});
  for (std::size_t k = 0; k < branch.sections.size(); ++k) {
    sections.push_back({&branch, k, path});
  }
  for (std::size_t k = 0; k < branch.children.size(); ++k) {
    collect_sites(branch.children[k], path + "/" + std::to_string(k), branches,
                  sections);
  }
}

std::string section_site(const SectionSite& s) {
  return "section " + std::to_string(s.index) + " of branch '" + s.path + "'";
}

// One diagnostics-or-empty line for failure messages.
std::string dump(const lint::Report& report) {
  if (report.diagnostics.empty()) return "(no findings)";
  std::string out;
  for (const lint::Diagnostic& d : report.diagnostics) {
    if (!out.empty()) out += "; ";
    out += lint::format(d);
  }
  return out;
}

}  // namespace

const char* to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::drop_branch: return "drop_branch";
    case MutationKind::negate_capacitance: return "negate_capacitance";
    case MutationKind::negate_inductance: return "negate_inductance";
    case MutationKind::poison_value: return "poison_value";
    case MutationKind::negate_load: return "negate_load";
    case MutationKind::zero_section: return "zero_section";
    case MutationKind::duplicate_probe: return "duplicate_probe";
    case MutationKind::strip_capacitance: return "strip_capacitance";
  }
  return "unknown";
}

std::span<const MutationKind> all_mutations() {
  static constexpr MutationKind kKinds[] = {
      MutationKind::drop_branch,        MutationKind::negate_capacitance,
      MutationKind::negate_inductance,  MutationKind::poison_value,
      MutationKind::negate_load,        MutationKind::zero_section,
      MutationKind::duplicate_probe,    MutationKind::strip_capacitance,
  };
  return kKinds;
}

MutationResult mutate_net(const net::Net& net, MutationKind kind, Rng& rng) {
  MutationResult result;
  result.tree = net.root();  // deep copy; the original net stays valid

  std::vector<BranchSite> branches;
  std::vector<SectionSite> sections;
  collect_sites(result.tree, "root", branches, sections);
  ensure(!sections.empty(), "testkit: mutate_net needs a net with sections");

  auto pick_section = [&]() -> SectionSite& {
    return sections[rng.uniform_index(sections.size())];
  };

  switch (kind) {
    case MutationKind::drop_branch: {
      std::vector<BranchSite*> leaves;
      for (BranchSite& site : branches) {
        if (site.branch->children.empty()) leaves.push_back(&site);
      }
      BranchSite& leaf = *leaves[rng.uniform_index(leaves.size())];
      leaf.branch->sections.clear();
      leaf.branch->c_load = 0.0;
      leaf.branch->probe.clear();
      // Emptying the only branch empties the whole net.
      const bool whole_net = leaf.branch == &result.tree;
      result.expected =
          whole_net ? lint::Code::empty_net : lint::Code::empty_branch;
      result.site = whole_net ? "the whole net" : "branch '" + leaf.path + "'";
      break;
    }
    case MutationKind::negate_capacitance: {
      SectionSite& s = pick_section();
      net::Section& section = s.branch->sections[s.index];
      section.capacitance = -section.capacitance;
      result.expected = lint::Code::nonpositive_capacitance;
      result.site = section_site(s);
      break;
    }
    case MutationKind::negate_inductance: {
      SectionSite& s = pick_section();
      net::Section& section = s.branch->sections[s.index];
      section.inductance = -section.inductance;
      result.expected = lint::Code::negative_inductance;
      result.site = section_site(s);
      break;
    }
    case MutationKind::poison_value: {
      SectionSite& s = pick_section();
      s.branch->sections[s.index].resistance =
          std::numeric_limits<double>::quiet_NaN();
      result.expected = lint::Code::nonfinite_value;
      result.site = section_site(s);
      break;
    }
    case MutationKind::negate_load: {
      std::vector<BranchSite*> loaded;
      for (BranchSite& site : branches) {
        if (site.branch->c_load > 0.0) loaded.push_back(&site);
      }
      if (loaded.empty()) {
        result.tree.c_load = -20 * ff;
        result.site = "branch 'root'";
      } else {
        BranchSite& site = *loaded[rng.uniform_index(loaded.size())];
        site.branch->c_load = -site.branch->c_load;
        result.site = "branch '" + site.path + "'";
      }
      result.expected = lint::Code::negative_load;
      break;
    }
    case MutationKind::zero_section: {
      SectionSite& s = pick_section();
      s.branch->sections.push_back({0.0, 0.0, 0.0, net::SectionKind::lumped});
      result.expected = lint::Code::zero_section;
      result.site = "appended to branch '" + s.path + "'";
      break;
    }
    case MutationKind::duplicate_probe: {
      result.tree.probe = "dup";
      if (result.tree.children.empty()) {
        // Single-branch net: grow a (legal) probed stub to collide with.
        net::Branch stub;
        stub.sections.push_back({1.0, 0.0, 0.0, net::SectionKind::lumped});
        stub.probe = "dup";
        result.tree.children.push_back(std::move(stub));
        result.site = "branch 'root' and a grown 'root/0' stub";
      } else {
        std::size_t index = 1 + rng.uniform_index(branches.size() - 1);
        branches[index].branch->probe = "dup";
        result.site = "branch 'root' and branch '" + branches[index].path + "'";
      }
      result.expected = lint::Code::duplicate_probe;
      break;
    }
    case MutationKind::strip_capacitance: {
      for (SectionSite& s : sections) {
        net::Section& section = s.branch->sections[s.index];
        // Lumped spans may carry zero C; distributed ones may not, so the
        // stripped section switches kind to keep the planted defect unique.
        section.kind = net::SectionKind::lumped;
        section.capacitance = 0.0;
      }
      for (BranchSite& site : branches) site.branch->c_load = 0.0;
      result.expected = lint::Code::no_capacitance;
      result.site = "every section and load";
      break;
    }
  }
  return result;
}

void check_lint_clean(const net::Net& net) {
  const lint::Report report = lint::lint_net(net);
  if (report.count(lint::Severity::error) != 0) {
    throw Error("lint_clean: valid generated net carries error diagnostics: " +
                dump(report));
  }
}

void check_lint_clean(const net::CoupledGroup& group) {
  const lint::Report report = lint::lint_group(group);
  if (report.count(lint::Severity::error) != 0) {
    throw Error("lint_clean: valid generated group carries error diagnostics: " +
                dump(report));
  }
}

void check_lint_mutation(const net::Net& net, Rng rng) {
  for (MutationKind kind : all_mutations()) {
    const MutationResult m = mutate_net(net, kind, rng);
    const std::string label =
        std::string("mutation ") + to_string(kind) + " at " + m.site;

    // Lint-report face: the collected findings must include the expected
    // code at error severity.
    const lint::Report report = lint::lint_branch(m.tree);
    const lint::Diagnostic* found = report.find(m.expected);
    if (found == nullptr) {
      throw Error(label + ": lint missed expected code " +
                  lint::to_string(m.expected) + "; findings: " + dump(report));
    }
    if (found->severity != lint::Severity::error) {
      throw Error(label + ": expected code " + lint::to_string(m.expected) +
                  " reported below error severity");
    }

    // Throw-on-construct face: the validating constructor must refuse the
    // same tree with the same code.
    try {
      net::Net probe{net::Branch(m.tree)};
      throw Error(label + ": net::Net accepted the mutated tree");
    } catch (const lint::DiagnosticError& e) {
      if (e.code() != m.expected) {
        throw Error(label + ": construction threw " +
                    lint::to_string(e.code()) + ", lint expects " +
                    lint::to_string(m.expected) + " (" + e.what() + ")");
      }
    }
  }
}

void check_lint_mutation_group(const net::CoupledGroup& group, Rng rng) {
  ensure(group.size() >= 2, "testkit: group mutation needs >= 2 nets");
  const net::SectionRef a{0, rng.uniform_index(group.section_count(0))};
  const net::SectionRef b{1, rng.uniform_index(group.section_count(1))};

  // Negative coupling capacitance through the validating API.
  {
    net::CoupledGroup mutated = group;
    try {
      mutated.couple_capacitance(a, b, -10 * ff);
      throw Error("group mutation: couple_capacitance accepted a negative cap");
    } catch (const lint::DiagnosticError& e) {
      if (e.code() != lint::Code::nonpositive_capacitance) {
        throw Error(std::string("group mutation: negative coupling cap threw ") +
                    lint::to_string(e.code()) + " (" + e.what() + ")");
      }
    }
  }

  // Accumulated k >= 1: two 0.6 couplings on one pair cross the passivity
  // bound regardless of what the generator already placed there.
  {
    net::CoupledGroup mutated = group;
    try {
      mutated.couple_inductance(a, b, 0.6);
      mutated.couple_inductance(a, b, 0.6);
      throw Error("group mutation: accumulated k >= 1 was accepted");
    } catch (const lint::DiagnosticError& e) {
      if (e.code() != lint::Code::mutual_overcoupled) {
        throw Error(std::string("group mutation: overcoupled pair threw ") +
                    lint::to_string(e.code()) + " (" + e.what() + ")");
      }
    }
  }

  // Near-limit (legal) coupling: top the pair's accumulated k up to 0.97 —
  // inside (0, 1), inside the default 0.05 warn margin.  lint_group must
  // warn with mutual_near_limit and still report the group clean (no
  // error-severity findings).
  {
    net::CoupledGroup mutated = group;
    double existing = 0.0;
    for (const net::MutualCoupling& m : mutated.mutual_couplings()) {
      const bool same = (m.a.net == a.net && m.a.section == a.section &&
                         m.b.net == b.net && m.b.section == b.section) ||
                        (m.a.net == b.net && m.a.section == b.section &&
                         m.b.net == a.net && m.b.section == a.section);
      if (same) existing += m.k;
    }
    mutated.couple_inductance(a, b, 0.97 - existing);
    const lint::Report report = lint::lint_group(mutated);
    if (!report.has(lint::Code::mutual_near_limit)) {
      throw Error("group mutation: near-limit k = 0.97 did not warn "
                  "mutual_near_limit; findings: " +
                  dump(report));
    }
    if (report.count(lint::Severity::error) != 0) {
      throw Error("group mutation: near-limit (legal) k raised error-severity "
                  "findings: " +
                  dump(report));
    }
  }
}

}  // namespace rlceff::testkit
