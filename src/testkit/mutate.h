// Seeded defect injection for the lint oracles.
//
// A mutation plants exactly one defect at a random site in a copy of a
// valid net's branch tree and names the lint::Code the static analyzer must
// report for it.  The oracles then prove both faces of the taxonomy on the
// same mutated tree:
//   * lint-report — lint::lint_branch collects the expected code (the tree
//     never reaches a constructor),
//   * throw-on-construct — net::Net's validating constructor refuses the
//     tree with a DiagnosticError carrying the same code.
// Group defects go through net::CoupledGroup's own validating couple_* API
// (coupling elements have no raw-tree back door), so those oracles check
// the throw face only.
//
// Every mutation is a pure function of (net, kind, rng state): replaying a
// seed replays the site choice, so a missed diagnostic reduces to one line.
#ifndef RLCEFF_TESTKIT_MUTATE_H
#define RLCEFF_TESTKIT_MUTATE_H

#include <span>
#include <string>

#include "lint/diagnostic.h"
#include "net/coupled.h"
#include "net/net.h"
#include "testkit/rng.h"

namespace rlceff::testkit {

// One defect kind per structural/physicality diagnostic the tree walk can
// report.  Kinds are chosen so each plants a single defect — the first
// error the construction-time walk meets is the one the mutation names.
enum class MutationKind {
  drop_branch,         // empty a random leaf -> empty_branch (empty_net when
                       // the root is the only branch)
  negate_capacitance,  // flip one section's C negative -> nonpositive_capacitance
  negate_inductance,   // flip one section's L negative -> negative_inductance
  poison_value,        // NaN one section's R -> nonfinite_value
  negate_load,         // flip one receiver load negative -> negative_load
  zero_section,        // append a lumped R=L=C=0 segment -> zero_section
  duplicate_probe,     // two branches claim one probe name -> duplicate_probe
  strip_capacitance,   // remove every C and load -> no_capacitance
};

const char* to_string(MutationKind kind);
// Every kind, in enum order (the mutation oracle sweeps all of them per seed).
std::span<const MutationKind> all_mutations();

struct MutationResult {
  net::Branch tree;    // the mutated copy (may be unconstructible — that is
                       // the point)
  lint::Code expected = lint::Code::invalid_input;  // what lint must report
  std::string site;    // human description of the planted location
};

// Applies `kind` at a site drawn from `rng` to a copy of net.root().
MutationResult mutate_net(const net::Net& net, MutationKind kind, Rng& rng);

// Lint oracles (throw rlceff::Error on violation, like testkit/oracles.h):

// A generator-valid net/group must carry zero error-severity findings under
// the full lint pass (deep conditioning + model families included; warn and
// info findings are expected and allowed).
void check_lint_clean(const net::Net& net);
void check_lint_clean(const net::CoupledGroup& group);

// For every MutationKind: mutate, require lint_branch to report the
// expected code at error severity, and require net::Net construction to
// refuse the same tree with a DiagnosticError carrying the same code.
void check_lint_mutation(const net::Net& net, Rng rng);

// Group defects through the validating API: a negative coupling cap must
// raise nonpositive_capacitance and an inductive coefficient that pushes a
// pair's accumulated k to >= 1 must raise mutual_overcoupled — both as
// DiagnosticError, both naming the section pair.  Also: a near-limit (but
// legal) accumulated k must surface as a mutual_near_limit warning in
// lint_group without failing clean().
void check_lint_mutation_group(const net::CoupledGroup& group, Rng rng);

}  // namespace rlceff::testkit

#endif  // RLCEFF_TESTKIT_MUTATE_H
