#include "testkit/oracles.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "circuit/builders.h"
#include "core/coupled_experiment.h"
#include "sim/scenario_block.h"
#include "testkit/faults.h"
#include "moments/admittance.h"
#include "sim/transient.h"
#include "tech/testbench.h"
#include "tier/envelope.h"
#include "util/units.h"

namespace rlceff::testkit {

namespace {

using namespace rlceff::units;

constexpr double kCells[] = {25.0, 50.0, 75.0, 100.0, 150.0, 200.0};

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void expect(bool cond, const std::string& message) {
  if (!cond) throw Error("oracle: " + message);
}

void expect_close(double a, double b, double rel_tol, const std::string& what) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  expect(std::abs(a - b) <= rel_tol * scale,
         what + ": " + fmt(a) + " vs " + fmt(b) + " (rel err " +
             fmt(std::abs(a - b) / scale) + " > " + fmt(rel_tol) + ")");
}

void expect_waveforms_equal(const wave::Waveform& a, const wave::Waveform& b,
                            double tol, const std::string& what) {
  expect(a.size() == b.size(), what + ": sample counts differ (" +
                                   std::to_string(a.size()) + " vs " +
                                   std::to_string(b.size()) + ")");
  for (std::size_t k = 0; k < a.size(); ++k) {
    expect(a.time(k) == b.time(k), what + ": sample times diverge at index " +
                                       std::to_string(k));
    const double dv = std::abs(a.value(k) - b.value(k));
    expect(dv <= tol, what + ": values diverge at t = " + fmt(a.time(k)) + " (|dv| = " +
                          fmt(dv) + " > " + fmt(tol) + ")");
  }
}

// Equivalence oracles do not need settled edges — any window exercises the
// engine — so the horizon stays short and independent of the (possibly slow)
// RC settling of the instance.
double short_horizon(const net::Net& net, double input_slew) {
  const net::NetMetrics m = net.metrics();
  return 20 * ps + input_slew + 6.0 * m.time_of_flight + 0.35 * ns;
}

tech::DeckOptions equivalence_deck(const OracleOptions& options, double t_stop) {
  tech::DeckOptions deck;
  deck.segments = options.segments;
  deck.dt = options.dt;
  deck.t_stop = t_stop;
  deck.sim.solver = options.solver;
  return deck;
}

}  // namespace

void check_net_invariants(const net::Net& net, const OracleOptions& options) {
  const double c_total = net.total_capacitance();
  expect(std::isfinite(c_total) && c_total > 0.0, "net has no capacitance");

  const std::size_t leaves = net.leaf_count();
  expect(leaves >= 1, "net has no leaves");

  const net::NetMetrics m = net.metrics();
  expect(m.time_of_flight > 0.0, "metrics: non-positive time of flight");
  expect(m.z0 > 0.0, "metrics: non-positive Z0");
  expect(m.path_resistance >= 0.0, "metrics: negative path resistance");
  expect(m.dominant_leaf < leaves, "metrics: dominant leaf index " +
                                       std::to_string(m.dominant_leaf) +
                                       " out of range (net has " +
                                       std::to_string(leaves) + " leaves)");
  expect_close(m.total_capacitance(), c_total, 1e-12,
               "metrics total capacitance vs branch sum");

  // m1 of the driving-point admittance equals the total capacitance for any
  // net with no DC path to ground — the moment layer's conservation law.
  const util::Series y = moments::net_admittance(net);
  expect(y.size() >= 2, "net_admittance: truncated below order 2");
  expect(std::abs(y[0]) <= 1e-9 * c_total, "net_admittance: nonzero DC admittance");
  expect_close(y[1], c_total, 1e-9, "net_admittance m1 vs total capacitance");

  // The compiled deck must carry exactly the net's capacitance and expose
  // one far node per leaf.
  ckt::Netlist nl;
  const ckt::NodeId out = nl.node("out");
  const ckt::NetDeckNodes nodes = ckt::append_net(nl, out, net, options.segments);
  expect(nodes.leaves.size() == leaves,
         "compiled deck leaf count " + std::to_string(nodes.leaves.size()) +
             " vs net leaf count " + std::to_string(leaves));
  expect_close(nl.total_capacitance(), c_total, 1e-9,
               "compiled deck capacitance vs net capacitance");
}

void check_cached_vs_naive(const net::Net& net, Rng rng, const OracleOptions& options) {
  const double input_slew = rng.uniform(25 * ps, 300 * ps);
  tech::DeckOptions cached = equivalence_deck(options, short_horizon(net, input_slew));
  cached.sim.assembly = sim::AssemblyMode::cached;
  cached.sim.debug_cached_stamp_skew = options.stamp_skew;
  tech::DeckOptions naive = cached;
  naive.sim.assembly = sim::AssemblyMode::naive;
  naive.sim.debug_cached_stamp_skew = 0.0;
  if (rng.chance(0.5)) {
    // Backward Euler exercises the other companion-model branch.
    cached.sim.integrator = naive.sim.integrator = sim::Integrator::backward_euler;
  }

  tech::NetSimResult fast, ref;
  if (rng.chance(0.5)) {
    // Nonlinear path: MOSFET driver, memcpy'd static image + restamping.
    const tech::Technology technology = tech::Technology::cmos180();
    const tech::Inverter cell{rng.pick(kCells)};
    fast = tech::simulate_driver_net(technology, cell, input_slew, net, cached);
    ref = tech::simulate_driver_net(technology, cell, input_slew, net, naive);
  } else {
    // Linear path: ideal source replay, factor-once fast path.
    const wave::Pwl source = wave::ramp(10 * ps, input_slew, 0.0, 1.8);
    fast = tech::simulate_source_net(source, net, cached);
    ref = tech::simulate_source_net(source, net, naive);
  }

  expect_waveforms_equal(fast.near_end, ref.near_end, 0.0, "cached vs naive near end");
  for (std::size_t k = 0; k < fast.leaves.size(); ++k) {
    expect_waveforms_equal(fast.leaves[k], ref.leaves[k], 0.0,
                           "cached vs naive leaf " + std::to_string(k));
  }
}

void check_cached_vs_naive(const net::CoupledGroup& group, Rng rng,
                           const OracleOptions& options) {
  const tech::Technology technology = tech::Technology::cmos180();
  double t_stop = 0.0;
  std::vector<tech::NetDrive> drives(group.size());
  for (std::size_t k = 0; k < group.size(); ++k) {
    drives[k].cell = tech::Inverter{rng.pick(kCells)};
    drives[k].input_slew = rng.uniform(25 * ps, 200 * ps);
    const tech::DriveEdge edges[] = {tech::DriveEdge::rise, tech::DriveEdge::fall,
                                     tech::DriveEdge::hold_low};
    drives[k].edge = edges[rng.uniform_index(3)];
    t_stop = std::max(t_stop, short_horizon(group.net_at(k), drives[k].input_slew));
  }
  // At least one edge must switch or the deck just sits at DC.
  drives[0].edge = tech::DriveEdge::rise;

  tech::DeckOptions cached = equivalence_deck(options, t_stop);
  cached.sim.assembly = sim::AssemblyMode::cached;
  cached.sim.debug_cached_stamp_skew = options.stamp_skew;
  tech::DeckOptions naive = cached;
  naive.sim.assembly = sim::AssemblyMode::naive;
  naive.sim.debug_cached_stamp_skew = 0.0;

  const tech::CoupledSimResult fast =
      tech::simulate_coupled_group(technology, drives, group, cached);
  const tech::CoupledSimResult ref =
      tech::simulate_coupled_group(technology, drives, group, naive);
  for (std::size_t k = 0; k < group.size(); ++k) {
    expect_waveforms_equal(fast.nets[k].near_end, ref.nets[k].near_end, 0.0,
                           "coupled cached vs naive near end of '" + group.label_at(k) +
                               "'");
    for (std::size_t j = 0; j < fast.nets[k].leaves.size(); ++j) {
      expect_waveforms_equal(fast.nets[k].leaves[j], ref.nets[k].leaves[j], 0.0,
                             "coupled cached vs naive leaf " + std::to_string(j) +
                                 " of '" + group.label_at(k) + "'");
    }
  }
}

void check_solver_equivalence(const net::Net& net, Rng rng,
                              const OracleOptions& options) {
  const double input_slew = rng.uniform(25 * ps, 300 * ps);
  const tech::DeckOptions deck =
      equivalence_deck(options, short_horizon(net, input_slew));
  const wave::Pwl source = wave::ramp(10 * ps, input_slew, 0.0, 1.8);

  auto run = [&](sim::SolverKind kind, sim::AssemblyMode assembly) {
    tech::DeckOptions d = deck;
    d.sim.solver = kind;
    d.sim.assembly = assembly;
    return tech::simulate_source_net(source, net, d);
  };

  // Dense partial-pivoting LU is the reference backend.
  const tech::NetSimResult dense = run(sim::SolverKind::dense, sim::AssemblyMode::cached);
  const tech::NetSimResult banded =
      run(sim::SolverKind::banded, sim::AssemblyMode::cached);
  const tech::NetSimResult sparse =
      run(sim::SolverKind::sparse, sim::AssemblyMode::cached);

  // Different factorizations (band pivoting, dense partial pivoting, sparse
  // Gilbert-Peierls with its own pivot order) agree to rounding, not bitwise;
  // 1e-10 V on a 1.8 V swing is far below any physical signal and far above
  // accumulated LU noise.
  auto against_dense = [&](const tech::NetSimResult& a, const std::string& which) {
    expect_waveforms_equal(a.near_end, dense.near_end, 1e-10,
                           which + " vs dense near end");
    for (std::size_t k = 0; k < a.leaves.size(); ++k) {
      expect_waveforms_equal(a.leaves[k], dense.leaves[k], 1e-10,
                             which + " vs dense leaf " + std::to_string(k));
    }
  };
  against_dense(banded, "banded");
  against_dense(sparse, "sparse");

  // The factor-once contract extends to the sparse image: cached assembly
  // (static image + memcpy restore) must reproduce naive per-step assembly
  // bitwise, exactly like the dense and banded paths.
  const tech::NetSimResult naive = run(sim::SolverKind::sparse, sim::AssemblyMode::naive);
  expect_waveforms_equal(sparse.near_end, naive.near_end, 0.0,
                         "sparse cached vs naive near end");
  for (std::size_t k = 0; k < sparse.leaves.size(); ++k) {
    expect_waveforms_equal(sparse.leaves[k], naive.leaves[k], 0.0,
                           "sparse cached vs naive leaf " + std::to_string(k));
  }
}

void check_banded_vs_dense(const net::Net& net, Rng rng, const OracleOptions& options) {
  check_solver_equivalence(net, rng, options);
}

void check_charge_conservation(const net::Net& net, Rng rng,
                               const OracleOptions& options) {
  const double v_final = 1.0;
  const double rs = rng.log_uniform(25.0, 300.0);
  const double tr = rng.uniform(20 * ps, 200 * ps);
  const double t_start = 10 * ps;
  const net::NetMetrics m = net.metrics();
  const double c_total = net.total_capacitance();
  const double t_stop =
      t_start + tr + 10.0 * (rs + m.path_resistance) * c_total + 14.0 * m.time_of_flight;

  const wave::Pwl source = wave::ramp(t_start, tr, 0.0, v_final);
  ckt::Netlist nl;
  const ckt::NodeId src = nl.node("src");
  const ckt::NodeId near = nl.node("near");
  nl.add_vsource(src, ckt::ground, source);
  nl.add_resistor(src, near, rs);
  const ckt::NetDeckNodes nodes = ckt::append_net(nl, near, net, options.segments);

  sim::TransientOptions sim_options;
  sim_options.t_stop = t_stop;
  sim_options.dt = options.dt;
  sim_options.solver = options.solver;
  std::vector<ckt::NodeId> probes;
  probes.push_back(near);
  for (ckt::NodeId leaf : nodes.leaves) {
    if (std::find(probes.begin(), probes.end(), leaf) == probes.end()) {
      probes.push_back(leaf);
    }
  }
  const sim::TransientResult result = sim::simulate(nl, sim_options, probes);

  // (a) Every probed node settles on the source rail.
  for (ckt::NodeId probe : probes) {
    const double v_end = result.at(probe).final_value();
    expect(std::abs(v_end - v_final) <= 5e-3 * v_final,
           "node did not settle: final value " + fmt(v_end) + " vs rail " +
               fmt(v_final) + " (t_stop " + fmt(t_stop) + " s)");
  }

  // (b) The charge delivered through the source resistor equals the charge
  // stored on the (purely capacitive) net: integral of (v_src - v_near)/Rs.
  const wave::Waveform& w = result.at(near);
  double charge = 0.0;
  for (std::size_t k = 1; k < w.size(); ++k) {
    const double i0 = (source.value_at(w.time(k - 1)) - w.value(k - 1)) / rs;
    const double i1 = (source.value_at(w.time(k)) - w.value(k)) / rs;
    charge += 0.5 * (i0 + i1) * (w.time(k) - w.time(k - 1));
  }
  expect_close(charge, c_total * v_final, 1e-2,
               "delivered charge vs C_total * V (charge conservation)");
}

void check_engine_outcome(api::Engine& engine, const api::Request& request,
                          const api::BatchOptions& options) {
  const api::Outcome<api::Response> strict = engine.model(request, options);

  if (!strict.ok()) {
    const api::ErrorInfo& e = strict.error();
    expect(e.code != api::ErrorCode::internal_error,
           "engine escaped with internal_error: " + e.message);
    expect(e.code != api::ErrorCode::invalid_request,
           "generator-valid request rejected as invalid_request: " + e.message);
    expect(e.scenario == request.label,
           "failure attributed to '" + e.scenario + "' instead of '" + request.label +
               "'");
  } else {
    const api::Response& r = strict.value();
    expect(r.model.ceff1.converged, "successful outcome with non-converged Ceff1");
    expect(r.model.kind == core::ModelKind::one_ramp || r.model.ceff2.converged,
           "successful two-ramp outcome with non-converged Ceff2");
    expect(std::isfinite(r.model_near.delay) && std::isfinite(r.model_near.slew),
           "non-finite modeled edge metrics");
    expect(r.model_near.slew > 0.0, "non-positive modeled slew");
    // For coupled requests the model runs on the Miller-decoupled net, whose
    // capacitance includes every attached coupling cap at its aggressor's
    // factor (up to 2x) — bound Ceff against *that* net, not the bare victim.
    double c_total = 0.0;
    if (request.coupled()) {
      std::vector<double> factors(request.group.size(), 1.0);
      for (const api::Aggressor& a : request.aggressors) {
        factors[a.net] = core::miller_factor(a.switching);
      }
      c_total = request.group.decoupled_net(request.victim, factors)
                    .total_capacitance();
    } else {
      c_total = request.net.total_capacitance();
    }
    expect(r.model.ceff1.ceff > 0.0 && r.model.ceff1.ceff <= 1.2 * c_total,
           "Ceff1 " + fmt(r.model.ceff1.ceff) + " outside (0, 1.2 * C_total = " +
               fmt(1.2 * c_total) + "]");
  }

  // require_convergence only *gates*: with the gate off the same request must
  // succeed, and when the strict run succeeded the results must be bitwise
  // identical (the flag must never change the physics).
  api::Request lenient = request;
  lenient.require_convergence = false;
  const api::Outcome<api::Response> loose = engine.model(lenient, options);
  if (strict.ok()) {
    expect(loose.ok(), "require_convergence=false failed where strict succeeded: " +
                           (loose.ok() ? std::string() : loose.error().message));
    expect(loose.value().model_near.delay == strict.value().model_near.delay &&
               loose.value().model_near.slew == strict.value().model_near.slew &&
               loose.value().model.ceff1.ceff == strict.value().model.ceff1.ceff,
           "require_convergence flag changed converged results");
  } else if (strict.error().code == api::ErrorCode::convergence_failure) {
    expect(loose.ok(),
           "convergence_failure did not downgrade to last-iterate semantics: " +
               (loose.ok() ? std::string() : loose.error().message));
  }
}

namespace {

void scale_loads(net::Branch& branch, double factor) {
  branch.c_load *= factor;
  for (net::Branch& child : branch.children) scale_loads(child, factor);
}

void scale_route(net::Branch& branch, double factor) {
  for (net::Section& s : branch.sections) {
    s.resistance *= factor;
    s.inductance *= factor;
    s.capacitance *= factor;
  }
  for (net::Branch& child : branch.children) scale_route(child, factor);
}

}  // namespace

void check_monotone_delay(api::Engine& engine, const net::Net& net, double cell_size,
                          double input_slew, const api::BatchOptions& options) {
  auto delay_of = [&](const net::Net& variant, core::ModelSelection selection,
                      bool add_flight) -> std::pair<bool, double> {
    api::Request request;
    request.label = "monotone";
    request.cell_size = cell_size;
    request.input_slew = input_slew;
    request.net = variant;
    request.model.selection = selection;
    const api::Outcome<api::Response> outcome = engine.model(request, options);
    if (!outcome.ok()) return {false, 0.0};
    const api::Response& r = outcome.value();
    return {true, r.model_near.delay + (add_flight ? r.model.tf : 0.0)};
  };

  auto check_growing = [&](auto&& grow, double factor, core::ModelSelection selection,
                           bool add_flight, double rel_slack, const char* what) {
    net::Branch branch = net.root();
    double previous = 0.0;
    bool have_previous = false;
    for (int step = 0; step < 3; ++step) {
      if (step > 0) grow(branch, factor);
      const auto [ok, delay] = delay_of(net::Net(branch), selection, add_flight);
      if (!ok) return;  // convergence surface is check_engine_outcome's job
      if (have_previous) {
        // The slack absorbs table-interpolation kinks and the truncated
        // 5-moment fit's charge wobble; a real inversion (swapped tables,
        // sign errors, dropped load) shows up far beyond it.
        const double slack = rel_slack * std::abs(previous) + 2 * ps;
        expect(delay >= previous - slack,
               std::string(what) + ": delay shrank from " + fmt(previous) + " s to " +
                   fmt(delay) + " s when the " + what + " grew");
      }
      previous = delay;
      have_previous = true;
    }
  };

  // Load growth can only flip the Eq 9 selection one-ramp-ward, which jumps
  // the near-end delay *up* — the automatic flow stays monotone at the
  // driver output.
  check_growing([](net::Branch& b, double f) { scale_loads(b, f); }, 2.0,
                core::ModelSelection::automatic, false, 0.03, "receiver load");
  // Length growth is different: the *physical* near-end delay saturates once
  // the line is longer than the transition's diffusion/flight horizon (the
  // driver only sees Z0 until the far end answers), so the near-end number
  // may legitimately wobble flat-to-down as moments truncate.  What must
  // never speed up is the modeled far-end arrival: near-end t50 plus the
  // dominant-path flight time.  Pin the one-ramp column so the Eq 9
  // selection flip (which legitimately drops the near-end t50) stays out of
  // the sweep.
  check_growing([](net::Branch& b, double f) { scale_route(b, f); }, 1.5,
                core::ModelSelection::force_one_ramp, true, 0.10, "route length");
}

void check_batch_invariance(api::Engine& engine, std::vector<api::Request> requests,
                            const api::BatchOptions& options, Rng rng) {
  auto run = [&](std::span<const api::Request> batch, unsigned n_threads) {
    api::BatchOptions opt = options;
    opt.n_threads = n_threads;
    return engine.run_batch(batch, opt);
  };

  const std::vector<api::Outcome<api::Response>> serial = run(requests, 1);
  const std::vector<api::Outcome<api::Response>> wide = run(requests, 4);

  auto expect_same_slot = [&](const api::Outcome<api::Response>& a,
                              const api::Outcome<api::Response>& b,
                              const std::string& what) {
    expect(a.ok() == b.ok(), what + ": ok flags differ");
    if (!a.ok()) {
      expect(a.error().code == b.error().code, what + ": error codes differ");
      return;
    }
    expect(a.value().model_near.delay == b.value().model_near.delay &&
               a.value().model_near.slew == b.value().model_near.slew &&
               a.value().model.ceff1.ceff == b.value().model.ceff1.ceff,
           what + ": results differ bitwise");
  };

  for (std::size_t k = 0; k < requests.size(); ++k) {
    expect_same_slot(serial[k], wide[k],
                     "thread-count invariance, slot '" + requests[k].label + "'");
  }

  // Deterministic permutation: rotate by a random offset, then swap a few
  // random pairs.  results[i] must still correspond to requests[i].
  std::vector<std::size_t> order(requests.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::rotate(order.begin(), order.begin() + rng.uniform_index(order.size()),
              order.end());
  for (int swap = 0; swap < 4; ++swap) {
    std::swap(order[rng.uniform_index(order.size())],
              order[rng.uniform_index(order.size())]);
  }
  std::vector<api::Request> permuted;
  permuted.reserve(requests.size());
  for (std::size_t index : order) permuted.push_back(requests[index]);
  const std::vector<api::Outcome<api::Response>> shuffled = run(permuted, 3);
  for (std::size_t k = 0; k < order.size(); ++k) {
    expect_same_slot(serial[order[k]], shuffled[k],
                     "permutation invariance, slot '" + permuted[k].label + "'");
  }
}

void check_chaos_batch(api::Engine& engine, std::uint64_t seed,
                       const api::BatchOptions& options, std::size_t slots) {
  expect(slots >= 1, "chaos batch needs at least one slot");
  Rng rng(seed);
  std::vector<api::Request> clean;
  clean.reserve(slots);
  for (std::size_t k = 0; k < slots; ++k) {
    api::Request request = random_request(rng);
    request.label += "-x" + std::to_string(k);
    clean.push_back(std::move(request));
  }

  api::BatchOptions serial = options;
  serial.n_threads = 1;
  serial.debug_slot_fault = nullptr;
  const std::vector<api::Outcome<api::Response>> baseline =
      engine.run_batch(clean, serial);

  const FaultPlan plan(seed);
  std::vector<api::Request> faulted = clean;
  std::vector<SlotFault> faults(slots);
  for (std::size_t k = 0; k < slots; ++k) faults[k] = plan.apply(k, faulted[k]);

  api::BatchOptions chaos_serial = serial;
  chaos_serial.debug_slot_fault = plan.hook();
  api::BatchOptions chaos_wide = chaos_serial;
  chaos_wide.n_threads = 4;
  const std::vector<api::Outcome<api::Response>> narrow =
      engine.run_batch(faulted, chaos_serial);
  const std::vector<api::Outcome<api::Response>> wide =
      engine.run_batch(faulted, chaos_wide);

  auto same_slot = [&](const api::Outcome<api::Response>& a,
                       const api::Outcome<api::Response>& b,
                       const std::string& what) {
    expect(a.ok() == b.ok(), what + ": ok flags differ");
    if (!a.ok()) {
      expect(a.error().code == b.error().code,
             what + ": error codes differ (" +
                 std::string(api::to_string(a.error().code)) + " vs " +
                 api::to_string(b.error().code) + ")");
      return;
    }
    expect(a.value().model_near.delay == b.value().model_near.delay &&
               a.value().model_near.slew == b.value().model_near.slew &&
               a.value().model.ceff1.ceff == b.value().model.ceff1.ceff &&
               a.value().fidelity == b.value().fidelity &&
               a.value().degraded == b.value().degraded &&
               a.value().attempts.size() == b.value().attempts.size(),
           what + ": results differ bitwise");
  };

  auto check_contract = [&](const SlotFault& fault, const api::Request& request,
                            const api::Outcome<api::Response>& outcome,
                            const api::Outcome<api::Response>& base,
                            const std::string& what) {
    const FaultExpectation e = expectation(fault);
    if (e.must_fail) {
      expect(!outcome.ok(), what + ": expected a failed outcome, got success");
      const api::ErrorInfo& err = outcome.error();
      // A slot that fails even unfaulted may surface its own (structured)
      // failure before the injected one bites — e.g. a model_error raised
      // ahead of a forced non-convergence or of the reference sim's step
      // budget.  The injected code is only owed by otherwise-healthy slots.
      if (!base.ok() && err.code == base.error().code) return;
      expect(err.code == e.code,
             what + ": expected " + std::string(api::to_string(e.code)) +
                 ", got " + api::to_string(err.code) + " (" + err.message + ")");
      if (*e.message_needle != '\0') {
        expect(err.message.find(e.message_needle) != std::string::npos,
               what + ": message '" + err.message + "' lacks '" +
                   e.message_needle + "'");
      }
      if (e.max_elapsed_s > 0.0) {
        expect(err.elapsed_s <= e.max_elapsed_s,
               what + ": slot exited after " + fmt(err.elapsed_s) +
                   " s, promptness bound " + fmt(e.max_elapsed_s) + " s");
      }
      return;
    }
    if (!e.expect_degraded) return;
    expect(outcome.ok(),
           what + ": expected a degraded success, got failure" +
               (outcome.ok() ? std::string()
                             : std::string(" [") +
                                   api::to_string(outcome.error().code) +
                                   "]: " + outcome.error().message));
    const api::Response& r = outcome.value();
    expect(r.degraded, what + ": fallback answer not flagged degraded");
    expect(r.fidelity == api::Fidelity::moments_only,
           what + ": degraded model-only request must land on the moments floor");
    expect(!r.attempts.empty() &&
               r.attempts.front().code == api::ErrorCode::deadline_exceeded,
           what + ": attempt trail does not lead with deadline_exceeded");
    // The floor's documented envelope: the cell table evaluated at Ctotal —
    // a converged zero-iteration one-ramp answer with finite metrics.
    expect(r.model.kind == core::ModelKind::one_ramp && r.model.ceff1.converged &&
               r.model.ceff1.iterations == 0,
           what + ": floor answer is not the zero-iteration one-ramp estimate");
    if (!request.coupled()) {
      expect(r.model.ceff1.ceff == request.net.total_capacitance(),
             what + ": floor Ceff is not the net's total capacitance");
    }
    expect(std::isfinite(r.model_near.delay) && r.model_near.slew > 0.0,
           what + ": degraded answer has non-finite metrics");
  };

  for (std::size_t k = 0; k < slots; ++k) {
    const SlotFault& fault = faults[k];
    const std::string where = "chaos slot " + std::to_string(k) + " [" +
                              std::string(to_string(fault.kind)) + "]";
    if (fault.kind == FaultKind::none) {
      // Healthy slots must be bitwise unaffected by their faulty neighbors,
      // at any thread count.
      same_slot(baseline[k], narrow[k], where + " vs baseline (serial)");
      same_slot(baseline[k], wide[k], where + " vs baseline (wide)");
    } else {
      check_contract(fault, faulted[k], narrow[k], baseline[k], where + " (serial)");
      check_contract(fault, faulted[k], wide[k], baseline[k], where + " (wide)");
      same_slot(narrow[k], wide[k], where + " serial vs wide");
    }
  }
}

namespace {

std::uint64_t dbits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_wave_bitwise(const wave::Waveform& a, const wave::Waveform& b,
                         const std::string& what) {
  expect(a.size() == b.size(), what + ": sample counts differ (" +
                                   std::to_string(a.size()) + " vs " +
                                   std::to_string(b.size()) + ")");
  for (std::size_t k = 0; k < a.size(); ++k) {
    expect(dbits(a.time(k)) == dbits(b.time(k)) &&
               dbits(a.value(k)) == dbits(b.value(k)),
           what + ": waveform sample " + std::to_string(k) + " differs bitwise");
  }
}

// A far_end_replay slot over `net` — the scenario-batching unit of work.
// require_convergence stays off so hard random instances fail (identically
// on both paths) at the replay measurement, not at the model gate.
api::Request replay_request(std::string label, const net::Net& net,
                            double cell_size, double input_slew,
                            sim::SolverKind solver) {
  api::Request r;
  r.label = std::move(label);
  r.cell_size = cell_size;
  r.input_slew = input_slew;
  r.net = net;
  r.far_end_replay = true;
  r.keep_waveforms = true;
  r.require_convergence = false;
  r.solver = solver;
  return r;
}

// Full bitwise slot identity, far end and waveform included (stricter than
// check_batch_invariance's near-end compare, which predates the replay path).
void expect_identical_replay_slot(const api::Outcome<api::Response>& a,
                                  const api::Outcome<api::Response>& b,
                                  const std::string& what) {
  expect(a.ok() == b.ok(), what + ": ok flags differ");
  if (!a.ok()) {
    expect(a.error().code == b.error().code,
           what + ": error codes differ (" +
               std::string(api::to_string(a.error().code)) + " vs " +
               api::to_string(b.error().code) + ")");
    return;
  }
  const api::Response& ra = a.value();
  const api::Response& rb = b.value();
  expect(dbits(ra.model_near.delay) == dbits(rb.model_near.delay) &&
             dbits(ra.model_near.slew) == dbits(rb.model_near.slew),
         what + ": near-end metrics differ bitwise");
  expect(ra.has_model_far == rb.has_model_far, what + ": has_model_far differs");
  if (!ra.has_model_far) return;
  expect(dbits(ra.model_far.delay) == dbits(rb.model_far.delay) &&
             dbits(ra.model_far.slew) == dbits(rb.model_far.slew),
         what + ": far-end metrics differ bitwise");
  expect(ra.solver == rb.solver, what + ": replay solvers differ");
  expect_wave_bitwise(ra.model_far_wave, rb.model_far_wave,
                      what + ": far-end waveform");
}

// Rebuilds `src` element-for-element in declaration order.  perturb_index
// picks one value across resistors/capacitors/inductors (in that order) to
// bump by one ULP; -1 reproduces the netlist exactly.
ckt::Netlist rebuild_netlist(const ckt::Netlist& src, std::ptrdiff_t perturb_index) {
  auto tweak = [&perturb_index](double v) {
    return perturb_index-- == 0
               ? std::nextafter(v, std::numeric_limits<double>::infinity())
               : v;
  };
  ckt::Netlist out;
  while (out.node_count() < src.node_count()) out.add_node();
  for (const ckt::Resistor& r : src.resistors()) {
    out.add_resistor(r.a, r.b, tweak(r.resistance));
  }
  for (const ckt::Capacitor& c : src.capacitors()) {
    out.add_capacitor(c.a, c.b, tweak(c.capacitance));
  }
  for (const ckt::Inductor& l : src.inductors()) {
    out.add_inductor(l.a, l.b, tweak(l.inductance));
  }
  for (const ckt::MutualInductor& m : src.mutual_inductors()) {
    out.add_mutual_inductor(m.la, m.lb, m.mutual);
  }
  for (const ckt::VSource& v : src.vsources()) {
    out.add_vsource(v.pos, v.neg, v.voltage);
  }
  for (const ckt::Mosfet& f : src.mosfets()) {
    out.add_mosfet(f.drain, f.gate, f.source, f.params, f.width, f.is_pmos);
  }
  return out;
}

}  // namespace

void check_batched_replay_equivalence(api::Engine& engine, std::uint64_t seed,
                                      const api::BatchOptions& options,
                                      sim::SolverKind solver) {
  Rng rng(seed);
  // A few equal-topology classes (members share net + driver, differ only in
  // slew — one factorization group each) plus a singleton that must stay on
  // the scalar path.  Both shapes must be invisible in the numbers.
  std::vector<api::Request> requests;
  const std::size_t classes = 2 + rng.uniform_index(2);
  for (std::size_t c = 0; c < classes; ++c) {
    Rng net_rng = rng.split();
    const net::Net net = instantiate(random_net_recipe(net_rng));
    const double cell = rng.pick(kCells);
    const std::size_t members = 2 + rng.uniform_index(3);
    for (std::size_t m = 0; m < members; ++m) {
      requests.push_back(replay_request(
          "replay-eq-" + std::to_string(c) + "-" + std::to_string(m), net, cell,
          rng.uniform(25 * ps, 300 * ps), solver));
    }
  }
  {
    Rng net_rng = rng.split();
    const net::Net net = instantiate(random_net_recipe(net_rng));
    requests.push_back(replay_request("replay-eq-singleton", net, rng.pick(kCells),
                                      rng.uniform(25 * ps, 300 * ps), solver));
  }

  api::BatchOptions batched = options;
  batched.batch_scenarios = true;
  batched.n_threads = 1 + static_cast<unsigned>(rng.uniform_index(8));
  api::BatchOptions per_slot = options;
  per_slot.batch_scenarios = false;
  per_slot.n_threads = 1 + static_cast<unsigned>(rng.uniform_index(8));

  const std::vector<api::Outcome<api::Response>> a =
      engine.run_batch(requests, batched);
  const std::vector<api::Outcome<api::Response>> b =
      engine.run_batch(requests, per_slot);
  for (std::size_t k = 0; k < requests.size(); ++k) {
    expect_identical_replay_slot(
        a[k], b[k],
        "batched-vs-per-slot, slot '" + requests[k].label + "' (" +
            sim::to_string(solver) + ", " + std::to_string(batched.n_threads) +
            " vs " + std::to_string(per_slot.n_threads) + " threads)");
  }
}

void check_adversarial_grouping(std::uint64_t seed, const OracleOptions& options) {
  Rng rng(seed);
  Rng net_rng = rng.split();
  const net::Net net = instantiate(random_net_recipe(net_rng));
  const wave::Pwl source(
      {{10 * ps, 0.0}, {10 * ps + rng.uniform(25 * ps, 300 * ps), 1.8}});
  const tech::DeckOptions deck =
      equivalence_deck(options, short_horizon(net, 100 * ps));
  const tech::SourceNetDeck compiled = tech::compile_source_net(source, net, deck);
  const sim::TransientOptions sim_opt = tech::sim_options(deck);
  const ckt::Netlist& a = compiled.netlist;
  const std::uint64_t hash_a = sim::scenario_group_hash(a, sim_opt);

  const ckt::Netlist twin = rebuild_netlist(a, -1);
  expect(sim::scenario_group_equal(a, twin),
         "adversarial grouping: an identical rebuild must group with its twin");
  expect(hash_a == sim::scenario_group_hash(twin, sim_opt),
         "adversarial grouping: identical rebuilds hash apart");

  const std::size_t values =
      a.resistors().size() + a.capacitors().size() + a.inductors().size();
  expect(values > 0, "adversarial grouping: compiled deck has no RLC elements");
  const ckt::Netlist ulp = rebuild_netlist(
      a, static_cast<std::ptrdiff_t>(rng.uniform_index(values)));
  expect(!sim::scenario_group_equal(a, ulp),
         "adversarial grouping: a one-ULP element perturbation shares a "
         "factorization group");
  expect(hash_a != sim::scenario_group_hash(ulp, sim_opt),
         "adversarial grouping: a one-ULP element perturbation collides with "
         "the group hash");

  ckt::Netlist edged = rebuild_netlist(a, -1);
  edged.add_resistor(1 + rng.uniform_index(a.node_count() - 1), ckt::ground, 1e6);
  expect(!sim::scenario_group_equal(a, edged),
         "adversarial grouping: one extra topology edge shares a "
         "factorization group");
  expect(hash_a != sim::scenario_group_hash(edged, sim_opt),
         "adversarial grouping: one extra topology edge collides with the "
         "group hash");
}

void check_chaos_replay_group(api::Engine& engine, std::uint64_t seed,
                              const api::BatchOptions& options,
                              std::size_t slots) {
  expect(slots >= 2, "chaos replay group needs at least two slots");
  Rng rng(seed);
  Rng net_rng = rng.split();
  const net::Net net = instantiate(random_net_recipe(net_rng));
  const double cell = rng.pick(kCells);
  std::vector<api::Request> clean;
  clean.reserve(slots);
  for (std::size_t k = 0; k < slots; ++k) {
    clean.push_back(replay_request("chaos-replay-" + std::to_string(k), net, cell,
                                   rng.uniform(25 * ps, 300 * ps),
                                   sim::SolverKind::automatic));
  }

  api::BatchOptions base = options;
  base.batch_scenarios = true;
  base.n_threads = 1;
  base.debug_slot_fault = nullptr;
  const std::vector<api::Outcome<api::Response>> baseline =
      engine.run_batch(clean, base);

  const std::size_t victim = rng.uniform_index(slots);
  constexpr FaultKind kMenu[] = {FaultKind::worker_throw,
                                 FaultKind::instant_deadline,
                                 FaultKind::step_budget};
  SlotFault fault;
  fault.kind = rng.pick(kMenu);

  std::vector<api::Request> faulted = clean;
  switch (fault.kind) {
    case FaultKind::instant_deadline:
      // Below any clock granularity; a wall-limited slot is also ineligible
      // to defer, so the group shrinks to N-1 lanes before it runs.
      faulted[victim].budget.wall_limit_s = 1e-12;
      break;
    case FaultKind::step_budget:
      // Unlike the plain chaos lane (which forces the reference path), this
      // budget meters the *deferred replay*: the victim joins the block and
      // its lane must be retired inside it.  Any replay horizon runs well
      // past ten steps.
      faulted[victim].budget.max_transient_steps = 10;
      break;
    default:
      break;
  }

  api::BatchOptions chaos_serial = base;
  if (fault.kind == FaultKind::worker_throw) {
    chaos_serial.debug_slot_fault = [victim](std::size_t slot,
                                             util::ExecTracker&) {
      if (slot == victim) {
        throw std::runtime_error("injected worker fault (slot " +
                                 std::to_string(slot) + ")");
      }
    };
  }
  api::BatchOptions chaos_wide = chaos_serial;
  chaos_wide.n_threads = 4;
  const std::vector<api::Outcome<api::Response>> narrow =
      engine.run_batch(faulted, chaos_serial);
  const std::vector<api::Outcome<api::Response>> wide =
      engine.run_batch(faulted, chaos_wide);

  const FaultExpectation e = expectation(fault);
  for (const auto* run : {&narrow, &wide}) {
    const char* mode = run == &narrow ? "serial" : "wide";
    for (std::size_t k = 0; k < slots; ++k) {
      const std::string where = "chaos replay group slot " + std::to_string(k) +
                                " [" +
                                (k == victim ? to_string(fault.kind) : "mate") +
                                ", " + mode + "]";
      if (k != victim) {
        expect_identical_replay_slot(baseline[k], (*run)[k],
                                     where + " vs clean baseline");
        continue;
      }
      expect(!(*run)[k].ok(), where + ": expected a failed outcome, got success");
      // A victim that fails even unfaulted may surface its own code first;
      // mate isolation above is checked in full either way.
      if (!baseline[k].ok() &&
          (*run)[k].error().code == baseline[k].error().code) {
        continue;
      }
      const api::ErrorInfo& err = (*run)[k].error();
      expect(err.code == e.code,
             where + ": expected " + std::string(api::to_string(e.code)) +
                 ", got " + api::to_string(err.code) + " (" + err.message + ")");
      if (*e.message_needle != '\0') {
        expect(err.message.find(e.message_needle) != std::string::npos,
               where + ": message '" + err.message + "' lacks '" +
                   e.message_needle + "'");
      }
    }
  }
}

void check_nan_stamp_fault(const net::Net& net, Rng rng,
                           const OracleOptions& options) {
  const double input_slew = rng.uniform(25 * ps, 300 * ps);
  tech::DeckOptions deck = equivalence_deck(options, short_horizon(net, input_slew));
  deck.sim.assembly = sim::AssemblyMode::cached;
  const wave::Pwl source = wave::ramp(10 * ps, input_slew, 0.0, 1.8);

  // The unpoisoned deck must simulate cleanly: this oracle tests the guard,
  // not the instance.
  tech::simulate_source_net(source, net, deck);

  deck.sim.debug_cached_stamp_nan = true;
  bool caught = false;
  try {
    tech::simulate_source_net(source, net, deck);
  } catch (const SingularMatrixError&) {
    caught = true;
  }
  expect(caught,
         "NaN-poisoned cached stamp escaped: the simulator returned waveforms "
         "instead of raising SingularMatrixError");
}

void check_group_invariants(const net::CoupledGroup& group, std::size_t victim,
                            const OracleOptions& options) {
  double per_net_sum = 0.0;
  for (std::size_t k = 0; k < group.size(); ++k) {
    per_net_sum += group.coupling_capacitance_at(k);
  }
  double cap_sum = 0.0;
  for (const net::CouplingCap& cc : group.coupling_caps()) cap_sum += cc.capacitance;
  expect_close(per_net_sum, 2.0 * cap_sum, 1e-12,
               "per-net coupling capacitance vs 2x element sum");

  const double victim_cap = group.net_at(victim).total_capacitance();
  const double attached = group.coupling_capacitance_at(victim);

  // Quiet folding (all 1x) grounds every attached coupling cap.
  expect_close(group.decoupled_net(victim).total_capacitance(), victim_cap + attached,
               1e-12, "quiet Miller folding capacitance");

  // 0x folding drops every coupling cap: the victim net unchanged.
  const std::vector<double> zero(group.size(), 0.0);
  expect(group.decoupled_net(victim, zero).total_capacitance() == victim_cap,
         "0x Miller folding changed the victim net");

  // 2x folding doubles the attached charge.
  const std::vector<double> twice(group.size(), 2.0);
  expect_close(group.decoupled_net(victim, twice).total_capacitance(),
               victim_cap + 2.0 * attached, 1e-12, "2x Miller folding capacitance");

  // The one-net group is the degenerate case: identical compiled deck.
  const net::CoupledGroup single = net::CoupledGroup::single(group.net_at(victim));
  ckt::Netlist nl_single, nl_direct;
  const ckt::NodeId from_single = nl_single.node("out");
  const ckt::NodeId from_direct = nl_direct.node("out");
  const std::vector<ckt::NodeId> from{from_single};
  ckt::append_coupled_group(nl_single, from, single, options.segments);
  ckt::append_net(nl_direct, from_direct, group.net_at(victim), options.segments);
  expect(nl_single.node_count() == nl_direct.node_count() &&
             nl_single.resistors().size() == nl_direct.resistors().size() &&
             nl_single.capacitors().size() == nl_direct.capacitors().size() &&
             nl_single.inductors().size() == nl_direct.inductors().size(),
         "single-net group compiled a different deck shape than append_net");
  for (std::size_t k = 0; k < nl_single.resistors().size(); ++k) {
    expect(nl_single.resistors()[k].resistance == nl_direct.resistors()[k].resistance,
           "single-net group resistor " + std::to_string(k) + " differs");
  }
  for (std::size_t k = 0; k < nl_single.capacitors().size(); ++k) {
    expect(nl_single.capacitors()[k].capacitance ==
               nl_direct.capacitors()[k].capacitance,
           "single-net group capacitor " + std::to_string(k) + " differs");
  }
  for (std::size_t k = 0; k < nl_single.inductors().size(); ++k) {
    expect(nl_single.inductors()[k].inductance == nl_direct.inductors()[k].inductance,
           "single-net group inductor " + std::to_string(k) + " differs");
  }
}

void check_miller_envelope(const tech::Technology& technology,
                           charlib::CellLibrary& library, const GroupRecipe& recipe,
                           Rng rng, const OracleOptions& options) {
  core::CoupledExperimentCase scenario;
  scenario.label = "miller-" + describe(recipe);
  scenario.group = instantiate(recipe);
  scenario.victim = rng.uniform_index(scenario.group.size());
  scenario.driver_size = rng.pick(kCells);
  scenario.input_slew = rng.uniform(50 * ps, 200 * ps);
  core::AggressorDrive drive;
  for (std::size_t k = 0; k < scenario.group.size(); ++k) {
    drive.driver_size = rng.pick(kCells);
    drive.input_slew = rng.uniform(50 * ps, 200 * ps);
    drive.switching = rng.chance(0.5) ? core::AggressorSwitching::opposite
                                      : core::AggressorSwitching::same_direction;
    scenario.aggressors.push_back(drive);
  }

  core::CoupledExperimentOptions opt;
  opt.deck.segments = options.segments;
  opt.deck.dt = options.dt;
  opt.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  opt.grid.loads = {20 * ff, 50 * ff,  200 * ff, 500 * ff,
                    1 * pf,  2 * pf,   4 * pf};
  opt.include_noise = true;

  const core::CoupledExperimentResult r =
      core::run_coupled_experiment(technology, library, scenario, opt);

  expect(std::isfinite(r.ref_far.delay) && r.ref_far.slew > 0.0,
         "coupled reference produced a degenerate far-end edge");
  // The 0x/2x Miller factors are a worst-case bound, not a fit: with a slow
  // opposing aggressor the decoupled delay legitimately overshoots the
  // coupled simulation by tens of percent.  The envelope guards against
  // catastrophic breakage (dropped coupling, wrong sign, broken replay),
  // not against the approximation's documented error.
  const double envelope = 0.5 * std::abs(r.ref_far.delay) + 15 * ps;
  expect(std::abs(r.model_far.delay - r.ref_far.delay) <= envelope,
         "Miller-decoupled far-end delay " + fmt(r.model_far.delay) +
             " s outside the envelope of the coupled simulation " +
             fmt(r.ref_far.delay) + " s (envelope " + fmt(envelope) + " s)");
  expect(r.peak_noise >= 0.0 && r.peak_noise <= technology.vdd,
         "quiet-victim peak noise " + fmt(r.peak_noise) + " V outside [0, Vdd]");
}

namespace {

// Strips the flags a tiered request may not carry (the cascade owns the
// reference decision) and any reference-only extras.
api::Request model_only(const api::Request& request) {
  api::Request out = request;
  out.reference = false;
  out.one_ramp_baseline = false;
  out.keep_waveforms = false;
  out.tier = tier::TierPolicy::reference;
  return out;
}

}  // namespace

void check_tier_identity(api::Engine& engine, const api::Request& request,
                         const api::BatchOptions& options) {
  const api::Request legacy = model_only(request);
  api::Request forced = legacy;
  forced.tier = tier::TierPolicy::force_ceff;

  const api::Outcome<api::Response> base = engine.model(legacy, options);
  const api::Outcome<api::Response> tiered = engine.model(forced, options);
  if (base.ok() != tiered.ok()) {
    expect(false, std::string("force_ceff changed the outcome of the legacy path: ") +
                      (base.ok() ? "legacy ok, tiered failed: " + tiered.error().message
                                 : "legacy failed, tiered ok"));
  }
  if (!base.ok()) {
    expect(base.error().code == tiered.error().code,
           "force_ceff changed the failure code of the legacy path");
    return;
  }
  const api::Response& b = base.value();
  const api::Response& t = tiered.value();
  auto same = [&](double x, double y, const char* what) {
    expect(x == y, std::string("force_ceff diverged from the legacy path on ") +
                       what + ": " + fmt(x) + " vs " + fmt(y));
  };
  same(b.model_near.delay, t.model_near.delay, "near-end delay");
  same(b.model_near.slew, t.model_near.slew, "near-end slew");
  same(b.model.t50, t.model.t50, "model t50");
  same(b.model.ceff1.ceff, t.model.ceff1.ceff, "Ceff1");
  same(b.model.ceff1.ramp_time, t.model.ceff1.ramp_time, "Tr1");
  same(b.delay_pushout_model, t.delay_pushout_model, "model pushout");
  expect(b.model.kind == t.model.kind, "force_ceff changed the model kind");
  // Provenance stamps: the default policy reports the legacy mapping, the
  // forced policy reports Tier B with no escalations.
  expect(b.fidelity == api::Fidelity::ceff_model && b.tier == tier::Tier::ceff &&
             b.tier_escalations == 0,
         "default-policy response carries a non-legacy tier stamp");
  expect(t.fidelity == api::Fidelity::ceff_model && t.tier == tier::Tier::ceff &&
             t.tier_escalations == 0,
         "force_ceff response mis-stamped its tier provenance");
}

void check_tier_envelope(api::Engine& engine, const api::Request& request,
                         const api::BatchOptions& options) {
  api::Request routed = model_only(request);
  routed.tier = tier::TierPolicy::balanced;

  api::Request reference = model_only(request);
  reference.reference = true;
  reference.noise = request.coupled();

  const api::Outcome<api::Response> routed_out = engine.model(routed, options);
  if (!routed_out.ok()) return;  // outcome taxonomy is check_engine_outcome's
  const api::Outcome<api::Response> ref_out = engine.model(reference, options);
  if (!ref_out.ok()) return;

  const api::Response& r = routed_out.value();
  const api::Response& c = ref_out.value();
  if (r.tier == tier::Tier::reference) return;  // served by the reference itself

  const tier::Envelope env = tier::envelope(r.tier, request.coupled());
  const double noise = r.has_noise_bound ? r.noise_bound : -1.0;
  const double ref_noise =
      (request.coupled() && c.has_reference) ? c.peak_noise : -1.0;
  const tier::EnvelopeCheck check =
      tier::check_envelope(env, r.model_near.delay, r.model_near.slew,
                           c.ref_near.delay, c.ref_near.slew, noise, ref_noise);
  const std::string tag =
      std::string("tier ") + tier::to_string(r.tier) +
      (request.coupled() ? " (coupled)" : "") + " vs reference: ";
  expect(check.delay_ok, tag + "delay " + fmt(r.model_near.delay) +
                             " s outside the envelope of " + fmt(c.ref_near.delay) +
                             " s (rel " + fmt(env.delay_rel) + ", abs " +
                             fmt(env.delay_abs) + " s)");
  expect(check.slew_ok, tag + "slew " + fmt(r.model_near.slew) +
                            " s outside the envelope of " + fmt(c.ref_near.slew) +
                            " s (rel " + fmt(env.slew_rel) + ", abs " +
                            fmt(env.slew_abs) + " s)");
  expect(check.noise_ok, tag + "noise bound " + fmt(noise) +
                             " V under-states the simulated quiet-victim peak " +
                             fmt(ref_noise) + " V by more than " +
                             fmt(env.noise_abs) + " V");
}

namespace {

// Fuzzed validation: build a small valid branch tree, then plant one defect
// at a random path and require the error message to name that location.
net::Branch small_valid_branch(Rng& rng, std::size_t depth) {
  net::Branch branch;
  const std::size_t n_sections = 1 + rng.uniform_index(2);
  for (std::size_t k = 0; k < n_sections; ++k) {
    branch.sections.push_back({rng.log_uniform(10.0, 500.0),
                               rng.log_uniform(0.1 * nh, 5 * nh),
                               rng.log_uniform(50 * ff, 1 * pf),
                               net::SectionKind::distributed});
  }
  if (depth == 0) {
    branch.c_load = rng.log_uniform(5 * ff, 100 * ff);
    return branch;
  }
  const std::size_t fanout = 2;
  for (std::size_t k = 0; k < fanout; ++k) {
    branch.children.push_back(small_valid_branch(rng, depth - 1));
  }
  return branch;
}

struct BranchSite {
  net::Branch* branch;
  std::string path;
};

void collect_sites(net::Branch& branch, const std::string& path,
                   std::vector<BranchSite>& out) {
  out.push_back({&branch, path});
  for (std::size_t k = 0; k < branch.children.size(); ++k) {
    collect_sites(branch.children[k], path + "/" + std::to_string(k), out);
  }
}

template <class Fn>
void expect_error_naming(Fn&& fn, const std::vector<std::string>& needles,
                         const std::string& what) {
  try {
    fn();
  } catch (const Error& e) {
    const std::string message = e.what();
    for (const std::string& needle : needles) {
      expect(message.find(needle) != std::string::npos,
             what + ": error message does not name '" + needle + "' (got: \"" +
                 message + "\")");
    }
    return;
  }
  throw Error("oracle: " + what + ": defective input was accepted");
}

}  // namespace

void check_validation_reporting(Rng rng) {
  net::Branch root = small_valid_branch(rng, 1 + rng.uniform_index(2));
  std::vector<BranchSite> sites;
  collect_sites(root, "root", sites);
  const BranchSite site = sites[rng.uniform_index(sites.size())];
  const std::size_t section = rng.uniform_index(site.branch->sections.size());
  const std::string section_name = "section " + std::to_string(section);

  switch (rng.uniform_index(8)) {
    case 0:
      site.branch->sections[section].resistance = -rng.log_uniform(1.0, 100.0);
      expect_error_naming([&] { net::Net probe{root}; },
                          {section_name, "'" + site.path + "'", "resistance"},
                          "negative section resistance");
      break;
    case 1:
      site.branch->sections[section].inductance = -rng.log_uniform(0.1 * nh, 1 * nh);
      expect_error_naming([&] { net::Net probe{root}; },
                          {section_name, "'" + site.path + "'", "inductance"},
                          "negative section inductance");
      break;
    case 2:
      site.branch->sections[section].capacitance = 0.0;
      expect_error_naming([&] { net::Net probe{root}; },
                          {section_name, "'" + site.path + "'", "capacitance"},
                          "zero distributed capacitance");
      break;
    case 3:
      site.branch->c_load = -rng.log_uniform(1 * ff, 100 * ff);
      expect_error_naming([&] { net::Net probe{root}; },
                          {"'" + site.path + "'", "load"}, "negative receiver load");
      break;
    case 4: {
      for (BranchSite& s : sites) s.branch->probe.clear();
      sites.front().branch->probe = "dup";
      site.branch->probe = "dup";
      if (site.branch == sites.front().branch) {
        sites.back().branch->probe = "dup";
      }
      expect_error_naming([&] { net::Net probe{root}; }, {"duplicate probe", "'dup'"},
                          "duplicate probe name");
      break;
    }
    case 5: {
      site.branch->children.push_back(net::Branch{});  // phantom leaf
      const std::string child_path =
          site.path + "/" + std::to_string(site.branch->children.size() - 1);
      expect_error_naming([&] { net::Net probe{root}; },
                          {"'" + child_path + "'", "empty"}, "empty branch");
      break;
    }
    case 6: {
      // Coupled-group addressing defects.
      net::CoupledGroup group;
      group.add_net(net::Net(root), "alpha");
      net::Branch other = small_valid_branch(rng, 0);
      group.add_net(net::Net(other), "beta");
      const std::size_t sections_in_beta = group.section_count(1);
      expect_error_naming(
          [&] {
            group.couple_capacitance({0, 0}, {1, sections_in_beta + 2}, 10 * ff);
          },
          {"'beta'", "section " + std::to_string(sections_in_beta + 2),
           std::to_string(sections_in_beta) + " sections"},
          "coupling section out of range");
      expect_error_naming([&] { group.couple_capacitance({0, 0}, {0, 1}, 10 * ff); },
                          {"same net"}, "coupling both ends on one net");
      expect_error_naming([&] { group.couple_capacitance({0, 0}, {1, 0}, 0.0); },
                          {"'alpha'", "'beta'", "non-physical"},
                          "zero coupling capacitance");
      group.couple_inductance({0, 0}, {1, 0}, 0.6);
      expect_error_naming([&] { group.couple_inductance({0, 0}, {1, 0}, 0.55); },
                          {"'alpha'", "'beta'", "accumulates"},
                          "accumulated mutual coupling past passivity");
      break;
    }
    default: {
      // Engine request validation.
      api::Request request;
      request.label = "defective";
      request.cell_size = -1.0;
      expect_error_naming(
          [&] {
            api::Engine engine;
            api::Outcome<api::Response> outcome = engine.model(request);
            expect(!outcome.ok() &&
                       outcome.error().code == api::ErrorCode::invalid_request,
                   "negative cell size not rejected as invalid_request");
            throw Error(outcome.error().message);
          },
          {"'defective'", "cell size"}, "negative cell size");
      break;
    }
  }
}

}  // namespace rlceff::testkit
