// Checkable invariants ("oracles") for randomly generated instances.
//
// Each oracle takes an instance the generators produced and throws
// rlceff::Error with a specific message when the stack violates one of its
// own guarantees.  The oracles only use properties that hold for *every*
// valid input — conservation laws, documented equivalences, and the
// library's own error taxonomy — never golden numbers:
//
//   * cached-vs-naive:     both MNA assembly modes produce identical
//                          waveforms (the factor-once engine's contract),
//   * solver equivalence:  dense, banded and sparse LU backends agree on the
//                          same deck, and the sparse backend keeps the
//                          cached-vs-naive bitwise contract,
//   * charge conservation: the charge a source pushes into a passive net
//                          equals C_total * Vdd once every node settles,
//   * net invariants:      moments' m1 == total capacitance, the compiled
//                          deck carries the net's capacitance, metrics are
//                          consistent with the topology,
//   * engine outcome:      Ceff iterations either converge or surface as a
//                          clean convergence_failure (never internal_error),
//                          and require_convergence only gates — it never
//                          changes converged results,
//   * monotone delay:      growing the receiver load or the route length
//                          never speeds the modeled edge up,
//   * batch invariance:    Engine::run_batch results are bitwise invariant
//                          under thread count and slot permutation,
//   * group invariants:    Miller folding preserves total capacitance and
//                          the one-net group compiles the one-net deck,
//   * Miller envelope:     the decoupled model's far-end delay tracks the
//                          full coupled simulation within a coarse envelope.
//
// The sim-backed oracles run at deliberately low fidelity (few segments,
// coarse dt) — the invariants hold at every fidelity, and low fidelity is
// what lets the harness sweep ~1000 instances in seconds.
#ifndef RLCEFF_TESTKIT_ORACLES_H
#define RLCEFF_TESTKIT_ORACLES_H

#include <cstdint>
#include <vector>

#include "api/engine.h"
#include "net/coupled.h"
#include "net/net.h"
#include "sim/transient.h"
#include "testkit/generate.h"
#include "testkit/rng.h"

namespace rlceff::testkit {

struct OracleOptions {
  std::size_t segments = 8;  // ladder discretization of sim-backed decks
  double dt = 2e-12;         // sim step [s]
  // Linear-solver backend for the sim-backed oracle decks.  `automatic`
  // keeps the engine's own selection; the property harness forces each
  // explicit kind in turn (--solver) so every backend sees the full
  // randomized topology stream.  Oracles that exist to compare backends
  // (check_solver_equivalence) ignore this and pick their own.
  sim::SolverKind solver = sim::SolverKind::automatic;
  // Fault injection (the harness's own self-test): forwarded to
  // sim::TransientOptions::debug_cached_stamp_skew on the *cached* run of
  // the cached-vs-naive oracle.  Any nonzero value must be caught.
  double stamp_skew = 0.0;
};

// Topology/moments/deck consistency of one net.  No simulation.
void check_net_invariants(const net::Net& net, const OracleOptions& options = {});

// Simulates one deck (driver-driven or source-driven, drawn from `rng`)
// with AssemblyMode::cached and AssemblyMode::naive and requires identical
// waveforms.  Also accepts coupled groups (every net driven).
void check_cached_vs_naive(const net::Net& net, Rng rng, const OracleOptions& options);
void check_cached_vs_naive(const net::CoupledGroup& group, Rng rng,
                           const OracleOptions& options);

// Simulates one linear deck under every solver backend (dense reference,
// banded, sparse) and requires agreement to factorization rounding (1e-10 V
// on the 1.8 V swing).  Also re-runs the sparse backend with naive assembly
// and requires the cached path to match it bitwise — the factor-once
// contract extends to the sparse image.
void check_solver_equivalence(const net::Net& net, Rng rng,
                              const OracleOptions& options);

// Deprecated: two-way predecessor of check_solver_equivalence; now forwards
// to the three-way oracle.
void check_banded_vs_dense(const net::Net& net, Rng rng, const OracleOptions& options);

// Drives the net through a series resistor with a saturated ramp and checks
// (a) every leaf settles on the rail and (b) the integrated source charge
// equals C_total * Vdd.
void check_charge_conservation(const net::Net& net, Rng rng,
                               const OracleOptions& options);

// Runs one request through Engine::model twice (require_convergence on and
// off) and checks the outcome taxonomy: success implies converged
// iterations and finite metrics; failure must carry a structured, non
// internal_error code; the opt-out run must reproduce converged results
// bitwise.
void check_engine_outcome(api::Engine& engine, const api::Request& request,
                          const api::BatchOptions& options);

// Models the same net with growing receiver load (x1, x2, x4) and growing
// route length (x1, x1.5, x2.25) and requires non-decreasing delay (small
// slack for model-selection boundaries).  Vacuous when a variant fails to
// converge (check_engine_outcome owns that surface).
void check_monotone_delay(api::Engine& engine, const net::Net& net, double cell_size,
                          double input_slew, const api::BatchOptions& options);

// run_batch determinism: same requests at 1 worker, at several workers, and
// permuted — per-label results must match bitwise (codes for failed slots).
void check_batch_invariance(api::Engine& engine, std::vector<api::Request> requests,
                            const api::BatchOptions& options, Rng rng);

// CoupledGroup consistency: Miller folding preserves capacitance totals and
// the single-net group compiles to the exact single-net deck.
void check_group_invariants(const net::CoupledGroup& group, std::size_t victim,
                            const OracleOptions& options);

// The expensive end-to-end oracle: full coupled simulation vs the
// Miller-decoupled model through core::run_coupled_experiment at low
// fidelity; far-end delays must agree within a coarse envelope.
void check_miller_envelope(const tech::Technology& technology,
                           charlib::CellLibrary& library, const GroupRecipe& recipe,
                           Rng rng, const OracleOptions& options);

// Tiered-estimation identity (src/tier/): TierPolicy::force_ceff must
// reproduce the legacy model-only path bitwise — same outcome, same model
// numbers — differing only in the provenance stamps; a default-policy
// request must come back with the legacy tier mapping (the cascade left it
// alone).
void check_tier_identity(api::Engine& engine, const api::Request& request,
                         const api::BatchOptions& options);

// Tiered-estimation accuracy: routes the request with TierPolicy::balanced,
// runs the transient reference, and requires the served tier's delay/slew to
// sit inside its checked-in envelope (tier::envelope) of the reference, and
// a Tier A noise bound to not under-state the simulated quiet-victim peak.
// Vacuous when either path fails (check_engine_outcome owns that surface) or
// when the router escalated all the way to Tier C.
void check_tier_envelope(api::Engine& engine, const api::Request& request,
                         const api::BatchOptions& options);

// Validation fuzz: plants one defect at a known location in an otherwise
// valid net / group / request and requires construction to throw an Error
// whose message names the planted location (branch path, section index, net
// label).  This is the oracle that hunts wrong-index validation messages.
void check_validation_reporting(Rng rng);

// Chaos batch (testkit/faults.h): builds `slots` random requests, runs the
// clean batch as a baseline, then runs the fault-injected batch serially and
// wide and requires the hardened engine's full contract:
//   * healthy slots are bitwise identical to the baseline at any thread
//     count — faulty neighbors leak nothing;
//   * every injected fault surfaces exactly its expected ErrorCode (and
//     message fragment), or — for deadline faults under a degrade policy —
//     a successful Response flagged degraded with its attempt trail;
//   * deadline slots exit within one checkpoint interval plus slack
//     (ErrorInfo::elapsed_s), never riding out a stalled worker;
//   * verdicts and degraded values agree between the serial and wide runs.
void check_chaos_batch(api::Engine& engine, std::uint64_t seed,
                       const api::BatchOptions& options, std::size_t slots = 6);

// Shared-factorization replay equivalence: builds a seeded fleet of
// far_end_replay requests — a few equal-topology groups whose members differ
// only in input slew, plus a singleton — and requires run_batch with
// batch_scenarios on and off to agree bitwise per slot (near- and far-end
// metrics, solver, the full far-end waveform; error codes for failed slots)
// at independently drawn thread counts.  `solver` pins every replay deck to
// one backend, so forcing each explicit kind in turn marches the whole
// random-topology family through all three blocked substitution paths.
void check_batched_replay_equivalence(api::Engine& engine, std::uint64_t seed,
                                      const api::BatchOptions& options,
                                      sim::SolverKind solver);

// Adversarial grouping: compiles a random net's source deck, rebuilds it
// element-for-element (must group: scenario_group_equal, same hash), then
// perturbs one seeded element value by one ULP and separately grounds one
// extra resistor at a seeded node — either near-identical deck must never
// share a factorization, and the cheap hash key alone must already separate
// it (a hash collision would demote every lookup to the exhaustive compare).
void check_adversarial_grouping(std::uint64_t seed, const OracleOptions& options);

// N-1 isolation under grouping — the chaos lane's batched-replay variant:
// builds one shared-factorization replay group, injects a seeded fault
// (worker_throw, instant_deadline, or step_budget) into one member, and
// requires the faulted batch to fail exactly that slot with the fault's
// contractual ErrorCode while every group-mate stays bitwise identical to
// the clean batched baseline, serial and wide.  worker_throw and
// instant_deadline kill the victim before its replay is enqueued (the group
// runs as N-1 lanes); step_budget lets the victim join the block and die
// inside it (its lane is retired mid-block) — both shapes must leave the
// mates' waveforms untouched.
void check_chaos_replay_group(api::Engine& engine, std::uint64_t seed,
                              const api::BatchOptions& options,
                              std::size_t slots = 4);

// Fault-injection self-test of the simulator's non-finite-solution guard:
// poisons the cached-path stamp of the net's first capacitor
// (sim::TransientOptions::debug_cached_stamp_nan) on a source-driven linear
// deck — the path with no Newton loop to fail first — and requires the run
// to raise SingularMatrixError instead of returning silently poisoned
// waveforms.  The unpoisoned deck must simulate cleanly first.
void check_nan_stamp_fault(const net::Net& net, Rng rng,
                           const OracleOptions& options);

}  // namespace rlceff::testkit

#endif  // RLCEFF_TESTKIT_ORACLES_H
