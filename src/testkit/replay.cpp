#include "testkit/replay.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "testkit/rng.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::testkit {

namespace {

using namespace rlceff::units;

// Shortest decimal string that round-trips the double exactly.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_branch(std::string& out, const std::string& label, const net::Branch& branch,
                   const std::string& path) {
  for (const net::Section& s : branch.sections) {
    out += "xsec " + label + " " + path + " " + num(s.resistance) + " " +
           num(s.inductance / nh) + " " + num(s.capacitance / ff);
    if (s.kind == net::SectionKind::lumped) out += " lumped";
    out += "\n";
  }
  if (branch.c_load > 0.0) {
    out += "xload " + label + " " + path + " " + num(branch.c_load / ff) + "\n";
  }
  for (std::size_t k = 0; k < branch.children.size(); ++k) {
    append_branch(out, label, branch.children[k], path + "/" + std::to_string(k));
  }
}

void append_net_stanzas(std::string& out, const std::string& label, double cell_size,
                        double input_slew, const net::Net& net) {
  out += "xnet " + label + " " + num(cell_size) + " " + num(input_slew / ps) + "\n";
  append_branch(out, label, net.root(), "root");
}

const char* switching_mode(core::AggressorSwitching switching) {
  switch (switching) {
    case core::AggressorSwitching::same_direction:
      return "rise";
    case core::AggressorSwitching::opposite:
      return "fall";
    case core::AggressorSwitching::quiet:
      break;
  }
  return "quiet";
}

}  // namespace

std::string replay_deck(const api::Request& request) {
  std::string out = "# property-harness replay deck for '" + request.label + "'\n";
  if (!request.coupled()) {
    append_net_stanzas(out, request.label, request.cell_size, request.input_slew,
                       request.net);
    return out;
  }

  // Coupled request: the victim keeps the request's drive; every other group
  // net is marked aggressor (explicitly quiet when the request left it
  // implicit), so the deck yields exactly one result slot — the victim's.
  const net::CoupledGroup& group = request.group;
  for (std::size_t k = 0; k < group.size(); ++k) {
    double cell = 75.0;
    double slew = 100 * ps;
    const char* mode = "quiet";
    if (k == request.victim) {
      cell = request.cell_size;
      slew = request.input_slew;
    } else {
      for (const api::Aggressor& a : request.aggressors) {
        if (a.net != k) continue;
        cell = a.cell_size;
        slew = a.input_slew;
        mode = switching_mode(a.switching);
        break;
      }
    }
    append_net_stanzas(out, group.label_at(k), cell, slew, group.net_at(k));
    if (k != request.victim) {
      out += "aggressor " + group.label_at(k) + " " + mode + "\n";
    }
  }
  // Emit each coupling element on its own line; the CLI sums repeated lines
  // for the same section pair exactly as the group accumulated them (a zero
  // capacitance or zero k field means "this line carries only the other
  // element").
  for (const net::CouplingCap& cc : group.coupling_caps()) {
    out += "couple " + group.label_at(cc.a.net) + " " + group.label_at(cc.b.net) + " " +
           num(cc.capacitance / ff) + " 0 " + std::to_string(cc.a.section) + " " +
           std::to_string(cc.b.section) + "\n";
  }
  for (const net::MutualCoupling& mc : group.mutual_couplings()) {
    out += "couple " + group.label_at(mc.a.net) + " " + group.label_at(mc.b.net) +
           " 0 " + num(mc.k) + " " + std::to_string(mc.a.section) + " " +
           std::to_string(mc.b.section) + "\n";
  }
  return out;
}

std::string write_failure_deck(const std::string& dir, const std::string& family,
                               std::uint64_t seed, const api::Request& request) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + family + "-" + seed_hex(seed) + ".deck";
  std::ofstream out(path);
  ensure(out.good(), "testkit: cannot write replay deck " + path);
  out << replay_deck(request);
  return path;
}

}  // namespace rlceff::testkit
