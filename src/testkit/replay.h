// Failure replay: serialize a generated instance to an rlceff_cli deck.
//
// The property harness reports every failure as (seed, recipe, deck): the
// seed re-runs the harness on that one instance, and the deck feeds the same
// interconnect through `rlceff_cli`, so any counterexample is a one-line
// repro with no C++ involved.  Decks use the explicit-parasitics stanzas
// (`xnet` / `xsec` / `xload`) that can express every topology the generator
// produces — uniform lines, tapers, branched trees, and coupled groups with
// section-addressed coupling — at full %.17g double precision.  Note the
// round trip is exact up to the deck's unit scaling (values are written in
// nH/fF/ps and multiplied back on parse, which can move a value by 1 ulp):
// a CLI replay rebuilds the instance to machine precision, while the
// harness's --seed rerun regenerates it bit-exactly.
#ifndef RLCEFF_TESTKIT_REPLAY_H
#define RLCEFF_TESTKIT_REPLAY_H

#include <cstdint>
#include <string>

#include "api/request.h"

namespace rlceff::testkit {

// The deck text reproducing one model-only request (plain or coupled).
std::string replay_deck(const api::Request& request);

// Writes replay_deck() under `dir` (created if missing) as
// "<family>-<seed>.deck" and returns the path.
std::string write_failure_deck(const std::string& dir, const std::string& family,
                               std::uint64_t seed, const api::Request& request);

}  // namespace rlceff::testkit

#endif  // RLCEFF_TESTKIT_REPLAY_H
