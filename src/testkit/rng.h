// Deterministic random streams for the property harness.
//
// The generators in testkit must produce the *same* instances for the same
// seed on every platform, standard library, and thread count — a failing
// seed printed by CI has to reproduce on a laptop.  <random> distributions
// are implementation-defined, so Rng carries an explicit 64-bit splitmix64
// state and derives every draw (uniform doubles, log-uniform spans, index
// picks) from raw 64-bit outputs with fixed arithmetic.
//
// Streams are cheap values: copy one to fork a replayable sub-stream, or
// call split() for a decorrelated child stream.  mix_seed() derives the
// per-instance seeds of a family sweep (base seed x family id x index) so
// instance k is the same whether the sweep runs on 1 thread or 64.
#ifndef RLCEFF_TESTKIT_RNG_H
#define RLCEFF_TESTKIT_RNG_H

#include <cmath>
#include <cstdint>
#include <cstddef>
#include <cstdio>
#include <string>

#include "util/error.h"

namespace rlceff::testkit {

// Canonical seed spelling shared by recipe descriptions, failure reports,
// and rerun lines ("0x" + 16 lowercase hex digits) — one formatter so the
// three never drift apart.
inline std::string seed_hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

namespace detail {

// splitmix64 output function (Steele, Lea, Flood): one 64-bit hash step.
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace detail

// Combines a base seed with stream coordinates (family id, instance index)
// into an independent instance seed.
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b = 0) {
  std::uint64_t h = base;
  h = detail::mix64(h + 0x9E3779B97F4A7C15ull * (a + 1));
  h = detail::mix64(h + 0x9E3779B97F4A7C15ull * (b + 1));
  return h;
}

class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t state() const { return state_; }

  std::uint64_t next_u64() {
    state_ += 0x9E3779B97F4A7C15ull;
    return detail::mix64(state_);
  }

  // An independent child stream (hash-separated from this stream's future).
  Rng split() { return Rng(detail::mix64(next_u64() ^ 0xA02BDBF7BB3C0A7ull)); }

  // Uniform in [0, 1) with 53 significant bits.
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) {
    ensure(hi >= lo, "Rng::uniform: empty range");
    return lo + (hi - lo) * uniform01();
  }

  // Log-uniform over [lo, hi]; both bounds must be positive.  The natural
  // draw for physical magnitudes spanning decades (fF..pF, ohm..kohm).
  double log_uniform(double lo, double hi) {
    ensure(lo > 0.0 && hi >= lo, "Rng::log_uniform: bad range");
    return lo * std::exp(uniform01() * std::log(hi / lo));
  }

  // Uniform index in [0, n).
  std::size_t uniform_index(std::size_t n) {
    ensure(n > 0, "Rng::uniform_index: empty range");
    // Modulo bias is < 2^-40 for the small n testkit uses; determinism
    // matters more than the last ulp of uniformity here.
    return static_cast<std::size_t>(next_u64() % n);
  }

  // Uniform integer in [lo, hi], both inclusive.
  int uniform_int(int lo, int hi) {
    ensure(hi >= lo, "Rng::uniform_int: empty range");
    return lo + static_cast<int>(uniform_index(static_cast<std::size_t>(hi - lo) + 1));
  }

  bool chance(double p) { return uniform01() < p; }

  template <class T, std::size_t N>
  const T& pick(const T (&options)[N]) {
    return options[uniform_index(N)];
  }

private:
  std::uint64_t state_;
};

}  // namespace rlceff::testkit

#endif  // RLCEFF_TESTKIT_RNG_H
