#include "tier/analytical.h"

#include <algorithm>
#include <cmath>

#include "core/breakpoint.h"
#include "core/ceff.h"
#include "net/coupled.h"

namespace rlceff::tier {

double shield_factor(double x) {
  if (!(x > 0.0)) return 0.0;
  // Below ~1e-4 the direct form loses precision to cancellation; the series
  // g(x) = x/2 - x^2/6 + ... is exact to double precision there.
  if (x < 1e-4) return x * (0.5 - x / 6.0);
  return 1.0 - (1.0 - std::exp(-x)) / x;
}

namespace {

// Tier A's fixed-point solver: secant steps on the residual
// g(c) = Ceff(Tr(c)) - c, started from Ctotal.  The engine's core::iterate_*
// helpers run a robust damped iteration (10+ table passes at 1e-6); the
// screen solves the same equation to the table's own accuracy in 2-4
// evaluations.  `rel_tol` is relative to Ctotal; the second ramp runs
// looser than the first because tr2 only shapes the skeleton's tail.
// Same clamp range as core::run_iteration.
template <class CeffOfTr>
core::CeffIteration solve_ceff(const charlib::CharacterizedDriver& driver,
                               double input_slew, double c_total, double rel_tol,
                               double c_start, const CeffOfTr& ceff_of_tr) {
  const double tol = rel_tol * c_total;
  const double lo = 1e-4 * c_total;
  const double hi = 20.0 * c_total;
  double c0 = std::clamp(c_start, lo, hi);
  double tr = driver.output_transition(input_slew, c0);
  double g0 = ceff_of_tr(tr) - c0;
  double c1 = std::clamp(c0 + g0, lo, hi);
  double g1 = g0;
  int n = 1;
  while (std::abs(g0) > tol && n < 16) {
    tr = driver.output_transition(input_slew, c1);
    g1 = ceff_of_tr(tr) - c1;
    ++n;
    if (std::abs(g1) <= tol) break;
    const double denom = g1 - g0;
    double c2 = denom != 0.0 ? c1 - g1 * (c1 - c0) / denom : c1 + g1;
    c2 = std::clamp(c2, lo, hi);
    c0 = c1;
    g0 = g1;
    c1 = c2;
  }
  core::CeffIteration out;
  out.ceff = c1;
  out.ramp_time = tr;
  out.iterations = n;
  out.converged = std::abs(g1) <= tol || std::abs(g0) <= tol;
  return out;
}

}  // namespace

AnalyticalEstimate analytical_estimate(const charlib::CharacterizedDriver& driver,
                                       double input_slew, const net::Net& net) {
  AnalyticalEstimate out;
  out.metrics = net.metrics_relaxed();

  // The same 5-moment charge model the Ceff flow fits, but from the flattened
  // fast walk instead of the Series cascade.  Sharing the load model keeps
  // Tier A's shielded capacitances on top of Tier B's by construction; the
  // only divergence left is the ladder discretization of the moments.
  const util::Series y = moments::fast_net_admittance(net);
  const moments::RationalAdmittance fit(y);
  const core::ChargeModel load(fit);
  out.shield_tau = y[1] > 0.0 ? -y[2] / y[1] : 0.0;

  const double c_total = out.metrics.total_capacitance();
  const double rs = driver.driver_resistance(input_slew, c_total);

  core::DriverOutputModel& m = out.model;
  m.vdd = driver.vdd();
  m.rs = rs;
  m.z0 = out.metrics.z0;
  m.tf = out.metrics.time_of_flight;

  // Model selection mirrors the Ceff flow step for step: solve the Eq 1
  // breakpoint window first when the net has a flight time, evaluate the
  // Eq 9 criteria at that converged ramp time, and fall back to the whole
  // transition (one ramp) when the transmission-line response does not
  // matter.  Evaluating the criteria at the *breakpoint-window* ramp keeps
  // the screen's one/two-ramp choice — and the router's inductance refusal —
  // aligned with the tier it must agree with.  Pure-RC nets (tf == 0, the
  // tier's common case) take the single solve directly.
  double f = 1.0;
  if (m.tf > 0.0) {
    const double f_bp = core::breakpoint_fraction(m.z0, rs);
    m.ceff1 = solve_ceff(driver, input_slew, c_total, 1e-3, c_total,
                         [&](double tr) { return core::ceff_first_ramp(load, f_bp, tr); });
    m.criteria = core::evaluate_criteria(
        m.z0, m.tf, out.metrics.path_resistance, out.metrics.wire_capacitance,
        out.metrics.path_load, rs, m.ceff1.ramp_time);
    if (m.criteria.significant()) f = f_bp;
  }
  if (f >= 1.0) {
    m.ceff1 = solve_ceff(driver, input_slew, c_total, 1e-3, c_total,
                         [&](double tr) { return core::ceff_single(load, tr); });
  }
  const double ceff = m.ceff1.ceff;
  const double tr1 = m.ceff1.ramp_time;
  out.shielding = c_total > 0.0 ? ceff / c_total : 1.0;
  const double delay1 = driver.delay(input_slew, ceff);

  // Second ramp (breakpoint below the rail): its window runs to the end of
  // the transition, where the shield has mostly discharged.
  if (f < 1.0) {
    // Charge conservation warm start: the first window deferred
    // (Ctotal - Ceff1) * f * vdd of charge, and the second window (swing
    // (1 - f) * vdd) absorbs it on top of its own share — typically within a
    // few percent of the converged value, so the solve usually accepts it
    // after one evaluation.
    const double c2_start = c_total + (c_total - ceff) * f / (1.0 - f);
    m.ceff2 = solve_ceff(driver, input_slew, c_total, 3e-2, c2_start, [&](double tr) {
      return core::ceff_second_ramp(load, f, tr1, tr);
    });
  }
  const double tr2 = f < 1.0 ? m.ceff2.ramp_time : tr1;

  // Two-ramp skeleton, anchored so an extended first ramp crosses 50 % at
  // the table delay: ramp 1 (slope vdd/tr1) from t_a = delay1 - tr1/2 to the
  // breakpoint at f*vdd, ramp 2 (slope vdd/tr2) from there to the rail.
  const double t_break = delay1 + (f - 0.5) * tr1;
  out.delay = f < 0.5 ? delay1 + (0.5 - f) * (tr2 - tr1) : delay1;
  if (f >= 0.9) {
    out.slew_10_90 = 0.8 * tr1;
  } else if (f >= 0.1) {
    out.slew_10_90 = (f - 0.1) * tr1 + (0.9 - f) * tr2;
  } else {
    out.slew_10_90 = 0.8 * tr2;
  }

  m.f = f;
  m.admittance = fit;
  m.t50 = out.delay;
  if (f < 1.0) {
    m.kind = core::ModelKind::two_ramp;
    m.waveform = wave::Pwl({{delay1 - 0.5 * tr1, 0.0},
                            {t_break, f * m.vdd},
                            {t_break + (1.0 - f) * tr2, m.vdd}});
  } else {
    m.kind = core::ModelKind::one_ramp;
    m.waveform = wave::ramp(delay1 - 0.5 * tr1, tr1, 0.0, m.vdd);
  }
  return out;
}

double noise_bound(const net::CoupledGroup& group, std::size_t victim, double vdd) {
  const double cc = group.coupling_capacitance_at(victim);
  if (cc <= 0.0) return 0.0;
  const double cg = group.net_at(victim).total_capacitance();
  return vdd * cc / (cc + cg);
}

}  // namespace rlceff::tier
