// Tier A: the closed-form analytical screen.
//
// The million-net common case is an RC-dominated net whose delay and slew a
// static timing engine can read straight off the cell tables — provided the
// load it looks up is the *shielded* effective capacitance, not the raw
// total.  This tier computes that estimate without the full model flow (no
// Series cascade, no waveform synthesis, no crossing search):
//
//   1. the first five driving-point admittance moments come from the
//      flattened lumped-ladder walk (moments::fast_net_admittance, two array
//      sweeps per order) and feed the same Eq 3 rational fit and closed-form
//      charge model the Ceff flow uses — so Tier A's shielded capacitances
//      sit on top of Tier B's by construction,
//   2. a secant fixed point (run at a loose table-level tolerance) converges
//      Ceff over the same windows the Ceff flow uses, with the same model
//      selection in the same order: nets with a flight time solve the Eq 1
//      breakpoint window f = Z0/(Z0+Rs) first and evaluate the Eq 9 criteria
//      at that converged ramp time; unless the criteria fire, the estimate
//      falls back to one Ceff over the whole transition (core::ceff_single),
//      which is also where pure-RC nets start,
//   3. delay is the table value at Ceff1; for f < 1/2 the 50 % crossing sits
//      on the second ramp, so the two-ramp skeleton adds (1/2 - f)(Tr2 - Tr1)
//      with Tr2 read at the long-window Ceff2.  Slew falls out of the same
//      skeleton's 10/90 crossings.  The emitted waveform is that one- or
//      two-ramp PWL directly — no sampling, no crossing search.
//
// What Tier A skips relative to Tier B: the synthesized driver waveform, the
// simulated near/far-end measurement, pushout, and solver fallbacks — its
// delay/slew are pure table reads at the shielded load.
//
// The Eq 9 criteria double as the router's refusal signal: nets where
// transmission-line effects make a shielded-capacitance table lookup wrong
// are exactly the ones the screen hands to the denser tiers, so the two-ramp
// branch here only serves forced-Tier-A calibration runs.
//
// For coupled slots the tier adds the classical charge-sharing bound on the
// quiet-victim crosstalk peak, vdd * Cc / (Cc + Cg): the worst-case peak for
// an instantaneous aggressor edge, an upper bound on the simulated peak.
#ifndef RLCEFF_TIER_ANALYTICAL_H
#define RLCEFF_TIER_ANALYTICAL_H

#include <cstddef>

#include "core/driver_model.h"
#include "moments/admittance.h"
#include "net/net.h"

namespace rlceff::net {
class CoupledGroup;
}

namespace rlceff::tier {

struct AnalyticalEstimate {
  // Closed-form model, shaped exactly like the Ceff flow's output (ceff1 /
  // ceff2 holding the windowed shielded capacitances) so Response consumers
  // see the same structure whichever tier served them.
  core::DriverOutputModel model;

  double delay = 0.0;       // modeled 50 % crossing (gate delay) [s]
  double slew_10_90 = 0.0;  // modeled 10-90 transition [s]

  double shield_tau = 0.0;  // single-pole constant -m2/m1 [s]
  double shielding = 1.0;   // Ceff1 / Ctotal in (0, 1]

  net::NetMetrics metrics;  // relaxed dominant-path metrics (z0 == 0 for RC)
};

// The closed-form estimate.  Uses net::Net::metrics_relaxed, so pure-RC nets
// (the tier's best customers) are fine; throws only when the net is empty or
// has no capacitance.  model.criteria is evaluated when the net has an L-C
// path and reports not-significant otherwise.
AnalyticalEstimate analytical_estimate(const charlib::CharacterizedDriver& driver,
                                       double input_slew, const net::Net& net);

// Charge-sharing upper bound on the quiet-victim crosstalk peak:
// vdd * Cc / (Cc + Cg) with Cc the coupling capacitance attached to the
// victim and Cg the victim net's own total capacitance.  Returns 0 for an
// uncoupled victim.
double noise_bound(const net::CoupledGroup& group, std::size_t victim, double vdd);

// The shield factor g(x) = 1 - (1 - e^-x) / x in (0, 1), monotone in
// x = T / tau (exposed for tests; g -> 1 as the window stretches, -> x/2 as
// it sharpens).
double shield_factor(double x);

}  // namespace rlceff::tier

#endif  // RLCEFF_TIER_ANALYTICAL_H
