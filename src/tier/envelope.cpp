#include "tier/envelope.h"

#include <cmath>

namespace rlceff::tier {

namespace {

// Calibrated 2026-08 against the testkit random fleet (seed 0x20030603,
// bench/randomized_fleet --calibrate on 256 nets; worst error vs the
// dense transient reference plus ~25-35 % margin for deck-discretization
// and fleet-composition drift).  These are honest model-vs-silicon widths:
// both Ceff-based tiers share the paper's two-ramp approximation and the
// Miller decoupling of coupled victims, so their envelopes are of the same
// order — the reference tier alone is exact.  The coupled analytical
// noise_abs is dominated by mutual inductance: the charge-sharing bound
// vdd*Cc/(Cc+Cg) misses the inductive component (worst observed 0.143 V),
// and mutual-L groups are deliberately admitted (see tier/router.h).
constexpr Envelope kAnalyticalSingle{0.75, 130e-12, 0.90, 320e-12, 0.0};
constexpr Envelope kAnalyticalCoupled{0.75, 130e-12, 0.90, 300e-12, 0.20};
constexpr Envelope kCeffSingle{0.85, 120e-12, 3.00, 250e-12, 0.0};
constexpr Envelope kCeffCoupled{1.50, 130e-12, 1.90, 400e-12, 0.05};

}  // namespace

Envelope envelope(Tier tier, bool coupled) {
  switch (tier) {
    case Tier::analytical: return coupled ? kAnalyticalCoupled : kAnalyticalSingle;
    case Tier::ceff: return coupled ? kCeffCoupled : kCeffSingle;
    case Tier::reference: return Envelope{};
  }
  return Envelope{};
}

bool within(double value, double reference, double rel, double abs) {
  return std::abs(value - reference) <= rel * std::abs(reference) + abs;
}

EnvelopeCheck check_envelope(const Envelope& env, double delay, double slew,
                             double ref_delay, double ref_slew, double noise,
                             double ref_noise) {
  EnvelopeCheck out;
  out.delay_ok = within(delay, ref_delay, env.delay_rel, env.delay_abs);
  out.slew_ok = within(slew, ref_slew, env.slew_rel, env.slew_abs);
  if (noise >= 0.0 && ref_noise >= 0.0) {
    // The tier figure is a bound: it may over-state the peak freely but must
    // not under-state it by more than the margin.
    out.noise_ok = noise >= ref_noise - env.noise_abs;
  }
  return out;
}

}  // namespace rlceff::tier
