// Calibrated accuracy envelopes for the cheaper tiers.
//
// Each envelope states how far a tier's delay/slew may sit from the Tier C
// transient reference before the result counts as a violation:
//
//   |tier - reference| <= rel * |reference| + abs        (delay and slew)
//
// and, for coupled slots, that the tier's crosstalk-noise figure must not
// *under*-state the simulated quiet-victim peak by more than noise_abs
// (Tier A's charge-sharing bound is a true upper bound; the margin absorbs
// discretization of the reference deck).
//
// The numbers are calibrated offline against the testkit random fleet
// (bench/randomized_fleet.cpp --calibrate prints observed worst cases) and
// checked in here with margin; the TierEnvelope property family and the CI
// fleet gate hold every release to them.  They are intentionally NOT tight:
// they are the contract "results routed to this tier are at worst this
// wrong", not the typical error (which the bench reports separately).
#ifndef RLCEFF_TIER_ENVELOPE_H
#define RLCEFF_TIER_ENVELOPE_H

#include "tier/tier.h"

namespace rlceff::tier {

struct Envelope {
  double delay_rel = 0.0;  // relative delay tolerance vs Tier C
  double delay_abs = 0.0;  // absolute delay floor [s]
  double slew_rel = 0.0;   // relative slew tolerance vs Tier C
  double slew_abs = 0.0;   // absolute slew floor [s]
  double noise_abs = 0.0;  // coupled only: max under-statement of the peak [V]
};

// The checked-in envelope for a tier.  Tier C is the reference itself — its
// envelope is all zeros.  `coupled` selects the coupled-slot table (victim
// delays shift with Miller factors, so the bounds are wider).
Envelope envelope(Tier tier, bool coupled);

// |value - reference| <= rel * |reference| + abs.
bool within(double value, double reference, double rel, double abs);

// Full check of a tier result against the reference figures; noise values
// are ignored for uncoupled slots (pass negatives).
struct EnvelopeCheck {
  bool delay_ok = true;
  bool slew_ok = true;
  bool noise_ok = true;
  bool ok() const { return delay_ok && slew_ok && noise_ok; }
};

EnvelopeCheck check_envelope(const Envelope& env, double delay, double slew,
                             double ref_delay, double ref_slew,
                             double noise = -1.0, double ref_noise = -1.0);

}  // namespace rlceff::tier

#endif  // RLCEFF_TIER_ENVELOPE_H
