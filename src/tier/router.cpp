#include "tier/router.h"

#include "moments/admittance.h"
#include "net/coupled.h"

namespace rlceff::tier {

Admission admit_analytical(const AnalyticalEstimate& estimate,
                           const RouterOptions& options) {
  if (estimate.model.criteria.significant()) {
    return {false, "inductance_significant"};
  }
  if (!estimate.model.ceff1.converged ||
      (estimate.model.kind == core::ModelKind::two_ramp &&
       !estimate.model.ceff2.converged)) {
    return {false, "fixed_point_stalled"};
  }
  if (estimate.shielding < options.min_shielding) {
    return {false, "deep_shielding"};
  }
  return {};
}

Admission admit_group_analytical(const net::CoupledGroup& group, std::size_t victim,
                                 const RouterOptions& options) {
  // Mutual inductance is deliberately NOT a refusal: the Miller-decoupled
  // victim that Tier A models is the same one Tier B models, and both drop
  // the mutual terms — escalating A -> B buys no accuracy there (measured on
  // the random fleet: identical worst-case error), only the transient
  // reference captures the inductive return path and balanced never escalates
  // B -> C for it either.  The calibrated coupled envelope covers the shared
  // approximation.
  const double cc = group.coupling_capacitance_at(victim);
  if (cc > 0.0) {
    const double cg = group.net_at(victim).total_capacitance();
    if (cc / (cc + cg) > options.max_coupling_fraction) {
      return {false, "coupling_heavy"};
    }
  }
  return {};
}

Admission admit_analytical_static(const net::Net& net, double driver_resistance,
                                  double input_slew,
                                  const RouterOptions& options) {
  const net::NetMetrics metrics = net.metrics_relaxed();
  if (metrics.time_of_flight > 0.0 && driver_resistance > 0.0 &&
      input_slew > 0.0) {
    const core::InductanceCriteria criteria = core::evaluate_criteria(
        metrics.z0, metrics.time_of_flight, metrics.path_resistance,
        metrics.wire_capacitance, metrics.path_load, driver_resistance,
        input_slew);
    if (criteria.significant()) return {false, "inductance_significant"};
  }
  if (input_slew > 0.0) {
    const moments::PiLoad pi = moments::shield_pi(net);
    const double tau = pi.r * pi.c_far;
    const double shielded =
        tau > 0.0 ? pi.c_near + pi.c_far * shield_factor(input_slew / tau)
                  : pi.c_total;
    const double shielding = pi.c_total > 0.0 ? shielded / pi.c_total : 1.0;
    if (shielding < options.min_shielding) return {false, "deep_shielding"};
  }
  return {};
}

Tier route(TierPolicy policy, const Admission& admission, bool request_reference) {
  switch (policy) {
    case TierPolicy::reference:
      return request_reference ? Tier::reference : Tier::ceff;
    case TierPolicy::balanced:
    case TierPolicy::fastest:
      return admission.ok ? Tier::analytical : Tier::ceff;
    case TierPolicy::force_analytical: return Tier::analytical;
    case TierPolicy::force_ceff: return Tier::ceff;
    case TierPolicy::force_reference: return Tier::reference;
  }
  return Tier::ceff;
}

}  // namespace rlceff::tier
