// The tier router: applicability predicates deciding which tier serves a
// request.
//
// Routing is conservative by construction — the cheap tier must *prove* it
// applies, otherwise the request escalates:
//
//   Tier A is refused when
//     * the Eq 9 inductance criteria hold (transmission-line response needs
//       the two-ramp flow; a single shielded capacitance misses the plateau),
//     * shielding is deep (Ceff / Ctotal below min_shielding: when almost the
//       whole load hides behind the shield, the screen's pure table read
//       drifts from the simulated near-end waveform that defines Tier B;
//       the floor is low because the screen shares Tier B's 5-moment charge
//       model and tracks it well into heavy shielding),
//     * a coupled victim's coupling fraction Cc / (Cc + Cg) exceeds
//       max_coupling_fraction (Miller decoupling error grows with it).
//       Mutual inductance alone does not refuse: Tier A and Tier B model the
//       same Miller-decoupled victim and both drop the mutual terms, so the
//       escalation would buy nothing (see admit_group_analytical).
//
//   Tier B escalates to Tier C when its Ceff fixed point cannot converge
//   (api::Engine catches the convergence failure under TierPolicy::balanced).
//
// admit_analytical screens a computed estimate (the engine path);
// admit_analytical_static screens from the topology plus the caller's driver
// context alone — no cell tables — using the input slew as the transition
// proxy, which is what lint::solver_advisory runs before any solve exists.
#ifndef RLCEFF_TIER_ROUTER_H
#define RLCEFF_TIER_ROUTER_H

#include <cstddef>

#include "tier/analytical.h"
#include "tier/tier.h"

namespace rlceff::net {
class CoupledGroup;
}

namespace rlceff::tier {

struct RouterOptions {
  double min_shielding = 0.05;         // Ceff/Ctotal floor for Tier A
  double max_coupling_fraction = 0.4;  // Cc/(Cc+Cg) ceiling for coupled Tier A
};

struct Admission {
  bool ok = true;
  // "" when admitted; otherwise a stable tag naming the failed predicate:
  // "inductance_significant", "deep_shielding", "fixed_point_stalled",
  // "coupling_heavy"; the engine adds "estimate_failed" when the closed
  // form itself throws.
  const char* reason = "";
};

// Tier A screen on a computed estimate (single-net part; coupled requests
// additionally pass the group screen below for the victim).
Admission admit_analytical(const AnalyticalEstimate& estimate,
                           const RouterOptions& options = {});

// The coupled-group part of the Tier A screen for one victim.
Admission admit_group_analytical(const net::CoupledGroup& group, std::size_t victim,
                                 const RouterOptions& options = {});

// Table-free screen for static analysis: same predicates, with the input
// slew standing in for the driver output transition (rs likewise an
// estimate, e.g. lint::estimate_driver_resistance).  Pass
// driver_resistance <= 0 to skip the criteria predicate (no driver context).
Admission admit_analytical_static(const net::Net& net, double driver_resistance,
                                  double input_slew,
                                  const RouterOptions& options = {});

// The tier a policy routes to given the Tier A admission verdict.  Balanced
// and fastest take analytical when admitted and ceff otherwise (balanced's
// further ceff -> reference escalation is a runtime event, not a routing
// decision); forced policies ignore the admission.  TierPolicy::reference
// maps to ceff / reference by the request's own reference flag — pass it.
Tier route(TierPolicy policy, const Admission& admission, bool request_reference);

}  // namespace rlceff::tier

#endif  // RLCEFF_TIER_ROUTER_H
