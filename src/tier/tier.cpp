#include "tier/tier.h"

#include <cstring>

namespace rlceff::tier {

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::analytical: return "analytical";
    case Tier::ceff: return "ceff";
    case Tier::reference: return "reference";
  }
  return "ceff";
}

char tier_letter(Tier tier) {
  switch (tier) {
    case Tier::analytical: return 'a';
    case Tier::ceff: return 'b';
    case Tier::reference: return 'c';
  }
  return 'b';
}

const char* to_string(TierPolicy policy) {
  switch (policy) {
    case TierPolicy::reference: return "reference";
    case TierPolicy::balanced: return "balanced";
    case TierPolicy::fastest: return "fastest";
    case TierPolicy::force_analytical: return "force_analytical";
    case TierPolicy::force_ceff: return "force_ceff";
    case TierPolicy::force_reference: return "force_reference";
  }
  return "reference";
}

bool parse_tier_policy(const char* text, TierPolicy& out) {
  struct Spelling {
    const char* name;
    TierPolicy policy;
  };
  static constexpr Spelling kSpellings[] = {
      {"reference", TierPolicy::reference},
      {"balanced", TierPolicy::balanced},
      {"fastest", TierPolicy::fastest},
      {"force_analytical", TierPolicy::force_analytical},
      {"force_ceff", TierPolicy::force_ceff},
      {"force_reference", TierPolicy::force_reference},
      {"a", TierPolicy::force_analytical},
      {"b", TierPolicy::force_ceff},
      {"c", TierPolicy::force_reference},
  };
  for (const Spelling& s : kSpellings) {
    if (std::strcmp(text, s.name) == 0) {
      out = s.policy;
      return true;
    }
  }
  return false;
}

}  // namespace rlceff::tier
