// The multi-fidelity estimation cascade (tiers), cheapest first.
//
// ROADMAP open item 1: a chip-scale timing run cannot afford the moments +
// Ceff fixed point — let alone a transient — for every net.  The cascade
// routes the common case to a closed-form screen and reserves the expensive
// estimators for the nets that need them:
//   * Tier A (analytical) — closed-form Elmore/single-pole shielding from
//     the driving-point moments plus NLDM table lookups; microsecond-free
//     (no fixed point, no waveform measurement).  See tier/analytical.h.
//   * Tier B (ceff)       — the paper's moments/AWE + Ceff one/two-ramp
//     model (core::model_driver_output): the existing production path.
//   * Tier C (reference)  — the full (coupled) transient reference
//     simulation (core::run_experiment / run_coupled_experiment).
// tier/router.h decides which tier serves a request; tier/envelope.h holds
// the offline-calibrated accuracy envelope each cheaper tier is held to.
//
// This header is dependency-free on purpose: api/request.h and lint/lint.h
// both embed the enums, and neither may drag the estimator code in.
#ifndef RLCEFF_TIER_TIER_H
#define RLCEFF_TIER_TIER_H

namespace rlceff::tier {

enum class Tier {
  analytical,  // Tier A: closed-form shielded-Ceff table estimate
  ceff,        // Tier B: moments + Ceff fixed point (the paper's flow)
  reference,   // Tier C: transient reference simulation
};

// How a Request wants the cascade used.  `reference` is the default and
// bypasses the cascade entirely — requests behave exactly as they did before
// the tier subsystem existed (bitwise, enforced by the property harness).
enum class TierPolicy {
  reference,         // no routing; Request::reference decides as before
  balanced,          // cheapest tier whose calibrated envelope admits the
                     // request; escalates A -> B on the applicability screen
                     // and B -> C when the Ceff fixed point cannot agree
                     // with itself (convergence failure)
  fastest,           // Tier A when admitted, Tier B otherwise; never C
  force_analytical,  // pin Tier A (testing/calibration; skips admission)
  force_ceff,        // pin Tier B
  force_reference,   // pin Tier C (serves the full reference experiment)
};

// "analytical" / "ceff" / "reference".
const char* to_string(Tier tier);
// Single-letter tag used by bench metrics and CLI summaries: 'a'/'b'/'c'.
char tier_letter(Tier tier);
// "reference" / "balanced" / "fastest" / "force_analytical" / ...
const char* to_string(TierPolicy policy);
// Parses the CLI spellings: the full names above plus the shorthands
// "a"/"b"/"c" for the forced tiers.  Returns false on unknown input.
bool parse_tier_policy(const char* text, TierPolicy& out);

}  // namespace rlceff::tier

#endif  // RLCEFF_TIER_TIER_H
