// Cooperative execution budgets: deadlines, step/iteration budgets, and
// cancellation for the whole stack.
//
// An ExecBudget is the declarative spec a caller attaches to a request: an
// optional wall-clock limit, a transient step budget, per-loop iteration
// sub-budgets, and an optional CancelToken.  An ExecTracker arms that spec
// at slot start and is threaded *by pointer* down through the option structs
// (api::Request -> sim::TransientOptions / core::CeffIterationOptions /
// util::FixedPointOptions / util::SolveOptions); the step and iteration
// loops call its cheap checkpoints so an exceeded budget surfaces as a
// DeadlineError / BudgetError promptly instead of running the loop out.
//
// Cost contract: with no budget attached (the default everywhere) every
// checkpoint is a single predictable branch, so unbudgeted runs are
// unaffected.  An armed deadline reads the steady clock once per checkpoint;
// checkpoints sit at loop granularity (one transient step, one Newton or
// fixed-point iteration), each of which costs far more than a clock read.
//
// Iteration-cap precedence (the library's one shared vocabulary for loop
// ceilings, see iter_defaults below): every iterative loop runs at most
//   min(its per-call option max_iter, every applicable positive sub-budget)
// iterations.  When the *budget* is the binding cap and the loop still has
// not converged, the loop raises BudgetError (resource exhaustion); when the
// per-call option is binding, the loop keeps its historical behavior
// (ConvergenceError from brent/Newton, a converged=false result from the
// Ceff fixed points).
//
// Threading: one ExecTracker belongs to one slot and is checked from that
// slot's worker thread only.  The CancelToken is the only cross-thread
// piece: it is a shared atomic flag, safe to set from any thread (e.g. a
// server's admission controller) while workers poll it.
#ifndef RLCEFF_UTIL_BUDGET_H
#define RLCEFF_UTIL_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "util/error.h"

namespace rlceff {

// Raised when a wall-clock deadline expires (or a CancelToken fires, see
// CancelledError).  Maps to api::ErrorCode::deadline_exceeded.
class DeadlineError : public Error {
public:
  explicit DeadlineError(const std::string& what) : Error(what) {}
};

// Raised when a countable resource budget (transient steps, iteration
// sub-budgets) is exhausted.  Maps to api::ErrorCode::resource_exhausted.
class BudgetError : public Error {
public:
  explicit BudgetError(const std::string& what) : Error(what) {}
};

// Cancellation is "the caller ran out of time for this answer", so it is a
// DeadlineError (same api::ErrorCode) with a distinguishable type: the
// engine's degradation ladder must not spend further work on a cancelled
// slot, while a plain deadline may still buy a cheaper estimate.
class CancelledError : public DeadlineError {
public:
  explicit CancelledError(const std::string& what) : DeadlineError(what) {}
};

namespace util {

// Shared cancellation flag.  Default-constructed tokens are null: never
// cancelled, cost one branch to poll.  source() makes a real token whose
// copies all observe the same flag.
class CancelToken {
public:
  CancelToken() = default;

  static CancelToken source() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  bool valid() const { return flag_ != nullptr; }

  // Requests cancellation; safe from any thread, no-op on a null token.
  void request_cancel() const {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  bool cancel_requested() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// The default iteration ceilings of every iterative loop in the library, in
// one place (they used to be unrelated magic numbers in three headers).
// These are the *per-call option* defaults; ExecBudget sub-budgets can only
// tighten them (see the precedence note at the top of this header).
namespace iter_defaults {
inline constexpr int brent = 200;        // util::SolveOptions::max_iter
inline constexpr int fixed_point = 100;  // util::FixedPointOptions::max_iter
inline constexpr int ceff = 60;          // core::CeffIterationOptions::max_iter
inline constexpr int newton = 100;       // sim::TransientOptions::max_newton
}  // namespace iter_defaults

// min(base, every positive cap); caps <= 0 mean "no cap".
inline int capped_iterations(int base, int cap1 = 0, int cap2 = 0) {
  int m = base;
  if (cap1 > 0 && cap1 < m) m = cap1;
  if (cap2 > 0 && cap2 < m) m = cap2;
  return m;
}

// Declarative budget spec.  Zero / negative limits and a null token mean
// "unlimited" for that dimension; a default ExecBudget is fully unlimited.
struct ExecBudget {
  double wall_limit_s = 0.0;             // wall-clock limit from arm time
  std::int64_t max_transient_steps = 0;  // accepted time steps across all sims
  int max_ceff_iter = 0;                 // per Ceff <-> table fixed point
  int max_newton_iter = 0;               // per Newton solve
  int max_solver_iter = 0;               // per util::brent / util::fixed_point
  CancelToken cancel;

  bool limited() const {
    return wall_limit_s > 0.0 || max_transient_steps > 0 || max_ceff_iter > 0 ||
           max_newton_iter > 0 || max_solver_iter > 0 || cancel.valid();
  }
};

// A budget armed at a start instant, checked cooperatively from the loops of
// one slot.  Not thread-safe (per-slot, single worker); only the embedded
// CancelToken may be touched from other threads.
class ExecTracker {
public:
  ExecTracker() = default;  // unlimited: every checkpoint is one branch
  explicit ExecTracker(const ExecBudget& spec) { arm(spec); }

  // (Re)arms the spec with the deadline measured from now.
  void arm(const ExecBudget& spec) {
    spec_ = spec;
    limited_ = spec.limited();
    steps_used_ = 0;
    if (spec_.wall_limit_s > 0.0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(spec_.wall_limit_s));
      has_deadline_ = true;
    } else {
      has_deadline_ = false;
    }
  }

  const ExecBudget& spec() const { return spec_; }
  bool limited() const { return limited_; }
  std::int64_t steps_used() const { return steps_used_; }

  // Checkpoint: raises CancelledError / DeadlineError when the token fired
  // or the deadline passed.  `where` names the loop for the error message.
  void check(const char* where) {
    if (!limited_) return;
    if (spec_.cancel.cancel_requested()) {
      throw CancelledError(std::string(where) + ": cancelled by caller");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
      throw DeadlineError(std::string(where) + ": deadline of " +
                          std::to_string(spec_.wall_limit_s * 1e3) + " ms exceeded");
    }
  }

  // Step-loop checkpoint: charges `n` accepted transient steps against
  // max_transient_steps, then runs check().
  void charge_transient_steps(std::int64_t n, const char* where) {
    if (!limited_) return;
    steps_used_ += n;
    if (spec_.max_transient_steps > 0 && steps_used_ > spec_.max_transient_steps) {
      throw BudgetError(std::string(where) + ": transient step budget of " +
                        std::to_string(spec_.max_transient_steps) + " exhausted");
    }
    check(where);
  }

private:
  ExecBudget spec_;
  std::chrono::steady_clock::time_point deadline_{};
  std::int64_t steps_used_ = 0;
  bool has_deadline_ = false;
  bool limited_ = false;
};

}  // namespace util
}  // namespace rlceff

#endif  // RLCEFF_UTIL_BUDGET_H
