// Error handling for the rlceff library.
//
// All recoverable failures (bad arguments, non-convergence, singular systems)
// are reported by throwing Error.  ensure() is the library-wide precondition
// check; it captures the call site via std::source_location so no macro is
// needed.
#ifndef RLCEFF_UTIL_ERROR_H
#define RLCEFF_UTIL_ERROR_H

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rlceff {

// Base exception for every failure the library raises on purpose.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Raised when an iterative method fails to converge within its budget.
class ConvergenceError : public Error {
public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

// Raised when a linear system is singular (or numerically so).
class SingularMatrixError : public Error {
public:
  explicit SingularMatrixError(const std::string& what) : Error(what) {}
};

// Throws Error annotated with the caller's location when cond is false.
inline void ensure(bool cond, std::string_view message,
                   std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                ": " + std::string(message));
  }
}

}  // namespace rlceff

#endif  // RLCEFF_UTIL_ERROR_H
