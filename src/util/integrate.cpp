#include "util/integrate.h"

#include <cmath>

#include "util/error.h"

namespace rlceff::util {

namespace {

double simpson(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double b, double fa,
                double fm, double fb, double whole, int depth,
                const QuadratureOptions& opt) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  const double tol = std::max(opt.abs_tol, opt.rel_tol * std::abs(left + right));
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, m, fa, flm, fm, left, depth - 1, opt) +
         adaptive(f, m, b, fm, frm, fb, right, depth - 1, opt);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 const QuadratureOptions& opt) {
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(0.5 * (a + b));
  const double whole = simpson(fa, fm, fb, b - a);
  return adaptive(f, a, b, fa, fm, fb, whole, opt.max_depth, opt);
}

}  // namespace rlceff::util
