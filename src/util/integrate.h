// Numerical quadrature.
//
// The paper's Eq 5/7 charge integrals have closed forms (implemented in
// rlceff::core); adaptive Simpson is the independent cross-check used by the
// test suite and the fallback for arbitrary integrands.
#ifndef RLCEFF_UTIL_INTEGRATE_H
#define RLCEFF_UTIL_INTEGRATE_H

#include <functional>

namespace rlceff::util {

struct QuadratureOptions {
  double rel_tol = 1e-10;
  double abs_tol = 1e-18;
  int max_depth = 40;
};

// Adaptive Simpson integration of f over [a, b].
double integrate(const std::function<double(double)>& f, double a, double b,
                 const QuadratureOptions& opt = {});

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_INTEGRATE_H
