#include "util/linalg.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rlceff::util {

namespace {
constexpr double pivot_floor = 1e-300;
}  // namespace

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), a_(rows * cols, 0.0) {}

void DenseMatrix::set_zero() { std::fill(a_.begin(), a_.end(), 0.0); }

LuFactors lu_factor(const DenseMatrix& a) {
  LuFactors f;
  lu_factor_into(a, f);
  return f;
}

void lu_factor_into(const DenseMatrix& a, LuFactors& f) {
  ensure(a.rows() == a.cols(), "lu_factor: matrix must be square");
  const std::size_t n = a.rows();
  f.lu = a;  // same-shape copy reuses the workspace's storage
  f.perm.resize(n);
  DenseMatrix& lu = f.lu;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t prow = k;
    double pmax = std::abs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu(i, k));
      if (v > pmax) {
        pmax = v;
        prow = i;
      }
    }
    if (pmax < pivot_floor) throw SingularMatrixError("lu_factor: singular matrix");
    f.perm[k] = prow;
    if (prow != k) {
      // Swap only the active columns: the stored multipliers are per-step
      // elimination records, and lu_solve replays swap-then-eliminate in the
      // same order.  Swapping the L part too would break that replay.
      for (std::size_t j = k; j < n; ++j) std::swap(lu(k, j), lu(prow, j));
    }
    const double inv = 1.0 / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu(i, k) * inv;
      lu(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= m * lu(k, j);
    }
  }
}

std::vector<double> lu_solve(const LuFactors& f, std::span<const double> b) {
  ensure(b.size() == f.lu.rows(), "lu_solve: rhs size mismatch");
  std::vector<double> x(b.begin(), b.end());
  lu_solve_into(f, x);
  return x;
}

void lu_solve_into(const LuFactors& f, std::span<double> x) {
  const std::size_t n = f.lu.rows();
  ensure(x.size() == n, "lu_solve: rhs size mismatch");

  for (std::size_t k = 0; k < n; ++k) {
    std::swap(x[k], x[f.perm[k]]);
    for (std::size_t i = k + 1; i < n; ++i) x[i] -= f.lu(i, k) * x[k];
  }
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t j = k + 1; j < n; ++j) x[k] -= f.lu(k, j) * x[j];
    x[k] /= f.lu(k, k);
  }
}

void lu_solve_block(const LuFactors& f, std::span<double> x, std::size_t lanes,
                    std::size_t stride) {
  const std::size_t n = f.lu.rows();
  ensure(lanes > 0 && lanes <= stride, "lu_solve_block: bad lane count");
  ensure(x.size() == n * stride, "lu_solve_block: rhs block size mismatch");

  // __restrict row pointers: distinct rows of x are disjoint, letting the
  // lane loops vectorize (see BandedMatrix::solve_block).
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = f.perm[k];
    double* __restrict xk = &x[k * stride];
    if (p != k) {
      double* __restrict xp = &x[p * stride];
      for (std::size_t s = 0; s < lanes; ++s) std::swap(xk[s], xp[s]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = f.lu(i, k);
      double* __restrict xi = &x[i * stride];
      for (std::size_t s = 0; s < lanes; ++s) xi[s] -= m * xk[s];
    }
  }
  for (std::size_t k = n; k-- > 0;) {
    double* __restrict xk = &x[k * stride];
    for (std::size_t j = k + 1; j < n; ++j) {
      const double m = f.lu(k, j);
      const double* __restrict xj = &x[j * stride];
      for (std::size_t s = 0; s < lanes; ++s) xk[s] -= m * xj[s];
    }
    const double d = f.lu(k, k);
    for (std::size_t s = 0; s < lanes; ++s) xk[s] /= d;
  }
}

std::vector<double> solve_dense(const DenseMatrix& a, std::span<const double> b) {
  return lu_solve(lu_factor(a), b);
}

BandedMatrix::BandedMatrix(std::size_t n, std::size_t lower, std::size_t upper)
    : n_(n),
      kl_(lower),
      ku_(upper),
      ku_tot_(upper + lower),
      ld_(2 * lower + upper + 1),
      ab_(n * ld_, 0.0),
      pivot_(n, 0) {
  ensure(n > 0, "BandedMatrix: empty matrix");
}

bool BandedMatrix::in_band(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) return false;
  if (r >= c) return r - c <= kl_;
  return c - r <= ku_;
}

double& BandedMatrix::at(std::size_t r, std::size_t c) {
  return ab_[c * ld_ + (ku_tot_ + r - c)];
}

double BandedMatrix::at(std::size_t r, std::size_t c) const {
  return ab_[c * ld_ + (ku_tot_ + r - c)];
}

void BandedMatrix::add(std::size_t r, std::size_t c, double v) {
  ensure(!factored_, "BandedMatrix: modifying a factored matrix");
  ensure(in_band(r, c), "BandedMatrix: entry outside declared band");
  at(r, c) += v;
}

double BandedMatrix::get(std::size_t r, std::size_t c) const {
  if (r >= c ? (r - c > kl_) : (c - r > ku_tot_)) return 0.0;
  return at(r, c);
}

void BandedMatrix::set_zero() {
  std::fill(ab_.begin(), ab_.end(), 0.0);
  factored_ = false;
}

void BandedMatrix::copy_values_from(const BandedMatrix& other) {
  ensure(n_ == other.n_ && kl_ == other.kl_ && ku_ == other.ku_,
         "BandedMatrix: copy_values_from shape mismatch");
  ensure(!other.factored_, "BandedMatrix: copying from a factored matrix");
  std::copy(other.ab_.begin(), other.ab_.end(), ab_.begin());
  factored_ = false;
}

void BandedMatrix::factor() {
  ensure(!factored_, "BandedMatrix: already factored");
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t ilast = std::min(n_ - 1, k + kl_);
    std::size_t prow = k;
    double pmax = std::abs(at(k, k));
    for (std::size_t i = k + 1; i <= ilast; ++i) {
      const double v = std::abs(at(i, k));
      if (v > pmax) {
        pmax = v;
        prow = i;
      }
    }
    if (pmax < pivot_floor) throw SingularMatrixError("BandedMatrix: singular matrix");
    pivot_[k] = prow;
    const std::size_t jlast = std::min(n_ - 1, k + ku_tot_);
    if (prow != k) {
      for (std::size_t j = k; j <= jlast; ++j) std::swap(at(k, j), at(prow, j));
    }
    const double inv = 1.0 / at(k, k);
    for (std::size_t i = k + 1; i <= ilast; ++i) {
      const double m = at(i, k) * inv;
      at(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j <= jlast; ++j) at(i, j) -= m * at(k, j);
    }
  }
  factored_ = true;
}

std::vector<double> BandedMatrix::solve(std::span<const double> b) const {
  ensure(b.size() == n_, "BandedMatrix: rhs size mismatch");
  std::vector<double> x(b.begin(), b.end());
  solve_into(x);
  return x;
}

void BandedMatrix::solve_into(std::span<double> x) const {
  ensure(factored_, "BandedMatrix: solve before factor");
  ensure(x.size() == n_, "BandedMatrix: rhs size mismatch");

  for (std::size_t k = 0; k < n_; ++k) {
    std::swap(x[k], x[pivot_[k]]);
    const std::size_t ilast = std::min(n_ - 1, k + kl_);
    for (std::size_t i = k + 1; i <= ilast; ++i) x[i] -= at(i, k) * x[k];
  }
  for (std::size_t k = n_; k-- > 0;) {
    const std::size_t jlast = std::min(n_ - 1, k + ku_tot_);
    for (std::size_t j = k + 1; j <= jlast; ++j) x[k] -= at(k, j) * x[j];
    x[k] /= at(k, k);
  }
}

void BandedMatrix::solve_block(std::span<double> x, std::size_t lanes,
                               std::size_t stride) const {
  ensure(factored_, "BandedMatrix: solve before factor");
  ensure(lanes > 0 && lanes <= stride, "BandedMatrix: bad lane count");
  ensure(x.size() == n_ * stride, "BandedMatrix: rhs block size mismatch");

  // Row pointers are __restrict so the lane loops vectorize: distinct row
  // indices address disjoint stride-sized rows of x, which the compiler
  // cannot deduce from the raw spans on its own.
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t p = pivot_[k];
    double* __restrict xk = &x[k * stride];
    if (p != k) {
      double* __restrict xp = &x[p * stride];
      for (std::size_t s = 0; s < lanes; ++s) std::swap(xk[s], xp[s]);
    }
    const std::size_t ilast = std::min(n_ - 1, k + kl_);
    for (std::size_t i = k + 1; i <= ilast; ++i) {
      const double m = at(i, k);
      double* __restrict xi = &x[i * stride];
      for (std::size_t s = 0; s < lanes; ++s) xi[s] -= m * xk[s];
    }
  }
  for (std::size_t k = n_; k-- > 0;) {
    double* __restrict xk = &x[k * stride];
    const std::size_t jlast = std::min(n_ - 1, k + ku_tot_);
    for (std::size_t j = k + 1; j <= jlast; ++j) {
      const double m = at(k, j);
      const double* __restrict xj = &x[j * stride];
      for (std::size_t s = 0; s < lanes; ++s) xk[s] -= m * xj[s];
    }
    const double d = at(k, k);
    for (std::size_t s = 0; s < lanes; ++s) xk[s] /= d;
  }
}

}  // namespace rlceff::util
