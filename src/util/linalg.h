// Dense and banded linear algebra.
//
// The MNA simulator factors one Jacobian per Newton iteration.  For small
// circuits the dense LU is fine; for discretized transmission lines (hundreds
// of unknowns, nearly tridiagonal after RCM ordering) the banded LU keeps a
// transient run at O(n * bandwidth^2) per step.
#ifndef RLCEFF_UTIL_LINALG_H
#define RLCEFF_UTIL_LINALG_H

#include <cstddef>
#include <span>
#include <vector>

namespace rlceff::util {

// Row-major dense matrix.
class DenseMatrix {
public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double operator()(std::size_t r, std::size_t c) const { return a_[r * cols_ + c]; }
  double& operator()(std::size_t r, std::size_t c) { return a_[r * cols_ + c]; }

  void set_zero();

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> a_;
};

// LU factorization with partial pivoting (PA = LU), stored in place.
struct LuFactors {
  DenseMatrix lu;
  std::vector<std::size_t> perm;
};

// Factors a square matrix; throws SingularMatrixError when a pivot vanishes.
LuFactors lu_factor(const DenseMatrix& a);

// Factors into a caller-owned workspace.  When `f` was already sized for an
// n x n system no memory is allocated, so a transient engine can refactor
// every Newton iteration without touching the heap.
void lu_factor_into(const DenseMatrix& a, LuFactors& f);

// Solves A x = b given the factorization of A.
std::vector<double> lu_solve(const LuFactors& f, std::span<const double> b);

// In-place solve: x holds b on entry and the solution on exit.  Allocates
// nothing.
void lu_solve_into(const LuFactors& f, std::span<double> x);

// Blocked multi-RHS solve over one factorization.  `x` is an n x stride
// row-major block holding `lanes` right-hand sides: lane s of unknown i lives
// at x[i * stride + s] (lanes <= stride; the extra columns are untouched).
// Each lane executes exactly the operation sequence of lu_solve_into on that
// lane alone — same swaps, same elimination order — so every lane's result is
// bitwise-identical to an independent single-RHS solve, while the inner loops
// run contiguously across lanes and vectorize.
void lu_solve_block(const LuFactors& f, std::span<double> x, std::size_t lanes,
                    std::size_t stride);

// Convenience: factor and solve in one call.
std::vector<double> solve_dense(const DenseMatrix& a, std::span<const double> b);

// Banded matrix in LAPACK-style band storage with room for pivoting fill.
// Entry (r, c) is stored when |r - c| is within (lower, upper) bandwidth.
class BandedMatrix {
public:
  // n unknowns with `lower` subdiagonals and `upper` superdiagonals.
  BandedMatrix(std::size_t n, std::size_t lower, std::size_t upper);

  std::size_t size() const { return n_; }
  std::size_t lower() const { return kl_; }
  std::size_t upper() const { return ku_; }

  // In-band accumulate; throws if (r, c) is outside the band.
  void add(std::size_t r, std::size_t c, double v);
  double get(std::size_t r, std::size_t c) const;
  bool in_band(std::size_t r, std::size_t c) const;

  void set_zero();

  // Copies the numeric values of `other` (same n/lower/upper shape, not yet
  // factored) into this matrix without allocating.  The result is unfactored,
  // so a cached static assembly can be restored and refactored each Newton
  // iteration at memcpy cost instead of re-stamping every device.
  void copy_values_from(const BandedMatrix& other);

  // Factors in place (partial pivoting, fill confined to kl extra
  // superdiagonals) and solves.  The matrix must have been built with
  // `upper` at least its true upper bandwidth; factorization uses
  // ku_total = ku + kl internally.
  void factor();
  std::vector<double> solve(std::span<const double> b) const;

  // In-place solve: x holds b on entry and the solution on exit.  Allocates
  // nothing, so the per-step cost of a pre-factored system is one O(n * bw)
  // substitution sweep.
  void solve_into(std::span<double> x) const;

  // Blocked multi-RHS solve (see lu_solve_block): `lanes` right-hand sides in
  // an n x stride row-major block, each lane bitwise-identical to solve_into
  // on that lane alone.
  void solve_block(std::span<double> x, std::size_t lanes, std::size_t stride) const;

private:
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::size_t n_;
  std::size_t kl_;
  std::size_t ku_;        // user-declared upper bandwidth
  std::size_t ku_tot_;    // ku_ + kl_ (pivoting fill)
  std::size_t ld_;        // leading dimension of band storage
  bool factored_ = false;
  std::vector<double> ab_;          // band storage, column-major in bands
  std::vector<std::size_t> pivot_;  // row swaps applied during factorization
};

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_LINALG_H
