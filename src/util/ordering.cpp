#include "util/ordering.h"

#include <algorithm>
#include <queue>
#include <set>
#include <utility>

#include "util/error.h"

namespace rlceff::util {

void SparsityGraph::add_edge(std::size_t a, std::size_t b) {
  ensure(a < adj_.size() && b < adj_.size(), "SparsityGraph: vertex out of range");
  if (a == b) return;
  // Keep adjacency lists duplicate-free; degrees drive the BFS tie-break.
  if (std::find(adj_[a].begin(), adj_[a].end(), b) == adj_[a].end()) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
}

std::vector<std::size_t> reverse_cuthill_mckee(const SparsityGraph& g) {
  const std::size_t n = g.size();
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);

  // Vertices sorted by degree; used both to seed components and to break ties.
  std::vector<std::size_t> by_degree(n);
  for (std::size_t v = 0; v < n; ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](std::size_t a, std::size_t b) {
    return g.neighbors(a).size() < g.neighbors(b).size();
  });

  std::queue<std::size_t> frontier;
  for (std::size_t seed : by_degree) {
    if (visited[seed]) continue;
    visited[seed] = true;
    frontier.push(seed);
    while (!frontier.empty()) {
      const std::size_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      std::vector<std::size_t> next;
      for (std::size_t w : g.neighbors(v)) {
        if (!visited[w]) {
          visited[w] = true;
          next.push_back(w);
        }
      }
      std::sort(next.begin(), next.end(), [&](std::size_t a, std::size_t b) {
        return g.neighbors(a).size() < g.neighbors(b).size();
      });
      for (std::size_t w : next) frontier.push(w);
    }
  }

  std::reverse(order.begin(), order.end());
  std::vector<std::size_t> perm(n);
  for (std::size_t pos = 0; pos < n; ++pos) perm[order[pos]] = pos;
  return perm;
}

std::vector<std::size_t> minimum_degree_ordering(const SparsityGraph& g) {
  const std::size_t n = g.size();
  // Working elimination graph: sorted adjacency sets so neighborhood merges
  // and membership tests stay deterministic and cheap at circuit degrees.
  std::vector<std::set<std::size_t>> adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    adj[v].insert(g.neighbors(v).begin(), g.neighbors(v).end());
  }

  // (degree, vertex) heap as an ordered set: min element is the next pivot,
  // smallest index winning ties by the pair ordering.  `degree[w]` mirrors
  // the key currently stored for w so refreshes can erase by exact key.
  std::vector<std::size_t> degree(n);
  std::set<std::pair<std::size_t, std::size_t>> by_degree;
  for (std::size_t v = 0; v < n; ++v) {
    degree[v] = adj[v].size();
    by_degree.insert({degree[v], v});
  }

  std::vector<std::size_t> perm(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t v = by_degree.begin()->second;
    by_degree.erase(by_degree.begin());
    perm[v] = pos;

    // Eliminating v fills in a clique over its remaining neighbors.
    const std::vector<std::size_t> frontier(adj[v].begin(), adj[v].end());
    for (std::size_t w : frontier) adj[w].erase(v);
    for (std::size_t a : frontier) {
      for (std::size_t b : frontier) {
        if (a < b) {
          adj[a].insert(b);
          adj[b].insert(a);
        }
      }
    }
    for (std::size_t w : frontier) {
      by_degree.erase({degree[w], w});
      degree[w] = adj[w].size();
      by_degree.insert({degree[w], w});
    }
    adj[v].clear();
  }
  return perm;
}

std::size_t bandwidth(const SparsityGraph& g, const std::vector<std::size_t>& perm) {
  ensure(perm.size() == g.size(), "bandwidth: permutation size mismatch");
  std::size_t bw = 0;
  for (std::size_t v = 0; v < g.size(); ++v) {
    for (std::size_t w : g.neighbors(v)) {
      const std::size_t a = perm[v];
      const std::size_t b = perm[w];
      bw = std::max(bw, a > b ? a - b : b - a);
    }
  }
  return bw;
}

}  // namespace rlceff::util
