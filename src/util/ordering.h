// Bandwidth-reducing node ordering.
//
// MNA matrices of discretized transmission lines are nearly banded when the
// unknowns are numbered along the line, but netlists are built in arbitrary
// order.  Reverse Cuthill-McKee recovers a small bandwidth so the banded LU
// can be used.
#ifndef RLCEFF_UTIL_ORDERING_H
#define RLCEFF_UTIL_ORDERING_H

#include <cstddef>
#include <vector>

namespace rlceff::util {

// Undirected sparsity graph over n vertices.
class SparsityGraph {
public:
  explicit SparsityGraph(std::size_t n) : adj_(n) {}

  std::size_t size() const { return adj_.size(); }
  void add_edge(std::size_t a, std::size_t b);
  const std::vector<std::size_t>& neighbors(std::size_t v) const { return adj_[v]; }

private:
  std::vector<std::vector<std::size_t>> adj_;
};

// Returns perm such that new_index = perm[old_index].  Starts each component
// from a minimum-degree vertex, performs Cuthill-McKee BFS with neighbors
// visited in increasing degree, and reverses the result.
std::vector<std::size_t> reverse_cuthill_mckee(const SparsityGraph& g);

// Fill-reducing elimination ordering for the sparse LU (AMD-style greedy
// minimum degree on the elimination graph): repeatedly eliminates a vertex
// of minimum current degree (ties broken by smallest vertex index, so the
// ordering is platform-deterministic) and turns its remaining neighborhood
// into a clique.  Returns perm with new_index = perm[old_index], same
// convention as reverse_cuthill_mckee.
std::vector<std::size_t> minimum_degree_ordering(const SparsityGraph& g);

// Bandwidth of the permuted graph: max |perm[a] - perm[b]| over edges.
std::size_t bandwidth(const SparsityGraph& g, const std::vector<std::size_t>& perm);

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_ORDERING_H
