#include "util/poly.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/linalg.h"

namespace rlceff::util {

std::array<Complex, 2> quadratic_roots(double a, double b, double c) {
  ensure(a != 0.0, "quadratic_roots: leading coefficient is zero");
  const double disc = b * b - 4.0 * a * c;
  if (disc >= 0.0) {
    // q = -(b + sign(b)*sqrt(disc))/2 avoids cancellation in the smaller root.
    const double sq = std::sqrt(disc);
    const double q = -0.5 * (b + (b >= 0.0 ? sq : -sq));
    double r1 = 0.0;
    double r2 = 0.0;
    if (q != 0.0) {
      r1 = q / a;
      r2 = c / q;
    } else {
      // b == 0 and c == 0 (disc >= 0 forces c <= 0 when q == 0).
      r1 = std::sqrt(-c / a);
      r2 = -r1;
    }
    return {Complex(r1, 0.0), Complex(r2, 0.0)};
  }
  const double re = -b / (2.0 * a);
  const double im = std::sqrt(-disc) / (2.0 * a);
  return {Complex(re, im), Complex(re, -im)};
}

std::array<Complex, 3> cubic_roots(double a, double b, double c, double d) {
  ensure(a != 0.0, "cubic_roots: leading coefficient is zero");
  // Depressed cubic t^3 + p t + q with x = t - b/(3a).
  const double b1 = b / a;
  const double c1 = c / a;
  const double d1 = d / a;
  const double p = c1 - b1 * b1 / 3.0;
  const double q = 2.0 * b1 * b1 * b1 / 27.0 - b1 * c1 / 3.0 + d1;
  const double shift = -b1 / 3.0;
  const double disc = q * q / 4.0 + p * p * p / 27.0;

  std::array<Complex, 3> roots;
  if (disc > 0.0) {
    const double sq = std::sqrt(disc);
    const double u = std::cbrt(-q / 2.0 + sq);
    const double v = std::cbrt(-q / 2.0 - sq);
    const double t0 = u + v;
    roots[0] = Complex(t0 + shift, 0.0);
    const double re = -t0 / 2.0;
    const double im = std::sqrt(3.0) / 2.0 * (u - v);
    roots[1] = Complex(re + shift, im);
    roots[2] = Complex(re + shift, -im);
  } else {
    // Three real roots (trigonometric form).
    const double r = std::sqrt(-p * p * p / 27.0);
    const double phi = std::acos(std::clamp(-q / (2.0 * r), -1.0, 1.0));
    const double mag = 2.0 * std::cbrt(r);
    for (int k = 0; k < 3; ++k) {
      roots[static_cast<std::size_t>(k)] =
          Complex(mag * std::cos((phi + 2.0 * M_PI * k) / 3.0) + shift, 0.0);
    }
  }

  // One Newton polish step per root on the original polynomial.
  const std::array<double, 4> coeffs{d, c, b, a};
  for (auto& x : roots) {
    const Complex f = polyval(coeffs, x);
    const Complex df = 3.0 * a * x * x + 2.0 * b * x + c;
    if (std::abs(df) > 0.0) x -= f / df;
  }
  return roots;
}

double polyval(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t k = coeffs.size(); k-- > 0;) acc = acc * x + coeffs[k];
  return acc;
}

Complex polyval(std::span<const double> coeffs, Complex x) {
  Complex acc = 0.0;
  for (std::size_t k = coeffs.size(); k-- > 0;) acc = acc * x + coeffs[k];
  return acc;
}

std::vector<double> polyfit(std::span<const double> x, std::span<const double> y,
                            int degree) {
  ensure(degree >= 0, "polyfit: negative degree");
  ensure(x.size() == y.size(), "polyfit: size mismatch");
  const auto n = static_cast<std::size_t>(degree) + 1;
  ensure(x.size() >= n, "polyfit: not enough samples");

  DenseMatrix ata(n, n);
  std::vector<double> atb(n, 0.0);
  std::vector<double> powers(2 * n - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double p = 1.0;
    for (std::size_t k = 0; k < powers.size(); ++k) {
      powers[k] = p;
      p *= x[i];
    }
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) ata(r, c) += powers[r + c];
      atb[r] += powers[r] * y[i];
    }
  }
  LuFactors lu = lu_factor(ata);
  return lu_solve(lu, atb);
}

}  // namespace rlceff::util
