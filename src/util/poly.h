// Small-degree polynomial utilities.
//
// Used for the pole analysis of the 5-moment rational admittance
// Y(s) = (a1 s + a2 s^2 + a3 s^3) / (1 + b1 s + b2 s^2): the poles are the
// roots of b2 s^2 + b1 s + 1, which may be real or a complex-conjugate pair.
#ifndef RLCEFF_UTIL_POLY_H
#define RLCEFF_UTIL_POLY_H

#include <array>
#include <complex>
#include <span>
#include <vector>

namespace rlceff::util {

using Complex = std::complex<double>;

// Roots of a*x^2 + b*x + c = 0 with a != 0.  Returns both roots; for real
// discriminant >= 0 the imaginary parts are exactly zero.  Uses the
// numerically stable citardauq form for the smaller root.
std::array<Complex, 2> quadratic_roots(double a, double b, double c);

// Roots of a*x^3 + b*x^2 + c*x + d = 0 with a != 0 (Cardano + Newton polish).
std::array<Complex, 3> cubic_roots(double a, double b, double c, double d);

// Evaluate sum_k coeffs[k] * x^k.
double polyval(std::span<const double> coeffs, double x);
Complex polyval(std::span<const double> coeffs, Complex x);

// Least-squares fit of a degree-`degree` polynomial to (x, y) samples via
// normal equations (small degrees only).  Returns coefficients c[0..degree].
std::vector<double> polyfit(std::span<const double> x, std::span<const double> y,
                            int degree);

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_POLY_H
