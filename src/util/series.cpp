#include "util/series.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rlceff::util {

Series::Series(std::size_t n) : c_(n, 0.0) { ensure(n > 0, "series order must be positive"); }

Series::Series(std::initializer_list<double> coeffs, std::size_t n)
    : Series(std::span<const double>(coeffs.begin(), coeffs.size()), n) {}

Series::Series(std::span<const double> coeffs, std::size_t n) : c_(n, 0.0) {
  ensure(n > 0, "series order must be positive");
  const std::size_t m = std::min(n, coeffs.size());
  std::copy_n(coeffs.begin(), m, c_.begin());
}

Series Series::constant(double c, std::size_t n) {
  Series out(n);
  out.c_[0] = c;
  return out;
}

Series Series::variable(std::size_t n) {
  ensure(n >= 2, "variable needs at least two terms");
  Series out(n);
  out.c_[1] = 1.0;
  return out;
}

Series Series::operator-() const {
  Series out = *this;
  for (double& v : out.c_) v = -v;
  return out;
}

Series& Series::operator+=(const Series& rhs) {
  ensure(size() == rhs.size(), "series order mismatch");
  for (std::size_t k = 0; k < c_.size(); ++k) c_[k] += rhs.c_[k];
  return *this;
}

Series& Series::operator-=(const Series& rhs) {
  ensure(size() == rhs.size(), "series order mismatch");
  for (std::size_t k = 0; k < c_.size(); ++k) c_[k] -= rhs.c_[k];
  return *this;
}

Series& Series::operator*=(double k) {
  for (double& v : c_) v *= k;
  return *this;
}

Series operator*(const Series& lhs, const Series& rhs) {
  ensure(lhs.size() == rhs.size(), "series order mismatch");
  const std::size_t n = lhs.size();
  Series out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (lhs.c_[i] == 0.0) continue;
    for (std::size_t j = 0; i + j < n; ++j) out.c_[i + j] += lhs.c_[i] * rhs.c_[j];
  }
  return out;
}

Series operator/(const Series& lhs, const Series& rhs) {
  ensure(lhs.size() == rhs.size(), "series order mismatch");
  ensure(rhs.c_[0] != 0.0, "series division by zero leading coefficient");
  const std::size_t n = lhs.size();
  Series out(n);
  // Long division: out[k] = (lhs[k] - sum_{j<k} out[j]*rhs[k-j]) / rhs[0].
  for (std::size_t k = 0; k < n; ++k) {
    double acc = lhs.c_[k];
    for (std::size_t j = 0; j < k; ++j) acc -= out.c_[j] * rhs.c_[k - j];
    out.c_[k] = acc / rhs.c_[0];
  }
  return out;
}

Series Series::shifted(std::size_t k) const {
  Series out(size());
  for (std::size_t i = 0; i + k < size(); ++i) out.c_[i + k] = c_[i];
  return out;
}

Series Series::sqrt() const {
  ensure(c_[0] > 0.0, "series sqrt requires positive leading coefficient");
  const std::size_t n = size();
  Series out(n);
  out.c_[0] = std::sqrt(c_[0]);
  // out[k] from (out*out)[k] == c[k]:
  // 2*out[0]*out[k] = c[k] - sum_{0<j<k} out[j]*out[k-j].
  for (std::size_t k = 1; k < n; ++k) {
    double acc = c_[k];
    for (std::size_t j = 1; j < k; ++j) acc -= out.c_[j] * out.c_[k - j];
    out.c_[k] = acc / (2.0 * out.c_[0]);
  }
  return out;
}

Series Series::compose(std::span<const double> outer, const Series& inner) {
  ensure(inner.c_[0] == 0.0, "composition requires inner series with zero constant term");
  const std::size_t n = inner.size();
  // Horner evaluation over series arithmetic.  Because inner has valuation
  // >= 1, only the first n outer coefficients can influence the truncation.
  Series acc(n);
  const std::size_t terms = std::min(outer.size(), n);
  for (std::size_t idx = terms; idx-- > 0;) {
    acc = acc * inner;
    acc.c_[0] += outer[idx];
  }
  return acc;
}

bool Series::almost_equal(const Series& rhs, double tol) const {
  if (size() != rhs.size()) return false;
  for (std::size_t k = 0; k < size(); ++k) {
    if (std::abs(c_[k] - rhs.c_[k]) > tol) return false;
  }
  return true;
}

}  // namespace rlceff::util
