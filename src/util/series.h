// Truncated power-series arithmetic.
//
// A Series represents f(s) = c[0] + c[1]*s + ... + c[n-1]*s^(n-1) + O(s^n),
// i.e. a Taylor expansion truncated after a fixed number of terms.  This is
// the algebra used to propagate driving-point admittance moments through RLC
// ladders, trees and distributed lines: the k-th admittance moment is simply
// the k-th series coefficient of Y(s).
//
// All binary operations require equal truncation orders (moment computations
// pick one order up front).  Division and sqrt require an invertible leading
// coefficient.
#ifndef RLCEFF_UTIL_SERIES_H
#define RLCEFF_UTIL_SERIES_H

#include <cstddef>
#include <span>
#include <vector>

namespace rlceff::util {

class Series {
public:
  // Zero series with n coefficients (all O(s^n) terms dropped).
  explicit Series(std::size_t n);

  // Series from explicit coefficients, truncated/zero-padded to n terms.
  Series(std::initializer_list<double> coeffs, std::size_t n);
  Series(std::span<const double> coeffs, std::size_t n);

  // Constant c + O(s^n).
  static Series constant(double c, std::size_t n);
  // The monomial s + O(s^n); n must be >= 2.
  static Series variable(std::size_t n);

  std::size_t size() const { return c_.size(); }
  double operator[](std::size_t k) const { return c_[k]; }
  double& operator[](std::size_t k) { return c_[k]; }
  std::span<const double> coeffs() const { return c_; }

  Series operator-() const;
  Series& operator+=(const Series& rhs);
  Series& operator-=(const Series& rhs);
  Series& operator*=(double k);

  friend Series operator+(Series lhs, const Series& rhs) { return lhs += rhs; }
  friend Series operator-(Series lhs, const Series& rhs) { return lhs -= rhs; }
  friend Series operator*(Series lhs, double k) { return lhs *= k; }
  friend Series operator*(double k, Series rhs) { return rhs *= k; }

  // Cauchy product, truncated.
  friend Series operator*(const Series& lhs, const Series& rhs);
  // Series division; rhs[0] must be nonzero.
  friend Series operator/(const Series& lhs, const Series& rhs);

  // Multiply by s^k (shift coefficients up, dropping overflow).
  Series shifted(std::size_t k) const;

  // sqrt(f) with f[0] > 0.
  Series sqrt() const;

  // Substitute: returns outer(inner(s)) where outer's "variable" is inner.
  // inner must have inner[0] == 0 (valuation >= 1) so the composition is a
  // well-defined truncated series.
  static Series compose(std::span<const double> outer, const Series& inner);

  // True when every coefficient differs from rhs by at most tol (absolute).
  bool almost_equal(const Series& rhs, double tol) const;

private:
  std::vector<double> c_;
};

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_SERIES_H
