#include "util/solve.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rlceff::util {

double brent(const std::function<double(double)>& f, double a, double b,
             const SolveOptions& opt) {
  double fa = f(a);
  double fb = f(b);
  ensure(fa * fb <= 0.0, "brent: root not bracketed");
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;

  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;

  const int max_iter = capped_iterations(
      opt.max_iter, opt.budget ? opt.budget->spec().max_solver_iter : 0);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (opt.budget) opt.budget->check("brent");
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) +
                       0.5 * opt.x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || std::abs(fb) <= opt.f_tol) return b;

    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Inverse quadratic interpolation (secant when only two points differ).
      const double s = fb / fa;
      double p = 0.0;
      double q = 0.0;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qa = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qa * (qa - r) - (b - a) * (r - 1.0));
        q = (qa - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  if (max_iter < opt.max_iter) {
    throw BudgetError("brent: iteration budget of " + std::to_string(max_iter) +
                      " exhausted");
  }
  throw ConvergenceError("brent: too many iterations");
}

FixedPointResult fixed_point(const std::function<double(double)>& g, double x0,
                             const FixedPointOptions& opt) {
  FixedPointResult res;
  double x = std::clamp(x0, opt.lower, opt.upper);
  const int max_iter = capped_iterations(
      opt.max_iter, opt.budget ? opt.budget->spec().max_solver_iter : 0);
  for (int iter = 1; iter <= max_iter; ++iter) {
    if (opt.budget) opt.budget->check("fixed_point");
    const double gx = g(x);
    double x_new = x + opt.damping * (gx - x);
    x_new = std::clamp(x_new, opt.lower, opt.upper);
    res.iterations = iter;
    const double scale = std::max(std::abs(x_new), 1e-300);
    if (std::abs(x_new - x) / scale < opt.rel_tol) {
      res.x = x_new;
      res.converged = true;
      return res;
    }
    x = x_new;
  }
  if (max_iter < opt.max_iter) {
    throw BudgetError("fixed_point: iteration budget of " +
                      std::to_string(max_iter) + " exhausted");
  }
  res.x = x;
  res.converged = false;
  return res;
}

}  // namespace rlceff::util
