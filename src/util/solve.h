// Scalar equation solvers.
//
// brent() finds a bracketed root; fixed_point() runs the damped iteration
// used by the Ceff <-> cell-table loops of Sections 4.1/4.2.
#ifndef RLCEFF_UTIL_SOLVE_H
#define RLCEFF_UTIL_SOLVE_H

#include <functional>

namespace rlceff::util {

struct SolveOptions {
  double x_tol = 1e-12;
  double f_tol = 1e-14;
  int max_iter = 200;
};

// Root of f on [a, b]; f(a) and f(b) must have opposite signs.
double brent(const std::function<double(double)>& f, double a, double b,
             const SolveOptions& opt = {});

struct FixedPointOptions {
  double rel_tol = 1e-9;     // convergence on |x_new - x| / max(|x_new|, floor)
  double damping = 1.0;      // x <- x + damping * (g(x) - x)
  int max_iter = 100;
  double lower = -1e300;     // clamp applied after each update
  double upper = 1e300;
};

struct FixedPointResult {
  double x = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Damped fixed-point iteration x <- g(x) starting from x0, clamped to
// [lower, upper].  Returns the last iterate with a convergence flag rather
// than throwing: Ceff loops treat slow convergence as "use the last value".
FixedPointResult fixed_point(const std::function<double(double)>& g, double x0,
                             const FixedPointOptions& opt = {});

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_SOLVE_H
