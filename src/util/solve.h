// Scalar equation solvers.
//
// brent() finds a bracketed root; fixed_point() runs the damped iteration
// used by the Ceff <-> cell-table loops of Sections 4.1/4.2.
//
// Iteration ceilings: max_iter defaults come from util/budget.h's
// iter_defaults so every loop in the library shares one vocabulary.  When
// `budget` is set, each iteration calls ExecTracker::check() (deadline /
// cancellation) and the loop runs at most
//   capped_iterations(max_iter, budget->spec().max_solver_iter)
// iterations.  Precedence when the loop runs dry: if the *budget* was the
// binding cap the solver raises BudgetError; if the per-call max_iter was
// binding the historical behavior is kept (brent throws ConvergenceError,
// fixed_point returns converged = false).
#ifndef RLCEFF_UTIL_SOLVE_H
#define RLCEFF_UTIL_SOLVE_H

#include <functional>

#include "util/budget.h"

namespace rlceff::util {

struct SolveOptions {
  double x_tol = 1e-12;
  double f_tol = 1e-14;
  int max_iter = iter_defaults::brent;
  ExecTracker* budget = nullptr;  // optional cooperative budget (see header)
};

// Root of f on [a, b]; f(a) and f(b) must have opposite signs.
double brent(const std::function<double(double)>& f, double a, double b,
             const SolveOptions& opt = {});

struct FixedPointOptions {
  double rel_tol = 1e-9;     // convergence on |x_new - x| / max(|x_new|, floor)
  double damping = 1.0;      // x <- x + damping * (g(x) - x)
  int max_iter = iter_defaults::fixed_point;
  double lower = -1e300;     // clamp applied after each update
  double upper = 1e300;
  ExecTracker* budget = nullptr;  // optional cooperative budget (see header)
};

struct FixedPointResult {
  double x = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Damped fixed-point iteration x <- g(x) starting from x0, clamped to
// [lower, upper].  Returns the last iterate with a convergence flag rather
// than throwing: Ceff loops treat slow convergence as "use the last value".
// (Exception: a binding budget sub-cap raises BudgetError, see above.)
FixedPointResult fixed_point(const std::function<double(double)>& g, double x0,
                             const FixedPointOptions& opt = {});

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_SOLVE_H
