#include "util/sparse.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "util/error.h"
#include "util/ordering.h"

namespace rlceff::util {

namespace {
constexpr std::size_t npos = static_cast<std::size_t>(-1);

// Diagonal-preference threshold for pivoting: the natural diagonal wins
// whenever it is within this factor of the column's largest candidate.
// MNA diagonals are the physically meaningful pivots (conductance sums), so
// preferring them keeps fill low; 0.1 is the customary threshold that still
// bounds element growth.
constexpr double kDiagonalPreference = 0.1;
}  // namespace

SparseMatrix::SparseMatrix(std::size_t n,
                           std::vector<std::pair<std::size_t, std::size_t>> positions)
    : n_(n) {
  for (const auto& [r, c] : positions) {
    ensure(r < n && c < n, "SparseMatrix: position out of range");
  }
  // CSC: sort by (col, row), merge duplicates.
  std::sort(positions.begin(), positions.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second : a.first < b.first;
            });
  positions.erase(std::unique(positions.begin(), positions.end()), positions.end());

  col_ptr_.assign(n_ + 1, 0);
  row_ind_.reserve(positions.size());
  for (const auto& [r, c] : positions) {
    ++col_ptr_[c + 1];
    row_ind_.push_back(r);
  }
  for (std::size_t c = 0; c < n_; ++c) col_ptr_[c + 1] += col_ptr_[c];
  values_.assign(row_ind_.size(), 0.0);
}

void SparseMatrix::set_zero() { std::fill(values_.begin(), values_.end(), 0.0); }

std::size_t SparseMatrix::position(std::size_t r, std::size_t c) const {
  ensure(r < n_ && c < n_, "SparseMatrix: position out of range");
  const auto begin = row_ind_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[c]);
  const auto end = row_ind_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[c + 1]);
  const auto it = std::lower_bound(begin, end, r);
  ensure(it != end && *it == r, "SparseMatrix: (" + std::to_string(r) + ", " +
                                    std::to_string(c) + ") outside the pattern");
  return static_cast<std::size_t>(it - row_ind_.begin());
}

double SparseMatrix::get(std::size_t r, std::size_t c) const {
  ensure(r < n_ && c < n_, "SparseMatrix: position out of range");
  const auto begin = row_ind_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[c]);
  const auto end = row_ind_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[c + 1]);
  const auto it = std::lower_bound(begin, end, r);
  if (it == end || *it != r) return 0.0;
  return values_[static_cast<std::size_t>(it - row_ind_.begin())];
}

void SparseMatrix::copy_values_from(const SparseMatrix& other) {
  ensure(n_ == other.n_ && row_ind_.size() == other.row_ind_.size(),
         "SparseMatrix::copy_values_from: pattern mismatch");
  std::memcpy(values_.data(), other.values_.data(), values_.size() * sizeof(double));
}

void SparseLu::analyze(const SparseMatrix& a) {
  n_ = a.size();
  ensure(n_ > 0, "SparseLu::analyze: empty matrix");

  // Fill-reducing column ordering from the pattern graph.  The pattern is
  // structurally symmetric for MNA (every stamp has its transpose position),
  // so one symmetric ordering serves both rows and columns.
  SparsityGraph graph(n_);
  for (std::size_t c = 0; c < n_; ++c) {
    for (std::size_t p = a.col_ptr()[c]; p < a.col_ptr()[c + 1]; ++p) {
      const std::size_t r = a.row_ind()[p];
      if (r != c) graph.add_edge(r, c);
    }
  }
  const std::vector<std::size_t> perm = minimum_degree_ordering(graph);
  q_.assign(n_, 0);
  for (std::size_t old = 0; old < n_; ++old) q_[perm[old]] = old;

  pinv_.assign(n_, npos);
  lp_.assign(n_ + 1, 0);
  up_.assign(n_ + 1, 0);
  x_.assign(n_, 0.0);
  xi_.assign(n_, 0);
  mark_.assign(n_, 0);
  dfs_stack_.assign(n_, 0);
  dfs_ptr_.assign(n_, 0);
  work_.assign(n_, 0.0);
  stamp_ = 0;

  // Grow-only factor storage: start at a generous multiple of the pattern so
  // typical refactors never reallocate even on the first call.
  const std::size_t guess = 4 * a.nnz() + n_;
  li_.reserve(guess);
  lx_.reserve(guess);
  ui_.reserve(guess);
  ux_.reserve(guess);
  factored_ = false;
}

void SparseLu::factor(const SparseMatrix& a, ExecTracker* budget) {
  ensure(analyzed() && a.size() == n_, "SparseLu::factor: analyze() first");
  li_.clear();
  lx_.clear();
  ui_.clear();
  ux_.clear();
  std::fill(pinv_.begin(), pinv_.end(), npos);
  factored_ = false;

  for (std::size_t k = 0; k < n_; ++k) {
    if (budget != nullptr && (k & 63) == 0) budget->check("sparse factor");
    lp_[k] = li_.size();
    up_[k] = ui_.size();
    const std::size_t col = q_[k];

    // Reach of A(:, col) over the columns of L built so far: iterative DFS,
    // emitting xi_[top..n) in topological order for the triangular solve.
    // L row indices stay *original* until the final remap, matching x_.
    ++stamp_;
    std::size_t top = n_;
    for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p) {
      const std::size_t start = a.row_ind()[p];
      if (mark_[start] == stamp_) continue;
      mark_[start] = stamp_;
      std::size_t head = 0;
      dfs_stack_[0] = start;
      dfs_ptr_[0] = pinv_[start] == npos ? 0 : lp_[pinv_[start]] + 1;
      while (true) {
        const std::size_t j = dfs_stack_[head];
        const std::size_t jcol = pinv_[j];
        const std::size_t pend = jcol == npos ? 0 : lp_[jcol + 1];
        bool descended = false;
        for (std::size_t pc = dfs_ptr_[head]; pc < pend; ++pc) {
          const std::size_t child = li_[pc];
          if (mark_[child] == stamp_) continue;
          mark_[child] = stamp_;
          dfs_ptr_[head] = pc + 1;
          ++head;
          dfs_stack_[head] = child;
          dfs_ptr_[head] = pinv_[child] == npos ? 0 : lp_[pinv_[child]] + 1;
          descended = true;
          break;
        }
        if (descended) continue;
        xi_[--top] = j;
        if (head == 0) break;
        --head;
      }
    }

    // Scatter the numeric column, then the sparse triangular solve
    // x = L \ A(:, col) in the topological order the DFS produced.
    for (std::size_t p = top; p < n_; ++p) x_[xi_[p]] = 0.0;
    for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p) {
      x_[a.row_ind()[p]] = a.values()[p];
    }
    for (std::size_t p = top; p < n_; ++p) {
      const std::size_t j = xi_[p];
      const std::size_t jcol = pinv_[j];
      if (jcol == npos) continue;  // not yet pivotal: stays in this column
      const double xj = x_[j];     // L has unit diagonal
      for (std::size_t pc = lp_[jcol] + 1; pc < lp_[jcol + 1]; ++pc) {
        x_[li_[pc]] -= lx_[pc] * xj;
      }
    }

    // Pivot: largest candidate among not-yet-pivotal rows, the natural
    // diagonal preferred when competitive (keeps fill near the symbolic
    // estimate and the choice value-stable).
    std::size_t pivot_row = npos;
    double a_max = -1.0;
    for (std::size_t p = top; p < n_; ++p) {
      const std::size_t i = xi_[p];
      if (pinv_[i] != npos) continue;
      const double t = std::abs(x_[i]);
      if (t > a_max) {
        a_max = t;
        pivot_row = i;
      }
    }
    if (pivot_row == npos || !(a_max > 0.0)) {
      throw SingularMatrixError("sparse LU: no acceptable pivot in column " +
                                std::to_string(col));
    }
    if (pinv_[col] == npos && std::abs(x_[col]) >= kDiagonalPreference * a_max) {
      pivot_row = col;
    }
    const double pivot = x_[pivot_row];
    pinv_[pivot_row] = k;
    li_.push_back(pivot_row);
    lx_.push_back(1.0);

    for (std::size_t p = top; p < n_; ++p) {
      const std::size_t i = xi_[p];
      if (i != pivot_row) {
        if (pinv_[i] != npos) {
          ui_.push_back(pinv_[i]);
          ux_.push_back(x_[i]);
        } else {
          li_.push_back(i);
          lx_.push_back(x_[i] / pivot);
        }
      }
      x_[i] = 0.0;
    }
    ui_.push_back(k);  // U diagonal closes the column
    ux_.push_back(pivot);
  }
  lp_[n_] = li_.size();
  up_[n_] = ui_.size();

  // Remap L's row indices from original to pivot order; from here on L is a
  // proper unit lower triangle and solve_into needs no indirection.
  for (std::size_t& i : li_) i = pinv_[i];
  factored_ = true;
}

void SparseLu::solve_into(std::span<double> x, ExecTracker* budget) const {
  ensure(factored_, "SparseLu::solve_into: factor() first");
  ensure(x.size() == n_, "SparseLu::solve_into: size mismatch");

  for (std::size_t i = 0; i < n_; ++i) work_[pinv_[i]] = x[i];
  for (std::size_t k = 0; k < n_; ++k) {
    if (budget != nullptr && (k & 4095) == 0) budget->check("sparse solve");
    const double wk = work_[k];
    if (wk == 0.0) continue;
    for (std::size_t p = lp_[k] + 1; p < lp_[k + 1]; ++p) {
      work_[li_[p]] -= lx_[p] * wk;
    }
  }
  for (std::size_t k = n_; k-- > 0;) {
    const double wk = (work_[k] /= ux_[up_[k + 1] - 1]);
    if (wk == 0.0) continue;
    for (std::size_t p = up_[k]; p + 1 < up_[k + 1]; ++p) {
      work_[ui_[p]] -= ux_[p] * wk;
    }
  }
  for (std::size_t k = 0; k < n_; ++k) x[q_[k]] = work_[k];
}

void SparseLu::solve_block(std::span<double> x, std::size_t lanes,
                           std::size_t stride) const {
  ensure(factored_, "SparseLu::solve_block: factor() first");
  ensure(lanes > 0 && lanes <= stride, "SparseLu::solve_block: bad lane count");
  ensure(x.size() == n_ * stride, "SparseLu::solve_block: size mismatch");
  if (work_block_.size() < n_ * stride) work_block_.resize(n_ * stride);
  double* w = work_block_.data();

  for (std::size_t i = 0; i < n_; ++i) {
    const double* xi = &x[i * stride];
    double* wi = w + pinv_[i] * stride;
    for (std::size_t s = 0; s < lanes; ++s) wi[s] = xi[s];
  }
  // The zero-value skips mirror solve_into exactly, per lane: skipping an
  // update is not bitwise-neutral in IEEE arithmetic (-0 - -0 == +0), so the
  // lane loop sits outside the column scatter to keep the skip per lane.
  for (std::size_t k = 0; k < n_; ++k) {
    const double* wk = w + k * stride;
    for (std::size_t s = 0; s < lanes; ++s) {
      const double v = wk[s];
      if (v == 0.0) continue;
      for (std::size_t p = lp_[k] + 1; p < lp_[k + 1]; ++p) {
        w[li_[p] * stride + s] -= lx_[p] * v;
      }
    }
  }
  for (std::size_t k = n_; k-- > 0;) {
    const double d = ux_[up_[k + 1] - 1];
    double* wk = w + k * stride;
    for (std::size_t s = 0; s < lanes; ++s) {
      const double v = (wk[s] /= d);
      if (v == 0.0) continue;
      for (std::size_t p = up_[k]; p + 1 < up_[k + 1]; ++p) {
        w[ui_[p] * stride + s] -= ux_[p] * v;
      }
    }
  }
  for (std::size_t k = 0; k < n_; ++k) {
    const double* wk = w + k * stride;
    double* xq = &x[q_[k] * stride];
    for (std::size_t s = 0; s < lanes; ++s) xq[s] = wk[s];
  }
}

}  // namespace rlceff::util
