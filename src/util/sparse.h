// Compressed-sparse linear algebra for large MNA systems.
//
// Wide coupled groups and 10k-sink clock trees blow past what the dense and
// banded LUs can carry: all-to-all coupling caps push the RCM bandwidth
// toward n (banded degenerates to dense O(n^2) per step), and a dense image
// of a 40k-unknown tree does not even fit in memory.  This header provides
// the third backend of the factor-once architecture:
//
//   * SparseMatrix — a CSC matrix with a *fixed* sparsity pattern chosen at
//     construction from the netlist (every position any stamp can touch).
//     Stamping is accumulate-by-position; the pattern never changes, so the
//     numeric values are one flat array that can be snapshotted and restored
//     at memcpy cost, exactly like the dense/banded static images.
//   * SparseLu — left-looking (Gilbert-Peierls) sparse LU with partial
//     pivoting split into analyze() (symbolic: fill-reducing column ordering
//     + workspace allocation, once per step size) and factor()/solve_into()
//     (numeric, per step).  L/U storage is grow-only, so refactors after the
//     first are allocation-free and solves always are.
//
// Determinism: the column ordering (minimum_degree_ordering), the DFS reach,
// and the pivot choice (max magnitude, diagonal preferred within a fixed
// threshold, ties broken by position order) depend only on the pattern and
// the values, never on platform or thread count — the cached and naive
// assembly paths therefore factor bitwise-identically.
#ifndef RLCEFF_UTIL_SPARSE_H
#define RLCEFF_UTIL_SPARSE_H

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/budget.h"

namespace rlceff::util {

// Square CSC matrix over a fixed pattern.  Positions passed to the
// constructor are (row, col) pairs; duplicates are merged.  add() on a
// position outside the pattern throws — the pattern is the contract that
// makes the static-image snapshot sound.
class SparseMatrix {
public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t n, std::vector<std::pair<std::size_t, std::size_t>> positions);

  std::size_t size() const { return n_; }
  std::size_t nnz() const { return row_ind_.size(); }

  void set_zero();
  void add(std::size_t r, std::size_t c, double v) { values_[position(r, c)] += v; }
  double get(std::size_t r, std::size_t c) const;

  // Flat index of (r, c) within values(); throws when outside the pattern.
  // Restamping hot paths resolve positions once and then write through them.
  std::size_t position(std::size_t r, std::size_t c) const;

  // The numeric image: save/restore these to snapshot the static assembly.
  std::span<const double> values() const { return values_; }
  std::span<double> values() { return values_; }
  void copy_values_from(const SparseMatrix& other);

  // CSC internals for the factorization.
  const std::vector<std::size_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::size_t>& row_ind() const { return row_ind_; }

private:
  std::size_t n_ = 0;
  std::vector<std::size_t> col_ptr_;  // n + 1
  std::vector<std::size_t> row_ind_;  // nnz, sorted within each column
  std::vector<double> values_;        // nnz
};

// Sparse LU (PAQ = LU, partial pivoting with diagonal preference).
//
//   SparseLu lu;
//   lu.analyze(a);              // once per pattern / step size
//   loop {
//     ...restamp a...
//     lu.factor(a, tracker);    // per step-size change or Newton iteration
//     lu.solve_into(x);         // per step, allocation-free
//   }
class SparseLu {
public:
  // Symbolic analysis: computes the fill-reducing column ordering (greedy
  // minimum degree over the pattern graph) and sizes every workspace.
  void analyze(const SparseMatrix& a);

  bool analyzed() const { return n_ > 0; }

  // Numeric factorization over the analyzed pattern.  Throws
  // SingularMatrixError when no acceptable pivot exists in a column.  The
  // optional tracker is checkpointed every 64 columns so deadlines and
  // cancellation hold inside one large factor, not just between steps.
  void factor(const SparseMatrix& a, ExecTracker* budget = nullptr);

  // In-place solve A x = b: x holds b on entry, the solution on exit.
  // Allocates nothing.
  void solve_into(std::span<double> x, ExecTracker* budget = nullptr) const;

  // Blocked multi-RHS solve: `lanes` right-hand sides in an n x stride
  // row-major block (lane s of unknown i at x[i * stride + s]).  Every lane
  // runs exactly solve_into's operation sequence — including its skip of
  // zero-valued pivot entries, replicated per lane — so lane results are
  // bitwise-identical to independent single-RHS solves.  Grows the block
  // scratch on first use, allocation-free afterwards; no budget checkpoints
  // (the scenario-batching caller charges per-lane step budgets instead).
  void solve_block(std::span<double> x, std::size_t lanes, std::size_t stride) const;

  // Fill diagnostics (valid after factor): stored entries of L + U.
  std::size_t factor_nnz() const { return li_.size() + ui_.size(); }

private:
  std::size_t n_ = 0;
  std::vector<std::size_t> q_;     // column order: factor column k is A column q_[k]
  std::vector<std::size_t> pinv_;  // row i of A is pivot row pinv_[i]

  // L (unit lower, diagonal first per column) and U (diagonal last per
  // column), CSC in pivot-row indices.  Grow-only between factors.
  std::vector<std::size_t> lp_, li_, up_, ui_;
  std::vector<double> lx_, ux_;

  // Reusable factor/solve scratch.
  std::vector<double> x_;                  // scattered column accumulator
  std::vector<std::size_t> xi_;            // reach pattern (topological order)
  std::vector<std::size_t> mark_;          // DFS visit stamps
  std::vector<std::size_t> dfs_stack_, dfs_ptr_;
  mutable std::vector<double> work_;       // permuted rhs during solve
  mutable std::vector<double> work_block_;  // permuted rhs block (solve_block)
  std::size_t stamp_ = 0;
  bool factored_ = false;
};

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_SPARSE_H
