#include "util/stats.h"

#include <cmath>

#include "util/error.h"

namespace rlceff::util {

double relative_error(double model, double reference) {
  ensure(reference != 0.0, "relative_error: zero reference");
  return (model - reference) / reference;
}

double mean(std::span<const double> xs) {
  ensure(!xs.empty(), "mean: empty sample");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double mean_abs(std::span<const double> xs) {
  ensure(!xs.empty(), "mean_abs: empty sample");
  double acc = 0.0;
  for (double x : xs) acc += std::abs(x);
  return acc / static_cast<double>(xs.size());
}

double max_abs(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc = std::max(acc, std::abs(x));
  return acc;
}

double fraction_below(std::span<const double> xs, double threshold) {
  ensure(!xs.empty(), "fraction_below: empty sample");
  std::size_t count = 0;
  for (double x : xs) {
    if (std::abs(x) < threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

}  // namespace rlceff::util
