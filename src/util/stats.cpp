#include "util/stats.h"

#include <cmath>

#include "util/error.h"

namespace rlceff::util {

double relative_error(double model, double reference) {
  ensure(reference != 0.0, "relative_error: zero reference");
  return (model - reference) / reference;
}

double mean(std::span<const double> xs) {
  ensure(!xs.empty(), "mean: empty sample");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double mean_abs(std::span<const double> xs) {
  ensure(!xs.empty(), "mean_abs: empty sample");
  double acc = 0.0;
  for (double x : xs) acc += std::abs(x);
  return acc / static_cast<double>(xs.size());
}

double max_abs(std::span<const double> xs) {
  // Consistent with mean/mean_abs/fraction_below: an empty sample is a
  // caller bug, not a 0.0 (silently reporting "max error 0" for an empty
  // error vector is exactly the kind of vacuous pass a harness must not
  // produce).
  ensure(!xs.empty(), "max_abs: empty sample");
  double acc = 0.0;
  for (double x : xs) acc = std::max(acc, std::abs(x));
  return acc;
}

double fraction_below(std::span<const double> xs, double threshold) {
  ensure(!xs.empty(), "fraction_below: empty sample");
  std::size_t count = 0;
  for (double x : xs) {
    if (std::abs(x) < threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

}  // namespace rlceff::util
