// Error statistics used by the experiment harness (Fig 7 / Table 1 style
// summaries: average |error|, fraction of cases under a threshold).
#ifndef RLCEFF_UTIL_STATS_H
#define RLCEFF_UTIL_STATS_H

#include <span>

namespace rlceff::util {

// Signed relative error (model - reference) / reference, as a fraction.
double relative_error(double model, double reference);

double mean(std::span<const double> xs);
double mean_abs(std::span<const double> xs);
double max_abs(std::span<const double> xs);

// Fraction of |xs[i]| strictly below threshold.
double fraction_below(std::span<const double> xs, double threshold);

}  // namespace rlceff::util

#endif  // RLCEFF_UTIL_STATS_H
