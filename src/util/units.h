// Unit constants and conversions.
//
// The library works in SI base units throughout (seconds, volts, amperes,
// ohms, farads, henries, meters).  These constants make call sites read like
// the paper: `5.0 * units::mm`, `72.44 * units::ohm`, `100.0 * units::ps`.
#ifndef RLCEFF_UTIL_UNITS_H
#define RLCEFF_UTIL_UNITS_H

namespace rlceff::units {

// Time.
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double fs = 1e-15;

// Electrical.
inline constexpr double volt = 1.0;
inline constexpr double ampere = 1.0;
inline constexpr double ohm = 1.0;
inline constexpr double kohm = 1e3;
inline constexpr double farad = 1.0;
inline constexpr double pf = 1e-12;
inline constexpr double ff = 1e-15;
inline constexpr double henry = 1.0;
inline constexpr double nh = 1e-9;
inline constexpr double ph = 1e-12;

// Geometry.
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

}  // namespace rlceff::units

#endif  // RLCEFF_UTIL_UNITS_H
