#include "waveform/pwl.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "util/error.h"

namespace rlceff::wave {

namespace {

std::string fmt_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", t);
  return buf;
}

}  // namespace

Pwl::Pwl(std::vector<std::pair<double, double>> points) : points_(std::move(points)) {
  ensure(!points_.empty(), "Pwl: needs at least one point");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    // Name the offending index and the two timestamps: duplicate breakpoints
    // (a plateau collapsing to zero width, a replayed deck rounding two
    // times together) are the common construction failure and "must be
    // strictly increasing" alone does not say where.  Build the message only
    // on failure — this constructor is on the per-net hot path.
    if (!(points_[i].first > points_[i - 1].first)) {
      ensure(false, "Pwl: time[" + std::to_string(i) + "] = " +
                        fmt_time(points_[i].first) + " does not increase over time[" +
                        std::to_string(i - 1) + "] = " + fmt_time(points_[i - 1].first));
    }
  }
}

double Pwl::value_at(double time) const {
  ensure(!points_.empty(), "Pwl: empty");
  if (time <= points_.front().first) return points_.front().second;
  if (time >= points_.back().first) return points_.back().second;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), time,
      [](double t, const std::pair<double, double>& p) { return t < p.first; });
  const auto hi = it;
  const auto lo = it - 1;
  const double w = (time - lo->first) / (hi->first - lo->first);
  return lo->second + w * (hi->second - lo->second);
}

double Pwl::start_time() const {
  ensure(!points_.empty(), "Pwl: empty");
  return points_.front().first;
}

double Pwl::end_time() const {
  ensure(!points_.empty(), "Pwl: empty");
  return points_.back().first;
}

double Pwl::final_value() const {
  ensure(!points_.empty(), "Pwl: empty");
  return points_.back().second;
}

Waveform Pwl::sample(double t_begin, double t_end, double dt) const {
  ensure(t_end > t_begin && dt > 0.0, "Pwl::sample: bad range");
  Waveform w;
  const auto steps = static_cast<std::size_t>(std::ceil((t_end - t_begin) / dt));
  for (std::size_t i = 0; i <= steps; ++i) {
    const double t = std::min(t_begin + static_cast<double>(i) * dt, t_end);
    w.append(t, value_at(t));
    if (t >= t_end) break;
  }
  return w;
}

Waveform Pwl::to_waveform(double t_end) const {
  ensure(!points_.empty(), "Pwl: empty");
  Waveform w;
  // Lead-in sample so crossings before the first breakpoint are well defined.
  if (points_.front().first > 0.0) w.append(0.0, points_.front().second);
  for (const auto& [t, v] : points_) {
    if (w.empty() || t > w.time(w.size() - 1)) w.append(t, v);
  }
  if (t_end > w.time(w.size() - 1)) w.append(t_end, final_value());
  return w;
}

Pwl ramp(double t0, double tr, double v0, double v1) {
  ensure(tr > 0.0, "ramp: transition time must be positive");
  return Pwl({{t0, v0}, {t0 + tr, v1}});
}

Pwl two_ramp(double t0, double f, double tr1, double tr2, double vdd) {
  ensure(f > 0.0 && f < 1.0, "two_ramp: breakpoint fraction must lie in (0, 1)");
  ensure(tr1 > 0.0 && tr2 > 0.0, "two_ramp: ramp times must be positive");
  const double t_break = t0 + f * tr1;
  const double t_final = t_break + (1.0 - f) * tr2;
  return Pwl({{t0, 0.0}, {t_break, f * vdd}, {t_final, vdd}});
}

Pwl three_piece(double t0, double f, double tr1, double t_plateau, double tr2,
                double vdd) {
  ensure(f > 0.0 && f < 1.0, "three_piece: breakpoint fraction must lie in (0, 1)");
  ensure(tr1 > 0.0 && tr2 > 0.0, "three_piece: ramp times must be positive");
  ensure(t_plateau >= 0.0, "three_piece: plateau duration must be non-negative");
  if (t_plateau == 0.0) return two_ramp(t0, f, tr1, tr2, vdd);
  const double t_break = t0 + f * tr1;
  const double t_resume = t_break + t_plateau;
  const double t_final = t_resume + (1.0 - f) * tr2;
  return Pwl({{t0, 0.0}, {t_break, f * vdd}, {t_resume, f * vdd}, {t_final, vdd}});
}

Pwl falling_from_rising(const Pwl& rising, double vdd) {
  std::vector<std::pair<double, double>> pts = rising.points();
  for (auto& [t, v] : pts) v = vdd - v;
  return Pwl(std::move(pts));
}

}  // namespace rlceff::wave
