// Piecewise-linear source descriptions.
//
// These are the model-side waveforms: the saturated input ramp fed to a
// driver, the one-ramp baseline output, and the paper's two-ramp output model
// (Eq 2), optionally with an explicit flat plateau (the three-piece
// alternative discussed in Sec. 4.2).  A Pwl is exact — no sampling — and can
// both drive the simulator (as a PWL voltage source) and be measured with the
// same EdgeTiming conventions as simulated waveforms.
#ifndef RLCEFF_WAVEFORM_PWL_H
#define RLCEFF_WAVEFORM_PWL_H

#include <vector>

#include "waveform/waveform.h"

namespace rlceff::wave {

class Pwl {
public:
  Pwl() = default;
  // Points must have strictly increasing times.  Value is held constant
  // before the first and after the last point.
  explicit Pwl(std::vector<std::pair<double, double>> points);

  const std::vector<std::pair<double, double>>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  double value_at(double time) const;
  double start_time() const;
  double end_time() const;
  double final_value() const;

  // Samples the description onto a uniform grid covering [t_begin, t_end].
  Waveform sample(double t_begin, double t_end, double dt) const;
  // Samples exactly at the breakpoints (plus flat extensions) — lossless.
  Waveform to_waveform(double t_end) const;

private:
  std::vector<std::pair<double, double>> points_;
};

// Saturated ramp from v0 at t0 to v1 at t0 + tr (tr > 0).
Pwl ramp(double t0, double tr, double v0, double v1);

// The paper's Eq 2 two-ramp rising waveform starting at (t0, 0):
//   first ramp slope Vdd/tr1 up to the breakpoint voltage f*Vdd,
//   second ramp slope Vdd/tr2 from f*Vdd up to Vdd.
Pwl two_ramp(double t0, double f, double tr1, double tr2, double vdd);

// Three-piece alternative: first ramp, flat plateau of duration t_plateau at
// f*Vdd, then the second ramp (used by the plateau-handling ablation).
Pwl three_piece(double t0, double f, double tr1, double t_plateau, double tr2,
                double vdd);

// Mirrors a rising PWL into the falling waveform vdd - V(t).
Pwl falling_from_rising(const Pwl& rising, double vdd);

}  // namespace rlceff::wave

#endif  // RLCEFF_WAVEFORM_PWL_H
