#include "waveform/waveform.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rlceff::wave {

Waveform::Waveform(std::vector<double> times, std::vector<double> values)
    : t_(std::move(times)), v_(std::move(values)) {
  ensure(t_.size() == v_.size(), "Waveform: time/value size mismatch");
  for (std::size_t i = 1; i < t_.size(); ++i) {
    ensure(t_[i] > t_[i - 1], "Waveform: times must be strictly increasing");
  }
}

void Waveform::reserve(std::size_t samples) {
  t_.reserve(samples);
  v_.reserve(samples);
}

void Waveform::append(double time, double value) {
  ensure(t_.empty() || time > t_.back(), "Waveform: non-increasing append");
  t_.push_back(time);
  v_.push_back(value);
}

double Waveform::value_at(double time) const {
  ensure(!t_.empty(), "Waveform: empty");
  if (time <= t_.front()) return v_.front();
  if (time >= t_.back()) return v_.back();
  const auto it = std::upper_bound(t_.begin(), t_.end(), time);
  const std::size_t hi = static_cast<std::size_t>(it - t_.begin());
  const std::size_t lo = hi - 1;
  const double w = (time - t_[lo]) / (t_[hi] - t_[lo]);
  return v_[lo] + w * (v_[hi] - v_[lo]);
}

std::optional<double> Waveform::first_crossing(double level, bool rising) const {
  for (std::size_t i = 1; i < t_.size(); ++i) {
    const double a = v_[i - 1];
    const double b = v_[i];
    const bool crossed = rising ? (a < level && b >= level) : (a > level && b <= level);
    if (crossed) {
      const double w = (level - a) / (b - a);
      return t_[i - 1] + w * (t_[i] - t_[i - 1]);
    }
    // Exact hit on a sample moving in the right direction.
    if (a == level && ((rising && b > a) || (!rising && b < a))) return t_[i - 1];
  }
  return std::nullopt;
}

std::optional<double> Waveform::last_crossing(double level, bool rising) const {
  std::optional<double> result;
  for (std::size_t i = 1; i < t_.size(); ++i) {
    const double a = v_[i - 1];
    const double b = v_[i];
    const bool crossed = rising ? (a < level && b >= level) : (a > level && b <= level);
    if (crossed) {
      const double w = (level - a) / (b - a);
      result = t_[i - 1] + w * (t_[i] - t_[i - 1]);
    }
  }
  return result;
}

double Waveform::min_value() const {
  ensure(!v_.empty(), "Waveform: empty");
  return *std::min_element(v_.begin(), v_.end());
}

double Waveform::max_value() const {
  ensure(!v_.empty(), "Waveform: empty");
  return *std::max_element(v_.begin(), v_.end());
}

Waveform Waveform::shifted(double dt) const {
  std::vector<double> t = t_;
  for (double& x : t) x += dt;
  return Waveform(std::move(t), v_);
}

EdgeTiming measure_rising_edge(const Waveform& w, double v_from, double v_to) {
  ensure(v_to > v_from, "measure_rising_edge: v_to must exceed v_from");
  const double swing = v_to - v_from;
  EdgeTiming e;
  const auto t10 = w.first_crossing(v_from + 0.1 * swing, true);
  const auto t50 = w.first_crossing(v_from + 0.5 * swing, true);
  const auto t90 = w.first_crossing(v_from + 0.9 * swing, true);
  ensure(t10.has_value() && t50.has_value() && t90.has_value(),
         "measure_rising_edge: waveform does not complete the transition");
  e.t10 = *t10;
  e.t50 = *t50;
  e.t90 = *t90;
  return e;
}

EdgeTiming measure_falling_edge(const Waveform& w, double v_from, double v_to) {
  ensure(v_from > v_to, "measure_falling_edge: v_from must exceed v_to");
  const double swing = v_from - v_to;
  EdgeTiming e;
  const auto t10 = w.first_crossing(v_from - 0.1 * swing, false);
  const auto t50 = w.first_crossing(v_from - 0.5 * swing, false);
  const auto t90 = w.first_crossing(v_from - 0.9 * swing, false);
  ensure(t10.has_value() && t50.has_value() && t90.has_value(),
         "measure_falling_edge: waveform does not complete the transition");
  e.t10 = *t10;
  e.t50 = *t50;
  e.t90 = *t90;
  return e;
}

double overshoot(const Waveform& w, double v_to) {
  return std::max(0.0, w.max_value() - v_to);
}

}  // namespace rlceff::wave
