// Sampled voltage waveforms and timing measurements.
//
// A Waveform is a piecewise-linear interpolation of (time, value) samples
// with strictly increasing time.  All timing metrics used in the paper —
// 50 % delay, 10-90 % transition time, overshoot — are measured here with one
// shared convention so model and "SPICE" numbers are always comparable.
#ifndef RLCEFF_WAVEFORM_WAVEFORM_H
#define RLCEFF_WAVEFORM_WAVEFORM_H

#include <optional>
#include <span>
#include <vector>

namespace rlceff::wave {

class Waveform {
public:
  Waveform() = default;
  Waveform(std::vector<double> times, std::vector<double> values);

  std::size_t size() const { return t_.size(); }
  bool empty() const { return t_.empty(); }
  std::span<const double> times() const { return t_; }
  std::span<const double> values() const { return v_; }
  double time(std::size_t i) const { return t_[i]; }
  double value(std::size_t i) const { return v_[i]; }

  // Pre-sizes the sample storage (fixed-step simulators know their step
  // count up front, keeping append() allocation-free inside the time loop).
  void reserve(std::size_t samples);

  // Appends a sample; time must exceed the last sample's time.
  void append(double time, double value);

  // Linear interpolation; clamps outside the sampled range.
  double value_at(double time) const;

  // First time the waveform crosses `level` in the given direction
  // (rising: from below to at-or-above).  nullopt when it never does.
  std::optional<double> first_crossing(double level, bool rising = true) const;

  // Last time the waveform is at `level` moving in the given direction.
  std::optional<double> last_crossing(double level, bool rising = true) const;

  double min_value() const;
  double max_value() const;
  double final_value() const { return v_.empty() ? 0.0 : v_.back(); }

  // New waveform shifted in time by dt.
  Waveform shifted(double dt) const;

private:
  std::vector<double> t_;
  std::vector<double> v_;
};

// Timing of one rising (or falling) edge between levels v_from and v_to.
struct EdgeTiming {
  double t10 = 0.0;   // first crossing of v_from + 0.10 * (v_to - v_from)
  double t50 = 0.0;   // first crossing of the midpoint
  double t90 = 0.0;   // first crossing of v_from + 0.90 * (v_to - v_from)

  // 10-90 transition expressed as a full-swing ramp time, the convention the
  // paper's Tr values use: a saturated ramp with this duration has the same
  // 10-90 interval as the measured edge.
  double ramp_transition() const { return (t90 - t10) / 0.8; }
  double transition_10_90() const { return t90 - t10; }
};

// Measures a rising edge from v_from to v_to; throws when the waveform never
// reaches the 90 % level.
EdgeTiming measure_rising_edge(const Waveform& w, double v_from, double v_to);

// Measures a falling edge from v_from down to v_to.
EdgeTiming measure_falling_edge(const Waveform& w, double v_from, double v_to);

// Peak overshoot above v_to (0 when none).
double overshoot(const Waveform& w, double v_to);

}  // namespace rlceff::wave

#endif  // RLCEFF_WAVEFORM_WAVEFORM_H
