// Tests for the api::Engine facade: the Outcome error surface (codes,
// scenario labels, per-slot isolation), equivalence with the core flows it
// wraps, and the warm_cache / library persistence path.
//
// Fidelity is reduced (coarse decks, small characterization grids) to keep
// the suite fast; the bench binaries exercise the same paths at full
// fidelity.
#include "api/engine.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "tech/wire.h"
#include "test_helpers.h"
#include "util/units.h"

namespace rlceff::api {
namespace {

using namespace rlceff::units;

BatchOptions fast_options() {
  BatchOptions opt;
  opt.deck.segments = 40;
  opt.deck.dt = 1 * ps;
  opt.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  opt.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 1.8 * pf, 3 * pf, 5 * pf};
  return opt;
}

// Table 1's "5/1.6, 100X" inductive line: reliably a two-ramp case.
net::Net inductive_net() {
  return tech::line_net(*tech::find_paper_wire_case(5.0, 1.6), 20 * ff);
}

Request inductive_request(std::string label) {
  Request r;
  r.label = std::move(label);
  r.cell_size = 100.0;
  r.input_slew = 100 * ps;
  r.net = inductive_net();
  return r;
}

class EngineFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() { engine_ = new Engine(tech::Technology::cmos180()); }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static Engine* engine_;
};

Engine* EngineFixture::engine_ = nullptr;

TEST_F(EngineFixture, ModelOnlyMatchesDirectCoreFlow) {
  const Request req = inductive_request("model-only");
  const Outcome<Response> outcome = engine_->model(req, fast_options());
  ASSERT_TRUE(outcome.ok());
  const Response& r = outcome.value();
  EXPECT_EQ("model-only", r.label);
  EXPECT_FALSE(r.has_reference);
  EXPECT_GT(r.elapsed_s, 0.0);

  // The facade must compute exactly what the core flow computes.
  const charlib::CharacterizedDriver* driver = engine_->library().find(100.0);
  ASSERT_NE(nullptr, driver);
  const core::DriverOutputModel direct =
      core::model_driver_output(*driver, req.input_slew, req.net, req.model);
  EXPECT_EQ(direct.kind, r.model.kind);
  EXPECT_EQ(core::ModelKind::two_ramp, r.model.kind);
  EXPECT_DOUBLE_EQ(direct.t50, r.model.t50);
  EXPECT_DOUBLE_EQ(direct.ceff1.ceff, r.model.ceff1.ceff);
  EXPECT_DOUBLE_EQ(direct.ceff2.ceff, r.model.ceff2.ceff);
  // model_near is measured on the modeled PWL; its delay is the model's t50.
  EXPECT_NEAR(r.model.t50, r.model_near.delay, 1e-15);
  EXPECT_GT(r.model_near.slew, 0.0);
}

TEST_F(EngineFixture, ReferenceModeMatchesRunExperiment) {
  Request req = inductive_request("reference");
  req.reference = true;
  req.one_ramp_baseline = true;
  const BatchOptions opt = fast_options();
  const Outcome<Response> outcome = engine_->model(req, opt);
  ASSERT_TRUE(outcome.ok());
  const Response& r = outcome.value();
  ASSERT_TRUE(r.has_reference);

  // The same scenario through the core harness, with the same library, must
  // produce bitwise-identical metrics (this is what keeps the rebased
  // benches' numbers unchanged).
  core::ExperimentCase scenario;
  scenario.driver_size = req.cell_size;
  scenario.input_slew = req.input_slew;
  scenario.net = req.net;
  core::ExperimentOptions eopt;
  eopt.deck = opt.deck;
  eopt.grid = opt.grid;
  eopt.include_far_end = true;
  eopt.include_one_ramp = true;
  const core::ExperimentResult direct = core::run_experiment(
      engine_->technology(), engine_->library(), scenario, eopt);

  EXPECT_DOUBLE_EQ(direct.ref_near.delay, r.ref_near.delay);
  EXPECT_DOUBLE_EQ(direct.ref_near.slew, r.ref_near.slew);
  EXPECT_DOUBLE_EQ(direct.ref_far.delay, r.ref_far.delay);
  EXPECT_DOUBLE_EQ(direct.model_near.delay, r.model_near.delay);
  EXPECT_DOUBLE_EQ(direct.model_far.delay, r.model_far.delay);
  EXPECT_DOUBLE_EQ(direct.one_near.delay, r.one_near.delay);
  EXPECT_DOUBLE_EQ(direct.input_time_50, r.input_time_50);
}

TEST_F(EngineFixture, BatchIsolatesNonConvergentSlot) {
  // Slot 1 is deliberately non-convergent: one fixed-point iteration cannot
  // close an inductive case's Ceff1 gap.  The other slots must come back
  // successful — the acceptance shape: N-1 successes plus one structured
  // failure.
  std::vector<Request> requests;
  requests.push_back(inductive_request("good-0"));
  requests.push_back(inductive_request("bad-1"));
  requests[1].model.iteration.max_iter = 1;
  requests.push_back(inductive_request("good-2"));

  const std::vector<Outcome<Response>> results =
      engine_->run_batch(requests, fast_options());
  ASSERT_EQ(3u, results.size());

  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[2].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(ErrorCode::convergence_failure, results[1].error().code);
  EXPECT_EQ("bad-1", results[1].error().scenario);
  EXPECT_NE(std::string::npos, results[1].error().message.find("did not converge"))
      << results[1].error().message;

  // Opting out of the convergence gate returns the last iterate instead,
  // with the converged flag still inspectable.
  requests[1].require_convergence = false;
  const Outcome<Response> lax = engine_->model(requests[1], fast_options());
  ASSERT_TRUE(lax.ok());
  EXPECT_FALSE(lax.value().model.ceff1.converged);
}

TEST_F(EngineFixture, InvalidRequestsFailWithStructuredErrors) {
  Request empty_net = inductive_request("empty-net");
  empty_net.net = net::Net();
  Request bad_slew = inductive_request("bad-slew");
  bad_slew.input_slew = -1.0;
  Request waveforms_without_reference = inductive_request("no-ref-waveforms");
  waveforms_without_reference.keep_waveforms = true;

  const std::vector<Request> requests = {empty_net, inductive_request("good"),
                                         bad_slew, waveforms_without_reference};
  const std::vector<Outcome<Response>> results =
      engine_->run_batch(requests, fast_options());
  ASSERT_EQ(4u, results.size());

  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(ErrorCode::invalid_request, results[0].error().code);
  EXPECT_EQ("empty-net", results[0].error().scenario);

  EXPECT_TRUE(results[1].ok());

  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(ErrorCode::invalid_request, results[2].error().code);
  EXPECT_EQ("bad-slew", results[2].error().scenario);

  ASSERT_FALSE(results[3].ok());
  EXPECT_EQ(ErrorCode::invalid_request, results[3].error().code);
}

TEST_F(EngineFixture, OutcomeValueThrowsLabeledErrorOnFailure) {
  Request req = inductive_request("unwrapped-failure");
  req.net = net::Net();
  const Outcome<Response> outcome = engine_->model(req, fast_options());
  ASSERT_FALSE(outcome.ok());
  try {
    (void)outcome.value();
    FAIL() << "value() on a failed outcome must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string::npos, std::string(e.what()).find("unwrapped-failure"))
        << e.what();
    EXPECT_NE(std::string::npos, std::string(e.what()).find("invalid_request"))
        << e.what();
  }

  // The mirror-image misuse: error() on a successful outcome throws too.
  const Outcome<Response> good =
      engine_->model(inductive_request("good"), fast_options());
  ASSERT_TRUE(good.ok());
  EXPECT_THROW((void)good.error(), Error);
}

TEST_F(EngineFixture, CoupledSingleNetGroupMatchesPlainRequest) {
  // A group of one is the degenerate coupled case: the engine must compute
  // exactly the single-net model for it.
  const Request plain = inductive_request("plain");
  Request coupled = inductive_request("coupled-single");
  coupled.net = net::Net();
  coupled.group = net::CoupledGroup::single(inductive_net());

  const Response a = engine_->model(plain, fast_options()).value();
  const Response b = engine_->model(coupled, fast_options()).value();
  EXPECT_TRUE(b.has_coupling);
  EXPECT_FALSE(a.has_coupling);
  EXPECT_DOUBLE_EQ(a.model.t50, b.model.t50);
  EXPECT_DOUBLE_EQ(a.model.ceff1.ceff, b.model.ceff1.ceff);
  EXPECT_DOUBLE_EQ(a.model_near.delay, b.model_near.delay);
  EXPECT_DOUBLE_EQ(a.model_near.slew, b.model_near.slew);
  EXPECT_DOUBLE_EQ(0.0, b.delay_pushout_model);
}

TEST_F(EngineFixture, CoupledRequestsModelAndIsolatePerSlot) {
  auto coupled_request = [](std::string label,
                            core::AggressorSwitching switching) {
    Request r;
    r.label = std::move(label);
    r.cell_size = 100.0;
    r.input_slew = 100 * ps;
    net::CoupledGroup group;
    group.add_net(inductive_net(), "victim");
    group.add_net(inductive_net(), "aggr");
    group.couple_capacitance({0, 0}, {1, 0}, 150 * ff);
    r.group = std::move(group);
    r.victim = 0;
    r.aggressors = {{1, 100.0, 100 * ps, switching}};
    return r;
  };

  std::vector<Request> requests;
  requests.push_back(coupled_request("worst", core::AggressorSwitching::opposite));
  requests.push_back(coupled_request("bad-victim", core::AggressorSwitching::quiet));
  requests[1].victim = 7;  // out of range: must fail alone
  requests.push_back(coupled_request("best",
                                     core::AggressorSwitching::same_direction));

  const std::vector<Outcome<Response>> results =
      engine_->run_batch(requests, fast_options());
  ASSERT_EQ(3u, results.size());

  ASSERT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(ErrorCode::invalid_request, results[1].error().code);
  EXPECT_NE(std::string::npos, results[1].error().message.find("victim index"))
      << results[1].error().message;
  ASSERT_TRUE(results[2].ok());

  // 2x Miller slows the victim, 0x speeds it up; the model must order them.
  const Response& worst = results[0].value();
  const Response& best = results[2].value();
  EXPECT_TRUE(worst.has_coupling);
  EXPECT_GT(worst.delay_pushout_model, 0.0);
  EXPECT_LT(best.delay_pushout_model, 0.0);
  EXPECT_GT(worst.model_near.delay, best.model_near.delay);

  // Aggressors without a coupled group are rejected up front.
  Request stray = inductive_request("stray-aggressor");
  stray.aggressors = {{0, 75.0, 100 * ps, core::AggressorSwitching::quiet}};
  const Outcome<Response> rejected = engine_->model(stray, fast_options());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(ErrorCode::invalid_request, rejected.error().code);
}

TEST(OutcomeTaxonomy, BudgetErrorsClassifyToTheirCodes) {
  EXPECT_STREQ("deadline_exceeded", to_string(ErrorCode::deadline_exceeded));
  EXPECT_STREQ("resource_exhausted", to_string(ErrorCode::resource_exhausted));
  EXPECT_EQ(ErrorCode::deadline_exceeded,
            describe_failure(std::make_exception_ptr(DeadlineError("late")), "s").code);
  // CancelledError is-a DeadlineError: same code, distinguishable message.
  EXPECT_EQ(ErrorCode::deadline_exceeded,
            describe_failure(std::make_exception_ptr(CancelledError("stop")), "s").code);
  EXPECT_EQ(ErrorCode::resource_exhausted,
            describe_failure(std::make_exception_ptr(BudgetError("spent")), "s").code);
}

TEST_F(EngineFixture, BatchIsolatesDeadlineSlot) {
  // The doomed slot's sub-nanosecond deadline expires at its very first
  // checkpoint; the N-1 healthy neighbors must come back bitwise identical
  // to a deadline-free run.
  std::vector<Request> requests;
  requests.push_back(inductive_request("good-0"));
  requests.push_back(inductive_request("doomed-1"));
  requests[1].budget.wall_limit_s = 1e-12;
  requests.push_back(inductive_request("good-2"));

  const std::vector<Outcome<Response>> results =
      engine_->run_batch(requests, fast_options());
  ASSERT_EQ(3u, results.size());

  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(ErrorCode::deadline_exceeded, results[1].error().code);
  EXPECT_EQ("doomed-1", results[1].error().scenario);
  EXPECT_NE(std::string::npos, results[1].error().message.find("deadline"))
      << results[1].error().message;
  // The failure reports how long the slot actually ran — promptly.
  EXPECT_GE(results[1].error().elapsed_s, 0.0);
  EXPECT_LT(results[1].error().elapsed_s, 1.0);

  const Response clean =
      engine_->model(inductive_request("clean"), fast_options()).value();
  for (const std::size_t k : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(results[k].ok()) << "slot " << k;
    EXPECT_DOUBLE_EQ(clean.model_near.delay, results[k].value().model_near.delay);
    EXPECT_DOUBLE_EQ(clean.model_near.slew, results[k].value().model_near.slew);
    EXPECT_DOUBLE_EQ(clean.model.ceff1.ceff, results[k].value().model.ceff1.ceff);
    EXPECT_FALSE(results[k].value().degraded);
  }
}

TEST_F(EngineFixture, UnwrapNamesDeadlineCode) {
  Request req = inductive_request("late-slot");
  req.budget.wall_limit_s = 1e-12;
  const Outcome<Response> outcome = engine_->model(req, fast_options());
  ASSERT_FALSE(outcome.ok());
  try {
    (void)outcome.value();
    FAIL() << "value() on a deadline-failed outcome must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string::npos, std::string(e.what()).find("late-slot")) << e.what();
    EXPECT_NE(std::string::npos, std::string(e.what()).find("deadline_exceeded"))
        << e.what();
  }
}

TEST_F(EngineFixture, StepBudgetExhaustionIsResourceExhausted) {
  Request req = inductive_request("step-starved");
  req.reference = true;
  req.budget.max_transient_steps = 16;
  const Outcome<Response> outcome = engine_->model(req, fast_options());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(ErrorCode::resource_exhausted, outcome.error().code);
  EXPECT_NE(std::string::npos, outcome.error().message.find("step budget"))
      << outcome.error().message;
}

TEST_F(EngineFixture, CancelledSlotFailsAndNeverDegrades) {
  Request req = inductive_request("cancelled");
  util::CancelToken token = util::CancelToken::source();
  token.request_cancel();
  req.budget.cancel = token;
  req.degrade.enabled = true;  // must not buy the cancelled slot an answer
  const Outcome<Response> outcome = engine_->model(req, fast_options());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(ErrorCode::deadline_exceeded, outcome.error().code);
  EXPECT_NE(std::string::npos, outcome.error().message.find("cancelled"))
      << outcome.error().message;
}

TEST_F(EngineFixture, DegradeLadderFallsToCeffModelThenMomentsFloor) {
  const Response plain =
      engine_->model(inductive_request("plain"), fast_options()).value();

  // Tier 2: a step-starved reference request falls back to the table-driven
  // Ceff model — flagged degraded, bitwise equal to the plain model answer.
  Request ref = inductive_request("degraded-ref");
  ref.reference = true;
  ref.budget.max_transient_steps = 16;
  ref.degrade.enabled = true;
  const Outcome<Response> tier2 = engine_->model(ref, fast_options());
  ASSERT_TRUE(tier2.ok());
  const Response& r2 = tier2.value();
  EXPECT_TRUE(r2.degraded);
  EXPECT_EQ(Fidelity::ceff_model, r2.fidelity);
  EXPECT_FALSE(r2.has_reference);
  ASSERT_FALSE(r2.attempts.empty());
  EXPECT_EQ(Fidelity::reference, r2.attempts.front().fidelity);
  EXPECT_EQ(ErrorCode::resource_exhausted, r2.attempts.front().code);
  EXPECT_DOUBLE_EQ(plain.model_near.delay, r2.model_near.delay);
  EXPECT_DOUBLE_EQ(plain.model.ceff1.ceff, r2.model.ceff1.ceff);

  // The floor: an instant deadline on a model-only request lands on the
  // moments-only estimate — the cell table at Ctotal, one-ramp, degraded.
  Request floored = inductive_request("floored");
  floored.budget.wall_limit_s = 1e-12;
  floored.degrade.enabled = true;
  const Outcome<Response> tier3 = engine_->model(floored, fast_options());
  ASSERT_TRUE(tier3.ok());
  const Response& r3 = tier3.value();
  EXPECT_TRUE(r3.degraded);
  EXPECT_EQ(Fidelity::moments_only, r3.fidelity);
  EXPECT_EQ(core::ModelKind::one_ramp, r3.model.kind);
  EXPECT_DOUBLE_EQ(inductive_net().total_capacitance(), r3.model.ceff1.ceff);
  ASSERT_FALSE(r3.attempts.empty());
  EXPECT_EQ(ErrorCode::deadline_exceeded, r3.attempts.front().code);
  // Documented envelope: Ceff <= Ctotal and monotone tables make the floor
  // an upper bound on the Ceff-model delay.
  EXPECT_GE(r3.model_near.delay, plain.model_near.delay - 1e-15);
}

TEST_F(EngineFixture, DampedRetryRescuesConvergenceFailure) {
  // An over-relaxed fixed point (damping 6.0) diverges into a bound-clamped oscillation instead of
  // converging; without a policy that is a convergence_failure.
  Request req = inductive_request("over-relaxed");
  req.model.iteration.damping = 6.0;
  const Outcome<Response> plain = engine_->model(req, fast_options());
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(ErrorCode::convergence_failure, plain.error().code);

  // With the policy, one damped retry converges: a full-fidelity,
  // non-degraded answer whose attempt trail records the first try.  The
  // retry damping is pinned to 1.0 — the plain fixed point is known to
  // converge for this net, while the default 0.5 under-relaxes the Ceff2
  // iteration past its cap here.
  Request rescued = req;
  rescued.degrade.enabled = true;
  rescued.degrade.retry_damping = 1.0;
  const Outcome<Response> outcome = engine_->model(rescued, fast_options());
  ASSERT_TRUE(outcome.ok());
  const Response& r = outcome.value();
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(Fidelity::ceff_model, r.fidelity);
  EXPECT_TRUE(r.model.ceff1.converged);
  ASSERT_EQ(1u, r.attempts.size());
  EXPECT_EQ(ErrorCode::convergence_failure, r.attempts.front().code);
}

TEST(EngineCache, CharacterizationFailureIsReportedPerSlot) {
  // An unusable grid makes characterization itself throw.  run_batch must
  // not propagate that: every slot needing the size carries the error (and
  // the characterization is attempted once, not once per slot).
  Engine engine{tech::Technology::cmos180()};
  BatchOptions opt = fast_options();
  opt.grid.input_slews.clear();
  opt.grid.loads.clear();

  const std::vector<Request> requests = {inductive_request("a"),
                                         inductive_request("b")};
  const std::vector<Outcome<Response>> results = engine.run_batch(requests, opt);
  ASSERT_EQ(2u, results.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    ASSERT_FALSE(results[k].ok()) << "slot " << k;
    EXPECT_EQ(ErrorCode::model_error, results[k].error().code);
    EXPECT_FALSE(results[k].error().message.empty());
  }
  EXPECT_EQ("a", results[0].error().scenario);
  EXPECT_EQ("b", results[1].error().scenario);
  EXPECT_EQ(0u, engine.library().size());
}

TEST(EngineCache, WarmCacheAndLibraryRoundTrip) {
  const BatchOptions opt = fast_options();
  Engine first{tech::Technology::cmos180()};
  first.warm_cache({50.0}, opt.grid);
  ASSERT_NE(nullptr, first.library().find(50.0));

  Request req = inductive_request("round-trip");
  req.cell_size = 50.0;
  const Response before = first.model(req, opt).value();

  const std::string path = ::testing::TempDir() + "rlceff_api_roundtrip.lib";
  first.save_library(path);

  // A fresh engine picks the characterization up from disk: no cell is
  // characterized again, and the model comes out bitwise identical.
  Engine second{tech::Technology::cmos180()};
  EXPECT_FALSE(second.load_library(path + ".does-not-exist"));
  ASSERT_TRUE(second.load_library(path));
  ASSERT_NE(nullptr, second.library().find(50.0));
  EXPECT_EQ(1u, second.library().size());

  const Response after = second.model(req, opt).value();
  EXPECT_DOUBLE_EQ(before.model.t50, after.model.t50);
  EXPECT_DOUBLE_EQ(before.model.ceff1.ceff, after.model.ceff1.ceff);
  EXPECT_DOUBLE_EQ(before.model_near.slew, after.model_near.slew);

  std::remove(path.c_str());
}

// ------------------------------------------------- lint admission screen ---

TEST_F(EngineFixture, LintOffByDefaultAndReportLeavesModelUntouched) {
  // Default request: no screen, no report, no diagnostics on the response.
  const Response plain =
      engine_->model(inductive_request("lint-off"), fast_options()).value();
  EXPECT_TRUE(plain.diagnostics.empty());

  // Opting into the report (deep passes on) attaches findings — here the
  // conditioning advisory and the Eq 9 verdict — without changing the model.
  Request req = inductive_request("lint-report");
  req.lint.report = true;
  req.lint.checks = lint::Options{};  // conditioning + model passes
  const Response reported = engine_->model(req, fast_options()).value();
  ASSERT_FALSE(reported.diagnostics.empty());
  bool advisory = false;
  bool eq9 = false;
  for (const lint::Diagnostic& d : reported.diagnostics) {
    advisory |= d.code == lint::Code::solver_advisory;
    eq9 |= d.code == lint::Code::inductance_significant ||
           d.code == lint::Code::inductance_screened;
    EXPECT_NE(lint::Severity::error, d.severity) << lint::format(d);
  }
  EXPECT_TRUE(advisory);
  EXPECT_TRUE(eq9);  // the engine filled the Rs / Tr1 driver context
  EXPECT_DOUBLE_EQ(plain.model.t50, reported.model.t50);
  EXPECT_DOUBLE_EQ(plain.model_near.delay, reported.model_near.delay);
}

TEST_F(EngineFixture, LintScreenRejectsPerSlotAndNeverDegrades) {
  // Slot 0: a legal but near-limit coupled pair (accumulated k = 0.97).  At
  // fail_at = warn with the deep checks on, the screen must reject it before
  // any solve — even with degradation enabled, because lint_rejected is
  // deliberately not a degradable failure.
  Request hot;
  hot.label = "hot-pair";
  {
    net::CoupledGroup group;
    group.add_net(inductive_net(), "victim");
    group.add_net(inductive_net(), "aggr");
    group.couple_inductance({0, 0}, {1, 0}, 0.97);
    hot.group = std::move(group);
  }
  hot.victim = 0;
  hot.noise = false;
  hot.lint.screen = true;
  hot.lint.report = true;
  hot.lint.fail_at = lint::Severity::warn;
  hot.lint.checks = lint::Options{};
  hot.degrade.enabled = true;  // must not buy the rejected slot an answer

  // Slot 1: the same screen on a healthy net passes untouched.
  Request good = inductive_request("screened-good");
  good.lint.screen = true;

  std::vector<Request> requests;
  requests.push_back(std::move(hot));
  requests.push_back(std::move(good));
  const std::vector<Outcome<Response>> results =
      engine_->run_batch(requests, fast_options());
  ASSERT_EQ(2u, results.size());

  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(ErrorCode::lint_rejected, results[0].error().code);
  EXPECT_EQ("hot-pair", results[0].error().scenario);
  EXPECT_NE(std::string::npos,
            results[0].error().message.find("mutual_near_limit"))
      << results[0].error().message;

  ASSERT_TRUE(results[1].ok());
  EXPECT_FALSE(results[1].value().degraded);
  const Response clean =
      engine_->model(inductive_request("screen-ref"), fast_options()).value();
  EXPECT_DOUBLE_EQ(clean.model_near.delay, results[1].value().model_near.delay);
}

// ---- far_end_replay + scenario batching ---------------------------------

std::uint64_t api_dbits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_wave_bitwise(const wave::Waveform& a, const wave::Waveform& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(api_dbits(a.time(i)), api_dbits(b.time(i))) << "t[" << i << "]";
    ASSERT_EQ(api_dbits(a.value(i)), api_dbits(b.value(i))) << "v[" << i << "]";
  }
}

Request replay_request(std::string label, double input_slew) {
  Request r = inductive_request(std::move(label));
  r.input_slew = input_slew;
  r.far_end_replay = true;
  r.keep_waveforms = true;
  return r;
}

TEST_F(EngineFixture, FarEndReplayValidation) {
  Request with_reference = replay_request("replay-ref", 100 * ps);
  with_reference.reference = true;
  ASSERT_FALSE(engine_->model(with_reference, fast_options()).ok());

  Request tiered = replay_request("replay-tier", 100 * ps);
  tiered.tier = tier::TierPolicy::balanced;
  ASSERT_FALSE(engine_->model(tiered, fast_options()).ok());

  Request coupled = replay_request("replay-coupled", 100 * ps);
  coupled.net = net::Net();
  coupled.group = net::CoupledGroup::single(inductive_net());
  ASSERT_FALSE(engine_->model(coupled, fast_options()).ok());
}

TEST_F(EngineFixture, FarEndReplayProducesModelFar) {
  const Outcome<Response> outcome =
      engine_->model(replay_request("replay-single", 100 * ps), fast_options());
  ASSERT_TRUE(outcome.ok());
  const Response& r = outcome.value();
  EXPECT_FALSE(r.has_reference);
  ASSERT_TRUE(r.has_model_far);
  EXPECT_TRUE(r.has_solver);
  EXPECT_NE(sim::SolverKind::automatic, r.solver);
  EXPECT_GT(r.model_far.delay, 0.0);
  EXPECT_GT(r.model_far.slew, 0.0);
  EXPECT_GT(r.model_far_wave.size(), 0u);
  // The replayed far end arrives after the near-end model edge.
  EXPECT_GT(r.model_far.delay, r.model_near.delay);
}

TEST_F(EngineFixture, BatchedReplayBitwiseMatchesPerSlot) {
  // Five equal-topology slots (only the slew differs -> one factorization
  // group) plus one on a different wire (its own group).
  std::vector<Request> requests;
  for (double slew : {40 * ps, 80 * ps, 120 * ps, 160 * ps, 200 * ps}) {
    requests.push_back(
        replay_request("replay-" + std::to_string(int(slew / ps)), slew));
  }
  Request other = replay_request("replay-other-net", 100 * ps);
  other.net = tech::line_net(*tech::find_paper_wire_case(3.0, 1.6), 20 * ff);
  requests.push_back(other);

  BatchOptions batched = fast_options();
  batched.batch_scenarios = true;
  BatchOptions per_slot = fast_options();
  per_slot.batch_scenarios = false;

  const std::vector<Outcome<Response>> a = engine_->run_batch(requests, batched);
  const std::vector<Outcome<Response>> b = engine_->run_batch(requests, per_slot);
  ASSERT_EQ(requests.size(), a.size());
  ASSERT_EQ(requests.size(), b.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << requests[i].label << ": "
                           << (a[i].ok() ? "" : a[i].error().message);
    ASSERT_TRUE(b[i].ok()) << requests[i].label << ": "
                           << (b[i].ok() ? "" : b[i].error().message);
    const Response& ra = a[i].value();
    const Response& rb = b[i].value();
    ASSERT_TRUE(ra.has_model_far);
    ASSERT_TRUE(rb.has_model_far);
    EXPECT_EQ(api_dbits(ra.model_far.delay), api_dbits(rb.model_far.delay))
        << requests[i].label;
    EXPECT_EQ(api_dbits(ra.model_far.slew), api_dbits(rb.model_far.slew))
        << requests[i].label;
    EXPECT_EQ(rb.solver, ra.solver);
    expect_wave_bitwise(ra.model_far_wave, rb.model_far_wave);
  }
}

TEST_F(EngineFixture, BatchedReplayIsolatesBudgetedSlot) {
  // Slot 1 carries a transient step budget too small for its replay: it must
  // fail with resource_exhausted while its group-mates stay bitwise equal to
  // an unfaulted batch.
  std::vector<Request> requests;
  for (double slew : {50 * ps, 100 * ps, 150 * ps}) {
    requests.push_back(
        replay_request("iso-" + std::to_string(int(slew / ps)), slew));
  }
  const std::vector<Outcome<Response>> clean =
      engine_->run_batch(requests, fast_options());
  for (const auto& o : clean) ASSERT_TRUE(o.ok());

  requests[1].budget.max_transient_steps = 10;
  const std::vector<Outcome<Response>> faulted =
      engine_->run_batch(requests, fast_options());
  ASSERT_FALSE(faulted[1].ok());
  EXPECT_EQ(ErrorCode::resource_exhausted, faulted[1].error().code);
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(faulted[i].ok()) << i;
    EXPECT_EQ(api_dbits(clean[i].value().model_far.delay),
              api_dbits(faulted[i].value().model_far.delay));
    expect_wave_bitwise(clean[i].value().model_far_wave,
                        faulted[i].value().model_far_wave);
  }
}

}  // namespace
}  // namespace rlceff::api
