// Tests for the charge-matching effective-capacitance mathematics (Sec. 4).
//
// Strategy: the unified complex-residue implementation is checked three
// independent ways — against closed-form RC charge expressions, against the
// paper's printed Eq 4 / Eq 6 real-pole forms, and against adaptive
// quadrature of the time-domain current for the complex-pole loads of every
// printed wire geometry.
#include "core/ceff.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/charge.h"
#include "moments/admittance.h"
#include "tech/wire.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::core {
namespace {

using namespace rlceff::units;
using moments::RationalAdmittance;
using rlceff::testing::expect_rel_near;

// Two parallel series-RC branches: Y = s C1/(1+s R1 C1) + s C2/(1+s R2 C2).
// Real poles at -1/R1C1, -1/R2C2, with a closed-form ramp charge.
struct TwoBranchRc {
  double r1, c1, r2, c2;

  RationalAdmittance rational() const {
    const double t1 = r1 * c1;
    const double t2 = r2 * c2;
    return RationalAdmittance(c1 + c2, c1 * t2 + c2 * t1, 0.0, t1 + t2, t1 * t2);
  }
  // Charge of v = slope * t into the branches (exact).
  double ramp_charge(double slope, double t) const {
    auto branch = [&](double r, double c) {
      const double tau = r * c;
      return c * (t - tau * (1.0 - std::exp(-t / tau)));
    };
    return slope * (branch(r1, c1) + branch(r2, c2));
  }
  // Charge of a step to v0 at t = 0 over (0, t].
  double step_charge(double v0, double t) const {
    auto branch = [&](double r, double c) {
      return c * (1.0 - std::exp(-t / (r * c)));
    };
    return v0 * (branch(r1, c1) + branch(r2, c2));
  }
};

TEST(ChargeModel, RampChargeMatchesSeriesRcClosedForm) {
  const TwoBranchRc net{50.0, 0.4 * pf, 200.0, 0.8 * pf};
  const ChargeModel q(net.rational());
  for (double t : {10 * ps, 50 * ps, 150 * ps, 600 * ps}) {
    expect_rel_near(net.ramp_charge(2e9, t), q.ramp_charge(2e9, t), 1e-9);
  }
}

TEST(ChargeModel, StepChargeMatchesSeriesRcClosedForm) {
  const TwoBranchRc net{50.0, 0.4 * pf, 200.0, 0.8 * pf};
  const ChargeModel q(net.rational());
  for (double t : {5 * ps, 40 * ps, 300 * ps}) {
    expect_rel_near(net.step_charge(1.8, t), q.step_charge(1.8, t), 1e-9);
  }
}

TEST(ChargeModel, RampChargeStartsAtZero) {
  const TwoBranchRc net{80.0, 0.5 * pf, 150.0, 0.6 * pf};
  const ChargeModel q(net.rational());
  EXPECT_NEAR(0.0, q.ramp_charge(1e9, 1e-18), 1e-25);
  EXPECT_DOUBLE_EQ(0.0, q.ramp_charge(1e9, 0.0));
}

TEST(ChargeModel, PureCapacitorIsExact) {
  const RationalAdmittance y(1 * pf, 0.0, 0.0, 0.0, 0.0);
  const ChargeModel q(y);
  expect_rel_near(1e-12 * 0.9, q.ramp_charge(1e9, 0.9 * ns), 1e-12);
  expect_rel_near(1.8e-12, q.step_charge(1.8, 1 * ns), 1e-12);
}

TEST(ChargeModel, WindowChargeIsAdditive) {
  const TwoBranchRc net{60.0, 0.3 * pf, 120.0, 0.9 * pf};
  const ChargeModel q(net.rational());
  const double whole = q.window_charge(1e9, 0.5, 0.0, 400 * ps);
  const double split = q.window_charge(1e9, 0.5, 0.0, 150 * ps) +
                       q.window_charge(1e9, 0.5, 150 * ps, 400 * ps);
  expect_rel_near(whole, split, 1e-12);
}

TEST(ChargeModel, RejectsUnstableAdmittance) {
  // b1 < 0 puts a pole in the right half plane.
  const RationalAdmittance y(1 * pf, 0.0, 0.0, -1e-10, 1e-21);
  EXPECT_THROW(ChargeModel{y}, Error);
}

TEST(Ceff, UnifiedMatchesPaperEq4OnRealPoles) {
  const TwoBranchRc net{50.0, 0.4 * pf, 200.0, 0.8 * pf};
  const RationalAdmittance y = net.rational();
  const ChargeModel q(y);
  for (double f : {0.55, 0.7, 0.9}) {
    for (double tr1 : {20 * ps, 60 * ps, 150 * ps}) {
      expect_rel_near(ceff_first_ramp_eq4(y, f, tr1), ceff_first_ramp(q, f, tr1), 1e-9);
    }
  }
}

TEST(Ceff, UnifiedMatchesPaperEq6OnRealPoles) {
  const TwoBranchRc net{40.0, 0.5 * pf, 180.0, 0.7 * pf};
  const RationalAdmittance y = net.rational();
  const ChargeModel q(y);
  for (double f : {0.55, 0.75}) {
    for (double tr1 : {30 * ps, 80 * ps}) {
      for (double tr2 : {100 * ps, 300 * ps}) {
        expect_rel_near(ceff_second_ramp_eq6(y, f, tr1, tr2),
                        ceff_second_ramp(q, f, tr1, tr2), 1e-9);
      }
    }
  }
}

TEST(Ceff, Eq4RequiresRealPoles) {
  // Underdamped RLC load -> complex poles -> the printed Eq 4 does not apply.
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 2.5);
  const util::Series series = moments::distributed_line_admittance(
      w.resistance, w.inductance, w.capacitance, 20 * ff);
  const RationalAdmittance y(series);
  ASSERT_TRUE(y.complex_poles());
  EXPECT_THROW(ceff_first_ramp_eq4(y, 0.6, 50 * ps), Error);
}

// Quadrature cross-check over every printed wire geometry (these loads have
// complex poles for wide lines and near-critical damping for narrow ones, so
// the sweep covers both Eq 4/5 and Eq 6/7 branches).
class CeffQuadrature : public ::testing::TestWithParam<tech::PaperWireCase> {};

TEST_P(CeffQuadrature, FirstRampMatchesNumericIntegration) {
  const auto& c = GetParam();
  const util::Series series = moments::distributed_line_admittance(
      c.parasitics.resistance, c.parasitics.inductance, c.parasitics.capacitance,
      20 * ff);
  const ChargeModel q{RationalAdmittance(series)};
  for (double tr1 : {40 * ps, 120 * ps}) {
    expect_rel_near(ceff_first_ramp_numeric(q, 0.65, tr1),
                    ceff_first_ramp(q, 0.65, tr1), 1e-5);
  }
}

TEST_P(CeffQuadrature, SecondRampMatchesNumericIntegration) {
  const auto& c = GetParam();
  const util::Series series = moments::distributed_line_admittance(
      c.parasitics.resistance, c.parasitics.inductance, c.parasitics.capacitance,
      20 * ff);
  const ChargeModel q{RationalAdmittance(series)};
  expect_rel_near(ceff_second_ramp_numeric(q, 0.65, 60 * ps, 250 * ps),
                  ceff_second_ramp(q, 0.65, 60 * ps, 250 * ps), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(AllSixteenCases, CeffQuadrature,
                         ::testing::ValuesIn(tech::paper_wire_cases().begin(),
                                             tech::paper_wire_cases().end()));

TEST(Ceff, SlowRampApproachesTotalCapacitance) {
  // For transitions much slower than every time constant, the whole load
  // charges and Ceff -> Ctotal.
  const TwoBranchRc net{50.0, 0.4 * pf, 200.0, 0.8 * pf};
  const ChargeModel q(net.rational());
  const double slow = ceff_single(q, 1000 * ns);
  expect_rel_near(1.2 * pf, slow, 1e-3);
}

TEST(Ceff, FastRampSeesLessThanTotal) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const util::Series series = moments::distributed_line_admittance(
      w.resistance, w.inductance, w.capacitance, 20 * ff);
  const ChargeModel q{RationalAdmittance(series)};
  const double fast = ceff_first_ramp(q, 0.65, 50 * ps);
  EXPECT_GT(fast, 0.0);
  EXPECT_LT(fast, 0.6 * (w.capacitance + 20 * ff));
}

TEST(Ceff, FirstRampCeffIncreasesWithRampTime) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const util::Series series = moments::distributed_line_admittance(
      w.resistance, w.inductance, w.capacitance, 20 * ff);
  const ChargeModel q{RationalAdmittance(series)};
  double prev = 0.0;
  for (double tr1 = 20 * ps; tr1 <= 640 * ps; tr1 *= 2.0) {
    const double c = ceff_first_ramp(q, 0.65, tr1);
    EXPECT_GT(c, prev) << "tr1=" << tr1;
    prev = c;
  }
}

TEST(Ceff, SecondRampCeffCanExceedTotalCapacitance) {
  // The second window also absorbs the charge the initial step skipped, so
  // Ceff2 > Ctotal is expected for inductively dominated lines.
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const util::Series series = moments::distributed_line_admittance(
      w.resistance, w.inductance, w.capacitance, 20 * ff);
  const ChargeModel q{RationalAdmittance(series)};
  const double c2 = ceff_second_ramp(q, 0.65, 60 * ps, 250 * ps);
  EXPECT_GT(c2, w.capacitance);
}

TEST(Ceff, SingleEqualsFirstRampWithFOne) {
  const TwoBranchRc net{50.0, 0.4 * pf, 200.0, 0.8 * pf};
  const ChargeModel q(net.rational());
  EXPECT_DOUBLE_EQ(ceff_first_ramp(q, 1.0, 80 * ps), ceff_single(q, 80 * ps));
}

TEST(Ceff, ArgumentValidation) {
  const TwoBranchRc net{50.0, 0.4 * pf, 200.0, 0.8 * pf};
  const ChargeModel q(net.rational());
  EXPECT_THROW(ceff_first_ramp(q, 0.0, 50 * ps), Error);
  EXPECT_THROW(ceff_first_ramp(q, 1.2, 50 * ps), Error);
  EXPECT_THROW(ceff_first_ramp(q, 0.6, 0.0), Error);
  EXPECT_THROW(ceff_second_ramp(q, 1.0, 50 * ps, 100 * ps), Error);
  EXPECT_THROW(ceff_second_ramp(q, 0.6, 50 * ps, 0.0), Error);
}

TEST(CeffIteration, ConvergesWithSyntheticTable) {
  // A synthetic "cell table": transition grows affinely with load, the way a
  // real driver's does.  The iteration must find a self-consistent pair.
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const util::Series series = moments::distributed_line_admittance(
      w.resistance, w.inductance, w.capacitance, 20 * ff);
  const ChargeModel q{RationalAdmittance(series)};
  const auto transition = [](double c) { return 20 * ps + c * 60.0; };  // ~60 ps/pF

  const CeffIteration it = iterate_ceff1(q, 0.65, transition);
  EXPECT_TRUE(it.converged);
  EXPECT_LT(it.iterations, 40);
  // Self-consistency: Ceff(tr(Ceff)) == Ceff.
  expect_rel_near(it.ceff, ceff_first_ramp(q, 0.65, transition(it.ceff)), 1e-5);
  EXPECT_GT(it.ceff, 0.0);
  EXPECT_LT(it.ceff, w.capacitance + 20 * ff);
}

TEST(CeffIteration, SecondRampSelfConsistent) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const util::Series series = moments::distributed_line_admittance(
      w.resistance, w.inductance, w.capacitance, 20 * ff);
  const ChargeModel q{RationalAdmittance(series)};
  const auto transition = [](double c) { return 20 * ps + c * 60.0; };
  const double tr1 = 55 * ps;
  const CeffIteration it = iterate_ceff2(q, 0.65, tr1, transition);
  EXPECT_TRUE(it.converged);
  expect_rel_near(it.ceff, ceff_second_ramp(q, 0.65, tr1, transition(it.ceff)), 1e-5);
}

}  // namespace
}  // namespace rlceff::core
