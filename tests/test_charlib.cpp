// Tests for table lookup, driver characterization, and library round trips.
//
// Characterization runs real transient simulations; the suite uses a reduced
// grid to stay fast while still checking the physics trends.
#include "charlib/characterize.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "charlib/library.h"
#include "sim/sweep.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::charlib {
namespace {

using namespace rlceff::units;
using rlceff::testing::expect_rel_near;

TEST(Table2D, ExactOnGridPoints) {
  const Table2D t({1.0, 2.0}, {10.0, 20.0, 30.0}, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(1.0, t.lookup(1.0, 10.0));
  EXPECT_DOUBLE_EQ(3.0, t.lookup(1.0, 30.0));
  EXPECT_DOUBLE_EQ(6.0, t.lookup(2.0, 30.0));
}

TEST(Table2D, BilinearInterior) {
  const Table2D t({0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0, 2.0, 4.0});
  // Center: mean of corner slopes -> 0.25*(0+1+2+4).
  EXPECT_DOUBLE_EQ(1.75, t.lookup(0.5, 0.5));
  EXPECT_DOUBLE_EQ(0.5, t.lookup(0.0, 0.5));
  EXPECT_DOUBLE_EQ(1.0, t.lookup(0.5, 0.0));
}

TEST(Table2D, LinearExtrapolationOutsideGrid) {
  const Table2D t({0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0, 1.0, 2.0});
  // Columns are linear with slope 1 in each axis -> extrapolation continues.
  EXPECT_NEAR(3.0, t.lookup(2.0, 1.0), 1e-12);
  EXPECT_NEAR(-1.0, t.lookup(0.0, -1.0), 1e-12);
}

TEST(Table2D, SingleRowActsAs1D) {
  const Table2D t({1.0}, {0.0, 10.0}, {5.0, 15.0});
  EXPECT_DOUBLE_EQ(10.0, t.lookup(99.0, 5.0));
}

TEST(Table2D, ValidatesShape) {
  EXPECT_THROW(Table2D({1.0}, {1.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(Table2D({2.0, 1.0}, {1.0}, {1.0, 2.0}), Error);
}

class CharacterizedDriverFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    technology_ = new tech::Technology(tech::Technology::cmos180());
    CharacterizationGrid grid;
    grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
    grid.loads = {50 * ff, 200 * ff, 700 * ff, 1.5 * pf, 3 * pf};
    driver_ = new CharacterizedDriver(
        characterize_driver(*technology_, tech::Inverter{75.0}, grid));
  }
  static void TearDownTestSuite() {
    delete driver_;
    delete technology_;
    driver_ = nullptr;
    technology_ = nullptr;
  }

  static tech::Technology* technology_;
  static CharacterizedDriver* driver_;
};

tech::Technology* CharacterizedDriverFixture::technology_ = nullptr;
CharacterizedDriver* CharacterizedDriverFixture::driver_ = nullptr;

TEST_F(CharacterizedDriverFixture, DelayIncreasesWithLoad) {
  const double d1 = driver_->delay(100 * ps, 100 * ff);
  const double d2 = driver_->delay(100 * ps, 1 * pf);
  const double d3 = driver_->delay(100 * ps, 2.5 * pf);
  EXPECT_GT(d2, d1);
  EXPECT_GT(d3, d2);
}

TEST_F(CharacterizedDriverFixture, TransitionIncreasesWithLoad) {
  const double t1 = driver_->output_transition(100 * ps, 100 * ff);
  const double t2 = driver_->output_transition(100 * ps, 1 * pf);
  EXPECT_GT(t2, 2.0 * t1);
}

TEST_F(CharacterizedDriverFixture, DelayIncreasesWithInputSlew) {
  const double fast = driver_->delay(50 * ps, 700 * ff);
  const double slow = driver_->delay(200 * ps, 700 * ff);
  EXPECT_GT(slow, fast);
}

TEST_F(CharacterizedDriverFixture, ResistanceRoughlyLoadIndependentAtLargeLoads) {
  // The Thevenin fit should extract a similar Rs across heavy loads (the
  // exponential-tail region is resistance dominated).
  const double r1 = driver_->driver_resistance(100 * ps, 700 * ff);
  const double r2 = driver_->driver_resistance(100 * ps, 2 * pf);
  expect_rel_near(r1, r2, 0.30);
}

TEST_F(CharacterizedDriverFixture, SeventyFiveXResistanceNearZ0Regime) {
  // The calibration target: a 75X driver must sit below the 56-80 ohm Z0
  // band (fast-driver regime) but not absurdly low.
  const double rs = driver_->driver_resistance(100 * ps, 1.1 * pf);
  EXPECT_GT(rs, 25.0);
  EXPECT_LT(rs, 60.0);
}

TEST_F(CharacterizedDriverFixture, LibraryRoundTripPreservesTables) {
  CellLibrary lib;
  lib.add(*driver_);
  std::stringstream buffer;
  lib.save(buffer);
  CellLibrary loaded;
  loaded.load(buffer);
  ASSERT_EQ(1u, loaded.size());
  const CharacterizedDriver* d = loaded.find(75.0);
  ASSERT_NE(nullptr, d);
  EXPECT_DOUBLE_EQ(driver_->vdd(), d->vdd());
  for (double slew : {60 * ps, 150 * ps}) {
    for (double load : {100 * ff, 900 * ff, 2 * pf}) {
      EXPECT_DOUBLE_EQ(driver_->delay(slew, load), d->delay(slew, load));
      EXPECT_DOUBLE_EQ(driver_->output_transition(slew, load),
                       d->output_transition(slew, load));
      EXPECT_DOUBLE_EQ(driver_->driver_resistance(slew, load),
                       d->driver_resistance(slew, load));
    }
  }
}

TEST_F(CharacterizedDriverFixture, LoadRejectsCorruptStream) {
  std::stringstream buffer("not_a_library 1");
  CellLibrary lib;
  EXPECT_THROW(lib.load(buffer), Error);
}

TEST_F(CharacterizedDriverFixture, LoadMergesAndSkipsExistingSizes) {
  CellLibrary lib;
  lib.add(*driver_);
  std::stringstream buffer;
  lib.save(buffer);

  // Merging a stream into a library that already has the size is a no-op;
  // the original driver object stays in place.
  const CharacterizedDriver* before = lib.find(75.0);
  lib.load(buffer);
  EXPECT_EQ(1u, lib.size());
  EXPECT_EQ(before, lib.find(75.0));
}

TEST_F(CharacterizedDriverFixture, DuplicateSizeRejected) {
  CellLibrary lib;
  lib.add(*driver_);
  EXPECT_THROW(lib.add(*driver_), Error);
}

TEST(CellLibrary, EnsureDriverCaches) {
  const tech::Technology t = tech::Technology::cmos180();
  CellLibrary lib;
  CharacterizationGrid grid;
  grid.input_slews = {100 * ps};
  grid.loads = {100 * ff, 500 * ff};
  const CharacterizedDriver& a = lib.ensure_driver(t, 50.0, grid);
  const CharacterizedDriver& b = lib.ensure_driver(t, 50.0, grid);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(1u, lib.size());
}

// Regression for the pre-api::Engine hazard: ensure_driver was unguarded and
// returned vector references that the next push_back invalidated, so two
// sweep workers requesting uncharacterized cells raced and could read freed
// memory.  Hammer one shared library from a parallel sweep (the exact shape
// the Engine's run_batch uses) and check that every worker saw the same
// stable driver object per size; the sanitizer CI job turns any surviving
// race or dangling reference into a hard failure.
TEST(CellLibrary, EnsureDriverIsThreadSafeUnderParallelSweep) {
  const tech::Technology t = tech::Technology::cmos180();
  CellLibrary lib;
  CharacterizationGrid grid;
  grid.input_slews = {100 * ps};
  grid.loads = {100 * ff, 500 * ff};
  grid.n_threads = 1;  // no nested pools; the outer sweep supplies parallelism

  const std::vector<double> sizes = {25.0, 50.0, 75.0, 100.0};
  constexpr std::size_t n_tasks = 32;
  std::vector<const CharacterizedDriver*> seen(n_tasks, nullptr);
  sim::run_indexed_sweep(
      n_tasks,
      [&](std::size_t i) {
        const CharacterizedDriver& d =
            lib.ensure_driver(t, sizes[i % sizes.size()], grid);
        // Touch the tables through the reference: a dangling reference here
        // is what the old vector-backed library produced.
        ASSERT_GT(d.delay(100 * ps, 300 * ff), 0.0);
        seen[i] = &d;
      },
      8);

  ASSERT_EQ(sizes.size(), lib.size());
  for (std::size_t i = 0; i < n_tasks; ++i) {
    EXPECT_EQ(lib.find(sizes[i % sizes.size()]), seen[i])
        << "task " << i << " saw a non-canonical driver reference";
  }
}

TEST(Characterize, StrongerDriverIsFasterAndStiffer) {
  const tech::Technology t = tech::Technology::cmos180();
  CharacterizationGrid grid;
  grid.input_slews = {100 * ps};
  grid.loads = {200 * ff, 1 * pf};
  const CharacterizedDriver weak = characterize_driver(t, tech::Inverter{25.0}, grid);
  const CharacterizedDriver strong = characterize_driver(t, tech::Inverter{100.0}, grid);
  EXPECT_GT(weak.delay(100 * ps, 1 * pf), strong.delay(100 * ps, 1 * pf));
  EXPECT_GT(weak.driver_resistance(100 * ps, 1 * pf),
            strong.driver_resistance(100 * ps, 1 * pf));
  // Rs scales roughly inversely with drive strength.
  const double ratio = weak.driver_resistance(100 * ps, 1 * pf) /
                       strong.driver_resistance(100 * ps, 1 * pf);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

}  // namespace
}  // namespace rlceff::charlib
