// Unit tests for netlist construction, deck builders, and MNA structure.
#include "circuit/netlist.h"

#include <gtest/gtest.h>

#include "circuit/builders.h"
#include "circuit/mna.h"
#include "test_helpers.h"
#include "util/error.h"

namespace rlceff::ckt {
namespace {

TEST(Netlist, NamedNodesAreStable) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, nl.node("a"));
  EXPECT_EQ(ground, nl.node("0"));
  EXPECT_EQ(ground, nl.node("gnd"));
}

TEST(Netlist, DeviceValidation) {
  Netlist nl;
  const NodeId a = nl.node("a");
  EXPECT_THROW(nl.add_resistor(a, ground, 0.0), Error);
  EXPECT_THROW(nl.add_resistor(a, ground, -1.0), Error);
  EXPECT_THROW(nl.add_inductor(a, ground, 0.0), Error);
  EXPECT_THROW(nl.add_capacitor(a, ground, -1e-15), Error);
  EXPECT_THROW(nl.add_resistor(a, 99, 1.0), Error);
  // Zero capacitance is silently dropped, not an error.
  nl.add_capacitor(a, ground, 0.0);
  EXPECT_TRUE(nl.capacitors().empty());
}

TEST(Netlist, TotalCapacitanceSumsGroundedCaps) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_capacitor(a, ground, 1e-12);
  nl.add_capacitor(b, ground, 2e-12);
  EXPECT_DOUBLE_EQ(3e-12, nl.total_capacitance());
}

TEST(Builders, LadderHasExpectedTotals) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const auto ladder = append_rlc_ladder(nl, in, 100.0, 5e-9, 1e-12, 10);

  double r_total = 0.0;
  for (const auto& r : nl.resistors()) r_total += r.resistance;
  double l_total = 0.0;
  for (const auto& l : nl.inductors()) l_total += l.inductance;
  double c_total = 0.0;
  for (const auto& c : nl.capacitors()) c_total += c.capacitance;

  EXPECT_NEAR(100.0, r_total, 1e-9);
  EXPECT_NEAR(5e-9, l_total, 1e-20);
  EXPECT_NEAR(1e-12, c_total, 1e-24);
  EXPECT_EQ(10u, nl.inductors().size());
  EXPECT_NE(ladder.near_end, ladder.far_end);
}

TEST(Builders, LadderEndCapsAreHalfSegments) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const auto ladder = append_rlc_ladder(nl, in, 10.0, 1e-9, 1e-12, 4);
  // First capacitor stamped is the near-end half segment.
  EXPECT_EQ(in, nl.capacitors().front().a);
  EXPECT_NEAR(1e-12 / 8.0, nl.capacitors().front().capacitance, 1e-27);
  // Far-end node carries the final half segment.
  const auto& last = nl.capacitors().back();
  EXPECT_EQ(ladder.far_end, last.a);
  EXPECT_NEAR(1e-12 / 8.0, last.capacitance, 1e-27);
}

TEST(Builders, PiLoad) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId far = append_pi_load(nl, in, 0.3e-12, 50.0, 0.5e-12);
  EXPECT_NE(in, far);
  EXPECT_EQ(1u, nl.resistors().size());
  EXPECT_EQ(2u, nl.capacitors().size());
}

TEST(MnaStructure, CountsUnknowns) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_vsource(a, ground, wave::Pwl({{0.0, 1.0}}));
  nl.add_resistor(a, b, 10.0);
  nl.add_inductor(b, ground, 1e-9);
  const MnaStructure s(nl);
  // Two node voltages + one source current + one inductor current.
  EXPECT_EQ(4u, s.unknown_count());
}

TEST(MnaStructure, IndicesAreDistinctAndInRange) {
  Netlist nl;
  const NodeId in = nl.node("in");
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 1.0}}));
  append_rlc_ladder(nl, in, 10.0, 1e-9, 1e-12, 5);
  const MnaStructure s(nl);

  std::vector<bool> used(s.unknown_count(), false);
  for (NodeId n = 1; n < nl.node_count(); ++n) {
    const std::size_t idx = s.node_index(n);
    ASSERT_LT(idx, s.unknown_count());
    EXPECT_FALSE(used[idx]);
    used[idx] = true;
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const std::size_t idx = s.vsource_index(k);
    ASSERT_LT(idx, s.unknown_count());
    EXPECT_FALSE(used[idx]);
    used[idx] = true;
  }
  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const std::size_t idx = s.inductor_index(k);
    ASSERT_LT(idx, s.unknown_count());
    EXPECT_FALSE(used[idx]);
    used[idx] = true;
  }
}

TEST(MnaStructure, LadderBandwidthIsSmallAfterRcm) {
  Netlist nl;
  const NodeId in = nl.node("in");
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 1.0}}));
  append_rlc_ladder(nl, in, 100.0, 5e-9, 1e-12, 100);
  const MnaStructure s(nl);
  // A 100-segment RLC ladder has ~300 unknowns; RCM must keep the band tiny.
  EXPECT_GT(s.unknown_count(), 300u);
  EXPECT_LE(s.bandwidth(), 4u);
}

TEST(MnaStructure, GroundHasNoUnknown) {
  Netlist nl;
  nl.add_resistor(nl.node("a"), ground, 1.0);
  const MnaStructure s(nl);
  EXPECT_THROW(s.node_index(ground), Error);
}

}  // namespace
}  // namespace rlceff::ckt
