// Tests for the coupled-net IR and its path through the stack: construction
// validation naming offending pairs, the single-net degenerate case staying
// bitwise-identical to the net::Net flow (deck, simulation, Ceff model),
// mutual-inductance MNA stamps (cached == naive), Miller decoupling
// bookkeeping, crosstalk physics sanity, and the banded->dense LU fallback.
#include "net/coupled.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "charlib/library.h"
#include "circuit/builders.h"
#include "circuit/mna.h"
#include "core/coupled_experiment.h"
#include "core/experiment.h"
#include "moments/admittance.h"
#include "sim/transient.h"
#include "tech/testbench.h"
#include "tech/wire.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::net {
namespace {

using namespace rlceff::units;

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

Net short_line() { return Net::uniform_line(60.0, 1.2 * nh, 300 * ff, 20 * ff); }

CoupledGroup two_lines(double cc, double k = 0.0) {
  CoupledGroup group;
  group.add_net(short_line(), "victim");
  group.add_net(short_line(), "aggr");
  group.couple_capacitance({0, 0}, {1, 0}, cc);
  if (k > 0.0) group.couple_inductance({0, 0}, {1, 0}, k);
  return group;
}

// Element-by-element deck equality (exact: same nodes, same values, same
// order) — the representation the simulator consumes.
void expect_same_deck(const ckt::Netlist& a, const ckt::Netlist& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.resistors().size(), b.resistors().size());
  for (std::size_t i = 0; i < a.resistors().size(); ++i) {
    EXPECT_EQ(a.resistors()[i].a, b.resistors()[i].a);
    EXPECT_EQ(a.resistors()[i].b, b.resistors()[i].b);
    EXPECT_EQ(a.resistors()[i].resistance, b.resistors()[i].resistance);
  }
  ASSERT_EQ(a.capacitors().size(), b.capacitors().size());
  for (std::size_t i = 0; i < a.capacitors().size(); ++i) {
    EXPECT_EQ(a.capacitors()[i].a, b.capacitors()[i].a);
    EXPECT_EQ(a.capacitors()[i].b, b.capacitors()[i].b);
    EXPECT_EQ(a.capacitors()[i].capacitance, b.capacitors()[i].capacitance);
  }
  ASSERT_EQ(a.inductors().size(), b.inductors().size());
  for (std::size_t i = 0; i < a.inductors().size(); ++i) {
    EXPECT_EQ(a.inductors()[i].a, b.inductors()[i].a);
    EXPECT_EQ(a.inductors()[i].b, b.inductors()[i].b);
    EXPECT_EQ(a.inductors()[i].inductance, b.inductors()[i].inductance);
  }
  ASSERT_EQ(a.mutual_inductors().size(), b.mutual_inductors().size());
  for (std::size_t i = 0; i < a.mutual_inductors().size(); ++i) {
    EXPECT_EQ(a.mutual_inductors()[i].la, b.mutual_inductors()[i].la);
    EXPECT_EQ(a.mutual_inductors()[i].lb, b.mutual_inductors()[i].lb);
    EXPECT_EQ(a.mutual_inductors()[i].mutual, b.mutual_inductors()[i].mutual);
  }
  EXPECT_EQ(a.vsources().size(), b.vsources().size());
  EXPECT_EQ(a.mosfets().size(), b.mosfets().size());
}

void expect_same_waveform(const wave::Waveform& a, const wave::Waveform& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a.time(k), b.time(k)) << "sample " << k;
    ASSERT_EQ(a.value(k), b.value(k)) << "t=" << a.time(k);
  }
}

tech::DeckOptions coarse_deck() {
  tech::DeckOptions deck;
  deck.segments = 10;
  deck.dt = 2 * ps;
  deck.t_stop = 1.2e-9;
  return deck;
}

charlib::CharacterizationGrid small_grid() {
  charlib::CharacterizationGrid grid;
  grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};
  return grid;
}

// One shared small-grid driver characterization for the model-level tests.
const charlib::CharacterizedDriver& shared_driver() {
  static charlib::CellLibrary library;
  return library.ensure_driver(tech::Technology::cmos180(), 75.0, small_grid());
}

// ---- construction-time validation ---------------------------------------

TEST(CoupledGroupValidation, RejectsDuplicateLabelsAndEmptyNets) {
  CoupledGroup group;
  group.add_net(short_line(), "a");
  EXPECT_THROW(group.add_net(short_line(), "a"), Error);
  EXPECT_THROW(group.add_net(Net{}, "b"), Error);
  EXPECT_EQ(1u, group.size());
}

// Found by the property generator: an explicit "net1" followed by an
// unlabeled net used to abort with a duplicate-label error the caller never
// wrote, because the auto-label counter blindly used the insertion index.
TEST(CoupledGroupValidation, AutoLabelsSkipTakenNames) {
  CoupledGroup group;
  group.add_net(short_line(), "net1");
  const std::size_t a = group.add_net(short_line());  // would auto-label "net1"
  const std::size_t b = group.add_net(short_line());
  EXPECT_EQ("net1", group.label_at(0));
  EXPECT_EQ("net2", group.label_at(a));
  EXPECT_EQ("net3", group.label_at(b));
  EXPECT_EQ(0u, group.index_of("net1"));
  EXPECT_EQ(a, group.index_of("net2"));
}

TEST(CoupledGroupValidation, ErrorsNameTheOffendingPair) {
  CoupledGroup group;
  group.add_net(short_line(), "left");
  group.add_net(short_line(), "right");

  std::string msg = error_message(
      [&] { group.couple_capacitance({0, 0}, {1, 3}, 50 * ff); });
  EXPECT_NE(std::string::npos, msg.find("'left' section 0")) << msg;
  EXPECT_NE(std::string::npos, msg.find("'right' section 3")) << msg;
  EXPECT_NE(std::string::npos, msg.find("out of range")) << msg;

  msg = error_message([&] { group.couple_capacitance({0, 0}, {0, 0}, 50 * ff); });
  EXPECT_NE(std::string::npos, msg.find("same net")) << msg;

  msg = error_message([&] { group.couple_capacitance({0, 0}, {2, 0}, 50 * ff); });
  EXPECT_NE(std::string::npos, msg.find("net index out of range")) << msg;

  msg = error_message([&] { group.couple_capacitance({0, 0}, {1, 0}, -50 * ff); });
  EXPECT_NE(std::string::npos, msg.find("non-physical capacitance")) << msg;

  msg = error_message([&] { group.couple_inductance({0, 0}, {1, 0}, 1.5); });
  EXPECT_NE(std::string::npos, msg.find("outside (0, 1)")) << msg;

  // Coupling must land on distributed spans; lumped tree sections reject.
  Branch lumped;
  lumped.sections.push_back({40.0, 0.0, 100 * ff, SectionKind::lumped});
  CoupledGroup tree_group;
  tree_group.add_net(short_line(), "line");
  tree_group.add_net(Net(lumped), "tree");
  msg = error_message(
      [&] { tree_group.couple_capacitance({0, 0}, {1, 0}, 50 * ff); });
  EXPECT_NE(std::string::npos, msg.find("lumped section")) << msg;

  // A coupling to a section with no inductance cannot carry a K element.
  CoupledGroup rc_group;
  rc_group.add_net(short_line(), "rlc");
  rc_group.add_net(Net::uniform_line(60.0, 0.0, 300 * ff, 20 * ff), "rc");
  msg = error_message([&] { rc_group.couple_inductance({0, 0}, {1, 0}, 0.3); });
  EXPECT_NE(std::string::npos, msg.find("carries no inductance")) << msg;

  // All rejected couplings must leave the group untouched.
  EXPECT_TRUE(group.coupling_caps().empty());
  EXPECT_TRUE(group.mutual_couplings().empty());
}

TEST(CoupledGroupValidation, AccumulatedMutualCouplingStaysPassive) {
  // Couplings on the same section pair sum; the aggregate must stay under
  // k = 1 even when each contribution alone is fine.
  CoupledGroup group = two_lines(50 * ff, 0.6);
  EXPECT_THROW(group.couple_inductance({0, 0}, {1, 0}, 0.5), Error);  // 1.1 total
  EXPECT_THROW(group.couple_inductance({1, 0}, {0, 0}, 0.5), Error);  // flipped too
  group.couple_inductance({0, 0}, {1, 0}, 0.3);  // 0.9 total: still passive
  ASSERT_EQ(2u, group.mutual_couplings().size());

  // The compiled deck carries one K element per aligned segment and per
  // coupling; with identical lines M_seg = k * L_seg, so the values must sum
  // to (0.6 + 0.3) * L_total across the ladder.
  ckt::Netlist nl;
  const std::array<ckt::NodeId, 2> froms{nl.node("a"), nl.node("b")};
  ckt::append_coupled_group(nl, froms, group, 4);
  ASSERT_EQ(2u * 4u, nl.mutual_inductors().size());
  double m_total = 0.0;
  for (const ckt::MutualInductor& m : nl.mutual_inductors()) m_total += m.mutual;
  EXPECT_NEAR(0.9 * 1.2 * nh, m_total, 1e-15 * nh);

  // Same aggregate rule at the netlist layer.
  ckt::Netlist pair;
  const ckt::NodeId n = pair.add_node();
  pair.add_inductor(n, ckt::ground, 1 * nh);
  pair.add_inductor(pair.add_node(), ckt::ground, 1 * nh);
  pair.add_mutual_inductor(0, 1, 0.6 * nh);
  EXPECT_THROW(pair.add_mutual_inductor(1, 0, 0.5 * nh), Error);
  pair.add_mutual_inductor(1, 0, 0.3 * nh);
  EXPECT_EQ(2u, pair.mutual_inductors().size());
}

TEST(CoupledGroupValidation, SectionBookkeeping) {
  CoupledGroup group = two_lines(50 * ff, 0.4);
  EXPECT_EQ(2u, group.size());
  EXPECT_EQ(1u, group.section_count(0));
  EXPECT_EQ(0u, group.index_of("victim"));
  EXPECT_EQ(1u, group.index_of("aggr"));
  EXPECT_THROW(group.index_of("nobody"), Error);
  EXPECT_DOUBLE_EQ(50 * ff, group.coupling_capacitance_at(0));
  EXPECT_DOUBLE_EQ(50 * ff, group.coupling_capacitance_at(1));
}

// ---- single-net degenerate case ------------------------------------------

TEST(CoupledGroupEquivalence, SingleNetGroupCompilesTheExactAppendNetDeck) {
  const Net net = tech::line_net(*tech::find_paper_wire_case(5.0, 1.6), 20 * ff);

  ckt::Netlist single;
  const ckt::NodeId from_single = single.node("out");
  ckt::NetDeckNodes nodes_single = ckt::append_net(single, from_single, net, 40);

  ckt::Netlist grouped;
  const ckt::NodeId from_grouped = grouped.node("out");
  const std::array<ckt::NodeId, 1> froms{from_grouped};
  ckt::CoupledDeckNodes nodes_grouped =
      ckt::append_coupled_group(grouped, froms, CoupledGroup::single(net), 40);

  expect_same_deck(single, grouped);
  ASSERT_EQ(1u, nodes_grouped.nets.size());
  EXPECT_EQ(nodes_single.leaves, nodes_grouped.nets[0].leaves);
  ASSERT_EQ(nodes_single.sections.size(), nodes_grouped.nets[0].sections.size());
  EXPECT_EQ(nodes_single.sections[0].taps, nodes_grouped.nets[0].sections[0].taps);
}

TEST(CoupledGroupEquivalence, SingleNetGroupSimulatesBitwiseIdentical) {
  const tech::Technology technology = tech::Technology::cmos180();
  const Net net = short_line();
  const tech::DeckOptions deck = coarse_deck();
  const tech::Inverter cell{75.0};

  const tech::NetSimResult single =
      tech::simulate_driver_net(technology, cell, 100 * ps, net, deck);

  const std::array<tech::NetDrive, 1> drives{
      tech::NetDrive{cell, 100 * ps, tech::DriveEdge::rise}};
  const tech::CoupledSimResult grouped = tech::simulate_coupled_group(
      technology, drives, CoupledGroup::single(net), deck);

  ASSERT_EQ(1u, grouped.nets.size());
  EXPECT_EQ(single.input_time_50, grouped.nets[0].input_time_50);
  expect_same_waveform(single.near_end, grouped.nets[0].near_end);
  ASSERT_EQ(single.leaves.size(), grouped.nets[0].leaves.size());
  expect_same_waveform(single.leaves[0], grouped.nets[0].leaves[0]);
}

TEST(CoupledGroupEquivalence, SingleNetGroupModelsBitwiseIdentical) {
  const Net net = short_line();
  const Net decoupled = CoupledGroup::single(net).decoupled_net(0);

  // The decoupled single net must be the same IR...
  const util::Series ya = moments::net_admittance(net);
  const util::Series yb = moments::net_admittance(decoupled);
  ASSERT_EQ(ya.size(), yb.size());
  for (std::size_t k = 0; k < ya.size(); ++k) EXPECT_EQ(ya[k], yb[k]);

  // ...and the paper flow on it must produce the identical model.
  const core::DriverOutputModel a =
      core::model_driver_output(shared_driver(), 100 * ps, net);
  const core::DriverOutputModel b =
      core::model_driver_output(shared_driver(), 100 * ps, decoupled);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.t50, b.t50);
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(a.ceff1.ceff, b.ceff1.ceff);
  EXPECT_EQ(a.ceff2.ceff, b.ceff2.ceff);
  ASSERT_EQ(a.waveform.points().size(), b.waveform.points().size());
  for (std::size_t k = 0; k < a.waveform.points().size(); ++k) {
    EXPECT_EQ(a.waveform.points()[k].first, b.waveform.points()[k].first);
    EXPECT_EQ(a.waveform.points()[k].second, b.waveform.points()[k].second);
  }
}

// ---- Miller decoupling ----------------------------------------------------

TEST(CoupledGroup, MillerFactorsScaleGroundedCoupling) {
  const CoupledGroup group = two_lines(50 * ff);
  const double base = group.net_at(0).total_capacitance();

  const std::array<double, 2> same{1.0, 0.0};
  const std::array<double, 2> quiet{1.0, 1.0};
  const std::array<double, 2> opposite{1.0, 2.0};
  EXPECT_DOUBLE_EQ(base, group.decoupled_net(0, same).total_capacitance());
  EXPECT_DOUBLE_EQ(base + 50 * ff, group.decoupled_net(0, quiet).total_capacitance());
  EXPECT_DOUBLE_EQ(base + 100 * ff,
                   group.decoupled_net(0, opposite).total_capacitance());
  // The default overload is the quiet (1x) environment.
  EXPECT_DOUBLE_EQ(base + 50 * ff, group.decoupled_net(1).total_capacitance());

  EXPECT_EQ(0.0, core::miller_factor(core::AggressorSwitching::same_direction));
  EXPECT_EQ(1.0, core::miller_factor(core::AggressorSwitching::quiet));
  EXPECT_EQ(2.0, core::miller_factor(core::AggressorSwitching::opposite));
}

// ---- mutual inductance through the simulator ------------------------------

TEST(MutualInductance, NetlistValidatesKElements) {
  ckt::Netlist nl;
  const ckt::NodeId a = nl.add_node();
  const ckt::NodeId b = nl.add_node();
  nl.add_inductor(a, ckt::ground, 1 * nh);
  nl.add_inductor(b, ckt::ground, 4 * nh);
  EXPECT_THROW(nl.add_mutual_inductor(0, 0, 0.5 * nh), Error);
  EXPECT_THROW(nl.add_mutual_inductor(0, 2, 0.5 * nh), Error);
  EXPECT_THROW(nl.add_mutual_inductor(0, 1, 2.1 * nh), Error);  // |M| >= sqrt(LaLb)
  EXPECT_THROW(nl.add_mutual_inductor(0, 1, 0.0), Error);
  nl.add_mutual_inductor(0, 1, 1.9 * nh);
  ASSERT_EQ(1u, nl.mutual_inductors().size());
  EXPECT_EQ(0u, nl.mutual_inductors()[0].la);
  EXPECT_EQ(1u, nl.mutual_inductors()[0].lb);
}

// A linear source-driven coupled deck: cached and naive assembly must stamp
// the same system, mutual inductors included.
TEST(MutualInductance, CachedAndNaiveAssemblyAgreeBitwise) {
  for (const sim::Integrator integrator :
       {sim::Integrator::trapezoidal, sim::Integrator::backward_euler}) {
    const CoupledGroup group = two_lines(60 * ff, 0.5);
    ckt::Netlist nl;
    const ckt::NodeId a = nl.node("a");
    const ckt::NodeId b = nl.node("b");
    nl.add_vsource(a, ckt::ground, wave::Pwl({{10 * ps, 0.0}, {110 * ps, 1.8}}));
    nl.add_vsource(b, ckt::ground, wave::Pwl({{0.0, 0.0}}));
    const std::array<ckt::NodeId, 2> froms{a, b};
    const ckt::CoupledDeckNodes deck = ckt::append_coupled_group(nl, froms, group, 8);
    ASSERT_FALSE(nl.mutual_inductors().empty());

    sim::TransientOptions options;
    options.t_stop = 0.6e-9;
    options.dt = 2 * ps;
    options.integrator = integrator;
    const std::array<ckt::NodeId, 2> probes{deck.nets[0].leaves[0],
                                            deck.nets[1].leaves[0]};

    options.assembly = sim::AssemblyMode::cached;
    const sim::TransientResult cached = sim::simulate(nl, options, probes);
    options.assembly = sim::AssemblyMode::naive;
    const sim::TransientResult naive = sim::simulate(nl, options, probes);

    for (const ckt::NodeId p : probes) {
      expect_same_waveform(cached.at(p), naive.at(p));
    }
  }
}

TEST(MutualInductance, CouplingChangesTheWaveformButStaysPassive) {
  auto far_wave = [](double k) {
    const CoupledGroup group = two_lines(30 * ff, k);
    ckt::Netlist nl;
    const ckt::NodeId a = nl.node("a");
    const ckt::NodeId b = nl.node("b");
    nl.add_vsource(a, ckt::ground, wave::Pwl({{10 * ps, 0.0}, {60 * ps, 1.8}}));
    nl.add_vsource(b, ckt::ground, wave::Pwl({{0.0, 0.0}}));
    const std::array<ckt::NodeId, 2> froms{a, b};
    const ckt::CoupledDeckNodes deck = ckt::append_coupled_group(nl, froms, group, 8);
    sim::TransientOptions options;
    options.t_stop = 0.8e-9;
    options.dt = 1 * ps;
    const std::array<ckt::NodeId, 1> probes{deck.nets[1].leaves[0]};
    return sim::simulate(nl, options, probes).at(probes[0]);
  };

  const wave::Waveform without = far_wave(0.0);
  const wave::Waveform with = far_wave(0.6);
  ASSERT_EQ(without.size(), with.size());
  double max_diff = 0.0;
  for (std::size_t k = 0; k < with.size(); ++k) {
    max_diff = std::max(max_diff, std::abs(with.value(k) - without.value(k)));
    EXPECT_LT(std::abs(with.value(k)), 2.0 * 1.8) << "t=" << with.time(k);
  }
  EXPECT_GT(max_diff, 1e-3);  // the K elements visibly change the victim
}

// ---- banded -> dense LU fallback (coverage for the wider coupling bandwidth)

TEST(DenseFallback, NarrowDeckMatchesBandedWithin1e10) {
  const tech::Technology technology = tech::Technology::cmos180();
  const tech::DeckOptions deck = coarse_deck();
  const tech::Inverter cell{75.0};
  const Net net = short_line();

  // The single-line deck is narrow: the banded solver must be the default.
  {
    ckt::Netlist nl;
    const ckt::NodeId out = nl.node("out");
    nl.add_vsource(out, ckt::ground, wave::Pwl({{0.0, 0.0}, {100 * ps, 1.8}}));
    ckt::append_net(nl, out, net, deck.segments);
    EXPECT_TRUE(sim::uses_banded_solver(nl));
  }

  tech::DeckOptions dense = deck;
  dense.sim.force_dense = true;
  const tech::NetSimResult banded =
      tech::simulate_driver_net(technology, cell, 100 * ps, net, deck);
  const tech::NetSimResult forced =
      tech::simulate_driver_net(technology, cell, 100 * ps, net, dense);

  ASSERT_EQ(banded.near_end.size(), forced.near_end.size());
  for (std::size_t k = 0; k < banded.near_end.size(); ++k) {
    ASSERT_EQ(banded.near_end.time(k), forced.near_end.time(k));
    EXPECT_NEAR(banded.near_end.value(k), forced.near_end.value(k), 1e-10);
    EXPECT_NEAR(banded.leaves[0].value(k), forced.leaves[0].value(k), 1e-10);
  }
}

TEST(DenseFallback, WideCoupledDeckForcesDenseFactorization) {
  // An all-to-all coupled bus: every pair of nets shares a coupling cap, so
  // the MNA bandwidth grows with the bus width and outruns the banded
  // threshold even after RCM.
  CoupledGroup bus;
  const std::size_t n_nets = 12;
  for (std::size_t k = 0; k < n_nets; ++k) {
    bus.add_net(Net::uniform_line(40.0, 0.8 * nh, 150 * ff, 10 * ff),
                "bit" + std::to_string(k));
  }
  for (std::size_t i = 0; i < n_nets; ++i) {
    for (std::size_t j = i + 1; j < n_nets; ++j) {
      bus.couple_capacitance({i, 0}, {j, 0}, 8 * ff);
    }
  }

  ckt::Netlist nl;
  std::vector<ckt::NodeId> froms;
  for (std::size_t k = 0; k < n_nets; ++k) {
    const ckt::NodeId from = nl.node("out" + std::to_string(k));
    nl.add_vsource(from, ckt::ground,
                   k == 0 ? wave::Pwl({{10 * ps, 0.0}, {110 * ps, 1.8}})
                          : wave::Pwl({{0.0, 0.0}}));
    froms.push_back(from);
  }
  const ckt::CoupledDeckNodes deck = ckt::append_coupled_group(nl, froms, bus, 2);
  EXPECT_FALSE(sim::uses_banded_solver(nl));

  // The dense path must still agree with itself across assembly modes (both
  // factor the same stamped system).
  sim::TransientOptions options;
  options.t_stop = 0.4e-9;
  options.dt = 2 * ps;
  const std::array<ckt::NodeId, 2> probes{deck.nets[0].leaves[0],
                                          deck.nets[6].leaves[0]};
  options.assembly = sim::AssemblyMode::cached;
  const sim::TransientResult cached = sim::simulate(nl, options, probes);
  options.assembly = sim::AssemblyMode::naive;
  const sim::TransientResult naive = sim::simulate(nl, options, probes);
  for (const ckt::NodeId p : probes) expect_same_waveform(cached.at(p), naive.at(p));

  // And the coupled deck must show real crosstalk on the quiet neighbor.
  double peak = 0.0;
  const wave::Waveform& victim = cached.at(probes[1]);
  for (std::size_t k = 0; k < victim.size(); ++k) {
    peak = std::max(peak, std::abs(victim.value(k)));
  }
  EXPECT_GT(peak, 1e-3);
}

// ---- the coupled experiment harness ---------------------------------------

class CoupledExperimentFixture : public ::testing::Test {
protected:
  static core::CoupledExperimentOptions fast_options() {
    core::CoupledExperimentOptions opt;
    opt.deck.segments = 10;
    opt.deck.dt = 2 * ps;
    opt.grid = small_grid();
    return opt;
  }

  static charlib::CellLibrary& library() {
    static charlib::CellLibrary lib;
    return lib;
  }
};

TEST_F(CoupledExperimentFixture, SingleNetGroupMatchesRunExperimentBitwise) {
  const tech::Technology technology = tech::Technology::cmos180();

  core::ExperimentCase plain;
  plain.label = "plain";
  plain.driver_size = 75.0;
  plain.input_slew = 100 * ps;
  plain.net = short_line();

  core::ExperimentOptions plain_opt;
  plain_opt.deck = fast_options().deck;
  plain_opt.grid = small_grid();
  plain_opt.include_one_ramp = false;
  plain_opt.include_far_end = true;
  const core::ExperimentResult expected =
      core::run_experiment(technology, library(), plain, plain_opt);

  core::CoupledExperimentCase coupled;
  coupled.label = "single";
  coupled.group = CoupledGroup::single(short_line());
  coupled.victim = 0;
  coupled.driver_size = 75.0;
  coupled.input_slew = 100 * ps;
  const core::CoupledExperimentResult actual =
      core::run_coupled_experiment(technology, library(), coupled, fast_options());

  EXPECT_EQ(expected.ref_near.delay, actual.ref_near.delay);
  EXPECT_EQ(expected.ref_near.slew, actual.ref_near.slew);
  EXPECT_EQ(expected.ref_far.delay, actual.ref_far.delay);
  EXPECT_EQ(expected.model_near.delay, actual.model_near.delay);
  EXPECT_EQ(expected.model_far.delay, actual.model_far.delay);
  EXPECT_EQ(expected.model.t50, actual.model.t50);
  EXPECT_EQ(expected.model.ceff1.ceff, actual.model.ceff1.ceff);
  // No neighbors: pushout and noise are exactly zero.
  EXPECT_EQ(0.0, actual.delay_pushout);
  EXPECT_EQ(0.0, actual.delay_pushout_model);
  EXPECT_EQ(0.0, actual.peak_noise);
}

TEST_F(CoupledExperimentFixture, OppositeAggressorPushesOutDelayAndInjectsNoise) {
  const tech::Technology technology = tech::Technology::cmos180();

  core::CoupledExperimentCase scenario;
  scenario.label = "pair";
  scenario.group = two_lines(120 * ff);
  scenario.victim = 0;
  scenario.driver_size = 75.0;
  scenario.input_slew = 100 * ps;
  scenario.aggressors.assign(2, {75.0, 100 * ps, core::AggressorSwitching::opposite});

  const core::CoupledExperimentResult r =
      core::run_coupled_experiment(technology, library(), scenario, fast_options());

  // An opposite-switching neighbor slows the victim and bumps it when quiet.
  EXPECT_GT(r.delay_pushout, 0.0);
  EXPECT_GT(r.delay_pushout_model, 0.0);
  EXPECT_GT(r.peak_noise, 1e-3);
  EXPECT_LT(r.peak_noise, technology.vdd);
  // The Miller model must track the coupled simulation at the far end.
  EXPECT_LT(std::abs(core::pct_error(r.model_far.delay, r.ref_far.delay)), 15.0);

  // A same-direction neighbor speeds the victim up instead.
  scenario.aggressors.assign(
      2, {75.0, 100 * ps, core::AggressorSwitching::same_direction});
  const core::CoupledExperimentResult helped =
      core::run_coupled_experiment(technology, library(), scenario, fast_options());
  EXPECT_LT(helped.ref_far.delay, r.ref_far.delay);
  EXPECT_LT(helped.delay_pushout, 0.0);
}

}  // namespace
}  // namespace rlceff::net
