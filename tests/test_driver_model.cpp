// Tests for the Sec. 5 modeling flow (classification, anchoring, plateau
// handling, breakpoint and criteria logic).
#include "core/driver_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "charlib/library.h"
#include "core/breakpoint.h"
#include "test_helpers.h"
#include "util/units.h"

namespace rlceff::core {
namespace {

using namespace rlceff::units;
using rlceff::testing::expect_rel_near;

TEST(Breakpoint, Equation1) {
  EXPECT_DOUBLE_EQ(0.5, breakpoint_fraction(50.0, 50.0));
  EXPECT_NEAR(68.4 / (68.4 + 45.6), breakpoint_fraction(68.4, 45.6), 1e-12);
  EXPECT_THROW(breakpoint_fraction(0.0, 50.0), Error);
}

TEST(Criteria, AllFourConditions) {
  const tech::WireParasitics wire{72.44, 5.14 * nh, 1.10 * pf};  // Z0 ~ 68 ohm
  const double tf = wire.time_of_flight();

  // Nominal inductive case: all pass.
  auto c = evaluate_criteria(wire, 20 * ff, 40.0, 1.5 * tf);
  EXPECT_TRUE(c.load_small);
  EXPECT_TRUE(c.line_low_loss);
  EXPECT_TRUE(c.driver_fast);
  EXPECT_TRUE(c.ramp_beats_flight);
  EXPECT_TRUE(c.significant());

  // Weak driver: Rs > Z0 fails.
  c = evaluate_criteria(wire, 20 * ff, 120.0, 1.5 * tf);
  EXPECT_FALSE(c.driver_fast);
  EXPECT_FALSE(c.significant());

  // Slow output ramp: Tr1 > 2 tf fails.
  c = evaluate_criteria(wire, 20 * ff, 40.0, 3.0 * tf);
  EXPECT_FALSE(c.ramp_beats_flight);
  EXPECT_FALSE(c.significant());

  // Heavy receiver: load test fails.
  c = evaluate_criteria(wire, 0.5 * pf, 40.0, 1.5 * tf);
  EXPECT_FALSE(c.load_small);

  // Lossy line: R*l > 2*Z0 fails.
  const tech::WireParasitics lossy{300.0, 5.14 * nh, 1.10 * pf};
  c = evaluate_criteria(lossy, 20 * ff, 40.0, 1.5 * tf);
  EXPECT_FALSE(c.line_low_loss);
}

// The flow tests need a characterized driver; characterize small grids once.
class DriverModelFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    technology_ = new tech::Technology(tech::Technology::cmos180());
    charlib::CharacterizationGrid grid;
    grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
    grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 1.8 * pf, 3 * pf, 5 * pf};
    library_ = new charlib::CellLibrary();
    library_->ensure_driver(*technology_, 100.0, grid);
    library_->ensure_driver(*technology_, 25.0, grid);
  }
  static void TearDownTestSuite() {
    delete library_;
    delete technology_;
    library_ = nullptr;
    technology_ = nullptr;
  }

  static const charlib::CharacterizedDriver& strong() { return *library_->find(100.0); }
  static const charlib::CharacterizedDriver& weak() { return *library_->find(25.0); }
  static const tech::WireParasitics inductive_wire() {
    return *tech::find_paper_wire_case(5.0, 1.6);
  }

  static tech::Technology* technology_;
  static charlib::CellLibrary* library_;
};

tech::Technology* DriverModelFixture::technology_ = nullptr;
charlib::CellLibrary* DriverModelFixture::library_ = nullptr;

TEST_F(DriverModelFixture, StrongDriverClassifiedTwoRamp) {
  const auto m = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff);
  EXPECT_EQ(ModelKind::two_ramp, m.kind);
  EXPECT_TRUE(m.criteria.significant());
  EXPECT_GT(m.f, 0.5);
  EXPECT_LT(m.f, 1.0);
  EXPECT_TRUE(m.ceff1.converged);
  EXPECT_TRUE(m.ceff2.converged);
}

TEST_F(DriverModelFixture, WeakDriverClassifiedOneRamp) {
  const auto m = model_driver_output(weak(), 100 * ps,
                                     *tech::find_paper_wire_case(4.0, 1.6), 20 * ff);
  EXPECT_EQ(ModelKind::one_ramp, m.kind);
  EXPECT_FALSE(m.criteria.significant());
  EXPECT_DOUBLE_EQ(1.0, m.f);
}

TEST_F(DriverModelFixture, WaveformIsMonotoneAndReachesVdd) {
  const auto m = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff);
  const auto& pts = m.waveform.points();
  ASSERT_GE(pts.size(), 3u);
  for (std::size_t k = 1; k < pts.size(); ++k) {
    EXPECT_GT(pts[k].first, pts[k - 1].first);
    EXPECT_GE(pts[k].second, pts[k - 1].second);
  }
  EXPECT_DOUBLE_EQ(0.0, pts.front().second);
  EXPECT_NEAR(technology_->vdd, pts.back().second, 1e-12);
}

TEST_F(DriverModelFixture, T50MatchesTableDelayAtCeff1) {
  const auto m = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff);
  const double table_delay = strong().delay(100 * ps, m.ceff1.ceff);
  expect_rel_near(table_delay, m.t50, 1e-9);
  // And the waveform's own 50 % crossing is exactly there.
  const auto w = m.waveform.to_waveform(m.waveform.end_time() + 1 * ns);
  const auto t50 = w.first_crossing(0.5 * technology_->vdd, true);
  ASSERT_TRUE(t50.has_value());
  expect_rel_near(m.t50, *t50, 1e-9);
}

TEST_F(DriverModelFixture, BreakpointConsistentWithEq1) {
  const auto m = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff);
  expect_rel_near(breakpoint_fraction(m.z0, m.rs), m.f, 1e-12);
  expect_rel_near(inductive_wire().z0(), m.z0, 1e-12);
}

TEST_F(DriverModelFixture, Equation8StretchesSecondRamp) {
  DriverModelOptions opt;
  opt.plateau = PlateauHandling::modified_second_ramp;
  const auto m = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff, opt);
  // Eq 8: tr2_new = tr2 + (2 tf - tr1) / (1 - f).
  const double expect =
      m.ceff2.ramp_time + std::max(0.0, 2.0 * m.tf - m.ceff1.ramp_time) / (1.0 - m.f);
  expect_rel_near(expect, m.tr2_new, 1e-9);
  EXPECT_GT(m.tr2_new, m.ceff2.ramp_time);
}

TEST_F(DriverModelFixture, PlateauHandlingVariantsOrderEndTimes) {
  DriverModelOptions eq8;
  eq8.plateau = PlateauHandling::modified_second_ramp;
  DriverModelOptions flat;
  flat.plateau = PlateauHandling::flat_step;
  DriverModelOptions none;
  none.plateau = PlateauHandling::none;

  const auto m_eq8 = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff, eq8);
  const auto m_flat = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff, flat);
  const auto m_none = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff, none);

  ASSERT_EQ(ModelKind::two_ramp, m_eq8.kind);
  // Ignoring the plateau finishes earliest; both corrections delay the end.
  const double end_eq8 = m_eq8.waveform.end_time() - m_eq8.waveform.start_time();
  const double end_flat = m_flat.waveform.end_time() - m_flat.waveform.start_time();
  const double end_none = m_none.waveform.end_time() - m_none.waveform.start_time();
  EXPECT_GT(end_eq8, end_none);
  EXPECT_GT(end_flat, end_none);
  // The flat-step variant has four breakpoints, the others three.
  EXPECT_EQ(4u, m_flat.waveform.points().size());
  EXPECT_EQ(3u, m_eq8.waveform.points().size());
}

TEST_F(DriverModelFixture, ForcedSelectionsOverrideCriteria) {
  DriverModelOptions force1;
  force1.selection = ModelSelection::force_one_ramp;
  const auto m1 = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff, force1);
  EXPECT_EQ(ModelKind::one_ramp, m1.kind);

  DriverModelOptions force2;
  force2.selection = ModelSelection::force_two_ramp;
  const auto m2 = model_driver_output(weak(), 100 * ps, inductive_wire(), 20 * ff, force2);
  EXPECT_NE(ModelKind::one_ramp, m2.kind);
}

TEST_F(DriverModelFixture, RsAblationTracksLoadChoice) {
  DriverModelOptions at_total;
  at_total.rs_at_total_cap = true;
  DriverModelOptions at_ceff;
  at_ceff.rs_at_total_cap = false;
  const auto m_total =
      model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff, at_total);
  const auto m_ceff =
      model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff, at_ceff);
  // The paper's claim (Sec. 5): the breakpoint does not move enough to
  // change the model class (our Thevenin extraction is somewhat more load
  // sensitive than theirs, hence the generous band; the ablation bench
  // quantifies the delay/slew impact).
  EXPECT_NEAR(m_total.f, m_ceff.f, 0.15);
  EXPECT_EQ(m_total.kind, m_ceff.kind);
}

TEST_F(DriverModelFixture, ThreeRampExtensionStaysMonotone) {
  DriverModelOptions opt;
  opt.three_ramp_extension = true;
  const auto m = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff, opt);
  // With f ~ 0.66 the second step f2 clamps near the rail; either way the
  // waveform stays monotone and ends at Vdd.
  const auto& pts = m.waveform.points();
  for (std::size_t k = 1; k < pts.size(); ++k) {
    EXPECT_GT(pts[k].first, pts[k - 1].first);
    EXPECT_GE(pts[k].second, pts[k - 1].second - 1e-15);
  }
  EXPECT_NEAR(technology_->vdd, pts.back().second, 1e-12);
  if (m.kind == ModelKind::three_ramp) {
    EXPECT_GT(m.f2, m.f);
    EXPECT_LE(m.f2, 0.98);
    EXPECT_TRUE(m.ceff3.converged);
  }
}

TEST_F(DriverModelFixture, CeffOrderingMatchesTheory) {
  const auto m = model_driver_output(strong(), 100 * ps, inductive_wire(), 20 * ff);
  const double c_total = m.admittance.total_capacitance();
  // Initial step sees a fraction of the line; the reflection window sees
  // more than the total.
  EXPECT_LT(m.ceff1.ceff, 0.6 * c_total);
  EXPECT_GT(m.ceff2.ceff, c_total);
}

TEST_F(DriverModelFixture, InputValidation) {
  EXPECT_THROW(model_driver_output(strong(), 0.0, inductive_wire(), 20 * ff), Error);
  EXPECT_THROW(model_driver_output(strong(), 100 * ps, inductive_wire(), -1e-15), Error);
}

}  // namespace
}  // namespace rlceff::core
