// Equivalence of the factor-once / cached-static engine paths against the
// naive full-reassembly path.
//
// The cached engine must not change physics: for linear circuits it factors
// the companion matrix once and reuses it; for driver (MOSFET) circuits it
// memcpys a cached static image and restamps only the nonlinear entries.
// Both produce the same stamp sequence as rebuilding everything, so the
// waveforms have to agree to far better than 1e-10.
#include "sim/transient.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "circuit/builders.h"
#include "tech/testbench.h"
#include "tech/wire.h"
#include "test_helpers.h"
#include "util/units.h"

namespace rlceff::sim {
namespace {

using namespace rlceff::units;
using ckt::ground;
using ckt::Netlist;
using ckt::NodeId;

void expect_waveforms_match(const wave::Waveform& a, const wave::Waveform& b,
                            double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_DOUBLE_EQ(a.time(k), b.time(k)) << "sample " << k;
    EXPECT_NEAR(a.value(k), b.value(k), tol) << "t=" << a.time(k);
  }
}

// Ideal ramp through a source resistor into a discretized RLC line: the
// paper's linear replay deck, exercising the factor-once path.
void build_linear_line(Netlist& nl, NodeId& near, NodeId& far) {
  const NodeId src = nl.node("src");
  nl.add_vsource(src, ground, wave::Pwl({{5 * ps, 0.0}, {55 * ps, 1.8}}));
  near = nl.node("near");
  nl.add_resistor(src, near, 25.0);
  const ckt::LadderNodes line =
      ckt::append_rlc_ladder(nl, near, 120.0, 4 * nh, 0.8 * pf, 60);
  far = line.far_end;
  nl.add_capacitor(far, ground, 20 * ff);
}

TEST(EngineEquivalence, LinearRlcLineMatchesNaive) {
  TransientOptions cached;
  cached.t_stop = 0.6 * ns;
  cached.dt = 0.5 * ps;
  cached.assembly = AssemblyMode::cached;
  TransientOptions naive = cached;
  naive.assembly = AssemblyMode::naive;

  Netlist nl_a, nl_b;
  NodeId near_a, far_a, near_b, far_b;
  build_linear_line(nl_a, near_a, far_a);
  build_linear_line(nl_b, near_b, far_b);

  const std::array<NodeId, 2> probes_a{near_a, far_a};
  const std::array<NodeId, 2> probes_b{near_b, far_b};
  const TransientResult fast = simulate(nl_a, cached, probes_a);
  const TransientResult ref = simulate(nl_b, naive, probes_b);

  expect_waveforms_match(fast.at(near_a), ref.at(near_b), 1e-10);
  expect_waveforms_match(fast.at(far_a), ref.at(far_b), 1e-10);
}

TEST(EngineEquivalence, LinearLineBackwardEulerMatchesNaive) {
  TransientOptions cached;
  cached.t_stop = 0.3 * ns;
  cached.dt = 1 * ps;
  cached.integrator = Integrator::backward_euler;
  cached.assembly = AssemblyMode::cached;
  TransientOptions naive = cached;
  naive.assembly = AssemblyMode::naive;

  Netlist nl_a, nl_b;
  NodeId near_a, far_a, near_b, far_b;
  build_linear_line(nl_a, near_a, far_a);
  build_linear_line(nl_b, near_b, far_b);

  const std::array<NodeId, 1> probes_a{far_a};
  const std::array<NodeId, 1> probes_b{far_b};
  const TransientResult fast = simulate(nl_a, cached, probes_a);
  const TransientResult ref = simulate(nl_b, naive, probes_b);
  expect_waveforms_match(fast.at(far_a), ref.at(far_b), 1e-10);
}

// A shortened final step forces the engine to refactor for the new h; the
// cached path must handle the step-size change transparently.
TEST(EngineEquivalence, PartialFinalStepMatchesNaive) {
  TransientOptions cached;
  cached.t_stop = 100.3 * ps;  // not a multiple of dt
  cached.dt = 1 * ps;
  cached.assembly = AssemblyMode::cached;
  TransientOptions naive = cached;
  naive.assembly = AssemblyMode::naive;

  Netlist nl_a, nl_b;
  NodeId near_a, far_a, near_b, far_b;
  build_linear_line(nl_a, near_a, far_a);
  build_linear_line(nl_b, near_b, far_b);

  const std::array<NodeId, 1> probes_a{far_a};
  const std::array<NodeId, 1> probes_b{far_b};
  const TransientResult fast = simulate(nl_a, cached, probes_a);
  const TransientResult ref = simulate(nl_b, naive, probes_b);
  expect_waveforms_match(fast.at(far_a), ref.at(far_b), 1e-10);
}

// Driver + line: the cached-static nonlinear path (memcpy'd linear stamps,
// restamped MOSFETs) against full reassembly every Newton iteration.
TEST(EngineEquivalence, DriverLineMatchesNaive) {
  const tech::Technology technology = tech::Technology::cmos180();
  const tech::WireParasitics wire{150.0, 5 * nh, 0.9 * pf};

  tech::DeckOptions deck;
  deck.segments = 40;
  deck.dt = 0.5 * ps;
  deck.t_stop = 0.5 * ns;
  deck.sim.assembly = AssemblyMode::cached;
  const tech::LineSimResult fast =
      tech::simulate_driver_line(technology, tech::Inverter{50.0}, 100 * ps, wire, deck);

  deck.sim.assembly = AssemblyMode::naive;
  const tech::LineSimResult ref =
      tech::simulate_driver_line(technology, tech::Inverter{50.0}, 100 * ps, wire, deck);

  expect_waveforms_match(fast.near_end, ref.near_end, 1e-10);
  expect_waveforms_match(fast.far_end, ref.far_end, 1e-10);
}

TEST(EngineEquivalence, DcOperatingPointMatchesNaive) {
  const tech::Technology technology = tech::Technology::cmos180();
  ckt::Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_vsource(in, ground, wave::Pwl({{0.0, technology.vdd}}));
  tech::add_inverter(nl, technology, tech::Inverter{25.0}, in, out);
  nl.add_capacitor(out, ground, 50 * ff);

  TransientOptions cached;
  cached.assembly = AssemblyMode::cached;
  TransientOptions naive = cached;
  naive.assembly = AssemblyMode::naive;

  const OperatingPoint op_fast = dc_operating_point(nl, cached);
  const OperatingPoint op_ref = dc_operating_point(nl, naive);
  ASSERT_EQ(op_fast.node_voltage.size(), op_ref.node_voltage.size());
  for (std::size_t k = 0; k < op_fast.node_voltage.size(); ++k) {
    EXPECT_NEAR(op_fast.node_voltage[k], op_ref.node_voltage[k], 1e-12);
  }
}

}  // namespace
}  // namespace rlceff::sim
