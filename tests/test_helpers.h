// Shared helpers for the rlceff test suite.
#ifndef RLCEFF_TESTS_TEST_HELPERS_H
#define RLCEFF_TESTS_TEST_HELPERS_H

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rlceff::testing {

// EXPECT that two values agree within a relative tolerance (absolute floor
// for values near zero).
inline void expect_rel_near(double expected, double actual, double rel_tol,
                            double abs_floor = 1e-300) {
  const double scale = std::max({std::abs(expected), std::abs(actual), abs_floor});
  EXPECT_NEAR(expected, actual, rel_tol * scale)
      << "expected " << expected << " vs actual " << actual;
}

// Deterministic RNG for property-style tests.
inline std::mt19937& rng() {
  static std::mt19937 gen(20030603);  // DAC'03 seed
  return gen;
}

inline double uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(rng());
}

}  // namespace rlceff::testing

#endif  // RLCEFF_TESTS_TEST_HELPERS_H
