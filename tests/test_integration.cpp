// End-to-end integration tests: the full experiment harness against the
// simulator on representative paper cases, asserting the paper's headline
// error structure (two-ramp accurate; one-ramp badly wrong on inductive
// lines; both fine on RC-like lines).
//
// Fidelity is reduced (fewer ladder segments, coarser dt, small
// characterization grid) to keep the suite fast; the bench binaries rerun
// the same scenarios at full fidelity.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.h"
#include "util/units.h"

namespace rlceff::core {
namespace {

using namespace rlceff::units;

class IntegrationFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    technology_ = new tech::Technology(tech::Technology::cmos180());
    library_ = new charlib::CellLibrary();
  }
  static void TearDownTestSuite() {
    delete library_;
    delete technology_;
    library_ = nullptr;
    technology_ = nullptr;
  }

  static ExperimentOptions fast_options() {
    ExperimentOptions opt;
    opt.deck.segments = 60;
    opt.deck.dt = 0.5 * ps;
    opt.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
    opt.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 1.8 * pf, 3 * pf, 5 * pf};
    return opt;
  }

  static tech::Technology* technology_;
  static charlib::CellLibrary* library_;
};

tech::Technology* IntegrationFixture::technology_ = nullptr;
charlib::CellLibrary* IntegrationFixture::library_ = nullptr;

TEST_F(IntegrationFixture, InductiveCaseTwoRampBeatsOneRamp) {
  // Table 1 row "5/1.6, 100X, slew 100".
  ExperimentCase c;
  c.driver_size = 100.0;
  c.input_slew = 100 * ps;
  c.net = tech::line_net(*tech::find_paper_wire_case(5.0, 1.6), 20 * ff);
  const ExperimentResult r = run_experiment(*technology_, *library_, c, fast_options());

  ASSERT_EQ(ModelKind::two_ramp, r.model.kind);
  // Two-ramp delay within 10 % of "HSPICE" (paper: -4.7 % on this row).
  EXPECT_LT(std::abs(pct_error(r.model_near.delay, r.ref_near.delay)), 10.0);
  // One-ramp delay error is large and positive (paper: +33.9 %).
  EXPECT_GT(pct_error(r.one_near.delay, r.ref_near.delay), 15.0);
  // Two-ramp slew within 25 %; one-ramp slew hugely underestimated
  // (paper: -64 %) because a single ramp cannot capture the long tail.
  EXPECT_LT(std::abs(pct_error(r.model_near.slew, r.ref_near.slew)), 25.0);
  EXPECT_LT(pct_error(r.one_near.slew, r.ref_near.slew), -40.0);
}

TEST_F(IntegrationFixture, FarEndReplayTracksReference) {
  ExperimentCase c;
  c.driver_size = 100.0;
  c.input_slew = 100 * ps;
  c.net = tech::line_net(*tech::find_paper_wire_case(5.0, 1.6), 20 * ff);
  const ExperimentResult r = run_experiment(*technology_, *library_, c, fast_options());
  // Fig 6 right: the two-ramp source reproduces the far-end delay closely.
  EXPECT_LT(std::abs(pct_error(r.model_far.delay, r.ref_far.delay)), 10.0);
}

TEST_F(IntegrationFixture, RcLikeCaseUsesOneRampAndIsAccurate) {
  // Fig 6 left: 4 mm line, weak 25X driver -> single ramp suffices.
  ExperimentCase c;
  c.driver_size = 25.0;
  c.input_slew = 100 * ps;
  c.net = tech::line_net(*tech::find_paper_wire_case(4.0, 1.6), 20 * ff);
  const ExperimentResult r = run_experiment(*technology_, *library_, c, fast_options());

  EXPECT_EQ(ModelKind::one_ramp, r.model.kind);
  EXPECT_FALSE(r.model.criteria.significant());
  EXPECT_LT(std::abs(pct_error(r.model_near.delay, r.ref_near.delay)), 10.0);
  // RC-like: slew off only by the resistive-shielding tail, well under the
  // inductive failure mode.
  EXPECT_LT(std::abs(pct_error(r.model_near.slew, r.ref_near.slew)), 25.0);
}

TEST_F(IntegrationFixture, WideLineIncreasesOneRampError) {
  // Table 1's trend: at fixed length/driver, wider wire -> more inductive ->
  // bigger one-ramp delay error.
  ExperimentOptions opt = fast_options();
  ExperimentCase narrow;
  narrow.driver_size = 75.0;
  narrow.input_slew = 50 * ps;
  narrow.net = tech::line_net(*tech::find_paper_wire_case(3.0, 0.8), 20 * ff);
  ExperimentCase wide = narrow;
  wide.net = tech::line_net(*tech::find_paper_wire_case(3.0, 1.6), 20 * ff);

  const ExperimentResult rn = run_experiment(*technology_, *library_, narrow, opt);
  const ExperimentResult rw = run_experiment(*technology_, *library_, wide, opt);
  const double err_narrow = std::abs(pct_error(rn.one_near.delay, rn.ref_near.delay));
  const double err_wide = std::abs(pct_error(rw.one_near.delay, rw.ref_near.delay));
  EXPECT_GT(err_wide, err_narrow);
}

TEST_F(IntegrationFixture, ModeledBreakpointMatchesSimulatedPlateau) {
  // The Eq-1 breakpoint should sit near the simulated waveform's voltage at
  // the moment the first reflection returns (2 tf after launch).
  const tech::WireParasitics wire = *tech::find_paper_wire_case(5.0, 1.6);
  ExperimentCase c;
  c.driver_size = 100.0;
  c.input_slew = 100 * ps;
  c.net = tech::line_net(wire, 20 * ff);
  ExperimentOptions opt = fast_options();
  opt.keep_waveforms = true;
  const ExperimentResult r = run_experiment(*technology_, *library_, c, opt);

  const auto launch = r.ref_near_wave.first_crossing(0.1 * technology_->vdd, true);
  ASSERT_TRUE(launch.has_value());
  const double v_plateau =
      r.ref_near_wave.value_at(*launch + 2.0 * wire.time_of_flight());
  EXPECT_NEAR(r.model.f * technology_->vdd, v_plateau, 0.25 * technology_->vdd);
}

TEST_F(IntegrationFixture, KeepWaveformsPopulatesTraces) {
  ExperimentCase c;
  c.driver_size = 100.0;
  c.input_slew = 100 * ps;
  c.net = tech::line_net(*tech::find_paper_wire_case(3.0, 1.2), 20 * ff);
  ExperimentOptions opt = fast_options();
  opt.keep_waveforms = true;
  const ExperimentResult r = run_experiment(*technology_, *library_, c, opt);
  EXPECT_FALSE(r.ref_near_wave.empty());
  EXPECT_FALSE(r.ref_far_wave.empty());
  EXPECT_FALSE(r.model_far_wave.empty());
  EXPECT_GT(r.input_time_50, 0.0);
}

}  // namespace
}  // namespace rlceff::core
