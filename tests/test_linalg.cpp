// Unit tests for dense/banded/sparse LU and the ordering heuristics.
#include "util/linalg.h"

#include <gtest/gtest.h>

#include <utility>

#include "test_helpers.h"
#include "util/budget.h"
#include "util/error.h"
#include "util/ordering.h"
#include "util/sparse.h"

namespace rlceff::util {
namespace {

using rlceff::testing::expect_rel_near;
using rlceff::testing::uniform;

TEST(DenseLu, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const std::vector<double> b{5.0, 10.0};
  const auto x = solve_dense(a, b);
  EXPECT_NEAR(1.0, x[0], 1e-12);
  EXPECT_NEAR(3.0, x[1], 1e-12);
}

TEST(DenseLu, PivotsOnZeroDiagonal) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const std::vector<double> b{2.0, 3.0};
  const auto x = solve_dense(a, b);
  EXPECT_NEAR(3.0, x[0], 1e-12);
  EXPECT_NEAR(2.0, x[1], 1e-12);
}

TEST(DenseLu, SingularThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(solve_dense(a, b), SingularMatrixError);
}

TEST(DenseLu, RandomSystemsResidualSmall) {
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 3 + static_cast<std::size_t>(trial % 8);
    DenseMatrix a(m, m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) a(r, c) = uniform(-1.0, 1.0);
      a(r, r) += 3.0;  // diagonal dominance guarantees solvability
    }
    std::vector<double> x_true(m);
    for (double& v : x_true) v = uniform(-2.0, 2.0);
    std::vector<double> b(m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) b[r] += a(r, c) * x_true[c];
    }
    const auto x = solve_dense(a, b);
    for (std::size_t k = 0; k < m; ++k) EXPECT_NEAR(x_true[k], x[k], 1e-9);
  }
}

TEST(BandedLu, MatchesDenseOnRandomBandedSystems) {
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 6 + static_cast<std::size_t>(trial % 10);
    const std::size_t bw = 1 + static_cast<std::size_t>(trial % 3);
    DenseMatrix dense(m, m);
    BandedMatrix banded(m, bw, bw);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) {
        const std::size_t dist = r > c ? r - c : c - r;
        if (dist > bw) continue;
        double v = uniform(-1.0, 1.0);
        if (r == c) v += 3.0;
        dense(r, c) = v;
        banded.add(r, c, v);
      }
    }
    std::vector<double> b(m);
    for (double& v : b) v = uniform(-2.0, 2.0);
    const auto x_dense = solve_dense(dense, b);
    banded.factor();
    const auto x_band = banded.solve(b);
    for (std::size_t k = 0; k < m; ++k) EXPECT_NEAR(x_dense[k], x_band[k], 1e-9);
  }
}

TEST(DenseLu, FactorIntoReusesWorkspaceAndMatchesOneShot) {
  LuFactors workspace;
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t m = 5;
    DenseMatrix a(m, m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) a(r, c) = uniform(-1.0, 1.0);
      a(r, r) += 4.0;
    }
    std::vector<double> b(m);
    for (double& v : b) v = uniform(-2.0, 2.0);

    lu_factor_into(a, workspace);
    std::vector<double> x = b;
    lu_solve_into(workspace, x);
    const auto x_ref = solve_dense(a, b);
    for (std::size_t k = 0; k < m; ++k) EXPECT_NEAR(x_ref[k], x[k], 1e-12);
  }
}

TEST(BandedLu, SolveIntoMatchesSolve) {
  const std::size_t m = 9;
  BandedMatrix a(m, 2, 2);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      if (!a.in_band(r, c)) continue;
      a.add(r, c, uniform(-1.0, 1.0) + (r == c ? 4.0 : 0.0));
    }
  }
  std::vector<double> b(m);
  for (double& v : b) v = uniform(-2.0, 2.0);

  a.factor();
  const auto x_ref = a.solve(b);
  std::vector<double> x = b;
  a.solve_into(x);
  for (std::size_t k = 0; k < m; ++k) EXPECT_EQ(x_ref[k], x[k]);
}

TEST(BandedLu, CopyValuesFromRestoresAndRefactors) {
  // The transient engine's cached-static pattern: keep an unfactored image,
  // restore it into the working matrix, perturb, factor, solve — repeatedly.
  const std::size_t m = 10;
  BandedMatrix image(m, 1, 1);
  DenseMatrix dense_base(m, m);
  for (std::size_t k = 0; k < m; ++k) {
    image.add(k, k, 3.0 + 0.1 * static_cast<double>(k));
    dense_base(k, k) = 3.0 + 0.1 * static_cast<double>(k);
    if (k + 1 < m) {
      image.add(k, k + 1, -1.0);
      image.add(k + 1, k, -1.0);
      dense_base(k, k + 1) = -1.0;
      dense_base(k + 1, k) = -1.0;
    }
  }
  std::vector<double> b(m, 1.0);

  BandedMatrix work(m, 1, 1);
  for (int round = 0; round < 3; ++round) {
    const double extra = 0.5 * static_cast<double>(round);
    work.copy_values_from(image);
    work.add(0, 0, extra);  // "restamped" dynamic entry
    work.factor();
    const auto x = work.solve(b);

    DenseMatrix dense = dense_base;
    dense(0, 0) += extra;
    const auto x_ref = solve_dense(dense, b);
    for (std::size_t k = 0; k < m; ++k) expect_rel_near(x_ref[k], x[k], 1e-12);
  }
}

TEST(BandedLu, CopyValuesFromRejectsShapeMismatch) {
  BandedMatrix a(5, 1, 1);
  BandedMatrix b(5, 2, 2);
  EXPECT_THROW(a.copy_values_from(b), Error);
}

TEST(BandedLu, RejectsOutOfBandEntry) {
  BandedMatrix a(5, 1, 1);
  EXPECT_THROW(a.add(0, 3, 1.0), Error);
}

TEST(BandedLu, SingularThrows) {
  BandedMatrix a(2, 1, 1);
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 4.0);
  EXPECT_THROW(a.factor(), SingularMatrixError);
}

TEST(BandedLu, PivotingWithinBandWorks) {
  // Tridiagonal with a weak diagonal that forces row swaps.
  const std::size_t m = 8;
  BandedMatrix a(m, 1, 1);
  DenseMatrix d(m, m);
  for (std::size_t k = 0; k < m; ++k) {
    const double diag = 1e-3;
    a.add(k, k, diag);
    d(k, k) = diag;
    if (k + 1 < m) {
      a.add(k, k + 1, 2.0);
      a.add(k + 1, k, 1.5);
      d(k, k + 1) = 2.0;
      d(k + 1, k) = 1.5;
    }
  }
  std::vector<double> b(m, 1.0);
  a.factor();
  const auto x_band = a.solve(b);
  const auto x_dense = solve_dense(d, b);
  for (std::size_t k = 0; k < m; ++k) expect_rel_near(x_dense[k], x_band[k], 1e-9);
}

// ---- compressed-sparse LU ---------------------------------------------------

// A random MNA-shaped pattern: diagonal plus symmetric off-diagonal pairs.
std::vector<std::pair<std::size_t, std::size_t>> random_pattern(std::size_t m,
                                                                std::size_t extra) {
  std::vector<std::pair<std::size_t, std::size_t>> pos;
  for (std::size_t k = 0; k < m; ++k) pos.emplace_back(k, k);
  for (std::size_t k = 0; k + 1 < m; ++k) {
    pos.emplace_back(k, k + 1);
    pos.emplace_back(k + 1, k);
  }
  for (std::size_t k = 0; k < extra; ++k) {
    const auto a = static_cast<std::size_t>(uniform(0.0, static_cast<double>(m)));
    const auto b = static_cast<std::size_t>(uniform(0.0, static_cast<double>(m)));
    if (a == b) continue;
    pos.emplace_back(a, b);
    pos.emplace_back(b, a);
  }
  return pos;
}

TEST(SparseLu, MatchesDenseOnRandomSparseSystems) {
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 8 + static_cast<std::size_t>(3 * trial);
    SparseMatrix a(m, random_pattern(m, m / 2));
    DenseMatrix dense(m, m);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::size_t p = a.col_ptr()[c]; p < a.col_ptr()[c + 1]; ++p) {
        const std::size_t r = a.row_ind()[p];
        double v = uniform(-1.0, 1.0);
        if (r == c) v += 4.0;
        a.add(r, c, v);
        dense(r, c) += v;
      }
    }
    std::vector<double> b(m);
    for (double& v : b) v = uniform(-2.0, 2.0);

    SparseLu lu;
    lu.analyze(a);
    lu.factor(a);
    std::vector<double> x = b;
    lu.solve_into(x);
    const auto x_ref = solve_dense(dense, b);
    for (std::size_t k = 0; k < m; ++k) EXPECT_NEAR(x_ref[k], x[k], 1e-9);
  }
}

TEST(SparseLu, PivotsOnZeroDiagonal) {
  // A vsource-style block: zero diagonal in the branch row forces pivoting.
  SparseMatrix a(3, {{0, 0}, {1, 1}, {2, 2}, {0, 2}, {2, 0}, {0, 1}, {1, 0}});
  a.add(0, 0, 1e-12);  // gmin only
  a.add(1, 1, 2.0);
  a.add(0, 1, -1.0);
  a.add(1, 0, -1.0);
  a.add(0, 2, 1.0);
  a.add(2, 0, 1.0);
  // a(2, 2) stays 0: branch row.
  SparseLu lu;
  lu.analyze(a);
  lu.factor(a);
  std::vector<double> x{0.0, 0.0, 1.5};  // force node 0 to 1.5 V
  lu.solve_into(x);
  EXPECT_NEAR(1.5, x[0], 1e-12);
  EXPECT_NEAR(0.75, x[1], 1e-9);
}

TEST(SparseLu, StaticImageRestampRefactorMatchesDense) {
  // The transient engine's cached pattern on the sparse image: snapshot the
  // static stamps, restore by memcpy, perturb one position, refactor, solve.
  const std::size_t m = 12;
  SparseMatrix a(m, random_pattern(m, 4));
  DenseMatrix dense_base(m, m);
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t p = a.col_ptr()[c]; p < a.col_ptr()[c + 1]; ++p) {
      const std::size_t r = a.row_ind()[p];
      double v = uniform(-1.0, 1.0);
      if (r == c) v += 4.0;
      a.add(r, c, v);
      dense_base(r, c) += v;
    }
  }
  SparseMatrix image(a);
  std::vector<double> b(m, 1.0);

  SparseLu lu;
  lu.analyze(a);
  for (int round = 0; round < 3; ++round) {
    const double extra = 0.5 * static_cast<double>(round);
    a.copy_values_from(image);
    a.add(0, 0, extra);
    lu.factor(a);
    std::vector<double> x = b;
    lu.solve_into(x);

    DenseMatrix dense = dense_base;
    dense(0, 0) += extra;
    const auto x_ref = solve_dense(dense, b);
    for (std::size_t k = 0; k < m; ++k) expect_rel_near(x_ref[k], x[k], 1e-9);
  }
}

TEST(SparseLu, SingularThrows) {
  SparseMatrix a(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 4.0);
  SparseLu lu;
  lu.analyze(a);
  EXPECT_THROW(lu.factor(a), SingularMatrixError);
}

TEST(SparseLu, RejectsOutOfPatternEntry) {
  SparseMatrix a(3, {{0, 0}, {1, 1}, {2, 2}});
  EXPECT_THROW(a.add(0, 2, 1.0), Error);
}

TEST(SparseLu, FactorHonorsCancellation) {
  // A pre-fired CancelToken must surface from *inside* the numeric factor
  // (the satellite-4 checkpoint), not only between transient steps.
  const std::size_t m = 200;
  SparseMatrix a(m, random_pattern(m, 40));
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t p = a.col_ptr()[c]; p < a.col_ptr()[c + 1]; ++p) {
      a.add(a.row_ind()[p], c, a.row_ind()[p] == c ? 4.0 : -0.3);
    }
  }
  SparseLu lu;
  lu.analyze(a);

  ExecBudget budget;
  budget.cancel = CancelToken::source();
  budget.cancel.request_cancel();
  ExecTracker tracker(budget);
  EXPECT_THROW(lu.factor(a, &tracker), CancelledError);
}

TEST(MinimumDegree, PermutationIsBijective) {
  SparsityGraph g(12);
  g.add_edge(0, 5);
  g.add_edge(5, 9);
  g.add_edge(2, 3);
  g.add_edge(9, 11);
  const auto perm = minimum_degree_ordering(g);
  std::vector<bool> seen(perm.size(), false);
  for (std::size_t p : perm) {
    ASSERT_LT(p, perm.size());
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(MinimumDegree, StarGraphEliminatesLeavesFirst) {
  // Leaves have degree 1, the hub degree n-1: the hub cannot be ordered
  // before the leaves have brought its degree down to a tie (position n-2 at
  // the earliest, where the tie-break by index lets the hub in).  This is
  // the zero-fill elimination order for a star.
  SparsityGraph g(8);
  for (std::size_t k = 1; k < 8; ++k) g.add_edge(0, k);
  const auto perm = minimum_degree_ordering(g);
  EXPECT_GE(perm[0], 6u);
}

TEST(Rcm, ReducesLadderBandwidthToOne) {
  // A path graph numbered randomly should renumber to bandwidth 1.
  const std::size_t m = 40;
  std::vector<std::size_t> shuffle(m);
  for (std::size_t k = 0; k < m; ++k) shuffle[k] = k;
  for (std::size_t k = m; k-- > 1;) {
    std::swap(shuffle[k], shuffle[static_cast<std::size_t>(
                              rlceff::testing::uniform(0.0, static_cast<double>(k)))]);
  }
  SparsityGraph g(m);
  for (std::size_t k = 0; k + 1 < m; ++k) g.add_edge(shuffle[k], shuffle[k + 1]);
  const auto perm = reverse_cuthill_mckee(g);
  EXPECT_EQ(1u, bandwidth(g, perm));
}

TEST(Rcm, PermutationIsBijective) {
  SparsityGraph g(10);
  g.add_edge(0, 5);
  g.add_edge(5, 9);
  g.add_edge(2, 3);
  const auto perm = reverse_cuthill_mckee(g);
  std::vector<bool> seen(perm.size(), false);
  for (std::size_t p : perm) {
    ASSERT_LT(p, perm.size());
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Rcm, StarGraphBandwidth) {
  // A star graph's hub is adjacent to everything; the best achievable
  // bandwidth is n - 2 (hub one position from an end) and RCM reaches it.
  SparsityGraph g(6);
  for (std::size_t k = 1; k < 6; ++k) g.add_edge(0, k);
  const auto perm = reverse_cuthill_mckee(g);
  EXPECT_EQ(4u, bandwidth(g, perm));
}

}  // namespace
}  // namespace rlceff::util
