// Tests for the static-diagnostics subsystem (src/lint/): the code taxonomy
// itself, one trigger + near-miss pair per diagnostic code, and the
// consolidated construction-time validation (net::Net / net::CoupledGroup /
// ckt::Netlist throwing DiagnosticError from the same taxonomy).
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "circuit/netlist.h"
#include "net/coupled.h"
#include "net/net.h"
#include "tech/technology.h"
#include "tech/wire.h"
#include "util/units.h"

namespace rlceff::lint {
namespace {

using namespace rlceff::units;

// ---------------------------------------------------------------- taxonomy ---

TEST(LintTaxonomy, EveryCodeHasStableNameFamilyAndSeverity) {
  EXPECT_EQ(code_count, all_codes().size());
  const std::set<std::string> families = {"connectivity", "physicality",
                                          "conditioning", "model", "input",
                                          "tier"};
  std::set<std::string> names;
  for (Code code : all_codes()) {
    const std::string name = to_string(code);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate code name " << name;
    EXPECT_TRUE(families.count(family(code))) << name << ": " << family(code);
    // default_severity must round-trip through to_string.
    EXPECT_STRNE("", to_string(default_severity(code)));
  }
  // Spot-check the contract the CLI/CI greps key on.
  EXPECT_STREQ("nonpositive_capacitance", to_string(Code::nonpositive_capacitance));
  EXPECT_STREQ("physicality", family(Code::mutual_overcoupled));
  EXPECT_STREQ("input", family(Code::invalid_input));
  EXPECT_EQ(Severity::error, default_severity(Code::invalid_input));
  EXPECT_EQ(Severity::warn, default_severity(Code::floating_node));
  EXPECT_EQ(Severity::info, default_severity(Code::solver_advisory));
}

TEST(LintTaxonomy, FormatCarriesSeverityFamilyCodePathAndHint) {
  const Diagnostic d = make_diagnostic(Code::invalid_input, "line 7",
                                       "unparseable geometry", "fix the deck");
  EXPECT_EQ(Severity::error, d.severity);  // defaulted from the code
  const std::string text = format(d);
  EXPECT_NE(std::string::npos, text.find("error"));
  EXPECT_NE(std::string::npos, text.find("[input.invalid_input]"));
  EXPECT_NE(std::string::npos, text.find("line 7"));
  EXPECT_NE(std::string::npos, text.find("unparseable geometry"));
  EXPECT_NE(std::string::npos, text.find("(fix: fix the deck)"));
}

TEST(LintTaxonomy, DiagnosticErrorCarriesTheDiagnostic) {
  try {
    ensure_diag(false, Code::negative_load, "branch 'root'", "has a negative load",
                "loads are capacitances");
    FAIL() << "ensure_diag(false, ...) must throw";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(Code::negative_load, e.code());
    EXPECT_EQ("branch 'root'", e.diagnostic().path);
    EXPECT_NE(std::string::npos,
              std::string(e.what()).find("branch 'root' has a negative load"));
  }
}

TEST(LintTaxonomy, ReportHelpersCountAndRank) {
  Report report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(Severity::info, report.worst());
  report.diagnostics.push_back(make_diagnostic(Code::solver_advisory, "", "advice"));
  report.diagnostics.push_back(make_diagnostic(Code::mutual_near_limit, "p", "warn"));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(Severity::warn, report.worst());
  EXPECT_EQ(1u, report.count(Severity::info));
  report.diagnostics.push_back(make_diagnostic(Code::zero_section, "p", "bad"));
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(Severity::error, report.worst());
  ASSERT_NE(nullptr, report.find(Code::mutual_near_limit));
  EXPECT_EQ("p", report.find(Code::mutual_near_limit)->path);
  EXPECT_EQ(nullptr, report.find(Code::empty_net));
}

// ----------------------------------------------- connectivity: trigger+miss ---

net::Branch one_section_branch() {
  net::Branch root;
  root.sections.push_back({100.0, 1 * nh, 100 * ff, net::SectionKind::distributed});
  root.c_load = 20 * ff;
  return root;
}

TEST(LintConnectivity, EmptyNet) {
  EXPECT_TRUE(lint_branch(net::Branch{}).has(Code::empty_net));
  EXPECT_FALSE(lint_branch(one_section_branch()).has(Code::empty_net));
}

TEST(LintConnectivity, EmptyBranch) {
  net::Branch root = one_section_branch();
  root.children.emplace_back();  // no sections, children, or load
  const Report bad = lint_branch(root);
  ASSERT_TRUE(bad.has(Code::empty_branch));
  EXPECT_NE(std::string::npos, bad.find(Code::empty_branch)->path.find("'root/0'"));
  // Near-miss: a load-only stub is a legal receiver branch.
  root.children[0].c_load = 5 * ff;
  EXPECT_TRUE(lint_branch(root).clean());
}

TEST(LintConnectivity, ZeroSection) {
  net::Branch root = one_section_branch();
  root.sections.push_back({0.0, 0.0, 0.0, net::SectionKind::lumped});
  EXPECT_TRUE(lint_branch(root).has(Code::zero_section));
  // Near-miss: a lumped section carrying any one element is legal.
  root.sections.back().resistance = 1.0;
  EXPECT_TRUE(lint_branch(root).clean());
}

TEST(LintConnectivity, DuplicateProbe) {
  net::Branch root = one_section_branch();
  root.probe = "far";
  net::Branch child = one_section_branch();
  child.probe = "far";
  root.children.push_back(child);
  EXPECT_TRUE(lint_branch(root).has(Code::duplicate_probe));
  root.children[0].probe = "other";
  EXPECT_TRUE(lint_branch(root).clean());
}

TEST(LintConnectivity, ProbeMissing) {
  net::Branch root = one_section_branch();
  root.probe = "out";
  const net::Net net{net::Branch(root)};
  Options options;
  options.require_probes = {"out", "absent"};
  const Report report = lint_net(net, options);
  ASSERT_TRUE(report.has(Code::probe_missing));
  // Only the absent probe is reported; the present one is a near-miss.
  EXPECT_NE(std::string::npos, report.find(Code::probe_missing)->path.find("'absent'"));
  EXPECT_EQ(1u, report.count(Severity::error));
}

TEST(LintConnectivity, FloatingNode) {
  ckt::Netlist netlist;
  const ckt::NodeId n1 = netlist.node("n1");
  const ckt::NodeId n2 = netlist.node("n2");
  netlist.add_resistor(ckt::ground, n1, 100.0);
  netlist.add_capacitor(n1, n2, 10 * ff);  // n2 hangs on the cap alone
  const Report bad = lint_netlist(netlist);
  ASSERT_TRUE(bad.has(Code::floating_node));
  EXPECT_EQ(Severity::warn, bad.find(Code::floating_node)->severity);
  // Near-miss: any conductive path to ground clears the flag.
  netlist.add_resistor(n1, n2, 50.0);
  EXPECT_FALSE(lint_netlist(netlist).has(Code::floating_node));
}

TEST(LintConnectivity, UnreachableNode) {
  ckt::Netlist netlist;
  const ckt::NodeId n1 = netlist.node("n1");
  netlist.add_resistor(ckt::ground, n1, 100.0);
  (void)netlist.node("orphan");  // declared, never wired
  const ckt::NodeId i1 = netlist.node("i1");
  const ckt::NodeId i2 = netlist.node("i2");
  netlist.add_resistor(i1, i2, 10.0);  // island: wired, but not to ground
  const Report report = lint_netlist(netlist);
  // Both flavors surface: the bare node and the isolated subcircuit.
  std::size_t unreachable = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == Code::unreachable_node) ++unreachable;
  }
  EXPECT_EQ(3u, unreachable);  // orphan + both island nodes
  // Near-miss: grounding the island clears it.
  netlist.add_resistor(ckt::ground, i1, 10.0);
  std::size_t remaining = 0;
  for (const Diagnostic& d : lint_netlist(netlist).diagnostics) {
    if (d.code == Code::unreachable_node) ++remaining;
  }
  EXPECT_EQ(1u, remaining);  // only the orphan stays
}

// ------------------------------------------------ physicality: trigger+miss ---

TEST(LintPhysicality, NonfiniteValue) {
  net::Branch root = one_section_branch();
  root.sections[0].resistance = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(lint_branch(root).has(Code::nonfinite_value));
  root.sections[0].resistance = 100.0;
  EXPECT_TRUE(lint_branch(root).clean());
}

TEST(LintPhysicality, NonpositiveResistance) {
  net::Branch root = one_section_branch();
  root.sections[0].resistance = 0.0;  // distributed R must be > 0
  EXPECT_TRUE(lint_branch(root).has(Code::nonpositive_resistance));
  // Near-miss: a lumped ideal-capacitor segment may carry R = 0.
  root.sections[0] = {0.0, 0.0, 100 * ff, net::SectionKind::lumped};
  EXPECT_TRUE(lint_branch(root).clean());
}

TEST(LintPhysicality, NonpositiveCapacitance) {
  net::Branch root = one_section_branch();
  root.sections[0].capacitance = 0.0;  // distributed C must be > 0
  EXPECT_TRUE(lint_branch(root).has(Code::nonpositive_capacitance));
  // Near-miss: a lumped RL segment may carry C = 0.
  root.sections[0] = {10.0, 1 * nh, 0.0, net::SectionKind::lumped};
  EXPECT_TRUE(lint_branch(root).clean());  // load still provides capacitance
}

TEST(LintPhysicality, NegativeInductance) {
  net::Branch root = one_section_branch();
  root.sections[0].inductance = -1 * nh;
  EXPECT_TRUE(lint_branch(root).has(Code::negative_inductance));
  root.sections[0].inductance = 0.0;  // an RC line is legal
  EXPECT_TRUE(lint_branch(root).clean());
}

TEST(LintPhysicality, NegativeLoad) {
  net::Branch root = one_section_branch();
  root.c_load = -20 * ff;
  EXPECT_TRUE(lint_branch(root).has(Code::negative_load));
  root.c_load = 0.0;  // loadless far end is legal
  EXPECT_TRUE(lint_branch(root).clean());
}

TEST(LintPhysicality, NoCapacitance) {
  net::Branch root;
  root.sections.push_back({10.0, 1 * nh, 0.0, net::SectionKind::lumped});
  EXPECT_TRUE(lint_branch(root).has(Code::no_capacitance));
  root.c_load = 20 * ff;
  EXPECT_TRUE(lint_branch(root).clean());
}

net::CoupledGroup two_line_group(double line_cap = 100 * ff) {
  net::CoupledGroup group;
  group.add_net(net::Net::uniform_line(100.0, 1 * nh, line_cap, 20 * ff), "a");
  group.add_net(net::Net::uniform_line(100.0, 1 * nh, line_cap, 20 * ff), "b");
  return group;
}

TEST(LintPhysicality, MutualOvercoupled) {
  net::CoupledGroup group = two_line_group();
  group.couple_inductance({0, 0}, {1, 0}, 0.6);
  try {
    group.couple_inductance({0, 0}, {1, 0}, 0.6);  // accumulates to 1.2
    FAIL() << "accumulated k >= 1 must be refused";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(Code::mutual_overcoupled, e.code());
    EXPECT_NE(std::string::npos, std::string(e.what()).find("accumulates"));
  }
  // Near-miss: 0.9 accumulated stays legal and below the warn margin.
  net::CoupledGroup fine = two_line_group();
  fine.couple_inductance({0, 0}, {1, 0}, 0.5);
  fine.couple_inductance({0, 0}, {1, 0}, 0.4);
  const Report report = lint_group(fine);
  EXPECT_FALSE(report.has(Code::mutual_overcoupled));
  EXPECT_FALSE(report.has(Code::mutual_near_limit));
}

TEST(LintPhysicality, MutualNearLimit) {
  net::CoupledGroup group = two_line_group();
  group.couple_inductance({0, 0}, {1, 0}, 0.5);
  group.couple_inductance({0, 0}, {1, 0}, 0.47);  // 0.97: legal, near the wall
  const Report report = lint_group(group);
  ASSERT_TRUE(report.has(Code::mutual_near_limit));
  EXPECT_EQ(Severity::warn, report.find(Code::mutual_near_limit)->severity);
  EXPECT_TRUE(report.clean());  // warn-only: the group still simulates
}

TEST(LintPhysicality, CouplingDominatesGround) {
  net::CoupledGroup group = two_line_group();
  group.couple_capacitance({0, 0}, {1, 0}, 150 * ff);  // 1.5x the 100 fF ground C
  EXPECT_TRUE(lint_group(group).has(Code::coupling_dominates_ground));
  net::CoupledGroup fine = two_line_group();
  fine.couple_capacitance({0, 0}, {1, 0}, 50 * ff);
  EXPECT_FALSE(lint_group(fine).has(Code::coupling_dominates_ground));
}

// ----------------------------------------------- conditioning: trigger+miss ---

TEST(LintConditioning, SolverAdvisory) {
  const net::Net net = net::Net::uniform_line(100.0, 1 * nh, 100 * ff, 20 * ff);
  const Report on = lint_net(net);
  ASSERT_TRUE(on.has(Code::solver_advisory));
  const Diagnostic& d = *on.find(Code::solver_advisory);
  EXPECT_EQ(Severity::info, d.severity);
  EXPECT_NE(std::string::npos, d.message.find("unknowns"));
  EXPECT_NE(std::string::npos, d.message.find("solver"));
  Options off;
  off.conditioning = false;
  EXPECT_FALSE(lint_net(net, off).has(Code::solver_advisory));
}

TEST(LintConditioning, ExtremeStiffness) {
  std::vector<net::Section> sections = {
      {1000.0, 0.0, 1e-12, net::SectionKind::distributed},  // tau = 1e-9 s
      {0.1, 0.0, 1e-18, net::SectionKind::distributed},     // tau = 1e-19 s
  };
  const net::Net stiff = net::Net::multi_section(sections, 20 * ff);
  EXPECT_TRUE(lint_net(stiff).has(Code::extreme_stiffness));
  sections[1] = {10.0, 0.0, 1e-12, net::SectionKind::distributed};  // 100x spread
  const net::Net mild = net::Net::multi_section(sections, 20 * ff);
  EXPECT_FALSE(lint_net(mild).has(Code::extreme_stiffness));
}

TEST(LintConditioning, ExtremeDynamicRange) {
  // Spread the inductance only, so the RC stiffness screen stays quiet.
  std::vector<net::Section> sections = {
      {10.0, 1 * nh, 100 * ff, net::SectionKind::distributed},
      {10.0, 1e-20, 100 * ff, net::SectionKind::distributed},  // 1e11x under 1 nH
  };
  const net::Net wide = net::Net::multi_section(sections, 20 * ff);
  const Report report = lint_net(wide);
  EXPECT_TRUE(report.has(Code::extreme_dynamic_range));
  EXPECT_FALSE(report.has(Code::extreme_stiffness));
  sections[1].inductance = 0.1 * nh;
  const net::Net mild = net::Net::multi_section(sections, 20 * ff);
  EXPECT_FALSE(lint_net(mild).has(Code::extreme_dynamic_range));
}

// ------------------------------------------------------ model: trigger+miss ---

const tech::Technology& cmos180() {
  static const tech::Technology technology = tech::Technology::cmos180();
  return technology;
}

TEST(LintModel, InductanceScreenedOnRcNets) {
  // No root-to-leaf path carries both L and C: RC by construction.
  const net::Net rc = net::Net::uniform_line(100.0, 0.0, 200 * ff, 20 * ff);
  const Report report = lint_net(rc);
  ASSERT_TRUE(report.has(Code::inductance_screened));
  EXPECT_EQ(Severity::info, report.find(Code::inductance_screened)->severity);
  EXPECT_FALSE(report.has(Code::inductance_significant));
}

TEST(LintModel, Eq9SeparatesSignificantFromScreened) {
  // Table 1's 5 mm / 1.6 um line behind a 100X driver: the paper's flagship
  // inductive case — all four Eq 9 screens hold.
  const tech::WireModel wires;
  const net::Net line = tech::line_net(wires.extract({5.0 * mm, 1.6 * um}), 20 * ff);
  Options fast;
  fast.driver_resistance = estimate_driver_resistance(cmos180(), 100.0);
  fast.input_slew = 100 * ps;
  ASSERT_GT(fast.driver_resistance, 0.0);
  const Report significant = lint_net(line, fast);
  EXPECT_TRUE(significant.has(Code::inductance_significant));
  EXPECT_FALSE(significant.has(Code::inductance_screened));

  // Near-miss: the same wire model on a short narrow line behind a weak 25X
  // driver fails the driver-fast screen — inductance screened out.
  const net::Net short_line =
      tech::line_net(wires.extract({2.0 * mm, 0.8 * um}), 20 * ff);
  Options weak;
  weak.driver_resistance = estimate_driver_resistance(cmos180(), 25.0);
  weak.input_slew = 100 * ps;
  const Report screened = lint_net(short_line, weak);
  EXPECT_TRUE(screened.has(Code::inductance_screened));
  EXPECT_FALSE(screened.has(Code::inductance_significant));
}

TEST(LintModel, MomentMismatchGatedByTolerance) {
  const net::Net net = net::Net::uniform_line(100.0, 1 * nh, 100 * ff, 20 * ff);
  // The identity m1 == Ctotal holds to roundoff on every valid net.
  EXPECT_FALSE(lint_net(net).has(Code::moment_mismatch));
  // A negative tolerance turns any roundoff into a finding — the emission
  // path and message for the day an extraction bug breaks the identity.
  Options strict;
  strict.moment_rel_tol = -1.0;
  const Report report = lint_net(net, strict);
  ASSERT_TRUE(report.has(Code::moment_mismatch));
  EXPECT_EQ(Severity::error, report.find(Code::moment_mismatch)->severity);
}

TEST(LintModel, MillerUnsafe) {
  net::CoupledGroup group = two_line_group();  // 120 fF total per net
  group.couple_capacitance({0, 0}, {1, 0}, 80 * ff);  // > 0.5 x total
  const Report report = lint_group(group);
  ASSERT_TRUE(report.has(Code::miller_unsafe));
  EXPECT_EQ(Severity::warn, report.find(Code::miller_unsafe)->severity);
  net::CoupledGroup fine = two_line_group();
  fine.couple_capacitance({0, 0}, {1, 0}, 40 * ff);
  EXPECT_FALSE(lint_group(fine).has(Code::miller_unsafe));
}

TEST(LintModel, ConvergenceRiskNearRegimeBoundary) {
  // Tr1 = 100 ps against 2*tf = 98 ps: within the default 10% margin.
  const net::Net net = net::Net::uniform_line(120.0, 4 * nh, 600 * ff, 20 * ff);
  Options at_boundary;
  at_boundary.driver_resistance = estimate_driver_resistance(cmos180(), 75.0);
  at_boundary.input_slew = 100 * ps;
  const Report risky = lint_net(net, at_boundary);
  ASSERT_TRUE(risky.has(Code::convergence_risk));
  EXPECT_NE(std::string::npos,
            risky.find(Code::convergence_risk)->message.find("Tr1/2tf"));
  // Near-miss: a 3x slower ramp sits far from every boundary.
  Options away;
  away.driver_resistance = at_boundary.driver_resistance;
  away.input_slew = 300 * ps;
  EXPECT_FALSE(lint_net(net, away).has(Code::convergence_risk));
}

// --------------------------- consolidated construction-time validation ---

TEST(LintConstruction, NetConstructionThrowsDiagnosticError) {
  net::Branch root = one_section_branch();
  root.sections[0].capacitance = -100 * ff;
  try {
    net::Net net{std::move(root)};
    FAIL() << "negative capacitance must be refused";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(Code::nonpositive_capacitance, e.code());
    EXPECT_NE(std::string::npos,
              std::string(e.what()).find("section 0 of branch 'root'"));
  }
}

TEST(LintConstruction, NetlistElementChecksThrowDiagnosticError) {
  ckt::Netlist netlist;
  const ckt::NodeId n1 = netlist.node("n1");
  try {
    netlist.add_resistor(ckt::ground, n1, -5.0);
    FAIL() << "negative resistance must be refused";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(Code::nonpositive_resistance, e.code());
  }
  try {
    netlist.add_inductor(ckt::ground, n1, -1 * nh);
    FAIL() << "negative inductance must be refused";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(Code::negative_inductance, e.code());
  }
  try {
    netlist.add_capacitor(ckt::ground, n1, -1 * ff);
    FAIL() << "negative capacitance must be refused";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(Code::nonpositive_capacitance, e.code());
  }
}

TEST(LintConstruction, CoupledGroupChecksThrowDiagnosticError) {
  net::CoupledGroup group = two_line_group();
  try {
    group.couple_capacitance({0, 0}, {1, 0}, -10 * ff);
    FAIL() << "negative coupling capacitance must be refused";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(Code::nonpositive_capacitance, e.code());
  }
  try {
    group.couple_inductance({0, 0}, {1, 0}, 1.5);
    FAIL() << "k outside (0, 1) must be refused";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(Code::mutual_overcoupled, e.code());
  }
}

// A compiled single-net deck is connected and conductive: the netlist pass
// reports no connectivity findings on the stack's own output.
TEST(LintNetlist, CompiledNetDeckIsClean) {
  const net::Net net = net::Net::uniform_line(100.0, 1 * nh, 100 * ff, 20 * ff);
  const Report report = lint_net(net);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.has(Code::floating_node));
  EXPECT_FALSE(report.has(Code::unreachable_node));
}

}  // namespace
}  // namespace rlceff::lint
